package core

import (
	"reflect"
	"testing"
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/cost"
	"backuppower/internal/server"
	"backuppower/internal/technique"
	"backuppower/internal/workload"
)

// TestScenarioKeyMirrorsServerConfig guards the serverKey mirror against
// field drift: a field added to server.Config without a matching key field
// would silently alias scenarios that differ only in that field.
func TestScenarioKeyMirrorsServerConfig(t *testing.T) {
	cfg := reflect.TypeOf(server.Config{}).NumField()
	key := reflect.TypeOf(serverKey{}).NumField()
	if key != cfg {
		t.Fatalf("serverKey has %d fields, server.Config has %d — update keyServer and serverKey", key, cfg)
	}
	// Likewise the outer mirror: Scenario's 5 fields with Env flattened
	// into its 4 constituents gives 8 key fields.
	if got := reflect.TypeOf(scenarioKey{}).NumField(); got != 8 {
		t.Fatalf("scenarioKey has %d fields, want 8 — update keyScenario", got)
	}
}

// TestScenarioKeySeparatesFields checks the digest and mirror actually
// discriminate: flipping any single scenario dimension must change the key.
func TestScenarioKeySeparatesFields(t *testing.T) {
	f := New(16)
	mk := func(mut func(*cluster.Scenario)) scenarioKey {
		s := cluster.Scenario{
			Env:       f.Env,
			Workload:  workload.Specjbb(),
			Backup:    cost.NoDG(f.Env.PeakPower()),
			Technique: technique.Sleep{LowPower: true},
			Outage:    30 * time.Minute,
		}
		if mut != nil {
			mut(&s)
		}
		return keyScenario(s)
	}
	ref := mk(nil)
	muts := map[string]func(*cluster.Scenario){
		"servers":  func(s *cluster.Scenario) { s.Env.Servers++ },
		"pstates":  func(s *cluster.Scenario) { s.Env.Server.PStates = server.MakePStates(5, 0.5) },
		"workload": func(s *cluster.Scenario) { s.Workload = workload.Memcached() },
		"backup":   func(s *cluster.Scenario) { s.Backup = cost.MaxPerf(s.Env.PeakPower()) },
		"techtype": func(s *cluster.Scenario) { s.Technique = technique.Hibernate{} },
		"techval":  func(s *cluster.Scenario) { s.Technique = technique.Sleep{} },
		"outage":   func(s *cluster.Scenario) { s.Outage = time.Hour },
	}
	for name, mut := range muts {
		if got := mk(mut); got == ref {
			t.Errorf("mutating %s did not change the cache key", name)
		}
	}
	if again := mk(nil); again != ref {
		t.Error("identical scenarios produced different keys")
	}
}

// TestShippedTechniquesAreCacheKeyable pins that every technique the
// framework enumerates (plus the Section 7 extensions) has a comparable
// dynamic type, so using it inside a map key cannot panic.
func TestShippedTechniquesAreCacheKeyable(t *testing.T) {
	f := New(16)
	techs := []technique.Technique{
		technique.NVDIMM{}, technique.NVDIMMThrottle{},
		technique.BarelyAlive{}, technique.GeoFailover{},
	}
	for _, v := range f.variants() {
		techs = append(techs, v.tech)
	}
	for _, tech := range techs {
		if !reflect.TypeOf(tech).Comparable() {
			t.Errorf("%T is not comparable — Evaluate will bypass the cache for it", tech)
		}
		// Exercise real map insertion: hashing through the interface is
		// what the cache does, and it panics for non-comparable types.
		m := map[technique.Technique]bool{tech: true}
		if !m[tech] {
			t.Errorf("%T did not round-trip as a map key", tech)
		}
	}
}
