// Package simkit is a small discrete-event simulation kernel used by the
// datacenter power and outage models. It provides a virtual clock, an event
// heap with cancellation, and a piecewise-constant signal recorder that can
// integrate power traces into energy.
//
// The kernel is deliberately single-goroutine: scenario simulations are
// deterministic and fast, which keeps experiment regeneration reproducible.
package simkit

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. It is returned by Engine.Schedule so
// callers can cancel it before it fires.
type Event struct {
	at     time.Duration
	seq    uint64 // tie-break so same-time events fire in schedule order
	fn     func()
	index  int // heap index, -1 when not queued
	label  string
	cancel bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Label returns the diagnostic label given at schedule time.
func (e *Event) Label() string { return e.label }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation clock and scheduler. The zero value
// is ready to use with the clock at 0.
type Engine struct {
	now    time.Duration
	queue  eventHeap
	nextID uint64
	fired  int
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events executed so far (for diagnostics).
func (e *Engine) Fired() int { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: it always indicates a model bug, and silently
// reordering time would corrupt every downstream energy integral.
func (e *Engine) Schedule(at time.Duration, label string, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("simkit: schedule %q at %v before now %v", label, at, e.now))
	}
	ev := &Event{at: at, seq: e.nextID, fn: fn, label: label}
	e.nextID++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, label string, fn func()) *Event {
	return e.Schedule(e.now+d, label, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// has already fired or been cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
}

// Step fires the next event, advancing the clock to its time. It reports
// whether an event was available.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// RunUntil fires events in time order until the queue is empty or the next
// event is strictly after deadline; the clock is then advanced to deadline
// if it has not reached it.
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.cancel {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run fires all queued events (including ones scheduled by event callbacks)
// until the queue drains. maxEvents guards against runaway self-scheduling
// loops; Run panics if exceeded.
func (e *Engine) Run(maxEvents int) {
	for n := 0; e.Step(); n++ {
		if n >= maxEvents {
			panic(fmt.Sprintf("simkit: exceeded %d events; runaway schedule loop?", maxEvents))
		}
	}
}
