package ups

import (
	"testing"

	"backuppower/internal/units"
)

func TestDesignStrings(t *testing.T) {
	if Offline.String() != "offline" || Online.String() != "online" {
		t.Error("design names")
	}
	if Design(9).String() != "design(9)" {
		t.Error("unknown design name")
	}
}

func TestElectricalValidate(t *testing.T) {
	for _, d := range []Design{Offline, Online} {
		if err := DefaultElectrical(d).Validate(); err != nil {
			t.Errorf("%v invalid: %v", d, err)
		}
	}
	mutate := []func(*Electrical){
		func(e *Electrical) { e.InverterEfficiency = 0 },
		func(e *Electrical) { e.RectifierEfficiency = 1.5 },
		func(e *Electrical) { e.LowLoadPenalty = 1 },
		func(e *Electrical) { e.StandbyW = -1 },
	}
	for i, m := range mutate {
		e := DefaultElectrical(Online)
		m(&e)
		if e.Validate() == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestOfflineBeatsOnlineInNormalOperation(t *testing.T) {
	// §3's reason datacenters prefer offline: double conversion taxes
	// every watt of normal operation.
	off := DefaultElectrical(Offline)
	on := DefaultElectrical(Online)
	load, cap := 200*units.Kilowatt, 250*units.Kilowatt
	lossOff := off.NormalLoss(load, cap)
	lossOn := on.NormalLoss(load, cap)
	if lossOff >= lossOn {
		t.Fatalf("offline loss %v should undercut online %v", lossOff, lossOn)
	}
	// Online loses roughly (1/0.95/0.96 - 1) ~ 9-10% of the load.
	frac := float64(lossOn-off.StandbyW) / float64(load)
	if frac < 0.08 || frac > 0.15 {
		t.Errorf("online loss fraction = %v", frac)
	}
	// Offline pays only standby.
	if lossOff != off.StandbyW {
		t.Errorf("offline normal loss = %v, want standby only", lossOff)
	}
}

func TestOutageLossBothDesignsPayInverter(t *testing.T) {
	off := DefaultElectrical(Offline)
	on := DefaultElectrical(Online)
	load, cap := 100*units.Kilowatt, 125*units.Kilowatt
	lo, ln := off.OutageLoss(load, cap), on.OutageLoss(load, cap)
	if lo <= 0 || ln <= 0 {
		t.Fatal("both designs pay conversion during outages")
	}
	if !units.AlmostEqual(float64(lo), float64(ln), 1e-9) {
		t.Errorf("inverter path identical: %v vs %v", lo, ln)
	}
	if off.OutageLoss(0, cap) != 0 {
		t.Error("no load, no loss")
	}
	if off.OutageLoss(load, 0) != 0 {
		t.Error("no capacity, no loss")
	}
}

func TestLowLoadPenalty(t *testing.T) {
	e := DefaultElectrical(Online)
	cap := units.Watts(100 * units.Kilowatt)
	// Loss *fraction* grows as load shrinks.
	heavy := float64(e.OutageLoss(90*units.Kilowatt, cap)) / 90
	light := float64(e.OutageLoss(10*units.Kilowatt, cap)) / 10
	if light <= heavy {
		t.Errorf("light-load loss fraction %v should exceed heavy %v", light, heavy)
	}
}

func TestAnnualLossEconomics(t *testing.T) {
	// A 1 MW online UPS at 80% load, $0.07/KWh: six figures a year —
	// which dwarfs the offline standby cost and explains the industry
	// preference the paper cites.
	on := DefaultElectrical(Online)
	off := DefaultElectrical(Offline)
	load, cap := 800*units.Kilowatt, units.Megawatt
	onCost := float64(on.AnnualNormalLossCost(load, cap, 0.07))
	offCost := float64(off.AnnualNormalLossCost(load, cap, 0.07))
	if onCost < 30000 {
		t.Errorf("online loss cost = %v, want substantial", onCost)
	}
	if offCost > 100 {
		t.Errorf("offline loss cost = %v, want trivial", offCost)
	}
	if onCost/offCost < 100 {
		t.Errorf("online/offline ratio = %v", onCost/offCost)
	}
}
