package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 36 {
		t.Fatalf("registry has %d experiments, want 36", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	// Every paper table and figure is present.
	for _, id := range []string{"fig1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"table1", "table2", "table3", "table4", "table5", "table6", "table8"} {
		if !seen[id] {
			t.Errorf("missing %s", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("fig10")
	if !ok || e.ID != "fig10" {
		t.Errorf("ByID fig10 = %+v %v", e.ID, ok)
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should miss")
	}
	if ids := IDs(); len(ids) != len(Registry()) {
		t.Errorf("IDs() length %d", len(ids))
	}
}

// Static experiments run fast; check each renders plausible content.
func TestStaticExperimentsRender(t *testing.T) {
	checks := map[string][]string{
		"fig1":               {"none", "17%", "duration"},
		"fig3":               {"25%", "60.0m", "666.7 Wh"},
		"table1":             {"DGPowerCost", "$83.3/KW/year", "FreeRunTime"},
		"table2":             {"1.00 MW", "10.00 MW", "42.0m"},
		"table3":             {"MaxPerf", "SmallP-LargeEUPS", "0.38"},
		"table4":             {"MinCost", "Server/App crash", "Migrate back"},
		"table5":             {"Throttling", "Sleep", "Hibernation"},
		"table6":             {"Sleep-L", "Migration+Sleep-L"},
		"table8":             {"Hibernate", "230s", "157s"},
		"fig10":              {"profitable", "83.3", "cross-over"},
		"ablation-peukert":   {"Peukert", "stretch"},
		"ablation-proactive": {"interval", "residue"},
		"ablation-dgstartup": {"startup", "bridge"},
		"ablation-liion":     {"li-ion", "premium"},
	}
	for id, wants := range checks {
		e, ok := ByID(id)
		if !ok {
			t.Errorf("missing %s", id)
			continue
		}
		out := e.Run(context.Background()).String()
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q:\n%s", id, w, out)
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	tb := Fig5(context.Background())
	// 6 configs x 5 durations.
	if len(tb.Rows) != 30 {
		t.Fatalf("fig5 rows = %d, want 36", len(tb.Rows))
	}
	out := tb.String()
	for _, want := range []string{"MaxPerf", "MinCost", "LargeEUPS", "NoDG", "DG-SmallPUPS", "SmallP-LargeEUPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 missing config %s", want)
		}
	}
	// MaxPerf rows must show perf 1.00 and 0 downtime everywhere.
	for _, row := range tb.Rows {
		if row[0] == "MaxPerf" {
			if row[4] != "1.00" || row[5] != "0" {
				t.Errorf("MaxPerf row degraded: %v", row)
			}
		}
	}
}

func TestFig6Headlines(t *testing.T) {
	// Run the underlying evaluation once and assert the §6.2 insights.
	f := core.New(DefaultServers)
	w := workload.Specjbb()

	short := map[string]core.TechniqueSummary{}
	for _, s := range f.EvaluateTechniques(w, 30*time.Second) {
		short[s.Technique] = s
	}
	long := map[string]core.TechniqueSummary{}
	for _, s := range f.EvaluateTechniques(w, 2*time.Hour) {
		long[s.Technique] = s
	}

	// Short outages: throttling achieves full-ish perf cheaply, zero
	// downtime; hibernation suffers ~387s downtime.
	thr := short["Throttling"]
	if !thr.Feasible || thr.Downtime.Max != 0 {
		t.Errorf("short throttling: %+v", thr)
	}
	if thr.Cost.Min > 0.45 {
		t.Errorf("short throttling min cost = %v", thr.Cost.Min)
	}
	hib := short["Hibernate"]
	if !hib.Feasible || hib.Downtime.Min < 5*time.Minute {
		t.Errorf("short hibernate should be a bad idea: %+v", hib)
	}
	slp := short["Sleep-L"]
	if !slp.Feasible || slp.Downtime.Min > time.Minute {
		t.Errorf("short sleep-L: %+v", slp)
	}

	// Long outages: throttling cost rises sharply; Throttle+Sleep-L stays
	// cheap (paper: ~20% of MaxPerf).
	thrL := long["Throttling"]
	hybL := long["Throttle+Sleep-L"]
	if !thrL.Feasible || !hybL.Feasible {
		t.Fatalf("long-outage feasibility: thr=%v hyb=%v", thrL.Feasible, hybL.Feasible)
	}
	if thrL.Cost.Min < 0.4 {
		t.Errorf("2h throttling min cost = %v, want >= ~0.5", thrL.Cost.Min)
	}
	if hybL.Cost.Min > 0.28 {
		t.Errorf("2h Throttle+Sleep-L min cost = %v, want ~0.2-0.25", hybL.Cost.Min)
	}
	if hybL.Cost.Min >= thrL.Cost.Min {
		t.Errorf("hybrid %v should undercut throttling %v at 2h", hybL.Cost.Min, thrL.Cost.Min)
	}
}

func TestFig7MemcachedHeadline(t *testing.T) {
	f := core.New(DefaultServers)
	w := workload.Memcached()
	sums := map[string]core.TechniqueSummary{}
	for _, s := range f.EvaluateTechniques(w, 30*time.Second) {
		sums[s.Technique] = s
	}
	// Hibernation downtime dwarfs everything else for memcached.
	hib := sums["Hibernate"]
	if !hib.Feasible || hib.Downtime.Min < 15*time.Minute {
		t.Errorf("memcached hibernate: %+v", hib)
	}
	// Throttling perf beats SPECjbb's at the deep end.
	jbb := map[string]core.TechniqueSummary{}
	for _, s := range core.New(DefaultServers).EvaluateTechniques(workload.Specjbb(), 30*time.Second) {
		jbb[s.Technique] = s
	}
	if sums["Throttling"].Perf.Min <= jbb["Throttling"].Perf.Min {
		t.Errorf("memcached deep-throttle perf %v should beat specjbb %v",
			sums["Throttling"].Perf.Min, jbb["Throttling"].Perf.Min)
	}
}

func TestFig8And9Render(t *testing.T) {
	for _, fn := range []func() Experiment{
		func() Experiment { e, _ := ByID("fig8"); return e },
		func() Experiment { e, _ := ByID("fig9"); return e },
	} {
		e := fn()
		out := e.Run(context.Background()).String()
		if !strings.Contains(out, "Throttling") || !strings.Contains(out, "Sleep") {
			t.Errorf("%s output incomplete:\n%s", e.ID, out)
		}
	}
}

func TestAblationConsolidationRuns(t *testing.T) {
	out := AblationConsolidation(context.Background()).String()
	if !strings.Contains(out, "2") || !strings.Contains(out, "4") {
		t.Errorf("consolidation ablation incomplete:\n%s", out)
	}
}
