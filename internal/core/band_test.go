package core

import (
	"testing"
	"time"
)

func TestBandWiden(t *testing.T) {
	b := Band{Min: 0.5, Max: 0.5}
	b.Widen(0.7)
	if b != (Band{0.5, 0.7}) {
		t.Errorf("after widen high: %+v", b)
	}
	b.Widen(0.2)
	if b != (Band{0.2, 0.7}) {
		t.Errorf("after widen low: %+v", b)
	}
	b.Widen(0.4) // inside the band: no change
	if b != (Band{0.2, 0.7}) {
		t.Errorf("interior widen moved the band: %+v", b)
	}
	b.Widen(0.2) // boundary: no change
	b.Widen(0.7)
	if b != (Band{0.2, 0.7}) {
		t.Errorf("boundary widen moved the band: %+v", b)
	}
}

func TestDurationBandWiden(t *testing.T) {
	b := DurationBand{Min: time.Minute, Max: time.Minute}
	b.Widen(3 * time.Minute)
	if b != (DurationBand{time.Minute, 3 * time.Minute}) {
		t.Errorf("after widen high: %+v", b)
	}
	b.Widen(10 * time.Second)
	if b != (DurationBand{10 * time.Second, 3 * time.Minute}) {
		t.Errorf("after widen low: %+v", b)
	}
	b.Widen(2 * time.Minute)
	if b != (DurationBand{10 * time.Second, 3 * time.Minute}) {
		t.Errorf("interior widen moved the band: %+v", b)
	}
}
