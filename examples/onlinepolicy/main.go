// Online policy: handle outages of UNKNOWN duration (the Section 7
// challenge). A year of outages is sampled from the Figure 1 distributions;
// for each, the adaptive policy starts optimistic and escalates through
// throttle → consolidate → sleep → hibernate as the Markov predictor's
// expected-remaining estimate collides with the battery's sustainable time.
// The predictor learns from every completed outage.
package main

import (
	"fmt"
	"time"

	backuppower "backuppower"
)

const decisionInterval = 30 * time.Second

func main() {
	env := backuppower.NewFramework(64).Env
	w := backuppower.Specjbb()
	u := backuppower.NewUPS(env.PeakPower(), 20*time.Minute)
	pol, err := backuppower.NewAdaptivePolicy(env, w, u)
	if err != nil {
		panic(err)
	}

	gen := backuppower.NewOutageGen(2014)
	pack := u.Pack()

	fmt.Printf("fleet %d servers, UPS %v for %v; deciding every %v\n\n",
		env.Servers, u.PowerCapacity, u.Runtime, decisionInterval)

	var served, lost time.Duration
	for year := 1; year <= 3; year++ {
		for _, ev := range gen.Year() {
			fmt.Printf("outage (%v):\n", ev.Duration.Round(time.Second))
			var state backuppower.BatteryState
			elapsed := time.Duration(0)
			prev := ""
			for elapsed < ev.Duration {
				d := pol.Decide(elapsed, state.Remaining())
				if d.Mode.String() != prev {
					fmt.Printf("  t=%-8v -> %-12s (%s)\n",
						elapsed.Round(time.Second), d.Mode, d.Reason)
					prev = d.Mode.String()
				}
				step := decisionInterval
				if elapsed+step > ev.Duration {
					step = ev.Duration - elapsed
				}
				load := pol.ModePower(d.Mode)
				sustained := state.Drain(pack, load, step)
				if sustained < step {
					fmt.Printf("  t=%-8v battery EXHAUSTED in %s\n",
						(elapsed + sustained).Round(time.Second), d.Mode)
					lost += ev.Duration - elapsed - sustained
					break
				}
				served += time.Duration(float64(step) * pol.ModePerf(d.Mode))
				elapsed += step
			}
			state.Recharge()
			pol.Reset(ev.Duration)
		}
	}
	fmt.Printf("\n3 years handled: %v of weighted service delivered during outages, %v dark after exhaustion\n",
		served.Round(time.Second), lost.Round(time.Second))
}
