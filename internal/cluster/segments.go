package cluster

import (
	"math"
	"sort"
	"time"

	"backuppower/internal/genset"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// Segment is an interval of the outage during which the plan's load, the
// DG supply fraction, and hence the UPS draw are all constant.
type Segment struct {
	Start, End time.Duration
	Load       units.Watts // total demand placed on the backup
	DGSupply   units.Watts // carried by the diesel generator
	UPSNeed    units.Watts // remainder the UPS must source
	Perf       float64
	Available  bool
	StateSafe  bool
}

// Segments flattens a plan against a DG config over [0, horizon): the
// interval boundaries are the plan's phase transitions and the DG's
// transfer steps. The returned segments tile [0, horizon) exactly.
func Segments(env technique.Env, w workload.Spec, plan technique.Plan, dg genset.Config, horizon time.Duration) []Segment {
	if horizon <= 0 {
		return nil
	}
	cuts := map[time.Duration]bool{0: true, horizon: true}
	var at time.Duration
	for _, ph := range plan.Phases {
		if ph.OpenEnded {
			break
		}
		at += ph.Dur
		if at < horizon {
			cuts[at] = true
		}
	}
	for _, t := range dg.StepTimes() {
		if t > 0 && t < horizon {
			cuts[t] = true
		}
	}
	times := make([]time.Duration, 0, len(cuts))
	for t := range cuts {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	segs := make([]Segment, 0, len(times)-1)
	for i := 0; i+1 < len(times); i++ {
		start, end := times[i], times[i+1]
		ph := phaseAt(plan, start)
		frac := dg.SuppliedFraction(start)
		dgSupply := units.Watts(frac) * dg.PowerCapacity
		if dgSupply > ph.Power {
			dgSupply = ph.Power
		}
		segs = append(segs, Segment{
			Start:     start,
			End:       end,
			Load:      ph.Power,
			DGSupply:  dgSupply,
			UPSNeed:   ph.Power - dgSupply,
			Perf:      ph.Perf,
			Available: ph.Available,
			StateSafe: ph.StateSafe,
		})
	}
	return segs
}

// phaseAt returns the phase in effect at time t (the open-ended phase for
// anything past the fixed schedule).
func phaseAt(plan technique.Plan, t time.Duration) technique.Phase {
	var at time.Duration
	for _, ph := range plan.Phases {
		if ph.OpenEnded {
			return ph
		}
		at += ph.Dur
		if t < at {
			return ph
		}
	}
	return plan.Phases[len(plan.Phases)-1]
}

// RequiredRuntime computes, for a candidate UPS power rating, the rated
// runtime the battery must be provisioned with for the plan to survive the
// whole outage, using the technology's Peukert fractional-depletion
// accounting: each segment consumes (duration / runtimeAt(load)) of the
// pack, so the required rated runtime R satisfies
//
//	Σ dur_i / (R · (P_rated/L_i)^k) = 1.
//
// It returns ok=false when some segment's UPS need exceeds the rating (no
// runtime helps — the plan needs more power capacity).
func RequiredRuntime(env technique.Env, w workload.Spec, plan technique.Plan, dg genset.Config, outage time.Duration, rated units.Watts, peukert float64, minLoadFrac float64) (time.Duration, bool) {
	horizon := outage
	if dgEnds := dg.Provisioned() && dg.CanCarry(env.NormalPower(w)); dgEnds && dg.TransferCompleteAt() < outage {
		horizon = dg.TransferCompleteAt()
	}
	if rated <= 0 {
		// Only feasible if nothing is ever needed from the UPS.
		for _, seg := range Segments(env, w, plan, dg, horizon) {
			if seg.UPSNeed > 0 {
				return 0, false
			}
		}
		return 0, true
	}
	total := 0.0 // required rated runtime in hours
	for _, seg := range Segments(env, w, plan, dg, horizon) {
		if seg.UPSNeed <= 0 {
			continue
		}
		if seg.UPSNeed > rated*(1+1e-9) {
			return 0, false
		}
		frac := float64(seg.UPSNeed) / float64(rated)
		if frac < minLoadFrac {
			frac = minLoadFrac
		}
		// stretch = (rated/load)^k; segment consumes dur/(R*stretch).
		stretch := math.Pow(1/frac, peukert)
		total += (seg.End - seg.Start).Hours() / stretch
	}
	return time.Duration(total * float64(time.Hour)), true
}
