// Package cluster executes an outage scenario: a technique's plan running
// on a datacenter behind a provisioned backup infrastructure (DG + UPS),
// producing the paper's three evaluation metrics — cost comes from the
// config, performance and down time come from this simulation.
//
// The simulation is an exact piecewise sweep: within each segment
// (delimited by plan phase boundaries, DG transfer steps, and the outage
// end) the load and the DG supply fraction are constant, so UPS battery
// depletion integrates analytically (with Peukert nonlinearity handled by
// the battery model's fractional-depletion state).
//
// The sweep has two entry points sharing one core: SimulateAggregate walks
// the segments through an allocation-free cursor and keeps only running
// aggregates (the path every framework sweep takes), while Simulate
// additionally records the perf/power timelines for reporting tools.
package cluster

import (
	"fmt"
	"time"

	"backuppower/internal/cost"
	"backuppower/internal/simkit"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/ups"
	"backuppower/internal/workload"
)

// Scenario is one evaluation point.
type Scenario struct {
	Env       technique.Env
	Workload  workload.Spec
	Backup    cost.Backup
	Technique technique.Technique
	Outage    time.Duration
}

// Validate checks the scenario.
func (s Scenario) Validate() error {
	if err := s.Env.Validate(); err != nil {
		return err
	}
	if err := s.Workload.Validate(); err != nil {
		return err
	}
	if err := s.Backup.Validate(); err != nil {
		return err
	}
	if s.Technique == nil {
		return fmt.Errorf("cluster: nil technique")
	}
	if s.Outage <= 0 {
		return fmt.Errorf("cluster: non-positive outage %v", s.Outage)
	}
	return nil
}

// Result is the outcome of a scenario.
type Result struct {
	Technique string
	Config    string
	Workload  string
	Outage    time.Duration

	// Survived reports that volatile state was never lost.
	Survived bool
	// CrashedAt is when state was lost (valid when !Survived).
	CrashedAt time.Duration

	// Perf is the mean normalized performance over the outage window
	// [0, Outage], the paper's common reporting duration.
	Perf float64

	// Downtime is the total time the application was unavailable from
	// outage start until fully restored (midpoint of Min/Max, which
	// differ only through HPC recompute spread).
	Downtime, DowntimeMin, DowntimeMax time.Duration

	// PeakUPSDraw and UPSEnergy summarize what the UPS actually supplied;
	// PeakBackupDraw includes the DG share.
	PeakUPSDraw    units.Watts
	PeakBackupDraw units.Watts
	UPSEnergy      units.WattHours
	UPSRemaining   float64

	// Cost is the configuration's normalized annual cap-ex (MaxPerf = 1).
	Cost float64

	// PerfTrace and PowerTrace record the timelines for reporting. They
	// are populated by Simulate only; SimulateAggregate leaves them nil.
	PerfTrace  *simkit.Trace
	PowerTrace *simkit.Trace
}

// meanAccum integrates a piecewise-constant signal incrementally with the
// exact term structure of simkit.Trace: runs of equal value are merged
// (matching the trace's sample compaction) and a write at the current run's
// start overwrites its value (matching same-instant overwrite), so mean()
// reproduces Trace.Mean bit for bit without materializing samples.
type meanAccum struct {
	start time.Duration // start of the current run
	val   float64       // value held since start
	sum   float64       // value·hours of completed runs
}

func (a *meanAccum) set(at time.Duration, v float64) {
	if at == a.start {
		a.val = v
		return
	}
	if v == a.val {
		return
	}
	a.sum += a.val * (at - a.start).Hours()
	a.start, a.val = at, v
}

// mean returns the time-average over [0, to]; to must be past the last set.
func (a *meanAccum) mean(to time.Duration) float64 {
	return (a.sum + a.val*(to-a.start).Hours()) / to.Hours()
}

// recorder receives the simulation's signal updates. The perf accumulator
// always runs (it produces Result.Perf); the traces are optional and only
// attached by the trace-producing Simulate wrapper.
type recorder struct {
	perf       meanAccum
	perfTrace  *simkit.Trace
	powerTrace *simkit.Trace
}

func (r *recorder) setPerf(at time.Duration, v float64) {
	r.perf.set(at, v)
	if r.perfTrace != nil {
		r.perfTrace.Set(at, v)
	}
}

func (r *recorder) setPower(at time.Duration, v float64) {
	if r.powerTrace != nil {
		r.powerTrace.Set(at, v)
	}
}

// Simulate runs the scenario and records the perf/power timelines on the
// returned Result — the entry point for timeline tooling (cmd/backupsim).
// Aggregate-only callers should prefer SimulateAggregate, which skips the
// trace bookkeeping entirely; both produce bit-identical metrics.
func Simulate(s Scenario) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	plan := s.Technique.Plan(s.Env, s.Workload, s.Outage)
	rec := recorder{
		perfTrace:  simkit.NewTrace("perf", 0),
		powerTrace: simkit.NewTrace("backup-load", 0),
	}
	res, err := simulatePlan(s, plan, &rec)
	if err != nil {
		return Result{}, err
	}
	res.PerfTrace, res.PowerTrace = rec.perfTrace, rec.powerTrace
	return res, nil
}

// SimulateAggregate runs the scenario keeping only the aggregate metrics:
// no traces are built and the segment walk itself performs no heap
// allocations (the only allocation on this path is the technique's plan).
// Every sweep in the framework — sizing, variant races, Monte-Carlo — goes
// through this path.
func SimulateAggregate(s Scenario) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	plan := s.Technique.Plan(s.Env, s.Workload, s.Outage)
	var rec recorder
	return simulatePlan(s, plan, &rec)
}

// walkState is the running state of a segment walk: the UPS depletion, the
// metric accumulators, and the early-termination markers. It is a plain
// value — copying it snapshots the walk, which is how the batch kernel
// emits per-outage metrics at each cut point without re-walking the shared
// prefix (and how the scalar path keeps its zero-allocation discipline:
// everything lives on the stack).
type walkState struct {
	unit ups.Unit
	rec  recorder

	peakUPS    units.Watts
	peakBackup units.Watts
	upsEnergy  units.WattHours

	crashed  bool
	crashAt  time.Duration
	darkSafe bool          // powered down with state already safe
	unavail  time.Duration // unavailable time accumulated in [0, end of plan pressure)
	lastEnd  time.Duration
}

// step advances the walk by one segment, returning false when the walk
// terminates inside it (power-capping violation or battery exhaustion).
// The body is the exact per-segment logic of the original single-pass
// sweep; bit-identity between the scalar and batch paths rests on both
// funneling through it with identical segment sequences.
func (st *walkState) step(seg *Segment) bool {
	dur := seg.End - seg.Start
	st.rec.setPerf(seg.Start, seg.Perf)
	st.rec.setPower(seg.Start, float64(seg.Load))

	if seg.UPSNeed > 0 {
		if !st.unit.Config.CanCarry(seg.UPSNeed) {
			// Power capping violated: the backup cannot source this
			// phase at all.
			st.crashed, st.crashAt = !seg.StateSafe, seg.Start
			if seg.StateSafe {
				st.darkSafe = true
			}
			if seg.Start > st.lastEnd {
				st.lastEnd = seg.Start
			}
			return false
		}
		if seg.UPSNeed > st.peakUPS {
			st.peakUPS = seg.UPSNeed
		}
		sustained := st.unit.Drain(seg.UPSNeed, dur)
		st.upsEnergy += seg.UPSNeed.ForDuration(sustained)
		if sustained < dur {
			at := seg.Start + sustained
			if seg.StateSafe {
				st.darkSafe = true
			} else {
				st.crashed, st.crashAt = true, at
			}
			if !seg.Available {
				st.unavail += at - seg.Start
			}
			st.lastEnd = at
			return false
		}
	}
	if seg.Load > st.peakBackup {
		st.peakBackup = seg.Load
	}
	if !seg.Available {
		st.unavail += dur
	}
	st.lastEnd = seg.End
	return true
}

// finish runs the outage epilogue on the walked state for reporting window
// T (with its effective pressure end effEnd) and assembles the Result. It
// mutates the receiver's recorder (the post-walk perf edges), so the batch
// kernel always calls it on a snapshot, never on the running state.
// normCost is the precomputed s.Backup.NormalizedCost(s.Env.PeakPower()) —
// outage-invariant, so the batch kernel computes it once per axis instead
// of re-deriving the battery cost model at every cut.
func (st *walkState) finish(s Scenario, plan technique.Plan, T, effEnd, fixedPhasesEnd time.Duration, dgEndsOutage bool, normCost float64) Result {
	res := Result{
		Technique: plan.Technique,
		Config:    s.Backup.Name,
		Workload:  s.Workload.Name,
		Outage:    T,
		Cost:      normCost,
		Survived:  true,

		PeakUPSDraw:    st.peakUPS,
		PeakBackupDraw: st.peakBackup,
		UPSEnergy:      st.upsEnergy,
		UPSRemaining:   st.unit.Remaining(),
	}
	dg := s.Backup.DG
	recoveryLo, recoveryHi := technique.CrashRecovery(s.Env, s.Workload)

	switch {
	case st.crashed:
		res.Survived = false
		res.CrashedAt = st.crashAt
		// Power returns at the outage end, or earlier on the DG if it can
		// carry the datacenter.
		powerBack := T
		if dgEndsOutage {
			ready := dg.TransferCompleteAt()
			if ready < st.crashAt {
				ready = st.crashAt
			}
			if ready < powerBack {
				powerBack = ready
			}
		}
		st.rec.setPerf(st.crashAt, 0)
		// Unavailable from crash until power back plus recovery.
		dt := st.unavail + (powerBack - st.crashAt)
		res.DowntimeMin = dt + recoveryLo
		res.DowntimeMax = dt + recoveryHi
		// If recovery finishes inside the outage window (DG restored
		// power early), performance returns before T.
		if back := powerBack + (recoveryLo+recoveryHi)/2; back < T {
			st.rec.setPerf(back, 1)
		}

	case st.darkSafe:
		// State persisted; servers dark until power returns, then the
		// plan's restore path runs.
		st.rec.setPerf(st.lastEnd, 0)
		dt := st.unavail + (effEnd - st.lastEnd) + plan.RestoreDowntime
		res.DowntimeMin, res.DowntimeMax = dt, dt

	default:
		// Plan ran to the end of the outage pressure. Fixed phases that
		// outlast the outage complete on restored power before the
		// restore path runs: an in-progress hibernate save keeps the
		// application down (charged as tail downtime), whereas an
		// in-progress migration keeps serving (no charge).
		tail := unavailableTail(plan, effEnd, fixedPhasesEnd)
		restore := plan.RestoreDowntime
		if plan.RestoreAfterPowerLossOnly {
			restore = 0 // the servers never went dark
		}
		dt := st.unavail + tail + restore
		res.DowntimeMin, res.DowntimeMax = dt, dt
		// DG-carried full restoration within the outage window shows up
		// as restored performance after the restore downtime.
		if effEnd < T {
			back := effEnd + tail + restore
			if back < T {
				st.rec.setPerf(back, 1)
			}
		}
	}
	res.Downtime = (res.DowntimeMin + res.DowntimeMax) / 2

	res.Perf = st.rec.perf.mean(T)
	return res
}

// effectivePressureEnd returns whether the DG ends the outage pressure
// early and when the pressure window for reporting window T closes: at T,
// or at transfer completion if the DG can carry the full normal load (the
// paper's "DG translates long outages into short ones").
func effectivePressureEnd(s Scenario, T time.Duration) (effEnd time.Duration, dgEndsOutage bool) {
	dg := s.Backup.DG
	dgEndsOutage = dg.Provisioned() && dg.CanCarry(s.Env.NormalPower(s.Workload))
	effEnd = T
	if dgEndsOutage && dg.TransferCompleteAt() < T {
		effEnd = dg.TransferCompleteAt()
	}
	return effEnd, dgEndsOutage
}

// fixedPhasesEnd sums the plan's fixed (non-open-ended) phase durations.
func fixedPhasesEnd(plan technique.Plan) time.Duration {
	var end time.Duration
	for _, ph := range plan.Phases {
		if !ph.OpenEnded {
			end += ph.Dur
		}
	}
	return end
}

// simulatePlan is the shared simulation core: an exact piecewise sweep of
// the plan against the backup through the allocation-free segment cursor.
// With a trace-less recorder the whole call is allocation-free (pinned by
// TestAggregatePathAllocFree).
func simulatePlan(s Scenario, plan technique.Plan, rec *recorder) (Result, error) {
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}

	T := s.Outage
	effEnd, dgEndsOutage := effectivePressureEnd(s, T)
	fixedEnd := fixedPhasesEnd(plan)

	st := walkState{unit: ups.Unit{Config: s.Backup.UPS}, rec: *rec}
	cur := newSegCursor(plan, s.Backup.DG, effEnd)
	var seg Segment
	for cur.next(&seg) {
		if !st.step(&seg) {
			break
		}
	}
	res := st.finish(s, plan, T, effEnd, fixedEnd, dgEndsOutage,
		s.Backup.NormalizedCost(s.Env.PeakPower()))
	*rec = st.rec
	return res, nil
}

// unavailableTail sums the unavailable portions of fixed plan phases that
// fall in [from, to) — the post-outage completion of save work.
func unavailableTail(plan technique.Plan, from, to time.Duration) time.Duration {
	if to <= from {
		return 0
	}
	var tail time.Duration
	var at time.Duration
	for _, ph := range plan.Phases {
		if ph.OpenEnded {
			break
		}
		start, end := at, at+ph.Dur
		at = end
		if end <= from || start >= to {
			continue
		}
		if start < from {
			start = from
		}
		if end > to {
			end = to
		}
		if !ph.Available {
			tail += end - start
		}
	}
	return tail
}
