// Command gridrun evaluates a declarative sweep grid (internal/grid) from
// the command line: a figure's worth of scenario points in one
// invocation, streamed as NDJSON rows or rendered as a summary table.
// The same spec posted to a backupd's /v1/sweep streams the exact same
// row bytes — the two surfaces share the grid compiler, runner, and DTOs.
//
// The spec comes either from a JSON file (-spec FILE, "-" for stdin) or
// from axis flags:
//
//	gridrun -op best -workloads specjbb -configs MaxPerf,NoDG -outages 30s,5m,2h
//	gridrun -workloads web-search -configs LargeEUPS \
//	        -techniques 'throttling:pstate=2;sleep:low_power=true' -outages 30m
//	gridrun -op size -variants -outages 30s,30m,2h -format table
//
// -parallel sets the worker-pool width, -shard the emission batch size,
// and -no-batch disables the outage-axis batch kernel; none of them
// changes the output bytes. -store-dir persists evaluated rows in a
// result store, so rerunning a spec (or any overlapping spec) evaluates
// only rows the store has never seen — still byte-identical output;
// -store-stats prints the store's counters to stderr afterwards. Rows
// always stream in plan order (servers, workloads, configs, techniques,
// outages — outermost to innermost).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"backuppower/internal/core"
	"backuppower/internal/grid"
	"backuppower/internal/report"
	"backuppower/internal/resultstore"
	"backuppower/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse args, evaluate, write to stdout.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gridrun", flag.ContinueOnError)
	fs.SetOutput(stderr)

	specPath := fs.String("spec", "", `JSON spec file ("-" = stdin); overrides the axis flags`)
	op := fs.String("op", "", "per-row call: evaluate (default), size, or best")
	serversFlag := fs.String("servers", "", "comma-separated cluster sizes (default 64)")
	workloads := fs.String("workloads", "", "comma-separated workload names")
	configs := fs.String("configs", "", "comma-separated Table 3 configuration names")
	techniques := fs.String("techniques", "", `semicolon-separated techniques, each "name" or "name:k=v,k=v"`)
	variants := fs.Bool("variants", false, "sweep the full Section 6 technique-variant set (Figures 6-9 axis)")
	outages := fs.String("outages", "", `comma-separated outage durations ("30s,5m,2h")`)
	processes := fs.String("processes", "",
		`stochastic outage-process axis as a JSON array (evaluate only; replaces -outages), e.g. `+
			`'[{"seed":42,"draws":16,"arrival":{"kind":"exponential","mean":"1500h"},"duration":{"kind":"empirical"}}]'`)
	zip := fs.Bool("zip", false, "pair axes element-wise instead of crossing them")
	maxRows := fs.Int("max-rows", 0, "tighten the compile-time row bound (0 = default)")
	sampleEvery := fs.Int("sample-every", 0, "keep every k-th row of the expanded grid")
	minOutage := fs.String("min-outage", "", "drop rows with a shorter outage")
	maxOutage := fs.String("max-outage", "", "drop rows with a longer outage")

	parallel := fs.Int("parallel", 0, "sweep worker-pool width (0 = GOMAXPROCS, 1 = serial); output is identical at any width")
	shard := fs.Int("shard", 0, "rows per emitted shard (0 = default); output is identical at any size")
	noBatch := fs.Bool("no-batch", false, "disable the outage-axis batch kernel (debug; output is identical either way)")
	timeout := fs.Duration("timeout", 0, "overall evaluation deadline (0 = none)")
	format := fs.String("format", "ndjson", "output format: ndjson or table")
	out := fs.String("o", "", "write output to a file instead of stdout")
	progress := fs.Bool("progress", false, "print per-shard progress to stderr")
	storeDir := fs.String("store-dir", "",
		"persistent result store directory (warm reruns skip stored rows; output bytes are identical)")
	storeStats := fs.Bool("store-stats", false, "print the store's stats JSON to stderr after the run")

	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *storeStats && *storeDir == "" {
		fmt.Fprintln(stderr, "gridrun: -store-stats requires -store-dir")
		return 2
	}
	if *format != "ndjson" && *format != "table" {
		fmt.Fprintf(stderr, "gridrun: -format %q must be ndjson or table\n", *format)
		return 2
	}

	var spec grid.Spec
	if *specPath != "" {
		if err := readSpec(*specPath, &spec); err != nil {
			fmt.Fprintf(stderr, "gridrun: %v\n", err)
			return 2
		}
	} else {
		var err error
		spec, err = specFromFlags(*op, *serversFlag, *workloads, *configs, *techniques,
			*variants, *outages, *processes, *zip, *maxRows, *sampleEvery, *minOutage, *maxOutage)
		if err != nil {
			fmt.Fprintf(stderr, "gridrun: %v\n", err)
			return 2
		}
	}

	const defaultServers = 64 // backupd's default scale, so CLI and HTTP rows match
	plan, err := grid.Compile(spec, grid.CompileOptions{DefaultServers: defaultServers})
	if err != nil {
		fmt.Fprintf(stderr, "gridrun: %v\n", err)
		return 2
	}

	ctx := context.Background()
	if *parallel > 0 {
		ctx = sweep.WithWidth(ctx, *parallel)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "gridrun: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	opts := grid.RunOptions{ShardSize: *shard, NoBatch: *noBatch}
	if *progress {
		opts.Progress = func(p grid.Progress) {
			fmt.Fprintf(stderr, "gridrun: shard %d/%d (%d/%d rows)\n", p.Shard, p.Shards, p.RowsDone, p.Rows)
		}
	}
	if *storeDir != "" {
		store, err := resultstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(stderr, "gridrun: -store-dir: %v\n", err)
			return 1
		}
		core.SetResultStore(store)
		grid.SetRowStore(store)
		defer func() {
			// Detach before closing: run() is re-entrant (tests call it
			// repeatedly) and the globals must not outlive the store.
			grid.SetRowStore(nil)
			core.SetResultStore(nil)
			if *storeStats {
				st := store.Stats()
				if b, err := json.Marshal(st); err == nil {
					fmt.Fprintf(stderr, "%s\n", b)
				}
			}
			store.Close()
		}()
	}
	runner := grid.NewRunner(core.New(defaultServers))

	switch *format {
	case "table":
		rows, err := runner.Run(ctx, plan, opts)
		if err != nil {
			fmt.Fprintf(stderr, "gridrun: %v\n", err)
			return 1
		}
		if err := renderTable(w, plan.Op, rows); err != nil {
			fmt.Fprintf(stderr, "gridrun: %v\n", err)
			return 1
		}
	default: // ndjson
		enc := json.NewEncoder(w)
		err := runner.RunStream(ctx, plan, opts, func(row grid.RowResult) error {
			return enc.Encode(grid.NewRowDTO(plan.Op, row))
		})
		if err != nil {
			fmt.Fprintf(stderr, "gridrun: %v\n", err)
			return 1
		}
	}
	return 0
}

// readSpec strictly decodes a spec file (stdin for "-"): unknown fields
// and trailing data are rejected, exactly as on the HTTP surface.
func readSpec(path string, spec *grid.Spec) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return errors.New("spec: trailing data after JSON document")
	}
	return nil
}

// specFromFlags assembles a Spec from the axis flags.
func specFromFlags(op, servers, workloads, configs, techniques string, variants bool,
	outages, processes string, zip bool, maxRows, sampleEvery int, minOutage, maxOutage string) (grid.Spec, error) {
	spec := grid.Spec{
		Op:                op,
		Workloads:         splitList(workloads),
		Outages:           splitList(outages),
		TechniqueVariants: variants,
		Zip:               zip,
		MaxRows:           maxRows,
	}
	if processes != "" {
		if err := json.Unmarshal([]byte(processes), &spec.OutageProcesses); err != nil {
			return grid.Spec{}, fmt.Errorf("-processes: %w", err)
		}
	}
	for _, n := range splitList(servers) {
		v, err := strconv.Atoi(n)
		if err != nil {
			return grid.Spec{}, fmt.Errorf("-servers: %q is not an integer", n)
		}
		spec.Servers = append(spec.Servers, v)
	}
	for _, name := range splitList(configs) {
		spec.Configs = append(spec.Configs, grid.ConfigDTO{Name: name})
	}
	if techniques != "" {
		for _, s := range strings.Split(techniques, ";") {
			d, err := parseTechniqueFlag(strings.TrimSpace(s))
			if err != nil {
				return grid.Spec{}, err
			}
			spec.Techniques = append(spec.Techniques, d)
		}
	}
	if sampleEvery != 0 || minOutage != "" || maxOutage != "" {
		spec.Filter = &grid.Filter{
			MinOutage:   minOutage,
			MaxOutage:   maxOutage,
			SampleEvery: sampleEvery,
		}
	}
	return spec, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseTechniqueFlag parses one "name" or "name:k=v,k=v" technique flag
// element into the wire DTO the resolver validates.
func parseTechniqueFlag(s string) (grid.TechniqueDTO, error) {
	name, params, _ := strings.Cut(s, ":")
	d := grid.TechniqueDTO{Name: strings.TrimSpace(name)}
	if params == "" {
		return d, nil
	}
	for _, kv := range strings.Split(params, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return d, fmt.Errorf("-techniques: %q: parameter %q is not k=v", s, kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "pstate":
			n, err := strconv.Atoi(v)
			if err != nil {
				return d, fmt.Errorf("-techniques: %q: pstate %q is not an integer", s, v)
			}
			d.PState = &n
		case "low_power", "proactive", "throttle_deep":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return d, fmt.Errorf("-techniques: %q: %s %q is not a bool", s, k, v)
			}
			switch k {
			case "low_power":
				d.LowPower = &b
			case "proactive":
				d.Proactive = &b
			default:
				d.ThrottleDeep = &b
			}
		case "save":
			d.Save = v
		case "active_fraction":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return d, fmt.Errorf("-techniques: %q: active_fraction %q is not a number", s, v)
			}
			d.ActiveFraction = &f
		case "budget":
			d.Budget = v
		default:
			return d, fmt.Errorf("-techniques: %q: unknown parameter %q", s, k)
		}
	}
	return d, nil
}

// renderTable folds collected rows into one summary table per op.
func renderTable(w io.Writer, op string, rows []grid.RowResult) error {
	t := report.Table{Title: fmt.Sprintf("Sweep (%s, %d rows)", op, len(rows))}
	switch op {
	case grid.OpSize:
		t.Columns = []string{"Servers", "Workload", "Family", "Technique", "Outage", "Feasible", "NormCost", "UPS kW", "Runtime"}
		for _, r := range rows {
			if r.Err != nil {
				t.AddRow(r.Point.Servers, r.Point.Workload.Name, r.Point.Family, techName(r), r.Point.Outage, "error: "+r.Err.Error(), "-", "-", "-")
				continue
			}
			if !r.Feasible {
				t.AddRow(r.Point.Servers, r.Point.Workload.Name, r.Point.Family, techName(r), r.Point.Outage, "no", "-", "-", "-")
				continue
			}
			t.AddRow(r.Point.Servers, r.Point.Workload.Name, r.Point.Family, r.Sizing.Technique, r.Point.Outage,
				"yes", r.Sizing.NormCost,
				fmt.Sprintf("%.1f", float64(r.Sizing.Backup.UPS.PowerCapacity)/1000),
				r.Sizing.Backup.UPS.Runtime)
		}
	case grid.OpBest:
		t.Columns = []string{"Servers", "Workload", "Config", "Outage", "Best", "Perf", "Downtime"}
		for _, r := range rows {
			if r.Err != nil {
				t.AddRow(r.Point.Servers, r.Point.Workload.Name, r.Point.Config.Name, r.Point.Outage, "error: "+r.Err.Error(), "-", "-")
				continue
			}
			t.AddRow(r.Point.Servers, r.Point.Workload.Name, r.Point.Config.Name, r.Point.Outage, r.Best, r.Result.Perf, r.Result.Downtime)
		}
	default: // evaluate
		t.Columns = []string{"Servers", "Workload", "Config", "Technique", "Outage", "Survived", "Perf", "Downtime"}
		for _, r := range rows {
			outage := outageCell(r)
			if r.Err != nil {
				t.AddRow(r.Point.Servers, r.Point.Workload.Name, r.Point.Config.Name, techName(r), outage, "error: "+r.Err.Error(), "-", "-")
				continue
			}
			if r.Process != nil {
				// Process rows: survival rate, duration-weighted perf, and
				// expected yearly downtime instead of the point columns.
				t.AddRow(r.Point.Servers, r.Point.Workload.Name, r.Point.Config.Name, techName(r), outage,
					fmt.Sprintf("%.3f", r.Process.SurvivalRate), r.Process.Perf, r.Process.ExpectedDowntime)
				continue
			}
			survived := "no"
			if r.Result.Survived {
				survived = "yes"
			}
			t.AddRow(r.Point.Servers, r.Point.Workload.Name, r.Point.Config.Name, techName(r), outage, survived, r.Result.Perf, r.Result.Downtime)
		}
	}
	return t.Render(w)
}

// outageCell renders a row's outage coordinate: the point duration, or a
// compact spec summary for stochastic-process rows.
func outageCell(r grid.RowResult) any {
	if p := r.Point.Process; p != nil {
		return fmt.Sprintf("%s/%s seed=%d draws=%d", p.Arrival.Kind, p.Duration.Kind, p.Seed, p.Draws)
	}
	return r.Point.Outage
}

func techName(r grid.RowResult) string {
	if r.Point.Technique == nil {
		return "-"
	}
	return r.Point.Technique.Name()
}
