package battery

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"backuppower/internal/units"
)

// apcPack is the Figure 3 reference battery: 4 KW max power, 10 min at
// full load.
func apcPack() Pack {
	return NewPack(LeadAcid(), 4*units.Kilowatt, 10*time.Minute)
}

func TestFigure3Calibration(t *testing.T) {
	p := apcPack()
	// 100% load -> 10 minutes, 0.66 KWh.
	if got := p.RuntimeAt(4 * units.Kilowatt); got != 10*time.Minute {
		t.Errorf("runtime@100%% = %v, want 10m", got)
	}
	e100 := p.EffectiveEnergyAt(4 * units.Kilowatt)
	if !units.AlmostEqual(e100.KWh(), 0.667, 0.01) {
		t.Errorf("energy@100%% = %v, want ~0.66 KWh", e100)
	}
	// 25% load -> 60 minutes, 1 KWh.
	r25 := p.RuntimeAt(1 * units.Kilowatt)
	if !units.AlmostEqual(r25.Minutes(), 60, 1e-6) {
		t.Errorf("runtime@25%% = %v, want 60m", r25)
	}
	e25 := p.EffectiveEnergyAt(1 * units.Kilowatt)
	if !units.AlmostEqual(e25.KWh(), 1.0, 1e-6) {
		t.Errorf("energy@25%% = %v, want 1 KWh", e25)
	}
	// 50% load: strictly between the endpoints, superlinear stretch
	// (Peukert) so > 20 minutes.
	r50 := p.RuntimeAt(2 * units.Kilowatt)
	if r50 <= 20*time.Minute || r50 >= 60*time.Minute {
		t.Errorf("runtime@50%% = %v, want in (20m, 60m)", r50)
	}
}

func TestTechnologyValidate(t *testing.T) {
	if err := LeadAcid().Validate(); err != nil {
		t.Errorf("lead-acid invalid: %v", err)
	}
	if err := LiIon().Validate(); err != nil {
		t.Errorf("li-ion invalid: %v", err)
	}
	bad := LeadAcid()
	bad.PeukertExponent = 0.9
	if bad.Validate() == nil {
		t.Error("k<1 should be invalid")
	}
	bad = LeadAcid()
	bad.MinLoadFraction = 0
	if bad.Validate() == nil {
		t.Error("zero min load fraction should be invalid")
	}
	bad = LeadAcid()
	bad.FreeRunTime = -time.Minute
	if bad.Validate() == nil {
		t.Error("negative free runtime should be invalid")
	}
}

func TestOverload(t *testing.T) {
	p := apcPack()
	if got := p.RuntimeAt(5 * units.Kilowatt); got != 0 {
		t.Errorf("overload runtime = %v, want 0", got)
	}
}

func TestLowLoadCap(t *testing.T) {
	p := apcPack()
	tiny := p.RuntimeAt(1 * units.Watt)
	floor := p.RuntimeAt(units.Watts(float64(p.RatedPower) * p.Tech.MinLoadFraction))
	if tiny != floor {
		t.Errorf("runtime below min-load fraction should cap: %v vs %v", tiny, floor)
	}
}

func TestFreeRuntimeBump(t *testing.T) {
	// Requesting less runtime than the free base capacity yields the base.
	p := NewPack(LeadAcid(), 10*units.Kilowatt, 30*time.Second)
	if p.RatedRuntime != 2*time.Minute {
		t.Errorf("RatedRuntime = %v, want bumped to 2m", p.RatedRuntime)
	}
	// Zero-power pack stays zero.
	z := NewPack(LeadAcid(), 0, 0)
	if z.RatedRuntime != 0 || z.RuntimeAt(0) != 0 {
		t.Errorf("zero pack misbehaves: %+v", z)
	}
}

func TestAnnualCostBaseOnly(t *testing.T) {
	// 1000 KW at 2 min (the free base): only power cost, $50/KW/yr.
	p := NewPack(LeadAcid(), units.Megawatt, 2*time.Minute)
	if got := float64(p.AnnualCost()); !units.AlmostEqual(got, 50000, 1e-9) {
		t.Errorf("cost = %v, want $50000/yr", got)
	}
}

func TestAnnualCostExtraEnergy(t *testing.T) {
	// 10 MW at 42 min: $50/KW*10000 + $50/KWh*(10000*(40/60)) =
	// 500000 + 333333 = 833333 -> the paper's Table 2 "0.83 M$" UPS row.
	p := NewPack(LeadAcid(), 10*units.Megawatt, 42*time.Minute)
	got := float64(p.AnnualCost())
	if !units.AlmostEqual(got, 833333, 0.001) {
		t.Errorf("cost = %v, want ~833333", got)
	}
}

func TestRatedVsFreeEnergy(t *testing.T) {
	p := NewPack(LeadAcid(), 4*units.Kilowatt, 10*time.Minute)
	if got := p.RatedEnergy().KWh(); !units.AlmostEqual(got, 4.0/6.0, 1e-9) {
		t.Errorf("rated energy = %v", got)
	}
	if got := p.FreeEnergy().KWh(); !units.AlmostEqual(got, 4.0/30.0, 1e-9) {
		t.Errorf("free energy = %v", got)
	}
}

func TestDrainExact(t *testing.T) {
	p := apcPack()
	var s State
	// Drain at full load for 5 minutes -> half used.
	got := s.Drain(p, 4*units.Kilowatt, 5*time.Minute)
	if got != 5*time.Minute {
		t.Fatalf("sustained = %v", got)
	}
	if !units.AlmostEqual(s.Remaining(), 0.5, 1e-9) {
		t.Fatalf("remaining = %v, want 0.5", s.Remaining())
	}
	// Remaining half at 25% load -> 30 more minutes.
	if got := s.TimeToEmpty(p, 1*units.Kilowatt); !units.AlmostEqual(got.Minutes(), 30, 1e-6) {
		t.Fatalf("time to empty = %v, want 30m", got)
	}
	// Drain past empty truncates.
	sustained := s.Drain(p, 1*units.Kilowatt, time.Hour)
	if !units.AlmostEqual(sustained.Minutes(), 30, 1e-6) {
		t.Fatalf("sustained = %v, want 30m", sustained)
	}
	if !s.Depleted() {
		t.Fatal("pack should be depleted")
	}
	if s.TimeToEmpty(p, units.Kilowatt) != 0 {
		t.Fatal("depleted pack should have zero time to empty")
	}
	s.Recharge()
	if s.Depleted() || s.Remaining() != 1 {
		t.Fatal("recharge failed")
	}
}

func TestDrainZeroLoad(t *testing.T) {
	p := apcPack()
	var s State
	if got := s.Drain(p, 0, time.Hour); got != time.Hour {
		t.Errorf("zero load drain = %v", got)
	}
	if s.used != 0 {
		t.Errorf("zero load should not consume, used=%v", s.used)
	}
}

func TestDrainOverload(t *testing.T) {
	p := apcPack()
	var s State
	if got := s.Drain(p, 8*units.Kilowatt, time.Minute); got != 0 {
		t.Errorf("overload drain sustained %v, want 0", got)
	}
	if !s.Depleted() {
		t.Error("overload should deplete immediately")
	}
}

// Property: piecewise drain at a constant load sums to the same total
// sustained time as RuntimeAt, regardless of how the interval is chopped.
func TestDrainPiecewiseConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := apcPack()
		load := units.Watts(500 + rng.Float64()*3500)
		want := p.RuntimeAt(load)
		var s State
		var total time.Duration
		for !s.Depleted() {
			chunk := time.Duration(1+rng.Intn(300)) * time.Second
			total += s.Drain(p, load, chunk)
		}
		return units.AlmostEqual(total.Seconds(), want.Seconds(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: runtime is monotonically non-increasing in load.
func TestRuntimeMonotone(t *testing.T) {
	p := apcPack()
	prev := p.RuntimeAt(100 * units.Watt)
	for w := units.Watts(200); w <= 4000; w += 100 {
		cur := p.RuntimeAt(w)
		if cur > prev {
			t.Fatalf("runtime not monotone at %v: %v > %v", w, cur, prev)
		}
		prev = cur
	}
}

// Property: deliverable energy grows as load shrinks (Peukert, k>1).
func TestEffectiveEnergyMonotone(t *testing.T) {
	p := apcPack()
	prev := p.EffectiveEnergyAt(4000)
	for w := units.Watts(3900); w >= 200; w -= 100 {
		cur := p.EffectiveEnergyAt(w)
		if cur < prev {
			t.Fatalf("effective energy shrank at %v: %v < %v", w, cur, prev)
		}
		prev = cur
	}
}

func TestLiIonFlatterThanLeadAcid(t *testing.T) {
	la := NewPack(LeadAcid(), 4*units.Kilowatt, 10*time.Minute)
	li := NewPack(LiIon(), 4*units.Kilowatt, 10*time.Minute)
	// At 25% load lead-acid stretches more than li-ion.
	if la.RuntimeAt(units.Kilowatt) <= li.RuntimeAt(units.Kilowatt) {
		t.Errorf("lead-acid stretch %v should exceed li-ion %v",
			la.RuntimeAt(units.Kilowatt), li.RuntimeAt(units.Kilowatt))
	}
	// Li-ion energy is pricier: a long-runtime pack costs more on li-ion.
	laLong := NewPack(LeadAcid(), units.Megawatt, time.Hour)
	liLong := NewPack(LiIon(), units.Megawatt, time.Hour)
	if liLong.AnnualCost() <= laLong.AnnualCost() {
		t.Errorf("li-ion long-runtime pack should cost more: %v vs %v",
			liLong.AnnualCost(), laLong.AnnualCost())
	}
}
