package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"backuppower/internal/cost"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// randomScenario builds an arbitrary-but-valid scenario from a seed.
func randomScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	e := technique.DefaultEnv(4 + rng.Intn(60))
	ws := workload.All()
	w := ws[rng.Intn(len(ws))]
	peak := e.PeakPower()

	configs := append(cost.Table3(peak),
		cost.Custom("rand", 0,
			units.Watts(float64(peak)*(0.2+0.8*rng.Float64())),
			time.Duration(rng.Intn(90)+1)*time.Minute))
	b := configs[rng.Intn(len(configs))]

	deep := len(e.Server.PStates) - 1
	techs := []technique.Technique{
		technique.Baseline{},
		technique.Throttling{PState: rng.Intn(deep + 1), TState: rng.Intn(e.Server.TStates)},
		technique.Migration{Proactive: rng.Intn(2) == 0, ThrottleDeep: rng.Intn(2) == 0},
		technique.Sleep{LowPower: rng.Intn(2) == 0},
		technique.Hibernate{Proactive: rng.Intn(2) == 0, LowPower: rng.Intn(2) == 0},
		technique.ThrottleThenSave{PState: deep, Save: technique.SaveKind(rng.Intn(2)), ActiveFraction: rng.Float64()},
		technique.MigrationThenSleep{ActiveFraction: rng.Float64()},
		technique.NVDIMM{},
		technique.NVDIMMThrottle{PState: rng.Intn(deep + 1)},
		technique.BarelyAlive{},
		technique.GeoFailover{Save: technique.SaveKind(rng.Intn(2))},
		technique.CappedThrottling{Budget: units.Watts(float64(peak) * (0.3 + 0.7*rng.Float64()))},
	}
	return Scenario{
		Env:       e,
		Workload:  w,
		Backup:    b,
		Technique: techs[rng.Intn(len(techs))],
		Outage:    time.Duration(rng.Intn(4*3600)+10) * time.Second,
	}
}

// TestSimulationInvariants fuzzes scenarios and checks the physical
// invariants every result must satisfy, regardless of configuration.
func TestSimulationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		s := randomScenario(seed)
		r, err := Simulate(s)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		T := s.Outage
		switch {
		case r.Perf < 0 || r.Perf > 1+1e-9:
			t.Logf("seed %d: perf %v out of range", seed, r.Perf)
			return false
		case r.DowntimeMin < 0 || r.DowntimeMin > r.DowntimeMax:
			t.Logf("seed %d: downtime band (%v,%v)", seed, r.DowntimeMin, r.DowntimeMax)
			return false
		case r.Downtime != (r.DowntimeMin+r.DowntimeMax)/2:
			t.Logf("seed %d: downtime not midpoint", seed)
			return false
		case !r.Survived && (r.CrashedAt < 0 || r.CrashedAt > T):
			t.Logf("seed %d: crash at %v outside outage", seed, r.CrashedAt)
			return false
		case r.PeakUPSDraw > s.Backup.UPS.PowerCapacity+1e-9:
			t.Logf("seed %d: UPS draw %v above capacity %v", seed, r.PeakUPSDraw, s.Backup.UPS.PowerCapacity)
			return false
		case r.UPSRemaining < -1e-9 || r.UPSRemaining > 1+1e-9:
			t.Logf("seed %d: charge %v out of range", seed, r.UPSRemaining)
			return false
		case r.UPSEnergy < 0:
			t.Logf("seed %d: negative UPS energy", seed)
			return false
		case r.Cost < 0 || r.Cost > 1.5:
			t.Logf("seed %d: cost %v implausible", seed, r.Cost)
			return false
		}
		// Downtime cannot exceed outage + the worst conceivable recovery
		// (crash recovery of the workload plus plan restore overheads,
		// bounded loosely at outage + 6h for these workloads).
		if r.DowntimeMax > T+6*time.Hour {
			t.Logf("seed %d: downtime %v absurd for outage %v", seed, r.DowntimeMax, T)
			return false
		}
		// Energy drawn is bounded by the pack's best-case deliverable
		// energy (Peukert stretch peaks at the min-load floor).
		if s.Backup.UPS.Provisioned() {
			pack := s.Backup.UPS.Pack()
			bound := pack.EffectiveEnergyAt(units.Watts(float64(pack.RatedPower) * pack.Tech.MinLoadFraction))
			if float64(r.UPSEnergy) > float64(bound)*1.01 {
				t.Logf("seed %d: energy %v above physical bound %v", seed, r.UPSEnergy, bound)
				return false
			}
		} else if r.UPSEnergy != 0 {
			t.Logf("seed %d: energy from absent UPS", seed)
			return false
		}
		// Full perf for the whole window implies zero downtime during it.
		if units.AlmostEqual(r.Perf, 1, 1e-9) && r.DowntimeMin > 0 && r.Survived {
			// Restore overhead can still follow the outage for plans that
			// were dark before the end — but perf 1 over [0,T] with a
			// surviving run and positive downtime means the downtime is
			// post-restore only, which is fine. No violation.
			_ = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMoreBackupNeverHurts: for a fixed technique and outage, growing the
// UPS runtime can only improve (or preserve) survival and downtime.
func TestMoreBackupNeverHurts(t *testing.T) {
	e := technique.DefaultEnv(16)
	w := workload.Specjbb()
	tech := technique.Throttling{PState: 6}
	outage := 45 * time.Minute
	var prev *Result
	for _, runtime := range []time.Duration{2, 10, 30, 60, 120} {
		b := cost.Custom("sweep", 0, e.PeakPower(), runtime*time.Minute)
		r, err := Simulate(Scenario{Env: e, Workload: w, Backup: b, Technique: tech, Outage: outage})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if prev.Survived && !r.Survived {
				t.Fatalf("more runtime broke survival at %vmin", runtime)
			}
			if r.Downtime > prev.Downtime {
				t.Fatalf("more runtime increased downtime at %vmin: %v > %v",
					runtime, r.Downtime, prev.Downtime)
			}
			if r.Perf < prev.Perf-1e-9 {
				t.Fatalf("more runtime reduced perf at %vmin", runtime)
			}
		}
		prev = &r
	}
}

// TestLongerOutageNeverCheaper: perf can only fall and downtime only grow
// as the outage lengthens, for a fixed config and technique.
func TestLongerOutageMonotone(t *testing.T) {
	e := technique.DefaultEnv(16)
	w := workload.Memcached()
	b := cost.LargeEUPS(e.PeakPower())
	tech := technique.Sleep{LowPower: true}
	var prev *Result
	for _, d := range []time.Duration{time.Minute, 10 * time.Minute, time.Hour, 3 * time.Hour} {
		r, err := Simulate(Scenario{Env: e, Workload: w, Backup: b, Technique: tech, Outage: d})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if r.Downtime < prev.Downtime {
				t.Fatalf("downtime shrank with longer outage at %v", d)
			}
		}
		prev = &r
	}
}
