// Command backupd serves the evaluation framework over JSON/HTTP: the
// long-running counterpart to the one-shot CLIs, answering
// config x technique x workload x outage what-if queries per request
// while the shared scenario cache warms across them.
//
// Endpoints (see internal/httpapi): POST /v1/evaluate, /v1/size,
// /v1/best, /v1/sweep (streamed NDJSON grids, bounded by
// -max-sweep-rows); GET /v1/techniques, /v1/workloads, /healthz,
// /metrics, and (with -pprof) /debug/pprof/.
//
// Flags: -addr sets the listen address, -servers the modeled datacenter
// scale, -parallel the default sweep worker-pool width per request,
// -max-inflight the bound on concurrent evaluations (past it requests
// get 429 + Retry-After), -timeout the per-request evaluation deadline.
// -store-dir attaches a persistent result store: evaluations and sweep
// rows survive restarts, warm reruns evaluate nothing they have seen,
// and GET /v1/results serves filter/aggregate queries over stored rows.
// SIGINT/SIGTERM drain gracefully: the listener stops, in-flight
// requests finish (up to the drain grace), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/grid"
	"backuppower/internal/httpapi"
	"backuppower/internal/resultstore"
)

// defaultWorkerID is the hostname when the kernel will give it up, else a
// fixed placeholder — the flag exists so pool operators can pick stable
// names, not so the default is globally unique.
func defaultWorkerID() string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return "backupd"
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	servers := flag.Int("servers", 64, "number of servers in the modeled datacenter")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"default sweep worker-pool width per request (1 = serial)")
	maxInflight := flag.Int("max-inflight", 4*runtime.GOMAXPROCS(0),
		"maximum concurrently evaluating requests (excess gets 429)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request evaluation deadline")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown grace for in-flight requests")
	maxSweepRows := flag.Int("max-sweep-rows", grid.DefaultMaxRows,
		"maximum rows one /v1/sweep grid may expand to")
	workerID := flag.String("worker-id", defaultWorkerID(),
		"identity echoed as X-Backupd-Worker on sweep responses (for sweepfront pools)")
	storeDir := flag.String("store-dir", "",
		"persistent result store directory (enables GET /v1/results and warm restarts)")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/")
	flag.Parse()

	if *servers < 1 {
		log.Fatalf("backupd: -servers %d must be >= 1", *servers)
	}
	var store resultstore.Store
	if *storeDir != "" {
		disk, err := resultstore.Open(*storeDir)
		if err != nil {
			log.Fatalf("backupd: -store-dir: %v", err)
		}
		store = disk
		core.SetResultStore(store)
		grid.SetRowStore(store)
		defer store.Close()
	}
	api, err := httpapi.New(httpapi.Config{
		Framework:    core.New(*servers),
		MaxInflight:  *maxInflight,
		Timeout:      *timeout,
		Width:        *parallel,
		EnablePprof:  *pprofOn,
		MaxSweepRows: *maxSweepRows,
		WorkerID:     *workerID,
		Store:        store,
	})
	if err != nil {
		log.Fatalf("backupd: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("backupd: serving %d-server framework on %s (max-inflight %d, timeout %v, width %d)",
			*servers, *addr, *maxInflight, *timeout, *parallel)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("backupd: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("backupd: signal received, draining for up to %v", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("backupd: drain incomplete: %v", err)
			os.Exit(1)
		}
		log.Printf("backupd: drained, exiting")
	}
}
