package httpapi

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRequestsDeterministic hammers one shared Server from
// many goroutines mixing /v1/evaluate and /v1/size bodies, with varying
// per-request sweep widths, and checks every response byte-matches the
// serial baseline for the same body. Run under -race (the Makefile ci
// tier does) this also proves the shared framework, scenario cache, and
// metrics are data-race free under concurrent load.
func TestConcurrentRequestsDeterministic(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) *Server {
		cfg.MaxInflight = 64 // never shed load in this test
		return nil
	})

	type probe struct {
		path string
		body string
	}
	probes := []probe{
		{"/v1/evaluate", `{"config":{"name":"MaxPerf"},"technique":{"name":"baseline"},"workload":"specjbb","outage":"10m"}`},
		{"/v1/evaluate", `{"config":{"name":"SmallDG-SmallPUPS"},"technique":{"name":"migration","proactive":true},"workload":"web-search","outage":"1h"}`},
		{"/v1/evaluate", `{"config":{"name":"LargeEUPS"},"technique":{"name":"throttle-then-save","pstate":6,"save":"hibernate"},"workload":"memcached","outage":"2h","width":2}`},
		{"/v1/size", `{"technique":{"name":"sleep","low_power":true},"workload":"specjbb","outage":"30m"}`},
		{"/v1/size", `{"technique":{"name":"hibernate","proactive":true},"workload":"web-search","outage":"4h","width":3}`},
		{"/v1/best", `{"config":{"name":"MinCost"},"workload":"memcached","outage":"30m"}`},
		// Streaming sweeps at mixed widths and shard sizes: NDJSON bodies
		// must byte-match the serial baseline however requests interleave.
		{"/v1/sweep", `{"spec":{"workloads":["specjbb"],"configs":[{"name":"MaxPerf"},{"name":"LargeEUPS"}],` +
			`"techniques":[{"name":"baseline"},{"name":"sleep","low_power":true}],"outages":["30s","30m"]}}`},
		{"/v1/sweep", `{"spec":{"workloads":["specjbb"],"configs":[{"name":"MaxPerf"},{"name":"LargeEUPS"}],` +
			`"techniques":[{"name":"baseline"},{"name":"sleep","low_power":true}],"outages":["30s","30m"]},` +
			`"width":4,"shard_size":1}`},
		{"/v1/sweep", `{"spec":{"op":"size","workloads":["memcached"],` +
			`"techniques":[{"name":"hibernate"},{"name":"throttling","pstate":6}],"outages":["5m","1h"]},` +
			`"width":2,"shard_size":3}`},
		// Dense outage axes exercise the batch kernel (consecutive rows
		// differing only in outage collapse into one plan + segment walk);
		// shard sizes that split axes mid-run probe unit clipping at shard
		// boundaries under concurrency.
		{"/v1/sweep", `{"spec":{"workloads":["web-search"],"configs":[{"name":"DG-SmallPUPS"}],` +
			`"techniques":[{"name":"sleep"},{"name":"throttle-then-save","pstate":4,"save":"sleep"}],` +
			`"outages":["30s","90s","5m","12m","30m","45m","1h","2h"]},"width":3,"shard_size":5}`},
		{"/v1/sweep", `{"spec":{"op":"best","workloads":["specjbb"],` +
			`"configs":[{"name":"MinCost"},{"name":"NoDG"}],` +
			`"outages":["1m","10m","20m","40m","1h","3h","6h","8h"]},"width":4,"shard_size":6}`},
		{"/v1/sweep", `{"spec":{"op":"size","workloads":["specjbb"],` +
			`"techniques":[{"name":"sleep","low_power":true}],` +
			`"outages":["5m","15m","30m","1h","90m","2h","4h","8h"]},"width":2,"shard_size":7}`},
	}

	// Serial baseline first: one canonical response per probe.
	want := make([][]byte, len(probes))
	for i, p := range probes {
		resp, b := post(t, ts.URL+p.path, p.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline %s: status %d: %s", p.path, resp.StatusCode, b)
		}
		want[i] = b
	}

	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds*len(probes))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger the probe order per goroutine so interleavings vary.
				for off := 0; off < len(probes); off++ {
					i := (g + r + off) % len(probes)
					p := probes[i]
					resp, err := http.Post(ts.URL+p.path, "application/json", strings.NewReader(p.body))
					if err != nil {
						errs <- err
						continue
					}
					b, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs <- err
						continue
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("%s: status %d: %s", p.path, resp.StatusCode, b)
						continue
					}
					if !bytes.Equal(b, want[i]) {
						errs <- fmt.Errorf("%s: response diverged from serial baseline:\ngot:  %s\nwant: %s",
							p.path, b, want[i])
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
