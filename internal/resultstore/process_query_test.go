package resultstore

import (
	"testing"
	"time"
)

func processRow(servers int, wl, cfg, tech string, seed int64, draws int, avail, perf float64) StoredRow {
	return StoredRow{
		V: rowSchemaV, Op: "evaluate", Servers: servers, Workload: wl,
		Config: cfg, HasConfig: cfg != "", Technique: tech,
		Process: &StoredProcess{
			Seed: seed, Draws: draws,
			ArrivalKind: "exponential", ArrivalMeanNS: int64(2000 * time.Hour),
			DurationKind: "fixed", DurationMeanNS: int64(10 * time.Minute),
			Events: draws, Availability: avail,
			ExpectedDowntimeNS: int64(time.Hour), DowntimeP50NS: int64(30 * time.Minute),
			DowntimeP95NS: int64(time.Hour), DowntimeP99NS: int64(time.Hour),
			DowntimeMaxNS: int64(2 * time.Hour),
			SurvivalRate:  1, Perf: perf, NormCost: 0.62,
		},
	}
}

func processQueryRows() []StoredRow {
	return []StoredRow{
		processRow(8, "specjbb", "NoDG", "Sleep", 42, 8, 0.9995, 0.80),
		processRow(8, "specjbb", "NoDG", "Sleep", 43, 8, 0.9990, 0.70),
		processRow(8, "memcached", "NoDG", "Baseline", 42, 16, 0.9999, 0.95),
		evalRow(8, "specjbb", "NoDG", "Sleep", 5*time.Minute, 0.80, 1.0),
	}
}

// TestQueryProcessFields: the query language reaches the process-row
// fields — seed and draws filter, availability compares, and perf falls
// through to the process payload — while point rows stay queryable by
// outage in the same scan.
func TestQueryProcessFields(t *testing.T) {
	rows := processQueryRows()
	run := func(q string) []StoredRow {
		t.Helper()
		plan, err := ParseQuery(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		return plan.Execute(rows).Rows
	}

	if got := run("seed=42"); len(got) != 2 {
		t.Fatalf("seed=42 matched %d rows, want 2", len(got))
	}
	if got := run("seed=42 && draws=16"); len(got) != 1 || got[0].Workload != "memcached" {
		t.Fatalf("seed+draws filter wrong: %+v", got)
	}
	if got := run("availability>=0.9995"); len(got) != 2 {
		t.Fatalf("availability>=0.9995 matched %d rows, want 2", len(got))
	}
	// perf reaches both payload shapes: three process rows + one point row
	// carry perf >= 0.8.
	if got := run("perf>=0.8"); len(got) != 3 {
		t.Fatalf("perf>=0.8 matched %d rows, want 3", len(got))
	}
	// outage only exists on point rows; process rows fall out of the
	// filter rather than erroring.
	if got := run("outage=5m"); len(got) != 1 || got[0].Process != nil {
		t.Fatalf("outage filter leaked process rows: %+v", got)
	}
	// seed only exists on process rows, symmetrically.
	for _, r := range run("seed=42") {
		if r.Process == nil {
			t.Fatalf("seed filter matched a point row: %+v", r)
		}
	}
}

// TestQueryProcessCanonicalOrder: process rows sort deterministically
// after their shared coordinates via the process tiebreak (seed, draws,
// distributions), and point rows order before process rows at equal
// coordinates.
func TestQueryProcessCanonicalOrder(t *testing.T) {
	rows := processQueryRows()
	plan, err := ParseQuery(`op="evaluate"`)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Execute(rows).Rows
	if len(out) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(out), len(rows))
	}
	// Re-execute over a rotated copy: canonical order must be identical.
	rot := append(rows[2:], rows[:2]...)
	out2 := plan.Execute(rot).Rows
	for i := range out {
		if !sameStoredRow(&out[i], &out2[i]) {
			t.Fatalf("row %d: order depends on scan order", i)
		}
	}
	// Process rows carry OutageNS 0, so they precede the 5m point row at
	// the shared coordinates, ordered between themselves by seed.
	var sleeps []StoredRow
	for _, r := range out {
		if r.Workload == "specjbb" && r.Technique == "Sleep" {
			sleeps = append(sleeps, r)
		}
	}
	if len(sleeps) != 3 {
		t.Fatalf("want 3 specjbb/Sleep rows, got %d", len(sleeps))
	}
	if sleeps[0].Process == nil || sleeps[1].Process == nil {
		t.Fatal("process rows (outage 0) do not sort before the 5m point row")
	}
	if sleeps[0].Process.Seed != 42 || sleeps[1].Process.Seed != 43 {
		t.Fatalf("process rows not seed-ordered: %d, %d", sleeps[0].Process.Seed, sleeps[1].Process.Seed)
	}
	if sleeps[2].Process != nil {
		t.Fatal("point row missing from the tail of the group")
	}
}

func sameStoredRow(a, b *StoredRow) bool {
	if a.Op != b.Op || a.Workload != b.Workload || a.Technique != b.Technique || a.OutageNS != b.OutageNS {
		return false
	}
	if (a.Process == nil) != (b.Process == nil) {
		return false
	}
	if a.Process != nil && *a.Process != *b.Process {
		return false
	}
	return true
}

// TestProcessRowCodecRoundTrip: the StoredProcess payload survives the
// row codec bit for bit, and the schema guard still rejects foreign
// versions.
func TestProcessRowCodecRoundTrip(t *testing.T) {
	for i, r := range processQueryRows() {
		payload, err := EncodeRow(r)
		if err != nil {
			t.Fatalf("row %d: EncodeRow: %v", i, err)
		}
		back, err := DecodeRow(payload)
		if err != nil {
			t.Fatalf("row %d: DecodeRow: %v", i, err)
		}
		if (back.Process == nil) != (r.Process == nil) {
			t.Fatalf("row %d: payload shape did not round-trip", i)
		}
		if back.Process != nil && *back.Process != *r.Process {
			t.Fatalf("row %d: process did not round-trip:\n got %+v\nwant %+v", i, back.Process, r.Process)
		}
	}
}
