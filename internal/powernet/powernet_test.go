package powernet

import (
	"testing"
	"time"

	"backuppower/internal/genset"
	"backuppower/internal/units"
	"backuppower/internal/ups"
)

func uniform(t *testing.T, servers int, u ups.Config, dg genset.Config) Hierarchy {
	t.Helper()
	h, err := Uniform("dc", servers, 40, 250, u, dg)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	return h
}

func TestUniformTopology(t *testing.T) {
	u := ups.NewConfig(250*1000, 2*time.Minute)
	h := uniform(t, 1000, u, genset.New(250*1000))
	if got := h.Servers(); got != 1000 {
		t.Errorf("servers = %d", got)
	}
	if got := h.Load(); got != 250*1000 {
		t.Errorf("load = %v", got)
	}
	// 1000 servers / 40 per rack = 25 racks -> 4 PDUs.
	if got := len(h.PDUs); got != 4 {
		t.Errorf("PDUs = %d", got)
	}
	// Rack UPS slices sum back to the aggregate.
	if got := h.UPSPower(); !units.AlmostEqual(float64(got), 250000, 1e-9) {
		t.Errorf("UPS power = %v", got)
	}
	if err := h.Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
}

func TestUniformUnevenLastRack(t *testing.T) {
	h := uniform(t, 45, ups.None(), genset.None())
	total := 0
	for _, p := range h.PDUs {
		for _, r := range p.Racks {
			total += r.Servers
		}
	}
	if total != 45 {
		t.Errorf("server total = %d", total)
	}
	last := h.PDUs[len(h.PDUs)-1].Racks
	if last[len(last)-1].Servers != 5 {
		t.Errorf("last rack = %d servers, want 5", last[len(last)-1].Servers)
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform("x", 0, 40, 250, ups.None(), genset.None()); err == nil {
		t.Error("zero servers should fail")
	}
	if _, err := Uniform("x", 10, 0, 250, ups.None(), genset.None()); err == nil {
		t.Error("zero rack size should fail")
	}
}

func TestValidateCapacity(t *testing.T) {
	h := uniform(t, 80, ups.None(), genset.None())
	// Sabotage a PDU capacity.
	h.PDUs[0].Capacity = 1
	if h.Validate() == nil {
		t.Error("overloaded PDU should fail validation")
	}
	bad := Rack{Name: "r", Servers: 0, PerServer: 250, UPS: ups.None()}
	if bad.Validate() == nil {
		t.Error("empty rack should fail")
	}
	if (PDU{Name: "p"}).Validate() == nil {
		t.Error("rackless PDU should fail")
	}
	if (Hierarchy{Name: "h"}).Validate() == nil {
		t.Error("PDU-less hierarchy should fail")
	}
}

func TestSourceSequenceFullBackup(t *testing.T) {
	u := ups.NewConfig(250*80, 2*time.Minute)
	h := uniform(t, 80, u, genset.New(250*80))
	outage := 30 * time.Minute
	// Before detection: still nominally utility (capacitance).
	if got := h.SourceAt(5*time.Millisecond, outage); got != SourceUtility {
		t.Errorf("at 5ms = %v", got)
	}
	// Bridge: UPS.
	if got := h.SourceAt(30*time.Second, outage); got != SourceUPS {
		t.Errorf("at 30s = %v", got)
	}
	// After transfer completes: DG.
	if got := h.SourceAt(5*time.Minute, outage); got != SourceDG {
		t.Errorf("at 5m = %v", got)
	}
	// After the outage: utility again.
	if got := h.SourceAt(31*time.Minute, outage); got != SourceUtility {
		t.Errorf("after outage = %v", got)
	}
}

func TestSourceSequenceNoBackup(t *testing.T) {
	h := uniform(t, 80, ups.None(), genset.None())
	if got := h.SourceAt(time.Second, time.Hour); got != SourceNone {
		t.Errorf("no backup source = %v", got)
	}
}

func TestSourceSequenceNoUPS(t *testing.T) {
	h := uniform(t, 80, ups.None(), genset.New(250*80))
	// During DG ramp with no UPS: partially fed by DG.
	if got := h.SourceAt(time.Minute, time.Hour); got != SourceDG {
		t.Errorf("ramp source = %v", got)
	}
	// Before DG starts: nothing.
	if got := h.SourceAt(time.Second, time.Hour); got != SourceNone {
		t.Errorf("pre-start source = %v", got)
	}
}

func TestSourceStrings(t *testing.T) {
	for s, want := range map[Source]string{
		SourceUtility: "utility", SourceUPS: "ups", SourceDG: "dg",
		SourceNone: "none", Source(9): "source(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d = %q", int(s), got)
		}
	}
}

func TestATSValidate(t *testing.T) {
	if err := DefaultATS().Validate(); err != nil {
		t.Errorf("default ATS invalid: %v", err)
	}
	bad := ATSConfig{DetectionDelay: -1}
	if bad.Validate() == nil {
		t.Error("negative delay should fail")
	}
}
