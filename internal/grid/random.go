package grid

import (
	"math/rand"
	"time"

	"backuppower/internal/technique"
	"backuppower/internal/workload"
)

// Bounds parameterizes RandomSpec: the envelope of the spec space the
// generator samples. The zero value is usable — every zero field falls
// back to the matching DefaultBounds value — so callers can tighten one
// dimension without restating the rest.
type Bounds struct {
	// Ops are the candidate ops ("evaluate", "size", "best"). Empty
	// means all three.
	Ops []string

	// Servers are the candidate cluster sizes for the servers axis.
	// Empty means {4, 8, 16}.
	Servers []int

	// Workloads are the candidate workload names. Empty means every
	// calibrated workload (workload.All).
	Workloads []string

	// MaxAxisLen caps the length of the workloads, configs, and
	// techniques axes (>= 1). 0 means 3.
	MaxAxisLen int

	// MaxOutageAxisLen caps the outage axis length (>= 1). 0 means 4.
	MaxOutageAxisLen int

	// MinOutage / MaxOutage band the sampled outage durations. Zero
	// means 30s / 4h. Values are clamped to [1s, grid.MaxOutage].
	MinOutage time.Duration
	MaxOutage time.Duration

	// Variants permits technique_variants specs (the full Section 6
	// variant set) for non-zip evaluate and size ops.
	Variants bool

	// Processes permits outage_processes specs (the stochastic outage
	// axis) for evaluate ops: sampled processes stay in a tame envelope
	// (few draws, quiet arrival rates) so any spec still evaluates fast.
	Processes bool
}

// DefaultBounds is the envelope the vulture and the fuzz target use: all
// three ops, small clusters, short axes, and sub-4h outages, with
// variant sweeps enabled — broad enough to reach every compiler path,
// small enough that any sampled spec evaluates in well under a second.
func DefaultBounds() Bounds {
	return Bounds{
		Ops:              []string{OpEvaluate, OpSize, OpBest},
		Servers:          []int{4, 8, 16},
		MaxAxisLen:       3,
		MaxOutageAxisLen: 4,
		MinOutage:        30 * time.Second,
		MaxOutage:        4 * time.Hour,
		Variants:         true,
		Processes:        true,
	}
}

// normalized fills zero fields from DefaultBounds and clamps the outage
// band to what ParseOutage accepts, so RandomSpec cannot be steered into
// emitting an invalid axis value.
func (b Bounds) normalized() Bounds {
	def := DefaultBounds()
	if len(b.Ops) == 0 {
		b.Ops = def.Ops
	}
	if len(b.Servers) == 0 {
		b.Servers = def.Servers
	}
	if len(b.Workloads) == 0 {
		for _, w := range workload.All() {
			b.Workloads = append(b.Workloads, w.Name)
		}
	}
	if b.MaxAxisLen < 1 {
		b.MaxAxisLen = def.MaxAxisLen
	}
	if b.MaxOutageAxisLen < 1 {
		b.MaxOutageAxisLen = def.MaxOutageAxisLen
	}
	if b.MinOutage < time.Second {
		b.MinOutage = def.MinOutage
	}
	if b.MaxOutage <= 0 {
		b.MaxOutage = def.MaxOutage
	}
	if b.MaxOutage > MaxOutage {
		b.MaxOutage = MaxOutage
	}
	if b.MinOutage > b.MaxOutage {
		b.MinOutage = b.MaxOutage
	}
	return b
}

// RandomSpec draws one valid Spec from the bounded envelope: every op,
// axis shape, zip/filter/variant combination, named and custom
// configurations, and all twelve wire technique families are reachable.
// The returned spec always compiles under CompileOptions with any
// DefaultServers >= 1 and the default row bound — validity is the
// generator's contract, and FuzzRandomSpecCompiles enforces it. The draw
// is a pure function of the rng stream, so a seeded source reproduces
// the exact spec sequence (the vulture's replay contract).
func RandomSpec(rng *rand.Rand, b Bounds) Spec {
	b = b.normalized()
	spec := Spec{Op: b.Ops[rng.Intn(len(b.Ops))]}

	// Zip pairs axes element-wise; variants replace the technique axis
	// with the Section 6 set. The two are mutually exclusive by the
	// compiler's rules, and neither applies to every op.
	zip := rng.Intn(4) == 0
	variants := !zip && b.Variants && spec.Op != OpBest && rng.Intn(6) == 0
	spec.Zip = zip
	spec.TechniqueVariants = variants

	// Zipped axes must share one length L (length <= 1 broadcasts).
	axisLen := func(max int) int { return 1 + rng.Intn(max) }
	zipL := axisLen(b.MaxAxisLen)
	length := func(max int) int {
		if !zip {
			return axisLen(max)
		}
		if zipL <= max && rng.Intn(2) == 0 {
			return zipL
		}
		return 1
	}

	// Servers axis: sometimes absent (the runner's default scale).
	if rng.Intn(4) > 0 {
		n := length(min(2, len(b.Servers)))
		for i := 0; i < n; i++ {
			spec.Servers = append(spec.Servers, b.Servers[rng.Intn(len(b.Servers))])
		}
	}

	for i, n := 0, length(b.MaxAxisLen); i < n; i++ {
		spec.Workloads = append(spec.Workloads, b.Workloads[rng.Intn(len(b.Workloads))])
	}

	// The outage axis: point durations, or (for evaluate ops, when the
	// bounds allow) a stochastic process axis instead.
	procAxis := b.Processes && spec.Op == OpEvaluate && rng.Intn(6) == 0
	var outages []time.Duration
	if procAxis {
		for i, n := 0, length(b.MaxOutageAxisLen); i < n; i++ {
			spec.OutageProcesses = append(spec.OutageProcesses, randomProcess(rng))
		}
	} else {
		outages = make([]time.Duration, length(b.MaxOutageAxisLen))
		for i := range outages {
			outages[i] = randomOutage(rng, b)
			spec.Outages = append(spec.Outages, outages[i].String())
		}
	}

	if spec.Op != OpSize {
		for i, n := 0, length(b.MaxAxisLen); i < n; i++ {
			spec.Configs = append(spec.Configs, randomConfig(rng))
		}
	}
	if spec.Op != OpBest && !variants {
		deepest := len(technique.DefaultEnv(1).Server.PStates) - 1
		for i, n := 0, length(b.MaxAxisLen); i < n; i++ {
			spec.Techniques = append(spec.Techniques, randomTechnique(rng, deepest))
		}
	}

	// One filter kind at a time, always satisfiable: outage-band bounds
	// are drawn from the generated axis (so at least one row survives),
	// and sample_every always keeps pre-filter row 0. A process axis
	// takes no outage band, so only sample_every applies there.
	if rng.Intn(5) == 0 {
		kind := rng.Intn(3)
		if procAxis {
			kind = 2
		}
		switch kind {
		case 0:
			spec.Filter = &Filter{MinOutage: outages[rng.Intn(len(outages))].String()}
		case 1:
			spec.Filter = &Filter{MaxOutage: outages[rng.Intn(len(outages))].String()}
		case 2:
			spec.Filter = &Filter{SampleEvery: 2 + rng.Intn(2)}
		}
	}
	return spec
}

// randomProcess draws one valid process axis element in a tame envelope:
// 1-8 draws, arrival means of hundreds of hours (a handful of events per
// yearly trace), duration means of minutes to hours. Every distribution
// kind and the correlation mode are reachable.
func randomProcess(rng *rand.Rand) ProcessDTO {
	kinds := []string{"fixed", "exponential", "weibull", "empirical"}
	shapes := []float64{0.5, 0.8, 1.5, 2, 3}
	d := ProcessDTO{
		Seed:        rng.Int63(),
		Draws:       1 + rng.Intn(8),
		Correlation: []float64{0, 0, 0.25, 0.5}[rng.Intn(4)],
	}
	d.Arrival = DistDTO{Kind: kinds[rng.Intn(len(kinds))]}
	if d.Arrival.Kind != "empirical" {
		d.Arrival.Mean = (time.Duration(300+rng.Intn(5701)) * time.Hour).String()
		if d.Arrival.Kind == "weibull" {
			d.Arrival.Shape = shapes[rng.Intn(len(shapes))]
		}
	}
	d.Duration = DistDTO{Kind: kinds[rng.Intn(len(kinds))]}
	if d.Duration.Kind != "empirical" {
		d.Duration.Mean = (time.Duration(1+rng.Intn(240)) * time.Minute).String()
		if d.Duration.Kind == "weibull" {
			d.Duration.Shape = shapes[rng.Intn(len(shapes))]
		}
	}
	return d
}

// randomOutage draws a whole-second duration inside the bounds band.
// time.Duration.String output round-trips through ParseOutage.
func randomOutage(rng *rand.Rand, b Bounds) time.Duration {
	span := b.MaxOutage - b.MinOutage
	d := b.MinOutage
	if span > 0 {
		d += time.Duration(rng.Int63n(int64(span) + 1))
	}
	if t := d.Truncate(time.Second); t >= b.MinOutage {
		d = t
	}
	return d
}

// randomConfig draws either a Table 3 name or a custom configuration.
// Custom capacities stay at most 2 kW, far under the 100x-peak sanity
// bound for every cluster size the default envelope samples.
func randomConfig(rng *rand.Rand) ConfigDTO {
	if rng.Intn(2) == 0 {
		names := []string{
			"MaxPerf", "MinCost", "NoDG", "NoUPS", "DG-SmallPUPS",
			"SmallDG-SmallPUPS", "SmallPUPS", "LargeEUPS", "SmallP-LargeEUPS",
		}
		return ConfigDTO{Name: names[rng.Intn(len(names))]}
	}
	d := ConfigDTO{
		DGPower:  []string{"0W", "400W", "1kW", "2kW"}[rng.Intn(4)],
		UPSPower: []string{"0W", "250W", "800W", "1.5kW"}[rng.Intn(4)],
	}
	if d.UPSPower != "0W" && rng.Intn(2) == 0 {
		d.UPSRuntime = []string{"90s", "10m", "1h"}[rng.Intn(3)]
	}
	return d
}

// randomTechnique draws one instance from each of the twelve wire
// families, filling every required parameter and sometimes the optional
// ones.
func randomTechnique(rng *rand.Rand, deepest int) TechniqueDTO {
	pstate := func() *int { p := 1 + rng.Intn(deepest); return &p }
	coin := func() *bool { v := rng.Intn(2) == 0; return &v }
	frac := func() *float64 {
		f := float64(1+rng.Intn(10)) / 10 // (0, 1] in tenths
		return &f
	}
	maybe := func(f func() TechniqueDTO, name string) TechniqueDTO {
		if rng.Intn(2) == 0 {
			return TechniqueDTO{Name: name}
		}
		return f()
	}
	switch rng.Intn(12) {
	case 0:
		return TechniqueDTO{Name: "baseline"}
	case 1:
		return TechniqueDTO{Name: "throttling", PState: pstate()}
	case 2:
		budget := []string{"150W", "500W", "1.2kW"}[rng.Intn(3)]
		return TechniqueDTO{Name: "capped-throttling", Budget: budget}
	case 3:
		return maybe(func() TechniqueDTO {
			return TechniqueDTO{Name: "migration", Proactive: coin(), ThrottleDeep: coin()}
		}, "migration")
	case 4:
		return maybe(func() TechniqueDTO {
			return TechniqueDTO{Name: "sleep", LowPower: coin()}
		}, "sleep")
	case 5:
		return maybe(func() TechniqueDTO {
			return TechniqueDTO{Name: "hibernate", LowPower: coin(), Proactive: coin()}
		}, "hibernate")
	case 6:
		d := TechniqueDTO{
			Name:   "throttle-then-save",
			PState: pstate(),
			Save:   []string{"sleep", "hibernate"}[rng.Intn(2)],
		}
		if rng.Intn(2) == 0 {
			d.ActiveFraction = frac()
		}
		return d
	case 7:
		return maybe(func() TechniqueDTO {
			return TechniqueDTO{Name: "migration-then-sleep", ActiveFraction: frac()}
		}, "migration-then-sleep")
	case 8:
		return TechniqueDTO{Name: "nvdimm"}
	case 9:
		return TechniqueDTO{Name: "nvdimm-throttle", PState: pstate()}
	case 10:
		return TechniqueDTO{Name: "barely-alive"}
	default:
		return maybe(func() TechniqueDTO {
			return TechniqueDTO{Name: "geo-failover", Save: []string{"sleep", "hibernate"}[rng.Intn(2)]}
		}, "geo-failover")
	}
}
