package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPowerScales(t *testing.T) {
	if Kilowatt != 1000*Watt {
		t.Fatalf("Kilowatt = %v, want 1000 W", Kilowatt)
	}
	if Megawatt != 1000*Kilowatt {
		t.Fatalf("Megawatt = %v, want 1000 KW", Megawatt)
	}
	if got := (2500 * Watt).KW(); got != 2.5 {
		t.Errorf("KW() = %v, want 2.5", got)
	}
	if got := (3 * Megawatt).MW(); got != 3 {
		t.Errorf("MW() = %v, want 3", got)
	}
}

func TestEnergyForDuration(t *testing.T) {
	// 4 KW for 15 minutes = 1 KWh.
	e := (4 * Kilowatt).ForDuration(15 * time.Minute)
	if !AlmostEqual(float64(e), 1000, 1e-9) {
		t.Fatalf("4KW*15min = %v, want 1 KWh", e)
	}
}

func TestEnergyAtPower(t *testing.T) {
	e := 1 * KilowattHour
	if got := e.AtPower(4 * Kilowatt); got != 15*time.Minute {
		t.Errorf("1KWh @ 4KW = %v, want 15m", got)
	}
	if got := e.AtPower(0); got <= 0 {
		t.Errorf("zero load should yield huge duration, got %v", got)
	}
}

func TestEnergyPowerRoundTrip(t *testing.T) {
	f := func(pw uint16, mins uint8) bool {
		p := Watts(pw) + 1 // avoid zero
		d := time.Duration(mins+1) * time.Minute
		e := p.ForDuration(d)
		back := e.AtPower(p)
		return math.Abs(float64(back-d)) < float64(time.Millisecond)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteScales(t *testing.T) {
	if Gibibyte != 1024*Mebibyte {
		t.Fatalf("GiB = %d", Gibibyte)
	}
	if got := (18 * Gibibyte).GiB(); got != 18 {
		t.Errorf("GiB() = %v", got)
	}
	if got := (512 * Kibibyte).MiB(); got != 0.5 {
		t.Errorf("MiB() = %v", got)
	}
}

func TestTransferTime(t *testing.T) {
	// 1 GB at 125 MB/s = 8 s.
	d := GigabitEthernet.TimeFor(Bytes(1e9))
	if !AlmostEqual(d.Seconds(), 8, 1e-9) {
		t.Fatalf("1GB @ 1Gbps = %v, want 8s", d)
	}
	if d := BytesPerSecond(0).TimeFor(Gibibyte); d < time.Hour {
		t.Fatalf("zero rate should be effectively infinite, got %v", d)
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{(1500 * Watt).String(), "1.50 KW"},
		{(2 * Megawatt).String(), "2.00 MW"},
		{(80 * Watt).String(), "80.0 W"},
		{(1500 * WattHour).String(), "1.50 KWh"},
		{(500 * WattHour).String(), "500.0 Wh"},
		{(2 * Gibibyte).String(), "2.0 GiB"},
		{DollarsPerYear(1.34e6).String(), "1.34 M$/yr"},
		{DollarsPerYear(83300).String(), "83.3 K$/yr"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
	if !strings.Contains(GigabitEthernet.String(), "MB/s") {
		t.Errorf("rate string = %q", GigabitEthernet.String())
	}
}

func TestMinutesRoundTrip(t *testing.T) {
	d := FromMinutes(42)
	if d != 42*time.Minute {
		t.Fatalf("FromMinutes(42) = %v", d)
	}
	if Minutes(d) != 42 {
		t.Fatalf("Minutes = %v", Minutes(d))
	}
}

func TestClamp01(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1},
	} {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClamp01Property(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		v := Clamp01(x)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("tiny diff should be equal")
	}
	if AlmostEqual(1.0, 1.1, 1e-3) {
		t.Error("10% diff should not be equal at 1e-3")
	}
	if !AlmostEqual(1e9, 1e9*(1+1e-6), 1e-5) {
		t.Error("relative tolerance should apply at scale")
	}
	if !AlmostEqual(0, 1e-12, 1e-9) {
		t.Error("absolute tolerance should apply near zero")
	}
}
