// Package outage models utility power outage statistics: the Figure 1
// distributions of outage frequency and duration for US businesses
// (sources [50, 60] in the paper), a reproducible random outage-trace
// generator, and the Section 7 online duration predictor (a Markov chain
// over duration buckets) used by adaptive outage-handling policies.
package outage

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"backuppower/internal/units"
)

// Bucket is one bin of a histogram over durations (or counts).
type Bucket struct {
	Lo, Hi time.Duration
	Prob   float64
}

// Distribution is a bucketed probability distribution over outage
// durations. Within a bucket, mass is spread uniformly.
type Distribution struct {
	Name    string
	Buckets []Bucket
}

// DurationDistribution returns Figure 1(b): outage duration shares for US
// businesses. The open-ended ">240 min" tail is capped at 8 hours.
func DurationDistribution() Distribution {
	m := time.Minute
	return Distribution{
		Name: "us-business-outage-duration",
		Buckets: []Bucket{
			{0, 1 * m, 0.31},
			{1 * m, 5 * m, 0.27},
			{5 * m, 30 * m, 0.14},
			{30 * m, 120 * m, 0.17},
			{120 * m, 240 * m, 0.06},
			{240 * m, 480 * m, 0.05},
		},
	}
}

// FrequencyBucket is one bin of Figure 1(a): yearly outage counts.
type FrequencyBucket struct {
	Lo, Hi int // inclusive count range
	Prob   float64
}

// FrequencyDistribution returns Figure 1(a): outages per year for US
// businesses. The "7+" tail is capped at 12.
func FrequencyDistribution() []FrequencyBucket {
	return []FrequencyBucket{
		{0, 0, 0.17},
		{1, 2, 0.40},
		{3, 6, 0.30},
		{7, 12, 0.13},
	}
}

// Validate checks the distribution sums to 1 and is ordered.
func (d Distribution) Validate() error {
	total := 0.0
	var prev time.Duration
	for i, b := range d.Buckets {
		if b.Hi <= b.Lo {
			return fmt.Errorf("outage: bucket %d empty range", i)
		}
		if b.Lo != prev {
			return fmt.Errorf("outage: bucket %d not contiguous", i)
		}
		if b.Prob < 0 {
			return fmt.Errorf("outage: bucket %d negative probability", i)
		}
		total += b.Prob
		prev = b.Hi
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("outage: probabilities sum to %v", total)
	}
	return nil
}

// CDF returns P(duration <= t).
func (d Distribution) CDF(t time.Duration) float64 {
	p := 0.0
	for _, b := range d.Buckets {
		switch {
		case t >= b.Hi:
			p += b.Prob
		case t > b.Lo:
			frac := float64(t-b.Lo) / float64(b.Hi-b.Lo)
			p += b.Prob * frac
		}
	}
	if p > 1 {
		p = 1 // guard the floating-point sum
	}
	return p
}

// Survival returns P(duration > t).
func (d Distribution) Survival(t time.Duration) float64 { return 1 - d.CDF(t) }

// Mean returns the expected outage duration.
func (d Distribution) Mean() time.Duration {
	var mean float64
	for _, b := range d.Buckets {
		mid := float64(b.Lo+b.Hi) / 2
		mean += b.Prob * mid
	}
	return time.Duration(mean)
}

// Quantile returns the q-quantile (q in [0,1]) of the distribution.
func (d Distribution) Quantile(q float64) time.Duration {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return d.Buckets[len(d.Buckets)-1].Hi
	}
	acc := 0.0
	for _, b := range d.Buckets {
		if acc+b.Prob >= q {
			frac := (q - acc) / b.Prob
			return b.Lo + time.Duration(frac*float64(b.Hi-b.Lo))
		}
		acc += b.Prob
	}
	return d.Buckets[len(d.Buckets)-1].Hi
}

// ExpectedRemaining returns E[duration - t | duration > t]: the expected
// additional outage time given it has already lasted t. This is the §7
// predictor's core quantity — note it GROWS with elapsed time (the
// distribution is heavy-tailed), which is why an adaptive policy escalates
// from throttling to sleep/hibernate as an outage drags on.
func (d Distribution) ExpectedRemaining(t time.Duration) time.Duration {
	surv := d.Survival(t)
	if surv <= 1e-12 {
		return 0
	}
	// E[max(D-t,0)] = integral over buckets of (x - t)+ weighted density.
	var num float64
	for _, b := range d.Buckets {
		if b.Hi <= t {
			continue
		}
		lo := b.Lo
		if lo < t {
			lo = t
		}
		// Uniform density within the bucket: prob / width.
		density := b.Prob / float64(b.Hi-b.Lo)
		width := float64(b.Hi - lo)
		// Mean of (x - t) over [lo, hi) = (lo+hi)/2 - t.
		mid := float64(lo+b.Hi)/2 - float64(t)
		num += density * width * mid
	}
	return time.Duration(num / surv)
}

// RemainingQuantile returns the q-quantile of the remaining duration given
// the outage has already lasted t: the r such that
// P(D <= t+r | D > t) = q. Unlike ExpectedRemaining it is not dominated by
// the heavy tail, which makes it the right optimism knob for an online
// policy (the median remaining of a fresh outage is ~4 minutes even though
// the mean is ~45).
func (d Distribution) RemainingQuantile(t time.Duration, q float64) time.Duration {
	surv := d.Survival(t)
	if surv <= 1e-12 {
		return 0
	}
	target := d.CDF(t) + units.Clamp01(q)*surv
	at := d.Quantile(target)
	if at <= t {
		return 0
	}
	return at - t
}

// ProbEndsWithin returns P(duration <= t+dt | duration > t).
func (d Distribution) ProbEndsWithin(t, dt time.Duration) float64 {
	surv := d.Survival(t)
	if surv <= 1e-12 {
		return 1
	}
	return (d.CDF(t+dt) - d.CDF(t)) / surv
}

// Sample draws a duration from the distribution.
func (d Distribution) Sample(rng *rand.Rand) time.Duration {
	return d.Quantile(rng.Float64())
}

// Event is one outage in a yearly trace.
type Event struct {
	Start    time.Duration // offset into the year
	Duration time.Duration
}

// Generator produces reproducible yearly outage traces from the Figure 1
// distributions.
type Generator struct {
	Durations Distribution
	Frequency []FrequencyBucket
	rng       *rand.Rand
}

// NewGenerator creates a generator with the paper's distributions and a
// deterministic seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{
		Durations: DurationDistribution(),
		Frequency: FrequencyDistribution(),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// DeriveSeed maps a (base seed, stream index) pair to an independent
// deterministic seed via a splitmix64 finalizer. It is the seeding
// discipline for parallel Monte-Carlo fan-outs: each worker (e.g. each
// simulated year) gets its own generator seeded by DeriveSeed(seed, i),
// so traces are independent of both execution order and worker count —
// parallel and serial runs see identical streams.
func DeriveSeed(seed, stream int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(stream)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Year samples one year of outages, sorted by start time and
// non-overlapping.
func (g *Generator) Year() []Event {
	n := g.sampleCount()
	if n == 0 {
		return nil
	}
	year := 365 * 24 * time.Hour
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		events = append(events, Event{
			Start:    time.Duration(g.rng.Int63n(int64(year))),
			Duration: g.Durations.Sample(g.rng),
		})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Start < events[j].Start })
	// Clip overlaps: an outage cannot begin during another outage.
	out := events[:1]
	for _, e := range events[1:] {
		last := &out[len(out)-1]
		if e.Start < last.Start+last.Duration {
			continue
		}
		out = append(out, e)
	}
	return out
}

func (g *Generator) sampleCount() int {
	u := g.rng.Float64()
	acc := 0.0
	for _, b := range g.Frequency {
		acc += b.Prob
		if u <= acc {
			if b.Hi == b.Lo {
				return b.Lo
			}
			return b.Lo + g.rng.Intn(b.Hi-b.Lo+1)
		}
	}
	last := g.Frequency[len(g.Frequency)-1]
	return last.Hi
}

// TotalOutageTime sums the durations of a trace.
func TotalOutageTime(events []Event) time.Duration {
	var total time.Duration
	for _, e := range events {
		total += e.Duration
	}
	return total
}
