// Command costcalc prices an arbitrary backup configuration with the
// paper's cost model (Equations 1-2, Table 1 rates) and compares it to the
// MaxPerf baseline at the same peak.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"backuppower/internal/cost"
	"backuppower/internal/units"
)

func main() {
	peakMW := flag.Float64("peak", 10, "datacenter peak power (MW)")
	dgMW := flag.Float64("dg", 0, "DG power capacity (MW)")
	upsMW := flag.Float64("ups", 10, "UPS power capacity (MW)")
	runtimeMin := flag.Float64("runtime", 30, "UPS rated runtime at capacity (minutes)")
	flag.Parse()

	if *peakMW <= 0 {
		fmt.Fprintln(os.Stderr, "peak must be positive")
		os.Exit(2)
	}
	peak := units.Watts(*peakMW) * units.Megawatt
	b := cost.Custom("custom",
		units.Watts(*dgMW)*units.Megawatt,
		units.Watts(*upsMW)*units.Megawatt,
		time.Duration(*runtimeMin*float64(time.Minute)))
	if err := b.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	bd := cost.Itemize(b)
	fmt.Printf("configuration: DG %v, UPS %v for %v\n",
		b.DG.PowerCapacity, b.UPS.PowerCapacity, b.UPS.Runtime)
	fmt.Printf("  DG cap-ex:          %v\n", bd.DG)
	fmt.Printf("  UPS power cap-ex:   %v\n", bd.UPSPower)
	fmt.Printf("  UPS energy cap-ex:  %v\n", bd.UPSEnergy)
	fmt.Printf("  total:              %v\n", bd.Total)
	fmt.Printf("  vs MaxPerf@%v:  %.2fx\n", peak, b.NormalizedCost(peak))
}
