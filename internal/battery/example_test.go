package battery_test

import (
	"fmt"
	"time"

	"backuppower/internal/battery"
	"backuppower/internal/units"
)

// The Figure 3 battery: rated 10 minutes at 4 KW, it stretches to a full
// hour at quarter load — the nonlinearity the paper's cheap sleep-based
// techniques exploit.
func ExamplePack_RuntimeAt() {
	pack := battery.NewPack(battery.LeadAcid(), 4*units.Kilowatt, 10*time.Minute)
	fmt.Println("100% load:", pack.RuntimeAt(4*units.Kilowatt).Round(time.Minute))
	fmt.Println(" 25% load:", pack.RuntimeAt(1*units.Kilowatt).Round(time.Minute))
	// Output:
	// 100% load: 10m0s
	//  25% load: 1h0m0s
}

// Draining under a varying load: 5 minutes at full power consumes half the
// pack; the remaining half lasts 30 more minutes at quarter load.
func ExampleState_Drain() {
	pack := battery.NewPack(battery.LeadAcid(), 4*units.Kilowatt, 10*time.Minute)
	var s battery.State
	s.Drain(pack, 4*units.Kilowatt, 5*time.Minute)
	fmt.Printf("remaining after burst: %.0f%%\n", s.Remaining()*100)
	fmt.Println("holds at 1 KW for:", s.TimeToEmpty(pack, units.Kilowatt).Round(time.Minute))
	// Output:
	// remaining after burst: 50%
	// holds at 1 KW for: 30m0s
}

// Composing cells for a power rating yields energy for free — the Ragone
// observation behind the paper's FreeRunTime.
func ExampleCompose() {
	bank, err := battery.Compose(battery.VRLABlock(), 192, 8*units.Kilowatt, time.Second)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%dS%dP bank, free runtime ~%v\n",
		bank.Series, bank.Parallel, bank.FreeRuntime().Round(time.Minute))
	// Output:
	// 16S2P bank, free runtime ~15m0s
}
