package core

import (
	"context"
	"testing"
	"time"

	"backuppower/internal/battery"
	"backuppower/internal/cluster"
	"backuppower/internal/genset"
	"backuppower/internal/sweep"
	"backuppower/internal/technique"
	"backuppower/internal/workload"
)

// TestMinCostUPSRuntimeRoundedUpOnce is the regression test for the
// double-padding bug: the sized pack's runtime must be a whole number of
// seconds, the sized configuration must survive its design outage (the
// margin is still sufficient), and the ceiling must be tight — at most one
// second above the 0.1%-margined requirement, where the old code padded up
// to two extra seconds.
func TestMinCostUPSRuntimeRoundedUpOnce(t *testing.T) {
	f := New(16)
	cases := []struct {
		tech   technique.Technique
		outage time.Duration
	}{
		{technique.Throttling{PState: 6}, 30 * time.Minute},
		{technique.Sleep{LowPower: true}, 30 * time.Minute},
		{technique.ThrottleThenSave{PState: 6, Save: technique.SaveSleep, ActiveFraction: 0.25}, 2 * time.Hour},
		{technique.Hibernate{}, time.Hour},
	}
	for _, c := range cases {
		op, ok := f.MinCostUPS(c.tech, workload.Specjbb(), c.outage)
		if !ok {
			t.Fatalf("%s @ %v: sizing failed", c.tech.Name(), c.outage)
		}
		rt := op.Backup.UPS.Runtime
		if rt != rt.Truncate(time.Second) {
			t.Errorf("%s @ %v: runtime %v not whole seconds", c.tech.Name(), c.outage, rt)
		}
		// Tightness: re-derive the margined requirement at the chosen
		// rating and check the ceiling added less than a full second.
		plan := c.tech.Plan(f.Env, workload.Specjbb(), c.outage)
		la := battery.LeadAcid()
		need, okNeed := cluster.RequiredRuntime(f.Env, workload.Specjbb(), plan, genset.None(),
			c.outage, op.Backup.UPS.PowerCapacity, la.PeukertExponent, la.MinLoadFraction)
		if !okNeed {
			t.Fatalf("%s @ %v: requirement underivable at chosen rating", c.tech.Name(), c.outage)
		}
		margined := time.Duration(float64(need) * 1.001)
		if rt < margined {
			t.Errorf("%s @ %v: runtime %v below margined requirement %v",
				c.tech.Name(), c.outage, rt, margined)
		}
		// CustomTech floors the pack at the battery's free runtime; the
		// tightness bound only applies above that floor.
		if margined > la.FreeRunTime && rt > margined+time.Second {
			t.Errorf("%s @ %v: runtime %v > %v — more than a single round-up above the requirement",
				c.tech.Name(), c.outage, rt, margined+time.Second)
		}
		// The sized pack must still ride out the design outage.
		res, err := f.Evaluate(op.Backup, c.tech, workload.Specjbb(), c.outage)
		if err != nil || !res.Survived {
			t.Errorf("%s @ %v: sized pack does not survive (err=%v, res=%+v)",
				c.tech.Name(), c.outage, err, res)
		}
	}
}

// TestMinCostUPSParallelMatchesSerial pins the engine's determinism
// contract at the core layer: the rating sweep and variant fan-out must
// produce identical operating points at any pool width.
func TestMinCostUPSParallelMatchesSerial(t *testing.T) {
	w := workload.Specjbb()
	outage := 30 * time.Minute

	serialCtx := sweep.WithWidth(context.Background(), 1)
	parallelCtx := sweep.WithWidth(context.Background(), 8)

	for _, tech := range []technique.Technique{
		technique.Throttling{PState: 3},
		technique.Sleep{LowPower: true},
		technique.Hibernate{Proactive: true},
	} {
		f := New(16)
		s, okS, errS := f.MinCostUPSCtx(serialCtx, tech, w, outage)
		p, okP, errP := f.MinCostUPSCtx(parallelCtx, tech, w, outage)
		if errS != nil || errP != nil {
			t.Fatalf("%s: errs %v %v", tech.Name(), errS, errP)
		}
		if okS != okP {
			t.Fatalf("%s: feasibility differs serial=%v parallel=%v", tech.Name(), okS, okP)
		}
		if s.Backup != p.Backup || s.NormCost != p.NormCost {
			t.Errorf("%s: serial %+v != parallel %+v", tech.Name(), s.Backup, p.Backup)
		}
	}
}

// TestEvaluateTechniquesParallelMatchesSerial does the same one layer up:
// full family summaries, serial vs parallel, must agree band for band.
func TestEvaluateTechniquesParallelMatchesSerial(t *testing.T) {
	f := New(16)
	w := workload.Memcached()
	serial, errS := f.EvaluateTechniquesCtx(sweep.WithWidth(context.Background(), 1), w, 30*time.Minute)
	parallel, errP := f.EvaluateTechniquesCtx(sweep.WithWidth(context.Background(), 8), w, 30*time.Minute)
	if errS != nil || errP != nil {
		t.Fatalf("errs %v %v", errS, errP)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Technique != p.Technique || s.Feasible != p.Feasible ||
			s.Cost != p.Cost || s.Perf != p.Perf || s.Downtime != p.Downtime ||
			len(s.Points) != len(p.Points) {
			t.Errorf("family %s differs:\nserial   %+v\nparallel %+v", s.Technique, s, p)
		}
	}
}
