package simkit

import (
	"fmt"
	"time"

	"backuppower/internal/units"
)

// Sample is one step of a piecewise-constant signal: the signal holds Value
// from At until the next sample's At.
type Sample struct {
	At    time.Duration
	Value float64
}

// Trace records a piecewise-constant signal over virtual time (server power
// draw, aggregate backup load, normalized application performance). It
// supports exact integration and peak queries, which is how the framework
// derives the energy and power capacity a scenario demands from the backup
// infrastructure.
type Trace struct {
	name    string
	samples []Sample
}

// NewTrace creates a trace with an initial value holding from t=0.
func NewTrace(name string, initial float64) *Trace {
	return &Trace{name: name, samples: []Sample{{At: 0, Value: initial}}}
}

// Name returns the trace's diagnostic name.
func (t *Trace) Name() string { return t.name }

// Set records that the signal changes to v at time at. Times must be
// non-decreasing; setting the same time twice overwrites (last write wins),
// matching "several state changes within one event instant".
func (t *Trace) Set(at time.Duration, v float64) {
	last := &t.samples[len(t.samples)-1]
	if at < last.At {
		panic(fmt.Sprintf("simkit: trace %q set at %v before last sample %v", t.name, at, last.At))
	}
	if at == last.At {
		last.Value = v
		return
	}
	if last.Value == v {
		return // no change; keep the trace compact
	}
	t.samples = append(t.samples, Sample{At: at, Value: v})
}

// At returns the signal value at time at (the value of the latest sample not
// after at).
func (t *Trace) At(at time.Duration) float64 {
	v := t.samples[0].Value
	for _, s := range t.samples {
		if s.At > at {
			break
		}
		v = s.Value
	}
	return v
}

// Last returns the most recent value.
func (t *Trace) Last() float64 { return t.samples[len(t.samples)-1].Value }

// Samples returns a copy of the recorded steps.
func (t *Trace) Samples() []Sample {
	out := make([]Sample, len(t.samples))
	copy(out, t.samples)
	return out
}

// Integrate returns the exact integral of the signal over [from, to] in
// value·hours. For a power trace in watts this is watt-hours.
func (t *Trace) Integrate(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	total := 0.0
	for i, s := range t.samples {
		segStart := s.At
		segEnd := to
		if i+1 < len(t.samples) {
			segEnd = t.samples[i+1].At
		}
		if segEnd <= from || segStart >= to {
			continue
		}
		if segStart < from {
			segStart = from
		}
		if segEnd > to {
			segEnd = to
		}
		total += s.Value * (segEnd - segStart).Hours()
	}
	return total
}

// Mean returns the time-average of the signal over [from, to].
func (t *Trace) Mean(from, to time.Duration) float64 {
	if to <= from {
		return t.At(from)
	}
	return t.Integrate(from, to) / (to - from).Hours()
}

// Peak returns the maximum value the signal holds anywhere in [from, to].
func (t *Trace) Peak(from, to time.Duration) float64 {
	peak := t.At(from)
	for _, s := range t.samples {
		if s.At >= to {
			break
		}
		if s.At >= from && s.Value > peak {
			peak = s.Value
		}
	}
	return peak
}

// TimeBelow returns the total time within [from, to] during which the
// signal is strictly below threshold. Used for downtime accounting
// (performance == 0) and degraded-service accounting.
func (t *Trace) TimeBelow(from, to time.Duration, threshold float64) time.Duration {
	if to <= from {
		return 0
	}
	var total time.Duration
	for i, s := range t.samples {
		segStart := s.At
		segEnd := to
		if i+1 < len(t.samples) {
			segEnd = t.samples[i+1].At
		}
		if segEnd <= from || segStart >= to {
			continue
		}
		if segStart < from {
			segStart = from
		}
		if segEnd > to {
			segEnd = to
		}
		if s.Value < threshold {
			total += segEnd - segStart
		}
	}
	return total
}

// EnergyWh interprets the trace as a power signal in watts and returns the
// energy in watt-hours over [from, to].
func (t *Trace) EnergyWh(from, to time.Duration) units.WattHours {
	return units.WattHours(t.Integrate(from, to))
}

// PeakWatts interprets the trace as a power signal in watts and returns the
// peak over [from, to].
func (t *Trace) PeakWatts(from, to time.Duration) units.Watts {
	return units.Watts(t.Peak(from, to))
}
