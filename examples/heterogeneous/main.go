// Heterogeneous provisioning (§7): a datacenter hosting four applications
// with very different performability requirements gets four differently
// sized backup sections instead of one MaxPerf monolith.
package main

import (
	"fmt"
	"os"
	"time"

	backuppower "backuppower"
)

func main() {
	p := backuppower.NewPortfolioPlanner(backuppower.NewFramework(40))
	reqs := []backuppower.PortfolioRequirement{
		{
			// Front-end search: must keep answering queries with barely a
			// blip, even mid-outage.
			Workload: backuppower.WebSearch(), Servers: 480,
			SLA: backuppower.PortfolioSLA{
				Outage: 10 * time.Minute, MinPerf: 0.5, MaxDowntime: 30 * time.Second,
			},
		},
		{
			// Cache tier: tolerate a brief dip, never a long reload.
			Workload: backuppower.Memcached(), Servers: 240,
			SLA: backuppower.PortfolioSLA{
				Outage: 10 * time.Minute, MinPerf: 0.3, MaxDowntime: 3 * time.Minute,
			},
		},
		{
			// Transactional middle tier: state must survive, pauses OK.
			Workload: backuppower.Specjbb(), Servers: 240,
			SLA: backuppower.PortfolioSLA{
				Outage: 30 * time.Minute, MaxDowntime: 45 * time.Minute,
				RequireStateSafety: true,
			},
		},
		{
			// Batch analytics: cheapest thing that doesn't lose a day.
			Workload: backuppower.SpecCPU(), Servers: 960,
			SLA: backuppower.PortfolioSLA{
				Outage: 30 * time.Minute, MaxDowntime: 3 * time.Hour,
			},
		},
	}

	plan, err := p.Design(reqs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "design failed:", err)
		os.Exit(1)
	}

	fmt.Println("heterogeneous backup plan:")
	fmt.Printf("%-14s %7s  %-26s %-22s %12s  %5s  %9s\n",
		"workload", "servers", "technique", "backup", "$/yr", "perf", "downtime")
	for _, s := range plan.Sections {
		fmt.Printf("%-14s %7d  %-26s %-22s %12.0f  %5.2f  %9v\n",
			s.Workload, s.Servers, s.Technique, s.Backup.Name,
			float64(s.AnnualCost), s.Perf, s.Downtime.Round(time.Second))
	}
	fmt.Printf("\ntotal: %v  (all-MaxPerf would cost %v — %.0f%% saved)\n",
		plan.TotalCost, plan.MaxPerfCost, plan.Savings()*100)
}
