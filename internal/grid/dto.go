package grid

import (
	"encoding/json"
	"fmt"
	"io"

	"backuppower/internal/cluster"
	"backuppower/internal/cost"
)

// ResultDTO mirrors cluster.Result without the trace pointers. It is the
// shared response shape: POST /v1/evaluate embeds one, /v1/sweep and
// cmd/gridrun stream one per row. Durations render in Go's canonical
// syntax; powers/energies are plain numbers with the unit in the field
// name, so the encoding is deterministic (golden tests pin it).
type ResultDTO struct {
	Technique       string  `json:"technique"`
	Config          string  `json:"config"`
	Workload        string  `json:"workload"`
	Outage          string  `json:"outage"`
	Survived        bool    `json:"survived"`
	CrashedAt       string  `json:"crashed_at,omitempty"`
	Perf            float64 `json:"perf"`
	Downtime        string  `json:"downtime"`
	DowntimeMin     string  `json:"downtime_min"`
	DowntimeMax     string  `json:"downtime_max"`
	PeakUPSDrawW    float64 `json:"peak_ups_draw_w"`
	PeakBackupDrawW float64 `json:"peak_backup_draw_w"`
	UPSEnergyWh     float64 `json:"ups_energy_wh"`
	UPSRemaining    float64 `json:"ups_remaining"`
	NormCost        float64 `json:"norm_cost"`
}

// NewResultDTO converts a simulation result to its wire shape.
func NewResultDTO(r cluster.Result) ResultDTO {
	d := ResultDTO{
		Technique:       r.Technique,
		Config:          r.Config,
		Workload:        r.Workload,
		Outage:          r.Outage.String(),
		Survived:        r.Survived,
		Perf:            r.Perf,
		Downtime:        r.Downtime.String(),
		DowntimeMin:     r.DowntimeMin.String(),
		DowntimeMax:     r.DowntimeMax.String(),
		PeakUPSDrawW:    float64(r.PeakUPSDraw),
		PeakBackupDrawW: float64(r.PeakBackupDraw),
		UPSEnergyWh:     float64(r.UPSEnergy),
		UPSRemaining:    r.UPSRemaining,
		NormCost:        r.Cost,
	}
	if !r.Survived {
		d.CrashedAt = r.CrashedAt.String()
	}
	return d
}

// BackupDTO describes a concrete backup configuration in a response.
type BackupDTO struct {
	Name              string  `json:"name"`
	DGPowerW          float64 `json:"dg_power_w"`
	UPSPowerW         float64 `json:"ups_power_w"`
	UPSRuntime        string  `json:"ups_runtime"`
	AnnualCostDollars float64 `json:"annual_cost_dollars_per_year"`
}

// NewBackupDTO converts a backup configuration to its wire shape.
func NewBackupDTO(b cost.Backup) BackupDTO {
	return BackupDTO{
		Name:              b.Name,
		DGPowerW:          float64(b.DG.PowerCapacity),
		UPSPowerW:         float64(b.UPS.PowerCapacity),
		UPSRuntime:        b.UPS.Runtime.String(),
		AnnualCostDollars: float64(b.AnnualCost()),
	}
}

// RowDTO is one NDJSON line of a streamed sweep: the row's coordinates
// followed by its op-specific payload. Exactly one of the payload groups
// is populated — evaluate fills result; size fills feasible (plus
// backup/norm_cost/result when feasible); best fills best and result.
// A row-level evaluation failure fills error instead.
type RowDTO struct {
	Index     int        `json:"index"`
	Op        string     `json:"op"`
	Servers   int        `json:"servers"`
	Workload  string     `json:"workload"`
	Config    string     `json:"config,omitempty"`
	Family    string     `json:"family,omitempty"`
	Technique string     `json:"technique,omitempty"`

	// Outage is the point-outage coordinate; process rows omit it and
	// carry their resolved process spec in Process instead.
	Outage  string      `json:"outage,omitempty"`
	Process *ProcessDTO `json:"process,omitempty"`

	Feasible      *bool             `json:"feasible,omitempty"`
	NormCost      float64           `json:"norm_cost,omitempty"`
	Backup        *BackupDTO        `json:"backup,omitempty"`
	Best          string            `json:"best,omitempty"`
	Result        *ResultDTO        `json:"result,omitempty"`
	ProcessResult *ProcessResultDTO `json:"process_result,omitempty"`
	Error         string            `json:"error,omitempty"`
}

// NewRowDTO converts one runner row to its wire shape.
func NewRowDTO(op string, row RowResult) RowDTO {
	p := row.Point
	d := RowDTO{
		Index:    p.Index,
		Op:       op,
		Servers:  p.Servers,
		Workload: p.Workload.Name,
		Family:   p.Family,
	}
	if p.Process != nil {
		pd := ProcessDTOFromProcess(p.Process)
		d.Process = &pd
	} else {
		d.Outage = p.Outage.String()
	}
	if p.HasConfig {
		d.Config = p.Config.Name
	}
	if p.Technique != nil {
		d.Technique = p.Technique.Name()
	}
	if row.Err != nil {
		d.Error = row.Err.Error()
		return d
	}
	switch op {
	case OpSize:
		feasible := row.Feasible
		d.Feasible = &feasible
		if feasible {
			d.Technique = row.Sizing.Technique
			d.NormCost = row.Sizing.NormCost
			b := NewBackupDTO(row.Sizing.Backup)
			d.Backup = &b
			r := NewResultDTO(row.Sizing.Result)
			d.Result = &r
		}
	case OpBest:
		d.Best = row.Best
		r := NewResultDTO(row.Result)
		d.Result = &r
	default: // OpEvaluate
		if row.Process != nil {
			r := NewProcessResultDTO(*row.Process)
			d.ProcessResult = &r
		} else {
			r := NewResultDTO(row.Result)
			d.Result = &r
		}
	}
	return d
}

// WriteNDJSON encodes rows to w, one JSON object per line — the exact
// bytes /v1/sweep streams and cmd/gridrun prints, shared so the two
// surfaces cannot diverge.
func WriteNDJSON(w io.Writer, op string, rows []RowResult) error {
	enc := json.NewEncoder(w)
	for _, row := range rows {
		if err := enc.Encode(NewRowDTO(op, row)); err != nil {
			return fmt.Errorf("encode row %d: %w", row.Point.Index, err)
		}
	}
	return nil
}
