package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"backuppower/internal/grid"
	"backuppower/internal/httpapi"
)

// Handler returns the coordinator's serving surface: POST /v1/sweep
// decodes the same body backupd takes (spec plus optional timeout) and
// streams the merged NDJSON back, GET /metrics serves the metrics
// document, and GET /healthz answers liveness probes. cmd/sweepfront
// -serve mounts exactly this handler, and in-process consumers (tests,
// cmd/vulture's multi-worker loopback target) serve it on a local
// listener to exercise the fabric through real HTTP.
//
// Runs are independent and safe to serve concurrently. A failure after
// the stream has started is reported in-band as a final NDJSON error
// line, the same contract as backupd's /v1/sweep.
func (f *Fabric) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Spec    grid.Spec `json:"spec"`
			Timeout string    `json:"timeout,omitempty"`
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf(`{"error":{"code":"invalid_json","message":%q}}`, err.Error()), http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		if req.Timeout != "" {
			d, err := time.ParseDuration(req.Timeout)
			if err != nil || d <= 0 {
				http.Error(w, `{"error":{"code":"invalid_duration","field":"timeout"}}`, http.StatusBadRequest)
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		flusher, _ := w.(http.Flusher)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		if err := f.Run(ctx, req.Spec, w); err != nil {
			json.NewEncoder(w).Encode(map[string]any{
				"error": map[string]string{"code": "fabric_failed", "message": err.Error()},
			})
		}
		if flusher != nil {
			flusher.Flush()
		}
	})
	mux.Handle("GET /metrics", f.Metrics())
	if f.opt.Store != nil {
		// The coordinator serves reads over its own store through the
		// exact handler backupd mounts, so the two surfaces return the
		// same bytes for the same stored rows.
		mux.Handle("GET /v1/results", httpapi.NewResultsHandler(f.opt.Store))
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}` + "\n"))
	})
	return mux
}
