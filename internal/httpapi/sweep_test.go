package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sweepSpecJSON is the shared probe body: a 2-workload × 2-config ×
// 2-technique × 3-outage evaluate grid (24 rows), small enough to run in
// milliseconds but wide enough that parallel execution reorders work.
const sweepSpecJSON = `{
	"workloads": ["specjbb", "memcached"],
	"configs": [{"name": "MaxPerf"}, {"name": "NoDG"}],
	"techniques": [{"name": "baseline"}, {"name": "throttling", "pstate": 3}],
	"outages": ["30s", "5m", "30m"]
}`

func sweepBody(extra string) string {
	if extra != "" {
		extra = "," + extra
	}
	return `{"spec":` + sweepSpecJSON + extra + `}`
}

// TestSweepStreamDeterministic is the endpoint half of the tentpole's
// determinism contract: the NDJSON body must be byte-identical at any
// requested width and any shard size.
func TestSweepStreamDeterministic(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, baseline := post(t, ts.URL+"/v1/sweep", sweepBody(`"width":1,"shard_size":1`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline status %d: %s", resp.StatusCode, baseline)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSuffix(string(baseline), "\n"), "\n")
	if len(lines) != 24 {
		t.Fatalf("got %d rows, want 24", len(lines))
	}
	for i, line := range lines {
		var row struct {
			Index *int   `json:"index"`
			Op    string `json:"op"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row %d is not JSON: %v: %s", i, err, line)
		}
		if row.Index == nil || *row.Index != i || row.Op != "evaluate" {
			t.Fatalf("row %d out of order or mislabeled: %s", i, line)
		}
	}

	for _, extra := range []string{
		``, `"width":8`, `"width":8,"shard_size":3`, `"width":2,"shard_size":1000`, `"shard_size":5`,
	} {
		resp, b := post(t, ts.URL+"/v1/sweep", sweepBody(extra))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", extra, resp.StatusCode, b)
		}
		if !bytes.Equal(b, baseline) {
			t.Fatalf("response with %q diverged from the serial baseline", extra)
		}
	}
}

// TestSweepValidation covers the request-level rejections: malformed
// bodies, compile errors (with the grid's field addressing), row-bound
// enforcement, and knob ranges — all as typed 4xx JSON, never a stream.
func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) *Server {
		cfg.MaxSweepRows = 10
		return nil
	})
	cases := []struct {
		name  string
		body  string
		code  string
		field string
	}{
		{"trailing garbage", `{"spec":{}} x`, "invalid_json", ""},
		{"unknown spec field", `{"spec":{"shards":4}}`, "invalid_json", ""},
		{"unknown op", `{"spec":{"op":"optimize"}}`, "invalid_field", "op"},
		{"missing workloads", `{"spec":{"outages":["30s"],"technique_variants":true,"op":"size"}}`,
			"missing_field", "workloads"},
		{"bad axis element", `{"spec":{"workloads":["specjbb"],"technique_variants":true,"op":"size",` +
			`"outages":["30s","never"]}}`, "invalid_duration", "outages[1]"},
		{"bad nested technique", `{"spec":{"workloads":["specjbb"],"outages":["30s"],` +
			`"configs":[{"name":"MaxPerf"}],"techniques":[{"name":"baseline"},{"name":"warp"}]}}`,
			"unknown_technique", "techniques[1].name"},
		{"row bound", sweepBody(``), "too_many_rows", "max_rows"},
		{"bad width", `{"spec":{},"width":-1}`, "out_of_range", "width"},
		{"bad shard size", `{"spec":{},"shard_size":-1}`, "out_of_range", "shard_size"},
		{"bad timeout", `{"spec":{},"timeout":"soon"}`, "invalid_duration", "timeout"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, b := post(t, ts.URL+"/v1/sweep", c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, b)
			}
			var eb ErrorBody
			if err := json.Unmarshal(b, &eb); err != nil {
				t.Fatalf("error body is not JSON: %v: %s", err, b)
			}
			if eb.Error.Code != c.code || eb.Error.Field != c.field {
				t.Fatalf("got (%s, %s): %s; want (%s, %s)",
					eb.Error.Code, eb.Error.Field, eb.Error.Message, c.code, c.field)
			}
		})
	}
}

// TestSweepDeadlineMidStream pins the in-band failure path: once the
// stream has begun the status line is spent, so a deadline expiry must
// arrive as a final NDJSON error line rather than a 504.
func TestSweepDeadlineMidStream(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, b := post(t, ts.URL+"/v1/sweep", sweepBody(`"timeout":"1ns"`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streaming failure changed the status: %d: %s", resp.StatusCode, b)
	}
	lines := strings.Split(strings.TrimSuffix(string(b), "\n"), "\n")
	last := lines[len(lines)-1]
	var eb ErrorBody
	if err := json.Unmarshal([]byte(last), &eb); err != nil || eb.Error.Code != "deadline_exceeded" {
		t.Fatalf("final line is not the deadline error: %s", last)
	}
	if len(lines) > 24 {
		t.Fatalf("stream kept going after the deadline: %d lines", len(lines))
	}
}

// TestSweepSaturationReturns429: admission control applies to sweeps
// exactly as to single evaluations — the stream never starts on a
// saturated server.
func TestSweepSaturationReturns429(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv, ts := newTestServer(t, func(cfg *Config) *Server {
		cfg.MaxInflight = 1
		return nil
	})
	srv.testHookEvalStarted = func(context.Context) {
		close(started)
		<-release
	}

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(sweepBody(``)))
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	resp, b := post(t, ts.URL+"/v1/sweep", sweepBody(``))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second sweep on a full server: status %d: %s", resp.StatusCode, b)
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestSweepRowRange pins the shard-execution contract the fabric
// coordinator relies on: a row_range request streams exactly the
// requested lines of the full stream — same bytes, same indices — and
// carries the identity/extent headers.
func TestSweepRowRange(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) *Server {
		cfg.WorkerID = "w-test"
		return nil
	})
	resp, full := post(t, ts.URL+"/v1/sweep", sweepBody(``))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full sweep status %d: %s", resp.StatusCode, full)
	}
	if got := resp.Header.Get("X-Backupd-Worker"); got != "w-test" {
		t.Fatalf("X-Backupd-Worker = %q, want w-test", got)
	}
	if got := resp.Header.Get("X-Sweep-Plan-Rows"); got != "24" {
		t.Fatalf("X-Sweep-Plan-Rows = %q, want 24", got)
	}
	lines := strings.SplitAfter(string(full), "\n")

	for _, r := range [][2]int{{0, 24}, {0, 1}, {2, 5}, {23, 24}, {5, 24}} {
		body := sweepBody(fmt.Sprintf(`"row_range":{"start":%d,"end":%d}`, r[0], r[1]))
		resp, part := post(t, ts.URL+"/v1/sweep", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("range %v status %d: %s", r, resp.StatusCode, part)
		}
		if got, want := resp.Header.Get("X-Sweep-Rows"), fmt.Sprintf("%d", r[1]-r[0]); got != want {
			t.Fatalf("range %v X-Sweep-Rows = %q, want %q", r, got, want)
		}
		want := strings.Join(lines[r[0]:r[1]], "")
		if string(part) != want {
			t.Fatalf("range %v stream differs from the full stream's slice:\ngot:\n%s\nwant:\n%s",
				r, part, want)
		}
	}
}

// TestSweepRowRangeValidation: out-of-plan and empty ranges are typed
// 400s, decided before the stream starts.
func TestSweepRowRangeValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, rr := range []string{
		`{"start":-1,"end":2}`, `{"start":0,"end":25}`, `{"start":7,"end":7}`, `{"start":9,"end":3}`,
	} {
		resp, b := post(t, ts.URL+"/v1/sweep", sweepBody(`"row_range":`+rr))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("row_range %s: status %d: %s", rr, resp.StatusCode, b)
		}
		var eb ErrorBody
		if err := json.Unmarshal(b, &eb); err != nil || eb.Error.Code != "out_of_range" || eb.Error.Field != "row_range" {
			t.Fatalf("row_range %s: unexpected rejection: %s", rr, b)
		}
	}
}

// TestGoldenSweep pins one representative NDJSON row stream per op to a
// committed golden file, with each line canonicalized the way the other
// endpoint goldens are. Regenerate with `go test ./internal/httpapi -update`.
func TestGoldenSweep(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
	}{
		{"sweep-evaluate", `{"spec":{"workloads":["specjbb"],"configs":[{"name":"LargeEUPS"}],` +
			`"techniques":[{"name":"throttle-then-save","pstate":6,"save":"hibernate"}],` +
			`"outages":["30s","30m","2h"]}}`},
		{"sweep-size", `{"spec":{"op":"size","workloads":["web-search"],` +
			`"techniques":[{"name":"hibernate","proactive":true},{"name":"baseline"}],"outages":["1h"]}}`},
		{"sweep-best", `{"spec":{"op":"best","workloads":["memcached"],` +
			`"configs":[{"name":"SmallPUPS"},{"name":"MinCost"}],"outages":["30m"]}}`},
		{"sweep-process", `{"spec":{"workloads":["specjbb"],"configs":[{"name":"NoDG"}],` +
			`"techniques":[{"name":"baseline"},{"name":"sleep","low_power":true}],` +
			`"outage_processes":[` +
			`{"seed":42,"draws":8,"arrival":{"kind":"exponential","mean":"2000h"},` +
			`"duration":{"kind":"weibull","mean":"30m","shape":0.8},"correlation":0.3},` +
			`{"seed":7,"draws":4,"arrival":{"kind":"empirical"},"duration":{"kind":"empirical"}}]}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, raw := post(t, ts.URL+"/v1/sweep", c.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, raw)
			}
			var got bytes.Buffer
			for i, line := range strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n") {
				fmt.Fprintf(&got, "# row %d\n", i)
				got.Write(canonicalJSON(t, []byte(line)))
			}

			path := filepath.Join("testdata", c.name+".golden.ndjson")
			if *update {
				if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/httpapi -update` to create)", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("sweep stream drifted from golden file %s:\ngot:\n%s\nwant:\n%s",
					path, got.Bytes(), want)
			}
		})
	}
}
