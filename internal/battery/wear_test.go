package battery

import (
	"math"
	"testing"

	"backuppower/internal/units"
)

func TestWearModelsValid(t *testing.T) {
	if err := LeadAcidWear().Validate(); err != nil {
		t.Errorf("lead-acid wear invalid: %v", err)
	}
	if err := LiIonWear().Validate(); err != nil {
		t.Errorf("li-ion wear invalid: %v", err)
	}
	mutate := []func(*WearModel){
		func(w *WearModel) { w.CalendarLifeYears = 0 },
		func(w *WearModel) { w.CyclesAtFullDoD = 0 },
		func(w *WearModel) { w.WoehlerExponent = 0.5 },
	}
	for i, m := range mutate {
		w := LeadAcidWear()
		m(&w)
		if w.Validate() == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestCyclesAtShape(t *testing.T) {
	w := LeadAcidWear()
	if got := w.CyclesAt(1); got != 500 {
		t.Errorf("full DoD cycles = %v", got)
	}
	// Shallow cycles are disproportionately cheap.
	half := w.CyclesAt(0.5)
	if half <= 1000 {
		t.Errorf("half DoD cycles = %v, want > 2x full (Wöhler)", half)
	}
	if !math.IsInf(w.CyclesAt(0), 1) {
		t.Error("zero DoD should be free")
	}
	// DoD above 1 clamps.
	if w.CyclesAt(2) != w.CyclesAt(1) {
		t.Error("DoD should clamp at 1")
	}
}

func TestPaperWearClaim(t *testing.T) {
	// Section 2(d): for backup duty, wear is dominated by calendar aging;
	// for peak shaving it is not.
	w := LeadAcidWear()
	backup := w.LifeYears(BackupDuty())
	shaving := w.LifeYears(PeakShavingDuty())
	// Backup life ≈ calendar life (within 2%).
	if !units.AlmostEqual(backup, w.CalendarLifeYears, 0.02) {
		t.Errorf("backup life = %v years, want ~%v (calendar-dominated)", backup, w.CalendarLifeYears)
	}
	// Peak shaving at least halves the life.
	if shaving > w.CalendarLifeYears/2 {
		t.Errorf("peak-shaving life = %v years, want heavy wear", shaving)
	}
	// Cost multipliers follow.
	if m := w.CostMultiplier(BackupDuty()); m > 1.03 {
		t.Errorf("backup cost multiplier = %v, want ~1", m)
	}
	if m := w.CostMultiplier(PeakShavingDuty()); m < 2 {
		t.Errorf("peak-shaving multiplier = %v, want >= 2", m)
	}
}

func TestLiIonOutlastsLeadAcid(t *testing.T) {
	la, li := LeadAcidWear(), LiIonWear()
	if li.LifeYears(PeakShavingDuty()) <= la.LifeYears(PeakShavingDuty()) {
		t.Error("li-ion should outlast lead-acid under cycling")
	}
	if li.LifeYears(BackupDuty()) <= la.LifeYears(BackupDuty()) {
		t.Error("li-ion should outlast lead-acid on the shelf too")
	}
}

func TestLifeYearsMonotone(t *testing.T) {
	w := LeadAcidWear()
	prev := math.Inf(1)
	for _, cpy := range []float64{0, 1, 10, 100, 1000} {
		life := w.LifeYears(cpy, 0.5)
		if life > prev {
			t.Fatalf("life grew with more cycling at %v/yr", cpy)
		}
		if life > w.CalendarLifeYears {
			t.Fatalf("life %v exceeds calendar bound", life)
		}
		prev = life
	}
	// Negative cycling clamps to zero.
	if w.LifeYears(-5, 0.5) != w.LifeYears(0, 0.5) {
		t.Error("negative cycles should clamp")
	}
}
