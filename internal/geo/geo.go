// Package geo models the multi-datacenter context of Sections 1 and 7:
// organizations with geo-replicated, power-uncorrelated sites can redirect
// load during an outage instead of (or in addition to) riding it locally.
// The catch the paper calls out: "power outages can cause load increase at
// the failed-over site, unless adequate spare capacity is set aside." This
// package prices that spare capacity against the backup savings it enables
// and derives the degraded service level a failover actually delivers.
package geo

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"backuppower/internal/outage"
	"backuppower/internal/units"
)

// Site is one datacenter of the fleet.
type Site struct {
	Name string
	// Capacity is the site's total serving capacity (normalized request
	// units; watts work too since load tracks power).
	Capacity float64
	// Load is the site's normal-operation load.
	Load float64
	// OutageSeed decorrelates this site's utility from the others.
	OutageSeed int64
}

// Validate checks the site.
func (s Site) Validate() error {
	if s.Capacity <= 0 {
		return fmt.Errorf("geo: site %s non-positive capacity", s.Name)
	}
	if s.Load < 0 || s.Load > s.Capacity {
		return fmt.Errorf("geo: site %s load %v out of [0, capacity]", s.Name, s.Load)
	}
	return nil
}

// Headroom is the spare capacity fraction.
func (s Site) Headroom() float64 {
	return (s.Capacity - s.Load) / s.Capacity
}

// Fleet is a set of geo-replicated sites serving one global workload.
type Fleet struct {
	Sites []Site
	// WANPenalty derates service delivered from a remote site (latency
	// inflation pushing requests past their deadline budget).
	WANPenalty float64
}

// Validate checks the fleet.
func (f Fleet) Validate() error {
	if len(f.Sites) < 2 {
		return fmt.Errorf("geo: fleet needs >= 2 sites")
	}
	names := map[string]bool{}
	for _, s := range f.Sites {
		if err := s.Validate(); err != nil {
			return err
		}
		if names[s.Name] {
			return fmt.Errorf("geo: duplicate site %s", s.Name)
		}
		names[s.Name] = true
	}
	if f.WANPenalty < 0 || f.WANPenalty >= 1 {
		return fmt.Errorf("geo: WAN penalty %v out of [0,1)", f.WANPenalty)
	}
	return nil
}

// Uniform builds n identical sites at the given utilization, with
// decorrelated outage seeds derived from seed.
func Uniform(n int, utilization, wanPenalty float64, seed int64) (Fleet, error) {
	if n < 2 {
		return Fleet{}, fmt.Errorf("geo: need >= 2 sites")
	}
	rng := rand.New(rand.NewSource(seed))
	f := Fleet{WANPenalty: wanPenalty}
	for i := 0; i < n; i++ {
		f.Sites = append(f.Sites, Site{
			Name:       fmt.Sprintf("site-%d", i),
			Capacity:   1,
			Load:       utilization,
			OutageSeed: rng.Int63(),
		})
	}
	return f, f.Validate()
}

// FailoverLevel returns the normalized service level the fleet delivers
// for the load of `down` failed sites absorbed by the survivors: the
// redirected load fills the survivors' headroom; anything beyond it is
// shed, and what is served remotely pays the WAN penalty.
func (f Fleet) FailoverLevel(down int) float64 {
	n := len(f.Sites)
	if down <= 0 {
		return 1
	}
	if down >= n {
		return 0
	}
	var displaced, spare, survivorLoad float64
	for i, s := range f.Sites {
		if i < down {
			displaced += s.Load
		} else {
			spare += s.Capacity - s.Load
			survivorLoad += s.Load
		}
	}
	absorbed := displaced
	if absorbed > spare {
		absorbed = spare
	}
	// Survivors' own traffic is unaffected; absorbed traffic pays the WAN
	// penalty; the rest is lost.
	total := displaced + survivorLoad
	served := survivorLoad + absorbed*(1-f.WANPenalty)
	return units.Clamp01(served / total)
}

// RequiredHeadroom returns the per-site spare-capacity fraction a uniform
// fleet needs so that `down` simultaneous site failures lose no traffic
// (before the WAN penalty).
func RequiredHeadroom(sites, down int) float64 {
	if down <= 0 || sites <= down {
		return 0
	}
	// (sites-down) * h*c >= down * (1-h)*c  =>  h >= down/sites.
	return float64(down) / float64(sites)
}

// YearReport summarizes a Monte-Carlo year of fleet operation.
type YearReport struct {
	SiteOutages     int
	OverlapEvents   int           // instants where >= 2 sites were dark at once
	WorstLevel      float64       // lowest global service level seen
	DegradedTime    time.Duration // time below full service
	ServiceLossTime time.Duration // (1-level)-weighted degraded time
}

// SimulateYear samples per-site outage traces (decorrelated seeds) and
// sweeps the year, computing the global service level whenever any site is
// dark. It assumes failed sites redirect instantly (their local backup
// question is what the rest of this library answers).
func (f Fleet) SimulateYear(year int64) (YearReport, error) {
	if err := f.Validate(); err != nil {
		return YearReport{}, err
	}
	type span struct{ start, end time.Duration }
	perSite := make([][]span, len(f.Sites))
	var rep YearReport
	var cuts []time.Duration
	for i, s := range f.Sites {
		gen := outage.NewGenerator(s.OutageSeed + year)
		for _, ev := range gen.Year() {
			perSite[i] = append(perSite[i], span{ev.Start, ev.Start + ev.Duration})
			cuts = append(cuts, ev.Start, ev.Start+ev.Duration)
			rep.SiteOutages++
		}
	}
	if len(cuts) == 0 {
		rep.WorstLevel = 1
		return rep, nil
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	rep.WorstLevel = 1
	for i := 0; i+1 < len(cuts); i++ {
		mid := cuts[i] + (cuts[i+1]-cuts[i])/2
		down := 0
		for _, spans := range perSite {
			for _, sp := range spans {
				if mid >= sp.start && mid < sp.end {
					down++
					break
				}
			}
		}
		if down == 0 {
			continue
		}
		if down >= 2 {
			rep.OverlapEvents++
		}
		level := f.FailoverLevel(down)
		if level < rep.WorstLevel {
			rep.WorstLevel = level
		}
		dur := cuts[i+1] - cuts[i]
		rep.DegradedTime += dur
		rep.ServiceLossTime += time.Duration(float64(dur) * (1 - level))
	}
	return rep, nil
}
