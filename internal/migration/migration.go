// Package migration implements the consolidation-and-shutdown techniques of
// Section 5 on top of the memory and network models: Xen-style iterative
// pre-copy live migration, and Remus-style proactive replication that keeps
// a warm remote copy during normal operation so only the residual dirty
// state moves after a power failure.
//
// Calibration: the paper measures SPECjbb's 18 GB VM taking ~10 minutes to
// live-migrate over 1 GbE, and ~5 minutes with proactive migration (residue
// reduced to ~10 GB). Xen-era live migration achieves well below line rate
// (~450 Mbps effective) because of page-table walking, shadow-page-table
// costs, and the migration process's own CPU use — captured here as the
// link's migration efficiency.
package migration

import (
	"fmt"
	"time"

	"backuppower/internal/memsim"
	"backuppower/internal/netsim"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// Config parameterizes the migration engine.
type Config struct {
	Link netsim.Link

	// MigrationEfficiency derates the link's goodput for live-migration
	// traffic (hypervisor overheads). ~0.45 reproduces the paper's
	// SPECjbb timings.
	MigrationEfficiency float64

	// StopCopyThreshold is the remaining-dirty cutoff at which the VM is
	// paused and the rest moved (the brief downtime of live migration).
	StopCopyThreshold units.Bytes

	// MaxRounds caps pre-copy iterations (Xen default ~30).
	MaxRounds int

	// PowerSpikeFraction is the momentary extra power (fraction of server
	// peak dynamic range) drawn while a migration saturates the NIC and
	// memory bus — the reason §5 notes "even migration ... can create a
	// momentary spike" and pairs migration with throttling for capping.
	PowerSpikeFraction float64
}

// DefaultConfig returns the calibrated engine configuration.
func DefaultConfig() Config {
	return Config{
		Link:                netsim.DefaultGigabit(),
		MigrationEfficiency: 0.45,
		StopCopyThreshold:   64 * units.Mebibyte,
		MaxRounds:           30,
		PowerSpikeFraction:  0.10,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Link.Validate(); err != nil {
		return err
	}
	switch {
	case c.MigrationEfficiency <= 0 || c.MigrationEfficiency > 1:
		return fmt.Errorf("migration: efficiency %v out of (0,1]", c.MigrationEfficiency)
	case c.StopCopyThreshold <= 0:
		return fmt.Errorf("migration: non-positive stop-copy threshold")
	case c.MaxRounds < 1:
		return fmt.Errorf("migration: max rounds %d < 1", c.MaxRounds)
	case c.PowerSpikeFraction < 0 || c.PowerSpikeFraction > 1:
		return fmt.Errorf("migration: power spike fraction %v out of [0,1]", c.PowerSpikeFraction)
	}
	return nil
}

// Rate is the effective migration bandwidth per transfer with `sharers`
// concurrent migrations on the link.
func (c Config) Rate(sharers int) units.BytesPerSecond {
	return c.Link.SustainedRate(sharers) * units.BytesPerSecond(c.MigrationEfficiency)
}

// Plan is a computed migration: how long it takes, how much moves, and the
// service interruption it causes.
type Plan struct {
	Kind        string // "live" or "proactive"
	State       units.Bytes
	Transferred units.Bytes
	Duration    time.Duration // source stays powered this long
	Downtime    time.Duration // stop-and-copy pause
	Converged   bool
	Rounds      int
}

// Live computes a live migration of the workload's full VM image while the
// application keeps running (and dirtying) on the source.
func Live(cfg Config, w workload.Spec, sharers int) Plan {
	res := memsim.Precopy(w.Memory, w.VMImage, cfg.Rate(sharers), cfg.StopCopyThreshold, cfg.MaxRounds)
	return Plan{
		Kind:        "live",
		State:       w.VMImage,
		Transferred: res.Transferred,
		Duration:    cfg.Link.SetupLatency + res.TotalDuration,
		Downtime:    res.StopCopyTime,
		Converged:   res.Converged,
		Rounds:      res.Rounds,
	}
}

// Proactive computes the post-failure migration when a Remus-style warm
// copy has been maintained: only the flush residue (plus re-dirtying during
// the catch-up) moves.
func Proactive(cfg Config, w workload.Spec, sharers int) Plan {
	residue := w.ProactiveResidue()
	res := memsim.Precopy(w.Memory, residue, cfg.Rate(sharers), cfg.StopCopyThreshold, cfg.MaxRounds)
	return Plan{
		Kind:        "proactive",
		State:       residue,
		Transferred: res.Transferred,
		Duration:    cfg.Link.SetupLatency + res.TotalDuration,
		Downtime:    res.StopCopyTime,
		Converged:   res.Converged,
		Rounds:      res.Rounds,
	}
}

// BackgroundBandwidth is the normal-operation network cost of keeping the
// proactive copy warm.
func BackgroundBandwidth(w workload.Spec) units.BytesPerSecond {
	return w.Memory.FlushBandwidth(w.ProactiveFlushInterval)
}

// MigrateBack computes the return migration after power is restored. The
// consolidated copy has been running, so this is another live migration of
// the same image (the paper's "Migrate back to full service" phase). It
// does not interrupt service beyond its stop-and-copy pause.
func MigrateBack(cfg Config, w workload.Spec, sharers int) Plan {
	p := Live(cfg, w, sharers)
	p.Kind = "migrate-back"
	return p
}
