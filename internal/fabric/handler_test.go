package fabric

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newFrontend mounts Handler on a live listener over a real worker pool:
// the exact topology cmd/sweepfront -serve and cmd/vulture's multi-worker
// loopback target run.
func newFrontend(t *testing.T, workers int) *httptest.Server {
	t.Helper()
	f, err := New(Options{Workers: newWorkers(t, workers, nil), DefaultServers: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// The serving surface keeps the tentpole contract: a sweep POSTed to the
// frontend merges to the same bytes a single-node run produces.
func TestHandlerSweepMatchesSingleNode(t *testing.T) {
	ts := newFrontend(t, 2)
	want := singleNodeNDJSON(t, testSpec())

	body, err := json.Marshal(map[string]any{"spec": testSpec()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("frontend bytes differ from single-node run:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
}

// Decode failures are pre-stream and must come back as clean 400s.
func TestHandlerSweepRejects(t *testing.T) {
	ts := newFrontend(t, 1)
	cases := []struct {
		name, body string
	}{
		{"invalid json", `{"spec":`},
		{"unknown field", `{"spec":{},"nope":1}`},
		{"bad timeout", `{"spec":{},"timeout":"yesterday"}`},
		{"negative timeout", `{"spec":{},"timeout":"-5s"}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
}

// A spec that fails to compile is only discovered once the stream has
// started, so the handler reports it in-band: 200, then a final NDJSON
// error line.
func TestHandlerSweepInBandError(t *testing.T) {
	ts := newFrontend(t, 1)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"spec":{"workloads":["no-such-workload"],"outages":["5m"],"configs":[{"name":"MaxPerf"}],"techniques":[{"name":"baseline"}]}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with in-band error", resp.StatusCode)
	}
	var doc struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Error.Code != "fabric_failed" || doc.Error.Message == "" {
		t.Fatalf("in-band error %+v", doc.Error)
	}
}

// Metrics and liveness ride on the same handler.
func TestHandlerMetricsAndHealthz(t *testing.T) {
	ts := newFrontend(t, 1)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["rows_merged"]; !ok {
		t.Fatalf("metrics document missing rows_merged: %v", doc)
	}
	// Mutating methods stay off the read-only surface.
	for _, path := range []string{"/metrics", "/healthz"} {
		resp, err := http.Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}
