// Package fabric is the distributed sweep coordinator: it takes one
// declarative grid.Spec, compiles it into the same ordered plan a single
// node would run, splits the plan into contiguous row-range shards
// (aligned so the outage-axis batch units of PR 6 are never cut), fans
// the shards out over HTTP POST /v1/sweep to a static pool of backupd
// workers, and merges the returned NDJSON streams back in plan order.
//
// The contract is the one every layer below already pins: the merged
// byte stream is identical to a single-node run — at any worker count,
// any shard size, any completion order, and across worker failures.
// Three mechanisms make that cheap to guarantee:
//
//   - Shards are contiguous [Start, End) spans of the plan, and every
//     row carries its plan index, so merging is ordering (concatenate
//     shard buffers in Start order), never recomputation. The merger
//     holds completed shards until their turn comes.
//
//   - A worker's stream is validated row by row: indices must run
//     contiguously from the requested start. The validated prefix is a
//     watermark; when a worker dies mid-shard, rows past the watermark
//     cannot exist (they were never validated) and the chain re-dispatches
//     the narrower range [watermark, End) — so the merged stream can
//     neither duplicate nor skip a row.
//
//   - Straggler shards are hedged: after a latency quantile (or a fixed
//     -hedge-after), a second independent chain races the first from the
//     shard's beginning, and the first chain to complete the whole range
//     wins; the loser is cancelled. Only the winner's buffer is merged,
//     so hedging cannot affect the output bytes either.
//
// Robustness is the perf story's other half: bounded per-worker inflight
// with least-outstanding-rows (weighted) worker selection, bounded
// retries with exponential backoff that honors Retry-After from 429s,
// and a consecutive-failure detector that quarantines flapping workers.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"backuppower/internal/grid"
	"backuppower/internal/resultstore"
)

// Options parameterize a Fabric.
type Options struct {
	// Workers is the static pool: base URLs of backupd instances
	// ("http://host:8080"). Required, at least one.
	Workers []string

	// Client is the HTTP client shard requests go through. Default is a
	// dedicated client with no overall timeout (per-run deadlines come
	// from the caller's context; a stuck stream is handled by hedging
	// and re-dispatch, not a client-wide timeout).
	Client *http.Client

	// ShardRows is the target rows per shard (0 = grid.DefaultShardRows).
	// Cuts are aligned to batch-unit boundaries either way.
	ShardRows int

	// MaxRetries bounds re-dispatches per chain after the first attempt
	// (0 = DefaultMaxRetries; negative means no retries).
	MaxRetries int

	// MaxInflightPerWorker bounds concurrent shard requests against one
	// worker (0 = DefaultMaxInflightPerWorker). The dispatch window —
	// how many shards run at once — is workers × this bound.
	MaxInflightPerWorker int

	// HedgeAfter is how long a shard may run before a second chain is
	// dispatched against another worker. 0 means adaptive: once enough
	// shard latencies are recorded, hedge at HedgeQuantileFactor × the
	// observed median. Negative disables hedging.
	HedgeAfter time.Duration

	// DefaultServers is the cluster size used when the spec has no
	// servers axis; it must match the workers' -servers so every node
	// compiles the identical plan (0 = 64, backupd's default scale).
	DefaultServers int

	// MaxRows caps the compiled plan size (0 = grid.DefaultMaxRows).
	MaxRows int

	// WorkerWidth is the per-request sweep width workers are asked for
	// (0 = worker default). Output bytes are identical at any width.
	WorkerWidth int

	// Store, when set, is the coordinator's persistent result store
	// (-store-dir): GET /v1/results is mounted over it on the Handler
	// surface and its counters are appended to the metrics document.
	// Attaching the store to the evaluation pathway (core.SetResultStore /
	// grid.SetRowStore on the workers) is the caller's job.
	Store resultstore.Store

	// QuarantineAfter is how many consecutive failures sideline a worker;
	// QuarantineFor how long (0 = DefaultQuarantineAfter / -For). A fully
	// quarantined pool still dispatches — quarantine is a preference,
	// not a wall, so a lone flaky worker cannot deadlock the run.
	QuarantineAfter int
	QuarantineFor   time.Duration

	// sleep is the backoff/Retry-After sleeper, a seam so tests can
	// observe waits instead of paying them. nil means a real sleep that
	// aborts on context cancellation.
	sleep func(context.Context, time.Duration) error
}

// Defaults for the zero-valued knobs.
const (
	DefaultMaxRetries           = 3
	DefaultMaxInflightPerWorker = 2
	DefaultQuarantineAfter      = 2
	DefaultQuarantineFor        = 2 * time.Second

	// HedgeQuantileFactor scales the observed median shard latency into
	// the adaptive hedge trigger, and hedgeMinSamples is how many shard
	// completions the adaptive trigger needs before it arms.
	HedgeQuantileFactor = 3
	hedgeMinSamples     = 8
	hedgeMinDelay       = 5 * time.Millisecond
)

// Fabric coordinates sharded sweeps over one worker pool. It is safe for
// concurrent use; each Run is independent apart from the shared pool
// bounds and metrics.
type Fabric struct {
	opt     Options
	pool    *pool
	metrics *Metrics
}

// New validates the options and builds a coordinator.
func New(opt Options) (*Fabric, error) {
	if len(opt.Workers) == 0 {
		return nil, errors.New("fabric: Options.Workers must name at least one backupd URL")
	}
	if opt.Client == nil {
		opt.Client = &http.Client{}
	}
	if opt.MaxRetries == 0 {
		opt.MaxRetries = DefaultMaxRetries
	}
	if opt.MaxRetries < 0 {
		opt.MaxRetries = 0
	}
	if opt.MaxInflightPerWorker <= 0 {
		opt.MaxInflightPerWorker = DefaultMaxInflightPerWorker
	}
	if opt.DefaultServers <= 0 {
		opt.DefaultServers = 64
	}
	if opt.QuarantineAfter <= 0 {
		opt.QuarantineAfter = DefaultQuarantineAfter
	}
	if opt.QuarantineFor <= 0 {
		opt.QuarantineFor = DefaultQuarantineFor
	}
	if opt.sleep == nil {
		opt.sleep = func(ctx context.Context, d time.Duration) error {
			if d <= 0 {
				return ctx.Err()
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	m := newMetrics(opt.Workers)
	m.store = opt.Store
	return &Fabric{
		opt:     opt,
		pool:    newPool(opt.Workers, opt.MaxInflightPerWorker, opt.QuarantineAfter, opt.QuarantineFor),
		metrics: m,
	}, nil
}

// Metrics exposes the coordinator's observability state (GET /metrics on
// cmd/sweepfront renders it).
func (f *Fabric) Metrics() *Metrics { return f.metrics }

// shardOut is one completed shard on its way to the merger.
type shardOut struct {
	idx   int
	lines [][]byte
	err   error
}

// Run compiles the spec, shards the plan, fans the shards out over the
// pool, and writes the merged NDJSON stream to w — byte-identical to a
// single-node run of the same spec. It returns the first unrecoverable
// error (compile rejection, a shard exhausting retries and hedges,
// context cancellation, or a write failure); on error the stream may be
// truncated at a row boundary but never contains a wrong, duplicate, or
// out-of-order row.
func (f *Fabric) Run(ctx context.Context, spec grid.Spec, w io.Writer) error {
	plan, err := grid.Compile(spec, grid.CompileOptions{
		DefaultServers: f.opt.DefaultServers,
		MaxRows:        f.opt.MaxRows,
	})
	if err != nil {
		return err
	}
	shards := plan.Shards(f.opt.ShardRows)
	if len(shards) == 0 {
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Dispatch window: as many shards in flight as the pool can hold.
	// The window also bounds the merger's reorder buffer — a shard can
	// complete at most window-1 positions ahead of the next one due.
	// results is buffered to the full shard count so a completing shard
	// never blocks on the merger (and teardown can never deadlock).
	window := len(f.opt.Workers) * f.opt.MaxInflightPerWorker
	results := make(chan shardOut, len(shards))
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	feedDone := make(chan int, 1)
	go func() {
		launched := 0
		for i, sh := range shards {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				feedDone <- launched
				return
			}
			wg.Add(1)
			launched++
			go func(i int, sh grid.RowRange) {
				defer wg.Done()
				defer func() { <-sem }()
				lines, err := f.runShard(ctx, spec, sh)
				results <- shardOut{idx: i, lines: lines, err: err}
			}(i, sh)
		}
		feedDone <- launched
	}()

	// Merge in shard order regardless of completion order. On the first
	// unrecoverable error the run is cancelled and the remaining launched
	// shards are drained (their sends are buffered, so draining is just
	// counting them down).
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	pending := make(map[int]shardOut, window)
	next := 0
	launched, seen := -1, 0
	for launched < 0 || seen < launched {
		select {
		case n := <-feedDone:
			launched = n
		case out := <-results:
			seen++
			if out.err != nil {
				fail(fmt.Errorf("fabric: shard %d rows [%d,%d): %w",
					out.idx, shards[out.idx].Start, shards[out.idx].End, out.err))
				continue
			}
			if firstErr != nil {
				continue
			}
			pending[out.idx] = out
			for {
				o, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				for _, line := range o.lines {
					if _, err := w.Write(line); err != nil {
						fail(fmt.Errorf("fabric: write merged stream: %w", err))
						break
					}
					f.metrics.rowsMerged.Add(1)
				}
				if firstErr != nil {
					break
				}
				next++
			}
		}
	}
	wg.Wait()
	if firstErr == nil && launched < len(shards) {
		// The feeder stopped early, which only cancellation can cause.
		firstErr = ctx.Err()
	}
	return firstErr
}
