package outage

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"backuppower/internal/units"
)

func TestDistributionsValid(t *testing.T) {
	if err := DurationDistribution().Validate(); err != nil {
		t.Fatalf("duration dist invalid: %v", err)
	}
	total := 0.0
	for _, b := range FrequencyDistribution() {
		total += b.Prob
	}
	if !units.AlmostEqual(total, 1.0, 1e-9) {
		t.Errorf("frequency sums to %v", total)
	}
}

func TestPaperHeadlineStats(t *testing.T) {
	d := DurationDistribution()
	// "over 58% of outages are shorter than 5 minutes".
	if got := d.CDF(5 * time.Minute); !units.AlmostEqual(got, 0.58, 1e-9) {
		t.Errorf("CDF(5m) = %v, want 0.58", got)
	}
	// "restored utility power for more than 30% of outages before even
	// starting to use the DG" (DG fully ramped ~2-2.5 min; <1 min bucket
	// alone is 31%).
	if got := d.CDF(time.Minute); got < 0.30 {
		t.Errorf("CDF(1m) = %v, want >= 0.31", got)
	}
	// The paper's headline: outages up to 40 minutes cover the bulk
	// (~75%+) of all outages.
	if got := d.CDF(40 * time.Minute); got < 0.73 {
		t.Errorf("CDF(40m) = %v, want > 0.73", got)
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	d := DurationDistribution()
	prev := -1.0
	for m := 0; m <= 500; m += 5 {
		c := d.CDF(time.Duration(m) * time.Minute)
		if c < prev {
			t.Fatalf("CDF not monotone at %dm", m)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range at %dm: %v", m, c)
		}
		prev = c
	}
	if got := d.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := d.CDF(9 * time.Hour); !units.AlmostEqual(got, 1, 1e-9) {
		t.Errorf("CDF(9h) = %v", got)
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	d := DurationDistribution()
	f := func(q float64) bool {
		if q < 0.01 || q > 0.99 {
			return true
		}
		tq := d.Quantile(q)
		return units.AlmostEqual(d.CDF(tq), q, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Values: nil}); err != nil {
		t.Error(err)
	}
	if d.Quantile(0) != 0 {
		t.Error("Quantile(0)")
	}
	if d.Quantile(1) != 480*time.Minute {
		t.Errorf("Quantile(1) = %v", d.Quantile(1))
	}
}

func TestMeanPlausible(t *testing.T) {
	// Heavy-ish tail: mean should land well above the median.
	d := DurationDistribution()
	mean := d.Mean()
	median := d.Quantile(0.5)
	if mean <= median {
		t.Errorf("mean %v should exceed median %v", mean, median)
	}
	if mean < 20*time.Minute || mean > 90*time.Minute {
		t.Errorf("mean = %v, implausible", mean)
	}
}

func TestExpectedRemainingGrows(t *testing.T) {
	// Heavy tail: the longer it has lasted, the longer it will last.
	d := DurationDistribution()
	prev := time.Duration(0)
	for _, elapsed := range []time.Duration{0, time.Minute, 5 * time.Minute, 30 * time.Minute, 2 * time.Hour} {
		rem := d.ExpectedRemaining(elapsed)
		if rem < prev {
			t.Fatalf("expected remaining shrank at %v: %v < %v", elapsed, rem, prev)
		}
		prev = rem
	}
	// Past the distribution's support, remaining collapses to 0.
	if got := d.ExpectedRemaining(9 * time.Hour); got != 0 {
		t.Errorf("remaining at 9h = %v", got)
	}
}

func TestProbEndsWithin(t *testing.T) {
	d := DurationDistribution()
	// Fresh outage: over half end within 5 minutes.
	if got := d.ProbEndsWithin(0, 5*time.Minute); !units.AlmostEqual(got, 0.58, 1e-9) {
		t.Errorf("P(end<=5m) = %v", got)
	}
	// An outage 30 min in is much less likely to end in the next 5 min.
	fresh := d.ProbEndsWithin(0, 5*time.Minute)
	old := d.ProbEndsWithin(30*time.Minute, 5*time.Minute)
	if old >= fresh {
		t.Errorf("conditional end prob should drop: %v vs %v", old, fresh)
	}
	if got := d.ProbEndsWithin(9*time.Hour, time.Minute); got != 1 {
		t.Errorf("past support = %v", got)
	}
}

func TestSampleWithinSupport(t *testing.T) {
	d := DurationDistribution()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s := d.Sample(rng)
		if s < 0 || s > 480*time.Minute {
			t.Fatalf("sample %v out of support", s)
		}
	}
}

func TestGeneratorReproducible(t *testing.T) {
	a := NewGenerator(42).Year()
	b := NewGenerator(42).Year()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGeneratorTraceShape(t *testing.T) {
	g := NewGenerator(7)
	year := 365 * 24 * time.Hour
	counts := map[int]int{}
	for i := 0; i < 500; i++ {
		evs := g.Year()
		counts[len(evs)]++
		var prevEnd time.Duration
		for _, e := range evs {
			if e.Start < prevEnd {
				t.Fatalf("overlapping outages")
			}
			if e.Start > year {
				t.Fatalf("outage starts after year end")
			}
			if e.Duration <= 0 || e.Duration > 480*time.Minute {
				t.Fatalf("duration %v out of support", e.Duration)
			}
			prevEnd = e.Start + e.Duration
		}
	}
	// ~17% of years should have zero outages (Figure 1a).
	zeros := float64(counts[0]) / 500
	if zeros < 0.10 || zeros > 0.25 {
		t.Errorf("zero-outage years = %v, want ~0.17", zeros)
	}
}

func TestTotalOutageTime(t *testing.T) {
	evs := []Event{{0, time.Minute}, {time.Hour, 2 * time.Minute}}
	if got := TotalOutageTime(evs); got != 3*time.Minute {
		t.Errorf("total = %v", got)
	}
	if got := TotalOutageTime(nil); got != 0 {
		t.Errorf("empty total = %v", got)
	}
}

func TestValidateCatchesBadDistributions(t *testing.T) {
	bad := Distribution{Buckets: []Bucket{{0, time.Minute, 0.5}, {2 * time.Minute, 3 * time.Minute, 0.5}}}
	if bad.Validate() == nil {
		t.Error("gap should fail")
	}
	bad = Distribution{Buckets: []Bucket{{0, time.Minute, 0.5}}}
	if bad.Validate() == nil {
		t.Error("sum<1 should fail")
	}
	bad = Distribution{Buckets: []Bucket{{time.Minute, time.Minute, 1}}}
	if bad.Validate() == nil {
		t.Error("empty range should fail")
	}
}
