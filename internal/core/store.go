package core

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/resultstore"
)

// scenarioStorePtr holds the process-global tiered view over the scenario
// memo cache: the memory tier is always scenarioCache (so attaching or
// detaching a disk tier never invalidates memoized results), the disk
// tier is whatever SetResultStore installed (nil by default — the zero
// configuration behaves exactly as before the store existed).
var scenarioStorePtr atomic.Pointer[resultstore.Tiered[cacheKey, cluster.Result]]

func init() {
	scenarioStorePtr.Store(resultstore.NewTiered[cacheKey, cluster.Result](
		scenarioCache, nil, encodeScenarioResult, decodeScenarioResult))
}

// SetResultStore attaches (or, with nil, detaches) a persistent result
// store under the process-wide scenario cache. Serving binaries call it
// once at startup from -store-dir; the store outlives every Framework, so
// the caller owns Close. Safe to call concurrently with evaluations —
// in-flight calls finish against the tier set they started with.
func SetResultStore(s resultstore.Store) {
	scenarioStorePtr.Store(resultstore.NewTiered[cacheKey, cluster.Result](
		scenarioCache, s, encodeScenarioResult, decodeScenarioResult))
}

// scenarioStore is the evaluation pathway's view of the tiered store.
func scenarioStore() *resultstore.Tiered[cacheKey, cluster.Result] {
	return scenarioStorePtr.Load()
}

// stableScenarioInvariant digests the outage-invariant scenario content
// into the persistent store's key material. Unlike the memory tier's
// maphash fingerprints (seeded per process), this digest is a pure
// function of the content — %#v over the flat value structs that make up
// a scenario renders every field deterministically, and the technique's
// dynamic type is spelled out with %T so fieldless techniques (whose %#v
// bodies are all "{}") cannot alias. The "scenario/v1" prefix versions
// the digest: any change to what is folded in must bump it, retiring old
// stored keys wholesale rather than aliasing them.
func stableScenarioInvariant(s cluster.Scenario) [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "scenario/v1|servers=%d|server=%#v|disk=%#v|mig=%#v|load=%#v|backup=%#v|tech=%T%#v",
		s.Env.Servers, s.Env.Server, s.Env.Disk, s.Env.Mig, s.Workload, s.Backup, s.Technique, s.Technique)
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// stableScenarioKey is the persistent store key for one scenario: the
// invariant digest plus the outage, mirroring cacheKey's split so batch
// callers can digest once per axis.
func stableScenarioKey(s cluster.Scenario) resultstore.Key {
	return resultstore.NewKey(resultstore.NSScenario, stableScenarioInvariant(s), int64(s.Outage))
}

// scenarioSchemaV versions the stored scenario payload; decode rejects
// anything else, degrading old payloads to recomputes instead of
// misreads.
const scenarioSchemaV = 1

// storedScenario wraps a result with the payload schema version.
type storedScenario struct {
	V int            `json:"v"`
	R cluster.Result `json:"r"`
}

// encodeScenarioResult serializes an aggregate result for the disk tier.
// Traced results are refused: the store serves the aggregate pathway,
// and traces are both huge and pointer-shaped. float64 fields round-trip
// bit-exactly through JSON (Go emits the shortest representation that
// parses back to the same bits), so a disk hit is indistinguishable from
// the original computation.
func encodeScenarioResult(r cluster.Result) ([]byte, bool) {
	if r.PerfTrace != nil || r.PowerTrace != nil {
		return nil, false
	}
	b, err := json.Marshal(storedScenario{V: scenarioSchemaV, R: r})
	return b, err == nil
}

func decodeScenarioResult(payload []byte) (cluster.Result, bool) {
	var s storedScenario
	if err := json.Unmarshal(payload, &s); err != nil || s.V != scenarioSchemaV {
		return cluster.Result{}, false
	}
	return s.R, true
}

// stableAxisKeys builds the per-outage stable-key thunks for a batch
// call: one invariant digest covers the whole axis, each point stamps
// its outage through the cheap 41-byte NewKey hash.
func (f *Framework) stableAxisKeys(scn cluster.Scenario, persistent bool) func(time.Duration) func() resultstore.Key {
	if !persistent {
		// The tiered store never calls stable() without a disk tier;
		// skip the content digest entirely.
		return func(time.Duration) func() resultstore.Key {
			return func() resultstore.Key { return resultstore.Key{} }
		}
	}
	inv := stableScenarioInvariant(scn)
	return func(d time.Duration) func() resultstore.Key {
		return func() resultstore.Key {
			return resultstore.NewKey(resultstore.NSScenario, inv, int64(d))
		}
	}
}
