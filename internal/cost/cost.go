// Package cost implements the paper's backup-infrastructure cost model
// (Section 3, Equations 1-2, Table 1) and the named underprovisioning
// configurations of Table 3. Costs are amortized annual cap-ex; op-ex is
// deliberately ignored (outages are rare, so fuel and conversion losses are
// negligible next to cap-ex, as the paper argues).
package cost

import (
	"fmt"
	"time"

	"backuppower/internal/battery"
	"backuppower/internal/genset"
	"backuppower/internal/units"
	"backuppower/internal/ups"
)

// Backup is a provisioned backup infrastructure: a diesel generator and a
// UPS fleet, each possibly absent or underprovisioned in power and/or
// energy. It is the unit the whole framework evaluates.
type Backup struct {
	Name string
	DG   genset.Config
	UPS  ups.Config
}

// Validate checks both halves.
func (b Backup) Validate() error {
	if err := b.DG.Validate(); err != nil {
		return err
	}
	return b.UPS.Validate()
}

// AnnualCost is the total amortized cap-ex: DG (Eq. 1) + UPS (Eq. 2).
func (b Backup) AnnualCost() units.DollarsPerYear {
	return b.DG.AnnualCost() + b.UPS.AnnualCost()
}

// NormalizedCost returns this configuration's cost relative to the current
// datacenter practice (MaxPerf) at the same peak power — the normalization
// used throughout the paper's tables and figures.
func (b Backup) NormalizedCost(peak units.Watts) float64 {
	base := MaxPerf(peak).AnnualCost()
	if base == 0 {
		return 0
	}
	return float64(b.AnnualCost()) / float64(base)
}

// String summarizes the configuration.
func (b Backup) String() string {
	return fmt.Sprintf("%s{DG %v, UPS %v/%v}", b.Name,
		b.DG.PowerCapacity, b.UPS.PowerCapacity, b.UPS.Runtime)
}

// The named configurations of Table 3, each parameterized by the
// datacenter's peak power draw. Fractions refer to that peak.

// MaxPerf is today's practice: full DG, full-power UPS with the free 2-min
// transition runtime. Cost baseline (normalized 1.0).
func MaxPerf(peak units.Watts) Backup {
	return Backup{Name: "MaxPerf", DG: genset.New(peak), UPS: ups.NewConfig(peak, 2*time.Minute)}
}

// MinCost provisions nothing (normalized 0).
func MinCost(peak units.Watts) Backup {
	return Backup{Name: "MinCost", DG: genset.None(), UPS: ups.None()}
}

// NoDG keeps the full-power 2-min UPS but removes the generator (0.38).
func NoDG(peak units.Watts) Backup {
	return Backup{Name: "NoDG", DG: genset.None(), UPS: ups.NewConfig(peak, 2*time.Minute)}
}

// NoUPS keeps the full DG but removes the UPS (0.63).
func NoUPS(peak units.Watts) Backup {
	return Backup{Name: "NoUPS", DG: genset.New(peak), UPS: ups.None()}
}

// DGSmallPUPS keeps the DG and halves the UPS power capacity (0.81).
func DGSmallPUPS(peak units.Watts) Backup {
	return Backup{Name: "DG-SmallPUPS", DG: genset.New(peak), UPS: ups.NewConfig(peak/2, 2*time.Minute)}
}

// SmallDGSmallPUPS halves both DG and UPS power (0.50).
func SmallDGSmallPUPS(peak units.Watts) Backup {
	return Backup{Name: "SmallDG-SmallPUPS", DG: genset.New(peak / 2), UPS: ups.NewConfig(peak/2, 2*time.Minute)}
}

// SmallPUPS removes the DG and halves the UPS power (0.19).
func SmallPUPS(peak units.Watts) Backup {
	return Backup{Name: "SmallPUPS", DG: genset.None(), UPS: ups.NewConfig(peak/2, 2*time.Minute)}
}

// LargeEUPS removes the DG and buys 30 minutes of full-power UPS energy
// (0.55).
func LargeEUPS(peak units.Watts) Backup {
	return Backup{Name: "LargeEUPS", DG: genset.None(), UPS: ups.NewConfig(peak, 30*time.Minute)}
}

// SmallPLargeEUPS removes the DG, halves UPS power, and buys 62 minutes of
// runtime — trading power for energy at the same cost as NoDG (0.38).
func SmallPLargeEUPS(peak units.Watts) Backup {
	return Backup{Name: "SmallP-LargeEUPS", DG: genset.None(), UPS: ups.NewConfig(peak/2, 62*time.Minute)}
}

// Table3 returns the nine named configurations in the paper's order.
func Table3(peak units.Watts) []Backup {
	return []Backup{
		MaxPerf(peak), MinCost(peak), NoDG(peak), NoUPS(peak),
		DGSmallPUPS(peak), SmallDGSmallPUPS(peak), SmallPUPS(peak),
		LargeEUPS(peak), SmallPLargeEUPS(peak),
	}
}

// ByName returns the named Table 3 configuration, or false.
func ByName(name string, peak units.Watts) (Backup, bool) {
	for _, b := range Table3(peak) {
		if b.Name == name {
			return b, true
		}
	}
	return Backup{}, false
}

// Custom builds an arbitrary configuration from capacities: DG power, UPS
// power and UPS runtime at that power.
func Custom(name string, dgPower, upsPower units.Watts, upsRuntime time.Duration) Backup {
	return Backup{Name: name, DG: genset.New(dgPower), UPS: ups.NewConfig(upsPower, upsRuntime)}
}

// CustomTech is Custom with an explicit battery chemistry (Section 7's
// "newer battery technologies" discussion).
func CustomTech(name string, dgPower, upsPower units.Watts, upsRuntime time.Duration, tech battery.Technology) Backup {
	u := ups.NewConfig(upsPower, upsRuntime)
	u.Tech = tech
	if upsPower > 0 && upsRuntime < tech.FreeRunTime {
		u.Runtime = tech.FreeRunTime
	} else if upsPower > 0 {
		u.Runtime = upsRuntime
	}
	return Backup{Name: name, DG: genset.New(dgPower), UPS: u}
}

// Breakdown itemizes a configuration's annual cost.
type Breakdown struct {
	Config    string
	DG        units.DollarsPerYear
	UPSPower  units.DollarsPerYear
	UPSEnergy units.DollarsPerYear
	Total     units.DollarsPerYear
}

// Itemize computes the cost breakdown for a configuration.
func Itemize(b Backup) Breakdown {
	var upsPower, upsEnergy units.DollarsPerYear
	if b.UPS.Provisioned() {
		upsPower = units.DollarsPerYear(b.UPS.Tech.PowerCostPerKWYear * b.UPS.PowerCapacity.KW())
		upsEnergy = b.UPS.AnnualCost() - upsPower
	}
	return Breakdown{
		Config:    b.Name,
		DG:        b.DG.AnnualCost(),
		UPSPower:  upsPower,
		UPSEnergy: upsEnergy,
		Total:     b.AnnualCost(),
	}
}
