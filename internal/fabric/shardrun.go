package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"backuppower/internal/grid"
	"backuppower/internal/httpapi"
)

// Backoff bounds for retried attempts. A 429's Retry-After overrides the
// exponential schedule (clamped so a hostile header cannot park a chain).
const (
	baseBackoff   = 10 * time.Millisecond
	maxBackoff    = 1 * time.Second
	maxRetryAfter = 30 * time.Second
)

// attemptError is a classified shard-attempt failure.
type attemptError struct {
	msg        string
	permanent  bool          // a retry cannot help (the request itself is rejected)
	retryAfter time.Duration // the worker's requested pause (429), 0 if none
}

func (e *attemptError) Error() string { return e.msg }

func permanent(err error) bool {
	var ae *attemptError
	return errors.As(err, &ae) && ae.permanent
}

// runShard drives one shard to completion: a primary chain of attempts
// (watermark-resumed retries with backoff), plus — once the shard has run
// past the hedge trigger — a second independent chain racing it from the
// shard's start on another worker. The first chain to deliver the whole
// range wins and the loser is cancelled; only the winner's buffer is
// returned, so hedging never changes the merged bytes.
func (f *Fabric) runShard(ctx context.Context, spec grid.Spec, sh grid.RowRange) ([][]byte, error) {
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type out struct {
		lines [][]byte
		err   error
	}
	resc := make(chan out, 2) // buffered: a losing chain must never block
	launch := func() {
		go func() {
			lines, err := f.runChain(ctx, spec, sh)
			resc <- out{lines: lines, err: err}
		}()
	}
	launch()
	chains := 1

	var hedgeC <-chan time.Time
	if d, ok := f.hedgeDelay(); ok {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	for {
		select {
		case o := <-resc:
			chains--
			if o.err == nil {
				if chains > 0 {
					// A losing chain is still running; the deferred
					// cancel aborts it.
					f.metrics.shardsCancelled.Add(int64(chains))
				}
				f.metrics.observeShardLatency(time.Since(start))
				return o.lines, nil
			}
			lastErr = o.err
			if permanent(o.err) || chains == 0 {
				return nil, lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			f.metrics.shardsHedged.Add(1)
			launch()
			chains++
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// hedgeDelay resolves the hedge trigger: the fixed HedgeAfter when set,
// the adaptive quantile once enough shard latencies are recorded,
// otherwise no hedging (yet). Negative HedgeAfter disables hedging.
func (f *Fabric) hedgeDelay() (time.Duration, bool) {
	if f.opt.HedgeAfter < 0 {
		return 0, false
	}
	if f.opt.HedgeAfter > 0 {
		return f.opt.HedgeAfter, true
	}
	p50, _, n := f.metrics.shardLatencyQuantiles()
	if n < hedgeMinSamples {
		return 0, false
	}
	d := time.Duration(HedgeQuantileFactor) * p50
	if d < hedgeMinDelay {
		d = hedgeMinDelay
	}
	return d, true
}

// runChain is one chain of attempts over a shard: fetch rows from the
// chain's watermark, keep the validated prefix on failure, back off
// (honoring Retry-After), and re-dispatch the remainder — preferring a
// different worker than the one that just failed — up to MaxRetries times.
func (f *Fabric) runChain(ctx context.Context, spec grid.Spec, sh grid.RowRange) ([][]byte, error) {
	lines := make([][]byte, 0, sh.Rows())
	watermark := sh.Start
	var last *worker
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			f.metrics.shardsRetried.Add(1)
			if err := f.opt.sleep(ctx, retryDelay(attempt, lastErr)); err != nil {
				return nil, err
			}
		}
		rows := sh.End - watermark
		w, err := f.pool.acquire(ctx, rows, last)
		if err != nil {
			return nil, err
		}
		f.metrics.shardsDispatched.Add(1)
		f.metrics.workerDispatched.Add(w.url, 1)
		before := len(lines)
		watermark, err = f.fetch(ctx, w, spec, grid.RowRange{Start: watermark, End: sh.End}, &lines)
		f.pool.release(w, rows, err == nil)
		if err == nil {
			return lines, nil
		}
		f.metrics.workerFailed.Add(w.url, 1)
		f.metrics.workerRows.Add(w.url, int64(len(lines)-before))
		if permanent(err) || ctx.Err() != nil || attempt >= f.opt.MaxRetries {
			return nil, err
		}
		last, lastErr = w, err
	}
}

// retryDelay is the pause before retry number attempt (>= 1): the
// worker's Retry-After when it sent one, else exponential backoff.
func retryDelay(attempt int, lastErr error) time.Duration {
	var ae *attemptError
	if errors.As(lastErr, &ae) && ae.retryAfter > 0 {
		if ae.retryAfter > maxRetryAfter {
			return maxRetryAfter
		}
		return ae.retryAfter
	}
	d := baseBackoff << (attempt - 1)
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	return d
}

// lineProbe is the minimal decode of one NDJSON line: enough to tell a
// row (index present; row-level errors included — they are rows) from a
// terminal in-band error line (no index, error object), and to validate
// stream contiguity.
type lineProbe struct {
	Index *int            `json:"index"`
	Error json.RawMessage `json:"error"`
}

// fetch runs one HTTP attempt for rows [r.Start, r.End): POST /v1/sweep
// with the spec and the explicit row range, validating that the response
// streams exactly the requested rows in order. Validated lines are
// appended to *lines verbatim (the merged output is the workers' bytes,
// never re-encoded). It returns the new watermark — r.Start plus the
// validated rows — and nil only when the whole range arrived.
func (f *Fabric) fetch(ctx context.Context, w *worker, spec grid.Spec, r grid.RowRange, lines *[][]byte) (int, error) {
	body, err := json.Marshal(httpapi.SweepRequest{
		Spec:     spec,
		Width:    f.opt.WorkerWidth,
		RowRange: &r,
	})
	if err != nil {
		return r.Start, &attemptError{msg: fmt.Sprintf("encode shard request: %v", err), permanent: true}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(w.url, "/")+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return r.Start, &attemptError{msg: fmt.Sprintf("build shard request: %v", err), permanent: true}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Sweep-Shard", fmt.Sprintf("%d-%d", r.Start, r.End))

	resp, err := f.opt.Client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return r.Start, ctx.Err()
		}
		return r.Start, &attemptError{msg: fmt.Sprintf("%s: %v", w.url, err)}
	}
	defer resp.Body.Close()
	if id := resp.Header.Get("X-Backupd-Worker"); id != "" {
		f.metrics.setWorkerID(w.url, id)
	}
	if resp.StatusCode != http.StatusOK {
		return r.Start, attemptFromStatus(w.url, resp)
	}

	rd := bufio.NewReader(resp.Body)
	want := r.Start
	for want < r.End {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			if ctx.Err() != nil {
				return want, ctx.Err()
			}
			return want, &attemptError{msg: fmt.Sprintf(
				"%s: stream died at row %d of [%d,%d): %v", w.url, want, r.Start, r.End, err)}
		}
		var probe lineProbe
		if err := json.Unmarshal(line, &probe); err != nil {
			return want, &attemptError{msg: fmt.Sprintf("%s: undecodable stream line: %v", w.url, err)}
		}
		if probe.Index == nil {
			// Terminal in-band error: the worker's run failed mid-stream.
			return want, attemptFromInbandError(w.url, probe.Error)
		}
		if *probe.Index != want {
			return want, &attemptError{msg: fmt.Sprintf(
				"%s: stream discontinuity: got row %d, want %d", w.url, *probe.Index, want)}
		}
		*lines = append(*lines, line)
		want++
	}
	f.metrics.workerRows.Add(w.url, int64(r.Rows()))
	return want, nil
}

// attemptFromStatus classifies a non-200 response: 429 is transient and
// carries the worker's Retry-After; other 4xx are permanent (the request
// is rejected, every worker will reject it); 5xx are transient.
func attemptFromStatus(url string, resp *http.Response) *attemptError {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	ae := &attemptError{msg: fmt.Sprintf("%s: HTTP %d: %s", url, resp.StatusCode,
		strings.TrimSpace(string(msg)))}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		ae.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		ae.permanent = true
	}
	return ae
}

// attemptFromInbandError classifies a terminal NDJSON error line.
// Request-shaped codes (invalid input discovered mid-run) are permanent;
// deadline and disconnect codes are worth another attempt elsewhere.
func attemptFromInbandError(url string, detail json.RawMessage) *attemptError {
	var d struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}
	json.Unmarshal(detail, &d)
	ae := &attemptError{msg: fmt.Sprintf("%s: worker error %s: %s", url, d.Code, d.Message)}
	switch d.Code {
	case "invalid_input", "invalid_scenario", "invalid_field", "missing_field",
		"out_of_range", "too_many_rows":
		ae.permanent = true
	}
	return ae
}

// parseRetryAfter reads a Retry-After header: delta-seconds or an HTTP
// date. 0 means absent or unparseable (the backoff schedule applies).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
