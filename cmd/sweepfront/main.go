// Command sweepfront is the distributed sweep coordinator: it compiles a
// declarative grid spec (the same JSON cmd/gridrun and POST /v1/sweep
// take), splits the plan into contiguous row-range shards, fans them out
// over HTTP to a pool of backupd workers, and writes the merged NDJSON
// stream to stdout — byte-identical to a single-node run of the same
// spec, at any worker count and through worker failures.
//
//	# one-shot against a static pool
//	sweepfront -workers http://a:8080,http://b:8080 -spec fig5.json
//
//	# three in-process loopback workers (no external daemons)
//	sweepfront -loopback 3 -spec - < fig5.json
//
//	# serving frontend: forward /v1/sweep across the pool
//	sweepfront -serve -addr :8081 -workers http://a:8080,http://b:8080
//
// -shard-rows sets the target shard size (cuts stay aligned to
// outage-batch units), -max-inflight-per-worker the per-worker request
// bound, -max-retries the re-dispatch budget per shard chain, and
// -hedge-after the straggler hedge trigger (0 = adaptive from the
// observed shard-latency median; negative disables hedging). None of
// them changes the output bytes. -metrics-addr exposes the coordinator's
// GET /metrics (shards dispatched/retried/hedged/cancelled, rows merged,
// per-worker counters, p50/p99 shard latency) while a one-shot run is in
// flight; serve mode always mounts /metrics. -store-dir attaches a
// persistent result store: loopback workers consult and fill it (a warm
// rerun evaluates nothing), serve mode mounts GET /v1/results over it,
// and its counters join the metrics document.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/fabric"
	"backuppower/internal/grid"
	"backuppower/internal/resultstore"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepfront", flag.ContinueOnError)
	fs.SetOutput(stderr)

	workersFlag := fs.String("workers", "", "comma-separated backupd base URLs (the static worker pool)")
	loopback := fs.Int("loopback", 0, "start N in-process loopback workers instead of -workers")
	loopbackWidth := fs.Int("loopback-width", 0, "sweep width per loopback worker (0 = GOMAXPROCS, 1 = serial)")
	servers := fs.Int("servers", 64, "default cluster size for specs without a servers axis (must match the workers')")
	specPath := fs.String("spec", "", `JSON spec file ("-" = stdin); required unless -serve`)
	shardRows := fs.Int("shard-rows", 0, "target rows per shard (0 = default; cuts stay batch-unit aligned)")
	maxRetries := fs.Int("max-retries", 0, "re-dispatch budget per shard chain (0 = default, negative = none)")
	maxInflight := fs.Int("max-inflight-per-worker", 0, "concurrent shard requests per worker (0 = default)")
	hedgeAfter := fs.Duration("hedge-after", 0, "hedge straggler shards after this long (0 = adaptive, negative = off)")
	width := fs.Int("width", 0, "per-request sweep width asked of workers (0 = worker default)")
	timeout := fs.Duration("timeout", 0, "overall run deadline (0 = none)")
	out := fs.String("o", "", "write merged NDJSON to a file instead of stdout")
	metricsAddr := fs.String("metrics-addr", "", "also serve GET /metrics on this address during the run")
	serve := fs.Bool("serve", false, "run as a serving frontend: POST /v1/sweep fans out across the pool")
	addr := fs.String("addr", ":8081", "listen address for -serve")
	storeDir := fs.String("store-dir", "",
		"persistent result store directory (warm reruns skip stored rows; serves GET /v1/results)")
	verbose := fs.Bool("verbose", false, "print the metrics document to stderr when a one-shot run finishes")

	if err := fs.Parse(args); err != nil {
		return 2
	}

	var store resultstore.Store
	if *storeDir != "" {
		disk, err := resultstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(stderr, "sweepfront: -store-dir: %v\n", err)
			return 1
		}
		store = disk
		// The coordinator's store feeds this process's evaluation globals:
		// loopback workers are in-process, so they consult and fill the
		// same store the coordinator serves reads from. A remote -workers
		// pool persists nothing here beyond what the coordinator itself
		// evaluates (remote workers attach their own -store-dir).
		core.SetResultStore(store)
		grid.SetRowStore(store)
		defer store.Close()
	}

	var workerURLs []string
	var stopPool func()
	switch {
	case *loopback > 0 && *workersFlag != "":
		fmt.Fprintln(stderr, "sweepfront: give either -workers or -loopback, not both")
		return 2
	case *loopback > 0:
		var err error
		workerURLs, stopPool, err = fabric.Loopback(*loopback, fabric.LoopbackConfig{
			Servers: *servers,
			Width:   *loopbackWidth,
			Store:   store,
		})
		if err != nil {
			fmt.Fprintf(stderr, "sweepfront: %v\n", err)
			return 1
		}
		defer stopPool()
	default:
		for _, u := range strings.Split(*workersFlag, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerURLs = append(workerURLs, u)
			}
		}
		if len(workerURLs) == 0 {
			fmt.Fprintln(stderr, "sweepfront: -workers or -loopback is required")
			return 2
		}
	}

	f, err := fabric.New(fabric.Options{
		Workers:              workerURLs,
		ShardRows:            *shardRows,
		MaxRetries:           *maxRetries,
		MaxInflightPerWorker: *maxInflight,
		HedgeAfter:           *hedgeAfter,
		DefaultServers:       *servers,
		WorkerWidth:          *width,
		Store:                store,
	})
	if err != nil {
		fmt.Fprintf(stderr, "sweepfront: %v\n", err)
		return 2
	}

	if *serve {
		return serveMode(f, *addr, stderr)
	}

	if *specPath == "" {
		fmt.Fprintln(stderr, "sweepfront: -spec is required (or use -serve)")
		return 2
	}
	var spec grid.Spec
	if err := readSpec(*specPath, &spec); err != nil {
		fmt.Fprintf(stderr, "sweepfront: %v\n", err)
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", f.Metrics())
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go msrv.ListenAndServe()
		defer msrv.Close()
	}

	w := io.Writer(stdout)
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "sweepfront: %v\n", err)
			return 1
		}
		defer of.Close()
		w = of
	}

	if err := f.Run(ctx, spec, w); err != nil {
		fmt.Fprintf(stderr, "sweepfront: %v\n", err)
		var fe *grid.FieldError
		if errors.As(err, &fe) {
			return 2
		}
		return 1
	}
	if *verbose {
		f.Metrics().Write(stderr)
	}
	return 0
}

// serveMode runs the coordinator as a long-lived frontend, mounting
// fabric.Handler: POST /v1/sweep decodes the same body backupd takes
// (spec plus optional timeout; width is forwarded to workers) and
// streams the merged NDJSON back.
func serveMode(f *fabric.Fabric, addr string, stderr io.Writer) int {
	srv := &http.Server{Addr: addr, Handler: f.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("sweepfront: serving /v1/sweep on %s", addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "sweepfront: %v\n", err)
		return 1
	case <-ctx.Done():
		stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
		return 0
	}
}

// readSpec strictly decodes a spec file (stdin for "-"), exactly as
// cmd/gridrun does: unknown fields and trailing data are rejected.
func readSpec(path string, spec *grid.Spec) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return errors.New("spec: trailing data after JSON document")
	}
	return nil
}
