package availability

import (
	"testing"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/cost"
	"backuppower/internal/technique"
	"backuppower/internal/workload"
)

func planner(b cost.Backup) *Planner {
	fw := core.New(16)
	return &Planner{Framework: fw, Workload: workload.Specjbb(), Backup: b}
}

func TestMaxPerfIsNearPerfect(t *testing.T) {
	fw := core.New(16)
	p := planner(cost.MaxPerf(fw.Env.PeakPower()))
	sum, stats, err := p.SimulateYears(20, 1)
	if err != nil {
		t.Fatalf("SimulateYears: %v", err)
	}
	if len(stats) != 20 {
		t.Fatalf("stats = %d years", len(stats))
	}
	if sum.MeanDowntime != 0 {
		t.Errorf("MaxPerf downtime = %v", sum.MeanDowntime)
	}
	if sum.Nines != 9 {
		t.Errorf("MaxPerf nines = %v", sum.Nines)
	}
	if sum.MeanStateLossesYear != 0 {
		t.Errorf("MaxPerf state losses = %v", sum.MeanStateLossesYear)
	}
}

func TestMinCostIsAwful(t *testing.T) {
	fw := core.New(16)
	p := planner(cost.MinCost(fw.Env.PeakPower()))
	sum, _, err := p.SimulateYears(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanDowntime <= 0 {
		t.Error("MinCost should accrue downtime")
	}
	if sum.MeanStateLossesYear <= 0 {
		t.Error("MinCost should crash on every outage")
	}
	if sum.Availability >= 1 {
		t.Errorf("availability = %v", sum.Availability)
	}
}

func TestOrderingAcrossConfigs(t *testing.T) {
	fw := core.New(16)
	peak := fw.Env.PeakPower()
	configs := []cost.Backup{
		cost.MaxPerf(peak), cost.LargeEUPS(peak), cost.NoDG(peak), cost.MinCost(peak),
	}
	sums, err := CompareConfigs(fw, workload.Specjbb(), configs, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4 {
		t.Fatalf("sums = %d", len(sums))
	}
	// Same shared trace: downtime must be monotone as backup shrinks.
	for i := 1; i < len(sums); i++ {
		if sums[i].MeanDowntime < sums[i-1].MeanDowntime {
			t.Errorf("downtime ordering broken: %s %v < %s %v",
				sums[i].Config, sums[i].MeanDowntime, sums[i-1].Config, sums[i-1].MeanDowntime)
		}
	}
	// Costs must be strictly decreasing for this list.
	for i := 1; i < len(sums); i++ {
		if sums[i].NormCost >= sums[i-1].NormCost {
			t.Errorf("cost ordering broken at %s", sums[i].Config)
		}
	}
	// LargeEUPS should be dramatically better than MinCost on nines.
	if sums[1].Nines <= sums[3].Nines {
		t.Errorf("LargeEUPS nines %v should beat MinCost %v", sums[1].Nines, sums[3].Nines)
	}
}

func TestFixedTechniquePlanner(t *testing.T) {
	fw := core.New(16)
	p := planner(cost.LargeEUPS(fw.Env.PeakPower()))
	p.Technique = technique.Sleep{LowPower: true}
	sum, _, err := p.SimulateYears(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Sleeping through every outage: downtime ≈ outage time + resumes,
	// but no state losses (battery easily holds sleep loads).
	if sum.MeanStateLossesYear != 0 {
		t.Errorf("sleep-L state losses = %v", sum.MeanStateLossesYear)
	}
	if sum.MeanDowntime < sum.MeanOutageTime {
		t.Errorf("sleep downtime %v should cover outage time %v",
			sum.MeanDowntime, sum.MeanOutageTime)
	}
}

func TestRevenueLossPriced(t *testing.T) {
	fw := core.New(16)
	p := planner(cost.MinCost(fw.Env.PeakPower()))
	sum, _, err := p.SimulateYears(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sum.RevenueLossPerKWYear <= 0 {
		t.Error("revenue loss should be priced")
	}
	if sum.DGSavingsPerKWYear != 83.3 {
		t.Errorf("DG savings = %v", sum.DGSavingsPerKWYear)
	}
}

func TestValidation(t *testing.T) {
	p := &Planner{}
	if _, _, err := p.SimulateYears(1, 1); err == nil {
		t.Error("nil framework should fail")
	}
	fw := core.New(16)
	good := planner(cost.MaxPerf(fw.Env.PeakPower()))
	if _, _, err := good.SimulateYears(0, 1); err == nil {
		t.Error("zero years should fail")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	fw := core.New(16)
	a, _, _ := planner(cost.NoDG(fw.Env.PeakPower())).SimulateYears(5, 11)
	b, _, _ := planner(cost.NoDG(fw.Env.PeakPower())).SimulateYears(5, 11)
	if a.MeanDowntime != b.MeanDowntime || a.MeanOutagesPerYear != b.MeanOutagesPerYear {
		t.Error("same seed should reproduce")
	}
}

func TestNines(t *testing.T) {
	cases := []struct {
		avail float64
		want  float64
	}{
		{1, 9}, {0, 0}, {0.9, 1}, {0.999, 3},
	}
	for _, c := range cases {
		got := nines(c.avail)
		if got < c.want-0.01 || got > c.want+0.01 {
			t.Errorf("nines(%v) = %v, want %v", c.avail, got, c.want)
		}
	}
}

func TestYearStatsConsistency(t *testing.T) {
	fw := core.New(16)
	p := planner(cost.NoDG(fw.Env.PeakPower()))
	_, stats, err := p.SimulateYears(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, ys := range stats {
		if ys.ServiceLoss < ys.Downtime {
			t.Errorf("year %d: service loss %v < downtime %v", i, ys.ServiceLoss, ys.Downtime)
		}
		if ys.StateLosses > ys.Outages {
			t.Errorf("year %d: more crashes than outages", i)
		}
		if time.Duration(ys.Outages) != 0 && ys.OutageTime <= 0 {
			t.Errorf("year %d: outages without outage time", i)
		}
	}
}
