package cluster

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"backuppower/internal/technique"
)

// batchCut is one requested outage on the shared walk: the reporting
// window T, the point where its plan pressure ends (effEnd, which is the
// scalar walk's horizon for that outage), and the caller's slot for the
// result. Cuts are processed in effEnd order along the walk.
type batchCut struct {
	T, effEnd time.Duration
	out       int
}

// SimulateOutageBatch evaluates one scenario across a whole outage axis,
// returning results[i] bit-identical to SimulateAggregate with
// s.Outage = outages[i]. The Outage field of s is ignored; the axis may be
// unsorted and contain duplicates.
//
// For techniques declaring technique.OutageInvariantPlanner the plan is
// constructed once and a single segment walk up to max(outages) serves
// every point: at each cut the running walk state is snapshotted (a plain
// struct copy) and the outage epilogue runs on the snapshot, so per-point
// work is O(1) and allocation-free. The snapshot is exact because the walk
// up to a cut never depends on what lies beyond it: a horizon only ever
// truncates the final segment, capping violations fire at segment starts,
// and battery exhaustion inside a segment yields the same sustained time
// whatever the segment's remaining length (battery.State.Drain's empty
// branch ignores dt). Techniques whose plans scale with the outage are
// simulated per point through the identical scalar path.
func SimulateOutageBatch(s Scenario, outages []time.Duration) ([]Result, error) {
	if len(outages) == 0 {
		return nil, nil
	}
	for _, d := range outages {
		if d <= 0 {
			return nil, fmt.Errorf("cluster: non-positive outage %v", d)
		}
	}
	s.Outage = outages[0]
	if err := s.Validate(); err != nil {
		return nil, err
	}

	results := make([]Result, len(outages))
	if !technique.PlanOutageInvariant(s.Technique) {
		for i, d := range outages {
			s.Outage = d
			res, err := SimulateAggregate(s)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}

	// Plan once: the declared invariance makes the outage argument inert.
	plan := s.Technique.Plan(s.Env, s.Workload, outages[0])
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	fixedEnd := fixedPhasesEnd(plan)

	cuts := make([]batchCut, len(outages))
	var dgEndsOutage bool
	for i, d := range outages {
		effEnd, dgEnds := effectivePressureEnd(s, d)
		cuts[i] = batchCut{T: d, effEnd: effEnd, out: i}
		dgEndsOutage = dgEnds
	}
	slices.SortFunc(cuts, func(a, b batchCut) int {
		if c := cmp.Compare(a.effEnd, b.effEnd); c != 0 {
			return c
		}
		if c := cmp.Compare(a.T, b.T); c != 0 {
			return c
		}
		return cmp.Compare(a.out, b.out)
	})
	horizon := cuts[len(cuts)-1].effEnd

	// The battery cost model is outage-invariant: derive it once for the
	// axis rather than at every cut's epilogue.
	normCost := s.Backup.NormalizedCost(s.Env.PeakPower())

	var st walkState
	st.unit.Config = s.Backup.UPS
	emit := func(c batchCut) {
		cl := st
		results[c.out] = cl.finish(s, plan, c.T, c.effEnd, fixedEnd, dgEndsOutage, normCost)
	}

	ci := 0
	cur := newSegCursor(plan, s.Backup.DG, horizon)
	var seg Segment
	walking := true
	for walking && cur.next(&seg) {
		// Cuts whose pressure window closed at or before this segment's
		// start: their scalar walk never saw this segment.
		for ci < len(cuts) && cuts[ci].effEnd <= seg.Start {
			emit(cuts[ci])
			ci++
		}
		// Cuts strictly inside the segment: the scalar horizon truncates
		// exactly this segment, so walk a truncated copy on a snapshot.
		for ci < len(cuts) && cuts[ci].effEnd < seg.End {
			cl := st
			trunc := seg
			trunc.End = cuts[ci].effEnd
			cl.step(&trunc)
			results[cuts[ci].out] = cl.finish(s, plan, cuts[ci].T, cuts[ci].effEnd, fixedEnd, dgEndsOutage, normCost)
			ci++
		}
		walking = st.step(&seg)
	}
	// Remaining cuts see the final state: either every segment ran (cuts
	// at the walk horizon), or the walk terminated early — at an instant
	// and in a condition identical under any of the longer horizons left.
	for ; ci < len(cuts); ci++ {
		emit(cuts[ci])
	}
	return results, nil
}
