// Package tco implements the Section 7 total-cost-of-ownership analysis
// (Figure 10): weighing the amortized savings from not provisioning Diesel
// Generators against the revenue lost (plus idle server depreciation)
// during the yearly minutes of unavailability that underprovisioning
// allows. The cross-over point tells an organization how much yearly outage
// it can absorb and still profit from dropping the DG.
package tco

import (
	"fmt"
	"time"

	"backuppower/internal/units"
)

// Analysis holds the per-KW economics.
type Analysis struct {
	// RevenuePerKWMin is revenue attributed to each KW-minute of operation.
	RevenuePerKWMin float64
	// DepreciationPerKWMin is the server cap-ex wasted per KW-minute of
	// unavailability.
	DepreciationPerKWMin float64
	// DGSavingsPerKWYear is the amortized annual saving from not
	// provisioning DGs (Table 1: $83.3/KW/yr).
	DGSavingsPerKWYear float64
}

// GoogleInputs are the public 2011 figures the paper uses.
type GoogleInputs struct {
	DatacenterPower units.Watts // total fleet power
	AnnualRevenue   float64     // $/year, attributed to datacenter operation
	ServerCost      float64     // $ per server
	ServerLifetime  time.Duration
	ServerPeak      units.Watts // per-server power for $/KW conversion
}

// DefaultGoogle2011 returns the paper's inputs: 260 MW fleet, $38 B
// revenue, $2000 servers depreciated over 4 years.
func DefaultGoogle2011() GoogleInputs {
	return GoogleInputs{
		DatacenterPower: 260 * units.Megawatt,
		AnnualRevenue:   38e9,
		ServerCost:      2000,
		ServerLifetime:  4 * 365 * 24 * time.Hour,
		ServerPeak:      250,
	}
}

// minutesPerYear is the denominator for per-minute rates.
const minutesPerYear = 365 * 24 * 60

// NewAnalysis derives the per-KW rates from organization inputs.
func NewAnalysis(in GoogleInputs, dgSavingsPerKWYear float64) (Analysis, error) {
	if in.DatacenterPower <= 0 || in.AnnualRevenue < 0 || in.ServerPeak <= 0 || in.ServerLifetime <= 0 {
		return Analysis{}, fmt.Errorf("tco: implausible inputs %+v", in)
	}
	revenue := in.AnnualRevenue / in.DatacenterPower.KW() / minutesPerYear
	// Servers per KW times annual depreciation per server, per minute.
	serversPerKW := 1000 / float64(in.ServerPeak)
	annualDep := in.ServerCost / in.ServerLifetime.Hours() * 24 * 365
	dep := serversPerKW * annualDep / minutesPerYear
	return Analysis{
		RevenuePerKWMin:      revenue,
		DepreciationPerKWMin: dep,
		DGSavingsPerKWYear:   dgSavingsPerKWYear,
	}, nil
}

// LossPerKWMin is the combined cost of one KW-minute of unavailability.
func (a Analysis) LossPerKWMin() float64 {
	return a.RevenuePerKWMin + a.DepreciationPerKWMin
}

// OutageCostPerKWYear returns the yearly $/KW loss for the given total
// yearly outage (unavailability) duration.
func (a Analysis) OutageCostPerKWYear(perYear time.Duration) float64 {
	return a.LossPerKWMin() * perYear.Minutes()
}

// Crossover returns the yearly outage duration at which the loss equals the
// DG savings — operate left of this and underprovisioning is profitable
// (the paper's Figure 10 cross-over lands near 5 hours/year).
func (a Analysis) Crossover() time.Duration {
	loss := a.LossPerKWMin()
	if loss <= 0 {
		return 0
	}
	return time.Duration(a.DGSavingsPerKWYear / loss * float64(time.Minute))
}

// ProfitableAt reports whether the given yearly outage duration still saves
// money overall.
func (a Analysis) ProfitableAt(perYear time.Duration) bool {
	return a.OutageCostPerKWYear(perYear) < a.DGSavingsPerKWYear
}

// Point is one sample of the Figure 10 curve.
type Point struct {
	PerYear  time.Duration
	Loss     float64 // $/KW/year from unavailability
	Savings  float64 // $/KW/year from no DG (horizontal line)
	Profitab bool
}

// Series samples the Figure 10 curve from 0 to max in the given step.
func (a Analysis) Series(max, step time.Duration) []Point {
	if step <= 0 || max <= 0 {
		return nil
	}
	var out []Point
	for t := time.Duration(0); t <= max; t += step {
		out = append(out, Point{
			PerYear:  t,
			Loss:     a.OutageCostPerKWYear(t),
			Savings:  a.DGSavingsPerKWYear,
			Profitab: a.ProfitableAt(t),
		})
	}
	return out
}
