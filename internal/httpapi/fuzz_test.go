package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"

	"backuppower/internal/grid"
)

// FuzzDecodeEvaluateRequest pins two properties of the strict request
// decoder: it never panics on any byte sequence, and any body it accepts
// round-trips — re-encoding the decoded request and decoding again gives
// the same value, so nothing the handler acts on is lost or invented by
// the wire layer.
func FuzzDecodeEvaluateRequest(f *testing.F) {
	f.Add(`{"config":{"name":"MaxPerf"},"technique":{"name":"baseline"},"workload":"specjbb","outage":"30m"}`)
	f.Add(`{"config":{"dg_power":"180kW","ups_power":"13kW","ups_runtime":"5m"},` +
		`"technique":{"name":"throttle-then-save","pstate":6,"save":"hibernate","active_fraction":0.5},` +
		`"workload":"web-search","outage":"1h","width":8,"timeout":"10s"}`)
	f.Add(`{"technique":{"name":"capped-throttling","budget":"90kW"},"workload":"memcached","outage":"5m"}`)
	f.Add(`{}`)
	f.Add(`{"config":{"name":"NoDG"},"unknown_field":1}`)
	f.Add(`{} trailing`)
	f.Add(`[1,2,3]`)
	f.Add(`{"config":`)
	f.Add(`{"technique":{"pstate":-9999999999999999999}}`)
	f.Add("{\"workload\":\"\xff\xfe\"}")

	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeEvaluateRequest(strings.NewReader(body))
		if err != nil {
			return // rejection is fine; not panicking is the property
		}
		// json.Marshal replaces invalid UTF-8 in strings with U+FFFD while
		// the decoder can let raw invalid bytes through, so the round-trip
		// equality only holds for valid-UTF-8 payloads.
		for _, s := range []string{
			req.Config.Name, req.Config.DGPower, req.Config.UPSPower, req.Config.UPSRuntime,
			req.Technique.Name, req.Technique.Save, req.Technique.Budget,
			req.Workload, req.Outage, req.Timeout,
		} {
			if !utf8.ValidString(s) {
				return
			}
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request failed to re-encode: %v", err)
		}
		again, err := DecodeEvaluateRequest(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-encoded request %s rejected: %v", enc, err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip changed the request:\nfirst:  %+v\nsecond: %+v", req, again)
		}
	})
}

// sweepRequestStrings flattens every string field of a decoded sweep
// request, so the fuzz round-trip can skip payloads whose raw bytes
// json.Marshal would rewrite (invalid UTF-8 becomes U+FFFD).
func sweepRequestStrings(req SweepRequest) []string {
	out := []string{req.Spec.Op, req.Timeout}
	out = append(out, req.Spec.Workloads...)
	out = append(out, req.Spec.Outages...)
	for _, c := range req.Spec.Configs {
		out = append(out, c.Name, c.DGPower, c.UPSPower, c.UPSRuntime)
	}
	for _, d := range req.Spec.Techniques {
		out = append(out, d.Name, d.Save, d.Budget)
	}
	if f := req.Spec.Filter; f != nil {
		out = append(out, f.MinOutage, f.MaxOutage)
	}
	return out
}

// FuzzDecodeSweepRequest pins the sweep endpoint's wire layer and the
// grid compiler behind it: no byte sequence panics the decoder, any
// accepted body round-trips unchanged, and compiling whatever the wire
// let through under a tight row bound either yields a small plan or a
// typed *grid.FieldError — never a panic and never an unbounded
// materialization (oversize cross-products are rejected from the axis
// lengths alone).
func FuzzDecodeSweepRequest(f *testing.F) {
	f.Add(`{"spec":{"workloads":["specjbb"],"configs":[{"name":"MaxPerf"}],` +
		`"techniques":[{"name":"baseline"}],"outages":["30s","5m"]}}`)
	f.Add(`{"spec":{"op":"size","workloads":["memcached","web-search"],"technique_variants":true,` +
		`"outages":["30m"]},"width":4,"timeout":"20s","shard_size":8}`)
	f.Add(`{"spec":{"op":"best","workloads":["specjbb"],"configs":[{"name":"NoDG"},` +
		`{"dg_power":"180kW","ups_power":"13kW","ups_runtime":"5m"}],"outages":["30s","2h"],` +
		`"filter":{"min_outage":"1m","sample_every":2}}}`)
	f.Add(`{"spec":{"workloads":["specjbb","memcached"],"configs":[{"name":"MaxPerf"}],` +
		`"techniques":[{"name":"throttling","pstate":3}],"outages":["30s","5m"],"zip":true}}`)
	f.Add(`{"spec":{"workloads":["a","a","a","a","a","a","a","a","a","a"],` +
		`"outages":["1s","1s","1s","1s","1s","1s","1s","1s","1s","1s"],"technique_variants":true,` +
		`"configs":[{},{},{},{},{},{},{},{},{},{}],"servers":[1,2,3,4,5,6,7,8,9,10]}}`)
	f.Add(`{"spec":{"max_rows":-1}}`)
	f.Add(`{"spec":{}}`)
	f.Add(`{"spec":{"op":"evaluate"},"shard_size":-3}`)
	f.Add(`{"spec":`)
	f.Add(`{"spec":{}} trailing`)
	f.Add(`{"spec":{"unknown":true}}`)

	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeSweepRequest(strings.NewReader(body))
		if err != nil {
			return // rejection is fine; not panicking is the property
		}
		valid := true
		for _, s := range sweepRequestStrings(req) {
			if !utf8.ValidString(s) {
				valid = false
				break
			}
		}
		if valid {
			enc, err := json.Marshal(req)
			if err != nil {
				t.Fatalf("accepted request failed to re-encode: %v", err)
			}
			again, err := DecodeSweepRequest(bytes.NewReader(enc))
			if err != nil {
				t.Fatalf("re-encoded request %s rejected: %v", enc, err)
			}
			// Spec axes carry omitempty, so an explicitly-empty axis
			// re-encodes as absent (nil vs []). Compare the canonical
			// wire forms, which is the property the handler relies on.
			enc2, err := json.Marshal(again)
			if err != nil {
				t.Fatalf("re-decoded request failed to re-encode: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("round trip changed the request:\nfirst:  %s\nsecond: %s", enc, enc2)
			}
		}

		const maxRows = 64
		plan, err := grid.Compile(req.Spec, grid.CompileOptions{DefaultServers: 4, MaxRows: maxRows})
		if err != nil {
			var fe *grid.FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("Compile returned an untyped error: %v", err)
			}
			return
		}
		if len(plan.Points) > maxRows {
			t.Fatalf("plan exceeded the row bound: %d > %d", len(plan.Points), maxRows)
		}
	})
}
