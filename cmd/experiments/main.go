// Command experiments regenerates the paper's tables and figures from the
// models. With no flags it runs everything in paper order; -exp selects a
// single experiment and -list enumerates the ids. -parallel sets the
// sweep-engine worker-pool width (every nested scenario fan-out — variant
// races, rating sweeps, Monte-Carlo years — shares it; 1 forces the serial
// reference behavior) and -timeout bounds the whole regeneration. Output
// is byte-identical at every width: tables render in registry order no
// matter which finished first.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"backuppower/internal/experiments"
	"backuppower/internal/report"
	"backuppower/internal/sweep"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text or csv")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"sweep worker-pool width (1 = serial)")
	timeout := flag.Duration("timeout", 0, "abort the regeneration after this long (0 = no limit)")
	flag.Parse()

	render := func(t report.Table, w io.Writer) error { return t.Render(w) }
	switch *format {
	case "text":
	case "csv":
		render = func(t report.Table, w io.Writer) error { return t.RenderCSV(w) }
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	ctx := sweep.WithWidth(context.Background(), *parallel)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp != "" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(2)
		}
		if err := render(e.Run(ctx), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	tables, err := experiments.RunAll(ctx, experiments.Registry())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var buf bytes.Buffer
	for _, t := range tables {
		if err := render(t, &buf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if _, err := buf.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
