// Package server models the compute nodes of the datacenter: their power
// draw as a function of utilization and active power state (DVFS P-states
// and clock-throttling T-states), and the inactive states used by the
// save-state techniques (S3 sleep with DRAM in self-refresh, hibernate,
// off, crashed).
//
// The model is calibrated to the paper's testbed (Section 6): dual-socket
// 12-core 3.4 GHz Xeons with 64 GB DRAM, idle ~80 W, measured peak ~250 W,
// 7 voltage/frequency P-states and 8 clock-throttling T-states, and S3
// sleep power of 2-4 W per DIMM (~5 W/server as used in Section 6.2).
package server

import (
	"fmt"
	"time"

	"backuppower/internal/units"
)

// PowerState is the operational state of a server.
type PowerState int

// Power states.
const (
	Active     PowerState = iota // running, possibly throttled
	Sleep                        // S3 suspend-to-RAM, DRAM self-refresh
	Hibernated                   // S4, state on disk, fully powered down
	Off                          // powered down, volatile state lost
	Crashed                      // lost power abruptly; volatile state lost
)

// String names the state.
func (s PowerState) String() string {
	switch s {
	case Active:
		return "active"
	case Sleep:
		return "sleep"
	case Hibernated:
		return "hibernated"
	case Off:
		return "off"
	case Crashed:
		return "crashed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Retained reports whether volatile memory state survives this power state.
func (s PowerState) Retained() bool {
	switch s {
	case Active, Sleep:
		return true
	default:
		return false
	}
}

// PState is one DVFS operating point: a relative frequency and the dynamic
// power it costs relative to the top state. Dynamic power scales roughly
// with f*V^2 and V scales with f across the DVFS range, so the power factor
// is (freq)^3 softened by a static-leakage floor.
type PState struct {
	Index       int
	FreqRatio   float64 // 1.0 at P0
	DynPowerMul float64 // multiplier on (peak-idle) dynamic power
}

// Config is a server hardware description.
type Config struct {
	Name      string
	IdleW     units.Watts
	PeakW     units.Watts
	MemoryGB  int
	DIMMs     int
	SleepWPer units.Watts // per-DIMM self-refresh power in S3

	PStates []PState // sorted P0..Pn (descending frequency)
	TStates int      // number of clock-throttling duty-cycle states

	// TransitionToSleep and company are how long the state changes take
	// (Table 5: Sleep ~10 s to take effect; throttling tens of µs).
	ThrottleLatency   time.Duration
	TransitionToSleep time.Duration
	ResumeFromSleep   time.Duration
	RestartTime       time.Duration // cold boot: BIOS + OS + re-init (~2 min)
}

// DefaultConfig is the paper's testbed server.
func DefaultConfig() Config {
	return Config{
		Name:              "xeon-2s-12c",
		IdleW:             80,
		PeakW:             250,
		MemoryGB:          64,
		DIMMs:             8,
		SleepWPer:         0.65, // ~5 W/server in S3 (§6.2)
		PStates:           MakePStates(7, 0.40),
		TStates:           8,
		ThrottleLatency:   50 * time.Microsecond,
		TransitionToSleep: 6 * time.Second, // measured save time, Table 8
		ResumeFromSleep:   8 * time.Second,
		RestartTime:       2 * time.Minute, // §6.2 web-search: server restart ~2 min
	}
}

// MakePStates builds n DVFS states with frequency descending linearly from
// 1.0 to minFreq, and dynamic power following a leakage-softened cubic law.
func MakePStates(n int, minFreq float64) []PState {
	if n < 1 {
		n = 1
	}
	out := make([]PState, n)
	for i := range out {
		f := 1.0
		if n > 1 {
			f = 1.0 - (1.0-minFreq)*float64(i)/float64(n-1)
		}
		out[i] = PState{Index: i, FreqRatio: f, DynPowerMul: dynPower(f)}
	}
	return out
}

// dynPower maps a frequency ratio to a dynamic-power multiplier: a 30%
// frequency-independent floor (uncore, memory, leakage) plus a cubic DVFS
// term. dynPower(1) = 1.
func dynPower(f float64) float64 {
	const floor = 0.30
	return floor + (1-floor)*f*f*f
}

// Validate checks the hardware description.
func (c Config) Validate() error {
	switch {
	case c.IdleW <= 0 || c.PeakW <= c.IdleW:
		return fmt.Errorf("server: idle %v / peak %v implausible", c.IdleW, c.PeakW)
	case len(c.PStates) == 0:
		return fmt.Errorf("server: no P-states")
	case c.TStates < 1:
		return fmt.Errorf("server: no T-states")
	case c.DIMMs < 1:
		return fmt.Errorf("server: no DIMMs")
	}
	for i, p := range c.PStates {
		if p.FreqRatio <= 0 || p.FreqRatio > 1 {
			return fmt.Errorf("server: P%d freq %v out of (0,1]", i, p.FreqRatio)
		}
		if i > 0 && p.FreqRatio >= c.PStates[i-1].FreqRatio {
			return fmt.Errorf("server: P-states not descending at %d", i)
		}
	}
	return nil
}

// SleepPower is the whole-server S3 draw.
func (c Config) SleepPower() units.Watts {
	return c.SleepWPer * units.Watts(c.DIMMs)
}

// ActivePower returns the draw of an Active server at the given utilization
// in P-state p with a T-state duty cycle (1.0 = no clock throttling).
// Power = idle + dynamic(peak-idle) * util * pstateMul * duty.
func (c Config) ActivePower(util float64, p PState, duty float64) units.Watts {
	util = units.Clamp01(util)
	duty = units.Clamp01(duty)
	dyn := float64(c.PeakW-c.IdleW) * util * p.DynPowerMul * duty
	return c.IdleW + units.Watts(dyn)
}

// StatePower returns the draw in a non-active state.
func (c Config) StatePower(s PowerState) units.Watts {
	switch s {
	case Sleep:
		return c.SleepPower()
	case Hibernated, Off, Crashed:
		return 0
	default:
		return c.IdleW
	}
}

// DeepestPState returns the lowest-frequency P-state.
func (c Config) DeepestPState() PState { return c.PStates[len(c.PStates)-1] }

// PStateByFreq returns the highest-frequency P-state at or below the target
// frequency ratio (the state a governor would pick to cap performance).
func (c Config) PStateByFreq(target float64) PState {
	best := c.PStates[0]
	for _, p := range c.PStates {
		if p.FreqRatio <= target+1e-9 {
			return p
		}
		best = p
	}
	return best
}

// TStateDuty returns the duty cycle of T-state index i in [0,TStates-1]:
// T0 = 1.0 down to 1/TStates.
func (c Config) TStateDuty(i int) float64 {
	if i < 0 {
		i = 0
	}
	if i >= c.TStates {
		i = c.TStates - 1
	}
	return float64(c.TStates-i) / float64(c.TStates)
}
