package experiments

import (
	"context"
	"fmt"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/report"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// MemSize reproduces §6.2's "Impact of Application Memory Usage" study
// (described in prose; detailed in the companion tech report): SPECjbb's
// state size is varied and each technique family re-evaluated. Smaller
// state shrinks hibernate/migrate times; sleep is unaffected.
func MemSize(ctx context.Context) report.Table {
	t := report.Table{
		Title:   "Section 6.2: SPECjbb memory-usage sensitivity (30 min outage)",
		Columns: []string{"state size", "technique", "cost", "perf", "downtime"},
	}
	f := framework()
	for _, gb := range []int{4, 9, 18} {
		w := specjbbWithFootprint(gb)
		for _, tech := range []technique.Technique{
			technique.Hibernate{},
			technique.Sleep{LowPower: true},
			technique.Migration{},
			technique.Throttling{PState: 6},
		} {
			op, ok, err := f.MinCostUPSCtx(ctx, tech, w, 30*time.Minute)
			if err != nil {
				t.Notes = append(t.Notes, "failed: "+err.Error())
				return t
			}
			if !ok {
				t.AddRow(fmt.Sprintf("%d GiB", gb), tech.Name(), "infeasible", "-", "-")
				continue
			}
			t.AddRow(fmt.Sprintf("%d GiB", gb), tech.Name(),
				op.NormCost, op.Result.Perf,
				report.DurationBand(op.Result.DowntimeMin, op.Result.DowntimeMax))
		}
	}
	t.Notes = append(t.Notes,
		"paper: smaller state cuts hibernation downtime and migration time; sleep is size-independent")
	return t
}

// specjbbWithFootprint scales the SPECjbb model to a different state size,
// keeping the working-set and image proportions.
func specjbbWithFootprint(gb int) workload.Spec {
	w := workload.Specjbb()
	scale := float64(gb) / w.Memory.Footprint.GiB()
	w.Name = fmt.Sprintf("specjbb-%dg", gb)
	w.Memory.Footprint = units.Bytes(float64(w.Memory.Footprint) * scale)
	w.Memory.WorkingSet = units.Bytes(float64(w.Memory.WorkingSet) * scale)
	w.VMImage = units.Bytes(float64(w.VMImage) * scale)
	w.Hibernate.Image = units.Bytes(float64(w.Hibernate.Image) * scale)
	w.Hibernate.ProactiveImage = units.Bytes(float64(w.Hibernate.ProactiveImage) * scale)
	return w
}

// Proportionality is the ablation behind §6.2's explanation that
// "migration ... is better than throttling ... due to lack of energy
// proportionality in today's servers": as servers approach proportionality
// (idle power → 0), consolidation's advantage evaporates because vacating
// a server stops saving its idle watts.
func Proportionality(ctx context.Context) report.Table {
	t := report.Table{
		Title:   "Ablation: energy proportionality vs migration's advantage (SPECjbb, 1h)",
		Columns: []string{"idle power", "idle/peak", "throttle cost", "migration cost", "migration wins"},
	}
	for _, idle := range []units.Watts{80, 50, 25, 5} {
		env := technique.DefaultEnv(DefaultServers)
		env.Server.IdleW = idle
		f := &core.Framework{Env: env}
		w := workload.Specjbb()
		thr, ok1, err1 := f.MinCostUPSCtx(ctx, technique.Throttling{PState: 6}, w, time.Hour)
		mig, ok2, err2 := f.MinCostUPSCtx(ctx, technique.Migration{ThrottleDeep: true}, w, time.Hour)
		if err1 != nil || err2 != nil {
			t.Notes = append(t.Notes, "failed: context cancelled")
			return t
		}
		if !ok1 || !ok2 {
			t.AddRow(idle, "-", "-", "-", "-")
			continue
		}
		// Compare cost per unit of delivered performance.
		thrEff := thr.NormCost / maxf(thr.Result.Perf, 1e-9)
		migEff := mig.NormCost / maxf(mig.Result.Perf, 1e-9)
		t.AddRow(idle, fmt.Sprintf("%.2f", float64(idle)/float64(env.Server.PeakW)),
			fmt.Sprintf("%.2f (perf %.2f)", thr.NormCost, thr.Result.Perf),
			fmt.Sprintf("%.2f (perf %.2f)", mig.NormCost, mig.Result.Perf),
			fmt.Sprintf("%v", migEff < thrEff))
	}
	t.Notes = append(t.Notes,
		"today's 80 W idle favors consolidation; a near-proportional 5 W server erases most of the benefit")
	return t
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
