// Command experiments regenerates the paper's tables and figures from the
// models. With no flags it runs everything in paper order; -exp selects a
// single experiment and -list enumerates the ids.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"backuppower/internal/experiments"
	"backuppower/internal/report"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text or csv")
	flag.Parse()

	render := func(t report.Table, w io.Writer) error { return t.Render(w) }
	switch *format {
	case "text":
	case "csv":
		render = func(t report.Table, w io.Writer) error { return t.RenderCSV(w) }
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp != "" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(2)
		}
		if err := render(e.Run(), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, e := range experiments.Registry() {
		if err := render(e.Run(), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
