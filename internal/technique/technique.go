// Package technique implements the outage-handling system techniques of
// Section 5 (Tables 4-6): the sustain-execution family (Throttling,
// Migration/Consolidation, Proactive Migration), the save-state family
// (Sleep, Hibernation, Proactive Hibernation), and the low-power hybrids
// (Sleep-L, Hibernate-L, Throttle+Sleep-L, Throttle+Hibernate,
// Migration+Sleep-L).
//
// A technique, given the datacenter environment, a workload, and an outage
// duration, produces a Plan: a sequence of phases describing the aggregate
// power demanded from the backup infrastructure, the application's
// performance and availability, and whether volatile state would survive an
// abrupt power cut in that phase. The cluster simulator executes plans
// against a provisioned backup configuration.
package technique

import (
	"fmt"
	"time"

	"backuppower/internal/migration"
	"backuppower/internal/server"
	"backuppower/internal/storage"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// Env is the datacenter environment a plan is computed for.
type Env struct {
	Servers int           // number of servers behind the backup
	Server  server.Config // per-server hardware model
	Disk    storage.Disk  // local disk for hibernate images
	Mig     migration.Config
}

// DefaultEnv returns the paper's testbed scaled to n servers.
func DefaultEnv(n int) Env {
	return Env{
		Servers: n,
		Server:  server.DefaultConfig(),
		Disk:    storage.DefaultLocal(),
		Mig:     migration.DefaultConfig(),
	}
}

// Validate checks the environment.
func (e Env) Validate() error {
	if e.Servers < 1 {
		return fmt.Errorf("technique: %d servers", e.Servers)
	}
	if err := e.Server.Validate(); err != nil {
		return err
	}
	if err := e.Disk.Validate(); err != nil {
		return err
	}
	return e.Mig.Validate()
}

// PeakPower is the datacenter's peak draw (what MaxPerf provisions for).
func (e Env) PeakPower() units.Watts {
	return e.Server.PeakW * units.Watts(e.Servers)
}

// NormalPower is the draw under the given workload during normal operation.
func (e Env) NormalPower(w workload.Spec) units.Watts {
	p := e.Server.ActivePower(w.Utilization, e.Server.PStates[0], 1)
	return p * units.Watts(e.Servers)
}

// Phase is one step of a plan. Phases execute in order from the start of
// the outage on the wall clock — a phase does not stop when utility power
// returns (a hibernate save runs to completion), it merely stops drawing
// from the backup infrastructure.
type Phase struct {
	Name string

	// Dur is the phase length. The final phase of a plan may instead be
	// open-ended (OpenEnded true, Dur ignored): it holds until the outage
	// ends.
	Dur       time.Duration
	OpenEnded bool

	// Power is the aggregate draw the datacenter places on the backup
	// infrastructure during the phase.
	Power units.Watts

	// Perf is normalized application throughput (0 = unavailable) and
	// Available whether the application responds at all.
	Perf      float64
	Available bool

	// StateSafe reports whether volatile application state survives an
	// abrupt power cut during this phase (already persisted or replicated
	// and the active copy expendable). Note Sleep is NOT safe: S3 keeps
	// state in self-refresh DRAM, which dies with the battery.
	StateSafe bool
}

// Plan is a technique's complete outage response.
type Plan struct {
	Technique string
	Phases    []Phase

	// RestoreDowntime is additional unavailability after both the outage
	// and all fixed phases have completed (resume from S3/disk, warm-up
	// charged as downtime, etc.).
	RestoreDowntime time.Duration

	// RestoreAfterPowerLossOnly marks plans whose restore cost applies
	// only if the servers actually went dark (NVDIMM-backed execution:
	// nothing to restore when the battery outlasted the outage).
	RestoreAfterPowerLossOnly bool

	// RestoreDegradedDur/Perf describe a degraded (but available) period
	// after restore, e.g. running consolidated while migrating back.
	RestoreDegradedDur  time.Duration
	RestoreDegradedPerf float64
}

// Validate sanity-checks a plan.
func (p Plan) Validate() error {
	if len(p.Phases) == 0 {
		return fmt.Errorf("technique %s: empty plan", p.Technique)
	}
	for i, ph := range p.Phases {
		if ph.OpenEnded && i != len(p.Phases)-1 {
			return fmt.Errorf("technique %s: phase %d open-ended but not last", p.Technique, i)
		}
		if !ph.OpenEnded && ph.Dur < 0 {
			return fmt.Errorf("technique %s: phase %d negative duration", p.Technique, i)
		}
		if ph.Power < 0 {
			return fmt.Errorf("technique %s: phase %d negative power", p.Technique, i)
		}
		if ph.Perf < 0 || ph.Perf > 1 {
			return fmt.Errorf("technique %s: phase %d perf %v out of [0,1]", p.Technique, i, ph.Perf)
		}
		if ph.Perf > 0 && !ph.Available {
			return fmt.Errorf("technique %s: phase %d has perf but unavailable", p.Technique, i)
		}
	}
	if !p.Phases[len(p.Phases)-1].OpenEnded {
		return fmt.Errorf("technique %s: last phase must be open-ended", p.Technique)
	}
	return nil
}

// PeakPower returns the highest phase power — the power capacity the
// backup must be able to source for the plan to be feasible.
func (p Plan) PeakPower() units.Watts {
	var peak units.Watts
	for _, ph := range p.Phases {
		if ph.Power > peak {
			peak = ph.Power
		}
	}
	return peak
}

// Technique generates plans.
type Technique interface {
	// Name is the display name used in the paper's figures.
	Name() string
	// Plan computes the outage response for the workload and duration.
	Plan(env Env, w workload.Spec, outage time.Duration) Plan
}

// CrashRecovery returns the downtime to recover an application whose
// volatile state was lost: server reboot, application restart, cold data
// reload, warm-up charged as downtime, and (for HPC) recomputation. The
// min/max spread comes from the recompute range.
func CrashRecovery(env Env, w workload.Spec) (min, max time.Duration) {
	base := env.Server.RestartTime +
		w.Recovery.AppRestart +
		env.Disk.ReadTime(w.Recovery.ColdReload, 1) +
		w.Recovery.Warmup
	return base + w.Recovery.RecomputeMin, base + w.Recovery.RecomputeMax
}

// CrashRecoveryMid returns the midpoint recovery time, used where a scalar
// is needed.
func CrashRecoveryMid(env Env, w workload.Spec) time.Duration {
	lo, hi := CrashRecovery(env, w)
	return (lo + hi) / 2
}

// throttledSpeed converts a P-state (+ optional T-state duty) into the
// effective clock speed seen by the Amdahl performance model.
func throttledSpeed(p server.PState, duty float64) float64 {
	return p.FreqRatio * units.Clamp01(duty)
}

// lowPowerFactor is the normalized save-phase power of the "-L" hybrid
// variants relative to the unthrottled variants (Table 8 reports 0.5; the
// deepest DVFS state of the modeled server lands at ~0.55).
func lowPowerFactor(env Env, w workload.Spec) float64 {
	deep := env.Server.DeepestPState()
	full := env.Server.ActivePower(w.Utilization, env.Server.PStates[0], 1)
	thr := env.Server.ActivePower(w.Utilization, deep, 1)
	return float64(thr) / float64(full)
}
