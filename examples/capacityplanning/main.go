// Capacity planning: given a performability SLA (minimum performance
// during outages, maximum tolerable down time) and a target outage-duration
// coverage percentile, find the cheapest DG-less backup for each workload —
// the paper's "can we do away with DGs?" question asked as a planning tool.
package main

import (
	"fmt"
	"time"

	backuppower "backuppower"
)

const (
	slaMinPerf     = 0.30            // tolerate 70% degradation during outages
	slaMaxDowntime = 2 * time.Minute // near-seamless
	coverage       = 0.90            // plan for the 90th percentile outage
)

func main() {
	fw := backuppower.NewFramework(64)
	dist := backuppower.OutageDurations()
	target := dist.Quantile(coverage)
	fmt.Printf("planning for the P%.0f outage: %v (mean %v)\n",
		coverage*100, target.Round(time.Minute), dist.Mean().Round(time.Minute))
	fmt.Printf("SLA: perf >= %.2f during outage, downtime <= %v\n\n", slaMinPerf, slaMaxDowntime)

	for _, w := range backuppower.Workloads() {
		fmt.Printf("%s:\n", w.Name)
		var best *backuppower.OperatingPoint
		var bestName string
		for _, s := range fw.EvaluateTechniques(w, target) {
			for _, op := range s.Points {
				op := op
				if op.Result.Perf < slaMinPerf || op.Result.Downtime > slaMaxDowntime {
					continue
				}
				if best == nil || op.NormCost < best.NormCost {
					best, bestName = &op, s.Technique
				}
			}
		}
		if best == nil {
			fmt.Printf("  no DG-less option meets the SLA for %v outages\n\n", target.Round(time.Minute))
			continue
		}
		fmt.Printf("  cheapest SLA-meeting option: %s (%s)\n", bestName, best.Technique)
		fmt.Printf("  UPS: %v rated for %v\n", best.Backup.UPS.PowerCapacity, best.Backup.UPS.Runtime.Round(time.Second))
		fmt.Printf("  cost: %.0f%% of MaxPerf; perf during outage %.2f; downtime %v\n\n",
			best.NormCost*100, best.Result.Perf, best.Result.Downtime.Round(time.Second))
	}

	// And the organization-level sanity check: how much yearly outage can
	// we absorb before dropping the DG stops paying (Figure 10)?
	if a, err := backuppower.NewTCO(); err == nil {
		fmt.Printf("TCO cross-over: DG-less is profitable below %v of outage per year\n",
			a.Crossover().Round(time.Minute))
	}
}
