package tco_test

import (
	"fmt"
	"time"

	"backuppower/internal/tco"
)

// The Figure 10 cross-over: with Google-2011 economics, dropping the
// Diesel Generators pays off as long as yearly outage exposure stays under
// about five hours.
func ExampleAnalysis_Crossover() {
	a, err := tco.NewAnalysis(tco.DefaultGoogle2011(), 83.3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("cross-over:", a.Crossover().Round(time.Minute))
	fmt.Println("profitable at 90 min/yr:", a.ProfitableAt(90*time.Minute))
	fmt.Println("profitable at 8 h/yr:  ", a.ProfitableAt(8*time.Hour))
	// Output:
	// cross-over: 4h56m0s
	// profitable at 90 min/yr: true
	// profitable at 8 h/yr:   false
}
