package technique

import (
	"time"

	"backuppower/internal/migration"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// Catalog returns the canonical technique instances evaluated in Section 6,
// in presentation order. Throttling appears at its lightest and deepest
// DVFS states — the (min,max) bars of Figures 6-9.
func Catalog(env Env) []Technique {
	deepest := len(env.Server.PStates) - 1
	return []Technique{
		Baseline{},
		Throttling{PState: 1},
		Throttling{PState: deepest},
		Migration{},
		Migration{Proactive: true},
		Sleep{},
		Sleep{LowPower: true},
		Hibernate{},
		Hibernate{LowPower: true},
		Hibernate{Proactive: true},
		ThrottleThenSave{PState: deepest, Save: SaveSleep},
		ThrottleThenSave{PState: deepest, Save: SaveHibernate},
		MigrationThenSleep{},
	}
}

// OperationalPhases is one row of the paper's Table 4: what a technique
// does in each of the four operational phases.
type OperationalPhases struct {
	Technique     string
	Normal        string
	OutageStart   string
	DuringOutage  string
	AfterRestored string
}

// Table4 reproduces the paper's Table 4 verbatim.
func Table4() []OperationalPhases {
	return []OperationalPhases{
		{"MaxPerf", "Full service", "Full service", "Full service", "Full service"},
		{"MinCost", "Full service", "Server/App crash", "No service", "Server/App Restart"},
		{"Throttling", "Full service", "Throttled Perf.", "Throttled Perf.", "Restore full service"},
		{"Migration", "Full service", "Migrate to remote memory", "Consolidated service", "Migrate back"},
		{"Proactive Migration", "Periodic dirty-state flush to remote memory", "Migrate remaining dirty state to remote memory", "Consolidated service", "Migrate back to full service"},
		{"Sleep", "Full service", "Suspend to local memory", "No service", "Resume from memory"},
		{"Hibernation", "Full service", "Persist to local storage", "No service", "Resume from disk"},
		{"Proactive Hibernation", "Periodic dirty-state flush to local storage", "Persist remaining dirty state to local storage", "No service", "Resume from disk"},
	}
}

// Impact is one row of the paper's Table 5: how fast a technique takes
// effect and what the power draw is after activation.
type Impact struct {
	Technique    string
	TimeToEffect time.Duration
	// PowerAfter is the per-server draw once the technique is active (for
	// "throttled/consolidated state" rows, the computed model value).
	PowerAfter  units.Watts
	Description string
}

// Table5 computes the Table 5 rows from the models for the given
// environment and workload.
func Table5(env Env, w workload.Spec) []Impact {
	deepest := env.Server.DeepestPState()
	throttled := env.Server.ActivePower(w.Utilization, deepest, 1)
	live := migration.Live(env.Mig, w, 1)
	pro := migration.Proactive(env.Mig, w, 1)
	// Consolidated per-original-server power: survivors run hot, sources
	// are off — on average half a hot server per original server.
	consol := env.Server.ActivePower(units.Clamp01(w.Utilization*2), env.Server.PStates[0], 1) / 2
	return []Impact{
		{"Throttling", env.Server.ThrottleLatency, throttled, "throttled state"},
		{"Migration", live.Duration, consol, "consolidated state"},
		{"Proactive Migration", pro.Duration, consol, "consolidated state"},
		{"Sleep", env.Server.TransitionToSleep, env.Server.SleepPower(), "2-4W per DIMM"},
		{"Hibernation", Hibernate{}.SaveTime(env, w), 0, "0 Watts"},
		{"Proactive Hibernation", Hibernate{Proactive: true}.SaveTime(env, w), 0, "0 Watts"},
	}
}

// HybridRow is one row of the paper's Table 6.
type HybridRow struct {
	Technique string
	During    string
}

// Table6 reproduces the paper's Table 6.
func Table6() []HybridRow {
	return []HybridRow{
		{"Sleep-L", "Throttle while going to sleep"},
		{"Hibernate-L", "Throttle while going to hibernate"},
		{"Throttle+Sleep-L", "Throttle + throttle while going to sleep"},
		{"Throttle+Hibernate", "Throttle + throttle while going to hibernate"},
		{"Migration+Sleep-L", "Migrate + throttle while going to sleep"},
	}
}

// SaveResume is one row of the paper's Table 8: measured save/resume times
// and normalized save power for SPECjbb under the save-state techniques.
type SaveResume struct {
	Technique string
	SaveTime  time.Duration
	Resume    time.Duration
	PeakNorm  float64 // save power normalized to server peak
}

// Table8 computes the Table 8 rows from the models.
func Table8(env Env, w workload.Spec) []SaveResume {
	peak := float64(env.Server.PeakW) * float64(env.Servers)
	norm := func(p Plan) float64 { return float64(p.Phases[0].Power) / peak }

	sleep := Sleep{}.Plan(env, w, time.Hour)
	sleepL := Sleep{LowPower: true}.Plan(env, w, time.Hour)
	hib := Hibernate{}
	hibL := Hibernate{LowPower: true}
	proHib := Hibernate{Proactive: true}

	return []SaveResume{
		{"Sleep", sleep.Phases[0].Dur, env.Server.ResumeFromSleep, norm(sleep)},
		{"Hibernate", hib.SaveTime(env, w), hib.ResumeTime(env, w), norm(hib.Plan(env, w, time.Hour))},
		{"Proactive Hibernate", proHib.SaveTime(env, w), proHib.ResumeTime(env, w), norm(proHib.Plan(env, w, time.Hour))},
		{"Sleep-L", sleepL.Phases[0].Dur, env.Server.ResumeFromSleep, norm(sleepL)},
		{"Hibernate-L", hibL.SaveTime(env, w), hibL.ResumeTime(env, w), norm(hibL.Plan(env, w, time.Hour))},
	}
}
