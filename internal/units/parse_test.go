package units

import (
	"testing"
	"time"
)

func TestParsePower(t *testing.T) {
	good := []struct {
		in   string
		want Watts
	}{
		{"250", 250},
		{"250W", 250},
		{"250 w", 250},
		{"  120 kW ", 120 * Kilowatt},
		{"1.5MW", 1.5 * Megawatt},
		{"0.25mw", 0.25 * Megawatt},
		{"2GW", 2e9},
		{"0", 0},
		{"1e3W", 1000},
	}
	for _, c := range good {
		got, err := ParsePower(c.in)
		if err != nil {
			t.Errorf("ParsePower(%q): unexpected error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePower(%q) = %v, want %v", c.in, got, c.want)
		}
	}

	bad := []string{
		"", "   ", "W", "kW", "-5W", "-0.1", "NaN", "nanW", "Inf", "+InfW",
		"five watts", "5 horsepower", "5kWh", "1e400", "1e400W", "1eW",
		"5W5", "5..0W",
	}
	for _, in := range bad {
		if got, err := ParsePower(in); err == nil {
			t.Errorf("ParsePower(%q) = %v, want error", in, got)
		}
	}
}

func TestParseDuration(t *testing.T) {
	good := []struct {
		in   string
		want time.Duration
	}{
		{"30m", 30 * time.Minute},
		{"30 min", 30 * time.Minute},
		{"30mins", 30 * time.Minute},
		{"1h30m", 90 * time.Minute},
		{"1 hr 30 min", 90 * time.Minute},
		{"2 hours", 2 * time.Hour},
		{"90s", 90 * time.Second},
		{"45 sec", 45 * time.Second},
		{"500ms", 500 * time.Millisecond},
		{"1.5H", 90 * time.Minute},
		{"0s", 0},
	}
	for _, c := range good {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): unexpected error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}

	bad := []string{"", "  ", "30", "m", "five minutes", "1d", "30x", "1h30"}
	for _, in := range bad {
		if got, err := ParseDuration(in); err == nil {
			t.Errorf("ParseDuration(%q) = %v, want error", in, got)
		}
	}
}
