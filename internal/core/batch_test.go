package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"backuppower/internal/cost"
	"backuppower/internal/technique"
	"backuppower/internal/workload"
)

// axis16 is the batch tests' hostile outage axis: unsorted, duplicated,
// spanning the registry's full range.
func axis16() []time.Duration {
	return []time.Duration{
		time.Hour, 30 * time.Second, 5 * time.Minute, 30 * time.Second,
		2 * time.Hour, 45 * time.Minute, 10 * time.Minute, 90 * time.Second,
		8 * time.Hour, 3 * time.Hour, 20 * time.Minute, time.Minute,
		6 * time.Hour, 15 * time.Minute, 4 * time.Hour, 5 * time.Minute,
	}
}

// TestEvaluateBatchMatchesEvaluate pins the batch evaluator to the scalar
// one across variants × Table 3 configs × workloads, in both cache
// regimes: evaluated cold (batch populates the memo cache) and then
// re-checked against scalar Evaluate (which must see the seeded entries
// and agree exactly).
func TestEvaluateBatchMatchesEvaluate(t *testing.T) {
	ResetScenarioCache()
	f := New(16)
	outages := axis16()
	checked := 0
	for _, v := range f.variants() {
		for _, w := range workload.All() {
			for _, b := range cost.Table3(f.Env.PeakPower()) {
				got, err := f.EvaluateBatch(b, v.tech, w, outages)
				if err != nil {
					t.Fatalf("%s/%s/%s: batch: %v", v.tech.Name(), w.Name, b.Name, err)
				}
				for i, d := range outages {
					want, err := f.Evaluate(b, v.tech, w, d)
					if err != nil {
						t.Fatalf("%s/%s/%s/%v: scalar: %v", v.tech.Name(), w.Name, b.Name, d, err)
					}
					if got[i] != want {
						t.Errorf("%s/%s/%s/%v: batch diverges from scalar\n got %+v\nwant %+v",
							v.tech.Name(), w.Name, b.Name, d, got[i], want)
					}
					checked++
				}
			}
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d points checked", checked)
	}
}

// TestEvaluateBatchSplitsWarmFromCold drives the partial-warm path
// directly: pre-warm a subset of the axis through scalar Evaluate, then
// batch the full axis and verify results and cache counters — warm points
// must be served as hits without re-simulation, cold points must each be
// one miss.
func TestEvaluateBatchSplitsWarmFromCold(t *testing.T) {
	ResetScenarioCache()
	f := New(16)
	b := cost.LargeEUPS(f.Env.PeakPower())
	tech := technique.Sleep{}
	w := workload.Specjbb()
	outages := []time.Duration{
		10 * time.Minute, 20 * time.Minute, 30 * time.Minute, 40 * time.Minute,
		50 * time.Minute, time.Hour, 70 * time.Minute, 80 * time.Minute,
	}

	// Pre-warm every other point.
	want := make(map[time.Duration]struct{ perf float64 })
	for i := 0; i < len(outages); i += 2 {
		r, err := f.Evaluate(b, tech, w, outages[i])
		if err != nil {
			t.Fatal(err)
		}
		want[outages[i]] = struct{ perf float64 }{r.Perf}
	}
	h0, m0 := ScenarioCacheStats()

	got, err := f.EvaluateBatch(b, tech, w, outages)
	if err != nil {
		t.Fatal(err)
	}
	h1, m1 := ScenarioCacheStats()
	if hits := h1 - h0; hits != 4 {
		t.Errorf("batch over half-warm axis counted %d hits, want 4", hits)
	}
	if misses := m1 - m0; misses != 4 {
		t.Errorf("batch over half-warm axis counted %d misses, want 4", misses)
	}
	for i, d := range outages {
		r, err := f.Evaluate(b, tech, w, d)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != r {
			t.Errorf("outage %v: batch %+v != scalar %+v", d, got[i], r)
		}
	}

	// A fully warm axis is all hits, no walk.
	h0, m0 = ScenarioCacheStats()
	if _, err := f.EvaluateBatch(b, tech, w, outages); err != nil {
		t.Fatal(err)
	}
	h1, m1 = ScenarioCacheStats()
	if h1-h0 != 8 || m1-m0 != 0 {
		t.Errorf("fully warm batch counted %d hits / %d misses, want 8 / 0", h1-h0, m1-m0)
	}
}

// TestMinCostUPSAxisMatchesScalar pins the warm-started axis sizing to
// per-point MinCostUPSCtx across the variant set and two axis orderings —
// the warm-start probe may only short-circuit when it provably lands on
// the cold bracket's argmin, so every field of every operating point must
// match exactly.
func TestMinCostUPSAxisMatchesScalar(t *testing.T) {
	f := New(16)
	ctx := context.Background()
	outages := []time.Duration{
		30 * time.Second, 2 * time.Minute, 5 * time.Minute, 15 * time.Minute,
		30 * time.Minute, time.Hour, 2 * time.Hour, 4 * time.Hour,
	}
	reversed := make([]time.Duration, len(outages))
	for i, d := range outages {
		reversed[len(outages)-1-i] = d
	}
	for _, w := range workload.All() {
		for _, v := range f.variants() {
			for _, axis := range [][]time.Duration{outages, reversed} {
				got, err := f.MinCostUPSAxisCtx(ctx, v.tech, w, axis)
				if err != nil {
					t.Fatalf("%s/%s: axis sizing: %v", v.tech.Name(), w.Name, err)
				}
				for i, d := range axis {
					op, ok, err := f.MinCostUPSCtx(ctx, v.tech, w, d)
					if err != nil {
						t.Fatalf("%s/%s/%v: scalar sizing: %v", v.tech.Name(), w.Name, d, err)
					}
					if got[i].Feasible != ok {
						t.Errorf("%s/%s/%v: axis feasible=%v, scalar=%v", v.tech.Name(), w.Name, d, got[i].Feasible, ok)
						continue
					}
					if !ok {
						continue
					}
					if got[i].Op.Backup != op.Backup || got[i].Op.Result != op.Result ||
						got[i].Op.NormCost != op.NormCost || got[i].Op.Technique != op.Technique {
						t.Errorf("%s/%s/%v: axis sizing diverges\n got %+v\nwant %+v",
							v.tech.Name(), w.Name, d, got[i].Op, op)
					}
				}
			}
		}
	}
}

// TestBestForConfigAxisMatchesScalar pins the axis-batched Figure 5 race
// to per-point BestForConfigCtx: same winner (down to the concrete
// technique value) and same result at every outage for every Table 3
// configuration.
func TestBestForConfigAxisMatchesScalar(t *testing.T) {
	f := New(16)
	ctx := context.Background()
	outages := []time.Duration{30 * time.Second, 5 * time.Minute, 30 * time.Minute, time.Hour, 2 * time.Hour}
	for _, b := range cost.Table3(f.Env.PeakPower()) {
		for _, w := range workload.All() {
			got, err := f.BestForConfigAxisCtx(ctx, b, w, outages)
			if err != nil {
				t.Fatalf("%s/%s: axis race: %v", b.Name, w.Name, err)
			}
			for i, d := range outages {
				res, tech, err := f.BestForConfigCtx(ctx, b, w, d)
				if err != nil {
					t.Fatalf("%s/%s/%v: scalar race: %v", b.Name, w.Name, d, err)
				}
				if got[i].Result != res || !reflect.DeepEqual(got[i].Tech, tech) {
					t.Errorf("%s/%s/%v: axis race diverges\n got (%+v, %#v)\nwant (%+v, %#v)",
						b.Name, w.Name, d, got[i].Result, got[i].Tech, res, tech)
				}
			}
		}
	}
}
