// Package loadgen replays a request-shaped function at controlled
// concurrency and rate, and summarizes the observed latency distribution
// into the tail quantiles (p50/p99/p999), throughput, and error-rate
// verdicts the repo's SLO gates check. It is the measurement half of
// cmd/vulture — deliberately free of HTTP so the same harness can drive
// in-process targets in tests — and the first consumer of the numbers is
// BENCH_PR8.json.
package loadgen

import (
	"context"
	"math"
	"sync"
	"time"
)

// Limiter is a token bucket: Wait blocks until a token is available,
// admitting on average rate requests per second with bursts up to the
// bucket depth. A nil limiter or a non-positive rate admits immediately,
// so "no rate limit" needs no special casing at call sites.
type Limiter struct {
	rate  float64 // tokens added per second
	burst float64 // bucket depth

	mu     sync.Mutex
	tokens float64
	last   time.Time

	// Clock seams: tests drive the bucket arithmetic deterministically
	// by injecting a fake clock; production uses the real one.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// NewLimiter returns a limiter admitting rate requests per second with
// the given burst depth (minimum 1). rate <= 0 means unlimited.
func NewLimiter(rate float64, burst int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	l := &Limiter{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
		sleep:  sleepCtx,
	}
	return l
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Wait blocks until a token is available or the context ends. It is safe
// for concurrent use; waiters are admitted as tokens refill, each paying
// only its own shortfall.
func (l *Limiter) Wait(ctx context.Context) error {
	if l == nil || l.rate <= 0 {
		return ctx.Err()
	}
	l.mu.Lock()
	now := l.now()
	if !l.last.IsZero() {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	if l.tokens >= 1 {
		l.tokens--
		l.mu.Unlock()
		return nil
	}
	// Reserve the shortfall: take the token debt now, so concurrent
	// waiters queue behind this one instead of all waking at once, then
	// sleep it off.
	shortfall := 1 - l.tokens
	l.tokens--
	l.mu.Unlock()
	wait := time.Duration(math.Ceil(shortfall / l.rate * float64(time.Second)))
	if err := l.sleep(ctx, wait); err != nil {
		// Return the unused reservation so an aborted waiter does not
		// slow the survivors.
		l.mu.Lock()
		l.tokens++
		l.mu.Unlock()
		return err
	}
	return nil
}
