// Command vulture is the continuous verification and load harness: it
// generates seeded-random valid grid specs (grid.RandomSpec), submits
// them to a live backupd or sweepfront over HTTP, and cross-checks every
// NDJSON response three ways —
//
//  1. byte equality against a local in-process grid.Runner evaluation
//     (cold run, plus a warm repeat that must reproduce the cold bytes),
//  2. the metamorphic invariants (perf is a fraction; perf monotone in
//     the outage for UPS-only monotone-trajectory rows; sizing cost
//     monotone and feasibility antitone in the outage),
//  3. /metrics deltas consistent with the warm/cold split (backupd: a
//     warm repeat adds no cache misses and serves the cold run's events
//     as hits; sweepfront: each run merges exactly the plan's rows).
//
// With -store-dir the harness attaches a persistent result store to the
// loopback target and extends the checks end to end: the warm repeat of
// a fully stored plan must add zero store recomputes and at least one
// store hit per row, and GET /v1/results coordinate queries must read
// back a sample of the just-streamed rows byte-for-byte
// (read-your-writes over the store's query surface).
//
// After verification it replays the verified specs at controlled
// concurrency through a token-bucket rate limiter (internal/loadgen),
// byte-checking every response under load, and reports p50/p99/p999
// latency, throughput, and an error-budget verdict. Any check or SLO
// violation exits non-zero, so `make vulture-smoke` is an end-to-end
// regression gate.
//
//	# deterministic smoke against one in-process worker
//	vulture -loopback 1 -seed 7 -specs 6 -load-requests 32
//
//	# three loopback workers behind an in-process sweepfront coordinator
//	vulture -loopback 3 -seed 7 -specs 4
//
//	# soak a live deployment for an hour at 50 req/s
//	vulture -target http://backupd:8080 -servers 64 -duration 1h -rate 50
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/fabric"
	"backuppower/internal/grid"
	"backuppower/internal/loadgen"
	"backuppower/internal/resultstore"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vulture", flag.ContinueOnError)
	fs.SetOutput(stderr)

	target := fs.String("target", "", "base URL of a live backupd or sweepfront (/v1/sweep + /metrics)")
	loopback := fs.Int("loopback", 0, "run against N in-process workers instead of -target (1 = single backupd, >1 = sweepfront over N workers)")
	servers := fs.Int("servers", 8, "default cluster size for specs without a servers axis (must match the target's)")
	seed := fs.Int64("seed", 1, "random-spec generator seed (a run is a pure function of it)")
	specs := fs.Int("specs", 8, "number of random specs to verify")
	duration := fs.Duration("duration", 0, "soak mode: keep verifying new specs until this elapses (overrides -specs)")
	loadRequests := fs.Int("load-requests", 0, "load phase: replay verified specs this many times (0 = skip the load phase)")
	concurrency := fs.Int("concurrency", 4, "load-phase worker count")
	rate := fs.Float64("rate", 0, "load-phase request rate cap, req/s across all workers (0 = unlimited)")
	burst := fs.Int("burst", 1, "load-phase token bucket depth")
	sloP50 := fs.Duration("slo-p50", 0, "fail if load-phase p50 latency exceeds this (0 = ungated)")
	sloP99 := fs.Duration("slo-p99", 0, "fail if load-phase p99 latency exceeds this (0 = ungated)")
	sloP999 := fs.Duration("slo-p999", 0, "fail if load-phase p999 latency exceeds this (0 = ungated)")
	maxErrorRate := fs.Float64("max-error-rate", 0, "fail if the load-phase error rate exceeds this (0 = no errors allowed, negative = ungated)")
	requestTimeout := fs.Duration("request-timeout", 60*time.Second, "per-request deadline for verification and load requests")
	noMetricsCheck := fs.Bool("no-metrics-check", false, "skip the /metrics delta check (required when other traffic shares the target)")
	storeDir := fs.String("store-dir", "",
		"attach a persistent result store to the -loopback target (adds store-delta and /v1/results read-your-writes checks)")
	verbose := fs.Bool("v", false, "log each verified spec")

	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*target == "") == (*loopback == 0) {
		fmt.Fprintln(stderr, "vulture: give exactly one of -target or -loopback")
		return 2
	}
	if *storeDir != "" && *loopback == 0 {
		fmt.Fprintln(stderr, "vulture: -store-dir requires -loopback (point a stored -target at its own -store-dir instead)")
		return 2
	}
	if *specs < 1 && *duration <= 0 {
		fmt.Fprintln(stderr, "vulture: -specs must be >= 1 (or use -duration)")
		return 2
	}

	var store resultstore.Store
	if *storeDir != "" {
		disk, err := resultstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(stderr, "vulture: -store-dir: %v\n", err)
			return 1
		}
		store = disk
		// The loopback workers are in-process, so attaching the store to
		// the process globals covers them and the checker's local runner
		// alike — every pathway the harness compares reads and writes the
		// same store.
		core.SetResultStore(store)
		grid.SetRowStore(store)
		defer func() {
			grid.SetRowStore(nil)
			core.SetResultStore(nil)
			store.Close()
		}()
	}

	base := *target
	if *loopback > 0 {
		url, cleanup, err := startLoopback(*loopback, *servers, *concurrency, store)
		if err != nil {
			fmt.Fprintf(stderr, "vulture: %v\n", err)
			return 1
		}
		defer cleanup()
		base = url
	}

	logf := func(format string, args ...any) {
		if *verbose {
			fmt.Fprintf(stderr, "vulture: "+format+"\n", args...)
		}
	}
	c := newChecker(base, *servers, *requestTimeout, !*noMetricsCheck, logf)
	fmt.Fprintf(stdout, "vulture: target %s (%s), seed %d, default servers %d\n", base, c.kind, *seed, *servers)
	if !c.metricsCheck {
		fmt.Fprintln(stdout, "vulture: metrics-delta check disabled")
	}

	// Verification phase: every generated spec must pass all checks.
	// Failures are reported and counted, not fatal — one bad spec should
	// not hide others in the same run.
	ctx := context.Background()
	rng := rand.New(rand.NewSource(*seed))
	bounds := grid.DefaultBounds()
	start := time.Now()
	var verified []verifiedSpec
	checked, failed, totalRows := 0, 0, 0
	for i := 0; ; i++ {
		if *duration > 0 {
			if time.Since(start) >= *duration {
				break
			}
		} else if i >= *specs {
			break
		}
		spec := grid.RandomSpec(rng, bounds)
		vs, err := c.checkSpec(ctx, spec)
		checked++
		totalRows += vs.rows
		if err != nil {
			failed++
			specJSON, _ := jsonOneLine(spec)
			fmt.Fprintf(stderr, "vulture: spec %d (seed %d): %v\n  spec: %s\n", i, *seed, err, specJSON)
			continue
		}
		logf("spec %d ok: %d rows, %d response bytes", i, vs.rows, len(vs.expected))
		verified = append(verified, vs)
	}
	fmt.Fprintf(stdout, "vulture: verified %d/%d specs (%d rows) in %v: byte-equality, metamorphic, metrics checks\n",
		checked-failed, checked, totalRows, time.Since(start).Round(time.Millisecond))

	exit := 0
	if failed > 0 {
		fmt.Fprintf(stderr, "vulture: %d of %d specs failed verification\n", failed, checked)
		exit = 1
	}

	// Load phase: replay the verified specs round-robin, byte-checking
	// every response — continuous verification under load — and gate the
	// latency tail and error budget.
	if *loadRequests > 0 && len(verified) > 0 {
		var mismatches atomic.Int64
		rep, err := loadgen.Run(ctx, loadgen.Config{
			Requests:    *loadRequests,
			Concurrency: *concurrency,
			Rate:        *rate,
			Burst:       *burst,
		}, func(ctx context.Context, seq int) error {
			vs := verified[seq%len(verified)]
			body, err := c.postSweep(ctx, vs.reqBody)
			if err != nil {
				return err
			}
			if derr := firstDiff(body, vs.expected, "load response", "verified bytes"); derr != nil {
				mismatches.Add(1)
				return derr
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(stderr, "vulture: load phase: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "vulture: load %d requests x %d workers: p50 %v p99 %v p999 %v max %v, %.1f req/s, %d errors\n",
			rep.Requests, *concurrency, rep.P50, rep.P99, rep.P999, rep.Max, rep.Throughput, rep.Errors)
		if n := mismatches.Load(); n > 0 {
			fmt.Fprintf(stderr, "vulture: %d load responses diverged from the verified bytes\n", n)
			exit = 1
		}
		slo := loadgen.SLO{P50: *sloP50, P99: *sloP99, P999: *sloP999, MaxErrorRate: *maxErrorRate}
		if violations := slo.Check(rep); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(stderr, "vulture: SLO violation: %s\n", v)
			}
			exit = 1
		} else {
			fmt.Fprintln(stdout, "vulture: SLO ok")
		}
	} else if *loadRequests > 0 {
		fmt.Fprintln(stderr, "vulture: load phase skipped: no spec survived verification")
		exit = 1
	}
	return exit
}

// startLoopback builds an in-process target: one backupd worker targeted
// directly (n == 1), or n workers behind an in-process sweepfront
// coordinator serving fabric.Handler on an ephemeral loopback port. Both
// speak real HTTP over real sockets, so the harness exercises the exact
// serving path a deployment would.
func startLoopback(n, servers, concurrency int, store resultstore.Store) (string, func(), error) {
	inflight := 4 * concurrency
	if inflight < 64 {
		inflight = 64 // headroom so the load phase never trips 429s
	}
	urls, stopWorkers, err := fabric.Loopback(n, fabric.LoopbackConfig{
		Servers:     servers,
		MaxInflight: inflight,
		Store:       store,
	})
	if err != nil {
		return "", nil, err
	}
	if n == 1 {
		return urls[0], stopWorkers, nil
	}
	f, err := fabric.New(fabric.Options{Workers: urls, DefaultServers: servers, Store: store})
	if err != nil {
		stopWorkers()
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stopWorkers()
		return "", nil, err
	}
	srv := &http.Server{Handler: f.Handler()}
	go srv.Serve(ln)
	cleanup := func() {
		srv.Close()
		stopWorkers()
	}
	return "http://" + ln.Addr().String(), cleanup, nil
}

func jsonOneLine(v any) (string, error) {
	b, err := json.Marshal(v)
	return string(b), err
}
