package grid

import (
	"context"
	"errors"
	"sync"

	"backuppower/internal/cluster"
	"backuppower/internal/core"
	"backuppower/internal/sweep"
	"backuppower/internal/technique"
)

// DefaultShardSize is the number of rows evaluated (in parallel) per
// emitted shard when RunOptions does not say otherwise. Shards batch
// emission only — they never change row values or order — so the size is
// purely a latency/throughput knob for streaming consumers.
const DefaultShardSize = 64

// Runner executes compiled plans against a framework, instantiating
// sibling frameworks for cluster sizes the base does not cover (same
// battery chemistry, testbed scaled to the row's server count). All rows
// evaluate through core's process-global scenario memo cache, so a grid
// that revisits a scenario — or two grids that overlap — simulate it once.
type Runner struct {
	base *core.Framework

	mu      sync.Mutex
	derived map[int]*core.Framework
}

// NewRunner returns a runner over the given base framework.
func NewRunner(base *core.Framework) *Runner {
	return &Runner{base: base, derived: map[int]*core.Framework{}}
}

// framework returns the framework for an n-server row: the base when it
// already has that scale, else a memoized sibling sharing its battery.
func (r *Runner) framework(n int) *core.Framework {
	if r.base.Env.Servers == n {
		return r.base
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.derived[n]; ok {
		return f
	}
	f := &core.Framework{Env: technique.DefaultEnv(n), Battery: r.base.Battery}
	r.derived[n] = f
	return f
}

// RowResult is one evaluated plan row. Exactly one payload group is
// meaningful, selected by the plan's op: evaluate fills Result; size
// fills Feasible and (when feasible) Sizing; best fills Best and Result.
// Err records a row-level evaluation failure (the sweep continues);
// cancellation and deadline expiry abort the whole run instead.
type RowResult struct {
	Point    Point
	Result   cluster.Result
	Feasible bool
	Sizing   core.OperatingPoint
	Best     string
	Err      error
}

// Progress reports shard completion during a streaming run.
type Progress struct {
	Shard    int // shards completed so far
	Shards   int // total shards in the plan
	RowsDone int // rows completed so far
	Rows     int // total rows in the plan
}

// RunOptions parameterize a run.
type RunOptions struct {
	// ShardSize is the emission batch size (default DefaultShardSize).
	// Any value yields identical rows in identical order.
	ShardSize int

	// Progress, when set, is called after each shard completes, from the
	// emitting goroutine, before the shard's rows are emitted.
	Progress func(Progress)
}

// RunStream evaluates the plan's rows in order, fanning each shard out
// through the sweep engine (pool width from sweep.WithWidth on ctx), and
// calls emit for every row as its shard completes. Rows and their order
// are invariant under pool width and shard size. An emit error or a
// context cancellation/deadline stops the remaining shards; row-level
// evaluation failures are reported in RowResult.Err and do not stop the
// sweep.
func (r *Runner) RunStream(ctx context.Context, plan *Plan, opts RunOptions, emit func(RowResult) error) error {
	size := opts.ShardSize
	if size <= 0 {
		size = DefaultShardSize
	}
	shards := 0
	if n := len(plan.Points); n > 0 {
		if size > n {
			size = n
		}
		shards = (n + size - 1) / size
	}
	done := 0
	return sweep.MapChunked(ctx, plan.Points, size,
		func(ctx context.Context, p Point) (RowResult, error) {
			return r.evalPoint(ctx, plan.Op, p)
		},
		func(start int, rows []RowResult) error {
			done++
			if opts.Progress != nil {
				opts.Progress(Progress{
					Shard:    done,
					Shards:   shards,
					RowsDone: start + len(rows),
					Rows:     len(plan.Points),
				})
			}
			for _, row := range rows {
				if err := emit(row); err != nil {
					return err
				}
			}
			return nil
		})
}

// Run is RunStream collecting every row.
func (r *Runner) Run(ctx context.Context, plan *Plan, opts RunOptions) ([]RowResult, error) {
	rows := make([]RowResult, 0, len(plan.Points))
	err := r.RunStream(ctx, plan, opts, func(row RowResult) error {
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// evalPoint dispatches one row to its framework call. Context errors
// propagate (aborting the run); anything else becomes a row-level Err.
func (r *Runner) evalPoint(ctx context.Context, op string, p Point) (RowResult, error) {
	fw := r.framework(p.Servers)
	row := RowResult{Point: p}
	var err error
	switch op {
	case OpSize:
		row.Sizing, row.Feasible, err = fw.MinCostUPSCtx(ctx, p.Technique, p.Workload, p.Outage)
	case OpBest:
		var tech technique.Technique
		row.Result, tech, err = fw.BestForConfigCtx(ctx, p.Config, p.Workload, p.Outage)
		if tech != nil {
			row.Best = tech.Name()
		}
	default: // OpEvaluate
		row.Result, err = fw.EvaluateCtx(ctx, p.Config, p.Technique, p.Workload, p.Outage)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return RowResult{}, err
		}
		row.Err = err
	}
	return row, nil
}
