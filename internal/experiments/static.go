package experiments

import (
	"context"
	"fmt"
	"time"

	"backuppower/internal/battery"
	"backuppower/internal/cost"
	"backuppower/internal/outage"
	"backuppower/internal/report"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// Fig1 reproduces the outage frequency and duration histograms.
func Fig1(context.Context) report.Table {
	t := report.Table{
		Title:   "Figure 1: power outage distributions for US businesses",
		Columns: []string{"histogram", "bucket", "share"},
	}
	for _, b := range outage.FrequencyDistribution() {
		label := fmt.Sprintf("%d to %d", b.Lo, b.Hi)
		switch {
		case b.Lo == 0 && b.Hi == 0:
			label = "none"
		case b.Hi >= 12:
			label = fmt.Sprintf("%d+", b.Lo)
		}
		t.AddRow("outages/year", label, pct(b.Prob))
	}
	for _, b := range outage.DurationDistribution().Buckets {
		t.AddRow("duration", fmt.Sprintf("%s to %s",
			report.FormatDuration(b.Lo), report.FormatDuration(b.Hi)), pct(b.Prob))
	}
	d := outage.DurationDistribution()
	t.Notes = append(t.Notes,
		fmt.Sprintf("%.0f%% of outages are under 5 minutes (paper: over 58%%)", d.CDF(5*time.Minute)*100),
		fmt.Sprintf("%.0f%% are under 40 minutes (the NoDG coverage headline)", d.CDF(40*time.Minute)*100))
	return t
}

// Fig3 reproduces the battery runtime chart for the 4 KW APC pack.
func Fig3(context.Context) report.Table {
	t := report.Table{
		Title:   "Figure 3: runtime for a battery with max power of 4 KW",
		Columns: []string{"load", "watts", "runtime", "energy delivered"},
	}
	pack := battery.NewPack(battery.LeadAcid(), 4*units.Kilowatt, 10*time.Minute)
	for _, frac := range []float64{0.10, 0.25, 0.50, 0.75, 1.00} {
		load := units.Watts(frac * 4000)
		t.AddRow(pct(frac), load, pack.RuntimeAt(load), pack.EffectiveEnergyAt(load))
	}
	t.Notes = append(t.Notes,
		"paper anchors: 60 min at 25% load (1 KWh), 10 min at 100% (0.66 KWh)")
	return t
}

// Table1 prints the cost-model parameters.
func Table1(context.Context) report.Table {
	t := report.Table{
		Title:   "Table 1: DG and UPS cost estimation parameters",
		Columns: []string{"parameter", "value"},
	}
	la := battery.LeadAcid()
	t.AddRow("DGPowerCost", "$83.3/KW/year")
	t.AddRow("UPSPowerCost", fmt.Sprintf("$%.0f/KW/year", la.PowerCostPerKWYear))
	t.AddRow("UPSEnergyCost", fmt.Sprintf("$%.0f/KWh/year", la.EnergyCostPerKWhYear))
	t.AddRow("FreeRunTime", la.FreeRunTime)
	t.Notes = append(t.Notes, "DG and UPS electronics depreciated over 12 years; batteries over 4")
	return t
}

// Table2 reproduces the backup cost table for three capacity points.
func Table2(context.Context) report.Table {
	t := report.Table{
		Title:   "Table 2: amortized annual backup cost",
		Columns: []string{"peak power", "UPS runtime", "DG cost", "UPS cost", "total"},
	}
	rows := []struct {
		peak    units.Watts
		runtime time.Duration
	}{
		{units.Megawatt, 2 * time.Minute},
		{10 * units.Megawatt, 2 * time.Minute},
		{10 * units.Megawatt, 42 * time.Minute},
	}
	for _, r := range rows {
		b := cost.Custom("row", r.peak, r.peak, r.runtime)
		t.AddRow(r.peak, r.runtime, b.DG.AnnualCost(), b.UPS.AnnualCost(), b.AnnualCost())
	}
	t.Notes = append(t.Notes, "paper: 0.13M / 1.34M / 1.66M $/year respectively")
	return t
}

// Table3 reproduces the named configurations and their normalized costs.
func Table3(context.Context) report.Table {
	t := report.Table{
		Title:   "Table 3: underprovisioning configurations",
		Columns: []string{"configuration", "DG power", "UPS power", "UPS energy", "normalized cost"},
	}
	peak := units.Megawatt
	for _, b := range cost.Table3(peak) {
		dgFrac := float64(b.DG.PowerCapacity) / float64(peak)
		upsFrac := float64(b.UPS.PowerCapacity) / float64(peak)
		t.AddRow(b.Name, fmt.Sprintf("%.1f", dgFrac), fmt.Sprintf("%.1f", upsFrac),
			b.UPS.Runtime, b.NormalizedCost(peak))
	}
	return t
}

// Table4 reproduces the operational-phase table.
func Table4(context.Context) report.Table {
	t := report.Table{
		Title:   "Table 4: performance and availability implications",
		Columns: []string{"technique", "normal", "outage start", "during outage", "after restored"},
	}
	for _, r := range technique.Table4() {
		t.AddRow(r.Technique, r.Normal, r.OutageStart, r.DuringOutage, r.AfterRestored)
	}
	return t
}

// Table5 reproduces the technique-impact table (computed from the models).
func Table5(context.Context) report.Table {
	t := report.Table{
		Title:   "Table 5: impact of system techniques on backup capacity",
		Columns: []string{"technique", "time to take effect", "power after activation"},
	}
	env := technique.DefaultEnv(DefaultServers)
	for _, r := range technique.Table5(env, workload.Specjbb()) {
		t.AddRow(r.Technique, r.TimeToEffect, fmt.Sprintf("%v (%s)", r.PowerAfter, r.Description))
	}
	return t
}

// Table6 reproduces the hybrid-technique table.
func Table6(context.Context) report.Table {
	t := report.Table{
		Title:   "Table 6: hybrid sustain-execution + save-state techniques",
		Columns: []string{"technique", "during power failure"},
	}
	for _, r := range technique.Table6() {
		t.AddRow(r.Technique, r.During)
	}
	return t
}

// Table8 reproduces the SPECjbb save/resume measurements.
func Table8(context.Context) report.Table {
	t := report.Table{
		Title:   "Table 8: time to save and resume SPECjbb state",
		Columns: []string{"technique", "save time", "resume time", "save power (norm.)"},
	}
	env := technique.DefaultEnv(DefaultServers)
	for _, r := range technique.Table8(env, workload.Specjbb()) {
		// The paper prints these in seconds.
		t.AddRow(r.Technique,
			fmt.Sprintf("%.0fs", r.SaveTime.Seconds()),
			fmt.Sprintf("%.0fs", r.Resume.Seconds()),
			r.PeakNorm)
	}
	t.Notes = append(t.Notes,
		"paper: Sleep 6/8s; Hibernate 230/157s; Proactive 179/157s; Sleep-L 8/8s; Hibernate-L 385/175s")
	return t
}
