// Package loadprofile models time-varying datacenter utilization. Backup
// underprovisioning interacts with load: an outage at the daily trough is
// far easier to ride than one at peak, so yearly availability analyses and
// capacity planning (Section 7's "capacity planning could depend on
// historic data") should weight outages by when they land.
package loadprofile

import (
	"fmt"
	"math"
	"time"

	"backuppower/internal/units"
)

// Profile yields a utilization multiplier for a moment in time (expressed
// as an offset into the year, matching outage.Event.Start).
type Profile interface {
	// At returns the relative load in (0, 1] at the given offset.
	At(t time.Duration) float64
}

// Flat is a constant profile (the paper's implicit assumption: all
// experiments run at steady near-peak load).
type Flat struct{ Level float64 }

// At implements Profile.
func (f Flat) At(time.Duration) float64 {
	if f.Level <= 0 || f.Level > 1 {
		return 1
	}
	return f.Level
}

// Diurnal is the classic interactive-service daily wave with a weekly dip:
// a sinusoid between Trough and Peak with its maximum at PeakHour, scaled
// by WeekendFactor on days 6 and 7.
type Diurnal struct {
	Trough, Peak  float64
	PeakHour      float64 // local hour of daily maximum (0-24)
	WeekendFactor float64 // multiplier applied on weekends (0 < f <= 1)
}

// Typical is a representative interactive-service profile: 45% trough,
// 100% peak at 14:00, 85% weekend load.
func Typical() Diurnal {
	return Diurnal{Trough: 0.45, Peak: 1.0, PeakHour: 14, WeekendFactor: 0.85}
}

// Validate checks the shape.
func (d Diurnal) Validate() error {
	switch {
	case d.Trough <= 0 || d.Trough > d.Peak:
		return fmt.Errorf("loadprofile: trough %v out of (0, peak]", d.Trough)
	case d.Peak > 1:
		return fmt.Errorf("loadprofile: peak %v > 1", d.Peak)
	case d.PeakHour < 0 || d.PeakHour >= 24:
		return fmt.Errorf("loadprofile: peak hour %v out of [0,24)", d.PeakHour)
	case d.WeekendFactor <= 0 || d.WeekendFactor > 1:
		return fmt.Errorf("loadprofile: weekend factor %v out of (0,1]", d.WeekendFactor)
	}
	return nil
}

// At implements Profile.
func (d Diurnal) At(t time.Duration) float64 {
	hours := t.Hours()
	hourOfDay := math.Mod(hours, 24)
	mid := (d.Peak + d.Trough) / 2
	amp := (d.Peak - d.Trough) / 2
	phase := (hourOfDay - d.PeakHour) / 24 * 2 * math.Pi
	v := mid + amp*math.Cos(phase)
	day := int(hours/24) % 7
	if day >= 5 { // days 5,6 of each week are the weekend
		v *= d.WeekendFactor
	}
	return units.Clamp01(v)
}

// Scale applies the profile at time t to a base utilization, clamped to
// (0, 1].
func Scale(p Profile, t time.Duration, base float64) float64 {
	if p == nil {
		return base
	}
	v := base * p.At(t) / maxOf(p)
	if v <= 0 {
		return base
	}
	return units.Clamp01(v)
}

// maxOf samples the profile over a week to normalize Scale so that the
// profile's own maximum maps to the base utilization.
func maxOf(p Profile) float64 {
	max := 0.0
	for h := 0; h < 24*7; h++ {
		if v := p.At(time.Duration(h) * time.Hour); v > max {
			max = v
		}
	}
	if max <= 0 {
		return 1
	}
	return max
}

// Stats summarizes a profile over a week.
type Stats struct {
	Min, Mean, Max float64
}

// Summarize samples the profile at 15-minute resolution for a week.
func Summarize(p Profile) Stats {
	s := Stats{Min: math.Inf(1)}
	n := 0
	for t := time.Duration(0); t < 7*24*time.Hour; t += 15 * time.Minute {
		v := p.At(t)
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		s.Mean += v
		n++
	}
	s.Mean /= float64(n)
	return s
}
