package sweep

import (
	"sync"
	"sync/atomic"
)

// Cache is a content-keyed memoization cache with singleflight semantics:
// concurrent Do calls for the same key run the compute function exactly
// once and share its result. It exists so repeated scenario evaluations —
// the same (Backup, Technique, Workload, Outage) point showing up in
// several figures — hit memory instead of re-simulating.
//
// Both values and errors are memoized; the compute functions routed
// through it are deterministic, so a failure is as cacheable as a result.
// Cached values may contain pointers (e.g. simulation traces) that are
// shared between all callers — treat them as immutable.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	max     int
	entries map[K]*cacheEntry[V]

	// hits/misses are cumulative over the cache's lifetime (Purge and
	// epochal eviction do not reset them) — the serving layer exports
	// them, and monotonic counters are what rate computations want.
	hits, misses atomic.Uint64
}

type cacheEntry[V any] struct {
	once sync.Once
	done atomic.Bool // set inside once after val/err are written
	val  V
	err  error
}

// NewCache returns a cache holding at most max entries; when the cap is
// reached the cache is flushed wholesale (the workloads here are bursty
// re-evaluations of the same grid, so simple epochal eviction beats LRU
// bookkeeping on the hot path). max < 1 means unbounded.
func NewCache[K comparable, V any](max int) *Cache[K, V] {
	return &Cache[K, V]{max: max, entries: make(map[K]*cacheEntry[V])}
}

// Do returns the memoized result for key, computing it with fn on the
// first call. Concurrent callers for the same key block until the single
// in-flight computation finishes.
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		if c.max > 0 && len(c.entries) >= c.max {
			c.entries = make(map[K]*cacheEntry[V])
		}
		e = &cacheEntry[V]{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		// Joining an in-flight computation counts as a hit: the caller
		// shares the single compute instead of starting its own.
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		e.val, e.err = fn()
		e.done.Store(true)
	})
	return e.val, e.err
}

// Peek returns the memoized result for key without computing anything:
// ok is true only when a completed entry exists (an in-flight computation
// is not joined — Peek never blocks). A successful Peek counts as a hit;
// a miss is not counted, because peek-then-Do callers (the batch
// evaluator splitting warm from cold points) report the miss through the
// Do that seeds the entry, keeping the counters identical to the scalar
// path's.
func (c *Cache[K, V]) Peek(key K) (V, error, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok || !e.done.Load() {
		var zero V
		return zero, nil, false
	}
	c.hits.Add(1)
	return e.val, e.err, true
}

// Len reports the number of cached keys (including in-flight ones).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports the cumulative hit/miss counters. Safe to call
// concurrently with Do; the two values are read independently, so a
// racing Do may show up in one counter a beat before the other.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Purge empties the cache.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[K]*cacheEntry[V])
}
