package grid

import (
	"bytes"
	"context"
	"testing"

	"backuppower/internal/core"
	"backuppower/internal/resultstore"
)

// processStorePlan compiles a small process-axis evaluate plan for the
// store tests.
func processStorePlan(t *testing.T) *Plan {
	t.Helper()
	spec := processSweepSpec(4)
	spec.Workloads = []string{"specjbb", "memcached"}
	spec.Configs = []ConfigDTO{{Name: "NoDG"}, {Name: "MaxPerf"}}
	return compileOK(t, spec)
}

// TestProcessRowsWarmRerunServedFromStore extends the persistent-store
// acceptance to the process axis: a warm rerun of a process-axis sweep
// recomputes nothing and reproduces the cold bytes at any width/shard.
func TestProcessRowsWarmRerunServedFromStore(t *testing.T) {
	plan := processStorePlan(t)
	disk, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetRowStore(disk)
	defer func() {
		SetRowStore(nil)
		disk.Close()
	}()

	cold := storeRunNDJSON(t, plan, 0, RunOptions{})
	st := disk.Stats()
	if int(st.RecomputesRows) != len(plan.Points) || int(st.Puts) != len(plan.Points) {
		t.Fatalf("cold run stats: %+v for %d points", st, len(plan.Points))
	}

	for _, cfg := range []struct {
		width int
		opts  RunOptions
	}{
		{0, RunOptions{}},
		{4, RunOptions{ShardSize: 1}},
		{2, RunOptions{ShardSize: 3}},
	} {
		before := disk.Stats()
		warm := storeRunNDJSON(t, plan, cfg.width, cfg.opts)
		if !bytes.Equal(warm, cold) {
			t.Fatalf("width %d opts %+v: warm process rerun bytes diverged", cfg.width, cfg.opts)
		}
		after := disk.Stats()
		if d := after.RecomputesRows - before.RecomputesRows; d != 0 {
			t.Fatalf("width %d opts %+v: warm rerun recomputed %d process rows", cfg.width, cfg.opts, d)
		}
		if d := after.HitsRows - before.HitsRows; int(d) != len(plan.Points) {
			t.Fatalf("width %d opts %+v: warm rerun hit %d of %d rows", cfg.width, cfg.opts, d, len(plan.Points))
		}
	}
}

// TestProcessRowKeyNamespace: process rows key under the 'P' namespace,
// and two processes differing only in seed get distinct keys under the
// same invariant digest — the seed is the stamp, exactly as the outage
// is for point rows.
func TestProcessRowKeyNamespace(t *testing.T) {
	plan := processStorePlan(t)
	p := &plan.Points[0]
	if p.Process == nil {
		t.Fatal("expected a process point")
	}
	key := rowKey(plan.Op, p)
	if key[0] != resultstore.NSProcessRow {
		t.Fatalf("process row key namespace %q, want %q", key[0], resultstore.NSProcessRow)
	}

	q := *p
	proc := *p.Process
	proc.Seed++
	q.Process = &proc
	if rowKey(plan.Op, &q) == key {
		t.Fatal("seed change did not change the row key")
	}

	r := *p
	r.Process = nil
	r.Outage = 0
	if k := rowKey(plan.Op, &r); k[0] == resultstore.NSProcessRow {
		t.Fatal("point row landed in the process namespace")
	}
}

// TestProcessStoredRowCrossCheck: a stored process payload whose process
// spec disagrees with the requesting point is rejected (alias guard),
// and a payload shape mismatch (process point, point payload) degrades
// to recompute rather than serving the wrong row.
func TestProcessStoredRowCrossCheck(t *testing.T) {
	plan := processStorePlan(t)
	rows, err := runPlain(plan)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	sr, ok := storedFromRow(plan.Op, &row)
	if !ok {
		t.Fatal("storedFromRow refused a clean process row")
	}
	if sr.Process == nil {
		t.Fatal("stored process row lost its process payload")
	}

	// Round trip: same point gets the identical payload back.
	back, ok := rowFromStored(plan.Op, row.Point, &sr)
	if !ok {
		t.Fatal("stored row did not round-trip")
	}
	if back.Process == nil || *back.Process != *row.Process {
		t.Fatalf("process payload drifted: %+v vs %+v", back.Process, row.Process)
	}

	// A different seed must fail the cross-check.
	other := row.Point
	proc := *other.Process
	proc.Seed++
	other.Process = &proc
	if _, ok := rowFromStored(plan.Op, other, &sr); ok {
		t.Fatal("stored row served a point with a different process seed")
	}

	// A process point must refuse a duration-row payload.
	pointRow := sr
	pointRow.Process = nil
	if _, ok := rowFromStored(plan.Op, row.Point, &pointRow); ok {
		t.Fatal("process point accepted a payload without a process")
	}
}

// runPlain evaluates a plan store-less and returns the rows.
func runPlain(plan *Plan) ([]RowResult, error) {
	return NewRunner(core.New(8)).Run(context.Background(), plan, RunOptions{})
}
