package resultstore

import (
	"errors"
	"testing"
	"time"
)

// FuzzResultsQuery pins the query language's contract: arbitrary input
// either parses to an executable plan or is rejected with a typed
// *FieldError — never a panic, never an untyped error. Parsed plans must
// execute over a representative row set without panicking, and produce
// rows or groups consistent with Grouped().
func FuzzResultsQuery(f *testing.F) {
	seeds := []string{
		"",
		`technique="Sleep" && outage>10m`,
		`op=size && feasible=true | group by technique`,
		`perf>=0.5 && norm_cost<2.0 | frontier`,
		`servers!=8 && workload!="specjbb"`,
		`downtime<=1h30m && survived=true`,
		`op == "evaluate" && config != "NoDG"`,
		"| frontier",
		"| group by outage",
		"op=a &&",
		"bogus=1",
		`workload="unterminated`,
		"perf>>1",
		"outage=10mm",
		"\x00\xff && |",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	rows := []StoredRow{
		evalRow(8, "specjbb", "NoDG", "Sleep", 5*time.Minute, 0.8, 1.0),
		evalRow(16, "websearch", "Full", "Baseline", time.Hour, 0.95, 2.0),
		sizeRow(8, "specjbb", "Hibernate", 10*time.Minute, true, 0.7),
		sizeRow(8, "specjbb", "Hibernate", 2*time.Hour, false, 0),
		{V: rowSchemaV, Op: "best", Servers: 8, Workload: "specjbb", Best: "Sleep"},
	}
	f.Fuzz(func(t *testing.T, q string) {
		plan, err := ParseQuery(q)
		if err != nil {
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("ParseQuery(%q): untyped error %T: %v", q, err, err)
			}
			if fe.Code == "" || fe.Field == "" || fe.Message == "" {
				t.Fatalf("ParseQuery(%q): incomplete FieldError %+v", q, fe)
			}
			return
		}
		out := plan.Execute(rows)
		if plan.Grouped() {
			if out.Rows != nil {
				t.Fatalf("%q: grouped plan returned rows", q)
			}
		} else if out.Groups != nil {
			t.Fatalf("%q: row plan returned groups", q)
		}
		if len(out.Rows) > len(rows) {
			t.Fatalf("%q: filter grew the row set", q)
		}
	})
}
