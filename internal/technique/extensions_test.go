package technique

import (
	"testing"
	"time"

	"backuppower/internal/workload"
)

func TestNVDIMMPlan(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	p := NVDIMM{}.Plan(e, w, time.Hour)
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	if p.PeakPower() != 0 {
		t.Errorf("NVDIMM should demand no backup power, got %v", p.PeakPower())
	}
	if !p.Phases[0].StateSafe {
		t.Error("NVDIMM is state-safe by construction")
	}
	// Restore: flash reload + reboot, well under a crash recovery.
	crashLo, _ := CrashRecovery(e, w)
	if p.RestoreDowntime >= crashLo {
		t.Errorf("NVDIMM restore %v should beat crash recovery %v", p.RestoreDowntime, crashLo)
	}
	if p.RestoreDowntime < time.Minute {
		t.Errorf("restore %v suspiciously fast (18 GiB flash reload + reboot)", p.RestoreDowntime)
	}
}

func TestNVDIMMThrottlePlan(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	p := NVDIMMThrottle{PState: 6}.Plan(e, w, time.Hour)
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	ph := p.Phases[0]
	if !ph.StateSafe || !ph.Available || ph.Perf <= 0 {
		t.Errorf("NVDIMM+Throttle should serve state-safely: %+v", ph)
	}
	if !p.RestoreAfterPowerLossOnly {
		t.Error("restore should apply only after power loss")
	}
	// Same power as plain throttling at the same state.
	thr := Throttling{PState: 6}.Plan(e, w, time.Hour)
	if p.PeakPower() != thr.PeakPower() {
		t.Errorf("power %v != throttling %v", p.PeakPower(), thr.PeakPower())
	}
}

func TestBarelyAlivePlan(t *testing.T) {
	e := env()
	w := workload.WebSearch()
	p := BarelyAlive{}.Plan(e, w, time.Hour)
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	alive := p.Phases[1]
	if !alive.Available || alive.Perf != 0.10 {
		t.Errorf("barely-alive phase: %+v", alive)
	}
	// Draw sits between sleep and throttled.
	sleep := Sleep{}.Plan(e, w, time.Hour).Phases[1].Power
	thr := Throttling{PState: 6}.Plan(e, w, time.Hour).Phases[0].Power
	if alive.Power <= sleep || alive.Power >= thr {
		t.Errorf("barely-alive power %v should sit in (%v, %v)", alive.Power, sleep, thr)
	}
	// Custom knobs clamp.
	c := BarelyAlive{ServedPerf: 2, ExtraPower: -5}
	cp := c.Plan(e, w, time.Hour)
	if cp.Phases[1].Perf != 0.10 {
		t.Errorf("bad perf knob should default, got %v", cp.Phases[1].Perf)
	}
}

func TestGeoFailoverPlans(t *testing.T) {
	e := env()
	w := workload.WebSearch()
	for _, save := range []SaveKind{SaveSleep, SaveHibernate} {
		g := GeoFailover{Save: save}
		p := g.Plan(e, w, 6*time.Hour)
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid plan (%v): %v", save, err)
		}
		last := p.Phases[len(p.Phases)-1]
		if !last.Available || last.Perf != 0.7 {
			t.Errorf("remote serving phase: %+v", last)
		}
		if save == SaveHibernate && !last.StateSafe {
			t.Error("hibernate-backed failover should be state-safe")
		}
		if p.RestoreDegradedDur <= 0 {
			t.Error("redirect-back should be degraded")
		}
	}
	// Defaults clamp.
	d := GeoFailover{RemotePerf: -1, RedirectDelay: -time.Second}
	p := d.Plan(e, w, time.Hour)
	if p.Phases[0].Dur != 2*time.Minute {
		t.Errorf("default redirect delay = %v", p.Phases[0].Dur)
	}
}

func TestGeoFailoverServesThroughVeryLongOutage(t *testing.T) {
	// The §7 recommendation: for > 4 h outages with no DG, redirect.
	e := env()
	w := workload.WebSearch()
	p := GeoFailover{Save: SaveHibernate}.Plan(e, w, 6*time.Hour)
	// After drain + save, the open-ended phase draws nothing — so the
	// backup requirement is bounded regardless of outage length.
	var fixed time.Duration
	for _, ph := range p.Phases {
		if !ph.OpenEnded {
			fixed += ph.Dur
		}
	}
	if fixed > 10*time.Minute {
		t.Errorf("fixed phases = %v, want bounded", fixed)
	}
	if p.PeakPower() >= e.PeakPower() {
		t.Errorf("drain power %v should be throttled", p.PeakPower())
	}
}
