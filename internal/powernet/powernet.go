// Package powernet models the datacenter power-delivery hierarchy of
// Figure 2: utility substation → ATS → PDUs → racks (with rack-level UPS
// units) → servers, plus the diesel generator behind the ATS. It provides
// topology construction and validation, aggregate load-flow (per-rack and
// datacenter draw against equipment capacity), and the ATS source-selection
// state machine with its detection and transfer timings.
package powernet

import (
	"fmt"
	"time"

	"backuppower/internal/genset"
	"backuppower/internal/units"
	"backuppower/internal/ups"
)

// Rack is a group of servers behind one rack-level UPS.
type Rack struct {
	Name    string
	Servers int
	// PerServer is the design draw used for capacity checks.
	PerServer units.Watts
	UPS       ups.Config
}

// Load returns the rack's aggregate design draw.
func (r Rack) Load() units.Watts {
	return r.PerServer * units.Watts(r.Servers)
}

// Validate checks the rack.
func (r Rack) Validate() error {
	if r.Servers < 1 {
		return fmt.Errorf("powernet: rack %s has no servers", r.Name)
	}
	if r.PerServer <= 0 {
		return fmt.Errorf("powernet: rack %s non-positive per-server draw", r.Name)
	}
	return r.UPS.Validate()
}

// PDU distributes one feed across racks.
type PDU struct {
	Name     string
	Capacity units.Watts
	Racks    []Rack
}

// Load returns the PDU's aggregate design draw.
func (p PDU) Load() units.Watts {
	var total units.Watts
	for _, r := range p.Racks {
		total += r.Load()
	}
	return total
}

// Validate checks the PDU and its racks, including capacity.
func (p PDU) Validate() error {
	if len(p.Racks) == 0 {
		return fmt.Errorf("powernet: PDU %s has no racks", p.Name)
	}
	for _, r := range p.Racks {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	if p.Load() > p.Capacity {
		return fmt.Errorf("powernet: PDU %s load %v exceeds capacity %v", p.Name, p.Load(), p.Capacity)
	}
	return nil
}

// Hierarchy is the full delivery tree.
type Hierarchy struct {
	Name string
	PDUs []PDU
	DG   genset.Config
	ATS  ATSConfig
}

// Load returns the datacenter's aggregate design draw.
func (h Hierarchy) Load() units.Watts {
	var total units.Watts
	for _, p := range h.PDUs {
		total += p.Load()
	}
	return total
}

// Servers counts the fleet.
func (h Hierarchy) Servers() int {
	n := 0
	for _, p := range h.PDUs {
		for _, r := range p.Racks {
			n += r.Servers
		}
	}
	return n
}

// UPSPower sums the rack UPS power capacities.
func (h Hierarchy) UPSPower() units.Watts {
	var total units.Watts
	for _, p := range h.PDUs {
		for _, r := range p.Racks {
			total += r.UPS.PowerCapacity
		}
	}
	return total
}

// Validate checks the whole tree.
func (h Hierarchy) Validate() error {
	if len(h.PDUs) == 0 {
		return fmt.Errorf("powernet: hierarchy %s has no PDUs", h.Name)
	}
	for _, p := range h.PDUs {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	if err := h.DG.Validate(); err != nil {
		return err
	}
	return h.ATS.Validate()
}

// Uniform builds the homogeneous topology the experiments assume: racks of
// rackSize servers at perServer watts, split across PDUs, each rack with a
// slice of the aggregate UPS, and the given DG.
func Uniform(name string, servers, rackSize int, perServer units.Watts, u ups.Config, dg genset.Config) (Hierarchy, error) {
	if servers < 1 || rackSize < 1 {
		return Hierarchy{}, fmt.Errorf("powernet: bad sizes servers=%d rack=%d", servers, rackSize)
	}
	nRacks := (servers + rackSize - 1) / rackSize
	h := Hierarchy{Name: name, DG: dg, ATS: DefaultATS()}
	var racks []Rack
	left := servers
	for i := 0; i < nRacks; i++ {
		n := rackSize
		if n > left {
			n = left
		}
		left -= n
		rackUPS := u
		if u.Provisioned() {
			rackUPS.PowerCapacity = u.PowerCapacity * units.Watts(n) / units.Watts(servers)
		}
		racks = append(racks, Rack{
			Name:      fmt.Sprintf("rack-%d", i),
			Servers:   n,
			PerServer: perServer,
			UPS:       rackUPS,
		})
	}
	// One PDU per 8 racks, capacity with 20% headroom.
	for i := 0; i < len(racks); i += 8 {
		end := i + 8
		if end > len(racks) {
			end = len(racks)
		}
		p := PDU{Name: fmt.Sprintf("pdu-%d", i/8), Racks: racks[i:end]}
		p.Capacity = units.Watts(1.2 * float64(p.Load()))
		h.PDUs = append(h.PDUs, p)
	}
	return h, h.Validate()
}

// Source identifies what feeds the datacenter.
type Source int

// Sources.
const (
	SourceUtility Source = iota
	SourceUPS
	SourceDG
	SourceNone
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceUtility:
		return "utility"
	case SourceUPS:
		return "ups"
	case SourceDG:
		return "dg"
	case SourceNone:
		return "none"
	default:
		return fmt.Sprintf("source(%d)", int(s))
	}
}

// ATSConfig holds the automatic transfer switch timings.
type ATSConfig struct {
	// DetectionDelay is how long the ATS takes to recognize a utility
	// failure (the UPS's offline switchover races this at ~10 ms).
	DetectionDelay time.Duration
	// RetransferDelay is the dwell before switching back to a restored
	// utility (avoids flapping on sags).
	RetransferDelay time.Duration
}

// DefaultATS returns typical timings.
func DefaultATS() ATSConfig {
	return ATSConfig{DetectionDelay: 20 * time.Millisecond, RetransferDelay: 2 * time.Second}
}

// Validate checks the timings.
func (a ATSConfig) Validate() error {
	if a.DetectionDelay < 0 || a.RetransferDelay < 0 {
		return fmt.Errorf("powernet: negative ATS delays")
	}
	return nil
}

// SourceAt returns which source feeds the load at time t after a utility
// outage begins, for a hierarchy with the given backup. It encodes the
// Figure 2 switching sequence: utility → (detection) → UPS bridge →
// (DG start + load steps) → DG; and SourceNone when nothing can carry.
func (h Hierarchy) SourceAt(t, outage time.Duration) Source {
	if t >= outage {
		return SourceUtility
	}
	if t < h.ATS.DetectionDelay {
		// Ride-through window: PSU capacitance carries the load.
		return SourceUtility
	}
	if h.DG.Provisioned() && h.DG.SuppliedFraction(t) >= 1 {
		return SourceDG
	}
	if h.UPSPower() > 0 {
		return SourceUPS
	}
	if h.DG.Provisioned() && h.DG.SuppliedFraction(t) > 0 {
		return SourceDG
	}
	return SourceNone
}
