// Package memsim models the volatile memory state of an application: how
// much there is, how much of it is read-only (recoverable from persistent
// storage) versus modified (lost on a crash), and how fast pages are
// dirtied during execution. These dynamics drive everything the paper's
// save-state and migration techniques care about: hibernate time, live
// migration convergence, and the residual dirty state that the proactive
// (Remus-style) variants must move after a power failure.
package memsim

import (
	"fmt"
	"math"
	"time"

	"backuppower/internal/sweep"
	"backuppower/internal/units"
)

// Profile describes an application's memory-state behaviour.
type Profile struct {
	// Footprint is the total resident volatile state.
	Footprint units.Bytes

	// ReadOnlyFraction is the share of the footprint that is clean and
	// re-loadable from persistent storage (e.g. web-search's index cache).
	// Only the remainder needs to be saved or migrated to preserve state.
	ReadOnlyFraction float64

	// DirtyRate is how fast the application modifies (re-dirties) pages
	// during normal execution. It governs live-migration convergence and
	// the steady-state residue of proactive flushing.
	DirtyRate units.BytesPerSecond

	// WorkingSet bounds the set of pages the application keeps re-dirtying
	// (the hot set). Dirtying saturates at this size: once the whole hot
	// set is dirty, the dirty volume stops growing.
	WorkingSet units.Bytes
}

// Validate checks the profile.
func (p Profile) Validate() error {
	switch {
	case p.Footprint <= 0:
		return fmt.Errorf("memsim: non-positive footprint %v", p.Footprint)
	case p.ReadOnlyFraction < 0 || p.ReadOnlyFraction > 1:
		return fmt.Errorf("memsim: read-only fraction %v out of [0,1]", p.ReadOnlyFraction)
	case p.DirtyRate < 0:
		return fmt.Errorf("memsim: negative dirty rate")
	case p.WorkingSet < 0 || p.WorkingSet > p.Footprint:
		return fmt.Errorf("memsim: working set %v out of [0, footprint]", p.WorkingSet)
	}
	return nil
}

// MutableState is the portion of the footprint that must be preserved to
// avoid loss (everything that is not clean read-only data).
func (p Profile) MutableState() units.Bytes {
	return units.Bytes(float64(p.Footprint) * (1 - p.ReadOnlyFraction))
}

// DirtyAfter returns how much state is dirty after running for d starting
// from a fully-flushed (clean) image, with saturation at the working set:
// dirty(t) = WS * (1 - exp(-rate*t/WS)). For WS=0 it returns 0.
func (p Profile) DirtyAfter(d time.Duration) units.Bytes {
	ws := float64(p.WorkingSet)
	if ws <= 0 || p.DirtyRate <= 0 || d <= 0 {
		return 0
	}
	x := float64(p.DirtyRate) * d.Seconds() / ws
	return units.Bytes(ws * (1 - math.Exp(-x)))
}

// FlushResidue returns the steady-state amount of dirty data left
// unflushed when the state is flushed to a remote/disk sink every interval
// — the amount a Remus-style proactive technique still has to move after a
// power failure. It is simply the dirtying accumulated over one interval.
func (p Profile) FlushResidue(interval time.Duration) units.Bytes {
	return p.DirtyAfter(interval)
}

// FlushBandwidth returns the average background bandwidth consumed by
// proactive flushing at the given interval: residue moved once per
// interval.
func (p Profile) FlushBandwidth(interval time.Duration) units.BytesPerSecond {
	if interval <= 0 {
		return 0
	}
	return units.BytesPerSecond(float64(p.FlushResidue(interval)) / interval.Seconds())
}

// PrecopyResult describes an iterative pre-copy run (Xen-style live
// migration, §5): rounds of copying while the application keeps dirtying,
// until the remainder fits the stop-and-copy threshold or rounds are
// exhausted.
type PrecopyResult struct {
	Rounds        int
	Transferred   units.Bytes   // total bytes moved including re-copies
	FinalDirty    units.Bytes   // moved during stop-and-copy (downtime)
	Duration      time.Duration // wall time of the pre-copy phase
	StopCopyTime  time.Duration // downtime to move FinalDirty
	Converged     bool          // remainder fit the threshold
	TotalDuration time.Duration // Duration + StopCopyTime
}

// precopyKey is the full argument tuple of Precopy — all value types, so
// the simulation is a pure function of the key.
type precopyKey struct {
	p         Profile
	state     units.Bytes
	bw        units.BytesPerSecond
	threshold units.Bytes
	maxRounds int
}

// precopyMemo caches pre-copy runs process-wide. Migration planning is
// outage-duration-independent, so sweeps re-run identical pre-copies for
// every outage point on a grid; the memo collapses them to one iterative
// simulation per distinct (profile, state, bandwidth) tuple.
var precopyMemo = sweep.NewCache[precopyKey, PrecopyResult](1 << 12)

// ResetPrecopyMemo empties the pre-copy memo. Cold-path benchmarks use it
// alongside the scenario cache reset; regular callers never need it.
func ResetPrecopyMemo() { precopyMemo.Purge() }

// Precopy simulates iterative pre-copy of `state` bytes at the given link
// bandwidth while the profile keeps dirtying pages. threshold is the
// stop-and-copy cutoff; maxRounds caps iterations (Xen defaults to ~30).
// Results are memoized: the run is a pure function of its arguments.
func Precopy(p Profile, state units.Bytes, bw units.BytesPerSecond, threshold units.Bytes, maxRounds int) PrecopyResult {
	res, _ := precopyMemo.Do(precopyKey{p, state, bw, threshold, maxRounds}, func() (PrecopyResult, error) {
		return precopy(p, state, bw, threshold, maxRounds), nil
	})
	return res
}

func precopy(p Profile, state units.Bytes, bw units.BytesPerSecond, threshold units.Bytes, maxRounds int) PrecopyResult {
	var res PrecopyResult
	if state <= 0 {
		res.Converged = true
		return res
	}
	if bw <= 0 {
		return res // cannot transfer at all
	}
	remaining := state
	for res.Rounds = 0; res.Rounds < maxRounds; res.Rounds++ {
		if remaining <= threshold {
			res.Converged = true
			break
		}
		t := bw.TimeFor(remaining)
		res.Transferred += remaining
		res.Duration += t
		// While this round copied, the app dirtied pages (capped at the
		// hot working set and at the state being migrated).
		dirtied := p.DirtyAfter(t)
		if dirtied > state {
			dirtied = state
		}
		// No progress guard: if the app dirties as fast as we copy, stop.
		if dirtied >= remaining && res.Rounds > 0 {
			remaining = dirtied
			break
		}
		remaining = dirtied
	}
	if remaining <= threshold {
		res.Converged = true
	}
	res.FinalDirty = remaining
	res.StopCopyTime = bw.TimeFor(remaining)
	res.Transferred += remaining
	res.TotalDuration = res.Duration + res.StopCopyTime
	return res
}
