package report

import (
	"strings"
	"testing"
	"time"
)

func TestRenderAlignment(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Columns: []string{"name", "value"},
	}
	tb.AddRow("short", 1.5)
	tb.AddRow("a-much-longer-name", 42*time.Second)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Column 2 aligns: "value"/"1.50"/"42s" start at the same offset.
	head := strings.Index(lines[1], "value")
	row1 := strings.Index(lines[3], "1.50")
	if head <= 0 || head != row1 {
		t.Errorf("misaligned: header@%d row@%d\n%s", head, row1, out)
	}
}

func TestCellFormats(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{"x", "x"},
		{1.234, "1.23"},
		{30 * time.Second, "30s"},
		{5 * time.Minute, "5.0m"},
		{4 * time.Hour, "4.0h"},
		{time.Duration(0), "0"},
		{42, "42"},
	}
	for _, c := range cases {
		if got := Cell(c.in); got != c.want {
			t.Errorf("Cell(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBands(t *testing.T) {
	if got := Band(0.5, 0.5); got != "0.50" {
		t.Errorf("equal band = %q", got)
	}
	if got := Band(0.25, 0.75); got != "(0.25,0.75)" {
		t.Errorf("band = %q", got)
	}
	if got := DurationBand(time.Minute, time.Minute); got != "60s" {
		t.Errorf("equal dband = %q", got)
	}
	if got := DurationBand(30*time.Second, 5*time.Minute); got != "(30s,5.0m)" {
		t.Errorf("dband = %q", got)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Columns: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("x,with,commas", 1.5)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatalf("RenderCSV: %v", err)
	}
	out := b.String()
	for _, want := range []string{"# demo", "name,value", `"x,with,commas",1.50`, "# note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestNotes(t *testing.T) {
	tb := Table{Columns: []string{"a"}, Notes: []string{"paper reports X"}}
	tb.AddRow("1")
	if !strings.Contains(tb.String(), "note: paper reports X") {
		t.Error("missing note")
	}
}
