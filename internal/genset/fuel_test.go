package genset

import (
	"testing"
	"time"

	"backuppower/internal/units"
)

func TestDefaultFuelValid(t *testing.T) {
	if err := DefaultFuel().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
}

func TestFuelValidateErrors(t *testing.T) {
	mutate := []func(*FuelModel){
		func(f *FuelModel) { f.FullLoadLPerKWh = 0 },
		func(f *FuelModel) { f.NoLoadFraction = 1 },
		func(f *FuelModel) { f.DieselPricePerL = -1 },
		func(f *FuelModel) { f.MaintenanceFracPerYear = -1 },
	}
	for i, m := range mutate {
		f := DefaultFuel()
		m(&f)
		if f.Validate() == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestConsumptionWillansLine(t *testing.T) {
	f := DefaultFuel()
	c := New(units.Megawatt)
	// Full load for 1 hour: 0.22 L/kWh * 1000 kWh = 220 L.
	full := f.Consumption(c, units.Megawatt, time.Hour)
	if !units.AlmostEqual(full, 220, 1e-9) {
		t.Errorf("full-load burn = %v", full)
	}
	// No load still burns the idle share.
	idle := f.Consumption(c, 0, time.Hour)
	if !units.AlmostEqual(idle, 44, 1e-9) {
		t.Errorf("no-load burn = %v", idle)
	}
	// Half load lands between, above half of full (Willans intercept).
	half := f.Consumption(c, units.Megawatt/2, time.Hour)
	if half <= full/2 || half >= full {
		t.Errorf("half-load burn = %v", half)
	}
	// Loads clamp at capacity; no DG burns nothing.
	if f.Consumption(c, 2*units.Megawatt, time.Hour) != full {
		t.Error("overload should clamp")
	}
	if f.Consumption(None(), units.Megawatt, time.Hour) != 0 {
		t.Error("no DG burns nothing")
	}
}

func TestTankSizedForFuelRuntime(t *testing.T) {
	f := DefaultFuel()
	c := New(units.Megawatt)
	tank := f.TankLiters(c)
	// 48 h at 220 L/h = 10560 L.
	if !units.AlmostEqual(tank, 220*48, 1e-9) {
		t.Errorf("tank = %v L", tank)
	}
}

func TestOutageCostExcludesTransferWindow(t *testing.T) {
	f := DefaultFuel()
	c := New(units.Megawatt)
	// Outage shorter than the DG ramp: no fuel cost at all.
	if got := f.OutageCost(c, units.Megawatt, time.Minute); got != 0 {
		t.Errorf("sub-ramp outage cost = %v", got)
	}
	long := f.OutageCost(c, units.Megawatt, 2*time.Hour)
	if long <= 0 {
		t.Error("2h outage should burn fuel")
	}
}

func TestPaperOpExNegligibleClaim(t *testing.T) {
	// Section 3's claim: with Figure 1's ~1.5 h of outage per year, DG
	// op-ex is small relative to cap-ex. Check at a 10 MW datacenter.
	f := DefaultFuel()
	c := New(10 * units.Megawatt)
	opex := float64(f.AnnualOpEx(c, 10*units.Megawatt, 90*time.Minute))
	capex := float64(c.AnnualCost())
	if opex <= 0 {
		t.Fatal("op-ex should be positive")
	}
	ratio := opex / capex
	if ratio >= 0.15 {
		t.Errorf("op-ex/cap-ex = %v — the paper's negligibility claim fails", ratio)
	}
	if !f.OpExNegligible(c, 10*units.Megawatt, 90*time.Minute, 0.15) {
		t.Error("OpExNegligible should agree")
	}
	// But a pathological site (continuous outages) breaks the claim.
	if f.OpExNegligible(c, 10*units.Megawatt, 2000*time.Hour, 0.15) {
		t.Error("2000h/year of outage should not be negligible")
	}
	// No DG: trivially negligible.
	if !f.OpExNegligible(None(), units.Megawatt, time.Hour, 0.15) {
		t.Error("no DG should be negligible")
	}
}

func TestAnnualOpExComponents(t *testing.T) {
	f := DefaultFuel()
	c := New(units.Megawatt)
	withOutage := float64(f.AnnualOpEx(c, units.Megawatt, 5*time.Hour))
	noOutage := float64(f.AnnualOpEx(c, units.Megawatt, 0))
	if withOutage <= noOutage {
		t.Error("outage hours should add fuel cost")
	}
	// Even with zero outages, tests + maintenance cost something.
	if noOutage <= 0 {
		t.Error("test runs and maintenance are not free")
	}
	if f.AnnualOpEx(None(), units.Megawatt, time.Hour) != 0 {
		t.Error("no DG has no op-ex")
	}
}
