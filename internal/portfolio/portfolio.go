// Package portfolio answers Section 7's second challenge: "How do we
// provision for heterogeneous applications?" Datacenters host applications
// with very different state sizes, recovery costs and throttling responses,
// so one backup configuration rarely fits all. This package plans multiple
// datacenter *sections*, each with its own backup configuration sized for
// the applications assigned to it, minimizing total cap-ex subject to
// per-application performability SLAs.
package portfolio

import (
	"context"
	"fmt"
	"sort"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/cost"
	"backuppower/internal/sweep"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// SLA is a per-application performability requirement for a design outage.
type SLA struct {
	// Outage is the design outage duration the SLA must hold for.
	Outage time.Duration
	// MinPerf is the minimum normalized throughput during the outage.
	MinPerf float64
	// MaxDowntime bounds total unavailability (including post-restore).
	MaxDowntime time.Duration
	// RequireStateSafety forbids designs that can lose volatile state.
	RequireStateSafety bool
}

// Validate checks the SLA.
func (s SLA) Validate() error {
	switch {
	case s.Outage <= 0:
		return fmt.Errorf("portfolio: non-positive design outage")
	case s.MinPerf < 0 || s.MinPerf > 1:
		return fmt.Errorf("portfolio: min perf %v out of [0,1]", s.MinPerf)
	case s.MaxDowntime < 0:
		return fmt.Errorf("portfolio: negative max downtime")
	}
	return nil
}

// Requirement is one application the portfolio must host.
type Requirement struct {
	Workload workload.Spec
	Servers  int
	SLA      SLA
}

// Validate checks the requirement.
func (r Requirement) Validate() error {
	if err := r.Workload.Validate(); err != nil {
		return err
	}
	if r.Servers < 1 {
		return fmt.Errorf("portfolio: requirement %s has %d servers", r.Workload.Name, r.Servers)
	}
	return r.SLA.Validate()
}

// Section is one backup domain of the resulting plan.
type Section struct {
	Workload   string
	Servers    int
	Technique  string
	Backup     cost.Backup
	AnnualCost units.DollarsPerYear
	// Perf and Downtime are the metrics at the design outage; StateSafe
	// reports that volatile state survived it.
	Perf      float64
	Downtime  time.Duration
	StateSafe bool
}

// Plan is the portfolio design.
type Plan struct {
	Sections []Section
	// TotalCost across sections, and the cost of the naive alternative —
	// giving every section today's MaxPerf backup.
	TotalCost   units.DollarsPerYear
	MaxPerfCost units.DollarsPerYear
}

// Savings is the fraction saved against all-MaxPerf provisioning.
func (p Plan) Savings() float64 {
	if p.MaxPerfCost == 0 {
		return 0
	}
	return 1 - float64(p.TotalCost)/float64(p.MaxPerfCost)
}

// Planner designs portfolios over a base framework. Each requirement gets
// its own section-scale framework (the backup capacities scale with the
// section's server count).
type Planner struct {
	Base *core.Framework
}

// NewPlanner wraps a framework.
func NewPlanner(fw *core.Framework) *Planner { return &Planner{Base: fw} }

// sectionFramework clones the base environment at a section's size.
func (p *Planner) sectionFramework(servers int) *core.Framework {
	fw := &core.Framework{Env: p.Base.Env, Battery: p.Base.Battery}
	fw.Env.Servers = servers
	return fw
}

// candidates enumerates the designs considered per requirement: every
// technique family variant under its min-cost sizing, plus MaxPerf with
// the baseline as the always-feasible fallback.
func (p *Planner) candidates(ctx context.Context, fw *core.Framework, req Requirement) ([]Section, error) {
	var out []Section
	peak := fw.Env.PeakPower()

	// MaxPerf fallback.
	if res, err := fw.Evaluate(cost.MaxPerf(peak), technique.Baseline{}, req.Workload, req.SLA.Outage); err == nil {
		out = append(out, Section{
			Workload: req.Workload.Name, Servers: req.Servers,
			Technique: "Baseline", Backup: cost.MaxPerf(peak),
			AnnualCost: cost.MaxPerf(peak).AnnualCost(),
			Perf:       res.Perf, Downtime: res.Downtime, StateSafe: res.Survived,
		})
	}
	sums, err := fw.EvaluateTechniquesCtx(ctx, req.Workload, req.SLA.Outage)
	if err != nil {
		return nil, err
	}
	for _, s := range sums {
		for _, op := range s.Points {
			out = append(out, Section{
				Workload: req.Workload.Name, Servers: req.Servers,
				Technique: op.Technique, Backup: op.Backup,
				AnnualCost: op.Backup.AnnualCost(),
				Perf:       op.Result.Perf, Downtime: op.Result.Downtime,
				StateSafe: op.Result.Survived,
			})
		}
	}
	return out, nil
}

// meets checks a candidate against the SLA.
func meets(c Section, sla SLA) bool {
	if c.Perf < sla.MinPerf {
		return false
	}
	if c.Downtime > sla.MaxDowntime {
		return false
	}
	if sla.RequireStateSafety && !c.StateSafe {
		return false
	}
	return true
}

// Design picks, for every requirement, the cheapest candidate meeting its
// SLA. It returns an error when some requirement cannot be met even by
// MaxPerf (the SLA is infeasible for that workload).
func (p *Planner) Design(reqs []Requirement) (Plan, error) {
	return p.DesignCtx(context.Background(), reqs)
}

// DesignCtx is Design with the per-requirement candidate enumeration and
// selection fanned out through the sweep engine. Sections come back in
// requirement order, so the plan is identical to a serial design.
func (p *Planner) DesignCtx(ctx context.Context, reqs []Requirement) (Plan, error) {
	if p.Base == nil {
		return Plan{}, fmt.Errorf("portfolio: nil framework")
	}
	if len(reqs) == 0 {
		return Plan{}, fmt.Errorf("portfolio: no requirements")
	}
	for _, req := range reqs {
		if err := req.Validate(); err != nil {
			return Plan{}, err
		}
	}
	type sectionPick struct {
		chosen  Section
		maxPerf units.DollarsPerYear
	}
	picks, err := sweep.Map(ctx, reqs, func(ctx context.Context, req Requirement) (sectionPick, error) {
		fw := p.sectionFramework(req.Servers)
		cands, err := p.candidates(ctx, fw, req)
		if err != nil {
			return sectionPick{}, err
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].AnnualCost < cands[j].AnnualCost })
		for _, c := range cands {
			if meets(c, req.SLA) {
				return sectionPick{chosen: c, maxPerf: cost.MaxPerf(fw.Env.PeakPower()).AnnualCost()}, nil
			}
		}
		return sectionPick{}, fmt.Errorf("portfolio: no design meets the SLA for %s (outage %v, perf >= %.2f, downtime <= %v)",
			req.Workload.Name, req.SLA.Outage, req.SLA.MinPerf, req.SLA.MaxDowntime)
	})
	if err != nil {
		return Plan{}, err
	}
	var plan Plan
	for _, pick := range picks {
		plan.Sections = append(plan.Sections, pick.chosen)
		plan.TotalCost += pick.chosen.AnnualCost
		plan.MaxPerfCost += pick.maxPerf
	}
	return plan, nil
}
