package fabric

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/httpapi"
	"backuppower/internal/resultstore"
)

// LoopbackConfig parameterizes an in-process worker pool.
type LoopbackConfig struct {
	// Servers is each worker's modeled datacenter scale (0 = 64,
	// backupd's default — and it must match the coordinator's
	// DefaultServers for every node to compile the same plan).
	Servers int
	// Width is each worker's default sweep pool width (0 = GOMAXPROCS).
	// Width 1 makes each worker serial, so the fabric's fan-out is the
	// only parallelism — the configuration the scaling benchmarks use.
	Width int
	// MaxInflight bounds each worker's concurrent evaluations
	// (0 = backupd's default).
	MaxInflight int
	// Timeout is each worker's per-request deadline (0 = 30s default).
	Timeout time.Duration
	// Store, when set, is mounted on each worker (GET /v1/results plus
	// store counters on /metrics). Loopback workers are in-process, so a
	// store attached to the process globals (core.SetResultStore /
	// grid.SetRowStore) is already shared by all of them; this field only
	// adds the serving surfaces.
	Store resultstore.Store
}

// Loopback starts n in-process backupd workers on ephemeral loopback
// ports — real HTTP over real sockets, just without separate processes —
// and returns their base URLs plus a stop function. It exists so the
// whole fabric runs under `go test -race` and `make fabric-equivalence`
// with nothing external, and so cmd/sweepfront -loopback can demonstrate
// the fabric on one machine.
//
// The workers share this process's scenario memo cache (it is
// process-global), which distributed pools do not; that warms repeated
// rows faster but changes no output bytes.
func Loopback(n int, cfg LoopbackConfig) (urls []string, stop func(), err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("fabric: loopback pool needs n >= 1, got %d", n)
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 64
	}
	var servers []*http.Server
	stop = func() {
		for _, s := range servers {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			s.Shutdown(ctx)
			cancel()
		}
	}
	for i := 0; i < n; i++ {
		api, aerr := httpapi.New(httpapi.Config{
			Framework:   core.New(cfg.Servers),
			Width:       cfg.Width,
			MaxInflight: cfg.MaxInflight,
			Timeout:     cfg.Timeout,
			WorkerID:    fmt.Sprintf("loopback-%d", i),
			Store:       cfg.Store,
		})
		if aerr != nil {
			stop()
			return nil, nil, aerr
		}
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			stop()
			return nil, nil, fmt.Errorf("fabric: loopback listen: %w", lerr)
		}
		srv := &http.Server{Handler: api.Handler()}
		servers = append(servers, srv)
		urls = append(urls, "http://"+ln.Addr().String())
		go srv.Serve(ln)
	}
	return urls, stop, nil
}
