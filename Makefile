GO ?= go

# Benchmarks tracked by the bench-baseline / bench-compare pair: the
# micro-primitives the PR-2 fast path optimized, the end-to-end regen, and
# the outage-axis batch kernel pairs (batch vs scalar, grid with the
# kernel on vs off).
BENCH_TRACKED := BenchmarkScenarioSimulate$$|BenchmarkScenarioSimulateAggregate|BenchmarkMinCostSizing|BenchmarkSweepSerial|BenchmarkSweepParallel|BenchmarkFullRegen|BenchmarkOutageBatch|BenchmarkOutageScalar|BenchmarkSizingOutage|BenchmarkGridOutageAxis|BenchmarkFabricSweep|BenchmarkProcessEval
BENCH_COUNT   ?= 10
BENCH_DIR     ?= .bench

.PHONY: ci vet build test race race-httpapi cover fuzz-smoke bench-smoke bench-alloc bench bench-baseline bench-compare batch-equivalence fabric-equivalence store-equivalence vulture-smoke process-equivalence

ci: vet build race race-httpapi cover bench-alloc bench-smoke batch-equivalence fabric-equivalence store-equivalence process-equivalence vulture-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race gate for the serving layer: the concurrency hammer in
# internal/httpapi must stay data-race free with verbose accounting even
# when the full -race sweep is trimmed.
race-httpapi:
	$(GO) test -race -count=1 ./internal/httpapi

# Coverage report plus per-package floors: the grid package is the trunk
# every surface (HTTP, CLI, figures) routes through, so its statement
# coverage must stay at or above 85%; the fabric is the distributed
# serving path the vulture leans on, floored at 75%; the outage package
# now carries the stochastic process model, floored at 80%.
COVER_FLOOR := 85.0
FABRIC_COVER_FLOOR := 75.0
OUTAGE_COVER_FLOOR := 80.0
cover:
	$(GO) test -coverprofile=cover.out ./internal/grid/
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v got="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { \
		if (got+0 < floor+0) { printf "internal/grid coverage %.1f%% is below the %.1f%% floor\n", got, floor; exit 1 } \
		printf "internal/grid coverage %.1f%% meets the %.1f%% floor\n", got, floor }'
	$(GO) test -coverprofile=cover.out ./internal/fabric/
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v got="$$total" -v floor="$(FABRIC_COVER_FLOOR)" 'BEGIN { \
		if (got+0 < floor+0) { printf "internal/fabric coverage %.1f%% is below the %.1f%% floor\n", got, floor; exit 1 } \
		printf "internal/fabric coverage %.1f%% meets the %.1f%% floor\n", got, floor }'
	$(GO) test -coverprofile=cover.out ./internal/outage/
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v got="$$total" -v floor="$(OUTAGE_COVER_FLOOR)" 'BEGIN { \
		if (got+0 < floor+0) { printf "internal/outage coverage %.1f%% is below the %.1f%% floor\n", got, floor; exit 1 } \
		printf "internal/outage coverage %.1f%% meets the %.1f%% floor\n", got, floor }'
	@rm -f cover.out

# Short live-fuzz runs of every fuzz target (the committed seed corpora
# already run in plain `make test`); lengthen with FUZZTIME=1m etc.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeEvaluateRequest -fuzztime=$(FUZZTIME) ./internal/httpapi
	$(GO) test -fuzz=FuzzDecodeSweepRequest -fuzztime=$(FUZZTIME) ./internal/httpapi
	$(GO) test -fuzz=FuzzParsePower -fuzztime=$(FUZZTIME) ./internal/units
	$(GO) test -fuzz=FuzzParseDuration -fuzztime=$(FUZZTIME) ./internal/units
	$(GO) test -fuzz=FuzzRandomSpecCompiles -fuzztime=$(FUZZTIME) ./internal/grid
	$(GO) test -fuzz=FuzzDecodeProcessSpec -fuzztime=$(FUZZTIME) ./internal/grid
	$(GO) test -fuzz=FuzzProcessDraw -fuzztime=$(FUZZTIME) ./internal/outage
	$(GO) test -fuzz=FuzzResultsQuery -fuzztime=$(FUZZTIME) ./internal/resultstore

# Allocation-regression gate: the aggregate simulation path and the sizing
# inner loop must stay heap-allocation-free (see internal/cluster/alloc_test.go).
bench-alloc:
	$(GO) test -run='TestAggregatePathAllocFree|TestRequiredRuntimeAllocFree|TestSimulateAggregateAllocBound' ./internal/cluster/

# Single-iteration smokes: the deepest experiment (Fig 6: variant race ×
# rating sweep × duration fan-out) and the full serial regeneration, so CI
# exercises the sweep engine and the end-to-end path without paying for a
# statistical benchmark run.
bench-smoke:
	$(GO) test -run=NONE -bench=BenchmarkFig6 -benchtime=1x .
	$(GO) test -run=NONE -bench=BenchmarkFullRegen -benchtime=1x .

# Byte-equality smoke for the outage-axis batch kernel: the same Fig-5
# style sweep through cmd/gridrun must produce identical NDJSON with the
# kernel on (default) and off (-no-batch), at different widths and shard
# sizes for good measure.
batch-equivalence:
	@tmp=$$(mktemp -d); \
	spec='-op best -workloads specjbb -configs MaxPerf,MinCost,NoDG,NoUPS,DG-SmallPUPS,LargeEUPS -outages 30s,90s,5m,12m,30m,45m,1h,2h'; \
	$(GO) run ./cmd/gridrun $$spec -parallel 1 -o $$tmp/batch.ndjson && \
	$(GO) run ./cmd/gridrun $$spec -no-batch -parallel 4 -shard 5 -o $$tmp/scalar.ndjson && \
	cmp $$tmp/batch.ndjson $$tmp/scalar.ndjson && \
	echo "batch-equivalence: gridrun output identical with and without -no-batch" ; \
	status=$$?; rm -rf $$tmp; exit $$status

# Byte-equality smoke for the sweep fabric (PR 7): the same spec run
# single-node through cmd/gridrun and sharded across three in-process
# loopback backupd workers through cmd/sweepfront must merge to identical
# NDJSON — the tentpole contract, checked end to end through real HTTP.
fabric-equivalence:
	@tmp=$$(mktemp -d); \
	printf '%s' '{"servers":[16],"workloads":["specjbb","memcached"],"configs":[{"name":"MaxPerf"},{"name":"MinCost"},{"name":"NoDG"}],"techniques":[{"name":"baseline"},{"name":"throttling","pstate":3}],"outages":["30s","90s","5m","30m","1h"]}' > $$tmp/spec.json; \
	$(GO) run ./cmd/gridrun -spec $$tmp/spec.json -parallel 1 -o $$tmp/single.ndjson && \
	$(GO) run ./cmd/sweepfront -loopback 3 -shard-rows 5 -spec $$tmp/spec.json -o $$tmp/fabric.ndjson && \
	cmp $$tmp/single.ndjson $$tmp/fabric.ndjson && \
	echo "fabric-equivalence: 3-worker sweepfront output identical to single-node gridrun" ; \
	status=$$?; rm -rf $$tmp; exit $$status

# Persistent result store equivalence smoke (PR 9): a cold gridrun with
# -store-dir, then a warm rerun of the identical spec against the same
# store, must produce byte-identical NDJSON while evaluating zero rows
# (the warm store's recompute counter stays 0 — every row is a disk hit).
# Then a sealed block is torn mid-file: the next rerun must degrade
# gracefully — recompute only the lost rows, still byte-identical output.
store-equivalence:
	@tmp=$$(mktemp -d); \
	spec='-workloads specjbb,memcached -configs MaxPerf,NoDG -techniques baseline;sleep:low_power=true -outages 30s,5m,30m'; \
	$(GO) run ./cmd/gridrun $$spec -store-dir $$tmp/store -o $$tmp/cold.ndjson && \
	$(GO) run ./cmd/gridrun $$spec -store-dir $$tmp/store -store-stats -parallel 4 -shard 3 -o $$tmp/warm.ndjson 2> $$tmp/warm-stats.json && \
	cmp $$tmp/cold.ndjson $$tmp/warm.ndjson && \
	grep -q '"recomputes":0,' $$tmp/warm-stats.json && \
	grep -qv '"hits":0,' $$tmp/warm-stats.json && \
	echo "store-equivalence: warm rerun byte-identical with 0 recomputed rows" && \
	for f in $$tmp/store/block-*.blk; do sz=$$(wc -c < $$f); truncate -s $$((sz*3/5)) $$f; done && \
	$(GO) run ./cmd/gridrun $$spec -store-dir $$tmp/store -o $$tmp/repaired.ndjson && \
	cmp $$tmp/cold.ndjson $$tmp/repaired.ndjson && \
	echo "store-equivalence: torn block degraded to recompute with identical bytes" ; \
	status=$$?; rm -rf $$tmp; exit $$status

# Process-level evaluation equivalence smoke (PR 10): first the focused
# property tests — the degenerate single-draw fixed process reproducing
# scalar Evaluate bit for bit, and draw determinism — re-run at -count=3
# to pin the no-hidden-state contract; then the same process-axis spec
# through cmd/gridrun at two parallel/shard geometries and through a
# 3-worker sweepfront fabric, all three byte-identical.
process-equivalence:
	$(GO) test -run='TestMetamorphicDegenerateMatchesScalar' -count=1 ./internal/core/
	$(GO) test -run='TestProcessDraw|TestEvaluateProcess' -count=3 ./internal/outage/ ./internal/core/
	@tmp=$$(mktemp -d); \
	printf '%s' '{"servers":[16],"workloads":["specjbb","memcached"],"configs":[{"name":"NoDG"},{"name":"MaxPerf"}],"techniques":[{"name":"baseline"},{"name":"sleep","low_power":true}],"outage_processes":[{"seed":42,"draws":8,"arrival":{"kind":"exponential","mean":"2000h"},"duration":{"kind":"weibull","mean":"30m","shape":0.8},"correlation":0.3},{"seed":7,"draws":4,"arrival":{"kind":"empirical"},"duration":{"kind":"empirical"}},{"seed":3,"draws":1,"arrival":{"kind":"fixed","mean":"5000h"},"duration":{"kind":"fixed","mean":"10m"}}]}' > $$tmp/spec.json; \
	$(GO) run ./cmd/gridrun -spec $$tmp/spec.json -parallel 1 -shard 1 -o $$tmp/serial.ndjson && \
	$(GO) run ./cmd/gridrun -spec $$tmp/spec.json -parallel 4 -shard 3 -o $$tmp/parallel.ndjson && \
	cmp $$tmp/serial.ndjson $$tmp/parallel.ndjson && \
	$(GO) run ./cmd/sweepfront -loopback 3 -shard-rows 2 -spec $$tmp/spec.json -o $$tmp/fabric.ndjson && \
	cmp $$tmp/serial.ndjson $$tmp/fabric.ndjson && \
	echo "process-equivalence: process-axis sweep byte-identical across widths, shards, and the 3-worker fabric" ; \
	status=$$?; rm -rf $$tmp; exit $$status

# Deterministic continuous-verification smoke (PR 8): cmd/vulture
# generates seeded-random specs against in-process loopback targets and
# runs all three checks (byte equality vs a local evaluation, the
# metamorphic invariants, /metrics deltas) plus a short rate-limited load
# phase under a generous tail-latency budget. Both target kinds are
# exercised: a single backupd worker and a 3-worker sweepfront fabric.
# Long soaks stay manual: `go run ./cmd/vulture -loopback 1 -duration 1h`.
# The third invocation attaches a persistent result store (-store-dir),
# which arms the store-delta and /v1/results read-your-writes checks.
vulture-smoke:
	$(GO) run ./cmd/vulture -loopback 1 -seed 7 -specs 6 -load-requests 32 -concurrency 4 -slo-p999 30s -max-error-rate 0
	$(GO) run ./cmd/vulture -loopback 3 -seed 11 -specs 4 -load-requests 16 -concurrency 4 -slo-p999 30s -max-error-rate 0
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/vulture -loopback 3 -seed 13 -specs 4 -store-dir $$tmp/store -load-requests 16 -concurrency 4 -slo-p999 30s -max-error-rate 0 ; \
	status=$$?; rm -rf $$tmp; exit $$status

bench:
	$(GO) test -bench=. -benchmem .

# bench-baseline records the tracked benchmarks ($(BENCH_COUNT) runs each)
# into $(BENCH_DIR)/baseline.txt. Run it on the commit you want to compare
# against, then make your changes and run bench-compare.
bench-baseline:
	@mkdir -p $(BENCH_DIR)
	$(GO) test -run=NONE -bench='$(BENCH_TRACKED)' -benchmem -count=$(BENCH_COUNT) . | tee $(BENCH_DIR)/baseline.txt

# bench-compare re-runs the tracked benchmarks and diffs them against the
# recorded baseline — through benchstat when it is on PATH, otherwise
# through the in-repo comparer (cmd/benchdiff), which needs no downloads.
bench-compare:
	@test -f $(BENCH_DIR)/baseline.txt || { echo "no $(BENCH_DIR)/baseline.txt — run 'make bench-baseline' first"; exit 1; }
	$(GO) test -run=NONE -bench='$(BENCH_TRACKED)' -benchmem -count=$(BENCH_COUNT) . | tee $(BENCH_DIR)/current.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_DIR)/baseline.txt $(BENCH_DIR)/current.txt; \
	else \
		$(GO) run ./cmd/benchdiff $(BENCH_DIR)/baseline.txt $(BENCH_DIR)/current.txt; \
	fi
