package genset

import (
	"testing"
	"time"

	"backuppower/internal/units"
)

func TestAnnualCost(t *testing.T) {
	// Table 2: 1 MW DG -> $83,300/yr (0.08 M$); 10 MW -> $833,000 (0.83 M$).
	if got := float64(New(units.Megawatt).AnnualCost()); !units.AlmostEqual(got, 83300, 1e-9) {
		t.Errorf("1MW DG cost = %v", got)
	}
	if got := float64(New(10 * units.Megawatt).AnnualCost()); !units.AlmostEqual(got, 833000, 1e-9) {
		t.Errorf("10MW DG cost = %v", got)
	}
	if got := None().AnnualCost(); got != 0 {
		t.Errorf("no DG cost = %v", got)
	}
}

func TestProvisioned(t *testing.T) {
	if None().Provisioned() {
		t.Error("None should not be provisioned")
	}
	if !New(units.Kilowatt).Provisioned() {
		t.Error("1KW DG should be provisioned")
	}
}

func TestValidate(t *testing.T) {
	if err := New(units.Megawatt).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := None().Validate(); err != nil {
		t.Errorf("none invalid: %v", err)
	}
	bad := New(units.Megawatt)
	bad.PowerCapacity = -1
	if bad.Validate() == nil {
		t.Error("negative capacity should fail")
	}
	bad = New(units.Megawatt)
	bad.TransferSteps = 0
	if bad.Validate() == nil {
		t.Error("zero steps should fail")
	}
	bad = New(units.Megawatt)
	bad.StartupDelay = 0
	if bad.Validate() == nil {
		t.Error("zero startup should fail")
	}
	bad = New(units.Megawatt)
	bad.FuelRuntime = 0
	if bad.Validate() == nil {
		t.Error("zero fuel should fail")
	}
}

func TestTransferTimeline(t *testing.T) {
	c := New(units.Megawatt)
	// Paper: overall transition ~2-3 minutes.
	done := c.TransferCompleteAt()
	if done < 2*time.Minute || done > 3*time.Minute {
		t.Errorf("transfer completes at %v, want 2-3m", done)
	}
	if got := c.SuppliedFraction(0); got != 0 {
		t.Errorf("fraction before startup = %v", got)
	}
	if got := c.SuppliedFraction(c.StartupDelay); got != 1.0/float64(c.TransferSteps) {
		t.Errorf("fraction at startup = %v", got)
	}
	if got := c.SuppliedFraction(done); got != 1 {
		t.Errorf("fraction at completion = %v", got)
	}
	if got := c.SuppliedFraction(time.Hour); got != 1 {
		t.Errorf("fraction steady state = %v", got)
	}
	if got := c.SuppliedFraction(c.FuelRuntime); got != 0 {
		t.Errorf("fraction after fuel out = %v", got)
	}
}

func TestSuppliedFractionMonotoneUntilFuelOut(t *testing.T) {
	c := New(units.Megawatt)
	prev := -1.0
	for at := time.Duration(0); at < c.TransferCompleteAt()+time.Minute; at += time.Second {
		f := c.SuppliedFraction(at)
		if f < prev {
			t.Fatalf("fraction decreased at %v: %v < %v", at, f, prev)
		}
		if f < 0 || f > 1 {
			t.Fatalf("fraction out of range at %v: %v", at, f)
		}
		prev = f
	}
}

func TestStepTimes(t *testing.T) {
	c := New(units.Megawatt)
	steps := c.StepTimes()
	if len(steps) != c.TransferSteps+1 {
		t.Fatalf("got %d step times, want %d", len(steps), c.TransferSteps+1)
	}
	if steps[0] != c.StartupDelay {
		t.Errorf("first step at %v, want %v", steps[0], c.StartupDelay)
	}
	if steps[len(steps)-1] != c.FuelRuntime {
		t.Errorf("last step should be fuel-out")
	}
	if None().StepTimes() != nil {
		t.Error("no DG should have no steps")
	}
	// Every step time must change the fraction vs just before it.
	for _, at := range steps[:len(steps)-1] {
		before := c.SuppliedFraction(at - time.Nanosecond)
		after := c.SuppliedFraction(at)
		if before == after {
			t.Errorf("step at %v changes nothing (%v)", at, after)
		}
	}
}

func TestCanCarry(t *testing.T) {
	c := New(units.Megawatt)
	if !c.CanCarry(units.Megawatt) {
		t.Error("should carry rated load")
	}
	if c.CanCarry(units.Megawatt + 1) {
		t.Error("should not carry above rating")
	}
	if None().CanCarry(1) {
		t.Error("no DG carries nothing")
	}
}
