// Package grid turns the paper's evaluation cross-products — techniques ×
// workloads × outage durations × cluster sizes × backup configurations
// (Figures 5-9, Tables 4-6) — into declarative sweep specs: a Spec names
// the axes, Compile expands it into a deterministic, ordered execution
// plan, and a Runner streams the plan's rows through the shared sweep
// engine in fixed-size shards. One spec drives every surface the repo
// exposes: POST /v1/sweep in internal/httpapi, the cmd/gridrun CLI, and
// the internal/experiments figure generators.
//
// Determinism is the contract, exactly as for internal/sweep: rows are
// always produced in plan order — the cross-product enumerates axes
// outermost-to-innermost as servers, workloads, configs, techniques,
// outages — regardless of the worker-pool width or shard size, so two
// runs of the same spec are byte-identical however they are parallelized
// or batched. Every row routes through core's shared scenario memo cache,
// so overlapping specs (and repeated runs) warm each other.
package grid

import (
	"fmt"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/cost"
	"backuppower/internal/outage"
	"backuppower/internal/technique"
	"backuppower/internal/workload"
)

// Ops a spec can request: one framework call per row.
const (
	// OpEvaluate runs one scenario per row (config × technique ×
	// workload × outage × servers): core.EvaluateCtx.
	OpEvaluate = "evaluate"
	// OpSize finds the min-cost UPS-only backup per row (technique ×
	// workload × outage × servers): core.MinCostUPSCtx. Configs must be
	// absent — the sizing search supplies the configuration.
	OpSize = "size"
	// OpBest races every technique behind a fixed config per row
	// (config × workload × outage × servers): core.BestForConfigCtx.
	// Techniques must be absent — the race supplies the technique.
	OpBest = "best"
)

// DefaultMaxRows bounds how many rows a compiled plan may hold before
// filtering. Oversize cross-products are a request mistake (or an abuse
// vector on the serving layer), not a workload; the bound is checked from
// the axis lengths alone, before any row is materialized.
const DefaultMaxRows = 100_000

// Spec declares a sweep grid. Axes with multiple values multiply (or zip);
// absent optional axes fall back to defaults. All quantities are
// human-readable strings parsed through internal/units, so a Spec is
// directly JSON-decodable — the wire format of POST /v1/sweep and
// cmd/gridrun -spec.
type Spec struct {
	// Op selects the per-row framework call: "evaluate" (default),
	// "size", or "best".
	Op string `json:"op,omitempty"`

	// Servers is the cluster-size axis (the paper's default testbed
	// scaled to each count). Empty means the runner's default scale.
	Servers []int `json:"servers,omitempty"`

	// Workloads names calibrated workloads (GET /v1/workloads). Required.
	Workloads []string `json:"workloads,omitempty"`

	// Configs is the backup-configuration axis: Table 3 names or custom
	// DG/UPS capacities. Required for evaluate and best; must be absent
	// for size. Named configurations scale with each row's cluster size.
	Configs []ConfigDTO `json:"configs,omitempty"`

	// Techniques is the technique axis. Required for evaluate and size
	// (unless TechniqueVariants is set); must be absent for best.
	Techniques []TechniqueDTO `json:"techniques,omitempty"`

	// TechniqueVariants replaces the Techniques axis with the full
	// Section 6 variant set the figures sweep (core.TechVariants), each
	// row labeled with its family — the axis behind Figures 6-9.
	TechniqueVariants bool `json:"technique_variants,omitempty"`

	// Outages is the outage-duration axis ("30s", "5m", "2h"). Either it
	// or OutageProcesses is required; never both.
	Outages []string `json:"outages,omitempty"`

	// OutageProcesses is the stochastic outage-process axis (ROADMAP
	// 4(a)): each entry is a seeded Monte-Carlo process whose drawn
	// yearly traces evaluate through core.EvaluateProcess instead of a
	// single point duration. Evaluate-only; mutually exclusive with
	// Outages.
	OutageProcesses []ProcessDTO `json:"outage_processes,omitempty"`

	// Zip pairs the axes element-wise instead of crossing them: every
	// present axis must have the same length L, and row i takes element
	// i of each. Absent axes contribute their default to every row.
	Zip bool `json:"zip,omitempty"`

	// Filter optionally drops rows from the expanded grid.
	Filter *Filter `json:"filter,omitempty"`

	// MaxRows tightens the compile-time row bound below the compiler's
	// (it can never loosen it). 0 means no request-side tightening.
	MaxRows int `json:"max_rows,omitempty"`
}

// Filter drops rows from an expanded grid before execution. Filtering
// happens after the row bound is checked: the bound is about the size of
// the declared product, the filter about which of its rows run.
type Filter struct {
	// MinOutage / MaxOutage keep only rows whose outage lies in the
	// inclusive band.
	MinOutage string `json:"min_outage,omitempty"`
	MaxOutage string `json:"max_outage,omitempty"`

	// SampleEvery keeps every k-th row of the expanded grid (by
	// pre-filter position) — cheap deterministic downsampling of a dense
	// product. 0 and 1 keep everything.
	SampleEvery int `json:"sample_every,omitempty"`
}

// Point is one fully resolved row of a compiled plan.
type Point struct {
	// Index is the row's position among the rows that survived
	// filtering — the order results stream in.
	Index int

	Servers  int
	Workload workload.Spec

	// Config is resolved against this row's cluster size (named Table 3
	// configurations scale with peak power). HasConfig is false for size
	// rows, where the search supplies the configuration.
	Config    cost.Backup
	HasConfig bool

	// Technique is nil for best rows, where the race supplies it.
	// Family is set when the spec used TechniqueVariants.
	Technique technique.Technique
	Family    string

	// Outage is the point outage duration; zero for process rows, where
	// Process carries the resolved stochastic outage process instead.
	Outage  time.Duration
	Process *outage.Process
}

// Plan is a compiled spec: the ordered rows plus the op they run.
type Plan struct {
	Op     string
	Points []Point
}

// CompileOptions parameterize Compile.
type CompileOptions struct {
	// DefaultServers is the cluster size used when the spec has no
	// servers axis (required, >= 1).
	DefaultServers int

	// MaxRows caps the expanded (pre-filter) row count; 0 means
	// DefaultMaxRows. A spec's own MaxRows can tighten but not exceed it.
	MaxRows int
}

// Compile expands a spec into its deterministic execution plan: axes are
// validated and resolved (every error is a typed *FieldError naming the
// offending field), the pre-filter row count is checked against the
// bound without materializing anything, and the surviving rows are
// enumerated in canonical order. Plans evaluate the paper's default
// testbed scaled to each row's server count.
func Compile(spec Spec, opt CompileOptions) (*Plan, error) {
	op := spec.Op
	if op == "" {
		op = OpEvaluate
	}
	switch op {
	case OpEvaluate, OpSize, OpBest:
	default:
		return nil, fieldErrf("invalid_field", "op",
			"unknown op %q (known: %s, %s, %s)", spec.Op, OpEvaluate, OpSize, OpBest)
	}

	// Axis applicability by op.
	if op == OpSize && len(spec.Configs) > 0 {
		return nil, fieldErrf("invalid_field", "configs",
			"configs do not apply to op %q — the sizing search supplies the configuration", op)
	}
	if op == OpBest && (len(spec.Techniques) > 0 || spec.TechniqueVariants) {
		return nil, fieldErrf("invalid_field", "techniques",
			"techniques do not apply to op %q — the race supplies the technique", op)
	}
	if spec.TechniqueVariants && len(spec.Techniques) > 0 {
		return nil, fieldErrf("invalid_field", "techniques",
			"give either an explicit techniques axis or technique_variants, not both")
	}
	if spec.TechniqueVariants && spec.Zip {
		return nil, fieldErrf("invalid_field", "technique_variants",
			"technique_variants cannot be zipped; use a cross-product spec")
	}
	if len(spec.OutageProcesses) > 0 {
		if len(spec.Outages) > 0 {
			return nil, fieldErrf("invalid_field", "outage_processes",
				"give either an outages axis or an outage_processes axis, not both")
		}
		if op != OpEvaluate {
			return nil, fieldErrf("invalid_field", "outage_processes",
				"outage processes do not apply to op %q — only %q evaluates a stochastic process", op, OpEvaluate)
		}
		if spec.Filter != nil && (spec.Filter.MinOutage != "" || spec.Filter.MaxOutage != "") {
			return nil, fieldErrf("invalid_field", "filter.min_outage",
				"outage-band filters do not apply to an outage_processes axis")
		}
	}

	// Servers axis (defaulted) and per-count environments.
	servers := spec.Servers
	if len(servers) == 0 {
		if opt.DefaultServers < 1 {
			return nil, fieldErrf("invalid_field", "servers",
				"no servers axis and no usable default (%d)", opt.DefaultServers)
		}
		servers = []int{opt.DefaultServers}
	}
	envs := make([]technique.Env, len(servers))
	for i, n := range servers {
		if n < 1 {
			return nil, fieldErrf("out_of_range", axisField("servers", i),
				"%d servers (need >= 1)", n)
		}
		envs[i] = technique.DefaultEnv(n)
	}

	// Workloads axis.
	if len(spec.Workloads) == 0 {
		return nil, fieldErrf("missing_field", "workloads", "at least one workload is required")
	}
	workloads := make([]workload.Spec, len(spec.Workloads))
	for i, name := range spec.Workloads {
		w, err := ResolveWorkload(name)
		if err != nil {
			return nil, refield(err, axisField("workloads", i))
		}
		workloads[i] = w
	}

	// Outage axis: point durations or stochastic processes, never both
	// (checked above).
	if len(spec.Outages) == 0 && len(spec.OutageProcesses) == 0 {
		return nil, fieldErrf("missing_field", "outages",
			"at least one outage duration (outages) or stochastic process (outage_processes) is required")
	}
	type outPoint struct {
		dur  time.Duration
		proc *outage.Process
	}
	outAxis := make([]outPoint, 0, len(spec.Outages)+len(spec.OutageProcesses))
	for i, s := range spec.Outages {
		d, err := ParseOutage(s)
		if err != nil {
			return nil, refield(err, axisField("outages", i))
		}
		outAxis = append(outAxis, outPoint{dur: d})
	}
	for i, d := range spec.OutageProcesses {
		p, err := ResolveProcess(d)
		if err != nil {
			return nil, refield(err, axisField("outage_processes", i))
		}
		outAxis = append(outAxis, outPoint{proc: p})
	}

	// Techniques axis (explicit instances or the figures' variant set).
	type techPoint struct {
		tech   technique.Technique
		family string
	}
	var techs []techPoint
	switch {
	case op == OpBest:
		techs = []techPoint{{}} // the race supplies the technique
	case spec.TechniqueVariants:
		for _, v := range core.New(1).TechVariants() {
			techs = append(techs, techPoint{tech: v.Tech, family: v.Family})
		}
	default:
		if len(spec.Techniques) == 0 {
			return nil, fieldErrf("missing_field", "techniques",
				"op %q needs a techniques axis (or technique_variants)", op)
		}
		deepest := len(technique.DefaultEnv(1).Server.PStates) - 1
		for i, d := range spec.Techniques {
			tech, err := ResolveTechnique(d, deepest)
			if err != nil {
				return nil, refield(err, axisField("techniques", i))
			}
			techs = append(techs, techPoint{tech: tech})
		}
	}

	// Configs axis, resolved per cluster size (named configurations
	// scale with the environment's peak power).
	nconfigs := len(spec.Configs)
	if op == OpSize {
		nconfigs = 1 // placeholder column: size rows carry no config
	} else if nconfigs == 0 {
		return nil, fieldErrf("missing_field", "configs",
			"op %q needs a configs axis: Table 3 names or custom capacities", op)
	}
	var configs [][]cost.Backup // [servers index][config index]
	if op != OpSize {
		configs = make([][]cost.Backup, len(envs))
		for si, env := range envs {
			configs[si] = make([]cost.Backup, len(spec.Configs))
			for ci, d := range spec.Configs {
				b, err := ResolveConfig(d, env.PeakPower())
				if err != nil {
					return nil, refield(err, axisField("configs", ci))
				}
				configs[si][ci] = b
			}
		}
	}

	// Row bound, from axis lengths alone (overflow-safe: every axis
	// length is bounded by the decoded spec's size, and the running
	// product is capped the moment it crosses the bound).
	maxRows := opt.MaxRows
	if maxRows <= 0 {
		maxRows = DefaultMaxRows
	}
	if spec.MaxRows < 0 {
		return nil, fieldErrf("out_of_range", "max_rows", "max_rows %d must be >= 0", spec.MaxRows)
	}
	if spec.MaxRows > 0 && spec.MaxRows < maxRows {
		maxRows = spec.MaxRows
	}
	lens := []int{len(servers), len(workloads), nconfigs, len(techs), len(outAxis)}
	var total int
	if spec.Zip {
		var err error
		if total, err = zipLength(spec, lens); err != nil {
			return nil, err
		}
	} else {
		total = 1
		for _, n := range lens {
			if total > maxRows/n {
				return nil, fieldErrf("too_many_rows", "max_rows",
					"grid expands past the %d-row bound (%s); shrink an axis, raise max_rows within the server's bound, or split the sweep",
					maxRows, productString(lens))
			}
			total *= n
		}
	}
	if total > maxRows {
		return nil, fieldErrf("too_many_rows", "max_rows",
			"grid expands to %d rows, past the %d-row bound; shrink an axis or split the sweep", total, maxRows)
	}

	filter, err := compileFilter(spec.Filter)
	if err != nil {
		return nil, err
	}

	// Enumerate. Cross order, outermost to innermost: servers,
	// workloads, configs, techniques, outages.
	plan := &Plan{Op: op}
	pre := 0
	add := func(si, wi, ci, ti, oi int) {
		p := Point{
			Servers:  servers[si],
			Workload: workloads[wi],
			Outage:   outAxis[oi].dur,
			Process:  outAxis[oi].proc,
		}
		if op != OpSize {
			p.Config, p.HasConfig = configs[si][ci], true
		}
		if op != OpBest {
			p.Technique, p.Family = techs[ti].tech, techs[ti].family
		}
		if filter.keep(pre, p) {
			p.Index = len(plan.Points)
			plan.Points = append(plan.Points, p)
		}
		pre++
	}
	if spec.Zip {
		pick := func(n, i int) int {
			if n == 1 {
				return 0
			}
			return i
		}
		for i := 0; i < total; i++ {
			add(pick(lens[0], i), pick(lens[1], i), pick(lens[2], i), pick(lens[3], i), pick(lens[4], i))
		}
	} else {
		for si := range servers {
			for wi := range workloads {
				for ci := 0; ci < nconfigs; ci++ {
					for ti := range techs {
						for oi := range outAxis {
							add(si, wi, ci, ti, oi)
						}
					}
				}
			}
		}
	}
	return plan, nil
}

// zipLength validates the zip contract: every axis longer than one row
// must agree on one length L (length-1 axes and defaults broadcast).
func zipLength(spec Spec, lens []int) (int, error) {
	names := []string{"servers", "workloads", "configs", "techniques", "outages"}
	if len(spec.OutageProcesses) > 0 {
		names[4] = "outage_processes"
	}
	L := 1
	for i, n := range lens {
		if n <= 1 {
			continue
		}
		if L == 1 {
			L = n
			continue
		}
		if n != L {
			return 0, fieldErrf("invalid_field", names[i],
				"zip axes disagree on length: %s has %d rows, earlier axes have %d", names[i], n, L)
		}
	}
	return L, nil
}

// compiledFilter is a Filter with its durations parsed.
type compiledFilter struct {
	minOutage, maxOutage time.Duration
	hasMax               bool
	sampleEvery          int
}

func compileFilter(f *Filter) (compiledFilter, error) {
	var c compiledFilter
	if f == nil {
		return c, nil
	}
	var err error
	if f.MinOutage != "" {
		if c.minOutage, err = parseFilterDuration(f.MinOutage, "filter.min_outage"); err != nil {
			return c, err
		}
	}
	if f.MaxOutage != "" {
		if c.maxOutage, err = parseFilterDuration(f.MaxOutage, "filter.max_outage"); err != nil {
			return c, err
		}
		c.hasMax = true
	}
	if f.SampleEvery < 0 {
		return c, fieldErrf("out_of_range", "filter.sample_every",
			"sample_every %d must be >= 0", f.SampleEvery)
	}
	c.sampleEvery = f.SampleEvery
	return c, nil
}

// keep reports whether the row at pre-filter position pre survives.
func (c compiledFilter) keep(pre int, p Point) bool {
	if p.Outage < c.minOutage {
		return false
	}
	if c.hasMax && p.Outage > c.maxOutage {
		return false
	}
	if c.sampleEvery > 1 && pre%c.sampleEvery != 0 {
		return false
	}
	return true
}

func axisField(axis string, i int) string {
	return fmt.Sprintf("%s[%d]", axis, i)
}

func productString(lens []int) string {
	return fmt.Sprintf("%d servers x %d workloads x %d configs x %d techniques x %d outages",
		lens[0], lens[1], lens[2], lens[3], lens[4])
}
