package multinode

import (
	"io"
	"net"
	"testing"

	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// fakeDest accepts one data connection, reads `readBytes` of it, then cuts
// the connection — a destination losing power mid-migration.
func fakeDest(t *testing.T, readBytes int64) (addr string, done chan struct{}) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done = make(chan struct{})
	go func() {
		defer close(done)
		defer ln.Close()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		io.CopyN(io.Discard, conn, readBytes)
		conn.Close() // power cut: no ack, stream dead
	}()
	return ln.Addr().String(), done
}

func TestMigrationDestinationPowerLoss(t *testing.T) {
	src, err := StartNode("src", 64*units.Mebibyte)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	cc, err := dialControl(src.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.conn.Close()

	addr, done := fakeDest(t, 16) // dies after one frame header
	rounds := []int64{int64(64 * units.Mebibyte)}
	_, err = cc.roundTrip(command{Op: "migrate", Dest: addr, Rounds: rounds, Scale: testScale})
	<-done
	if err == nil {
		t.Fatal("migration to a dying destination must fail")
	}
	// Crucially: the source must NOT have relinquished its state — the
	// cut-over ack never arrived, so the local copy stays authoritative.
	if src.Held() != 64*units.Mebibyte {
		t.Errorf("source lost state on failed migration: holds %v", src.Held())
	}
	if src.State() != "active" {
		t.Errorf("source state = %q", src.State())
	}
}

// ackLessDest reads the whole stream but sends a garbage ack byte.
func TestMigrationBadAck(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1<<16)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
			// Heuristically stop after the terminator would have arrived;
			// just answer with a wrong ack immediately.
			conn.Write([]byte{0})
			return
		}
	}()

	src, err := StartNode("src", units.Mebibyte)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	cc, err := dialControl(src.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.conn.Close()
	_, err = cc.roundTrip(command{Op: "migrate", Dest: ln.Addr().String(),
		Rounds: []int64{int64(units.Mebibyte)}, Scale: testScale})
	if err == nil {
		t.Fatal("garbage cut-over ack must fail the migration")
	}
	if src.Held() != units.Mebibyte {
		t.Error("source must keep its state after a bad ack")
	}
}

func TestDrillSurvivesAndCleansUpAfterNodeClose(t *testing.T) {
	// Closing a node's listeners before the drill makes the coordinator
	// fail loudly rather than hang or corrupt state.
	w := testWorkload()
	co, err := NewCoordinator(2, w, testScale)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	co.Nodes()[0].Close() // destination dies before the outage
	if _, err := co.RunOutageDrill(50 * units.MiBps); err == nil {
		t.Fatal("drill with a dead destination should fail")
	}
}

func testWorkload() workload.Spec {
	return workload.Memcached()
}
