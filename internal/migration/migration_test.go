package migration

import (
	"testing"
	"time"

	"backuppower/internal/units"
	"backuppower/internal/workload"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
}

func TestSpecjbbLiveMigrationCalibration(t *testing.T) {
	// Paper: "Specjbb takes 10 minutes to migrate".
	p := Live(DefaultConfig(), workload.Specjbb(), 1)
	if !p.Converged {
		t.Fatalf("specjbb live migration did not converge: %+v", p)
	}
	if p.Duration < 8*time.Minute || p.Duration > 12*time.Minute {
		t.Errorf("specjbb live migration = %v, want ~10m", p.Duration)
	}
	// Pre-copy re-sends dirty pages: must exceed the image size.
	if p.Transferred <= p.State {
		t.Errorf("transferred %v should exceed state %v", p.Transferred, p.State)
	}
	// Stop-and-copy pause stays small.
	if p.Downtime > 5*time.Second {
		t.Errorf("stop-copy downtime = %v", p.Downtime)
	}
}

func TestSpecjbbProactiveMigrationCalibration(t *testing.T) {
	// Paper: proactive migration cuts SPECjbb's state from 18 GB to
	// ~10 GB and migration time to ~5 minutes.
	p := Proactive(DefaultConfig(), workload.Specjbb(), 1)
	if p.State.GiB() < 6 || p.State.GiB() > 11 {
		t.Errorf("residue = %v, want ~8-10 GiB", p.State)
	}
	if p.Duration < 3*time.Minute || p.Duration > 7*time.Minute {
		t.Errorf("proactive migration = %v, want ~5m", p.Duration)
	}
	live := Live(DefaultConfig(), workload.Specjbb(), 1)
	if p.Duration >= live.Duration {
		t.Errorf("proactive %v should beat live %v", p.Duration, live.Duration)
	}
}

func TestMemcachedProactiveAlmostFree(t *testing.T) {
	// §6.2: low page-modification apps benefit most from proactive
	// migration.
	p := Proactive(DefaultConfig(), workload.Memcached(), 1)
	if p.Duration > 30*time.Second {
		t.Errorf("memcached proactive = %v, want seconds", p.Duration)
	}
	live := Live(DefaultConfig(), workload.Memcached(), 1)
	if float64(p.Duration) > 0.2*float64(live.Duration) {
		t.Errorf("memcached proactive %v should be <20%% of live %v", p.Duration, live.Duration)
	}
}

func TestAllWorkloadsMigrate(t *testing.T) {
	cfg := DefaultConfig()
	for _, w := range workload.All() {
		p := Live(cfg, w, 1)
		if p.Duration <= 0 {
			t.Errorf("%s live migration duration = %v", w.Name, p.Duration)
		}
		if p.Duration > 40*time.Minute {
			t.Errorf("%s live migration = %v, implausibly long", w.Name, p.Duration)
		}
		back := MigrateBack(cfg, w, 1)
		if back.Kind != "migrate-back" {
			t.Errorf("kind = %q", back.Kind)
		}
	}
}

func TestContentionSlowsMigration(t *testing.T) {
	cfg := DefaultConfig()
	solo := Live(cfg, workload.Memcached(), 1)
	shared := Live(cfg, workload.Memcached(), 4)
	if shared.Duration <= solo.Duration {
		t.Errorf("4-way shared %v should be slower than solo %v", shared.Duration, solo.Duration)
	}
}

func TestBackgroundBandwidthBounded(t *testing.T) {
	for _, w := range workload.All() {
		bw := BackgroundBandwidth(w)
		if bw < 0 {
			t.Errorf("%s negative background bw", w.Name)
		}
		// Must stay well under the NIC to be "no perceivable impact".
		if float64(bw) > 0.5*float64(units.GigabitEthernet) {
			t.Errorf("%s background bw %v too high", w.Name, bw)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.MigrationEfficiency = 0
	if bad.Validate() == nil {
		t.Error("zero efficiency should fail")
	}
	bad = DefaultConfig()
	bad.StopCopyThreshold = 0
	if bad.Validate() == nil {
		t.Error("zero threshold should fail")
	}
	bad = DefaultConfig()
	bad.MaxRounds = 0
	if bad.Validate() == nil {
		t.Error("zero rounds should fail")
	}
	bad = DefaultConfig()
	bad.PowerSpikeFraction = 2
	if bad.Validate() == nil {
		t.Error("spike fraction > 1 should fail")
	}
	bad = DefaultConfig()
	bad.Link.LineRate = 0
	if bad.Validate() == nil {
		t.Error("bad link should fail")
	}
}

func TestRateScalesWithSharers(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Rate(2) >= cfg.Rate(1) {
		t.Error("shared rate should drop")
	}
	if !units.AlmostEqual(float64(cfg.Rate(1)), 0.45*112.5e6, 1e-6) {
		t.Errorf("rate(1) = %v", cfg.Rate(1))
	}
}
