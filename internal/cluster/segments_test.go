package cluster

import (
	"testing"
	"time"

	"backuppower/internal/battery"
	"backuppower/internal/cost"
	"backuppower/internal/genset"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/ups"
	"backuppower/internal/workload"
)

func TestSegmentsTileHorizon(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	plan := technique.Hibernate{}.Plan(e, w, time.Hour)
	dg := genset.New(e.PeakPower())
	horizon := 20 * time.Minute
	segs := Segments(e, w, plan, dg, horizon)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	if segs[0].Start != 0 {
		t.Errorf("first start = %v", segs[0].Start)
	}
	if segs[len(segs)-1].End != horizon {
		t.Errorf("last end = %v", segs[len(segs)-1].End)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start != segs[i-1].End {
			t.Fatalf("gap between segments %d and %d", i-1, i)
		}
	}
	// Supply decomposition holds everywhere.
	for _, s := range segs {
		if !units.AlmostEqual(float64(s.Load), float64(s.DGSupply+s.UPSNeed), 1e-9) {
			t.Errorf("segment [%v,%v): load %v != dg %v + ups %v",
				s.Start, s.End, s.Load, s.DGSupply, s.UPSNeed)
		}
		if s.DGSupply < 0 || s.UPSNeed < 0 {
			t.Errorf("negative supply in segment %+v", s)
		}
	}
}

func TestSegmentsDGTakeover(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	plan := technique.Baseline{}.Plan(e, w, time.Hour)
	dg := genset.New(e.PeakPower())
	segs := Segments(e, w, plan, dg, 10*time.Minute)
	// Before DG start: UPS carries everything.
	first := segs[0]
	if first.DGSupply != 0 || first.UPSNeed != first.Load {
		t.Errorf("pre-start segment: %+v", first)
	}
	// After transfer completes: DG carries everything.
	last := segs[len(segs)-1]
	if last.UPSNeed != 0 || last.DGSupply != last.Load {
		t.Errorf("post-transfer segment: %+v", last)
	}
	// UPS share is non-increasing through the ramp.
	prev := first.UPSNeed
	for _, s := range segs {
		if s.UPSNeed > prev {
			t.Fatalf("UPS need grew at %v", s.Start)
		}
		prev = s.UPSNeed
	}
}

func TestSegmentsEmptyHorizon(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	plan := technique.Baseline{}.Plan(e, w, time.Hour)
	if segs := Segments(e, w, plan, genset.None(), 0); segs != nil {
		t.Errorf("zero horizon should yield nil, got %d", len(segs))
	}
}

func TestRequiredRuntimeMatchesSimulation(t *testing.T) {
	// The analytic sizing must agree with the simulator: provisioning
	// exactly the required runtime survives; 2% less does not.
	e := env()
	w := workload.Specjbb()
	tech := technique.Throttling{PState: 6}
	outage := 30 * time.Minute
	plan := tech.Plan(e, w, outage)
	tech2 := battery.LeadAcid()

	rated := units.Watts(0.6 * float64(e.PeakPower()))
	need, ok := RequiredRuntime(e, w, plan, genset.None(), outage, rated, tech2.PeukertExponent, tech2.MinLoadFraction)
	if !ok {
		t.Fatalf("sizing infeasible; plan peak %v vs rated %v", plan.PeakPower(), rated)
	}

	run := func(rt time.Duration) Result {
		b := Scenario{
			Env: e, Workload: w,
			Backup:    cost.Custom("custom", 0, rated, rt),
			Technique: tech, Outage: outage,
		}
		r, err := Simulate(b)
		if err != nil {
			t.Fatalf("simulate: %v", err)
		}
		return r
	}
	if r := run(need + time.Second); !r.Survived {
		t.Errorf("provisioning the required runtime %v should survive (crash %v)", need, r.CrashedAt)
	}
	if r := run(time.Duration(float64(need) * 0.98)); r.Survived && need > ups.NewConfig(rated, 0).Tech.FreeRunTime {
		t.Errorf("2%% less than required runtime %v should fail", need)
	}
}

func TestRequiredRuntimeInfeasible(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	plan := technique.Baseline{}.Plan(e, w, time.Hour)
	tech := battery.LeadAcid()
	// Rating below the plan's peak: impossible.
	_, ok := RequiredRuntime(e, w, plan, genset.None(), time.Hour, e.PeakPower()/4, tech.PeukertExponent, tech.MinLoadFraction)
	if ok {
		t.Error("under-rated UPS should be infeasible")
	}
	// Zero rating is feasible only for zero-draw plans.
	_, ok = RequiredRuntime(e, w, plan, genset.None(), time.Hour, 0, tech.PeukertExponent, tech.MinLoadFraction)
	if ok {
		t.Error("zero-power UPS should be infeasible for a live plan")
	}
	// With a full DG, the baseline needs only the bridge: zero UPS still
	// fails (the ramp needs power), but the requirement with a full-power
	// rating is only ~the ramp duration.
	dg := genset.New(e.PeakPower())
	need, ok := RequiredRuntime(e, w, plan, dg, time.Hour, e.PeakPower(), tech.PeukertExponent, tech.MinLoadFraction)
	if !ok {
		t.Fatal("full-power UPS behind DG should be feasible")
	}
	if need > 3*time.Minute {
		t.Errorf("bridge requirement = %v, want < 3m", need)
	}
}
