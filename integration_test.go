package backuppower_test

import (
	"context"
	"testing"
	"time"

	backuppower "backuppower"
	"backuppower/internal/core"
	"backuppower/internal/experiments"
	"backuppower/internal/multinode"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// TestEndToEndPipeline exercises the whole stack the way a capacity
// planner would: sample a year of outages, size a backup for the worst
// one, verify the sizing against the simulator, check the yearly
// availability of the result, and confirm the economics against the TCO
// model.
func TestEndToEndPipeline(t *testing.T) {
	fw := backuppower.NewFramework(32)
	w := backuppower.Specjbb()

	// 1. What's the worst outage in a sampled year?
	gen := backuppower.NewOutageGen(99)
	var worst time.Duration
	for _, ev := range gen.Year() {
		if ev.Duration > worst {
			worst = ev.Duration
		}
	}
	if worst == 0 {
		worst = 30 * time.Minute // quiet year: plan for the P90 anyway
	}

	// 2. Size the cheapest state-preserving backup for it.
	op, ok := fw.MinCostUPS(backuppower.ThrottleThenSave{
		PState: 6, Save: backuppower.SaveSleep, ActiveFraction: 0.1,
	}, w, worst)
	if !ok {
		t.Fatalf("sizing failed for %v", worst)
	}
	if !op.Result.Survived {
		t.Fatal("sized design must survive its design outage")
	}

	// 3. The sized backup holds up over 10 independent years.
	p := &backuppower.AvailabilityPlanner{
		Framework: fw, Workload: w, Backup: op.Backup,
	}
	sum, _, err := p.SimulateYears(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanStateLossesYear > 0.5 {
		t.Errorf("sized design loses state %.2fx/year", sum.MeanStateLossesYear)
	}

	// 4. The economics close: the design is far cheaper than MaxPerf and
	// its priced loss is finite.
	if op.NormCost >= 0.5 {
		t.Errorf("sized cost = %v, want well under MaxPerf", op.NormCost)
	}
	a, err := backuppower.NewTCO()
	if err != nil {
		t.Fatal(err)
	}
	if !a.ProfitableAt(90 * time.Minute) {
		t.Error("typical yearly outage exposure should be profitable without DGs")
	}
}

// TestPolicyAgainstSampledYear drives the adaptive policy through every
// outage of a sampled year and confirms it never loses state on a
// reasonably provisioned battery.
func TestPolicyAgainstSampledYear(t *testing.T) {
	fw := backuppower.NewFramework(32)
	w := backuppower.Memcached()
	u := backuppower.NewUPS(fw.Env.PeakPower(), 20*time.Minute)
	pol, err := backuppower.NewAdaptivePolicy(fw.Env, w, u)
	if err != nil {
		t.Fatal(err)
	}
	gen := backuppower.NewOutageGen(3)
	outages := 0
	for year := 0; year < 3; year++ {
		for _, ev := range gen.Year() {
			r, err := core.SimulatePolicy(pol, ev.Duration, 30*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			outages++
			if !r.Survived {
				t.Errorf("policy lost state on a %v outage (modes %v)", ev.Duration, r.Transitions)
			}
		}
	}
	if outages == 0 {
		t.Skip("sampled years had no outages")
	}
}

// TestExperimentsAllRun executes every registered experiment end-to-end —
// the same entry points cmd/experiments and the benchmarks use.
func TestExperimentsAllRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	for _, e := range experiments.Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb := e.Run(context.Background())
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if tb.String() == "" {
				t.Fatalf("%s rendered empty", e.ID)
			}
		})
	}
}

// TestMultinodeMatchesModel cross-checks the socket-level drill against
// the analytic migration model: the number of pre-copy rounds the wire
// protocol carries must match what the memory model predicts.
func TestMultinodeMatchesModel(t *testing.T) {
	w := workload.Specjbb()
	co, err := multinode.NewCoordinator(2, w, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	rep, err := co.RunOutageDrill(54 * units.MiBps)
	if err != nil {
		t.Fatal(err)
	}
	// The analytic model for SPECjbb at this rate converges in ~9-11
	// rounds (the 10-minute migration); the wire protocol must agree.
	rounds := rep.Migrations[0].Rounds
	if rounds < 8 || rounds > 12 {
		t.Errorf("wire rounds = %d, model predicts ~10", rounds)
	}
}
