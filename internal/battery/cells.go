package battery

import (
	"fmt"
	"math"
	"time"

	"backuppower/internal/units"
)

// This file models the cell-level composition behind the pack abstraction —
// the mechanics of the Ragone-plot observation in Section 3: "while
// composing the battery cells to achieve a certain amount of battery power,
// we would automatically get some amount of inherent base battery energy
// capacity for free". A bank built from enough cells to source a power
// rating (C-rate and voltage-sag limited) necessarily embeds energy; that
// embedded energy IS the FreeRunTime of the pack model.

// Cell is a single electrochemical unit.
type Cell struct {
	Chemistry string
	// NominalVoltage and CapacityAh define the cell's nominal energy.
	NominalVoltage float64
	CapacityAh     float64
	// InternalResistance causes voltage sag under load and bounds the
	// usable discharge current together with MaxCRate.
	InternalResistance float64 // ohms
	// MaxCRate is the maximum continuous discharge in multiples of the
	// one-hour capacity current.
	MaxCRate float64
	// Peukert is the chemistry's discharge nonlinearity exponent.
	Peukert float64
	// Cost is the procurement cost per cell.
	Cost float64
}

// VRLABlock is a 12 V 9 Ah valve-regulated lead-acid brick, the building
// block of rack UPS trays (APC RBC class).
func VRLABlock() Cell {
	return Cell{
		Chemistry:          "lead-acid",
		NominalVoltage:     12,
		CapacityAh:         9,
		InternalResistance: 0.025,
		MaxCRate:           4,
		Peukert:            LeadAcid().PeukertExponent,
		Cost:               30,
	}
}

// LiIon18650 is a 3.6 V 2.5 Ah cylindrical Li-ion cell.
func LiIon18650() Cell {
	return Cell{
		Chemistry:          "li-ion",
		NominalVoltage:     3.6,
		CapacityAh:         2.5,
		InternalResistance: 0.035,
		MaxCRate:           3,
		Peukert:            LiIon().PeukertExponent,
		Cost:               4,
	}
}

// Validate checks the cell parameters.
func (c Cell) Validate() error {
	switch {
	case c.NominalVoltage <= 0 || c.CapacityAh <= 0:
		return fmt.Errorf("battery: cell %s has non-positive ratings", c.Chemistry)
	case c.InternalResistance < 0:
		return fmt.Errorf("battery: cell %s negative resistance", c.Chemistry)
	case c.MaxCRate <= 0:
		return fmt.Errorf("battery: cell %s non-positive C-rate", c.Chemistry)
	case c.Peukert < 1:
		return fmt.Errorf("battery: cell %s Peukert < 1", c.Chemistry)
	}
	return nil
}

// EnergyWh is the cell's nominal energy.
func (c Cell) EnergyWh() float64 { return c.NominalVoltage * c.CapacityAh }

// Bank is a series-parallel arrangement of identical cells.
type Bank struct {
	Cell     Cell
	Series   int // cells per string (sets bus voltage)
	Parallel int // strings (sets current / capacity)
}

// Validate checks the arrangement.
func (b Bank) Validate() error {
	if err := b.Cell.Validate(); err != nil {
		return err
	}
	if b.Series < 1 || b.Parallel < 1 {
		return fmt.Errorf("battery: bank %dS%dP invalid", b.Series, b.Parallel)
	}
	return nil
}

// Cells is the total cell count.
func (b Bank) Cells() int { return b.Series * b.Parallel }

// Voltage is the nominal bus voltage.
func (b Bank) Voltage() float64 { return b.Cell.NominalVoltage * float64(b.Series) }

// CapacityAh is the bank's nominal capacity.
func (b Bank) CapacityAh() float64 { return b.Cell.CapacityAh * float64(b.Parallel) }

// EnergyWh is the bank's nominal energy.
func (b Bank) EnergyWh() float64 { return b.Cell.EnergyWh() * float64(b.Cells()) }

// InternalResistance is the bank's equivalent series resistance.
func (b Bank) InternalResistance() float64 {
	return b.Cell.InternalResistance * float64(b.Series) / float64(b.Parallel)
}

// MaxPower is the continuous power the bank can deliver, limited by the
// chemistry's C-rate and derated by the resistive sag at that current.
func (b Bank) MaxPower() units.Watts {
	i := b.CapacityAh() * b.Cell.MaxCRate // amps
	v := b.Voltage() - i*b.InternalResistance()
	if v < 0 {
		v = 0
	}
	return units.Watts(v * i)
}

// SagFraction is the relative voltage drop when delivering the given load.
func (b Bank) SagFraction(load units.Watts) float64 {
	v := b.Voltage()
	if v <= 0 || load <= 0 {
		return 0
	}
	i := float64(load) / v // first-order current estimate
	return i * b.InternalResistance() / v
}

// Efficiency is the fraction of chemical energy delivered to the bus at
// the given load (the rest heats the cells).
func (b Bank) Efficiency(load units.Watts) float64 {
	return units.Clamp01(1 - b.SagFraction(load))
}

// Cost is the bank's cell procurement cost.
func (b Bank) Cost() float64 { return float64(b.Cells()) * b.Cell.Cost }

// Pack converts the bank into the framework's pack abstraction: the rated
// power is the bank's C-rate-limited max, and the rated runtime is the
// efficiency-derated nominal energy delivered at that power.
func (b Bank) Pack() Pack {
	tech := LeadAcid()
	if b.Cell.Chemistry == "li-ion" {
		tech = LiIon()
	}
	tech.PeukertExponent = b.Cell.Peukert
	power := b.MaxPower()
	if power <= 0 {
		return Pack{Tech: tech}
	}
	usable := b.EnergyWh() * b.Efficiency(power)
	runtime := units.WattHours(usable).AtPower(power)
	return Pack{Tech: tech, RatedPower: power, RatedRuntime: runtime}
}

// Compose builds the smallest bank of the given cell meeting a power and
// runtime requirement on a target bus voltage. It returns an error when the
// cell cannot reach the bus voltage. This is the constructive version of
// the Ragone argument: the parallel count needed for power alone already
// carries FreeRuntime()'s worth of energy.
func Compose(cell Cell, busVoltage float64, power units.Watts, runtime time.Duration) (Bank, error) {
	if err := cell.Validate(); err != nil {
		return Bank{}, err
	}
	if busVoltage < cell.NominalVoltage {
		return Bank{}, fmt.Errorf("battery: bus %v V below cell voltage %v V", busVoltage, cell.NominalVoltage)
	}
	if power <= 0 || runtime <= 0 {
		return Bank{}, fmt.Errorf("battery: non-positive requirement %v / %v", power, runtime)
	}
	series := int(math.Ceil(busVoltage / cell.NominalVoltage))

	// Strings needed for power: current at the bus / per-string C-limit.
	v := cell.NominalVoltage * float64(series)
	perStringI := cell.CapacityAh * cell.MaxCRate
	forPower := int(math.Ceil(float64(power) / (v * perStringI)))

	// Strings needed for energy at the requested (power, runtime) point,
	// accounting for the Peukert penalty of running above the 1-hour
	// rate. Iterate: the parallel count changes the per-string load.
	parallel := forPower
	for iter := 0; iter < 32; iter++ {
		b := Bank{Cell: cell, Series: series, Parallel: parallel}
		if b.deliverable(power) >= runtime {
			break
		}
		parallel++
	}
	b := Bank{Cell: cell, Series: series, Parallel: parallel}
	if b.deliverable(power) < runtime {
		// Close the remaining gap directly from the energy ratio.
		need := float64(runtime) / float64(b.deliverable(power))
		parallel = int(math.Ceil(float64(parallel) * need))
		b = Bank{Cell: cell, Series: series, Parallel: parallel}
	}
	if b.MaxPower() < power {
		return Bank{}, fmt.Errorf("battery: composed bank %dS%dP cannot source %v", series, parallel, power)
	}
	return b, nil
}

// deliverable is how long the bank sustains the load, with Peukert stretch
// relative to the C-rate-limited maximum and resistive derating.
func (b Bank) deliverable(load units.Watts) time.Duration {
	p := b.Pack()
	return p.RuntimeAt(load)
}

// FreeRuntime is the runtime the bank delivers at its own maximum power —
// the energy that came along for free with the power rating.
func (b Bank) FreeRuntime() time.Duration {
	return b.deliverable(b.MaxPower())
}
