package experiments

import (
	"context"
	"fmt"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/grid"
	"backuppower/internal/report"
	"backuppower/internal/tco"
	"backuppower/internal/workload"
)

// fig5Durations are the outage durations of Figure 5.
var fig5Durations = []time.Duration{
	30 * time.Second, 5 * time.Minute, 30 * time.Minute, time.Hour, 2 * time.Hour,
}

// fig5ConfigNames are the six Table 3 configurations Figure 5 plots, in
// presentation order.
var fig5ConfigNames = []string{
	"MaxPerf", "DG-SmallPUPS", "LargeEUPS", "NoDG", "SmallP-LargeEUPS", "MinCost",
}

// outageStrings renders durations as grid-spec axis values.
func outageStrings(ds []time.Duration) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

// configAxis renders Table 3 names as grid-spec axis values.
func configAxis(names []string) []grid.ConfigDTO {
	out := make([]grid.ConfigDTO, len(names))
	for i, n := range names {
		out[i] = grid.ConfigDTO{Name: n}
	}
	return out
}

// runGrid compiles and runs a figure's declarative spec against the
// default framework. The cross-product enumerates configs (or technique
// variants) outside outages, so rows come back config-major — the order
// the figure tables fold in.
func runGrid(ctx context.Context, spec grid.Spec) ([]grid.RowResult, error) {
	f := framework()
	plan, err := grid.Compile(spec, grid.CompileOptions{DefaultServers: f.Env.Servers})
	if err != nil {
		return nil, err
	}
	return grid.NewRunner(f).Run(ctx, plan, grid.RunOptions{})
}

// Fig5 reproduces the configuration trade-off study for SPECjbb: for every
// configuration and outage duration, the best technique's performance and
// down time (Figure 5's selection rule), plus the configuration cost. The
// 6×5 (configuration, duration) study is a declarative grid spec — op
// "best" crossing the six Table 3 configurations with the five durations —
// run through the shared grid engine; rows come back in spec order, so the
// table matches a serial run (and the pre-grid loop) byte for byte.
func Fig5(ctx context.Context) report.Table {
	t := report.Table{
		Title:   "Figure 5: cost/performance/downtime of configurations (SPECjbb)",
		Columns: []string{"configuration", "cost", "outage", "best technique", "perf", "downtime"},
	}
	f := framework()
	rows, err := runGrid(ctx, grid.Spec{
		Op:        grid.OpBest,
		Workloads: []string{workload.Specjbb().Name},
		Configs:   configAxis(fig5ConfigNames),
		Outages:   outageStrings(fig5Durations),
	})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	for _, r := range rows {
		name := r.Best
		if name == "" {
			name = "-"
		}
		t.AddRow(r.Point.Config.Name, r.Point.Config.NormalizedCost(f.Env.PeakPower()), r.Point.Outage, name,
			r.Result.Perf, report.DurationBand(r.Result.DowntimeMin, r.Result.DowntimeMax))
	}
	t.Notes = append(t.Notes,
		"paper: LargeEUPS matches MaxPerf perf to 30m at 0.55 cost; NoDG dies past ~2m; MinCost ~400s down even for 30s")
	return t
}

// figTechniques renders the Figures 6-9 layout for one workload: for each
// outage duration and technique family, the min-cost operating band. The
// study is a declarative grid spec — op "size" crossing the full technique
// variant set with the durations; the grid enumerates variant-major, so the
// fold regroups rows per duration (row of variant ti, duration di sits at
// ti*len(durations)+di) and reduces them through the same family fold the
// framework's own sweep uses, keeping the table byte-identical to it.
func figTechniques(ctx context.Context, title string, w workload.Spec, durations []time.Duration) report.Table {
	t := report.Table{
		Title:   title,
		Columns: []string{"outage", "technique", "cost", "perf", "downtime"},
	}
	rows, err := runGrid(ctx, grid.Spec{
		Op:                grid.OpSize,
		Workloads:         []string{w.Name},
		TechniqueVariants: true,
		Outages:           outageStrings(durations),
	})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	nvariants := len(rows) / len(durations)
	for di, d := range durations {
		points := make([]core.VariantPoint, 0, nvariants)
		for ti := 0; ti < nvariants; ti++ {
			r := rows[ti*len(durations)+di]
			points = append(points, core.VariantPoint{Family: r.Point.Family, Op: r.Sizing, OK: r.Feasible})
		}
		for _, s := range core.FoldSummaries(points) {
			if !s.Feasible {
				t.AddRow(d, s.Technique, "infeasible", "-", "-")
				continue
			}
			t.AddRow(d, s.Technique,
				report.Band(s.Cost.Min, s.Cost.Max),
				report.Band(s.Perf.Min, s.Perf.Max),
				report.DurationBand(s.Downtime.Min, s.Downtime.Max))
		}
	}
	return t
}

// Fig6 reproduces the SPECjbb technique study across five durations.
func Fig6(ctx context.Context) report.Table {
	t := figTechniques(ctx, "Figure 6: outage duration impact on techniques (SPECjbb)",
		workload.Specjbb(), fig5Durations)
	t.Notes = append(t.Notes,
		"paper: throttling best for short outages; Throttle+Sleep-L for medium; sustain-execution infeasible below ~0.56 cost at 2h")
	return t
}

// Fig7 reproduces the Memcached study (short/medium/long).
func Fig7(ctx context.Context) report.Table {
	t := figTechniques(ctx, "Figure 7: trade-offs for Memcached",
		workload.Memcached(), []time.Duration{30 * time.Second, 30 * time.Minute, 2 * time.Hour})
	t.Notes = append(t.Notes,
		"paper: hibernation (1140s) worse than crash+reload (480s); throttling perf better than SPECjbb; proactive migration ~20% extra savings")
	return t
}

// Fig8 reproduces the Web-search study.
func Fig8(ctx context.Context) report.Table {
	t := figTechniques(ctx, "Figure 8: trade-offs for Web-search",
		workload.WebSearch(), []time.Duration{30 * time.Second, 30 * time.Minute, 2 * time.Hour})
	t.Notes = append(t.Notes,
		"paper: losing memory hurts (600s down for MinCost vs 400s for hibernation)")
	return t
}

// Fig9 reproduces the SpecCPU study.
func Fig9(ctx context.Context) report.Table {
	t := figTechniques(ctx, "Figure 9: trade-offs for SpecCPU (mcf x 8)",
		workload.SpecCPU(), []time.Duration{30 * time.Second, 30 * time.Minute, 2 * time.Hour})
	t.Notes = append(t.Notes,
		"paper: crash downtime spans a large range depending on where in the run the outage hits")
	return t
}

// Fig10 reproduces the TCO cross-over analysis.
func Fig10(context.Context) report.Table {
	t := report.Table{
		Title:   "Figure 10: revenue loss vs DG savings (Google 2011)",
		Columns: []string{"yearly outage", "loss $/KW/yr", "DG savings $/KW/yr", "profitable"},
	}
	a, err := tco.NewAnalysis(tco.DefaultGoogle2011(), 83.3)
	if err != nil {
		t.Notes = append(t.Notes, "analysis failed: "+err.Error())
		return t
	}
	for _, p := range a.Series(8*time.Hour, time.Hour) {
		t.AddRow(p.PerYear, fmt.Sprintf("%.1f", p.Loss), fmt.Sprintf("%.1f", p.Savings),
			fmt.Sprintf("%v", p.Profitab))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cross-over at %s/year (paper: ~5 hours)", report.FormatDuration(a.Crossover())))
	return t
}
