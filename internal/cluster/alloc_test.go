package cluster

import (
	"testing"
	"time"

	"backuppower/internal/cost"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// allocScenarios covers the structurally distinct hot paths: a plain
// throttle plan (few phases, DG transfer steps), a hibernate save plan
// (fixed phases, state-safe tail), and a migration plan (long fixed
// phase) — with and without a DG in the backup.
func allocScenarios() []Scenario {
	e := env()
	peak := e.PeakPower()
	return []Scenario{
		scn(cost.LargeEUPS(peak), technique.ThrottleThenSave{PState: 6, Save: technique.SaveSleep, ActiveFraction: 0.5}, workload.Specjbb(), time.Hour),
		scn(cost.MaxPerf(peak), technique.Baseline{}, workload.Specjbb(), 30*time.Minute),
		scn(cost.NoDG(peak), technique.Hibernate{}, workload.WebSearch(), 30*time.Minute),
		scn(cost.SmallPUPS(peak), technique.Sleep{LowPower: true}, workload.Memcached(), 2*time.Hour),
	}
}

// TestAggregatePathAllocFree pins the aggregate simulation core at zero
// heap allocations per call once the plan is in hand: the segment cursor,
// the mean accumulator and the UPS state are all stack values. A regression
// here (an escape introduced into simulatePlan, the cursor, or the battery
// model) turns every sweep's inner loop back into a GC workload.
func TestAggregatePathAllocFree(t *testing.T) {
	for _, s := range allocScenarios() {
		s := s
		plan := s.Technique.Plan(s.Env, s.Workload, s.Outage)
		got := testing.AllocsPerRun(100, func() {
			var rec recorder
			if _, err := simulatePlan(s, plan, &rec); err != nil {
				t.Fatal(err)
			}
		})
		if got != 0 {
			t.Errorf("%s/%s: simulatePlan allocates %.0f objects/op, want 0", plan.Technique, s.Backup.Name, got)
		}
	}
}

// TestRequiredRuntimeAllocFree pins the sizing sweep's innermost call —
// it runs tens of times per candidate rating, hundreds per MinCostUPS.
func TestRequiredRuntimeAllocFree(t *testing.T) {
	for _, s := range allocScenarios() {
		s := s
		plan := s.Technique.Plan(s.Env, s.Workload, s.Outage)
		got := testing.AllocsPerRun(100, func() {
			RequiredRuntime(s.Env, s.Workload, plan, s.Backup.DG, s.Outage, 10*units.Kilowatt, 1.15, 0.05)
		})
		if got != 0 {
			t.Errorf("%s/%s: RequiredRuntime allocates %.0f objects/op, want 0", plan.Technique, s.Backup.Name, got)
		}
	}
}

// TestBatchWalkAllocFree pins the batch kernel's per-point cost at zero
// heap allocations: widening the axis 16× must not change the allocation
// count at all, because each cut is served by a stack snapshot of the
// walk state — the only allocations are the result/cut slices and the
// single plan, whose count is independent of the axis length.
func TestBatchWalkAllocFree(t *testing.T) {
	e := env()
	peak := e.PeakPower()
	axis := func(n int) []time.Duration {
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = time.Minute + time.Duration(i)*(8*time.Hour-time.Minute)/time.Duration(n)
		}
		return out
	}
	for _, tech := range []technique.Technique{technique.Sleep{}, technique.Hibernate{}, technique.Throttling{PState: 3}} {
		for _, b := range []cost.Backup{cost.LargeEUPS(peak), cost.NoDG(peak), cost.DGSmallPUPS(peak)} {
			s := scn(b, tech, workload.Specjbb(), time.Hour)
			measure := func(outages []time.Duration) float64 {
				return testing.AllocsPerRun(50, func() {
					if _, err := SimulateOutageBatch(s, outages); err != nil {
						t.Fatal(err)
					}
				})
			}
			small, large := measure(axis(8)), measure(axis(128))
			if small != large {
				t.Errorf("%s/%s: batch allocations grow with the axis: %.0f at 8 points vs %.0f at 128 — per-point walk is no longer allocation-free",
					tech.Name(), b.Name, small, large)
			}
		}
	}
}

// TestSimulateAggregateAllocBound bounds the full entry point: everything
// it allocates must come from the technique's plan construction (a phase
// slice plus per-technique scratch), not from the simulation itself. The
// bound is deliberately loose enough for plan-building changes but tight
// enough to catch the trace/map/sort allocations this path was built to
// shed (the old path cost 15+).
func TestSimulateAggregateAllocBound(t *testing.T) {
	const maxAllocs = 8
	for _, s := range allocScenarios() {
		s := s
		got := testing.AllocsPerRun(100, func() {
			if _, err := SimulateAggregate(s); err != nil {
				t.Fatal(err)
			}
		})
		if got > maxAllocs {
			t.Errorf("%s: SimulateAggregate allocates %.0f objects/op, want <= %d", s.Backup.Name, got, maxAllocs)
		}
	}
}
