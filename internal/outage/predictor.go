package outage

import (
	"fmt"
	"time"
)

// Predictor is the Section 7 online outage-duration predictor: a Markov
// chain whose states are the duration buckets of the historical
// distribution. As an outage evolves, the predictor conditions on the
// elapsed time and yields the probability of reaching each further bucket
// and the expected remaining duration — the signals an adaptive policy
// uses to decide when to stop throttling and start saving state.
//
// The chain can also learn online: Observe folds completed outages into
// the bucket counts, so a datacenter's own utility history gradually
// replaces the national prior.
type Predictor struct {
	dist   Distribution
	counts []float64 // per-bucket observation weights (pseudo-counts)
	prior  float64   // weight given to the historical prior
}

// NewPredictor builds a predictor seeded with the historical distribution
// as a prior worth priorWeight observations.
func NewPredictor(dist Distribution, priorWeight float64) (*Predictor, error) {
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	if priorWeight <= 0 {
		return nil, fmt.Errorf("outage: non-positive prior weight %v", priorWeight)
	}
	p := &Predictor{dist: dist, prior: priorWeight, counts: make([]float64, len(dist.Buckets))}
	for i, b := range dist.Buckets {
		p.counts[i] = b.Prob * priorWeight
	}
	return p, nil
}

// Observe records a completed outage of the given duration.
func (p *Predictor) Observe(d time.Duration) {
	for i, b := range p.dist.Buckets {
		if d < b.Hi || i == len(p.dist.Buckets)-1 {
			p.counts[i]++
			return
		}
	}
}

// Posterior returns the current bucketed distribution (prior + observed).
func (p *Predictor) Posterior() Distribution {
	total := 0.0
	for _, c := range p.counts {
		total += c
	}
	out := Distribution{Name: p.dist.Name + "-posterior", Buckets: make([]Bucket, len(p.dist.Buckets))}
	for i, b := range p.dist.Buckets {
		out.Buckets[i] = Bucket{Lo: b.Lo, Hi: b.Hi, Prob: p.counts[i] / total}
	}
	return out
}

// TransitionMatrix returns the Markov chain over buckets: M[i][j] is the
// probability that an outage that has survived to the END of bucket i's
// range ends within bucket j (j > i), normalized over the surviving mass.
// Row i of the matrix is what the paper's "online Markov chain based
// transition matrix of different duration" refers to.
func (p *Predictor) TransitionMatrix() [][]float64 {
	d := p.Posterior()
	n := len(d.Buckets)
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n)
		surv := d.Survival(d.Buckets[i].Lo)
		if surv <= 1e-12 {
			m[i][i] = 1
			continue
		}
		for j := i; j < n; j++ {
			v := d.Buckets[j].Prob / surv
			if v > 1 {
				v = 1 // guard the floating-point division
			}
			m[i][j] = v
		}
	}
	return m
}

// RemainingQuantile conditions on elapsed outage time.
func (p *Predictor) RemainingQuantile(elapsed time.Duration, q float64) time.Duration {
	return p.Posterior().RemainingQuantile(elapsed, q)
}

// ExpectedRemaining conditions on elapsed outage time.
func (p *Predictor) ExpectedRemaining(elapsed time.Duration) time.Duration {
	return p.Posterior().ExpectedRemaining(elapsed)
}

// ProbEndsWithin conditions on elapsed outage time.
func (p *Predictor) ProbEndsWithin(elapsed, window time.Duration) float64 {
	return p.Posterior().ProbEndsWithin(elapsed, window)
}

// PredictBucket returns the index of the bucket the outage most likely
// ends in, conditioned on the elapsed time.
func (p *Predictor) PredictBucket(elapsed time.Duration) int {
	d := p.Posterior()
	best, bestP := len(d.Buckets)-1, -1.0
	surv := d.Survival(elapsed)
	for i, b := range d.Buckets {
		if b.Hi <= elapsed {
			continue
		}
		mass := b.Prob
		if b.Lo < elapsed {
			mass *= float64(b.Hi-elapsed) / float64(b.Hi-b.Lo)
		}
		if surv > 0 {
			mass /= surv
		}
		if mass > bestP {
			best, bestP = i, mass
		}
	}
	return best
}
