package core

import (
	"fmt"
	"time"

	"backuppower/internal/battery"
	"backuppower/internal/cluster"
	"backuppower/internal/cost"
	"backuppower/internal/simkit"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// PolicyResult is the outcome of running the adaptive policy through one
// outage whose duration the policy did NOT know in advance.
type PolicyResult struct {
	Outage   time.Duration
	Survived bool
	// Perf is the mean normalized performance over the outage window.
	Perf float64
	// Downtime spans the outage and the post-restore recovery.
	Downtime time.Duration
	// Transitions lists the modes entered, in order.
	Transitions []Mode
	// FinalMode is where the escalation ended.
	FinalMode Mode
}

// SimulatePolicy drives an AdaptivePolicy through an outage step by step:
// at every decision interval it consults the policy (which sees only the
// elapsed time and battery charge), applies mode transitions with their
// real costs (suspend times, save times, migration), drains the battery
// through the Peukert model, and scores the result exactly the way the
// scenario simulator scores fixed plans. This answers Section 7's first
// challenge quantitatively: how close does an online policy get to the
// oracle that knows the outage duration?
func SimulatePolicy(pol *AdaptivePolicy, outage, step time.Duration) (PolicyResult, error) {
	if pol == nil {
		return PolicyResult{}, fmt.Errorf("core: nil policy")
	}
	if outage <= 0 || step <= 0 {
		return PolicyResult{}, fmt.Errorf("core: non-positive outage/step")
	}
	env, w := pol.Env, pol.Workload
	pack := pol.UPS.Pack()
	var state battery.State

	res := PolicyResult{Outage: outage, Survived: true}
	perf := simkit.NewTrace("policy-perf", 0)

	var (
		elapsed   time.Duration
		unavail   time.Duration
		crashed   bool
		saved     bool // hibernate image persisted
		inTransit time.Duration
		transitTo Mode = -1
	)
	mode := ModeFullService
	record := func(m Mode) {
		if len(res.Transitions) == 0 || res.Transitions[len(res.Transitions)-1] != m {
			res.Transitions = append(res.Transitions, m)
		}
	}
	record(mode)

	for elapsed < outage && !crashed {
		// Finish any in-flight transition first.
		if inTransit <= 0 && transitTo < 0 {
			d := pol.Decide(elapsed, state.Remaining())
			if d.Mode != mode {
				transitTo = d.Mode
				inTransit = transitionTime(env, w, mode, d.Mode)
				if inTransit == 0 {
					mode = d.Mode
					record(mode)
					transitTo = -1
				}
			}
		}

		dt := step
		if elapsed+dt > outage {
			dt = outage - elapsed
		}
		var load units.Watts
		var level float64
		var available bool
		switch {
		case transitTo >= 0:
			load = transitionPower(env, w, mode, transitTo)
			level, available = 0, false
			if transitTo == ModeConsolidated {
				// Migration keeps serving while copying.
				level, available = pol.ModePerf(mode)*0.9, true
			}
			if dt > inTransit {
				dt = inTransit
			}
		default:
			load = pol.ModePower(mode)
			level = pol.ModePerf(mode)
			available = level > 0
			if mode == ModeHibernate {
				saved = true
			}
		}

		perf.Set(elapsed, level)
		sustained := dt
		if load > 0 {
			if !pol.UPS.CanCarry(load) {
				crashed = true
				sustained = 0
			} else {
				sustained = state.Drain(pack, load, dt)
			}
		}
		if !available {
			unavail += sustained
		}
		elapsed += sustained
		if transitTo >= 0 {
			inTransit -= sustained
			if inTransit <= 0 {
				mode = transitTo
				record(mode)
				if mode == ModeHibernate {
					saved = true
				}
				transitTo = -1
			}
		}
		if sustained < dt {
			// Battery died (or the cap was violated) mid-step.
			if saved && (mode == ModeHibernate || transitTo == ModeHibernate) && inTransit <= 0 {
				// State already on disk; going dark is safe.
				perf.Set(elapsed, 0)
				unavail += outage - elapsed
				elapsed = outage
				break
			}
			crashed = true
			perf.Set(elapsed, 0)
			unavail += outage - elapsed
			elapsed = outage
		}
	}

	res.FinalMode = mode
	perf.Set(outage, perf.At(outage))
	res.Perf = perf.Mean(0, outage)

	// Post-restore accounting mirrors the scenario simulator.
	switch {
	case crashed:
		res.Survived = false
		lo, hi := technique.CrashRecovery(env, w)
		res.Downtime = unavail + (lo+hi)/2
	case mode == ModeHibernate || (saved && mode != ModeFullService && mode != ModeThrottled):
		res.Downtime = unavail + technique.Hibernate{LowPower: true}.ResumeTime(env, w)
	case mode == ModeSleep:
		res.Downtime = unavail + env.Server.ResumeFromSleep
	case mode == ModeConsolidated:
		res.Downtime = unavail + 5*time.Second // stop-and-copy pauses
	default:
		res.Downtime = unavail
	}
	pol.Reset(outage)
	return res, nil
}

// transitionTime is how long entering `to` from `from` takes.
func transitionTime(env technique.Env, w workload.Spec, from, to Mode) time.Duration {
	switch to {
	case ModeThrottled, ModeFullService:
		return 0
	case ModeConsolidated:
		return technique.Migration{ThrottleDeep: true}.Plan(env, w, time.Hour).Phases[0].Dur
	case ModeSleep:
		p := technique.Sleep{LowPower: true}.Plan(env, w, time.Hour)
		return p.Phases[0].Dur
	case ModeHibernate:
		return technique.Hibernate{LowPower: true}.SaveTime(env, w)
	default:
		return 0
	}
}

// transitionPower is the aggregate draw while transitioning.
func transitionPower(env technique.Env, w workload.Spec, from, to Mode) units.Watts {
	n := units.Watts(env.Servers)
	deep := env.Server.DeepestPState()
	switch to {
	case ModeSleep:
		return env.Server.ActivePower(w.Utilization, deep, env.Server.TStateDuty(2)) * n
	case ModeHibernate:
		return env.Server.ActivePower(1, deep, 1) * n
	case ModeConsolidated:
		return env.Server.ActivePower(w.Utilization, deep, 1) * n
	default:
		return env.Server.ActivePower(w.Utilization, env.Server.PStates[0], 1) * n
	}
}

// PolicyVsOracle compares the adaptive policy against the oracle that knew
// the outage duration (BestForConfig over the same backup), for one outage.
func (f *Framework) PolicyVsOracle(u cost.Backup, w workload.Spec, outage, step time.Duration) (PolicyResult, cluster.Result, error) {
	pol, err := NewAdaptivePolicy(f.Env, w, u.UPS)
	if err != nil {
		return PolicyResult{}, cluster.Result{}, err
	}
	pr, err := SimulatePolicy(pol, outage, step)
	if err != nil {
		return PolicyResult{}, cluster.Result{}, err
	}
	or, _ := f.BestForConfig(u, w, outage)
	return pr, or, nil
}
