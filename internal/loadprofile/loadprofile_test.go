package loadprofile

import (
	"testing"
	"time"
)

func TestFlat(t *testing.T) {
	if got := (Flat{Level: 0.7}).At(time.Hour); got != 0.7 {
		t.Errorf("flat = %v", got)
	}
	// Degenerate levels default to 1.
	if got := (Flat{}).At(0); got != 1 {
		t.Errorf("zero flat = %v", got)
	}
	if got := (Flat{Level: 2}).At(0); got != 1 {
		t.Errorf("over flat = %v", got)
	}
}

func TestTypicalValid(t *testing.T) {
	if err := Typical().Validate(); err != nil {
		t.Fatalf("typical invalid: %v", err)
	}
}

func TestDiurnalShape(t *testing.T) {
	d := Typical()
	// Peak at 14:00 on a weekday (day 0).
	peak := d.At(14 * time.Hour)
	trough := d.At(2 * time.Hour)
	if peak <= trough {
		t.Fatalf("peak %v should exceed trough %v", peak, trough)
	}
	if peak < 0.99 {
		t.Errorf("peak = %v, want ~1.0", peak)
	}
	if trough > 0.55 {
		t.Errorf("trough = %v, want ~0.45", trough)
	}
	// Weekend dip: same hour, day 5.
	weekday := d.At(14 * time.Hour)
	weekend := d.At(5*24*time.Hour + 14*time.Hour)
	if weekend >= weekday {
		t.Errorf("weekend %v should dip below weekday %v", weekend, weekday)
	}
	// Bounded everywhere.
	for h := 0; h < 24*7; h++ {
		v := d.At(time.Duration(h) * time.Hour)
		if v <= 0 || v > 1 {
			t.Fatalf("load out of range at h=%d: %v", h, v)
		}
	}
}

func TestDiurnalValidateErrors(t *testing.T) {
	bad := Typical()
	bad.Trough = 0
	if bad.Validate() == nil {
		t.Error("zero trough should fail")
	}
	bad = Typical()
	bad.Peak = 1.5
	if bad.Validate() == nil {
		t.Error("peak > 1 should fail")
	}
	bad = Typical()
	bad.PeakHour = 24
	if bad.Validate() == nil {
		t.Error("peak hour 24 should fail")
	}
	bad = Typical()
	bad.WeekendFactor = 0
	if bad.Validate() == nil {
		t.Error("zero weekend factor should fail")
	}
}

func TestScaleNormalized(t *testing.T) {
	d := Typical()
	// At the weekly peak, scaling returns the base itself.
	base := 0.95
	if got := Scale(d, 14*time.Hour, base); got < base-1e-9 || got > base+1e-9 {
		t.Errorf("peak scale = %v, want %v", got, base)
	}
	// At the trough it drops proportionally.
	low := Scale(d, 2*time.Hour, base)
	if low >= base || low < 0.3 {
		t.Errorf("trough scale = %v", low)
	}
	// Nil profile is identity.
	if got := Scale(nil, 0, base); got != base {
		t.Errorf("nil scale = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(Typical())
	if s.Min >= s.Mean || s.Mean >= s.Max {
		t.Fatalf("stats ordering broken: %+v", s)
	}
	if s.Max > 1 || s.Min <= 0 {
		t.Errorf("stats out of range: %+v", s)
	}
	fl := Summarize(Flat{Level: 0.6})
	if fl.Min != 0.6 || fl.Max != 0.6 {
		t.Errorf("flat stats: %+v", fl)
	}
}
