package cluster

import (
	"math"
	"time"

	"backuppower/internal/genset"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// Segment is an interval of the outage during which the plan's load, the
// DG supply fraction, and hence the UPS draw are all constant.
type Segment struct {
	Start, End time.Duration
	Load       units.Watts // total demand placed on the backup
	DGSupply   units.Watts // carried by the diesel generator
	UPSNeed    units.Watts // remainder the UPS must source
	Perf       float64
	Available  bool
	StateSafe  bool
}

// segCursor walks the segments of a plan flattened against a DG config over
// [0, horizon) without allocating: the interval boundaries — the plan's
// phase transitions and the DG's transfer steps, both already sorted — are
// merged on the fly instead of being collected into a map and sorted per
// call. It is the shared core under Simulate, SimulateAggregate, and
// RequiredRuntime; the zero-alloc property is pinned by TestAggregatePathAllocFree.
type segCursor struct {
	plan    technique.Plan
	dg      genset.Config
	horizon time.Duration

	pos      time.Duration // start of the next segment
	phaseIdx int           // phase candidate in effect at pos
	phaseAcc time.Duration // cumulative end of fixed phases before phaseIdx
}

// newSegCursor positions a cursor at the start of the outage.
func newSegCursor(plan technique.Plan, dg genset.Config, horizon time.Duration) segCursor {
	return segCursor{plan: plan, dg: dg, horizon: horizon}
}

// next fills seg with the next segment and reports whether one exists. The
// produced segments tile [0, horizon) exactly, with strictly increasing
// boundaries (no zero-length segments).
func (c *segCursor) next(seg *Segment) bool {
	if c.pos >= c.horizon {
		return false
	}
	start := c.pos

	// Advance to the phase in effect at start (same selection rule as the
	// former phaseAt: first fixed phase whose cumulative end lies beyond
	// start, the open-ended phase past the fixed schedule, or the last
	// phase as a fallback for schedules with no open-ended tail).
	for c.phaseIdx < len(c.plan.Phases) {
		ph := c.plan.Phases[c.phaseIdx]
		if ph.OpenEnded || start < c.phaseAcc+ph.Dur {
			break
		}
		c.phaseAcc += ph.Dur
		c.phaseIdx++
	}
	idx := c.phaseIdx
	if idx >= len(c.plan.Phases) {
		idx = len(c.plan.Phases) - 1
	}
	ph := c.plan.Phases[idx]

	end := c.horizon
	if c.phaseIdx < len(c.plan.Phases) && !ph.OpenEnded {
		if pe := c.phaseAcc + ph.Dur; pe < end {
			end = pe
		}
	}
	if t, ok := nextDGCut(c.dg, start); ok && t < end {
		end = t
	}

	frac := c.dg.SuppliedFraction(start)
	dgSupply := units.Watts(frac) * c.dg.PowerCapacity
	if dgSupply > ph.Power {
		dgSupply = ph.Power
	}
	*seg = Segment{
		Start:     start,
		End:       end,
		Load:      ph.Power,
		DGSupply:  dgSupply,
		UPSNeed:   ph.Power - dgSupply,
		Perf:      ph.Perf,
		Available: ph.Available,
		StateSafe: ph.StateSafe,
	}
	c.pos = end
	return true
}

// nextDGCut returns the earliest instant strictly after `after` at which
// the DG's supplied fraction changes — the same event set genset.StepTimes
// lists (transfer steps, then fuel exhaustion), computed without
// materializing the slice.
func nextDGCut(dg genset.Config, after time.Duration) (time.Duration, bool) {
	if !dg.Provisioned() {
		return 0, false
	}
	best := time.Duration(math.MaxInt64)
	if dg.StartupDelay > after {
		best = dg.StartupDelay
	} else if dg.TransferStepDelay > 0 {
		// Next transfer step strictly after `after`; steps are
		// StartupDelay + i*TransferStepDelay for i < TransferSteps.
		k := (after-dg.StartupDelay)/dg.TransferStepDelay + 1
		if k < time.Duration(dg.TransferSteps) {
			best = dg.StartupDelay + k*dg.TransferStepDelay
		}
	}
	if dg.FuelRuntime > after && dg.FuelRuntime < best {
		best = dg.FuelRuntime
	}
	if best == math.MaxInt64 {
		return 0, false
	}
	return best, true
}

// Segments flattens a plan against a DG config over [0, horizon): the
// interval boundaries are the plan's phase transitions and the DG's
// transfer steps. The returned segments tile [0, horizon) exactly. It is a
// slice-materializing wrapper over the zero-alloc cursor, kept for callers
// that want the whole timeline at once (tests, timeline tooling).
func Segments(env technique.Env, w workload.Spec, plan technique.Plan, dg genset.Config, horizon time.Duration) []Segment {
	if horizon <= 0 {
		return nil
	}
	cur := newSegCursor(plan, dg, horizon)
	var segs []Segment
	var seg Segment
	for cur.next(&seg) {
		segs = append(segs, seg)
	}
	return segs
}

// RequiredRuntime computes, for a candidate UPS power rating, the rated
// runtime the battery must be provisioned with for the plan to survive the
// whole outage, using the technology's Peukert fractional-depletion
// accounting: each segment consumes (duration / runtimeAt(load)) of the
// pack, so the required rated runtime R satisfies
//
//	Σ dur_i / (R · (P_rated/L_i)^k) = 1.
//
// It returns ok=false when some segment's UPS need exceeds the rating (no
// runtime helps — the plan needs more power capacity). The walk is
// allocation-free: this is the innermost call of every sizing sweep.
func RequiredRuntime(env technique.Env, w workload.Spec, plan technique.Plan, dg genset.Config, outage time.Duration, rated units.Watts, peukert float64, minLoadFrac float64) (time.Duration, bool) {
	horizon := outage
	if dgEnds := dg.Provisioned() && dg.CanCarry(env.NormalPower(w)); dgEnds && dg.TransferCompleteAt() < outage {
		horizon = dg.TransferCompleteAt()
	}
	var seg Segment
	if rated <= 0 {
		// Only feasible if nothing is ever needed from the UPS.
		cur := newSegCursor(plan, dg, horizon)
		for cur.next(&seg) {
			if seg.UPSNeed > 0 {
				return 0, false
			}
		}
		return 0, true
	}
	total := 0.0 // required rated runtime in hours
	cur := newSegCursor(plan, dg, horizon)
	for cur.next(&seg) {
		if seg.UPSNeed <= 0 {
			continue
		}
		if seg.UPSNeed > rated*(1+1e-9) {
			return 0, false
		}
		frac := float64(seg.UPSNeed) / float64(rated)
		if frac < minLoadFrac {
			frac = minLoadFrac
		}
		// stretch = (rated/load)^k; segment consumes dur/(R*stretch).
		stretch := math.Pow(1/frac, peukert)
		total += (seg.End - seg.Start).Hours() / stretch
	}
	return time.Duration(total * float64(time.Hour)), true
}
