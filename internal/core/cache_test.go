package core

import (
	"reflect"
	"testing"
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/cost"
	"backuppower/internal/server"
	"backuppower/internal/technique"
	"backuppower/internal/workload"
)

// TestScenarioKeyMirrorsServerConfig guards the serverKey mirror against
// field drift: a field added to server.Config without a matching key field
// would silently alias scenarios that differ only in that field.
func TestScenarioKeyMirrorsServerConfig(t *testing.T) {
	cfg := reflect.TypeOf(server.Config{}).NumField()
	key := reflect.TypeOf(serverKey{}).NumField()
	if key != cfg {
		t.Fatalf("serverKey has %d fields, server.Config has %d — update keyServer and serverKey", key, cfg)
	}
	// Likewise the outer mirrors: Scenario's 5 fields split into the
	// environment half (Env flattened into its 4 constituents), the
	// outage-invariant rest (workload, backup, technique plus its explicit
	// dynamic type), and the outage carried verbatim in cacheKey so batch
	// callers can stamp it without re-hashing.
	if got := reflect.TypeOf(envKey{}).NumField(); got != 4 {
		t.Fatalf("envKey has %d fields, want 4 — update keyEnv", got)
	}
	if got := reflect.TypeOf(restKey{}).NumField(); got != 4 {
		t.Fatalf("restKey has %d fields, want 4 — update scenarioCacheKey", got)
	}
	if got := reflect.TypeOf(cacheKey{}).NumField(); got != 3 {
		t.Fatalf("cacheKey has %d fields, want 3 — update scenarioCacheKey and EvaluateBatch", got)
	}
}

// TestScenarioKeySeparatesFields checks the digests actually discriminate:
// flipping any single scenario dimension must change the cache key.
func TestScenarioKeySeparatesFields(t *testing.T) {
	f := New(16)
	mk := func(mut func(*cluster.Scenario)) cacheKey {
		s := cluster.Scenario{
			Env:       f.Env,
			Workload:  workload.Specjbb(),
			Backup:    cost.NoDG(f.Env.PeakPower()),
			Technique: technique.Sleep{LowPower: true},
			Outage:    30 * time.Minute,
		}
		if mut != nil {
			mut(&s)
		}
		return f.scenarioCacheKey(s)
	}
	ref := mk(nil)
	muts := map[string]func(*cluster.Scenario){
		"servers":  func(s *cluster.Scenario) { s.Env.Servers++ },
		"pstates":  func(s *cluster.Scenario) { s.Env.Server.PStates = server.MakePStates(5, 0.5) },
		"workload": func(s *cluster.Scenario) { s.Workload = workload.Memcached() },
		"backup":   func(s *cluster.Scenario) { s.Backup = cost.MaxPerf(s.Env.PeakPower()) },
		"techtype": func(s *cluster.Scenario) { s.Technique = technique.Hibernate{} },
		"techval":  func(s *cluster.Scenario) { s.Technique = technique.Sleep{} },
		"outage":   func(s *cluster.Scenario) { s.Outage = time.Hour },
	}
	for name, mut := range muts {
		if got := mk(mut); got == ref {
			t.Errorf("mutating %s did not change the cache key", name)
		}
	}
	if again := mk(nil); again != ref {
		t.Error("identical scenarios produced different keys")
	}
}

// TestScenarioKeySeparatesZeroSizeTechniques pins the techType field in
// the key digest: interfaces holding distinct zero-size struct types hash
// identically under maphash.Comparable (the runtime folds only the value
// representation, and every empty struct shares it), so without the
// explicit dynamic-type field Baseline{} and any other fieldless
// technique would silently share one cache entry.
func TestScenarioKeySeparatesZeroSizeTechniques(t *testing.T) {
	f := New(16)
	mk := func(tech technique.Technique) cacheKey {
		return f.scenarioCacheKey(cluster.Scenario{
			Env:       f.Env,
			Workload:  workload.Specjbb(),
			Backup:    cost.MinCost(f.Env.PeakPower()),
			Technique: tech,
			Outage:    time.Hour,
		})
	}
	type otherEmpty struct{ technique.Baseline }
	if mk(technique.Baseline{}) == mk(otherEmpty{}) {
		t.Error("two zero-size technique types share a cache key")
	}
}

// TestEnvFingerprintRevalidatesOnMutation pins the per-Framework env
// sub-fingerprint memo: mutating f.Env between calls must re-digest (keys
// diverge), and restoring the original content must reproduce the original
// key even though the memo was overwritten in between.
func TestEnvFingerprintRevalidatesOnMutation(t *testing.T) {
	f := New(16)
	scn := func() cluster.Scenario {
		return cluster.Scenario{
			Env:       f.Env,
			Workload:  workload.Specjbb(),
			Backup:    cost.NoDG(f.Env.PeakPower()),
			Technique: technique.Sleep{},
			Outage:    30 * time.Minute,
		}
	}
	orig := f.scenarioCacheKey(scn())
	f.Env.Servers = 32
	mutated := f.scenarioCacheKey(scn())
	if mutated.env == orig.env {
		t.Fatal("env fingerprint did not change after mutating Env")
	}
	f.Env.Servers = 16
	restored := f.scenarioCacheKey(scn())
	if restored != orig {
		t.Fatalf("restored Env did not reproduce the original key: %+v vs %+v", restored, orig)
	}
}

// TestShippedTechniquesAreCacheKeyable pins that every technique the
// framework enumerates (plus the Section 7 extensions) has a comparable
// dynamic type, so using it inside a hashed key cannot panic.
func TestShippedTechniquesAreCacheKeyable(t *testing.T) {
	f := New(16)
	techs := []technique.Technique{
		technique.NVDIMM{}, technique.NVDIMMThrottle{},
		technique.BarelyAlive{}, technique.GeoFailover{},
	}
	for _, v := range f.variants() {
		techs = append(techs, v.tech)
	}
	for _, tech := range techs {
		if !reflect.TypeOf(tech).Comparable() {
			t.Errorf("%T is not comparable — Evaluate will bypass the cache for it", tech)
		}
		// Exercise real map insertion: hashing through the interface is
		// what the cache does, and it panics for non-comparable types.
		m := map[technique.Technique]bool{tech: true}
		if !m[tech] {
			t.Errorf("%T did not round-trip as a map key", tech)
		}
	}
}
