package fabric

import (
	"context"
	"sync"
	"time"
)

// worker is one pool member's scheduling state. All fields are guarded by
// the pool's mutex.
type worker struct {
	url string

	// inflight counts shard requests currently running against the
	// worker; outstanding is their total remaining rows — the weight the
	// scheduler balances, so a worker grinding through one oversized
	// shard is not also handed three small ones while an idle peer waits.
	inflight    int
	outstanding int

	// consecFails drives the failure detector: QuarantineAfter
	// consecutive failed attempts sideline the worker until
	// quarantinedUntil. Quarantine is a preference, not a wall — a pool
	// with every member quarantined still dispatches to the least-bad one.
	consecFails      int
	quarantinedUntil time.Time
}

// pool schedules shard attempts over the static worker set: bounded
// inflight per worker, least-outstanding-rows (weighted) selection, and
// quarantine of flapping members. acquire blocks while every worker is at
// its inflight bound, which is what makes the fabric's total concurrency
// workers × MaxInflightPerWorker.
type pool struct {
	mu   sync.Mutex
	cond *sync.Cond

	workers         []*worker
	maxInflight     int
	quarantineAfter int
	quarantineFor   time.Duration
}

func newPool(urls []string, maxInflight, quarantineAfter int, quarantineFor time.Duration) *pool {
	p := &pool{
		maxInflight:     maxInflight,
		quarantineAfter: quarantineAfter,
		quarantineFor:   quarantineFor,
	}
	p.cond = sync.NewCond(&p.mu)
	for _, u := range urls {
		p.workers = append(p.workers, &worker{url: u})
	}
	return p
}

// acquire picks the best available worker for a rows-row attempt and
// reserves a slot on it: healthy before quarantined, then least
// outstanding rows, then pool order (deterministic tie-break). avoid, when
// possible, excludes the worker a previous attempt just failed on — a
// retry or hedge should land somewhere else if anywhere else exists. It
// blocks until a slot frees or ctx is cancelled.
func (p *pool) acquire(ctx context.Context, rows int, avoid *worker) (*worker, error) {
	// A blocked acquire wakes on slot release via the cond; cancellation
	// must wake it too, which a cond cannot see — hence the watcher.
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.mu.Unlock()
		p.cond.Broadcast()
	})
	defer stop()

	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if w := p.pick(avoid); w != nil {
			w.inflight++
			w.outstanding += rows
			return w, nil
		}
		p.cond.Wait()
	}
}

// pick returns the best worker with a free slot under the lock, or nil.
func (p *pool) pick(avoid *worker) *worker {
	now := time.Now()
	var best *worker
	bestScore := 0
	for _, w := range p.workers {
		if w.inflight >= p.maxInflight || (w == avoid && len(p.workers) > 1) {
			continue
		}
		// Quarantined workers sort strictly after every healthy one.
		score := w.outstanding
		if now.Before(w.quarantinedUntil) {
			score += 1 << 30
		}
		if best == nil || score < bestScore {
			best, bestScore = w, score
		}
	}
	if best == nil && avoid != nil {
		// Everyone else is full; the avoided worker is better than blocking.
		if avoid.inflight < p.maxInflight {
			return avoid
		}
	}
	return best
}

// release returns an attempt's slot and feeds the failure detector: a
// success clears the worker's strike count, a failure adds one and
// quarantines the worker once it hits the threshold.
func (p *pool) release(w *worker, rows int, ok bool) {
	p.mu.Lock()
	w.inflight--
	w.outstanding -= rows
	if ok {
		w.consecFails = 0
	} else {
		w.consecFails++
		if w.consecFails >= p.quarantineAfter {
			w.quarantinedUntil = time.Now().Add(p.quarantineFor)
		}
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}
