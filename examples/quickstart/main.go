// Quickstart: evaluate a handful of backup configurations for one workload
// and outage, using only the public backuppower API.
package main

import (
	"fmt"
	"time"

	backuppower "backuppower"
)

func main() {
	fw := backuppower.NewFramework(64)
	peak := fw.Env.PeakPower()
	w := backuppower.Specjbb()
	outage := 30 * time.Minute

	fmt.Printf("workload %s, outage %v, datacenter peak %v\n\n", w.Name, outage, peak)
	fmt.Printf("%-18s %-22s %5s  %5s  %9s\n", "config", "technique", "cost", "perf", "downtime")

	cases := []struct {
		b    backuppower.Backup
		tech backuppower.Technique
	}{
		{backuppower.MaxPerf(peak), backuppower.Baseline{}},
		{backuppower.LargeEUPS(peak), backuppower.Baseline{}},
		{backuppower.LargeEUPS(peak), backuppower.Throttling{PState: 6}},
		{backuppower.NoDG(peak), backuppower.Sleep{LowPower: true}},
		{backuppower.NoDG(peak), backuppower.ThrottleThenSave{PState: 6, Save: backuppower.SaveSleep, ActiveFraction: 0.1}},
		{backuppower.MinCost(peak), backuppower.Baseline{}},
	}
	for _, c := range cases {
		res, err := fw.Evaluate(c.b, c.tech, w, outage)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		status := ""
		if !res.Survived {
			status = fmt.Sprintf("  (state lost at %v)", res.CrashedAt.Round(time.Second))
		}
		fmt.Printf("%-18s %-22s %5.2f  %5.2f  %9v%s\n",
			c.b.Name, res.Technique, res.Cost, res.Perf, res.Downtime.Round(time.Second), status)
	}

	// The headline question: what's the cheapest backup that rides this
	// outage with zero downtime?
	fmt.Println("\ncheapest zero-downtime option:")
	best, ok := fw.MinCostUPS(backuppower.Throttling{PState: 6}, w, outage)
	if ok {
		fmt.Printf("  %s behind %v UPS rated %v: %.0f%% of MaxPerf cost, perf %.2f\n",
			best.Technique, best.Backup.UPS.PowerCapacity, best.Backup.UPS.Runtime,
			best.NormCost*100, best.Result.Perf)
	}
}
