package backuppower_test

import (
	"context"
	"errors"
	"testing"
	"time"

	backuppower "backuppower"
)

// TestEvaluateRejectsBadOutages pins the typed validation at the
// framework boundary: non-positive and absurd outage durations come back
// as *InputError wrapping ErrInvalidInput, from every entry point.
func TestEvaluateRejectsBadOutages(t *testing.T) {
	fw := backuppower.NewFramework(64)
	b := backuppower.LargeEUPS(fw.Env.PeakPower())
	w := backuppower.Specjbb()
	tech := backuppower.Throttling{PState: 6}

	for _, outage := range []time.Duration{0, -time.Minute, backuppower.MaxOutage + time.Second} {
		if _, err := fw.Evaluate(b, tech, w, outage); !errors.Is(err, backuppower.ErrInvalidInput) {
			t.Errorf("Evaluate(outage=%v): err = %v, want ErrInvalidInput", outage, err)
		}
		var ie *backuppower.InputError
		if _, err := fw.Evaluate(b, tech, w, outage); !errors.As(err, &ie) || ie.Field != "outage" {
			t.Errorf("Evaluate(outage=%v): err = %v, want *InputError on field outage", outage, err)
		}
		if _, _, err := fw.MinCostUPSCtx(context.Background(), tech, w, outage); !errors.Is(err, backuppower.ErrInvalidInput) {
			t.Errorf("MinCostUPSCtx(outage=%v): err = %v, want ErrInvalidInput", outage, err)
		}
		if _, _, err := fw.BestForConfigCtx(context.Background(), b, w, outage); !errors.Is(err, backuppower.ErrInvalidInput) {
			t.Errorf("BestForConfigCtx(outage=%v): err = %v, want ErrInvalidInput", outage, err)
		}
		if _, err := fw.EvaluateTechniquesCtx(context.Background(), w, outage); !errors.Is(err, backuppower.ErrInvalidInput) {
			t.Errorf("EvaluateTechniquesCtx(outage=%v): err = %v, want ErrInvalidInput", outage, err)
		}
	}

	// The boundary of the band: MaxOutage itself is accepted.
	if _, err := fw.Evaluate(b, tech, w, backuppower.MaxOutage); err != nil {
		t.Errorf("Evaluate(outage=MaxOutage): unexpected error %v", err)
	}
}

// TestEvaluateRejectsBadServerCounts pins the server-count check.
func TestEvaluateRejectsBadServerCounts(t *testing.T) {
	fw := backuppower.NewFramework(64)
	fw.Env.Servers = 0
	b := backuppower.LargeEUPS(16 * backuppower.Kilowatt)
	if _, err := fw.Evaluate(b, backuppower.Baseline{}, backuppower.Specjbb(), time.Hour); !errors.Is(err, backuppower.ErrInvalidInput) {
		t.Errorf("Evaluate with 0 servers: err = %v, want ErrInvalidInput", err)
	}
	var ie *backuppower.InputError
	if _, _, err := fw.MinCostUPSCtx(context.Background(), backuppower.Sleep{}, backuppower.Specjbb(), time.Hour); !errors.As(err, &ie) || ie.Field != "env.servers" {
		t.Errorf("MinCostUPSCtx with 0 servers: err = %v, want *InputError on env.servers", err)
	}
}

// TestEvaluateCtxHonorsDeadline pins the new context-aware single-scenario
// entry point: an already-expired context is rejected with the context's
// own error, not an input error.
func TestEvaluateCtxHonorsDeadline(t *testing.T) {
	fw := backuppower.NewFramework(64)
	b := backuppower.LargeEUPS(fw.Env.PeakPower())
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	_, err := fw.EvaluateCtx(ctx, b, backuppower.Baseline{}, backuppower.Specjbb(), time.Hour)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EvaluateCtx(expired): err = %v, want DeadlineExceeded", err)
	}
	if errors.Is(err, backuppower.ErrInvalidInput) {
		t.Fatal("context expiry must not masquerade as invalid input")
	}
	// And the same call with a live context succeeds.
	if _, err := fw.EvaluateCtx(context.Background(), b, backuppower.Baseline{}, backuppower.Specjbb(), time.Hour); err != nil {
		t.Fatalf("EvaluateCtx(live): unexpected error %v", err)
	}
}
