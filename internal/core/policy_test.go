package core

import (
	"testing"
	"time"

	"backuppower/internal/technique"
	"backuppower/internal/ups"
	"backuppower/internal/workload"
)

func policy(t *testing.T, runtime time.Duration) *AdaptivePolicy {
	t.Helper()
	env := technique.DefaultEnv(16)
	u := ups.NewConfig(env.PeakPower(), runtime)
	p, err := NewAdaptivePolicy(env, workload.Specjbb(), u)
	if err != nil {
		t.Fatalf("NewAdaptivePolicy: %v", err)
	}
	return p
}

func TestPolicyConstructionErrors(t *testing.T) {
	env := technique.DefaultEnv(16)
	bad := ups.NewConfig(env.PeakPower(), 2*time.Minute)
	bad.RideThrough = 0
	if _, err := NewAdaptivePolicy(env, workload.Specjbb(), bad); err == nil {
		t.Error("invalid UPS should fail")
	}
	env.Servers = 0
	if _, err := NewAdaptivePolicy(env, workload.Specjbb(), ups.NewConfig(4000, 2*time.Minute)); err == nil {
		t.Error("invalid env should fail")
	}
}

func TestModePowerOrdering(t *testing.T) {
	p := policy(t, 30*time.Minute)
	prev := p.ModePower(ModeFullService)
	for m := ModeThrottled; m <= ModeHibernate; m++ {
		cur := p.ModePower(m)
		if cur > prev {
			t.Fatalf("%v draws %v > %v of previous mode", m, cur, prev)
		}
		prev = cur
	}
	if p.ModePower(ModeHibernate) != 0 {
		t.Error("hibernate should draw nothing")
	}
}

func TestModePerfOrdering(t *testing.T) {
	p := policy(t, 30*time.Minute)
	if p.ModePerf(ModeFullService) != 1 {
		t.Error("full service perf")
	}
	if p.ModePerf(ModeThrottled) <= 0 || p.ModePerf(ModeThrottled) >= 1 {
		t.Error("throttled perf should be fractional")
	}
	if p.ModePerf(ModeSleep) != 0 || p.ModePerf(ModeHibernate) != 0 {
		t.Error("save-state modes serve nothing")
	}
}

func TestPolicyStartsOptimistic(t *testing.T) {
	// Big battery + fresh outage (expected remaining ~45 min from the
	// heavy-tailed prior): stay at full service.
	p := policy(t, 2*time.Hour)
	d := p.Decide(0, 1.0)
	if d.Mode != ModeFullService {
		t.Errorf("fresh outage mode = %v (%s)", d.Mode, d.Reason)
	}
	if d.Remaining <= 0 {
		t.Error("predictor should give a positive remaining estimate")
	}
}

func TestPolicyEscalatesAsBatteryDrains(t *testing.T) {
	p := policy(t, 10*time.Minute)
	// As the outage drags on and charge drops, the mode must escalate
	// monotonically.
	prev := ModeFullService
	cases := []struct {
		elapsed time.Duration
		charge  float64
	}{
		{0, 1.0},
		{5 * time.Minute, 0.6},
		{15 * time.Minute, 0.35},
		{40 * time.Minute, 0.15},
		{2 * time.Hour, 0.05},
	}
	for _, c := range cases {
		d := p.Decide(c.elapsed, c.charge)
		if d.Mode < prev {
			t.Fatalf("policy de-escalated at %v: %v < %v", c.elapsed, d.Mode, prev)
		}
		prev = d.Mode
	}
	if prev < ModeSleep {
		t.Errorf("after 2h at 5%% charge the policy should be saving state, got %v", prev)
	}
}

func TestPolicyTinyBatterySleepsQuickly(t *testing.T) {
	// A 2-minute battery cannot serve the expected ~30 min remaining of a
	// fresh outage; the policy should jump to a state-preserving mode.
	p := policy(t, 2*time.Minute)
	d := p.Decide(0, 1.0)
	if d.Mode < ModeSleep {
		t.Errorf("2-min battery fresh decision = %v (%s)", d.Mode, d.Reason)
	}
}

func TestPolicyNeverDeEscalates(t *testing.T) {
	p := policy(t, 10*time.Minute)
	p.Decide(30*time.Minute, 0.2) // forces escalation
	escalated := p.Mode()
	d := p.Decide(31*time.Minute, 0.95) // battery "recovers" (hypothetical)
	if d.Mode < escalated {
		t.Errorf("policy relaxed from %v to %v", escalated, d.Mode)
	}
}

func TestPolicyResetLearns(t *testing.T) {
	p := policy(t, 30*time.Minute)
	before := p.Predictor.ExpectedRemaining(0)
	for i := 0; i < 200; i++ {
		p.Reset(4 * time.Hour) // a site with dreadful utility power
	}
	after := p.Predictor.ExpectedRemaining(0)
	if after <= before {
		t.Errorf("predictor should learn longer outages: %v vs %v", after, before)
	}
	if p.Mode() != ModeFullService {
		t.Error("reset should restore full service mode")
	}
}

func TestPolicySkipsModesAboveUPSCap(t *testing.T) {
	// Half-power UPS: full service is unsourceable; first feasible rung
	// must respect the cap.
	env := technique.DefaultEnv(16)
	u := ups.NewConfig(env.PeakPower()/2, 30*time.Minute)
	p, err := NewAdaptivePolicy(env, workload.Specjbb(), u)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Decide(0, 1.0)
	if d.Mode == ModeFullService {
		t.Errorf("full service should be skipped under a half-power cap (%s)", d.Reason)
	}
	if p.ModePower(d.Mode) > u.PowerCapacity {
		t.Errorf("chosen mode %v draws %v above cap %v", d.Mode, p.ModePower(d.Mode), u.PowerCapacity)
	}
}

func TestModeStrings(t *testing.T) {
	names := map[Mode]string{
		ModeFullService: "full-service", ModeThrottled: "throttled",
		ModeConsolidated: "consolidated", ModeSleep: "sleep",
		ModeHibernate: "hibernate", Mode(9): "mode(9)",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("%d = %q want %q", int(m), got, want)
		}
	}
}
