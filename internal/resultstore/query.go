package resultstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"backuppower/internal/units"
)

// The /v1/results query language: a conjunctive filter over row fields,
// optionally piped into one aggregate.
//
//	query     = [ filter ] [ "|" aggregate ]
//	filter    = cmp { "&&" cmp }
//	cmp       = field op value
//	op        = "==" | "=" | "!=" | ">=" | "<=" | ">" | "<"
//	value     = quoted Go string | bare token (no spaces, '&', '|')
//	aggregate = "group" "by" field | "frontier"
//
// Fields: op, workload, config, family, technique, best (strings;
// equality ops only), servers, seed, draws (ints), perf, norm_cost,
// availability (floats), outage, downtime (durations, e.g. "10m" or
// "1h30m"), feasible, survived (bools). An empty filter matches every
// row. A comparison against a field a row does not carry (e.g. feasible
// on an evaluate row, or seed on a point-outage row) matches nothing —
// it never errors.
//
// "group by F" folds matching rows into per-key count/min/max/mean
// summaries of perf and norm_cost; "frontier" keeps the min-cost-per-perf
// rows (no other row has >= perf at <= cost with one strict), the paper's
// cost/performance frontier served straight from the store.

// FieldError is a typed query rejection: which field (or "query" for
// structural errors), a stable machine code, and a human message. Its
// shape mirrors grid's field errors so HTTP surfaces render both the
// same way.
type FieldError struct {
	Code    string
	Field   string
	Message string
}

func (e *FieldError) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("%s: %s: %s", e.Code, e.Field, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

func queryErrf(code, field, format string, args ...any) *FieldError {
	return &FieldError{Code: code, Field: field, Message: fmt.Sprintf(format, args...)}
}

// Field kinds.
const (
	fString = iota
	fInt
	fFloat
	fDur
	fBool
)

var queryFields = map[string]int{
	"op": fString, "workload": fString, "config": fString, "family": fString,
	"technique": fString, "best": fString,
	"servers": fInt, "seed": fInt, "draws": fInt,
	"perf": fFloat, "norm_cost": fFloat, "availability": fFloat,
	"outage": fDur, "downtime": fDur,
	"feasible": fBool, "survived": fBool,
}

// cmp is one compiled comparison.
type cmp struct {
	field string
	kind  int
	op    string
	s     string
	i     int64 // int, duration (ns)
	f     float64
	b     bool
}

// Aggregate kinds.
const (
	aggNone = iota
	aggGroup
	aggFrontier
)

// QueryPlan is a parsed query ready to Execute.
type QueryPlan struct {
	filters    []cmp
	agg        int
	groupField string
}

// Group is one "group by" output row: the group key plus count/min/max/
// mean folds of perf and norm_cost over the rows that carry them. Field
// order is the JSON key order.
type Group struct {
	Field    string  `json:"field"`
	Key      string  `json:"key"`
	Count    int     `json:"count"`
	PerfMin  float64 `json:"perf_min"`
	PerfMax  float64 `json:"perf_max"`
	PerfMean float64 `json:"perf_mean"`
	CostMin  float64 `json:"cost_min"`
	CostMax  float64 `json:"cost_max"`
	CostMean float64 `json:"cost_mean"`
}

// QueryOutput is an executed query: Rows for plain filters and frontier,
// Groups for group-by.
type QueryOutput struct {
	Rows   []StoredRow
	Groups []Group
}

// Grouped reports whether the plan ends in a group-by aggregate (its
// Execute output is Groups, not Rows).
func (p *QueryPlan) Grouped() bool { return p.agg == aggGroup }

// ParseQuery compiles a query string. The returned error, when non-nil,
// is always a *FieldError — arbitrary input parses or is rejected with a
// typed error, never a panic (FuzzResultsQuery pins this).
func ParseQuery(q string) (*QueryPlan, error) {
	p := &qparser{s: q}
	plan := &QueryPlan{}
	p.ws()
	for !p.eof() && p.peek() != '|' {
		c, err := p.cmp()
		if err != nil {
			return nil, err
		}
		plan.filters = append(plan.filters, c)
		p.ws()
		if p.eof() || p.peek() == '|' {
			break
		}
		if !p.lit("&&") {
			return nil, queryErrf("bad_syntax", "query", "expected '&&', '|' or end at offset %d", p.i)
		}
		p.ws()
		if p.eof() || p.peek() == '|' {
			return nil, queryErrf("bad_syntax", "query", "dangling '&&'")
		}
	}
	if !p.eof() && p.peek() == '|' {
		p.i++
		p.ws()
		word := p.ident()
		switch word {
		case "frontier":
			plan.agg = aggFrontier
		case "group":
			p.ws()
			if by := p.ident(); by != "by" {
				return nil, queryErrf("bad_aggregate", "query", "expected 'group by <field>'")
			}
			p.ws()
			field := p.ident()
			if field == "" {
				return nil, queryErrf("bad_aggregate", "query", "expected 'group by <field>'")
			}
			if _, ok := queryFields[field]; !ok {
				return nil, queryErrf("unknown_field", field, "unknown group-by field %q", field)
			}
			plan.agg = aggGroup
			plan.groupField = field
		default:
			return nil, queryErrf("bad_aggregate", "query", "unknown aggregate %q (want 'group by <field>' or 'frontier')", word)
		}
		p.ws()
		if !p.eof() {
			return nil, queryErrf("bad_syntax", "query", "trailing input after aggregate at offset %d", p.i)
		}
	}
	return plan, nil
}

type qparser struct {
	s string
	i int
}

func (p *qparser) eof() bool  { return p.i >= len(p.s) }
func (p *qparser) peek() byte { return p.s[p.i] }

func (p *qparser) ws() {
	for !p.eof() && (p.s[p.i] == ' ' || p.s[p.i] == '\t' || p.s[p.i] == '\n' || p.s[p.i] == '\r') {
		p.i++
	}
}

func (p *qparser) lit(l string) bool {
	if strings.HasPrefix(p.s[p.i:], l) {
		p.i += len(l)
		return true
	}
	return false
}

func (p *qparser) ident() string {
	start := p.i
	for !p.eof() {
		c := p.s[p.i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.i++
			continue
		}
		break
	}
	return p.s[start:p.i]
}

func (p *qparser) cmpOp() string {
	for _, op := range [...]string{"==", "!=", ">=", "<=", ">", "<", "="} {
		if p.lit(op) {
			return op
		}
	}
	return ""
}

// value reads a quoted Go string or a bare token.
func (p *qparser) value() (string, error) {
	if !p.eof() && p.s[p.i] == '"' {
		end := p.i + 1
		for end < len(p.s) {
			if p.s[end] == '\\' {
				end += 2
				continue
			}
			if p.s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(p.s) {
			return "", queryErrf("bad_value", "query", "unterminated string at offset %d", p.i)
		}
		v, err := strconv.Unquote(p.s[p.i : end+1])
		if err != nil {
			return "", queryErrf("bad_value", "query", "bad quoted string at offset %d", p.i)
		}
		p.i = end + 1
		return v, nil
	}
	start := p.i
	for !p.eof() {
		c := p.s[p.i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '&' || c == '|' {
			break
		}
		p.i++
	}
	if p.i == start {
		return "", queryErrf("bad_value", "query", "missing value at offset %d", start)
	}
	return p.s[start:p.i], nil
}

func (p *qparser) cmp() (cmp, error) {
	p.ws()
	field := p.ident()
	if field == "" {
		return cmp{}, queryErrf("bad_syntax", "query", "expected a field name at offset %d", p.i)
	}
	kind, ok := queryFields[field]
	if !ok {
		return cmp{}, queryErrf("unknown_field", field, "unknown field %q", field)
	}
	p.ws()
	op := p.cmpOp()
	if op == "" {
		return cmp{}, queryErrf("bad_op", field, "expected a comparison operator after %q", field)
	}
	if op == "==" {
		op = "="
	}
	p.ws()
	raw, err := p.value()
	if err != nil {
		return cmp{}, err
	}
	c := cmp{field: field, kind: kind, op: op}
	ordered := op != "=" && op != "!="
	switch kind {
	case fString:
		if ordered {
			return cmp{}, queryErrf("bad_op", field, "string field %q supports only = and !=", field)
		}
		c.s = raw
	case fBool:
		if ordered {
			return cmp{}, queryErrf("bad_op", field, "bool field %q supports only = and !=", field)
		}
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return cmp{}, queryErrf("bad_value", field, "%q is not a bool", raw)
		}
		c.b = b
	case fInt:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return cmp{}, queryErrf("bad_value", field, "%q is not an integer", raw)
		}
		c.i = n
	case fFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return cmp{}, queryErrf("bad_value", field, "%q is not a number", raw)
		}
		c.f = f
	case fDur:
		d, err := units.ParseDuration(raw)
		if err != nil {
			return cmp{}, queryErrf("bad_value", field, "%q is not a duration", raw)
		}
		c.i = int64(d)
	}
	return c, nil
}

// fieldOf extracts a row's value for one field. present is false when the
// row does not carry the field (a best row has no feasible, an
// infeasible size row has no perf).
func fieldOf(r *StoredRow, field string) (s string, i int64, f float64, b bool, present bool) {
	switch field {
	case "op":
		return r.Op, 0, 0, false, true
	case "workload":
		return r.Workload, 0, 0, false, true
	case "config":
		return r.Config, 0, 0, false, r.HasConfig
	case "family":
		return r.Family, 0, 0, false, r.Family != ""
	case "technique":
		if r.Sizing != nil {
			return r.Sizing.Technique, 0, 0, false, true
		}
		return r.Technique, 0, 0, false, r.Technique != ""
	case "best":
		return r.Best, 0, 0, false, r.Best != ""
	case "servers":
		return "", int64(r.Servers), 0, false, true
	case "seed":
		if r.Process != nil {
			return "", r.Process.Seed, 0, false, true
		}
	case "draws":
		if r.Process != nil {
			return "", int64(r.Process.Draws), 0, false, true
		}
	case "availability":
		if r.Process != nil {
			return "", 0, r.Process.Availability, false, true
		}
	case "outage":
		if r.Process == nil {
			return "", r.OutageNS, 0, false, true
		}
	case "feasible":
		return "", 0, 0, r.Feasible, r.Op == "size"
	case "survived":
		if res := r.effResult(); res != nil {
			return "", 0, 0, res.Survived, true
		}
	case "perf":
		if res := r.effResult(); res != nil {
			return "", 0, res.Perf, false, true
		}
		if r.Process != nil {
			return "", 0, r.Process.Perf, false, true
		}
	case "norm_cost":
		if c, ok := r.normCost(); ok {
			return "", 0, c, true, true
		}
	case "downtime":
		if res := r.effResult(); res != nil {
			return "", int64(res.Downtime), 0, false, true
		}
		if r.Process != nil {
			return "", r.Process.ExpectedDowntimeNS, 0, false, true
		}
	}
	return "", 0, 0, false, false
}

func (c *cmp) match(r *StoredRow) bool {
	s, i, f, b, present := fieldOf(r, c.field)
	if !present {
		return false
	}
	switch c.kind {
	case fString:
		if c.op == "=" {
			return s == c.s
		}
		return s != c.s
	case fBool:
		if c.op == "=" {
			return b == c.b
		}
		return b != c.b
	case fInt, fDur:
		return ordCmp(i, c.i, c.op)
	default:
		return ordCmp(f, c.f, c.op)
	}
}

func ordCmp[T int64 | float64](a, b T, op string) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case ">":
		return a > b
	case ">=":
		return a >= b
	case "<":
		return a < b
	default: // "<"= guaranteed by parser
		return a <= b
	}
}

// Execute runs the plan over rows: filter, canonical sort, aggregate.
// Output order is deterministic for any input order.
func (p *QueryPlan) Execute(rows []StoredRow) QueryOutput {
	var kept []StoredRow
	for i := range rows {
		ok := true
		for j := range p.filters {
			if !p.filters[j].match(&rows[i]) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, rows[i])
		}
	}
	sortRows(kept)
	switch p.agg {
	case aggGroup:
		return QueryOutput{Groups: groupBy(kept, p.groupField)}
	case aggFrontier:
		return QueryOutput{Rows: frontier(kept)}
	default:
		return QueryOutput{Rows: kept}
	}
}

// sortRows orders rows canonically: op, servers, workload, config,
// family, technique, outage, best.
func sortRows(rows []StoredRow) {
	sort.SliceStable(rows, func(a, b int) bool {
		x, y := &rows[a], &rows[b]
		if x.Op != y.Op {
			return x.Op < y.Op
		}
		if x.Servers != y.Servers {
			return x.Servers < y.Servers
		}
		if x.Workload != y.Workload {
			return x.Workload < y.Workload
		}
		if x.Config != y.Config {
			return x.Config < y.Config
		}
		if x.Family != y.Family {
			return x.Family < y.Family
		}
		if x.Technique != y.Technique {
			return x.Technique < y.Technique
		}
		if x.OutageNS != y.OutageNS {
			return x.OutageNS < y.OutageNS
		}
		if c := compareProcess(x.Process, y.Process); c != 0 {
			return c < 0
		}
		return x.Best < y.Best
	})
}

// compareProcess orders process-row payload specs so two rows differing
// only in their process (same coordinates, OutageNS both zero) still
// sort deterministically. Point rows (nil) sort before process rows.
func compareProcess(x, y *StoredProcess) int {
	switch {
	case x == nil && y == nil:
		return 0
	case x == nil:
		return -1
	case y == nil:
		return 1
	}
	ord := []func() int{
		func() int { return cmpOrd(x.Seed, y.Seed) },
		func() int { return cmpOrd(x.Draws, y.Draws) },
		func() int { return strings.Compare(x.ArrivalKind, y.ArrivalKind) },
		func() int { return cmpOrd(x.ArrivalMeanNS, y.ArrivalMeanNS) },
		func() int { return cmpOrd(x.ArrivalShape, y.ArrivalShape) },
		func() int { return strings.Compare(x.DurationKind, y.DurationKind) },
		func() int { return cmpOrd(x.DurationMeanNS, y.DurationMeanNS) },
		func() int { return cmpOrd(x.DurationShape, y.DurationShape) },
		func() int { return cmpOrd(x.Correlation, y.Correlation) },
	}
	for _, f := range ord {
		if c := f(); c != 0 {
			return c
		}
	}
	return 0
}

func cmpOrd[T int | int64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// groupKey formats a row's group-by key canonically.
func groupKey(r *StoredRow, field string) (string, bool) {
	s, i, f, b, present := fieldOf(r, field)
	if !present {
		return "", false
	}
	switch queryFields[field] {
	case fString:
		return s, true
	case fInt:
		return strconv.FormatInt(i, 10), true
	case fDur:
		return time.Duration(i).String(), true
	case fBool:
		return strconv.FormatBool(b), true
	default:
		return strconv.FormatFloat(f, 'g', -1, 64), true
	}
}

func groupBy(rows []StoredRow, field string) []Group {
	type acc struct {
		g       Group
		perfN   int
		perfSum float64
		costN   int
		costSum float64
	}
	byKey := map[string]*acc{}
	var order []string
	for i := range rows {
		key, ok := groupKey(&rows[i], field)
		if !ok {
			continue
		}
		a := byKey[key]
		if a == nil {
			a = &acc{g: Group{Field: field, Key: key}}
			byKey[key] = a
			order = append(order, key)
		}
		a.g.Count++
		if res := rows[i].effResult(); res != nil {
			if a.perfN == 0 || res.Perf < a.g.PerfMin {
				a.g.PerfMin = res.Perf
			}
			if a.perfN == 0 || res.Perf > a.g.PerfMax {
				a.g.PerfMax = res.Perf
			}
			a.perfN++
			a.perfSum += res.Perf
		}
		if c, ok := rows[i].normCost(); ok {
			if a.costN == 0 || c < a.g.CostMin {
				a.g.CostMin = c
			}
			if a.costN == 0 || c > a.g.CostMax {
				a.g.CostMax = c
			}
			a.costN++
			a.costSum += c
		}
	}
	sort.Strings(order)
	out := make([]Group, 0, len(order))
	for _, key := range order {
		a := byKey[key]
		if a.perfN > 0 {
			a.g.PerfMean = a.perfSum / float64(a.perfN)
		}
		if a.costN > 0 {
			a.g.CostMean = a.costSum / float64(a.costN)
		}
		out = append(out, a.g)
	}
	return out
}

// frontier keeps the non-dominated min-cost-per-perf rows: no other row
// has perf >= and cost <= with at least one strict. Rows without both a
// perf and a cost (infeasible size rows) are dropped. Output is sorted by
// ascending cost (descending perf breaks ties), so walking the result
// reads as "each extra dollar buys this much performance".
func frontier(rows []StoredRow) []StoredRow {
	type pt struct {
		perf, cost float64
		idx        int
	}
	var pts []pt
	for i := range rows {
		res := rows[i].effResult()
		c, ok := rows[i].normCost()
		if res == nil || !ok {
			continue
		}
		pts = append(pts, pt{perf: res.Perf, cost: c, idx: i})
	}
	sort.SliceStable(pts, func(a, b int) bool {
		if pts[a].cost != pts[b].cost {
			return pts[a].cost < pts[b].cost
		}
		return pts[a].perf > pts[b].perf
	})
	var out []StoredRow
	best := -1.0
	for _, p := range pts {
		if p.perf > best {
			out = append(out, rows[p.idx])
			best = p.perf
		}
	}
	return out
}
