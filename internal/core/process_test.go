package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"backuppower/internal/cost"
	"backuppower/internal/outage"
	"backuppower/internal/technique"
	"backuppower/internal/workload"
)

func testProcess() outage.Process {
	return outage.Process{
		Seed:        42,
		Draws:       8,
		Arrival:     outage.Dist{Kind: outage.KindExponential, Mean: 2000 * time.Hour},
		Duration:    outage.Dist{Kind: outage.KindWeibull, Mean: 30 * time.Minute, Shape: 0.8},
		Correlation: 0.3,
	}
}

// TestEvaluateProcessInvalid: a bad process fails with a typed
// *InputError before any simulation work.
func TestEvaluateProcessInvalid(t *testing.T) {
	f := New(8)
	p := testProcess()
	p.Draws = 0
	_, err := f.EvaluateProcess(cost.NoDG(f.Env.PeakPower()), technique.Baseline{}, workload.Specjbb(), p)
	var ie *InputError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InputError, got %T %v", err, err)
	}
	if ie.Field != "process" {
		t.Fatalf("want field %q, got %q", "process", ie.Field)
	}
}

// TestEvaluateProcessQuietYear: a process whose draws contain no events
// reports perfect availability and the config's bare normalized cost.
func TestEvaluateProcessQuietYear(t *testing.T) {
	f := New(8)
	peak := f.Env.PeakPower()
	p := outage.Process{
		Seed:     7,
		Draws:    4,
		Arrival:  outage.Dist{Kind: outage.KindFixed, Mean: 2 * outage.Year},
		Duration: outage.Dist{Kind: outage.KindFixed, Mean: time.Hour},
	}
	pr, err := f.EvaluateProcess(cost.NoDG(peak), technique.Baseline{}, workload.Specjbb(), p)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Events != 0 || pr.Availability != 1 || pr.Perf != 1 || pr.SurvivalRate != 1 {
		t.Fatalf("quiet year: %+v", pr)
	}
	if pr.ExpectedDowntime != 0 || pr.DowntimeMax != 0 || pr.EnergyShortfallWh != 0 {
		t.Fatalf("quiet year has downtime: %+v", pr)
	}
	if want := cost.NoDG(peak).NormalizedCost(peak); pr.Cost != want {
		t.Fatalf("cost %v != bare normalized cost %v", pr.Cost, want)
	}
}

// TestEvaluateProcessDeterministic: the whole ProcessResult is a pure
// value — two evaluations, including across fresh frameworks (cold
// caches), compare equal field for field.
func TestEvaluateProcessDeterministic(t *testing.T) {
	p := testProcess()
	run := func(f *Framework) ProcessResult {
		pr, err := f.EvaluateProcess(cost.NoDG(f.Env.PeakPower()), technique.Sleep{}, workload.Memcached(), p)
		if err != nil {
			t.Fatal(err)
		}
		return pr
	}
	f := New(8)
	first := run(f)
	if again := run(f); again != first {
		t.Fatalf("warm re-evaluation drifted:\n got %+v\nwant %+v", again, first)
	}
	if cold := run(New(8)); cold != first {
		t.Fatalf("cold-cache evaluation drifted:\n got %+v\nwant %+v", cold, first)
	}
}

// TestEvaluateProcessCancelled: a pre-cancelled context fails fast.
func TestEvaluateProcessCancelled(t *testing.T) {
	f := New(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.EvaluateProcessCtx(ctx, cost.NoDG(f.Env.PeakPower()), technique.Baseline{}, workload.Specjbb(), testProcess())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestEvaluateProcessAggregates cross-checks the fold against a by-hand
// scalar reconstruction: evaluating each drawn event with Evaluate and
// re-aggregating must land on the same numbers.
func TestEvaluateProcessAggregates(t *testing.T) {
	f := New(8)
	peak := f.Env.PeakPower()
	cfg := cost.SmallPUPS(peak)
	w := workload.Specjbb()
	tech := technique.Baseline{}
	p := testProcess()
	p.Draws = 4

	pr, err := f.EvaluateProcess(cfg, tech, w, p)
	if err != nil {
		t.Fatal(err)
	}

	var total time.Duration
	events := 0
	for i := 0; i < p.Draws; i++ {
		for _, e := range p.Draw(i) {
			res, err := f.Evaluate(cfg, tech, w, e.Duration)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Downtime
			events++
		}
	}
	if events == 0 {
		t.Fatal("probe process drew no events; pick a denser one")
	}
	if pr.Events != events {
		t.Fatalf("events %d != %d", pr.Events, events)
	}
	if want := total / time.Duration(p.Draws); pr.ExpectedDowntime != want {
		t.Fatalf("expected downtime %v != scalar reconstruction %v", pr.ExpectedDowntime, want)
	}
}
