// Benchmarks that regenerate every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each benchmark
// executes the corresponding experiment end-to-end — workload generation,
// capacity sizing, scenario simulation — and reports the rendered rows via
// b.Log on the first iteration so a bench run doubles as a reproduction
// run. Micro-benchmarks of the core primitives follow.
package backuppower_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	backuppower "backuppower"
	"backuppower/internal/battery"
	"backuppower/internal/cluster"
	"backuppower/internal/core"
	"backuppower/internal/cost"
	"backuppower/internal/experiments"
	"backuppower/internal/grid"
	"backuppower/internal/memsim"
	"backuppower/internal/migration"
	"backuppower/internal/outage"
	"backuppower/internal/sweep"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		tb := e.Run(context.Background())
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		// Print the reproduced table exactly once (the calibration round
		// always runs with b.N == 1), so a bench run doubles as a
		// reproduction run without flooding the output.
		if i == 0 && b.N == 1 {
			b.Log("\n" + tb.String())
		}
	}
}

// Paper tables.

func BenchmarkTable1CostParameters(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkTable2InfrastructureCost(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3Configurations(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable4TechniquePhases(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkTable5TechniqueImpact(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkTable6HybridTechniques(b *testing.B)   { benchExperiment(b, "table6") }
func BenchmarkTable8SaveResume(b *testing.B)         { benchExperiment(b, "table8") }

// Paper figures.

func BenchmarkFig1OutageDistributions(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig3BatteryRuntime(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig5ConfigTradeoffs(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6SpecjbbTechniques(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7Memcached(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig8WebSearch(b *testing.B)           { benchExperiment(b, "fig8") }
func BenchmarkFig9SpecCPU(b *testing.B)             { benchExperiment(b, "fig9") }
func BenchmarkFig10TCOCrossover(b *testing.B)       { benchExperiment(b, "fig10") }

// Ablations (DESIGN.md §6).

func BenchmarkAblationPeukertVsLinear(b *testing.B)   { benchExperiment(b, "ablation-peukert") }
func BenchmarkAblationProactiveInterval(b *testing.B) { benchExperiment(b, "ablation-proactive") }
func BenchmarkAblationConsolidation(b *testing.B)     { benchExperiment(b, "ablation-consolidation") }
func BenchmarkAblationDGStartup(b *testing.B)         { benchExperiment(b, "ablation-dgstartup") }
func BenchmarkAblationLiIon(b *testing.B)             { benchExperiment(b, "ablation-liion") }
func BenchmarkAblationProportionality(b *testing.B) {
	benchExperiment(b, "ablation-proportionality")
}
func BenchmarkMemSizeSensitivity(b *testing.B) { benchExperiment(b, "memsize") }

// Section 7 extensions.

func BenchmarkExtAvailability(b *testing.B) { benchExperiment(b, "ext-availability") }
func BenchmarkExtNVDIMM(b *testing.B)       { benchExperiment(b, "ext-nvdimm") }
func BenchmarkExtGeoFailover(b *testing.B)  { benchExperiment(b, "ext-geo") }
func BenchmarkExtBarelyAlive(b *testing.B)  { benchExperiment(b, "ext-barelyalive") }
func BenchmarkExtLiIonSizing(b *testing.B)  { benchExperiment(b, "ext-liion-sizing") }
func BenchmarkExtPlacement(b *testing.B)    { benchExperiment(b, "ext-placement") }
func BenchmarkExtCheckpoint(b *testing.B)   { benchExperiment(b, "ext-checkpoint") }
func BenchmarkExtDiurnal(b *testing.B)      { benchExperiment(b, "ext-diurnal") }
func BenchmarkExtPortfolio(b *testing.B)    { benchExperiment(b, "ext-portfolio") }
func BenchmarkExtOpEx(b *testing.B)         { benchExperiment(b, "ext-opex") }
func BenchmarkExtPolicy(b *testing.B)       { benchExperiment(b, "ext-policy") }
func BenchmarkExtWear(b *testing.B)         { benchExperiment(b, "ext-wear") }
func BenchmarkExtUPSTopology(b *testing.B)  { benchExperiment(b, "ext-upstopology") }
func BenchmarkExtGeoFleet(b *testing.B)     { benchExperiment(b, "ext-geofleet") }

// Micro-benchmarks of the primitives the experiments lean on.

func BenchmarkScenarioSimulate(b *testing.B) {
	env := technique.DefaultEnv(64)
	scn := cluster.Scenario{
		Env:       env,
		Workload:  workload.Specjbb(),
		Backup:    cost.LargeEUPS(env.PeakPower()),
		Technique: technique.ThrottleThenSave{PState: 6, Save: technique.SaveSleep, ActiveFraction: 0.5},
		Outage:    time.Hour,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Simulate(scn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioSimulateAggregate measures the trace-free fast path the
// framework sweeps actually take. Compare against BenchmarkScenarioSimulate
// for the cost of timeline recording; the alloc floor here is the
// technique's plan construction (the segment walk itself is pinned
// allocation-free by TestAggregatePathAllocFree).
func BenchmarkScenarioSimulateAggregate(b *testing.B) {
	env := technique.DefaultEnv(64)
	scn := cluster.Scenario{
		Env:       env,
		Workload:  workload.Specjbb(),
		Backup:    cost.LargeEUPS(env.PeakPower()),
		Technique: technique.ThrottleThenSave{PState: 6, Save: technique.SaveSleep, ActiveFraction: 0.5},
		Outage:    time.Hour,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.SimulateAggregate(scn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinCostSizing(b *testing.B) {
	fw := backuppower.NewFramework(64)
	w := workload.Specjbb()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := fw.MinCostUPS(technique.Throttling{PState: 6}, w, 30*time.Minute); !ok {
			b.Fatal("sizing failed")
		}
	}
}

func BenchmarkBatteryDrain(b *testing.B) {
	pack := battery.NewPack(battery.LeadAcid(), 4*units.Kilowatt, 10*time.Minute)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s battery.State
		for !s.Depleted() {
			s.Drain(pack, 3*units.Kilowatt, time.Minute)
		}
	}
}

func BenchmarkPrecopyMigration(b *testing.B) {
	cfg := migration.DefaultConfig()
	w := workload.Specjbb()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := migration.Live(cfg, w, 1)
		if !p.Converged {
			b.Fatal("did not converge")
		}
	}
}

func BenchmarkAdaptivePolicyDecide(b *testing.B) {
	fw := backuppower.NewFramework(64)
	pol, err := backuppower.NewAdaptivePolicy(fw.Env, workload.Specjbb(),
		backuppower.NewUPS(fw.Env.PeakPower(), 20*time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pol.Decide(time.Duration(i%3600)*time.Second, 0.8)
		if i%64 == 0 {
			pol.Reset(5 * time.Minute)
		}
	}
}

// benchSweepWidth runs a fixed 32-scenario batch through the sweep engine
// at the given pool width, simulating directly (no memoization) so the
// numbers isolate the pool itself. The Serial/Parallel pair tracks the
// engine's speedup in the bench trajectory.
func benchSweepWidth(b *testing.B, width int) {
	b.Helper()
	env := technique.DefaultEnv(16)
	w := workload.Specjbb()
	scns := make([]cluster.Scenario, 32)
	for i := range scns {
		scns[i] = cluster.Scenario{
			Env:      env,
			Workload: w,
			Backup:   cost.LargeEUPS(env.PeakPower()),
			Technique: technique.ThrottleThenSave{
				PState: 6, Save: technique.SaveSleep,
				ActiveFraction: float64(i%5+1) / 5,
			},
			Outage: time.Duration(i+1) * time.Minute,
		}
	}
	ctx := sweep.WithWidth(context.Background(), width)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sweep.Map(ctx, scns, func(_ context.Context, s cluster.Scenario) (cluster.Result, error) {
			return cluster.Simulate(s)
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(scns) {
			b.Fatalf("results = %d", len(res))
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchSweepWidth(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweepWidth(b, runtime.GOMAXPROCS(0)) }

// BenchmarkFullRegen regenerates the entire registry serially from a cold
// scenario cache — the wall-clock the CLI's default run tracks.
func BenchmarkFullRegen(b *testing.B) {
	ctx := sweep.WithWidth(context.Background(), 1)
	for i := 0; i < b.N; i++ {
		core.ResetScenarioCache()
		memsim.ResetPrecopyMemo()
		if _, err := experiments.RunAll(ctx, experiments.Registry()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchOutageAxis builds an n-point outage axis spanning 30s..8h — the
// range the paper's figures sweep.
func benchOutageAxis(n int) []time.Duration {
	axis := make([]time.Duration, n)
	span := 8*time.Hour - 30*time.Second
	for i := range axis {
		axis[i] = 30*time.Second + time.Duration(i)*span/time.Duration(max(n-1, 1))
	}
	return axis
}

// BenchmarkOutageBatch measures the batch kernel directly: one plan and
// one segment walk amortized over the whole outage axis. Compare against
// BenchmarkOutageScalar at the same axis width for the per-point dispatch
// it replaces; per-point cost should fall as the axis widens while the
// scalar path stays flat.
func BenchmarkOutageBatch(b *testing.B) {
	for _, n := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("axis-%d", n), func(b *testing.B) {
			env := technique.DefaultEnv(64)
			scn := cluster.Scenario{
				Env:       env,
				Workload:  workload.Specjbb(),
				Backup:    cost.LargeEUPS(env.PeakPower()),
				Technique: technique.Sleep{LowPower: true},
				Outage:    time.Hour,
			}
			axis := benchOutageAxis(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := cluster.SimulateOutageBatch(scn, axis)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != n {
					b.Fatalf("results = %d", len(res))
				}
			}
		})
	}
}

// BenchmarkOutageScalar is the per-point loop BenchmarkOutageBatch
// replaces: one SimulateAggregate per axis point.
func BenchmarkOutageScalar(b *testing.B) {
	for _, n := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("axis-%d", n), func(b *testing.B) {
			env := technique.DefaultEnv(64)
			scn := cluster.Scenario{
				Env:       env,
				Workload:  workload.Specjbb(),
				Backup:    cost.LargeEUPS(env.PeakPower()),
				Technique: technique.Sleep{LowPower: true},
				Outage:    time.Hour,
			}
			axis := benchOutageAxis(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, d := range axis {
					scn.Outage = d
					if _, err := cluster.SimulateAggregate(scn); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkSizingOutageAxis measures warm-started bracket sizing along a
// 32-point outage axis from a cold scenario cache each iteration (the
// memo would otherwise make every iteration after the first free).
func BenchmarkSizingOutageAxis(b *testing.B) {
	fw := backuppower.NewFramework(64)
	w := workload.Specjbb()
	axis := benchOutageAxis(32)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ResetScenarioCache()
		pts, err := fw.MinCostUPSAxisCtx(ctx, technique.Sleep{LowPower: true}, w, axis)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != len(axis) {
			b.Fatalf("points = %d", len(pts))
		}
	}
}

// BenchmarkSizingOutageScalar is the cold-bracket-per-point loop that
// BenchmarkSizingOutageAxis replaces.
func BenchmarkSizingOutageScalar(b *testing.B) {
	fw := backuppower.NewFramework(64)
	w := workload.Specjbb()
	axis := benchOutageAxis(32)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ResetScenarioCache()
		for _, d := range axis {
			if _, _, err := fw.MinCostUPSCtx(ctx, technique.Sleep{LowPower: true}, w, d); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchGridOutageAxis runs a 32-point outage-axis grid end-to-end through
// the Runner (serial width, cold cache per iteration) with the batch
// kernel on or off. This is the acceptance pair: the batched run must
// stay well ahead of the scalar dispatch at identical output bytes.
func benchGridOutageAxis(b *testing.B, noBatch bool) {
	b.Helper()
	outs := make([]string, 32)
	for i, d := range benchOutageAxis(32) {
		outs[i] = d.String()
	}
	spec := grid.Spec{
		Workloads:  []string{"specjbb"},
		Configs:    []grid.ConfigDTO{{Name: "LargeEUPS"}},
		Techniques: []grid.TechniqueDTO{{Name: "sleep"}, {Name: "migration"}},
		Outages:    outs,
	}
	plan, err := grid.Compile(spec, grid.CompileOptions{DefaultServers: 16})
	if err != nil {
		b.Fatal(err)
	}
	r := grid.NewRunner(core.New(16))
	ctx := sweep.WithWidth(context.Background(), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ResetScenarioCache()
		rows := 0
		err := r.RunStream(ctx, plan, grid.RunOptions{NoBatch: noBatch}, func(row grid.RowResult) error {
			if row.Err != nil {
				return row.Err
			}
			rows++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if rows != len(plan.Points) {
			b.Fatalf("rows = %d", rows)
		}
	}
}

func BenchmarkGridOutageAxis(b *testing.B)        { benchGridOutageAxis(b, false) }
func BenchmarkGridOutageAxisNoBatch(b *testing.B) { benchGridOutageAxis(b, true) }

func BenchmarkBestForConfig(b *testing.B) {
	fw := backuppower.NewFramework(16)
	w := workload.Memcached()
	cfg := cost.LargeEUPS(fw.Env.PeakPower())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res, _ := fw.BestForConfig(cfg, w, 30*time.Minute); !res.Survived {
			b.Fatal("best config should survive")
		}
	}
}

// benchProcessEval measures EvaluateProcess at a given draw count —
// the process-level batch fold (draw expansion + one EvaluateBatchCtx +
// per-draw aggregation), cold scenario cache each iteration.
func benchProcessEval(b *testing.B, draws int) {
	b.Helper()
	fw := core.New(16)
	peak := fw.Env.PeakPower()
	cfg := cost.NoDG(peak)
	w := workload.Specjbb()
	p := outage.Process{
		Seed:        42,
		Draws:       draws,
		Arrival:     outage.Dist{Kind: outage.KindExponential, Mean: 2000 * time.Hour},
		Duration:    outage.Dist{Kind: outage.KindWeibull, Mean: 30 * time.Minute, Shape: 0.8},
		Correlation: 0.3,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ResetScenarioCache()
		pr, err := fw.EvaluateProcess(cfg, technique.Sleep{}, w, p)
		if err != nil {
			b.Fatal(err)
		}
		if pr.Draws != draws {
			b.Fatalf("draws = %d", pr.Draws)
		}
	}
}

func BenchmarkProcessEval8Draws(b *testing.B)  { benchProcessEval(b, 8) }
func BenchmarkProcessEval64Draws(b *testing.B) { benchProcessEval(b, 64) }
