// Command experiments regenerates the paper's tables and figures from the
// models. With no flags it runs everything in paper order; -exp selects a
// single experiment and -list enumerates the ids. -parallel sets the
// sweep-engine worker-pool width (every nested scenario fan-out — variant
// races, rating sweeps, Monte-Carlo years — shares it; 1 forces the serial
// reference behavior) and -timeout bounds the whole regeneration. Output
// is byte-identical at every width: tables render in registry order no
// matter which finished first.
//
// -cpuprofile and -memprofile write pprof profiles of the regeneration
// (analyze with `go tool pprof`); -dense-sizing switches the UPS sizing
// sweep back to the dense 65-point grid for cross-checking the bracketed
// search.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"backuppower/internal/core"
	"backuppower/internal/experiments"
	"backuppower/internal/report"
	"backuppower/internal/sweep"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text or csv")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"sweep worker-pool width (1 = serial)")
	timeout := flag.Duration("timeout", 0, "abort the regeneration after this long (0 = no limit)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	denseSizing := flag.Bool("dense-sizing", false,
		"use the dense 65-point UPS rating sweep instead of the bracketed search")
	flag.Parse()

	core.DenseSizingGrid = *denseSizing

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // flush accounting so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	render := func(t report.Table, w io.Writer) error { return t.Render(w) }
	switch *format {
	case "text":
	case "csv":
		render = func(t report.Table, w io.Writer) error { return t.RenderCSV(w) }
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	ctx := sweep.WithWidth(context.Background(), *parallel)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp != "" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(2)
		}
		if err := render(e.Run(ctx), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	tables, err := experiments.RunAll(ctx, experiments.Registry())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var buf bytes.Buffer
	for _, t := range tables {
		if err := render(t, &buf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if _, err := buf.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
