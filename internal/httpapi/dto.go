package httpapi

import (
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/core"
	"backuppower/internal/cost"
)

// The wire types. Requests carry quantities as human strings ("120kW",
// "30m") parsed through internal/units; responses render durations in
// Go's canonical duration syntax and powers/energies as plain numbers
// with the unit in the field name, so every field is self-describing and
// the encoding is deterministic (the golden tests pin it byte-for-byte).

// ConfigDTO selects a backup configuration: either a Table 3 name
// ("MaxPerf", "NoDG", "LargeEUPS", ... — scaled to the serving
// framework's peak power), or a custom configuration from explicit
// capacities. Exactly one of the two forms must be used.
type ConfigDTO struct {
	Name       string `json:"name,omitempty"`
	DGPower    string `json:"dg_power,omitempty"`
	UPSPower   string `json:"ups_power,omitempty"`
	UPSRuntime string `json:"ups_runtime,omitempty"`
}

// TechniqueDTO selects an outage-handling technique by family name plus
// the family's parameters. Parameters that do not apply to the named
// family are rejected, not ignored.
type TechniqueDTO struct {
	Name           string   `json:"name"`
	PState         *int     `json:"pstate,omitempty"`
	LowPower       *bool    `json:"low_power,omitempty"`
	Proactive      *bool    `json:"proactive,omitempty"`
	ThrottleDeep   *bool    `json:"throttle_deep,omitempty"`
	Save           string   `json:"save,omitempty"`
	ActiveFraction *float64 `json:"active_fraction,omitempty"`
	Budget         string   `json:"budget,omitempty"`
}

// EvaluateRequest is the body of POST /v1/evaluate: one scenario point.
type EvaluateRequest struct {
	Config    ConfigDTO    `json:"config"`
	Technique TechniqueDTO `json:"technique"`
	Workload  string       `json:"workload"`
	Outage    string       `json:"outage"`
	// Width overrides the sweep worker-pool width for this request
	// (0 = server default). Results are identical at any width.
	Width int `json:"width,omitempty"`
	// Timeout tightens the per-request deadline below the server's
	// -timeout; it can never extend it.
	Timeout string `json:"timeout,omitempty"`
}

// SizeRequest is the body of POST /v1/size: find the cheapest UPS-only
// backup under which the technique survives the outage.
type SizeRequest struct {
	Technique TechniqueDTO `json:"technique"`
	Workload  string       `json:"workload"`
	Outage    string       `json:"outage"`
	Width     int          `json:"width,omitempty"`
	Timeout   string       `json:"timeout,omitempty"`
}

// BestRequest is the body of POST /v1/best: race all techniques behind a
// fixed configuration and return the winner (the Figure 5 selection).
type BestRequest struct {
	Config   ConfigDTO `json:"config"`
	Workload string    `json:"workload"`
	Outage   string    `json:"outage"`
	Width    int       `json:"width,omitempty"`
	Timeout  string    `json:"timeout,omitempty"`
}

// ResultDTO mirrors cluster.Result without the trace pointers.
type ResultDTO struct {
	Technique       string  `json:"technique"`
	Config          string  `json:"config"`
	Workload        string  `json:"workload"`
	Outage          string  `json:"outage"`
	Survived        bool    `json:"survived"`
	CrashedAt       string  `json:"crashed_at,omitempty"`
	Perf            float64 `json:"perf"`
	Downtime        string  `json:"downtime"`
	DowntimeMin     string  `json:"downtime_min"`
	DowntimeMax     string  `json:"downtime_max"`
	PeakUPSDrawW    float64 `json:"peak_ups_draw_w"`
	PeakBackupDrawW float64 `json:"peak_backup_draw_w"`
	UPSEnergyWh     float64 `json:"ups_energy_wh"`
	UPSRemaining    float64 `json:"ups_remaining"`
	NormCost        float64 `json:"norm_cost"`
}

func resultDTO(r cluster.Result) ResultDTO {
	d := ResultDTO{
		Technique:       r.Technique,
		Config:          r.Config,
		Workload:        r.Workload,
		Outage:          r.Outage.String(),
		Survived:        r.Survived,
		Perf:            r.Perf,
		Downtime:        r.Downtime.String(),
		DowntimeMin:     r.DowntimeMin.String(),
		DowntimeMax:     r.DowntimeMax.String(),
		PeakUPSDrawW:    float64(r.PeakUPSDraw),
		PeakBackupDrawW: float64(r.PeakBackupDraw),
		UPSEnergyWh:     float64(r.UPSEnergy),
		UPSRemaining:    r.UPSRemaining,
		NormCost:        r.Cost,
	}
	if !r.Survived {
		d.CrashedAt = r.CrashedAt.String()
	}
	return d
}

// BackupDTO describes a concrete backup configuration in a response.
type BackupDTO struct {
	Name              string  `json:"name"`
	DGPowerW          float64 `json:"dg_power_w"`
	UPSPowerW         float64 `json:"ups_power_w"`
	UPSRuntime        string  `json:"ups_runtime"`
	AnnualCostDollars float64 `json:"annual_cost_dollars_per_year"`
}

func backupDTO(b cost.Backup) BackupDTO {
	return BackupDTO{
		Name:              b.Name,
		DGPowerW:          float64(b.DG.PowerCapacity),
		UPSPowerW:         float64(b.UPS.PowerCapacity),
		UPSRuntime:        b.UPS.Runtime.String(),
		AnnualCostDollars: float64(b.AnnualCost()),
	}
}

// EvaluateResponse is the body of a successful POST /v1/evaluate.
type EvaluateResponse struct {
	Result ResultDTO `json:"result"`
}

// SizeResponse is the body of a successful POST /v1/size. Feasible false
// means no UPS-only configuration lets the technique survive the outage
// (still a 200 — infeasibility is an answer, not an error).
type SizeResponse struct {
	Feasible  bool       `json:"feasible"`
	Technique string     `json:"technique,omitempty"`
	Backup    *BackupDTO `json:"backup,omitempty"`
	NormCost  float64    `json:"norm_cost,omitempty"`
	Result    *ResultDTO `json:"result,omitempty"`
}

func sizeResponse(op core.OperatingPoint, ok bool) SizeResponse {
	if !ok {
		return SizeResponse{}
	}
	b := backupDTO(op.Backup)
	r := resultDTO(op.Result)
	return SizeResponse{
		Feasible:  true,
		Technique: op.Technique,
		Backup:    &b,
		NormCost:  op.NormCost,
		Result:    &r,
	}
}

// BestResponse is the body of a successful POST /v1/best.
type BestResponse struct {
	Technique string    `json:"technique"`
	Result    ResultDTO `json:"result"`
}

// TechniqueInfo is one entry of GET /v1/techniques.
type TechniqueInfo struct {
	Name   string   `json:"name"`
	Params []string `json:"params,omitempty"`
	Doc    string   `json:"doc"`
}

// TechniquesResponse is the body of GET /v1/techniques.
type TechniquesResponse struct {
	Techniques []TechniqueInfo `json:"techniques"`
	// Families are the Figure 6-9 family names the sizing sweeps group by.
	Families []string `json:"families"`
}

// WorkloadInfo is one entry of GET /v1/workloads.
type WorkloadInfo struct {
	Name             string  `json:"name"`
	PerfMetric       string  `json:"perf_metric"`
	FootprintGiB     float64 `json:"footprint_gib"`
	Utilization      float64 `json:"utilization"`
	CPUBoundFraction float64 `json:"cpu_bound_fraction"`
}

// WorkloadsResponse is the body of GET /v1/workloads.
type WorkloadsResponse struct {
	Workloads []WorkloadInfo `json:"workloads"`
}

// ErrorBody is the JSON shape of every non-2xx response.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail names what went wrong. Code is a stable machine-readable
// string; Field (when set) is the request field that was rejected.
type ErrorDetail struct {
	Code    string `json:"code"`
	Field   string `json:"field,omitempty"`
	Message string `json:"message"`
}

// outage bounds shared by the request validators.
const maxOutage = time.Duration(core.MaxOutage)
