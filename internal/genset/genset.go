// Package genset models the Diesel Generator (DG) half of the backup
// infrastructure. Per Section 3 of the paper: a DG's cap-ex is dominated by
// its peak power rating (fuel tanks are comparatively cheap, so energy is
// effectively unconstrained), it takes 20-30 seconds to start and produce
// power, and transferring the datacenter load from the UPS to the DG happens
// in gradual load steps, making the overall transition ~2-3 minutes — which
// is what dictates the 2-minute minimum UPS battery runtime in today's
// (MaxPerf) datacenters.
package genset

import (
	"fmt"
	"time"

	"backuppower/internal/units"
)

// Config describes a provisioned diesel generator.
type Config struct {
	// PowerCapacity is the peak load the DG can sustain. Zero means no DG
	// is provisioned.
	PowerCapacity units.Watts

	// StartupDelay is the time from outage detection to the DG producing
	// usable power (paper: 20-30 s; default 25 s).
	StartupDelay time.Duration

	// TransferSteps is the number of gradual load steps used to move the
	// load from UPS to DG, and TransferStepDelay the spacing between them.
	// With the defaults the full transfer completes ~2.5 minutes after the
	// outage starts, matching the paper's "~2-3 mins" overall transition.
	TransferSteps     int
	TransferStepDelay time.Duration

	// FuelRuntime bounds how long the DG can run before the tank empties.
	// The paper treats DGs as a "potentially infinite energy source";
	// DefaultFuelRuntime (48 h) is effectively that for all experiments.
	FuelRuntime time.Duration

	// CostPerKWYear is the amortized cap-ex rate (Table 1: $83.3/KW/yr,
	// 12-year depreciation).
	CostPerKWYear float64
}

// Defaults used across the experiments.
const (
	DefaultStartupDelay      = 25 * time.Second
	DefaultTransferSteps     = 5
	DefaultTransferStepDelay = 25 * time.Second
	DefaultFuelRuntime       = 48 * time.Hour
	DefaultCostPerKWYear     = 83.3
)

// New returns a DG config with the paper's default dynamics for the given
// power capacity. Capacity 0 yields a "no DG" config.
func New(capacity units.Watts) Config {
	return Config{
		PowerCapacity:     capacity,
		StartupDelay:      DefaultStartupDelay,
		TransferSteps:     DefaultTransferSteps,
		TransferStepDelay: DefaultTransferStepDelay,
		FuelRuntime:       DefaultFuelRuntime,
		CostPerKWYear:     DefaultCostPerKWYear,
	}
}

// None returns an unprovisioned (absent) DG.
func None() Config { return New(0) }

// Provisioned reports whether a DG exists at all.
func (c Config) Provisioned() bool { return c.PowerCapacity > 0 }

// Validate checks the configuration for physical plausibility.
func (c Config) Validate() error {
	if c.PowerCapacity < 0 {
		return fmt.Errorf("genset: negative power capacity %v", c.PowerCapacity)
	}
	if !c.Provisioned() {
		return nil
	}
	switch {
	case c.StartupDelay <= 0:
		return fmt.Errorf("genset: non-positive startup delay %v", c.StartupDelay)
	case c.TransferSteps < 1:
		return fmt.Errorf("genset: transfer steps %d < 1", c.TransferSteps)
	case c.TransferStepDelay < 0:
		return fmt.Errorf("genset: negative transfer step delay")
	case c.FuelRuntime <= 0:
		return fmt.Errorf("genset: non-positive fuel runtime")
	}
	return nil
}

// AnnualCost is Equation (1) of the paper: cost linear in power capacity.
func (c Config) AnnualCost() units.DollarsPerYear {
	return units.DollarsPerYear(c.CostPerKWYear * c.PowerCapacity.KW())
}

// TransferCompleteAt returns the time (after outage start) at which the DG
// carries the full load: startup plus all load steps.
func (c Config) TransferCompleteAt() time.Duration {
	if !c.Provisioned() {
		return 0
	}
	return c.StartupDelay + time.Duration(c.TransferSteps)*c.TransferStepDelay
}

// SuppliedFraction returns the fraction of the datacenter load carried by
// the DG at time t after the outage begins: 0 before startup, then rising
// in equal steps to 1 at TransferCompleteAt, and back to 0 when the fuel
// runs out. The complement must come from the UPS.
func (c Config) SuppliedFraction(t time.Duration) float64 {
	if !c.Provisioned() || t < c.StartupDelay || t >= c.FuelRuntime {
		return 0
	}
	stepsDone := int((t-c.StartupDelay)/c.TransferStepDelay) + 1
	if stepsDone > c.TransferSteps {
		stepsDone = c.TransferSteps
	}
	return float64(stepsDone) / float64(c.TransferSteps)
}

// StepTimes lists the instants (after outage start) at which the supplied
// fraction changes — the event times a simulation must visit.
func (c Config) StepTimes() []time.Duration {
	if !c.Provisioned() {
		return nil
	}
	out := make([]time.Duration, 0, c.TransferSteps+1)
	for i := 0; i < c.TransferSteps; i++ {
		out = append(out, c.StartupDelay+time.Duration(i)*c.TransferStepDelay)
	}
	out = append(out, c.FuelRuntime)
	return out
}

// CanCarry reports whether the DG can carry the given sustained load.
func (c Config) CanCarry(load units.Watts) bool {
	return load <= c.PowerCapacity
}
