// Command outagegen samples yearly utility-outage traces from the Figure 1
// distributions, printing each outage and per-year summaries — the inputs a
// capacity planner feeds to the framework.
package main

import (
	"flag"
	"fmt"

	"backuppower/internal/outage"
	"backuppower/internal/report"
)

func main() {
	years := flag.Int("years", 5, "number of years to sample")
	seed := flag.Int64("seed", 1, "random seed (traces are reproducible)")
	quiet := flag.Bool("summary", false, "print only per-year summaries")
	flag.Parse()

	g := outage.NewGenerator(*seed)
	d := outage.DurationDistribution()
	fmt.Printf("distribution: mean %s, median %s, P95 %s\n\n",
		report.FormatDuration(d.Mean()),
		report.FormatDuration(d.Quantile(0.5)),
		report.FormatDuration(d.Quantile(0.95)))

	for y := 1; y <= *years; y++ {
		events := g.Year()
		total := outage.TotalOutageTime(events)
		fmt.Printf("year %d: %d outages, %s total\n", y, len(events), report.FormatDuration(total))
		if *quiet {
			continue
		}
		for _, e := range events {
			fmt.Printf("  at %6.1fd  for %s\n", e.Start.Hours()/24, report.FormatDuration(e.Duration))
		}
	}
}
