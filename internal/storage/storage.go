// Package storage models the persistent storage paths the outage-handling
// techniques depend on: the local disk that hibernation writes memory
// images to (and resumes from), and the shared storage server that holds
// application persistent state (assumed to keep backup power even when the
// compute backup is underprovisioned, per Section 5's migration setup).
//
// Rates are calibrated to Table 8: hibernating SPECjbb's 18 GB takes 230 s
// (~80 MB/s effective save) and resuming takes 157 s (~118 MB/s restore).
package storage

import (
	"fmt"
	"time"

	"backuppower/internal/units"
)

// Disk is a sequential-rate storage device model.
type Disk struct {
	Name      string
	WriteRate units.BytesPerSecond
	ReadRate  units.BytesPerSecond
}

// DefaultLocal is the testbed's local disk.
func DefaultLocal() Disk {
	return Disk{
		Name:      "local-hdd",
		WriteRate: 80 * units.MiBps * 1.0018, // calibrated: 18 GiB / 230 s
		ReadRate:  117.5 * units.MiBps,       // calibrated: 18 GiB / 157 s
	}
}

// DefaultShared is the shared storage server (network-attached; effective
// rates bounded by the 1 Gbps fabric).
func DefaultShared() Disk {
	return Disk{
		Name:      "shared-store",
		WriteRate: 110 * units.MiBps,
		ReadRate:  110 * units.MiBps,
	}
}

// Validate checks the device.
func (d Disk) Validate() error {
	if d.WriteRate <= 0 || d.ReadRate <= 0 {
		return fmt.Errorf("storage: %s has non-positive rates", d.Name)
	}
	return nil
}

// WriteTime returns the time to persist size bytes sequentially. The
// throttle factor scales effective bandwidth down when the CPU driving the
// I/O is throttled (the paper's Hibernate-L takes 385 s vs 230 s at half
// power — I/O issue rate follows the clock).
func (d Disk) WriteTime(size units.Bytes, throttle float64) time.Duration {
	return effective(d.WriteRate, throttle).TimeFor(size)
}

// ReadTime returns the time to read size bytes sequentially.
func (d Disk) ReadTime(size units.Bytes, throttle float64) time.Duration {
	return effective(d.ReadRate, throttle).TimeFor(size)
}

// effective derates a rate by CPU throttle: at full speed the disk is the
// bottleneck; as the CPU slows the issue path dominates. The blend keeps
// Hibernate-L/Hibernate ≈ 385/230 at 50% throttle (Table 8): a 33% I/O
// floor plus clock-proportional remainder.
func effective(r units.BytesPerSecond, throttle float64) units.BytesPerSecond {
	throttle = units.Clamp01(throttle)
	const floor = 0.195
	return r * units.BytesPerSecond(floor+(1-floor)*throttle)
}
