package outage

import (
	"testing"
	"time"

	"backuppower/internal/units"
)

func TestNewPredictor(t *testing.T) {
	p, err := NewPredictor(DurationDistribution(), 100)
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	// Prior alone reproduces the historical distribution.
	post := p.Posterior()
	hist := DurationDistribution()
	for i := range post.Buckets {
		if !units.AlmostEqual(post.Buckets[i].Prob, hist.Buckets[i].Prob, 1e-9) {
			t.Errorf("bucket %d: %v vs %v", i, post.Buckets[i].Prob, hist.Buckets[i].Prob)
		}
	}
	if _, err := NewPredictor(DurationDistribution(), 0); err == nil {
		t.Error("zero prior weight should fail")
	}
	if _, err := NewPredictor(Distribution{}, 1); err == nil {
		t.Error("invalid distribution should fail")
	}
}

func TestObserveShiftsPosterior(t *testing.T) {
	p, _ := NewPredictor(DurationDistribution(), 10)
	// A site that only ever sees multi-hour outages.
	for i := 0; i < 100; i++ {
		p.Observe(3 * time.Hour)
	}
	post := p.Posterior()
	// The 120-240 min bucket should now dominate.
	if post.Buckets[4].Prob < 0.8 {
		t.Errorf("observed bucket prob = %v, want > 0.8", post.Buckets[4].Prob)
	}
	if err := post.Validate(); err != nil {
		t.Errorf("posterior invalid: %v", err)
	}
	// Expected remaining at time 0 should now be hours.
	if rem := p.ExpectedRemaining(0); rem < time.Hour {
		t.Errorf("expected remaining = %v", rem)
	}
}

func TestObserveTailCap(t *testing.T) {
	p, _ := NewPredictor(DurationDistribution(), 10)
	p.Observe(20 * time.Hour) // beyond support: lands in the last bucket
	post := p.Posterior()
	last := len(post.Buckets) - 1
	if post.Buckets[last].Prob <= DurationDistribution().Buckets[last].Prob {
		t.Error("tail observation should raise the last bucket")
	}
}

func TestTransitionMatrix(t *testing.T) {
	p, _ := NewPredictor(DurationDistribution(), 100)
	m := p.TransitionMatrix()
	n := len(DurationDistribution().Buckets)
	if len(m) != n {
		t.Fatalf("matrix size %d", len(m))
	}
	for i, row := range m {
		sum := 0.0
		for j, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("m[%d][%d] = %v", i, j, v)
			}
			if j < i && v != 0 {
				t.Fatalf("backwards transition m[%d][%d] = %v", i, j, v)
			}
			sum += v
		}
		if !units.AlmostEqual(sum, 1, 1e-9) {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// Row 0 restates the unconditional distribution.
	hist := DurationDistribution()
	for j, b := range hist.Buckets {
		if !units.AlmostEqual(m[0][j], b.Prob, 1e-9) {
			t.Errorf("m[0][%d] = %v, want %v", j, m[0][j], b.Prob)
		}
	}
}

func TestPredictBucket(t *testing.T) {
	p, _ := NewPredictor(DurationDistribution(), 100)
	// Fresh outage: the <1 min bucket is the most likely (31%).
	if got := p.PredictBucket(0); got != 0 {
		t.Errorf("PredictBucket(0) = %d", got)
	}
	// 10 minutes in: buckets 0-1 are impossible; prediction advances.
	got := p.PredictBucket(10 * time.Minute)
	if got < 2 {
		t.Errorf("PredictBucket(10m) = %d, want >= 2", got)
	}
	// 5 hours in: only the tail remains.
	if got := p.PredictBucket(5 * time.Hour); got != 5 {
		t.Errorf("PredictBucket(5h) = %d", got)
	}
}

func TestPredictorConditionalsMatchDistribution(t *testing.T) {
	p, _ := NewPredictor(DurationDistribution(), 50)
	d := DurationDistribution()
	for _, elapsed := range []time.Duration{0, 2 * time.Minute, time.Hour} {
		if got, want := p.ProbEndsWithin(elapsed, 5*time.Minute), d.ProbEndsWithin(elapsed, 5*time.Minute); !units.AlmostEqual(got, want, 1e-9) {
			t.Errorf("ProbEndsWithin(%v) = %v, want %v", elapsed, got, want)
		}
		if got, want := p.ExpectedRemaining(elapsed), d.ExpectedRemaining(elapsed); !units.AlmostEqual(got.Seconds(), want.Seconds(), 1e-9) {
			t.Errorf("ExpectedRemaining(%v) = %v, want %v", elapsed, got, want)
		}
	}
}
