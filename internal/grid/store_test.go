package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"backuppower/internal/core"
	"backuppower/internal/resultstore"
	"backuppower/internal/sweep"
)

// storeRunNDJSON streams one plan through a fresh runner at the given
// pool width and returns the NDJSON bytes, exactly as the serving
// surfaces encode them.
func storeRunNDJSON(t *testing.T, plan *Plan, width int, opts RunOptions) []byte {
	t.Helper()
	ctx := context.Background()
	if width > 0 {
		ctx = sweep.WithWidth(ctx, width)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	err := NewRunner(core.New(8)).RunStream(ctx, plan, opts, func(row RowResult) error {
		return enc.Encode(NewRowDTO(plan.Op, row))
	})
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	return buf.Bytes()
}

func storePlans(t *testing.T) map[string]*Plan {
	t.Helper()
	return map[string]*Plan{
		"evaluate": compileOK(t, Spec{
			Workloads: []string{"specjbb", "memcached"},
			Configs:   []ConfigDTO{{Name: "MaxPerf"}, {Name: "NoDG"}},
			Techniques: []TechniqueDTO{
				{Name: "baseline"},
				{Name: "sleep", LowPower: boolp(true)},
			},
			Outages: []string{"30s", "5m", "30m"},
		}),
		"size": compileOK(t, Spec{
			Op:        OpSize,
			Workloads: []string{"specjbb"},
			Techniques: []TechniqueDTO{
				{Name: "throttling", PState: intp(6)},
				{Name: "baseline"},
			},
			Outages: []string{"5m", "2h"},
		}),
		"best": compileOK(t, Spec{
			Op:        OpBest,
			Workloads: []string{"specjbb"},
			Configs:   []ConfigDTO{{Name: "NoDG"}},
			Outages:   []string{"5m", "30m"},
		}),
	}
}

// TestRunStreamWarmRerunServedFromStore is the tentpole acceptance at
// the grid layer: a rerun of an identical plan against a warm store
// evaluates zero new fingerprints (proven by the store's recompute/put
// counters) and emits byte-identical NDJSON at any parallel width and
// shard size.
func TestRunStreamWarmRerunServedFromStore(t *testing.T) {
	for name, plan := range storePlans(t) {
		t.Run(name, func(t *testing.T) {
			disk, err := resultstore.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			SetRowStore(disk)
			defer func() {
				SetRowStore(nil)
				disk.Close()
			}()

			cold := storeRunNDJSON(t, plan, 0, RunOptions{})
			st := disk.Stats()
			if int(st.RecomputesRows) != len(plan.Points) || int(st.Puts) != len(plan.Points) {
				t.Fatalf("cold run stats: %+v for %d points", st, len(plan.Points))
			}
			if st.Seals == 0 {
				t.Fatalf("completed sweep did not seal: %+v", st)
			}

			for _, cfg := range []struct {
				width int
				opts  RunOptions
			}{
				{0, RunOptions{}},
				{1, RunOptions{}},
				{4, RunOptions{ShardSize: 1}},
				{2, RunOptions{ShardSize: 3}},
				{0, RunOptions{ShardSize: 7}},
				{0, RunOptions{NoBatch: true}},
			} {
				before := disk.Stats()
				warm := storeRunNDJSON(t, plan, cfg.width, cfg.opts)
				if !bytes.Equal(warm, cold) {
					t.Fatalf("width %d opts %+v: warm rerun bytes diverged", cfg.width, cfg.opts)
				}
				after := disk.Stats()
				if d := after.RecomputesRows - before.RecomputesRows; d != 0 {
					t.Fatalf("width %d opts %+v: warm rerun recomputed %d rows", cfg.width, cfg.opts, d)
				}
				if d := after.Puts - before.Puts; d != 0 {
					t.Fatalf("width %d opts %+v: warm rerun re-put %d rows", cfg.width, cfg.opts, d)
				}
				if d := after.HitsRows - before.HitsRows; int(d) != len(plan.Points) {
					t.Fatalf("width %d opts %+v: warm rerun hit %d of %d rows", cfg.width, cfg.opts, d, len(plan.Points))
				}
			}
		})
	}
}

// TestRunStreamBackfillsLostRows pins crash recovery end to end: corrupt
// the sealed block so a suffix of the stored rows is lost, reopen, and a
// rerun must evaluate exactly the missing fingerprints — no more, no
// less — while reproducing the cold run's bytes.
func TestRunStreamBackfillsLostRows(t *testing.T) {
	plan := storePlans(t)["evaluate"]
	dir := t.TempDir()
	disk, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	SetRowStore(disk)
	cold := storeRunNDJSON(t, plan, 0, RunOptions{})
	SetRowStore(nil)
	disk.Close()

	// Chop the tail off the block file: the valid prefix stays readable,
	// the rest of the rows are gone — the same shape a torn WAL leaves.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var blockPath string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".blk") {
			blockPath = filepath.Join(dir, e.Name())
		}
	}
	if blockPath == "" {
		t.Fatal("no sealed block found")
	}
	info, err := os.Stat(blockPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(blockPath, info.Size()*3/5); err != nil {
		t.Fatal(err)
	}

	reopened, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	SetRowStore(reopened)
	defer func() {
		SetRowStore(nil)
		reopened.Close()
	}()
	surviving := reopened.Stats().Keys
	lost := len(plan.Points) - surviving
	if lost <= 0 || surviving <= 0 {
		t.Fatalf("truncation lost %d of %d rows — test needs a partial loss", lost, len(plan.Points))
	}

	warm := storeRunNDJSON(t, plan, 0, RunOptions{})
	if !bytes.Equal(warm, cold) {
		t.Fatal("backfill rerun bytes diverged from the cold run")
	}
	st := reopened.Stats()
	if int(st.RecomputesRows) != lost {
		t.Fatalf("rerun recomputed %d rows, want exactly the %d lost", st.RecomputesRows, lost)
	}
	if int(st.HitsRows) != surviving {
		t.Fatalf("rerun hit %d rows, want the %d survivors", st.HitsRows, surviving)
	}
	if int(st.Puts) != lost {
		t.Fatalf("rerun re-put %d rows, want exactly the %d lost", st.Puts, lost)
	}
	if st.Keys != len(plan.Points) {
		t.Fatalf("store holds %d keys after backfill, want %d", st.Keys, len(plan.Points))
	}
}

// TestStoredRowCrossCheck pins the alias guard: a stored payload whose
// coordinates disagree with the requesting point (a key collision, a
// digest bug) is rejected rather than emitted.
func TestStoredRowCrossCheck(t *testing.T) {
	plan := storePlans(t)["evaluate"]
	rows, err := NewRunner(core.New(8)).Run(context.Background(), plan, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	p := row.Point
	sr, ok := storedFromRow(plan.Op, &row)
	if !ok {
		t.Fatal("clean row not storable")
	}
	if _, ok := rowFromStored(plan.Op, p, &sr); !ok {
		t.Fatal("faithful payload rejected")
	}
	for name, mut := range map[string]func(*resultstore.StoredRow){
		"op":        func(r *resultstore.StoredRow) { r.Op = OpSize },
		"servers":   func(r *resultstore.StoredRow) { r.Servers++ },
		"workload":  func(r *resultstore.StoredRow) { r.Workload = "other" },
		"outage":    func(r *resultstore.StoredRow) { r.OutageNS++ },
		"technique": func(r *resultstore.StoredRow) { r.Technique = "other" },
	} {
		bad := sr
		mut(&bad)
		if _, ok := rowFromStored(plan.Op, p, &bad); ok {
			t.Errorf("payload with mismatched %s accepted", name)
		}
	}
}
