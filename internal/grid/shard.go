package grid

// Shard planning: the API the distributed sweep fabric (internal/fabric,
// cmd/sweepfront) uses to split one compiled plan into contiguous
// row-range shards that workers execute independently. Two properties
// carry the whole design:
//
//   - Contiguity in plan order. A shard is a half-open [Start, End) span
//     of the plan's surviving rows, so concatenating shard outputs in
//     Start order reproduces the single-node row stream byte for byte —
//     the merge step is ordering, not recomputation.
//
//   - Batch-unit alignment. Cuts never split a run of consecutive rows
//     that differ only in their outage (the PR-6 batch units), so a
//     worker evaluating a shard sees the same units a single-node run
//     would and the outage-axis kernel stays fully effective inside
//     every shard.
//
// A RowRange is also the resume token: when a worker dies after
// streaming a validated prefix of its shard, the coordinator re-dispatches
// the narrower range [watermark, End) — same spec, same plan, fewer rows —
// which is why the range rides the wire (POST /v1/sweep "row_range")
// instead of living only in coordinator memory.

// RowRange is a half-open, contiguous span [Start, End) of a compiled
// plan's rows, identified by their Point.Index values. It is the unit of
// distribution for the sweep fabric and the wire shape of a shard
// (and of a mid-shard resume after a worker failure).
type RowRange struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Rows is the number of rows the range spans.
func (r RowRange) Rows() int { return r.End - r.Start }

// DefaultShardRows is the target shard size when a caller does not say
// otherwise: big enough that per-shard HTTP and plan-compile overhead is
// amortized over many rows, small enough that a typical figure grid
// still splits across a handful of workers.
const DefaultShardRows = 64

// Shards splits the plan into contiguous row ranges of about shardRows
// rows each (0 or negative means DefaultShardRows), covering every row
// exactly once, in order. Cut points are aligned to batch-unit
// boundaries: a maximal run of consecutive rows that differ only in
// outage always lands in one shard, so the outage-axis batch kernel is
// as effective per shard as it is on a single node. A unit longer than
// shardRows becomes one oversized shard rather than being split.
func (p *Plan) Shards(shardRows int) []RowRange {
	if shardRows <= 0 {
		shardRows = DefaultShardRows
	}
	n := len(p.Points)
	if n == 0 {
		return nil
	}
	units := groupUnits(p.Points, false)
	shards := make([]RowRange, 0, (n+shardRows-1)/shardRows)
	cur := RowRange{Start: p.Points[0].Index}
	cur.End = cur.Start
	for _, unit := range units {
		unitEnd := unit[len(unit)-1].Index + 1
		if cur.End > cur.Start && unitEnd-cur.Start > shardRows {
			shards = append(shards, cur)
			cur = RowRange{Start: cur.End, End: cur.End}
		}
		cur.End = unitEnd
	}
	if cur.End > cur.Start {
		shards = append(shards, cur)
	}
	return shards
}

// Slice returns the sub-plan covering r: the same op over the shared
// backing rows, indices preserved (a sliced row keeps the Index the full
// plan gave it, which is what keeps shard outputs mergeable and lets the
// coordinator validate stream contiguity). The range must lie inside the
// plan and be non-empty; violations are typed *FieldError rejections so
// the HTTP surface maps them to a 400 like any other bad request field.
func (p *Plan) Slice(r RowRange) (*Plan, error) {
	if r.Start < 0 || r.End > len(p.Points) || r.Start >= r.End {
		return nil, fieldErrf("out_of_range", "row_range",
			"row range [%d, %d) outside the plan's %d rows", r.Start, r.End, len(p.Points))
	}
	return &Plan{Op: p.Op, Points: p.Points[r.Start:r.End]}, nil
}
