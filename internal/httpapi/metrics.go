package httpapi

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"

	"backuppower/internal/core"
	"backuppower/internal/resultstore"
)

// metrics is the server's observability state, built on expvar types but
// deliberately NOT published to the process-global expvar registry:
// tests (and embedders) create many Servers per process, and global
// registration panics on the second one. /metrics renders the same JSON
// expvar would.
type metrics struct {
	// requests counts completed requests per route; statuses counts them
	// per HTTP status code; latencyNS accumulates wall time per route.
	requests  expvar.Map
	statuses  expvar.Map
	latencyNS expvar.Map

	// inflight is the number of requests currently holding an evaluation
	// slot; saturated counts 429 rejections; timeouts counts 504s.
	inflight  expvar.Int
	saturated expvar.Int
	timeouts  expvar.Int

	// store, when non-nil, contributes the persistent result store's
	// counters to the document (set only for -store-dir servers, so the
	// store-less layout is byte-for-byte what it always was).
	store resultstore.Store
}

func newMetrics() *metrics {
	m := &metrics{}
	m.requests.Init()
	m.statuses.Init()
	m.latencyNS.Init()
	return m
}

func (m *metrics) observe(route string, status int, latencyNS int64) {
	m.requests.Add(route, 1)
	m.statuses.Add(fmt.Sprintf("%d", status), 1)
	m.latencyNS.Add(route, latencyNS)
	switch status {
	case 429:
		m.saturated.Add(1)
	case 504:
		m.timeouts.Add(1)
	}
}

// writeTo renders the metrics document. Key order is fixed (and expvar
// Maps iterate their keys sorted), so the document layout is stable; the
// values themselves are live counters. Cache counters come from the
// process-wide scenario cache the serving framework shares with every
// in-process evaluation.
func (m *metrics) writeTo(w io.Writer) {
	hits, misses := core.ScenarioCacheStats()
	fmt.Fprintf(w, `{"cache":{"entries":%d,"hits":%d,"misses":%d},`, core.ScenarioCacheLen(), hits, misses)
	fmt.Fprintf(w, `"inflight":%s,`, m.inflight.String())
	fmt.Fprintf(w, `"latency_ns":%s,`, m.latencyNS.String())
	fmt.Fprintf(w, `"requests":%s,`, m.requests.String())
	fmt.Fprintf(w, `"saturated":%s,`, m.saturated.String())
	fmt.Fprintf(w, `"statuses":%s,`, m.statuses.String())
	if m.store != nil {
		b, err := json.Marshal(m.store.Stats())
		if err == nil {
			fmt.Fprintf(w, `"store":%s,`, b)
		}
	}
	fmt.Fprintf(w, `"timeouts":%s}`, m.timeouts.String())
	io.WriteString(w, "\n")
}
