package httpapi

import (
	"io"
	"net/http"
	"strconv"

	"backuppower/internal/grid"
)

// SweepRequest is the body of POST /v1/sweep: a declarative grid spec
// plus the familiar per-request execution knobs. The response streams
// one NDJSON row per surviving grid point, in plan order, flushed shard
// by shard; the bytes are identical at any width and any shard size.
type SweepRequest struct {
	Spec grid.Spec `json:"spec"`
	// Width overrides the sweep worker-pool width for this request
	// (0 = server default). Results are identical at any width.
	Width int `json:"width,omitempty"`
	// Timeout tightens the per-request deadline below the server's
	// -timeout; it can never extend it.
	Timeout string `json:"timeout,omitempty"`
	// ShardSize batches row emission (0 = server default); it never
	// changes row values or order.
	ShardSize int `json:"shard_size,omitempty"`
	// RowRange restricts execution to the half-open [start, end) span of
	// the compiled plan's rows — the shard-execution form the sweep
	// fabric (cmd/sweepfront) uses to fan one plan out across a worker
	// pool, and its resume token after a mid-shard worker failure. Rows
	// keep the indices the full plan gave them, so the coordinator can
	// validate stream contiguity and merge shards byte-identically to a
	// single-node run. Absent means the whole plan.
	RowRange *grid.RowRange `json:"row_range,omitempty"`
}

// DecodeSweepRequest strictly decodes a SweepRequest body. Exported so
// the fuzz target drives the exact decoder the handler uses.
func DecodeSweepRequest(r io.Reader) (SweepRequest, error) {
	var req SweepRequest
	if err := decodeStrict(r, &req); err != nil {
		return SweepRequest{}, err
	}
	return req, nil
}

// parseShardSize validates the optional emission batch size.
func parseShardSize(n int) error {
	if n < 0 || n > 1<<20 {
		return badRequest("out_of_range", "shard_size", "shard_size %d out of [0, %d]", n, 1<<20)
	}
	return nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeSweepRequest(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	timeout, err := parseTimeout(req.Timeout)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := parseWidth(req.Width); err != nil {
		writeError(w, err)
		return
	}
	if err := parseShardSize(req.ShardSize); err != nil {
		writeError(w, err)
		return
	}
	plan, err := grid.Compile(req.Spec, grid.CompileOptions{
		DefaultServers: s.fw.Env.Servers,
		MaxRows:        s.cfg.MaxSweepRows,
	})
	if err != nil {
		writeError(w, asAPIError(err))
		return
	}
	planRows := len(plan.Points)
	if req.RowRange != nil {
		plan, err = plan.Slice(*req.RowRange)
		if err != nil {
			writeError(w, asAPIError(err))
			return
		}
	}

	if !s.acquire() {
		writeSaturated(w)
		return
	}
	defer s.release()
	ctx, cancel := s.evalContext(r, req.Width, timeout)
	defer cancel()
	if s.testHookEvalStarted != nil {
		s.testHookEvalStarted(ctx)
	}

	// From here on the response streams: the status line and header go
	// out before the first shard, so a mid-stream failure can only be
	// reported in-band — as a final NDJSON error line (shape ErrorBody,
	// distinguishable from rows by its "error" object).
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Identity and extent headers for the fabric coordinator: which
	// worker answered, how many rows this response will stream, and how
	// many rows the full plan has (so a sharded caller can sanity-check
	// that every worker compiled the same plan).
	if s.cfg.WorkerID != "" {
		w.Header().Set("X-Backupd-Worker", s.cfg.WorkerID)
	}
	w.Header().Set("X-Sweep-Rows", strconv.Itoa(len(plan.Points)))
	w.Header().Set("X-Sweep-Plan-Rows", strconv.Itoa(planRows))
	w.WriteHeader(http.StatusOK)

	runErr := s.runner.RunStream(ctx, plan, grid.RunOptions{
		ShardSize: req.ShardSize,
		Progress: func(grid.Progress) {
			// Fires as each shard completes, before its rows are written:
			// push the previous shard's buffered rows to the client so a
			// long grid streams instead of arriving all at once.
			if flusher != nil {
				flusher.Flush()
			}
		},
	}, func(row grid.RowResult) error {
		return writeNDJSONLine(w, grid.NewRowDTO(plan.Op, row))
	})
	if runErr != nil {
		ae := evalError(runErr)
		writeNDJSONLine(w, ErrorBody{Error: ErrorDetail{
			Code:    ae.code,
			Field:   ae.field,
			Message: ae.message,
		}})
	}
	if flusher != nil {
		flusher.Flush()
	}
}
