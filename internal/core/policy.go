package core

import (
	"fmt"
	"time"

	"backuppower/internal/outage"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/ups"
	"backuppower/internal/workload"
)

// Mode is one rung of the adaptive policy's escalation ladder, ordered from
// best service to best energy preservation.
type Mode int

// Escalation ladder.
const (
	ModeFullService Mode = iota
	ModeThrottled
	ModeConsolidated
	ModeSleep
	ModeHibernate
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeFullService:
		return "full-service"
	case ModeThrottled:
		return "throttled"
	case ModeConsolidated:
		return "consolidated"
	case ModeSleep:
		return "sleep"
	case ModeHibernate:
		return "hibernate"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Decision is the policy's output at a decision instant.
type Decision struct {
	Mode      Mode
	Reason    string
	Sustain   time.Duration // how long the battery holds in this mode
	Remaining time.Duration // predicted remaining outage
}

// AdaptivePolicy is the Section 7 answer to "how do we deal with unknown
// outage duration": start optimistic (the majority of outages end within
// minutes), watch the battery against the Markov predictor's expected
// remaining duration, and escalate down the ladder before energy runs out —
// reserving enough charge to save state at the very end.
type AdaptivePolicy struct {
	Env       technique.Env
	Workload  workload.Spec
	UPS       ups.Config
	Predictor *outage.Predictor

	// SafetyFactor inflates the predicted remaining duration when
	// comparing against sustainable time (default 1.25).
	SafetyFactor float64

	// PredictQuantile selects how pessimistic the remaining-duration
	// estimate is (default 0.5, the conditional median). The heavy-tailed
	// mean would put the fleet to sleep the moment an outage starts; the
	// median lets it serve through the short outages that dominate
	// Figure 1 and escalate as the outage outlives its cohort.
	PredictQuantile float64

	// current mode; never de-escalates during a single outage.
	mode Mode
}

// NewAdaptivePolicy builds a policy with the historical outage prior.
func NewAdaptivePolicy(env technique.Env, w workload.Spec, u ups.Config) (*AdaptivePolicy, error) {
	pred, err := outage.NewPredictor(outage.DurationDistribution(), 100)
	if err != nil {
		return nil, err
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return &AdaptivePolicy{
		Env: env, Workload: w, UPS: u, Predictor: pred,
		SafetyFactor: 1.25, PredictQuantile: 0.5,
	}, nil
}

// ModePower returns the aggregate draw in each mode.
func (p *AdaptivePolicy) ModePower(m Mode) units.Watts {
	env, w := p.Env, p.Workload
	n := units.Watts(env.Servers)
	switch m {
	case ModeFullService:
		return env.NormalPower(w)
	case ModeThrottled:
		return env.Server.ActivePower(w.Utilization, env.Server.DeepestPState(), 1) * n
	case ModeConsolidated:
		survivors := (env.Servers + 1) / 2
		return env.Server.ActivePower(1, env.Server.PStates[0], 1) * units.Watts(survivors)
	case ModeSleep:
		return env.Server.SleepPower() * n
	default: // hibernated
		return 0
	}
}

// ModePerf returns normalized service level in each mode.
func (p *AdaptivePolicy) ModePerf(m Mode) float64 {
	w := p.Workload
	switch m {
	case ModeFullService:
		return 1
	case ModeThrottled:
		return w.PerfAtSpeed(p.Env.Server.DeepestPState().FreqRatio)
	case ModeConsolidated:
		return w.ConsolidatedPerf(2)
	default:
		return 0
	}
}

// saveReserve is the battery time that must remain available to execute a
// final state-save (sleep transition at low power) from the current mode.
func (p *AdaptivePolicy) saveReserve(remaining float64) time.Duration {
	// Sleep-L transition plus margin.
	return 2*p.Env.Server.TransitionToSleep + 10*time.Second
}

// Decide returns the mode to run in, given the elapsed outage time and the
// battery's remaining fraction. The policy escalates (never relaxes) and
// always keeps enough charge to reach a state-preserving mode.
func (p *AdaptivePolicy) Decide(elapsed time.Duration, batteryRemaining float64) Decision {
	remaining := p.Predictor.RemainingQuantile(elapsed, p.PredictQuantile)
	need := time.Duration(float64(remaining) * p.SafetyFactor)
	pack := p.UPS.Pack()

	for m := p.mode; m <= ModeHibernate; m++ {
		load := p.ModePower(m)
		var sustain time.Duration
		if load <= 0 {
			sustain = time.Duration(1<<62 - 1)
		} else if !p.UPS.CanCarry(load) {
			continue // mode draws more than the UPS can source
		} else {
			full := pack.RuntimeAt(load)
			sustain = time.Duration(float64(full) * batteryRemaining)
		}
		// Keep a reserve to save state from active modes.
		budget := need
		if m < ModeSleep {
			budget += p.saveReserve(batteryRemaining)
		}
		if sustain >= budget || m == ModeHibernate {
			p.mode = m
			return Decision{
				Mode:      m,
				Sustain:   sustain,
				Remaining: remaining,
				Reason: fmt.Sprintf("%s sustains %v vs predicted remaining %v",
					m, sustain.Round(time.Second), remaining.Round(time.Second)),
			}
		}
	}
	p.mode = ModeHibernate
	return Decision{Mode: ModeHibernate, Remaining: remaining, Reason: "fallback"}
}

// Reset prepares the policy for a new outage and lets the predictor learn
// from the one that just completed.
func (p *AdaptivePolicy) Reset(completed time.Duration) {
	if completed > 0 {
		p.Predictor.Observe(completed)
	}
	p.mode = ModeFullService
}

// Mode returns the current escalation rung.
func (p *AdaptivePolicy) Mode() Mode { return p.mode }
