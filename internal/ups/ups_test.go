package ups

import (
	"testing"
	"time"

	"backuppower/internal/battery"
	"backuppower/internal/units"
)

func TestNewConfigDefaults(t *testing.T) {
	c := NewConfig(units.Megawatt, 2*time.Minute)
	if c.SwitchoverDelay != 10*time.Millisecond {
		t.Errorf("switchover = %v", c.SwitchoverDelay)
	}
	if c.RideThrough != 30*time.Millisecond {
		t.Errorf("ride-through = %v", c.RideThrough)
	}
	if c.Placement != RackLevel {
		t.Errorf("placement = %v", c.Placement)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
}

func TestRuntimeBumpToFreeBase(t *testing.T) {
	c := NewConfig(units.Megawatt, 10*time.Second)
	if c.Runtime != 2*time.Minute {
		t.Errorf("runtime = %v, want free base 2m", c.Runtime)
	}
}

func TestNone(t *testing.T) {
	c := None()
	if c.Provisioned() {
		t.Error("None provisioned")
	}
	if c.AnnualCost() != 0 {
		t.Errorf("None cost = %v", c.AnnualCost())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("None invalid: %v", err)
	}
	if c.CanCarry(1) {
		t.Error("None carries nothing")
	}
}

func TestAnnualCostMatchesTable2(t *testing.T) {
	// 1 MW / 2 min -> $50,000 (0.05 M$).
	if got := float64(NewConfig(units.Megawatt, 2*time.Minute).AnnualCost()); !units.AlmostEqual(got, 50000, 1e-9) {
		t.Errorf("1MW/2min UPS = %v", got)
	}
	// 10 MW / 2 min -> $500,000 (paper rounds to 0.51 M$).
	if got := float64(NewConfig(10*units.Megawatt, 2*time.Minute).AnnualCost()); !units.AlmostEqual(got, 500000, 1e-9) {
		t.Errorf("10MW/2min UPS = %v", got)
	}
	// 10 MW / 42 min -> ~0.83 M$.
	if got := float64(NewConfig(10*units.Megawatt, 42*time.Minute).AnnualCost()); !units.AlmostEqual(got, 833333, 0.001) {
		t.Errorf("10MW/42min UPS = %v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := NewConfig(units.Megawatt, 2*time.Minute)
	bad.PowerCapacity = -1
	if bad.Validate() == nil {
		t.Error("negative capacity should fail")
	}
	bad = NewConfig(units.Megawatt, 2*time.Minute)
	bad.Runtime = time.Second
	if bad.Validate() == nil {
		t.Error("runtime below free base should fail")
	}
	bad = NewConfig(units.Megawatt, 2*time.Minute)
	bad.RideThrough = time.Millisecond // shorter than switchover
	if bad.Validate() == nil {
		t.Error("ride-through < switchover should fail")
	}
	bad = NewConfig(units.Megawatt, 2*time.Minute)
	bad.Tech.PeukertExponent = 0.5
	if bad.Validate() == nil {
		t.Error("bad tech should fail")
	}
}

func TestPlacementString(t *testing.T) {
	for p, want := range map[Placement]string{
		RackLevel: "rack-level", ServerLevel: "server-level", Centralized: "centralized", Placement(9): "placement(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestUnitDrainLifecycle(t *testing.T) {
	c := NewConfig(4*units.Kilowatt, 10*time.Minute)
	u := NewUnit(c)
	if u.Depleted() || u.Remaining() != 1 {
		t.Fatal("fresh unit should be full")
	}
	// Full load for the full rated runtime.
	if got := u.Drain(4*units.Kilowatt, 10*time.Minute); !units.AlmostEqual(got.Seconds(), 600, 1e-6) {
		t.Fatalf("drain = %v", got)
	}
	if !u.Depleted() {
		t.Fatal("should be depleted after rated runtime")
	}
	u.Recharge()
	if u.Depleted() {
		t.Fatal("recharge failed")
	}
	// Quarter load stretches to 60 min (lead-acid Fig 3 calibration).
	if got := u.TimeToEmpty(units.Kilowatt); !units.AlmostEqual(got.Minutes(), 60, 1e-6) {
		t.Fatalf("time to empty at 25%% = %v", got)
	}
}

func TestUnitOverload(t *testing.T) {
	u := NewUnit(NewConfig(4*units.Kilowatt, 10*time.Minute))
	if got := u.Drain(5*units.Kilowatt, time.Minute); got != 0 {
		t.Errorf("overload drain = %v, want 0", got)
	}
	if u.Depleted() {
		t.Error("overload must not silently consume charge")
	}
	if got := u.TimeToEmpty(5 * units.Kilowatt); got != 0 {
		t.Errorf("overload time to empty = %v", got)
	}
}

func TestUnitZeroLoad(t *testing.T) {
	u := NewUnit(NewConfig(4*units.Kilowatt, 10*time.Minute))
	if got := u.Drain(0, time.Hour); got != time.Hour {
		t.Errorf("zero load drain = %v", got)
	}
	if u.Remaining() != 1 {
		t.Error("zero load consumed charge")
	}
}

func TestPackRoundTrip(t *testing.T) {
	c := NewConfig(4*units.Kilowatt, 10*time.Minute)
	p := c.Pack()
	if p.RatedPower != 4*units.Kilowatt || p.RatedRuntime != 10*time.Minute {
		t.Errorf("pack = %+v", p)
	}
	// None yields an empty pack with the tech preserved.
	np := None().Pack()
	if np.RatedPower != 0 {
		t.Errorf("none pack = %+v", np)
	}
	if np.Tech.Name != battery.LeadAcid().Name {
		t.Errorf("none pack tech = %q", np.Tech.Name)
	}
}
