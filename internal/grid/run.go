package grid

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/core"
	"backuppower/internal/sweep"
	"backuppower/internal/technique"
)

// DefaultShardSize is the number of rows evaluated (in parallel) per
// emitted shard when RunOptions does not say otherwise. Shards batch
// emission only — they never change row values or order — so the size is
// purely a latency/throughput knob for streaming consumers.
const DefaultShardSize = 64

// Runner executes compiled plans against a framework, instantiating
// sibling frameworks for cluster sizes the base does not cover (same
// battery chemistry, testbed scaled to the row's server count). All rows
// evaluate through core's process-global scenario memo cache, so a grid
// that revisits a scenario — or two grids that overlap — simulate it once.
type Runner struct {
	base *core.Framework

	mu      sync.Mutex
	derived map[int]*core.Framework
}

// NewRunner returns a runner over the given base framework.
func NewRunner(base *core.Framework) *Runner {
	return &Runner{base: base, derived: map[int]*core.Framework{}}
}

// framework returns the framework for an n-server row: the base when it
// already has that scale, else a memoized sibling sharing its battery.
func (r *Runner) framework(n int) *core.Framework {
	if r.base.Env.Servers == n {
		return r.base
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.derived[n]; ok {
		return f
	}
	f := &core.Framework{Env: technique.DefaultEnv(n), Battery: r.base.Battery}
	r.derived[n] = f
	return f
}

// RowResult is one evaluated plan row. Exactly one payload group is
// meaningful, selected by the plan's op: evaluate fills Result; size
// fills Feasible and (when feasible) Sizing; best fills Best and Result.
// Err records a row-level evaluation failure (the sweep continues);
// cancellation and deadline expiry abort the whole run instead.
type RowResult struct {
	Point    Point
	Result   cluster.Result
	Feasible bool
	Sizing   core.OperatingPoint
	Best     string

	// Process is the payload of an evaluate row whose Point carries a
	// stochastic outage process instead of a point duration.
	Process *core.ProcessResult

	Err error
}

// Progress reports shard completion during a streaming run.
type Progress struct {
	Shard    int // shards completed so far
	Shards   int // total shards in the plan
	RowsDone int // rows completed so far
	Rows     int // total rows in the plan
}

// RunOptions parameterize a run.
type RunOptions struct {
	// ShardSize is the emission batch size (default DefaultShardSize).
	// Any value yields identical rows in identical order.
	ShardSize int

	// Progress, when set, is called after each shard completes, from the
	// emitting goroutine, before the shard's rows are emitted.
	Progress func(Progress)

	// NoBatch forces per-row scalar dispatch, disabling the outage-axis
	// batch kernel. Batching is byte-invisible — rows, order, and values
	// are identical either way — so this is purely a debugging and
	// verification knob (gridrun's -no-batch flag, the CI byte-equality
	// smoke, and the dispatch-equivalence property tests).
	NoBatch bool
}

// RunStream evaluates the plan's rows in order, fanning each shard out
// through the sweep engine (pool width from sweep.WithWidth on ctx), and
// calls emit for every row as its shard completes. Rows and their order
// are invariant under pool width and shard size. An emit error or a
// context cancellation/deadline stops the remaining shards; row-level
// evaluation failures are reported in RowResult.Err and do not stop the
// sweep.
// Rows with consecutive indices that differ only in their outage form one
// batch unit dispatched through the axis-batched framework calls
// (EvaluateBatchCtx / MinCostUPSAxisCtx / BestForConfigAxisCtx), which is
// where the speedup comes from: Compile emits the outage axis innermost,
// so a dense axis collapses into a handful of plan constructions and
// segment walks. Units never span shard boundaries, keeping Progress
// values and emission timing identical to the scalar dispatch.
// With a row store attached (SetRowStore), each shard consults the store
// first and dispatches only the rows it has never seen; stored rows merge
// back at their plan positions, so output bytes, order, and Progress are
// identical to a store-less run — a warm rerun just evaluates nothing.
// Freshly computed rows write through, and a fully successful run seals
// the store's write-ahead log into an immutable block.
func (r *Runner) RunStream(ctx context.Context, plan *Plan, opts RunOptions, emit func(RowResult) error) error {
	size := opts.ShardSize
	if size <= 0 {
		size = DefaultShardSize
	}
	n := len(plan.Points)
	shards := 0
	if n > 0 {
		if size > n {
			size = n
		}
		shards = (n + size - 1) / size
	}
	store := rowStore()
	done := 0
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		pts := plan.Points[start:end]
		coldPts := pts
		var merged []RowResult
		var coldPos []int
		var st shardStoreState
		if store != nil {
			merged = make([]RowResult, len(pts))
			coldPts, coldPos, st = consultStore(store, plan.Op, pts, merged)
		}
		units := groupUnits(coldPts, opts.NoBatch)
		out, err := sweep.Map(ctx, units, func(ctx context.Context, unit []Point) ([]RowResult, error) {
			return r.evalUnit(ctx, plan.Op, unit)
		})
		if err != nil {
			return err
		}
		if store != nil {
			// Scatter computed rows back to their shard positions and
			// write them through.
			k := 0
			for _, rows := range out {
				for i := range rows {
					pos := coldPos[k]
					merged[pos] = rows[i]
					st.writeBack(store, plan.Op, pos, &merged[pos])
					k++
				}
			}
		}
		done++
		if opts.Progress != nil {
			opts.Progress(Progress{
				Shard:    done,
				Shards:   shards,
				RowsDone: end,
				Rows:     n,
			})
		}
		if store != nil {
			for i := range merged {
				if err := emit(merged[i]); err != nil {
					return err
				}
			}
		} else {
			// The store-less emit path is exactly the pre-store code: no
			// merge buffer, no per-shard allocation.
			for _, rows := range out {
				for i := range rows {
					if err := emit(rows[i]); err != nil {
						return err
					}
				}
			}
		}
	}
	if store != nil {
		// Seal is best-effort: a failure leaves rows in the WAL, where a
		// reopen still replays them; Stats exposes the attempt counts.
		_ = store.Seal()
	}
	return nil
}

// groupUnits splits a shard into batch units: maximal runs of consecutive
// points that are batchable with their predecessor. With noBatch every
// point is its own unit. Units are subslices — no points are copied.
func groupUnits(points []Point, noBatch bool) [][]Point {
	units := make([][]Point, 0, len(points))
	for start := 0; start < len(points); {
		end := start + 1
		if !noBatch {
			for end < len(points) && batchable(&points[end-1], &points[end]) {
				end++
			}
		}
		units = append(units, points[start:end])
		start = end
	}
	return units
}

// batchable reports whether two adjacent rows differ only in their outage,
// making them one axis-batch unit. Pointer receivers keep the hot grouping
// loop from copying the config-bearing Point struct per comparison.
// Process rows never batch: each is one unit of one row, so a shard cut
// can never split a process's Monte-Carlo draws (the process evaluates
// whole, inside its single row).
func batchable(a, b *Point) bool {
	return a.Process == nil && b.Process == nil &&
		a.Servers == b.Servers &&
		a.Workload == b.Workload &&
		a.HasConfig == b.HasConfig &&
		a.Config == b.Config &&
		a.Family == b.Family &&
		sameTechnique(a.Technique, b.Technique)
}

// sameTechnique reports whether two technique values are interchangeable
// for batching: both nil (best rows), or the same comparable dynamic type
// holding equal values. Non-comparable techniques never batch — the ==
// below would panic on them.
func sameTechnique(a, b technique.Technique) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) || !ta.Comparable() {
		return false
	}
	return a == b
}

// Run is RunStream collecting every row.
func (r *Runner) Run(ctx context.Context, plan *Plan, opts RunOptions) ([]RowResult, error) {
	rows := make([]RowResult, 0, len(plan.Points))
	err := r.RunStream(ctx, plan, opts, func(row RowResult) error {
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// evalUnit evaluates one batch unit. Single-point units take the scalar
// dispatch; longer units go through the axis-batched calls and fall back
// to per-point scalar evaluation on any non-context error, so row-level
// Err semantics are identical to the scalar path (a batch call validates
// the whole axis up front and cannot say which rows are at fault).
func (r *Runner) evalUnit(ctx context.Context, op string, pts []Point) ([]RowResult, error) {
	rows := make([]RowResult, len(pts))
	if len(pts) == 1 {
		row, err := r.evalPoint(ctx, op, pts[0])
		if err != nil {
			return nil, err
		}
		rows[0] = row
		return rows, nil
	}

	fw := r.framework(pts[0].Servers)
	outages := make([]time.Duration, len(pts))
	for i := range pts {
		outages[i] = pts[i].Outage
		rows[i].Point = pts[i]
	}
	var err error
	switch op {
	case OpSize:
		var sz []core.SizingPoint
		sz, err = fw.MinCostUPSAxisCtx(ctx, pts[0].Technique, pts[0].Workload, outages)
		if err == nil {
			for i := range rows {
				rows[i].Sizing, rows[i].Feasible = sz[i].Op, sz[i].Feasible
			}
		}
	case OpBest:
		var best []core.BestPoint
		best, err = fw.BestForConfigAxisCtx(ctx, pts[0].Config, pts[0].Workload, outages)
		if err == nil {
			for i := range rows {
				rows[i].Result = best[i].Result
				if best[i].Tech != nil {
					rows[i].Best = best[i].Tech.Name()
				}
			}
		}
	default: // OpEvaluate
		var res []cluster.Result
		res, err = fw.EvaluateBatchCtx(ctx, pts[0].Config, pts[0].Technique, pts[0].Workload, outages)
		if err == nil {
			for i := range rows {
				rows[i].Result = res[i]
			}
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		for i, p := range pts {
			row, perr := r.evalPoint(ctx, op, p)
			if perr != nil {
				return nil, perr
			}
			rows[i] = row
		}
	}
	return rows, nil
}

// evalPoint dispatches one row to its framework call. Context errors
// propagate (aborting the run); anything else becomes a row-level Err.
func (r *Runner) evalPoint(ctx context.Context, op string, p Point) (RowResult, error) {
	fw := r.framework(p.Servers)
	row := RowResult{Point: p}
	var err error
	switch op {
	case OpSize:
		row.Sizing, row.Feasible, err = fw.MinCostUPSCtx(ctx, p.Technique, p.Workload, p.Outage)
	case OpBest:
		var tech technique.Technique
		row.Result, tech, err = fw.BestForConfigCtx(ctx, p.Config, p.Workload, p.Outage)
		if tech != nil {
			row.Best = tech.Name()
		}
	default: // OpEvaluate
		if p.Process != nil {
			var pr core.ProcessResult
			pr, err = fw.EvaluateProcessCtx(ctx, p.Config, p.Technique, p.Workload, *p.Process)
			if err == nil {
				row.Process = &pr
			}
		} else {
			row.Result, err = fw.EvaluateCtx(ctx, p.Config, p.Technique, p.Workload, p.Outage)
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return RowResult{}, err
		}
		row.Err = err
	}
	return row, nil
}
