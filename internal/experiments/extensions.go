package experiments

import (
	"context"
	"fmt"
	"time"

	"backuppower/internal/availability"
	"backuppower/internal/battery"
	"backuppower/internal/core"
	"backuppower/internal/cost"
	"backuppower/internal/genset"
	"backuppower/internal/geo"
	"backuppower/internal/loadprofile"
	"backuppower/internal/portfolio"
	"backuppower/internal/report"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/ups"
	"backuppower/internal/workload"
)

// ExtAvailability runs the yearly Monte-Carlo across the headline
// configurations: the operator's decision table combining Figures 1, 5 and
// 10 (availability, downtime, revenue loss vs DG savings).
func ExtAvailability(ctx context.Context) report.Table {
	t := report.Table{
		Title: "Extension: yearly availability per configuration (SPECjbb, 25 years)",
		Columns: []string{"configuration", "cost", "downtime/yr", "nines",
			"state losses/yr", "loss $/KW/yr", "beats DG savings"},
	}
	f := framework()
	peak := f.Env.PeakPower()
	configs := []cost.Backup{
		cost.MaxPerf(peak), cost.DGSmallPUPS(peak), cost.LargeEUPS(peak),
		cost.NoDG(peak), cost.SmallPLargeEUPS(peak), cost.MinCost(peak),
	}
	sums, err := availability.CompareConfigsCtx(ctx, f, workload.Specjbb(), configs, 25, 2014)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	for _, s := range sums {
		profitable := "-"
		if s.Config != "MaxPerf" && s.Config != "DG-SmallPUPS" {
			// DG-less configs: compare the priced loss against the DG
			// savings (Figure 10's test applied per configuration).
			profitable = fmt.Sprintf("%v", s.RevenueLossPerKWYear < s.DGSavingsPerKWYear)
		}
		t.AddRow(s.Config, s.NormCost, s.MeanDowntime,
			fmt.Sprintf("%.1f", s.Nines),
			fmt.Sprintf("%.2f", s.MeanStateLossesYear),
			fmt.Sprintf("%.1f", s.RevenueLossPerKWYear), profitable)
	}
	t.Notes = append(t.Notes,
		"per-outage technique selection follows the Figure 5 rule; traces share one seed across configurations")
	return t
}

// ExtNVDIMM quantifies the §7 NVDIMM enhancement: persistence without
// backup power, and NVDIMM+Throttle's ability to run the battery to
// exhaustion safely.
func ExtNVDIMM(ctx context.Context) report.Table {
	t := report.Table{
		Title:   "Extension: NVDIMM (§7) — SPECjbb",
		Columns: []string{"technique", "outage", "cost", "perf", "downtime", "state safe"},
	}
	f := framework()
	w := workload.Specjbb()
	for _, d := range []time.Duration{30 * time.Second, 30 * time.Minute, 2 * time.Hour} {
		for _, tech := range []technique.Technique{
			technique.NVDIMM{},
			technique.NVDIMMThrottle{PState: 6},
			technique.Hibernate{}, // the save-state technique NVDIMM replaces
		} {
			op, ok, err := f.MinCostUPSCtx(ctx, tech, w, d)
			if err != nil {
				t.Notes = append(t.Notes, "failed: "+err.Error())
				return t
			}
			if !ok {
				t.AddRow(tech.Name(), d, "infeasible", "-", "-", "-")
				continue
			}
			t.AddRow(tech.Name(), d, op.NormCost, op.Result.Perf,
				report.DurationBand(op.Result.DowntimeMin, op.Result.DowntimeMax),
				fmt.Sprintf("%v", op.Result.Survived))
		}
	}
	// NVDIMM+Throttle's distinguishing property: under a FIXED budget it
	// serves as long as the battery lasts and then goes dark with no
	// state loss — something no non-NVDIMM sustain technique can do.
	for _, b := range []cost.Backup{cost.SmallPUPS(f.Env.PeakPower()), cost.NoDG(f.Env.PeakPower()), cost.LargeEUPS(f.Env.PeakPower())} {
		res, err := f.Evaluate(b, technique.NVDIMMThrottle{PState: 6}, w, 2*time.Hour)
		if err != nil {
			continue
		}
		t.AddRow(fmt.Sprintf("NVDIMM+Throttle@%s", b.Name), 2*time.Hour,
			b.NormalizedCost(f.Env.PeakPower()), res.Perf,
			report.DurationBand(res.DowntimeMin, res.DowntimeMax),
			fmt.Sprintf("%v", res.Survived))
	}
	t.Notes = append(t.Notes,
		"NVDIMM needs zero backup (cost 0); NVDIMM+Throttle serves until the battery dies without state risk",
		"fixed-budget rows: safe exhaustion trades service time for cost with no crash penalty")
	return t
}

// ExtGeoFailover quantifies request redirection to a geo-replicated site
// for the very long outages the paper says DG-less datacenters should not
// try to ride locally.
func ExtGeoFailover(ctx context.Context) report.Table {
	t := report.Table{
		Title:   "Extension: geo-failover for very long outages (Web-search)",
		Columns: []string{"technique", "outage", "cost", "perf", "downtime"},
	}
	f := framework()
	w := workload.WebSearch()
	for _, d := range []time.Duration{2 * time.Hour, 6 * time.Hour} {
		for _, tech := range []technique.Technique{
			technique.GeoFailover{Save: technique.SaveHibernate},
			technique.GeoFailover{Save: technique.SaveSleep},
			technique.ThrottleThenSave{PState: 6, Save: technique.SaveSleep, ActiveFraction: 0.1},
		} {
			op, ok, err := f.MinCostUPSCtx(ctx, tech, w, d)
			if err != nil {
				t.Notes = append(t.Notes, "failed: "+err.Error())
				return t
			}
			if !ok {
				t.AddRow(tech.Name(), d, "infeasible", "-", "-")
				continue
			}
			t.AddRow(tech.Name(), d, op.NormCost, op.Result.Perf,
				report.DurationBand(op.Result.DowntimeMin, op.Result.DowntimeMax))
		}
	}
	t.Notes = append(t.Notes,
		"remote serving holds ~0.7 perf for the entire outage at a bounded local backup cost")
	return t
}

// ExtBarelyAlive quantifies the RDMA-over-sleep idea against plain sleep.
func ExtBarelyAlive(ctx context.Context) report.Table {
	t := report.Table{
		Title:   "Extension: barely-alive (RDMA over sleep) — Memcached, 1h outage",
		Columns: []string{"technique", "cost", "perf", "downtime"},
	}
	f := framework()
	w := workload.Memcached()
	for _, tech := range []technique.Technique{
		technique.Sleep{LowPower: true},
		technique.BarelyAlive{},
		technique.BarelyAlive{ServedPerf: 0.2, ExtraPower: 35},
	} {
		op, ok, err := f.MinCostUPSCtx(ctx, tech, w, time.Hour)
		if err != nil {
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		if !ok {
			t.AddRow(tech.Name(), "infeasible", "-", "-")
			continue
		}
		t.AddRow(tech.Name(), op.NormCost, op.Result.Perf, op.Result.Downtime)
	}
	t.Notes = append(t.Notes,
		"a few extra watts per server buy a read-serving sliver where sleep serves nothing")
	return t
}

// ExtLiIonSizing re-runs the technique sizing under Li-ion economics
// (§7: pricier energy favors save-state over sustain-execution).
func ExtLiIonSizing(ctx context.Context) report.Table {
	t := report.Table{
		Title:   "Extension: Li-ion vs lead-acid sizing (SPECjbb, 1h outage)",
		Columns: []string{"technique", "lead-acid cost", "li-ion cost", "shift"},
	}
	la := framework()
	li := framework()
	li.Battery = battery.LiIon()
	w := workload.Specjbb()
	for _, tech := range []technique.Technique{
		technique.Throttling{PState: 6},
		technique.Sleep{LowPower: true},
		technique.Hibernate{Proactive: true},
		technique.ThrottleThenSave{PState: 6, Save: technique.SaveSleep, ActiveFraction: 0.25},
	} {
		a, okA, errA := la.MinCostUPSCtx(ctx, tech, w, time.Hour)
		b, okB, errB := li.MinCostUPSCtx(ctx, tech, w, time.Hour)
		if errA != nil || errB != nil {
			t.Notes = append(t.Notes, "failed: context cancelled")
			return t
		}
		if !okA || !okB {
			t.AddRow(tech.Name(), "-", "-", "-")
			continue
		}
		t.AddRow(tech.Name(),
			fmt.Sprintf("%.2f", a.NormCost), fmt.Sprintf("%.2f", b.NormCost),
			fmt.Sprintf("%+.0f%%", (b.NormCost/a.NormCost-1)*100))
	}
	t.Notes = append(t.Notes,
		"costs normalized to the lead-acid MaxPerf baseline; energy-hungry techniques shift most")
	return t
}

// ExtGeoFleet prices §7's geo-replication caveat: failover only works if
// spare capacity was set aside, and the spare capacity IS a cost. The table
// shows the service level after one site failure across fleet utilizations,
// and a sampled year of decorrelated site outages.
func ExtGeoFleet(context.Context) report.Table {
	t := report.Table{
		Title: "Extension: geo-replicated fleet failover (§7)",
		Columns: []string{"sites", "utilization", "needed headroom",
			"level after 1 loss", "degraded time/yr", "worst level/yr"},
	}
	for _, n := range []int{3, 4, 6} {
		for _, util := range []float64{0.60, 0.75, 0.90} {
			f, err := geo.Uniform(n, util, 0.3, 2014)
			if err != nil {
				continue
			}
			rep, err := f.SimulateYear(1)
			if err != nil {
				continue
			}
			t.AddRow(n, fmt.Sprintf("%.0f%%", util*100),
				fmt.Sprintf("%.0f%%", geo.RequiredHeadroom(n, 1)*100),
				fmt.Sprintf("%.2f", f.FailoverLevel(1)),
				rep.DegradedTime, fmt.Sprintf("%.2f", rep.WorstLevel))
		}
	}
	t.Notes = append(t.Notes,
		"a fleet needs 1/N headroom to absorb one site; packed fleets shed traffic — the §7 caveat priced",
		"combining a small local UPS (short outages) with failover (long ones) avoids paying for both in full")
	return t
}

// ExtWear contrasts backup duty against peak-shaving duty on battery
// aging — Section 2's claim that wear "is less important" for backup.
func ExtWear(context.Context) report.Table {
	t := report.Table{
		Title:   "Extension: battery wear — backup vs peak-shaving duty",
		Columns: []string{"chemistry", "duty", "cycles/yr", "DoD", "life (years)", "cost multiplier"},
	}
	type duty struct {
		name   string
		cycles float64
		dod    float64
	}
	bc, bd := battery.BackupDuty()
	pc, pd := battery.PeakShavingDuty()
	duties := []duty{
		{"backup (Fig 1 outages)", bc, bd},
		{"peak shaving (daily)", pc, pd},
	}
	for _, chem := range []struct {
		name string
		w    battery.WearModel
	}{{"lead-acid", battery.LeadAcidWear()}, {"li-ion", battery.LiIonWear()}} {
		for _, d := range duties {
			t.AddRow(chem.name, d.name, fmt.Sprintf("%.0f", d.cycles), fmt.Sprintf("%.0f%%", d.dod*100),
				fmt.Sprintf("%.1f", chem.w.LifeYears(d.cycles, d.dod)),
				fmt.Sprintf("%.2fx", chem.w.CostMultiplier(d.cycles, d.dod)))
		}
	}
	t.Notes = append(t.Notes,
		"backup duty is calendar-dominated (multiplier ~1.0): Table 1's 4-year amortization needs no wear correction")
	return t
}

// ExtUPSTopology quantifies §3's online-vs-offline remark: the normal-
// operation conversion tax that makes datacenters deploy offline UPSes.
func ExtUPSTopology(context.Context) report.Table {
	t := report.Table{
		Title:   "Extension: online vs offline UPS (1 MW rating, 80% load, $0.07/KWh)",
		Columns: []string{"design", "normal-op loss", "loss $/yr", "vs UPS cap-ex"},
	}
	load, capW := 800*units.Kilowatt, units.Megawatt
	capex := float64(ups.NewConfig(capW, 2*time.Minute).AnnualCost())
	for _, d := range []ups.Design{ups.Offline, ups.Online} {
		e := ups.DefaultElectrical(d)
		loss := e.NormalLoss(load, capW)
		cost := float64(e.AnnualNormalLossCost(load, capW, 0.07))
		t.AddRow(d.String(), loss, fmt.Sprintf("%.0f", cost),
			fmt.Sprintf("%.0f%%", cost/capex*100))
	}
	t.Notes = append(t.Notes,
		"double conversion costs more per year than the offline UPS's entire power-electronics cap-ex")
	return t
}

// ExtPolicy quantifies §7's first challenge — handling UNKNOWN outage
// durations — by racing the online adaptive policy (Markov predictor +
// escalation ladder) against the oracle that knew each duration.
func ExtPolicy(context.Context) report.Table {
	t := report.Table{
		Title:   "Extension: adaptive policy vs duration oracle (SPECjbb, LargeEUPS)",
		Columns: []string{"outage", "who", "perf", "downtime", "survived", "modes"},
	}
	f := framework()
	b := cost.LargeEUPS(f.Env.PeakPower())
	for _, d := range []time.Duration{30 * time.Second, 5 * time.Minute, 30 * time.Minute, 2 * time.Hour} {
		pr, or, err := f.PolicyVsOracle(b, workload.Specjbb(), d, 30*time.Second)
		if err != nil {
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		modes := ""
		for i, m := range pr.Transitions {
			if i > 0 {
				modes += "→"
			}
			modes += m.String()
		}
		t.AddRow(d, "policy", pr.Perf, pr.Downtime, fmt.Sprintf("%v", pr.Survived), modes)
		t.AddRow(d, "oracle", or.Perf, or.Downtime, fmt.Sprintf("%v", or.Survived), or.Technique)
	}
	t.Notes = append(t.Notes,
		"the policy sees only elapsed time and charge; the oracle picks the best technique knowing the duration",
		"the escalation matches §7's sketch (throttle early, sleep past ~4 min); the gap vs the oracle is the price of unknown durations")
	return t
}

// ExtOpEx checks the paper's Section 3 assumption that DG op-ex is
// negligible against cap-ex, across yearly outage exposure.
func ExtOpEx(context.Context) report.Table {
	t := report.Table{
		Title:   "Extension: DG op-ex vs cap-ex (10 MW datacenter)",
		Columns: []string{"outage/yr", "fuel+maint $/yr", "cap-ex $/yr", "op-ex share", "negligible (<15%)"},
	}
	f := genset.DefaultFuel()
	c := genset.New(10 * units.Megawatt)
	capex := c.AnnualCost()
	for _, per := range []time.Duration{0, 90 * time.Minute, 5 * time.Hour, 24 * time.Hour, 30 * 24 * time.Hour} {
		opex := f.AnnualOpEx(c, 10*units.Megawatt, per)
		share := float64(opex) / float64(capex)
		t.AddRow(per, opex, capex, fmt.Sprintf("%.1f%%", share*100),
			fmt.Sprintf("%v", f.OpExNegligible(c, 10*units.Megawatt, per, 0.15)))
	}
	t.Notes = append(t.Notes,
		"the paper's negligibility claim holds for realistic outage exposure; a month of outage per year breaks it")
	return t
}

// ExtPortfolio designs a heterogeneous datacenter (§7's second challenge):
// per-application sections with individually sized backups, against the
// all-MaxPerf alternative.
func ExtPortfolio(ctx context.Context) report.Table {
	t := report.Table{
		Title: "Extension: heterogeneous portfolio design (§7)",
		Columns: []string{"workload", "servers", "technique", "backup",
			"$/yr", "perf", "downtime"},
	}
	p := portfolio.NewPlanner(framework())
	reqs := []portfolio.Requirement{
		{Workload: workload.WebSearch(), Servers: 64, SLA: portfolio.SLA{
			Outage: 10 * time.Minute, MinPerf: 0.4, MaxDowntime: time.Minute,
		}},
		{Workload: workload.Memcached(), Servers: 32, SLA: portfolio.SLA{
			Outage: 10 * time.Minute, MinPerf: 0.3, MaxDowntime: 5 * time.Minute,
		}},
		{Workload: workload.Specjbb(), Servers: 32, SLA: portfolio.SLA{
			Outage: 10 * time.Minute, MinPerf: 0, MaxDowntime: 15 * time.Minute,
			RequireStateSafety: true,
		}},
		{Workload: workload.SpecCPU(), Servers: 128, SLA: portfolio.SLA{
			Outage: 30 * time.Minute, MinPerf: 0, MaxDowntime: 2 * time.Hour,
		}},
	}
	plan, err := p.DesignCtx(ctx, reqs)
	if err != nil {
		t.Notes = append(t.Notes, "design failed: "+err.Error())
		return t
	}
	for _, s := range plan.Sections {
		t.AddRow(s.Workload, s.Servers, s.Technique, s.Backup.Name,
			s.AnnualCost, s.Perf, s.Downtime)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"total %v vs all-MaxPerf %v: %.0f%% savings",
		plan.TotalCost, plan.MaxPerfCost, plan.Savings()*100))
	return t
}

// ExtCheckpoint sweeps the HPC checkpoint interval: crash recovery drops
// from "recompute the whole run" to "recompute one interval" (§6's
// checkpointing aside), which changes whether MinCost is tolerable for
// batch work.
func ExtCheckpoint(context.Context) report.Table {
	t := report.Table{
		Title:   "Extension: HPC checkpoint interval vs crash downtime (30s outage, MinCost)",
		Columns: []string{"checkpoint interval", "downtime min", "downtime max", "downtime mid"},
	}
	f := framework()
	peak := f.Env.PeakPower()
	for _, iv := range []time.Duration{0, 30 * time.Minute, 10 * time.Minute, time.Minute} {
		w := workload.CheckpointedSpecCPU(iv)
		res, err := f.Evaluate(cost.MinCost(peak), technique.Baseline{}, w, 30*time.Second)
		if err != nil {
			continue
		}
		label := "none (2h run)"
		if iv > 0 {
			label = report.FormatDuration(iv)
		}
		t.AddRow(label, res.DowntimeMin, res.DowntimeMax, res.Downtime)
	}
	t.Notes = append(t.Notes,
		"tighter checkpoints bound the recompute tail; the floor is restart + reload")
	return t
}

// ExtDiurnal contrasts the paper's steady near-peak assumption against a
// diurnal load profile in the yearly availability Monte-Carlo: outages
// landing at the trough are easier to ride on a small battery.
func ExtDiurnal(ctx context.Context) report.Table {
	t := report.Table{
		Title:   "Extension: diurnal load vs steady peak (NoDG, SPECjbb, 25 years)",
		Columns: []string{"load profile", "downtime/yr", "state losses/yr", "service loss/yr"},
	}
	f := framework()
	b := cost.NoDG(f.Env.PeakPower())
	run := func(name string, prof loadprofile.Profile) {
		p := &availability.Planner{Framework: f, Workload: workload.Specjbb(), Backup: b, Load: prof}
		sum, _, err := p.SimulateYearsCtx(ctx, 25, 2014)
		if err != nil {
			t.Notes = append(t.Notes, name+" failed: "+err.Error())
			return
		}
		t.AddRow(name, sum.MeanDowntime,
			fmt.Sprintf("%.2f", sum.MeanStateLossesYear), sum.MeanServiceLoss)
	}
	run("steady peak", nil)
	run("diurnal (45-100%, weekend dip)", loadprofile.Typical())
	t.Notes = append(t.Notes,
		"identical outage traces; only the utilization at outage time differs")
	return t
}

// ExtPlacement runs the FreeRunTime sensitivity the companion tech report
// covers: server-level batteries come with a smaller free base runtime, so
// the 'free bridge' shrinks and short-outage costs rise.
func ExtPlacement(context.Context) report.Table {
	t := report.Table{
		Title:   "Extension: UPS placement / free-runtime sensitivity (NoDG cost)",
		Columns: []string{"free runtime", "NoDG normalized cost", "42-min pack cost"},
	}
	peak := core.New(DefaultServers).Env.PeakPower()
	base := cost.MaxPerf(peak).AnnualCost()
	for _, free := range []time.Duration{30 * time.Second, time.Minute, 2 * time.Minute, 4 * time.Minute} {
		tech := battery.LeadAcid()
		tech.FreeRunTime = free
		nodg := cost.CustomTech("NoDG", 0, peak, 2*time.Minute, tech)
		pack := cost.CustomTech("pack", 0, peak, 42*time.Minute, tech)
		t.AddRow(free,
			fmt.Sprintf("%.3f", float64(nodg.AnnualCost())/float64(base)),
			fmt.Sprintf("%.3f", float64(pack.AnnualCost())/float64(base)))
	}
	t.Notes = append(t.Notes,
		"rack-level placement (2-min free) is the paper's default; smaller free runtimes charge for the DG bridge")
	return t
}
