// Package ups models the offline (line-interactive) rack-level UPS units of
// Section 3: battery-backed ride-through devices that detect a utility
// failure in ~10 ms and take over the load, aided by ~30 ms of inherent
// power-supply capacitance in the servers. UPS cap-ex has two dimensions —
// power capacity (inverter/electronics) and energy capacity (battery
// modules) — which is exactly the 2-D underprovisioning space the paper
// explores.
package ups

import (
	"fmt"
	"time"

	"backuppower/internal/battery"
	"backuppower/internal/units"
)

// Placement indicates where UPS units sit in the power hierarchy. The paper
// assumes rack-level (as at Facebook and Microsoft) for efficiency and cost;
// server-level is evaluated in the companion tech report.
type Placement int

// Placement values.
const (
	RackLevel Placement = iota
	ServerLevel
	Centralized
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case RackLevel:
		return "rack-level"
	case ServerLevel:
		return "server-level"
	case Centralized:
		return "centralized"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Config describes the provisioned UPS fleet for the datacenter, expressed
// at datacenter aggregate scale (the simulation treats the rack UPSes of a
// homogeneous datacenter as one aggregate pack, which is exact for the
// uniform workloads the paper evaluates).
type Config struct {
	// PowerCapacity is the aggregate load the UPS electronics can source.
	// Zero means no UPS provisioned.
	PowerCapacity units.Watts

	// Runtime is the rated battery runtime at PowerCapacity. NewConfig
	// bumps it to the technology's free base runtime when lower.
	Runtime time.Duration

	// Tech selects the battery chemistry (lead-acid by default).
	Tech battery.Technology

	// SwitchoverDelay is the outage-detection plus transfer delay of the
	// offline design (~10 ms).
	SwitchoverDelay time.Duration

	// RideThrough is the server PSU capacitance window (~30 ms) that masks
	// the switchover; it is also the window within which instantaneous
	// techniques (throttling) can engage before the UPS sees the load.
	RideThrough time.Duration

	Placement Placement
}

// Defaults from Section 3.
const (
	DefaultSwitchoverDelay = 10 * time.Millisecond
	DefaultRideThrough     = 30 * time.Millisecond
)

// NewConfig builds a rack-level lead-acid UPS with the paper's defaults.
func NewConfig(power units.Watts, runtime time.Duration) Config {
	tech := battery.LeadAcid()
	if power > 0 && runtime < tech.FreeRunTime {
		runtime = tech.FreeRunTime
	}
	if power <= 0 {
		runtime = 0
	}
	return Config{
		PowerCapacity:   power,
		Runtime:         runtime,
		Tech:            tech,
		SwitchoverDelay: DefaultSwitchoverDelay,
		RideThrough:     DefaultRideThrough,
		Placement:       RackLevel,
	}
}

// None returns an unprovisioned (absent) UPS.
func None() Config { return NewConfig(0, 0) }

// Provisioned reports whether any UPS exists.
func (c Config) Provisioned() bool { return c.PowerCapacity > 0 }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PowerCapacity < 0 {
		return fmt.Errorf("ups: negative power capacity %v", c.PowerCapacity)
	}
	if err := c.Tech.Validate(); err != nil {
		return err
	}
	if !c.Provisioned() {
		return nil
	}
	switch {
	case c.Runtime < c.Tech.FreeRunTime:
		return fmt.Errorf("ups: runtime %v below free base %v", c.Runtime, c.Tech.FreeRunTime)
	case c.SwitchoverDelay < 0:
		return fmt.Errorf("ups: negative switchover delay")
	case c.RideThrough < c.SwitchoverDelay:
		return fmt.Errorf("ups: ride-through %v shorter than switchover %v — load would drop",
			c.RideThrough, c.SwitchoverDelay)
	}
	return nil
}

// Pack returns the aggregate battery pack implied by the config.
func (c Config) Pack() battery.Pack {
	if !c.Provisioned() {
		return battery.Pack{Tech: c.Tech}
	}
	return battery.NewPack(c.Tech, c.PowerCapacity, c.Runtime)
}

// AnnualCost is Equation (2) of the paper: power electronics by capacity
// plus battery energy beyond the free base.
func (c Config) AnnualCost() units.DollarsPerYear {
	if !c.Provisioned() {
		return 0
	}
	return c.Pack().AnnualCost()
}

// CanCarry reports whether the UPS electronics can source the given load.
func (c Config) CanCarry(load units.Watts) bool {
	return load <= c.PowerCapacity
}

// Unit is the live (stateful) UPS used inside a simulation: a Config plus
// battery depletion state.
type Unit struct {
	Config Config
	state  battery.State
}

// NewUnit returns a fully charged unit for the config.
func NewUnit(c Config) *Unit { return &Unit{Config: c} }

// Remaining returns the unconsumed battery fraction.
func (u *Unit) Remaining() float64 { return u.state.Remaining() }

// Depleted reports whether the battery is exhausted.
func (u *Unit) Depleted() bool { return u.state.Depleted() }

// Recharge refills the battery (utility restored).
func (u *Unit) Recharge() { u.state.Recharge() }

// TimeToEmpty returns how long the unit can sustain load from its current
// charge. Loads above the power capacity return 0.
func (u *Unit) TimeToEmpty(load units.Watts) time.Duration {
	if !u.Config.CanCarry(load) {
		return 0
	}
	return u.state.TimeToEmpty(u.Config.Pack(), load)
}

// Drain sustains load for up to dt, returning the time actually sustained
// (shorter if the battery empties). A load above the power capacity is not
// sustainable and returns 0 without consuming charge — the caller must shed
// load first (that is the power-capping obligation underprovisioning
// creates).
func (u *Unit) Drain(load units.Watts, dt time.Duration) time.Duration {
	if load <= 0 {
		return dt
	}
	if !u.Config.CanCarry(load) {
		return 0
	}
	return u.state.Drain(u.Config.Pack(), load, dt)
}
