package cluster

import (
	"testing"

	"backuppower/internal/units"
)

// energySeeds is how many generator-driven scenarios the conservation
// tests sweep. The seeds are fixed (0..N-1), so every run checks the
// exact same scenario set.
const energySeeds = 300

// TestSegmentsTileOutageWindow checks, on generator-driven scenarios,
// that the segment decomposition is an exact tiling of the outage
// window: starts at zero, strictly increasing non-empty intervals, each
// segment beginning where the previous ended, ending exactly at the
// horizon — and that every segment's power split balances
// (Load = DGSupply + UPSNeed, both non-negative).
func TestSegmentsTileOutageWindow(t *testing.T) {
	for seed := int64(0); seed < energySeeds; seed++ {
		s := randomScenario(seed)
		plan := s.Technique.Plan(s.Env, s.Workload, s.Outage)
		segs := Segments(s.Env, s.Workload, plan, s.Backup.DG, s.Outage)
		if len(segs) == 0 {
			t.Fatalf("seed %d: no segments for a positive outage", seed)
		}
		if segs[0].Start != 0 {
			t.Fatalf("seed %d: first segment starts at %v, not 0", seed, segs[0].Start)
		}
		if last := segs[len(segs)-1].End; last != s.Outage {
			t.Fatalf("seed %d: last segment ends at %v, outage is %v", seed, last, s.Outage)
		}
		for i, seg := range segs {
			if seg.End <= seg.Start {
				t.Fatalf("seed %d: segment %d empty or inverted: [%v, %v)", seed, i, seg.Start, seg.End)
			}
			if i > 0 && seg.Start != segs[i-1].End {
				t.Fatalf("seed %d: gap/overlap at segment %d: prev ends %v, next starts %v",
					seed, i, segs[i-1].End, seg.Start)
			}
			if seg.DGSupply < 0 || seg.UPSNeed < 0 {
				t.Fatalf("seed %d: segment %d negative supply split: DG %v, UPS %v",
					seed, i, seg.DGSupply, seg.UPSNeed)
			}
			if diff := seg.Load - seg.DGSupply - seg.UPSNeed; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("seed %d: segment %d power imbalance: load %v != DG %v + UPS %v",
					seed, i, seg.Load, seg.DGSupply, seg.UPSNeed)
			}
		}
	}
}

// TestUPSEnergyConservation checks, on the same generated scenarios,
// that the energy SimulateAggregate reports as drawn from the UPS never
// exceeds (a) the total UPS-side demand of the outage window's segments
// and (b) the pack's best-case deliverable energy (rated capacity with
// the Peukert stretch at the minimum-load floor) — and is exactly zero
// when no UPS is provisioned.
func TestUPSEnergyConservation(t *testing.T) {
	for seed := int64(0); seed < energySeeds; seed++ {
		s := randomScenario(seed)
		r, err := SimulateAggregate(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !s.Backup.UPS.Provisioned() {
			if r.UPSEnergy != 0 {
				t.Fatalf("seed %d: %v drawn from an absent UPS", seed, r.UPSEnergy)
			}
			continue
		}
		plan := s.Technique.Plan(s.Env, s.Workload, s.Outage)
		var demand units.WattHours
		for _, seg := range Segments(s.Env, s.Workload, plan, s.Backup.DG, s.Outage) {
			demand += units.WattHours(float64(seg.UPSNeed) * (seg.End - seg.Start).Hours())
		}
		if float64(r.UPSEnergy) > float64(demand)*(1+1e-9)+1e-9 {
			t.Fatalf("seed %d: drew %v from the UPS, window demand only %v", seed, r.UPSEnergy, demand)
		}
		pack := s.Backup.UPS.Pack()
		deliverable := pack.EffectiveEnergyAt(units.Watts(float64(pack.RatedPower) * pack.Tech.MinLoadFraction))
		if float64(r.UPSEnergy) > float64(deliverable)*1.01 {
			t.Fatalf("seed %d: drew %v, pack can deliver at most %v", seed, r.UPSEnergy, deliverable)
		}
	}
}

// TestAggregateMatchesTraceOnGeneratedScenarios extends the fixed-case
// aggregate/trace equivalence to generator-driven inputs: for every
// generated scenario, SimulateAggregate must reproduce every aggregate
// metric of the trace-recording Simulate path bit for bit.
func TestAggregateMatchesTraceOnGeneratedScenarios(t *testing.T) {
	for seed := int64(0); seed < energySeeds; seed++ {
		s := randomScenario(seed)
		traced, err := Simulate(s)
		if err != nil {
			t.Fatalf("seed %d: Simulate: %v", seed, err)
		}
		agg, err := SimulateAggregate(s)
		if err != nil {
			t.Fatalf("seed %d: SimulateAggregate: %v", seed, err)
		}
		traced.PerfTrace, traced.PowerTrace = nil, nil
		if agg != traced {
			t.Fatalf("seed %d: aggregate path diverged from trace path:\n  trace: %+v\n  aggr:  %+v",
				seed, traced, agg)
		}
	}
}

// TestGeneratedScenariosCoverRegimes guards the generator itself: across
// the fixed seed range it must exercise crashes, survivals, DG-backed
// and UPS-only configurations — otherwise the conservation tests above
// silently lose coverage.
func TestGeneratedScenariosCoverRegimes(t *testing.T) {
	var crashed, survived, withDG, upsOnly int
	for seed := int64(0); seed < energySeeds; seed++ {
		s := randomScenario(seed)
		r, err := SimulateAggregate(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Survived {
			survived++
		} else {
			crashed++
		}
		if s.Backup.DG.Provisioned() {
			withDG++
		} else {
			upsOnly++
		}
	}
	for name, n := range map[string]int{
		"crashed": crashed, "survived": survived, "with-DG": withDG, "ups-only": upsOnly,
	} {
		if n < energySeeds/20 {
			t.Errorf("generator regime %q underrepresented: %d of %d scenarios", name, n, energySeeds)
		}
	}
}
