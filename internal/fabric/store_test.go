package fabric

import (
	"bytes"
	"testing"

	"backuppower/internal/grid"
	"backuppower/internal/resultstore"
)

// TestFabricWarmRerunServedFromStore runs the tentpole equivalence at
// the fabric layer: three workers share one persistent row store (as
// in-process loopback workers share the process globals), a cold
// distributed sweep populates it, and a warm rerun is served entirely
// from the store — zero recomputed rows, byte-identical merge.
func TestFabricWarmRerunServedFromStore(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	grid.SetRowStore(store)
	defer func() {
		grid.SetRowStore(nil)
		store.Close()
	}()

	spec := testSpec()
	urls := newWorkers(t, 3, nil)
	f, err := New(Options{
		Workers:    urls,
		ShardRows:  3,
		HedgeAfter: -1,
		Store:      store,
	})
	if err != nil {
		t.Fatal(err)
	}

	var cold bytes.Buffer
	if err := f.Run(t.Context(), spec, &cold); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	st := store.Stats()
	if int(st.RecomputesRows) != 24 || int(st.Puts) != 24 {
		t.Fatalf("cold distributed run stats: %+v, want 24 recomputes and 24 puts", st)
	}

	var warm bytes.Buffer
	if err := f.Run(t.Context(), spec, &warm); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !bytes.Equal(warm.Bytes(), cold.Bytes()) {
		t.Fatal("warm distributed rerun diverged from the cold merge")
	}
	after := store.Stats()
	if d := after.RecomputesRows - st.RecomputesRows; d != 0 {
		t.Fatalf("warm rerun recomputed %d rows across the pool", d)
	}
	if d := after.Puts - st.Puts; d != 0 {
		t.Fatalf("warm rerun re-put %d rows", d)
	}
	if d := after.HitsRows - st.HitsRows; int(d) != 24 {
		t.Fatalf("warm rerun served %d store hits, want 24", d)
	}
}
