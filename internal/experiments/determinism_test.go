package experiments

import (
	"context"
	"testing"

	"backuppower/internal/core"
	"backuppower/internal/sweep"
)

// TestParallelRunsAreByteIdentical is the engine's headline contract: a
// parallel regeneration must render byte-identical tables to the serial
// reference run. Fig 6 (variant race × rating sweep × duration fan-out)
// and the availability Monte-Carlo (per-config × per-year fan-out with
// derived seeds) are the two structurally deepest experiments, so they
// pin the contract for everything else.
func TestParallelRunsAreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig6 + Monte-Carlo regeneration")
	}
	for _, id := range []string{"fig6", "ext-availability"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("missing experiment %s", id)
			}
			// Purge the scenario cache between runs so the parallel run
			// cannot trivially replay the serial run's memoized results.
			core.ResetScenarioCache()
			serial := e.Run(sweep.WithWidth(context.Background(), 1))
			core.ResetScenarioCache()
			parallel := e.Run(sweep.WithWidth(context.Background(), 8))

			if len(serial.Rows) == 0 {
				t.Fatal("serial run produced no rows")
			}
			if len(serial.Rows) != len(parallel.Rows) {
				t.Fatalf("row counts differ: serial %d, parallel %d",
					len(serial.Rows), len(parallel.Rows))
			}
			for i := range serial.Rows {
				s, p := serial.Rows[i], parallel.Rows[i]
				if len(s) != len(p) {
					t.Fatalf("row %d width differs: %v vs %v", i, s, p)
				}
				for j := range s {
					if s[j] != p[j] {
						t.Errorf("row %d cell %d: serial %q != parallel %q", i, j, s[j], p[j])
					}
				}
			}
			if serial.String() != parallel.String() {
				t.Error("rendered tables differ byte-wise")
			}
		})
	}
}

// TestRunAllOrderMatchesRegistry checks the parallel registry runner
// returns tables in registry order (a cheap structural check on a small
// slice of the registry, so the full suite is not regenerated twice).
func TestRunAllOrderMatchesRegistry(t *testing.T) {
	reg := Registry()[:4] // fig1, fig3, table1, table2 — all cheap
	tables, err := RunAll(sweep.WithWidth(context.Background(), 4), reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(reg) {
		t.Fatalf("tables = %d, want %d", len(tables), len(reg))
	}
	for i, e := range reg {
		want := e.Run(context.Background())
		if tables[i].Title != want.Title {
			t.Errorf("position %d: got %q, want %q", i, tables[i].Title, want.Title)
		}
	}
}
