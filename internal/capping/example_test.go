package capping_test

import (
	"fmt"

	"backuppower/internal/capping"
	"backuppower/internal/server"
	"backuppower/internal/workload"
)

// A half-power UPS is a 125 W per-server budget; the controller picks the
// fastest P/T setting that fits and the workload model says what
// throughput survives.
func ExamplePerfUnderBudget() {
	cfg := server.DefaultConfig()
	w := workload.Memcached()
	perf, setting, ok := capping.PerfUnderBudget(cfg, w, 125)
	if !ok {
		fmt.Println("budget below the throttling floor")
		return
	}
	fmt.Printf("setting %s draws %v, memcached keeps %.0f%% throughput\n",
		setting, setting.Power, perf*100)
	// Output:
	// setting P4/T3 draws 120.7 W, memcached keeps 57% throughput
}
