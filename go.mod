module backuppower

go 1.22
