package multinode

import (
	"testing"

	"backuppower/internal/units"
	"backuppower/internal/workload"
)

const testScale = 1 << 20 // 1 MiB of logical state per wire byte

func TestNodeLifecycle(t *testing.T) {
	n, err := StartNode("n0", units.Gibibyte)
	if err != nil {
		t.Fatalf("StartNode: %v", err)
	}
	defer n.Close()
	if n.State() != "active" {
		t.Errorf("state = %q", n.State())
	}
	if n.Held() != units.Gibibyte {
		t.Errorf("held = %v", n.Held())
	}
	cc, err := dialControl(n.ControlAddr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cc.conn.Close()
	r, err := cc.roundTrip(command{Op: "status"})
	if err != nil || r.State != "active" {
		t.Fatalf("status: %+v %v", r, err)
	}
	if _, err := cc.roundTrip(command{Op: "sleep"}); err != nil {
		t.Fatalf("sleep: %v", err)
	}
	// Sleeping twice is a protocol error.
	if _, err := cc.roundTrip(command{Op: "sleep"}); err == nil {
		t.Error("double sleep should fail")
	}
	if _, err := cc.roundTrip(command{Op: "wake"}); err != nil {
		t.Fatalf("wake: %v", err)
	}
	if _, err := cc.roundTrip(command{Op: "bogus"}); err == nil {
		t.Error("unknown op should fail")
	}
	// Power off drops volatile state.
	if _, err := cc.roundTrip(command{Op: "poweroff"}); err != nil {
		t.Fatalf("poweroff: %v", err)
	}
	if n.Held() != 0 {
		t.Errorf("held after poweroff = %v", n.Held())
	}
}

func TestPairwiseMigration(t *testing.T) {
	src, err := StartNode("src", 256*units.Mebibyte)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := StartNode("dst", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	cc, err := dialControl(src.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.conn.Close()

	rounds := []int64{int64(256 * units.Mebibyte), int64(32 * units.Mebibyte)}
	r, err := cc.roundTrip(command{Op: "migrate", Dest: dst.DataAddr(), Rounds: rounds, Scale: testScale})
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	wantWire := int64(256 + 32) // MiB / scale
	if r.WireBytes != wantWire {
		t.Errorf("wire bytes = %d, want %d", r.WireBytes, wantWire)
	}
	if src.Held() != 0 {
		t.Errorf("source still holds %v", src.Held())
	}
	if dst.WireBytes() != wantWire {
		t.Errorf("dst wire bytes = %d", dst.WireBytes())
	}
	// Migrating from a powered-off source fails.
	if _, err := cc.roundTrip(command{Op: "poweroff"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.roundTrip(command{Op: "migrate", Dest: dst.DataAddr(), Rounds: rounds, Scale: testScale}); err == nil {
		t.Error("migration from off node should fail")
	}
}

func TestMigrateBadScale(t *testing.T) {
	src, _ := StartNode("src", units.Mebibyte)
	defer src.Close()
	cc, err := dialControl(src.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.conn.Close()
	if _, err := cc.roundTrip(command{Op: "migrate", Dest: "127.0.0.1:1", Rounds: []int64{1}, Scale: 0}); err == nil {
		t.Error("zero scale should fail")
	}
	// Unreachable destination fails cleanly.
	if _, err := cc.roundTrip(command{Op: "migrate", Dest: "127.0.0.1:1", Rounds: []int64{1}, Scale: testScale}); err == nil {
		t.Error("unreachable dest should fail")
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(3, workload.Memcached(), testScale); err == nil {
		t.Error("odd node count should fail")
	}
	if _, err := NewCoordinator(0, workload.Memcached(), testScale); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := NewCoordinator(2, workload.Memcached(), 0); err == nil {
		t.Error("zero scale should fail")
	}
}

func TestOutageDrill(t *testing.T) {
	w := workload.Memcached() // low dirty rate: fast convergence
	co, err := NewCoordinator(4, w, testScale)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer co.Close()

	rep, err := co.RunOutageDrill(50 * units.MiBps)
	if err != nil {
		t.Fatalf("drill: %v", err)
	}
	if len(rep.Migrations) != 2 || len(rep.MigrateBack) != 2 {
		t.Fatalf("migrations = %d/%d, want 2/2", len(rep.Migrations), len(rep.MigrateBack))
	}
	if !rep.SleepOK || !rep.WakeOK {
		t.Error("sleep/wake did not complete")
	}
	// Consolidation preserved all state on the survivors.
	want := units.Bytes(4) * w.VMImage / 2 * 2
	if rep.SurvivorsHeld != want {
		t.Errorf("survivors held %v, want %v", rep.SurvivorsHeld, want)
	}
	// Pre-copy means more than one round over the wire.
	for _, m := range rep.Migrations {
		if m.Rounds < 2 {
			t.Errorf("%s->%s rounds = %d", m.Source, m.Dest, m.Rounds)
		}
		if m.WireBytes <= 0 {
			t.Errorf("no wire traffic for %s->%s", m.Source, m.Dest)
		}
		if !m.Converged {
			t.Errorf("migration did not converge")
		}
	}
	// After the drill every node is active and holds its own image.
	for _, n := range co.Nodes() {
		if n.State() != "active" {
			t.Errorf("%s state %q", n.Name(), n.State())
		}
		if n.Held() != w.VMImage {
			t.Errorf("%s holds %v, want %v", n.Name(), n.Held(), w.VMImage)
		}
	}
	co.Shutdown()
}

func TestDrillSpecjbbManyRounds(t *testing.T) {
	// SPECjbb's GC churn forces many pre-copy rounds — the protocol must
	// carry them all.
	w := workload.Specjbb()
	co, err := NewCoordinator(2, w, testScale)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	rep, err := co.RunOutageDrill(54 * units.MiBps)
	if err != nil {
		t.Fatalf("drill: %v", err)
	}
	if rep.Migrations[0].Rounds < 5 {
		t.Errorf("specjbb rounds = %d, want many", rep.Migrations[0].Rounds)
	}
}
