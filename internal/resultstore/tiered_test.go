package resultstore

import (
	"errors"
	"strconv"
	"testing"

	"backuppower/internal/sweep"
)

func stringCodec() (func(string) ([]byte, bool), func([]byte) (string, bool)) {
	enc := func(v string) ([]byte, bool) { return []byte(v), true }
	dec := func(p []byte) (string, bool) { return string(p), true }
	return enc, dec
}

func stableFor(i int) func() Key {
	return func() Key { return testKey(NSScenario, i) }
}

// panicStable pins the store-less fast path: with no disk tier attached,
// the (expensive) stable-key thunk must never run.
func panicStable() Key {
	panic("stable key computed without a disk tier")
}

func TestTieredWithoutDiskMatchesMemoryTier(t *testing.T) {
	mem := sweep.NewCache[int, string](64)
	enc, dec := stringCodec()
	tier := NewTiered(mem, nil, enc, dec)
	if tier.Persistent() {
		t.Fatal("nil disk reported persistent")
	}
	computes := 0
	compute := func() (string, error) { computes++; return "v", nil }

	if _, _, ok := tier.Peek(1, panicStable); ok {
		t.Fatal("empty tier peeked a value")
	}
	if v, err := tier.Do(1, panicStable, compute); err != nil || v != "v" {
		t.Fatalf("Do: %v %v", v, err)
	}
	if v, err := tier.Do(1, panicStable, compute); err != nil || v != "v" {
		t.Fatalf("Do (warm): %v %v", v, err)
	}
	if computes != 1 {
		t.Fatalf("computed %d times", computes)
	}
	if v, err, ok := tier.Peek(1, panicStable); !ok || err != nil || v != "v" {
		t.Fatalf("Peek: %v %v %v", v, err, ok)
	}
	if got, err := tier.Seed(2, panicStable, "seeded"); err != nil || got != "seeded" {
		t.Fatalf("Seed: %v %v", got, err)
	}
	// Memory-tier accounting identical to direct sweep.Cache use: miss,
	// hit, (Peek hit), miss (seed), in that order.
	hits, misses := mem.Stats()
	if misses != 2 || hits != 2 {
		t.Fatalf("mem stats hits=%d misses=%d, want 2/2", hits, misses)
	}
}

func TestTieredDiskFillsMemoryMisses(t *testing.T) {
	disk := mustOpen(t, t.TempDir())
	defer disk.Close()
	enc, dec := stringCodec()

	computes := 0
	compute := func() (string, error) { computes++; return "computed", nil }

	// First process: computes, writes through.
	t1 := NewTiered(sweep.NewCache[int, string](64), disk, enc, dec)
	if !t1.Persistent() {
		t.Fatal("disk tier not reported persistent")
	}
	if v, err := t1.Do(1, stableFor(1), compute); err != nil || v != "computed" {
		t.Fatalf("cold Do: %v %v", v, err)
	}
	if computes != 1 {
		t.Fatalf("computed %d times", computes)
	}

	// "Restart": fresh memory tier, same disk — Do serves from disk
	// without computing, and the memory seed counts the miss a
	// computation would have (metrics indistinguishable from store-less).
	mem2 := sweep.NewCache[int, string](64)
	t2 := NewTiered(mem2, disk, enc, dec)
	if v, err := t2.Do(1, stableFor(1), compute); err != nil || v != "computed" {
		t.Fatalf("warm-restart Do: %v %v", v, err)
	}
	if computes != 1 {
		t.Fatal("disk hit still computed")
	}
	if hits, misses := mem2.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("seeding accounting hits=%d misses=%d, want 0/1", hits, misses)
	}
	// Second consult is a pure memory hit, disk untouched.
	before := disk.Stats().Hits
	if v, err := t2.Do(1, stableFor(1), compute); err != nil || v != "computed" {
		t.Fatalf("memory-warm Do: %v %v", v, err)
	}
	if disk.Stats().Hits != before {
		t.Fatal("memory hit consulted the disk tier")
	}

	// Peek follows the same two-tier discipline on yet another restart.
	t3 := NewTiered(sweep.NewCache[int, string](64), disk, enc, dec)
	if v, err, ok := t3.Peek(1, stableFor(1)); !ok || err != nil || v != "computed" {
		t.Fatalf("warm-restart Peek: %v %v %v", v, err, ok)
	}
	if _, _, ok := t3.Peek(2, stableFor(2)); ok {
		t.Fatal("Peek invented a value for an unknown key")
	}
}

func TestTieredErrorsNotPersisted(t *testing.T) {
	disk := mustOpen(t, t.TempDir())
	defer disk.Close()
	enc, dec := stringCodec()
	boom := errors.New("boom")

	t1 := NewTiered(sweep.NewCache[int, string](64), disk, enc, dec)
	if _, err := t1.Do(1, stableFor(1), func() (string, error) { return "", boom }); !errors.Is(err, boom) {
		t.Fatalf("error not returned: %v", err)
	}
	// Memoized in memory...
	calls := 0
	if _, err := t1.Do(1, stableFor(1), func() (string, error) { calls++; return "", boom }); !errors.Is(err, boom) || calls != 0 {
		t.Fatalf("error not memoized in memory: %v calls=%d", err, calls)
	}
	// ...but never on disk: a restart recomputes.
	t2 := NewTiered(sweep.NewCache[int, string](64), disk, enc, dec)
	v, err := t2.Do(1, stableFor(1), func() (string, error) { return "recovered", nil })
	if err != nil || v != "recovered" {
		t.Fatalf("restart after error: %v %v", v, err)
	}
}

func TestTieredSeedWritesThrough(t *testing.T) {
	disk := mustOpen(t, t.TempDir())
	defer disk.Close()
	enc, dec := stringCodec()

	t1 := NewTiered(sweep.NewCache[int, string](64), disk, enc, dec)
	for i := 0; i < 5; i++ {
		if got, err := t1.Seed(i, stableFor(i), "seed-"+strconv.Itoa(i)); err != nil || got != "seed-"+strconv.Itoa(i) {
			t.Fatalf("Seed(%d): %v %v", i, got, err)
		}
	}
	t2 := NewTiered(sweep.NewCache[int, string](64), disk, enc, dec)
	for i := 0; i < 5; i++ {
		v, err, ok := t2.Peek(i, stableFor(i))
		if !ok || err != nil || v != "seed-"+strconv.Itoa(i) {
			t.Fatalf("restart Peek(%d): %v %v %v", i, v, err, ok)
		}
	}
	// A racing earlier entry wins over a later Seed, exactly as in the
	// memory-only path.
	if got, _ := t1.Seed(0, stableFor(0), "late"); got != "seed-0" {
		t.Fatalf("Seed overwrote an existing entry: %q", got)
	}
}
