// Multinode: run the real-socket outage drill — node agents on localhost
// TCP, a coordinator announcing the outage, Xen-style iterative pre-copy
// consolidation (actual bytes over actual connections, scaled down from the
// logical state), power-down of the sources, Sleep-L on the survivors, and
// migrate-back after restore.
package main

import (
	"fmt"
	"os"

	backuppower "backuppower"
	"backuppower/internal/multinode"
	"backuppower/internal/units"
)

func main() {
	w := backuppower.Specjbb()
	const (
		nodes = 4
		scale = 1 << 20 // 1 MiB of logical state per wire byte
	)
	co, err := multinode.NewCoordinator(nodes, w, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer co.Close()

	fmt.Printf("%d node agents up, each holding %v of %s state:\n", nodes, w.VMImage, w.Name)
	for _, n := range co.Nodes() {
		fmt.Printf("  %s  ctl=%s data=%s\n", n.Name(), n.ControlAddr(), n.DataAddr())
	}

	// 54 MiB/s is the calibrated effective Xen migration rate over 1 GbE.
	rep, err := co.RunOutageDrill(54 * units.MiBps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drill failed:", err)
		os.Exit(1)
	}

	fmt.Println("\nutility outage announced — consolidating:")
	for _, m := range rep.Migrations {
		fmt.Printf("  %s -> %s: %d pre-copy rounds, %v logical, %d wire bytes, converged=%v\n",
			m.Source, m.Dest, m.Rounds, m.LogicalBytes, m.WireBytes, m.Converged)
	}
	fmt.Printf("survivors hold %v; sources off; survivors asleep (S3)\n", rep.SurvivorsHeld)
	fmt.Println("\nutility restored — waking and migrating back:")
	for _, m := range rep.MigrateBack {
		fmt.Printf("  %s -> %s: %d wire bytes\n", m.Source, m.Dest, m.WireBytes)
	}
	fmt.Printf("\ndrill complete in %v (wall time; logical migration would take ~10 min per pair)\n",
		rep.Elapsed.Round(1e6))
	co.Shutdown()
}
