package cluster_test

import (
	"testing"
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/core"
	"backuppower/internal/cost"
	"backuppower/internal/technique"
	"backuppower/internal/workload"
)

// batchAxis is a deliberately hostile outage axis: unsorted, with
// duplicates, spanning sub-minute to multi-hour windows so cut points land
// before, inside, and after every plan phase and DG transfer step.
func batchAxis() []time.Duration {
	return []time.Duration{
		time.Hour, 30 * time.Second, 5 * time.Minute, 30 * time.Second,
		2 * time.Hour, 45 * time.Minute, 10 * time.Minute, 90 * time.Second,
		8 * time.Hour, 3 * time.Hour, 20 * time.Minute, time.Minute,
		6 * time.Hour, 15 * time.Minute, 4 * time.Hour, 5 * time.Minute,
	}
}

// TestBatchMatchesScalar is the batch kernel's ground truth: across the
// full variant set (invariant planners and the outage-scaling hybrids),
// every Table 3 configuration, every workload, and a 16-point
// unsorted-with-duplicates axis, SimulateOutageBatch must equal per-point
// SimulateAggregate bit for bit — exact struct equality, no tolerance.
func TestBatchMatchesScalar(t *testing.T) {
	env := technique.DefaultEnv(16)
	peak := env.PeakPower()
	outages := batchAxis()
	checked := 0
	for _, v := range core.New(16).TechVariants() {
		for _, w := range workload.All() {
			for _, b := range cost.Table3(peak) {
				s := cluster.Scenario{Env: env, Workload: w, Backup: b, Technique: v.Tech}
				got, err := cluster.SimulateOutageBatch(s, outages)
				if err != nil {
					t.Fatalf("%s/%s/%s: batch: %v", v.Tech.Name(), w.Name, b.Name, err)
				}
				if len(got) != len(outages) {
					t.Fatalf("%s/%s/%s: batch returned %d results for %d outages", v.Tech.Name(), w.Name, b.Name, len(got), len(outages))
				}
				for i, d := range outages {
					s.Outage = d
					want, err := cluster.SimulateAggregate(s)
					if err != nil {
						t.Fatalf("%s/%s/%s/%v: scalar: %v", v.Tech.Name(), w.Name, b.Name, d, err)
					}
					if got[i] != want {
						t.Errorf("%s/%s/%s/%v: batch diverges from scalar\n got %+v\nwant %+v",
							v.Tech.Name(), w.Name, b.Name, d, got[i], want)
					}
					checked++
				}
			}
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d points checked — variant/config/workload enumeration shrank", checked)
	}
}

// TestBatchEdgeCases covers the shapes the sweep loop treats specially:
// empty and single-point axes, and an all-duplicates axis.
func TestBatchEdgeCases(t *testing.T) {
	env := technique.DefaultEnv(16)
	peak := env.PeakPower()
	s := cluster.Scenario{Env: env, Workload: workload.Specjbb(), Backup: cost.LargeEUPS(peak), Technique: technique.Sleep{}}

	if res, err := cluster.SimulateOutageBatch(s, nil); err != nil || res != nil {
		t.Fatalf("empty axis: got (%v, %v), want (nil, nil)", res, err)
	}
	if _, err := cluster.SimulateOutageBatch(s, []time.Duration{time.Hour, 0}); err == nil {
		t.Fatal("non-positive outage accepted")
	}

	s.Outage = 30 * time.Minute
	want, err := cluster.SimulateAggregate(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.SimulateOutageBatch(s, []time.Duration{30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("single-point axis diverges: got %+v, want %+v", got, want)
	}
	got, err = cluster.SimulateOutageBatch(s, []time.Duration{30 * time.Minute, 30 * time.Minute, 30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r != want {
			t.Fatalf("duplicate axis point %d diverges: got %+v, want %+v", i, r, want)
		}
	}
}
