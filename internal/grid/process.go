package grid

import (
	"time"

	"backuppower/internal/core"
	"backuppower/internal/outage"
	"backuppower/internal/units"
)

// The outage_process axis wire types and their resolver. Like the other
// DTOs in this package, these are the single source of truth for the
// HTTP layer and cmd/gridrun: field names, validation rules, and error
// codes cannot drift between surfaces.

// DistDTO selects one sampling distribution for a process axis element:
// a kind ("fixed", "exponential", "weibull", "empirical") plus its
// parameters. Mean is a duration string; shape applies to weibull only;
// empirical takes no parameters (the paper's Figure 1 data fixes them).
type DistDTO struct {
	Kind  string  `json:"kind"`
	Mean  string  `json:"mean,omitempty"`
	Shape float64 `json:"shape,omitempty"`
}

// ProcessDTO selects a stochastic outage process: the splitmix64 seed,
// the Monte-Carlo draw count, the inter-arrival and duration
// distributions, and the correlated multi-failure coefficient.
type ProcessDTO struct {
	Seed        int64   `json:"seed"`
	Draws       int     `json:"draws"`
	Arrival     DistDTO `json:"arrival"`
	Duration    DistDTO `json:"duration"`
	Correlation float64 `json:"correlation,omitempty"`
}

// ResolveProcess validates a process axis element and resolves it to the
// model type. Every rejection is a typed *FieldError rooted at
// "process.<field>" (refield re-roots it at the axis position).
func ResolveProcess(d ProcessDTO) (*outage.Process, error) {
	if d.Draws == 0 {
		return nil, fieldErrf("missing_field", "process.draws",
			"draws is required (1..%d Monte-Carlo yearly traces)", outage.MaxDraws)
	}
	if d.Draws < 1 || d.Draws > outage.MaxDraws {
		return nil, fieldErrf("out_of_range", "process.draws",
			"draws %d out of [1, %d]", d.Draws, outage.MaxDraws)
	}
	if !(d.Correlation >= 0 && d.Correlation <= outage.MaxCorrelation) { // NaN fails
		return nil, fieldErrf("out_of_range", "process.correlation",
			"correlation %v out of [0, %v]", d.Correlation, outage.MaxCorrelation)
	}
	arrival, err := resolveDist(d.Arrival, "process.arrival", true)
	if err != nil {
		return nil, err
	}
	duration, err := resolveDist(d.Duration, "process.duration", false)
	if err != nil {
		return nil, err
	}
	p := &outage.Process{
		Seed:        d.Seed,
		Draws:       d.Draws,
		Arrival:     arrival,
		Duration:    duration,
		Correlation: d.Correlation,
	}
	// Belt and suspenders: the model's own validation must agree, so a
	// bound added there can never slip past the wire layer unchecked.
	if err := p.Validate(); err != nil {
		return nil, fieldErrf("invalid_field", "process", "%v", err)
	}
	return p, nil
}

// resolveDist validates one distribution selector. The arrival and
// duration roles carry different mean bounds (mirroring outage.Dist).
func resolveDist(d DistDTO, field string, arrival bool) (outage.Dist, error) {
	var out outage.Dist
	switch d.Kind {
	case "":
		return out, fieldErrf("missing_field", field+".kind",
			"distribution kind is required (%s, %s, %s, %s)",
			outage.KindFixed, outage.KindExponential, outage.KindWeibull, outage.KindEmpirical)
	case outage.KindEmpirical:
		if d.Mean != "" {
			return out, fieldErrf("invalid_field", field+".mean",
				"mean does not apply to the %s distribution (Figure 1 fixes it)", d.Kind)
		}
		if d.Shape != 0 {
			return out, fieldErrf("invalid_field", field+".shape",
				"shape does not apply to the %s distribution", d.Kind)
		}
		return outage.Dist{Kind: d.Kind}, nil
	case outage.KindWeibull:
		if d.Shape == 0 {
			return out, fieldErrf("missing_field", field+".shape",
				"the %s distribution needs a shape in [%v, %v]", d.Kind, outage.MinShape, outage.MaxShape)
		}
		if !(d.Shape >= outage.MinShape && d.Shape <= outage.MaxShape) { // NaN fails
			return out, fieldErrf("out_of_range", field+".shape",
				"shape %v out of [%v, %v]", d.Shape, outage.MinShape, outage.MaxShape)
		}
	case outage.KindFixed, outage.KindExponential:
		if d.Shape != 0 {
			return out, fieldErrf("invalid_field", field+".shape",
				"shape does not apply to the %s distribution", d.Kind)
		}
	default:
		return out, fieldErrf("invalid_field", field+".kind",
			"unknown distribution kind %q (known: %s, %s, %s, %s)",
			d.Kind, outage.KindFixed, outage.KindExponential, outage.KindWeibull, outage.KindEmpirical)
	}
	if d.Mean == "" {
		return out, fieldErrf("missing_field", field+".mean",
			"the %s distribution needs a mean duration", d.Kind)
	}
	mean, err := units.ParseDuration(d.Mean)
	if err != nil {
		return out, fieldErrf("invalid_duration", field+".mean", "%v", err)
	}
	lo, hi := outage.MinEventDuration, time.Duration(outage.MaxEventDuration)
	if arrival {
		lo, hi = outage.MinArrivalMean, outage.MaxArrivalMean
	}
	if mean < lo || mean > hi {
		return out, fieldErrf("out_of_range", field+".mean",
			"mean %v out of [%v, %v]", mean, lo, hi)
	}
	return outage.Dist{Kind: d.Kind, Mean: mean, Shape: d.Shape}, nil
}

// ProcessDTOFromProcess is the canonical wire echo of a resolved
// process: durations render in Go's canonical syntax, so the same
// process always serializes to the same bytes whatever spelling the
// request used.
func ProcessDTOFromProcess(p *outage.Process) ProcessDTO {
	return ProcessDTO{
		Seed:        p.Seed,
		Draws:       p.Draws,
		Arrival:     distDTO(p.Arrival),
		Duration:    distDTO(p.Duration),
		Correlation: p.Correlation,
	}
}

func distDTO(d outage.Dist) DistDTO {
	dto := DistDTO{Kind: d.Kind, Shape: d.Shape}
	if d.Mean != 0 {
		dto.Mean = d.Mean.String()
	}
	return dto
}

// ProcessResultDTO mirrors core.ProcessResult on the wire: the
// process-level payload of an evaluate row with an outage_processes
// axis. Durations render in Go's canonical syntax, like ResultDTO.
type ProcessResultDTO struct {
	Technique         string  `json:"technique"`
	Config            string  `json:"config"`
	Workload          string  `json:"workload"`
	Draws             int     `json:"draws"`
	Events            int     `json:"events"`
	Availability      float64 `json:"availability"`
	ExpectedDowntime  string  `json:"expected_downtime"`
	DowntimeP50       string  `json:"downtime_p50"`
	DowntimeP95       string  `json:"downtime_p95"`
	DowntimeP99       string  `json:"downtime_p99"`
	DowntimeMax       string  `json:"downtime_max"`
	SurvivalRate      float64 `json:"survival_rate"`
	Perf              float64 `json:"perf"`
	EnergyShortfallWh float64 `json:"energy_shortfall_wh"`
	NormCost          float64 `json:"norm_cost"`
}

// NewProcessResultDTO converts a process evaluation to its wire shape.
func NewProcessResultDTO(r core.ProcessResult) ProcessResultDTO {
	return ProcessResultDTO{
		Technique:         r.Technique,
		Config:            r.Config,
		Workload:          r.Workload,
		Draws:             r.Draws,
		Events:            r.Events,
		Availability:      r.Availability,
		ExpectedDowntime:  r.ExpectedDowntime.String(),
		DowntimeP50:       r.DowntimeP50.String(),
		DowntimeP95:       r.DowntimeP95.String(),
		DowntimeP99:       r.DowntimeP99.String(),
		DowntimeMax:       r.DowntimeMax.String(),
		SurvivalRate:      r.SurvivalRate,
		Perf:              r.Perf,
		EnergyShortfallWh: float64(r.EnergyShortfallWh),
		NormCost:          r.Cost,
	}
}
