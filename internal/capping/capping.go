// Package capping implements server power capping: selecting the active
// power state (DVFS P-state plus clock-throttling T-state) that maximizes
// performance under a power budget, and a feedback governor that tracks a
// budget against noisy measurements (the RAPL-style mechanism the paper's
// introduction assumes: "power capping mechanisms are then employed to
// ensure safety when this limit is reached").
//
// The underprovisioning connection: a half-power UPS is exactly a power
// budget, and the best response to it is whatever (P,T) pair this package
// picks — which is how the framework decides what service level a capped
// configuration can offer.
package capping

import (
	"fmt"
	"sort"

	"backuppower/internal/server"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// Setting is one operating point of the capping space.
type Setting struct {
	PState int
	TState int
	Power  units.Watts // per-server draw at the workload's utilization
	Speed  float64     // effective clock speed (freq × duty)
}

// String formats the setting.
func (s Setting) String() string {
	if s.TState > 0 {
		return fmt.Sprintf("P%d/T%d", s.PState, s.TState)
	}
	return fmt.Sprintf("P%d", s.PState)
}

// Space enumerates every (P,T) pair for a server and utilization, sorted by
// descending speed (and descending power within equal speed).
func Space(cfg server.Config, util float64) []Setting {
	var out []Setting
	for pi, p := range cfg.PStates {
		for ti := 0; ti < cfg.TStates; ti++ {
			duty := cfg.TStateDuty(ti)
			out = append(out, Setting{
				PState: pi,
				TState: ti,
				Power:  cfg.ActivePower(util, p, duty),
				Speed:  p.FreqRatio * duty,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Speed != out[j].Speed {
			return out[i].Speed > out[j].Speed
		}
		// Cheapest first within a speed tie (P/T combinations can land on
		// identical effective speeds with different power).
		return out[i].Power < out[j].Power
	})
	return out
}

// Frontier returns the Pareto-optimal settings (no other setting is at
// least as fast for less power), sorted by strictly descending speed and
// power.
func Frontier(cfg server.Config, util float64) []Setting {
	space := Space(cfg, util)
	var out []Setting
	best := units.Watts(1 << 62)
	lastSpeed := -1.0
	for _, s := range space {
		if s.Speed == lastSpeed {
			continue // the cheaper same-speed entry already won
		}
		lastSpeed = s.Speed
		if s.Power < best {
			out = append(out, s)
			best = s.Power
		}
	}
	return out
}

// Best returns the highest-speed setting whose per-server power fits the
// budget. ok is false when even the deepest setting exceeds it (the budget
// is below the throttling floor — idle power plus residual dynamic power —
// and only save-state techniques can help).
func Best(cfg server.Config, util float64, budget units.Watts) (Setting, bool) {
	var best Setting
	found := false
	for _, s := range Frontier(cfg, util) {
		if s.Power <= budget {
			// Frontier is sorted by descending speed: first fit wins.
			return s, true
		}
		best = s
	}
	_ = best
	return Setting{}, found
}

// PerfUnderBudget returns the workload throughput achievable per server
// under the budget, and the setting that achieves it.
func PerfUnderBudget(cfg server.Config, w workload.Spec, budget units.Watts) (float64, Setting, bool) {
	s, ok := Best(cfg, w.Utilization, budget)
	if !ok {
		return 0, Setting{}, false
	}
	return w.PerfAtSpeed(s.Speed), s, true
}

// Floor returns the lowest per-server active power any setting reaches —
// the boundary between "throttle harder" and "must stop executing".
func Floor(cfg server.Config, util float64) units.Watts {
	f := Frontier(cfg, util)
	return f[len(f)-1].Power
}

// Governor is a feedback power-cap controller: it walks the Pareto frontier
// one step at a time based on measured power, mimicking firmware capping
// loops. It never oscillates more than one step per observation and honors
// a guard band below the budget.
type Governor struct {
	frontier []Setting
	budget   units.Watts
	guard    float64 // fraction of budget to leave as headroom
	idx      int     // current frontier index (0 = fastest)
}

// NewGovernor builds a governor for the server/utilization with a budget
// and a guard band (e.g. 0.03 keeps 3% headroom).
func NewGovernor(cfg server.Config, util float64, budget units.Watts, guard float64) (*Governor, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("capping: non-positive budget %v", budget)
	}
	if guard < 0 || guard >= 1 {
		return nil, fmt.Errorf("capping: guard %v out of [0,1)", guard)
	}
	f := Frontier(cfg, util)
	if f[len(f)-1].Power > budget {
		return nil, fmt.Errorf("capping: budget %v below throttling floor %v", budget, f[len(f)-1].Power)
	}
	g := &Governor{frontier: f, budget: budget, guard: guard}
	// Start at the deepest safe setting; observations will relax upward.
	g.idx = len(f) - 1
	return g, nil
}

// Setting returns the current operating point.
func (g *Governor) Setting() Setting { return g.frontier[g.idx] }

// Target is the effective cap after the guard band.
func (g *Governor) Target() units.Watts {
	return units.Watts(float64(g.budget) * (1 - g.guard))
}

// Observe feeds a measured per-server power and returns the (possibly
// updated) setting: step down when over target, step up when the next
// faster setting would still fit.
func (g *Governor) Observe(measured units.Watts) Setting {
	target := g.Target()
	switch {
	case measured > target && g.idx < len(g.frontier)-1:
		g.idx++
	case g.idx > 0 && g.frontier[g.idx-1].Power <= target:
		// Relax one step only if the model says the faster point fits.
		g.idx--
	}
	return g.frontier[g.idx]
}
