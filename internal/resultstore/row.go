package resultstore

import (
	"encoding/json"
	"fmt"

	"backuppower/internal/cluster"
	"backuppower/internal/cost"
)

// rowSchemaV is the StoredRow payload schema version; DecodeRow rejects
// anything else, so a future schema change degrades old rows to cache
// misses (graceful recompute) instead of misreads.
const rowSchemaV = 1

// StoredRow is the persistent form of one grid sweep row: the row's
// coordinates (everything but the plan-local index, which is re-stamped
// at emission — the same point in two different grids shares one stored
// row) plus the op-specific payload, carried as full model structs so
// the wire DTO can be reconstructed byte-identically, including derived
// fields like the backup's annual cost.
type StoredRow struct {
	V         int             `json:"v"`
	Op        string          `json:"op"`
	Servers   int             `json:"servers"`
	Workload  string          `json:"workload"`
	Config    string          `json:"config,omitempty"`
	HasConfig bool            `json:"has_config,omitempty"`
	Family    string          `json:"family,omitempty"`
	Technique string          `json:"technique,omitempty"`
	Best      string          `json:"best,omitempty"`
	OutageNS  int64           `json:"outage_ns"`
	Feasible  bool            `json:"feasible,omitempty"`
	Result    *cluster.Result `json:"result,omitempty"`
	Sizing    *StoredSizing   `json:"sizing,omitempty"`

	// Process is a stochastic-process row's payload (NSProcessRow keys):
	// the resolved process spec plus the process-level fold. OutageNS is
	// zero for process rows; the spec fields below are the coordinate.
	Process *StoredProcess `json:"process,omitempty"`
}

// StoredProcess is a process row's payload: the outage.Process spec that
// was evaluated (for coordinate cross-checks) and core.ProcessResult's
// content, without importing either package (the store sits below both).
// Durations are nanosecond integers.
type StoredProcess struct {
	Seed           int64   `json:"seed"`
	Draws          int     `json:"draws"`
	ArrivalKind    string  `json:"arrival_kind"`
	ArrivalMeanNS  int64   `json:"arrival_mean_ns,omitempty"`
	ArrivalShape   float64 `json:"arrival_shape,omitempty"`
	DurationKind   string  `json:"duration_kind"`
	DurationMeanNS int64   `json:"duration_mean_ns,omitempty"`
	DurationShape  float64 `json:"duration_shape,omitempty"`
	Correlation    float64 `json:"correlation,omitempty"`

	Events             int     `json:"events"`
	Availability       float64 `json:"availability"`
	ExpectedDowntimeNS int64   `json:"expected_downtime_ns"`
	DowntimeP50NS      int64   `json:"downtime_p50_ns"`
	DowntimeP95NS      int64   `json:"downtime_p95_ns"`
	DowntimeP99NS      int64   `json:"downtime_p99_ns"`
	DowntimeMaxNS      int64   `json:"downtime_max_ns"`
	SurvivalRate       float64 `json:"survival_rate"`
	Perf               float64 `json:"perf"`
	EnergyShortfallWh  float64 `json:"energy_shortfall_wh"`
	NormCost           float64 `json:"norm_cost"`
}

// StoredSizing is a size row's payload: core.OperatingPoint's content
// without importing core (which imports nothing from here — the store
// sits below the framework).
type StoredSizing struct {
	Technique string         `json:"technique"`
	Backup    cost.Backup    `json:"backup"`
	Result    cluster.Result `json:"result"`
	NormCost  float64        `json:"norm_cost"`
}

// EncodeRow serializes a row payload (stamping the schema version). An
// error (a non-finite float, a result carrying traces) means the row is
// simply not stored.
func EncodeRow(r StoredRow) ([]byte, error) {
	r.V = rowSchemaV
	if r.Result != nil && (r.Result.PerfTrace != nil || r.Result.PowerTrace != nil) {
		return nil, fmt.Errorf("resultstore: refusing to store a traced result")
	}
	return json.Marshal(r)
}

// DecodeRow parses a row payload, rejecting unknown schema versions.
func DecodeRow(payload []byte) (StoredRow, error) {
	var r StoredRow
	if err := json.Unmarshal(payload, &r); err != nil {
		return StoredRow{}, err
	}
	if r.V != rowSchemaV {
		return StoredRow{}, fmt.Errorf("resultstore: row schema v%d (want v%d)", r.V, rowSchemaV)
	}
	return r, nil
}

// effResult is the row's result for query purposes: the evaluation
// result for evaluate/best rows, the sized operating point's result for
// feasible size rows, nil otherwise.
func (r *StoredRow) effResult() *cluster.Result {
	if r.Result != nil {
		return r.Result
	}
	if r.Sizing != nil {
		return &r.Sizing.Result
	}
	return nil
}

// normCost is the row's cost-axis value: the sizing search's normalized
// cost for size rows, the configuration's normalized cap-ex otherwise.
func (r *StoredRow) normCost() (float64, bool) {
	if r.Sizing != nil {
		return r.Sizing.NormCost, true
	}
	if r.Result != nil {
		return r.Result.Cost, true
	}
	if r.Process != nil {
		return r.Process.NormCost, true
	}
	return 0, false
}
