package technique

import (
	"fmt"
	"time"

	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// The techniques in this file implement Section 7's "Promising
// Enhancements": NVDIMM whole-system persistence, RDMA-over-sleep
// (barely-alive memory servers), and geo-replicated request redirection.
// They are not part of the paper's measured evaluation (Figures 6-9) but
// the paper argues each changes the cost-performability trade-off; the
// extension experiments quantify how, within the same framework.

// NVDIMMConfig parameterizes the NVDIMM models.
type NVDIMMConfig struct {
	// FlashRate is the DRAM->flash dump rate of the supercap-backed
	// module after power is cut, and RestoreRate the flash->DRAM reload
	// speed at boot.
	FlashRate   units.BytesPerSecond
	RestoreRate units.BytesPerSecond
}

// DefaultNVDIMM reflects NVDIMM-N class devices: the save happens inside
// the DIMM on supercap energy, the restore streams flash at boot.
func DefaultNVDIMM() NVDIMMConfig {
	return NVDIMMConfig{
		FlashRate:   800 * units.MiBps, // parallel across DIMMs
		RestoreRate: 1200 * units.MiBps,
	}
}

// NVDIMM persists all volatile state with no demand on the shared backup
// infrastructure at all: the energy store is localized to the DIMM
// (supercap), so the servers can simply lose power. No service during the
// outage; resume reloads state from flash after restore.
type NVDIMM struct {
	Config NVDIMMConfig
}

func (n NVDIMM) config() NVDIMMConfig {
	if n.Config.FlashRate <= 0 {
		return DefaultNVDIMM()
	}
	return n.Config
}

// Name implements Technique.
func (NVDIMM) Name() string { return "NVDIMM" }

// Plan implements Technique. The whole plan is state-safe from the first
// instant — the defining property the paper highlights ("persisting
// application state upon a power outage without the need for UPS").
func (n NVDIMM) Plan(env Env, w workload.Spec, outage time.Duration) Plan {
	cfg := n.config()
	restore := cfg.RestoreRate.TimeFor(w.Memory.Footprint) + env.Server.RestartTime
	return Plan{
		Technique: n.Name(),
		Phases: []Phase{{
			Name:      "nv-persisted",
			OpenEnded: true,
			Power:     0,
			StateSafe: true,
		}},
		RestoreDowntime: restore,
	}
}

// NVDIMMThrottle combines NVDIMM persistence with sustained throttled
// execution: because the state is crash-safe at every instant, the
// datacenter can run the battery to exhaustion without risking state —
// the "procrastinated save" the paper describes. Service continues until
// the UPS dies, then the servers drop with no loss.
type NVDIMMThrottle struct {
	PState int
	Config NVDIMMConfig
}

// Name implements Technique.
func (t NVDIMMThrottle) Name() string {
	return fmt.Sprintf("NVDIMM+Throttle(P%d)", t.PState)
}

// Plan implements Technique.
func (t NVDIMMThrottle) Plan(env Env, w workload.Spec, outage time.Duration) Plan {
	cfg := NVDIMM{Config: t.Config}.config()
	p := clampPState(env, t.PState)
	power := env.Server.ActivePower(w.Utilization, p, 1) * units.Watts(env.Servers)
	perf := w.PerfAtSpeed(throttledSpeed(p, 1))
	restore := cfg.RestoreRate.TimeFor(w.Memory.Footprint) + env.Server.RestartTime
	return Plan{
		Technique: t.Name(),
		Phases: []Phase{{
			Name:      "nv-throttled",
			OpenEnded: true,
			Power:     power,
			Perf:      perf,
			Available: true,
			StateSafe: true, // NVDIMM makes even abrupt loss harmless
		}},
		RestoreDowntime:           restore,
		RestoreAfterPowerLossOnly: true,
	}
}

// BarelyAlive is the RDMA-over-sleep idea: the fleet sleeps, but memory
// controllers and NICs stay powered so remote nodes serve reads directly
// from the sleeping servers' DRAM. A sliver of service survives at a few
// tens of watts per server.
type BarelyAlive struct {
	// ServedPerf is the normalized throughput the remote-access path
	// sustains (default 0.10).
	ServedPerf float64
	// ExtraPower is the per-server draw beyond S3 for the live memory
	// controller + NIC (default 20 W).
	ExtraPower units.Watts
}

// Name implements Technique.
func (BarelyAlive) Name() string { return "BarelyAlive" }

func (b BarelyAlive) servedPerf() float64 {
	if b.ServedPerf <= 0 || b.ServedPerf >= 1 {
		return 0.10
	}
	return b.ServedPerf
}

func (b BarelyAlive) extraPower() units.Watts {
	if b.ExtraPower <= 0 {
		return 20
	}
	return b.ExtraPower
}

// Plan implements Technique.
func (b BarelyAlive) Plan(env Env, w workload.Spec, outage time.Duration) Plan {
	trans, transPower := sleepTransition(env, w, true)
	perServer := env.Server.SleepPower() + b.extraPower()
	return Plan{
		Technique: b.Name(),
		Phases: []Phase{
			{
				Name:  "suspending",
				Dur:   trans,
				Power: transPower,
			},
			{
				Name:      "barely-alive",
				OpenEnded: true,
				Power:     perServer * units.Watts(env.Servers),
				Perf:      b.servedPerf(),
				Available: true,
				// DRAM still dies with the battery.
			},
		},
		RestoreDowntime: env.Server.ResumeFromSleep,
	}
}

// GeoFailover redirects requests to a power-uncorrelated geo-replicated
// site (Section 1 and 7): the local fleet serves during the redirection
// window, saves state, and goes dark while the remote site carries the
// load at a degraded level (WAN latency, remote capacity headroom). It is
// the paper's recommended answer for very long (> 4 h) outages.
type GeoFailover struct {
	// RedirectDelay is the DNS/anycast/load-balancer drain time during
	// which the local site keeps serving (default 2 min).
	RedirectDelay time.Duration
	// RemotePerf is the normalized service level from the remote site
	// (default 0.7).
	RemotePerf float64
	// Save selects how local state is preserved once traffic has drained.
	Save SaveKind
}

// Name implements Technique.
func (GeoFailover) Name() string { return "GeoFailover" }

func (g GeoFailover) redirectDelay() time.Duration {
	if g.RedirectDelay <= 0 {
		return 2 * time.Minute
	}
	return g.RedirectDelay
}

func (g GeoFailover) remotePerf() float64 {
	if g.RemotePerf <= 0 || g.RemotePerf > 1 {
		return 0.7
	}
	return g.RemotePerf
}

// Plan implements Technique.
func (g GeoFailover) Plan(env Env, w workload.Spec, outage time.Duration) Plan {
	deep := env.Server.DeepestPState()
	drainPower := env.Server.ActivePower(w.Utilization, deep, 1) * units.Watts(env.Servers)
	drainPerf := w.PerfAtSpeed(deep.FreqRatio)

	phases := []Phase{{
		Name:      "draining",
		Dur:       g.redirectDelay(),
		Power:     drainPower,
		Perf:      drainPerf,
		Available: true,
	}}
	var restore time.Duration
	if g.Save == SaveHibernate {
		h := Hibernate{LowPower: true}
		phases = append(phases,
			Phase{
				Name:  "saving",
				Dur:   h.SaveTime(env, w),
				Power: env.Server.ActivePower(1, deep, 1) * units.Watts(env.Servers),
				// Remote site already carries the traffic.
				Perf:      g.remotePerf(),
				Available: true,
			},
			Phase{
				Name:      "remote-serving",
				OpenEnded: true,
				Power:     0,
				Perf:      g.remotePerf(),
				Available: true,
				StateSafe: true,
			})
		restore = h.ResumeTime(env, w)
	} else {
		trans, transPower := sleepTransition(env, w, true)
		phases = append(phases,
			Phase{
				Name:      "suspending",
				Dur:       trans,
				Power:     transPower,
				Perf:      g.remotePerf(),
				Available: true,
			},
			Phase{
				Name:      "remote-serving",
				OpenEnded: true,
				Power:     env.Server.SleepPower() * units.Watts(env.Servers),
				Perf:      g.remotePerf(),
				Available: true,
				// Local DRAM state still dies with the battery; but the
				// remote site keeps serving, so only local warm state is
				// at stake.
			})
		restore = env.Server.ResumeFromSleep
	}
	return Plan{
		Technique:       g.Name(),
		Phases:          phases,
		RestoreDowntime: restore,
		// Redirecting traffic back is degraded, not down.
		RestoreDegradedDur:  g.redirectDelay(),
		RestoreDegradedPerf: g.remotePerf(),
	}
}
