package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"backuppower/internal/grid"
	"backuppower/internal/resultstore"
)

// newStoreServer builds a server with a persistent row store attached to
// both the serving surface (Config.Store mounts GET /v1/results and the
// store metrics section) and the sweep write path (grid.SetRowStore),
// mirroring how the daemons wire -store-dir.
func newStoreServer(t *testing.T) *httptest.Server {
	t.Helper()
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	grid.SetRowStore(store)
	t.Cleanup(func() {
		grid.SetRowStore(nil)
		store.Close()
	})
	_, ts := newTestServer(t, func(cfg *Config) *Server {
		cfg.Store = store
		s, err := New(*cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	return ts
}

func getResults(t *testing.T, base, query, extra string) (*http.Response, []byte) {
	t.Helper()
	u := base + "/v1/results?query=" + url.QueryEscape(query) + extra
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func decodeResultRows(t *testing.T, body []byte) []grid.RowDTO {
	t.Helper()
	var rows []grid.RowDTO
	for i, line := range strings.Split(strings.TrimSuffix(string(body), "\n"), "\n") {
		if line == "" {
			continue
		}
		var row grid.RowDTO
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("results line %d is not JSON: %v: %s", i, err, line)
		}
		rows = append(rows, row)
	}
	return rows
}

// TestResultsQueryEndpoint covers the read surface end to end: a sweep
// populates the store over HTTP, then GET /v1/results serves the stored
// rows back — filtered, limited, grouped, and frontier-reduced — with
// deterministic bytes and typed 400s for bad queries.
func TestResultsQueryEndpoint(t *testing.T) {
	ts := newStoreServer(t)

	resp, sweepBytes := post(t, ts.URL+"/v1/sweep", sweepBody(""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("populate sweep status %d: %s", resp.StatusCode, sweepBytes)
	}

	resp, all := getResults(t, ts.URL, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty query status %d: %s", resp.StatusCode, all)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	rows := decodeResultRows(t, all)
	if len(rows) != 24 {
		t.Fatalf("empty query returned %d rows, want the 24 swept", len(rows))
	}
	for i, r := range rows {
		if r.Index != 0 || r.Op != "evaluate" || r.Result == nil {
			t.Fatalf("stored row %d malformed: %+v", i, r)
		}
	}

	// Identical query, identical bytes: the canonical row order makes the
	// read surface deterministic.
	if _, again := getResults(t, ts.URL, "", ""); !bytes.Equal(again, all) {
		t.Fatal("repeated empty query returned different bytes")
	}

	// Coordinate filter: every row is addressable by its full coordinate
	// tuple, and the line served is the row's canonical encoding.
	probe := rows[7]
	q := fmt.Sprintf("op=%q && servers=%d && workload=%q && config=%q && technique=%q && outage=%s",
		probe.Op, probe.Servers, probe.Workload, probe.Config, probe.Technique, probe.Outage)
	resp, one := getResults(t, ts.URL, q, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinate query status %d: %s", resp.StatusCode, one)
	}
	if got := decodeResultRows(t, one); len(got) != 1 || got[0].Technique != probe.Technique || got[0].Outage != probe.Outage {
		t.Fatalf("coordinate query returned %+v, want exactly %+v", got, probe)
	}

	// Range filter: only the 30m outage rows exceed 5m — 8 of 24.
	resp, longOnly := getResults(t, ts.URL, "outage>5m", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range query status %d: %s", resp.StatusCode, longOnly)
	}
	if got := decodeResultRows(t, longOnly); len(got) != 8 {
		t.Fatalf("outage>5m matched %d rows, want 8", len(got))
	}

	// limit= truncates the canonical order: the limited body is a strict
	// prefix of the full one.
	resp, limited := getResults(t, ts.URL, "", "&limit=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("limited query status %d: %s", resp.StatusCode, limited)
	}
	if got := decodeResultRows(t, limited); len(got) != 5 {
		t.Fatalf("limit=5 returned %d rows", len(got))
	}
	if !bytes.HasPrefix(all, limited) {
		t.Fatal("limited response is not a prefix of the full response")
	}

	// Group-by switches to a single JSON document.
	resp, grouped := getResults(t, ts.URL, "| group by technique", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("group-by status %d: %s", resp.StatusCode, grouped)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("group-by content type %q", ct)
	}
	var groups GroupsResponse
	if err := json.Unmarshal(grouped, &groups); err != nil {
		t.Fatalf("group-by body: %v: %s", err, grouped)
	}
	if len(groups.Groups) != 2 {
		t.Fatalf("got %d technique groups, want 2: %s", len(groups.Groups), grouped)
	}
	total := 0
	for _, g := range groups.Groups {
		total += g.Count
	}
	if total != 24 {
		t.Fatalf("group counts sum to %d, want 24", total)
	}

	// Frontier keeps an ascending-cost, strictly-rising-perf subset.
	resp, frontier := getResults(t, ts.URL, "| frontier", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frontier status %d: %s", resp.StatusCode, frontier)
	}
	fr := decodeResultRows(t, frontier)
	if len(fr) == 0 || len(fr) > 24 {
		t.Fatalf("frontier kept %d rows", len(fr))
	}
	lastCost, lastPerf := -1.0, -1.0
	for i, r := range fr {
		if r.Result == nil || r.Result.NormCost < lastCost || r.Result.Perf <= lastPerf {
			t.Fatalf("frontier not monotone at %d: %s", i, frontier)
		}
		lastCost, lastPerf = r.Result.NormCost, r.Result.Perf
	}
}

// TestResultsQueryErrors pins the typed 400 contract: query-language
// rejections surface as the API's standard error body, with the
// FieldError's code and field preserved.
func TestResultsQueryErrors(t *testing.T) {
	ts := newStoreServer(t)

	cases := []struct {
		name, query, extra, code, field string
	}{
		{"unknown field", "bogus=1", "", "unknown_field", "bogus"},
		{"bad value", "servers=abc", "", "bad_value", "servers"},
		{"bad op", "op>evaluate", "", "bad_op", "op"},
		{"bad syntax", "op=a &&", "", "bad_syntax", "query"},
		{"bad aggregate", "| group servers", "", "bad_aggregate", "query"},
		{"bad limit", "", "&limit=0", "bad_value", "limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := getResults(t, ts.URL, tc.query, tc.extra)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var eb ErrorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body: %v: %s", err, body)
			}
			if eb.Error.Code != tc.code || eb.Error.Field != tc.field {
				t.Fatalf("got %s/%s, want %s/%s: %s",
					eb.Error.Code, eb.Error.Field, tc.code, tc.field, body)
			}
			if eb.Error.Message == "" {
				t.Fatalf("empty error message: %s", body)
			}
		})
	}
}

// TestResultsNotMountedWithoutStore pins that a store-less server keeps
// its exact pre-store surface: /v1/results does not exist.
func TestResultsNotMountedWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := getResults(t, ts.URL, "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("store-less /v1/results status %d: %s", resp.StatusCode, body)
	}
}

// storeMetricsSnap decodes the /metrics store section (absent on
// store-less servers).
type storeMetricsSnap struct {
	Store *resultstore.Stats `json:"store"`
}

func getStoreMetrics(t *testing.T, base string) storeMetricsSnap {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m storeMetricsSnap
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	return m
}

// TestStoreMetricsDeltas asserts the store counters through /metrics the
// same way the vulture does: as deltas across a cold and a warm sweep,
// never as absolute counts (the store is shared and cumulative). It also
// pins that the store-less metrics document has no store section at all.
func TestStoreMetricsDeltas(t *testing.T) {
	_, bare := newTestServer(t, nil)
	if m := getStoreMetrics(t, bare.URL); m.Store != nil {
		t.Fatalf("store-less /metrics grew a store section: %+v", m.Store)
	}

	ts := newStoreServer(t)
	m0 := getStoreMetrics(t, ts.URL)
	if m0.Store == nil {
		t.Fatal("/metrics missing the store section with a store attached")
	}

	resp, cold := post(t, ts.URL+"/v1/sweep", sweepBody(""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold sweep status %d: %s", resp.StatusCode, cold)
	}
	m1 := getStoreMetrics(t, ts.URL)
	if d := m1.Store.Puts - m0.Store.Puts; d != 24 {
		t.Fatalf("cold sweep put %d rows, want 24", d)
	}
	if d := m1.Store.RecomputesRows - m0.Store.RecomputesRows; d != 24 {
		t.Fatalf("cold sweep recomputed %d rows, want 24", d)
	}

	resp, warm := post(t, ts.URL+"/v1/sweep", sweepBody(""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sweep status %d: %s", resp.StatusCode, warm)
	}
	if !bytes.Equal(warm, cold) {
		t.Fatal("warm sweep bytes diverged from cold")
	}
	m2 := getStoreMetrics(t, ts.URL)
	if d := m2.Store.RecomputesRows - m1.Store.RecomputesRows; d != 0 {
		t.Fatalf("warm sweep recomputed %d rows", d)
	}
	if d := m2.Store.Puts - m1.Store.Puts; d != 0 {
		t.Fatalf("warm sweep re-put %d rows", d)
	}
	if d := m2.Store.HitsRows - m1.Store.HitsRows; d != 24 {
		t.Fatalf("warm sweep hit %d rows, want 24", d)
	}
}
