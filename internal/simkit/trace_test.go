package simkit

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"backuppower/internal/units"
)

func TestTraceBasics(t *testing.T) {
	tr := NewTrace("power", 100)
	tr.Set(10*time.Minute, 200)
	tr.Set(20*time.Minute, 50)

	if got := tr.At(0); got != 100 {
		t.Errorf("At(0) = %v", got)
	}
	if got := tr.At(15 * time.Minute); got != 200 {
		t.Errorf("At(15m) = %v", got)
	}
	if got := tr.At(25 * time.Minute); got != 50 {
		t.Errorf("At(25m) = %v", got)
	}
	if got := tr.Last(); got != 50 {
		t.Errorf("Last = %v", got)
	}
	if tr.Name() != "power" {
		t.Errorf("Name = %q", tr.Name())
	}
}

func TestTraceIntegrate(t *testing.T) {
	tr := NewTrace("p", 100)
	tr.Set(30*time.Minute, 200)
	// [0,1h]: 100*0.5 + 200*0.5 = 150 Wh
	if got := tr.Integrate(0, time.Hour); !units.AlmostEqual(got, 150, 1e-9) {
		t.Errorf("Integrate = %v, want 150", got)
	}
	// Sub-interval entirely inside first segment.
	if got := tr.Integrate(6*time.Minute, 12*time.Minute); !units.AlmostEqual(got, 10, 1e-9) {
		t.Errorf("Integrate(6m,12m) = %v, want 10", got)
	}
	// Interval past the last sample keeps the last value.
	if got := tr.Integrate(time.Hour, 2*time.Hour); !units.AlmostEqual(got, 200, 1e-9) {
		t.Errorf("Integrate(1h,2h) = %v, want 200", got)
	}
	if got := tr.Integrate(time.Hour, time.Hour); got != 0 {
		t.Errorf("empty interval integrate = %v", got)
	}
}

func TestTraceMeanPeak(t *testing.T) {
	tr := NewTrace("p", 1.0)
	tr.Set(30*time.Minute, 0.5)
	if got := tr.Mean(0, time.Hour); !units.AlmostEqual(got, 0.75, 1e-9) {
		t.Errorf("Mean = %v", got)
	}
	if got := tr.Peak(0, time.Hour); got != 1.0 {
		t.Errorf("Peak = %v", got)
	}
	if got := tr.Peak(40*time.Minute, time.Hour); got != 0.5 {
		t.Errorf("Peak tail = %v", got)
	}
}

func TestTraceTimeBelow(t *testing.T) {
	tr := NewTrace("perf", 1.0)
	tr.Set(10*time.Minute, 0)
	tr.Set(25*time.Minute, 1.0)
	if got := tr.TimeBelow(0, time.Hour, 0.5); got != 15*time.Minute {
		t.Errorf("TimeBelow = %v, want 15m", got)
	}
	if got := tr.TimeBelow(0, 12*time.Minute, 0.5); got != 2*time.Minute {
		t.Errorf("TimeBelow clipped = %v, want 2m", got)
	}
}

func TestTraceSameTimeOverwrite(t *testing.T) {
	tr := NewTrace("p", 1)
	tr.Set(time.Minute, 2)
	tr.Set(time.Minute, 3)
	if got := tr.At(2 * time.Minute); got != 3 {
		t.Errorf("overwrite: At = %v, want 3", got)
	}
	if n := len(tr.Samples()); n != 2 {
		t.Errorf("samples = %d, want 2", n)
	}
}

func TestTraceNoChangeCompaction(t *testing.T) {
	tr := NewTrace("p", 5)
	tr.Set(time.Minute, 5)
	tr.Set(2*time.Minute, 5)
	if n := len(tr.Samples()); n != 1 {
		t.Errorf("redundant sets should compact, got %d samples", n)
	}
}

func TestTraceBackwardsPanics(t *testing.T) {
	tr := NewTrace("p", 1)
	tr.Set(time.Minute, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on backwards set")
		}
	}()
	tr.Set(30*time.Second, 3)
}

func TestTraceEnergyHelpers(t *testing.T) {
	tr := NewTrace("p", 4000) // 4 KW
	if got := tr.EnergyWh(0, 15*time.Minute); !units.AlmostEqual(float64(got), 1000, 1e-9) {
		t.Errorf("EnergyWh = %v", got)
	}
	if got := tr.PeakWatts(0, time.Hour); got != 4000 {
		t.Errorf("PeakWatts = %v", got)
	}
}

// Integral over a split point equals sum of parts (additivity property).
func TestTraceIntegralAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTrace("p", rng.Float64()*100)
		at := time.Duration(0)
		for i := 0; i < 20; i++ {
			at += time.Duration(1+rng.Intn(600)) * time.Second
			tr.Set(at, rng.Float64()*100)
		}
		end := at + time.Hour
		mid := time.Duration(rng.Int63n(int64(end)))
		whole := tr.Integrate(0, end)
		parts := tr.Integrate(0, mid) + tr.Integrate(mid, end)
		return units.AlmostEqual(whole, parts, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Mean is bounded by min and max of the signal.
func TestTraceMeanBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTrace("p", 50)
		lo, hi := 50.0, 50.0
		at := time.Duration(0)
		for i := 0; i < 15; i++ {
			at += time.Duration(1+rng.Intn(300)) * time.Second
			v := rng.Float64() * 200
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			tr.Set(at, v)
		}
		m := tr.Mean(0, at+time.Minute)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
