// Package netsim models the datacenter network paths used during outage
// handling: the 1 Gbps per-server NICs that live migration and proactive
// (Remus-style) state replication run over. It captures effective payload
// bandwidth, per-transfer protocol overhead, and contention when several
// servers migrate through a shared uplink at once.
package netsim

import (
	"fmt"
	"time"

	"backuppower/internal/units"
)

// Link is a network path with an effective payload bandwidth.
type Link struct {
	Name string
	// LineRate is the raw signalling rate.
	LineRate units.BytesPerSecond
	// Efficiency is the payload fraction after TCP/IP and migration
	// protocol framing (~0.90 for the bulk transfers live migration does).
	Efficiency float64
	// SetupLatency is the per-transfer connection/handshake cost.
	SetupLatency time.Duration
}

// DefaultGigabit is the testbed's 1 Gbps Ethernet NIC.
func DefaultGigabit() Link {
	return Link{
		Name:         "1gbe",
		LineRate:     units.GigabitEthernet,
		Efficiency:   0.90,
		SetupLatency: 50 * time.Millisecond,
	}
}

// Validate checks the link.
func (l Link) Validate() error {
	switch {
	case l.LineRate <= 0:
		return fmt.Errorf("netsim: %s non-positive line rate", l.Name)
	case l.Efficiency <= 0 || l.Efficiency > 1:
		return fmt.Errorf("netsim: %s efficiency %v out of (0,1]", l.Name, l.Efficiency)
	case l.SetupLatency < 0:
		return fmt.Errorf("netsim: %s negative setup latency", l.Name)
	}
	return nil
}

// Goodput is the effective payload bandwidth.
func (l Link) Goodput() units.BytesPerSecond {
	return l.LineRate * units.BytesPerSecond(l.Efficiency)
}

// TransferTime returns the wall time to move size bytes over the link when
// `sharers` transfers contend for it (fair sharing). sharers < 1 is treated
// as 1.
func (l Link) TransferTime(size units.Bytes, sharers int) time.Duration {
	if sharers < 1 {
		sharers = 1
	}
	bw := l.Goodput() / units.BytesPerSecond(sharers)
	return l.SetupLatency + bw.TimeFor(size)
}

// SustainedRate returns the per-transfer rate under contention.
func (l Link) SustainedRate(sharers int) units.BytesPerSecond {
	if sharers < 1 {
		sharers = 1
	}
	return l.Goodput() / units.BytesPerSecond(sharers)
}
