package cluster

import (
	"testing"
	"time"

	"backuppower/internal/cost"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

func env() technique.Env { return technique.DefaultEnv(16) }

func scn(b cost.Backup, tech technique.Technique, w workload.Spec, outage time.Duration) Scenario {
	return Scenario{Env: env(), Workload: w, Backup: b, Technique: tech, Outage: outage}
}

func mustSim(t *testing.T, s Scenario) Result {
	t.Helper()
	r, err := Simulate(s)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return r
}

func TestMaxPerfSeamless(t *testing.T) {
	peak := env().PeakPower()
	for _, outage := range []time.Duration{30 * time.Second, 30 * time.Minute, 2 * time.Hour} {
		r := mustSim(t, scn(cost.MaxPerf(peak), technique.Baseline{}, workload.Specjbb(), outage))
		if !r.Survived {
			t.Fatalf("MaxPerf crashed at %v for %v outage", r.CrashedAt, outage)
		}
		if r.Downtime != 0 {
			t.Errorf("MaxPerf downtime = %v for %v", r.Downtime, outage)
		}
		if !units.AlmostEqual(r.Perf, 1, 1e-9) {
			t.Errorf("MaxPerf perf = %v for %v", r.Perf, outage)
		}
		if !units.AlmostEqual(r.Cost, 1, 1e-9) {
			t.Errorf("MaxPerf cost = %v", r.Cost)
		}
	}
}

func TestMinCostCrash(t *testing.T) {
	peak := env().PeakPower()
	r := mustSim(t, scn(cost.MinCost(peak), technique.Baseline{}, workload.Specjbb(), 30*time.Second))
	if r.Survived {
		t.Fatal("MinCost should crash")
	}
	if r.CrashedAt != 0 {
		t.Errorf("crash at %v, want 0", r.CrashedAt)
	}
	// Paper: ~400 s down for a 30 s outage (restart + recreate + catch-up).
	if !units.AlmostEqual(r.Downtime.Seconds(), 400, 0.08) {
		t.Errorf("MinCost specjbb downtime = %v, want ~400s", r.Downtime)
	}
	if r.Perf != 0 {
		t.Errorf("MinCost perf = %v", r.Perf)
	}
	if r.Cost != 0 {
		t.Errorf("MinCost cost = %v", r.Cost)
	}
}

func TestMinCostMemcachedAndWebSearch(t *testing.T) {
	peak := env().PeakPower()
	mc := mustSim(t, scn(cost.MinCost(peak), technique.Baseline{}, workload.Memcached(), 30*time.Second))
	if !units.AlmostEqual(mc.Downtime.Seconds(), 480, 0.08) {
		t.Errorf("memcached MinCost downtime = %v, want ~480s", mc.Downtime)
	}
	ws := mustSim(t, scn(cost.MinCost(peak), technique.Baseline{}, workload.WebSearch(), 30*time.Second))
	if !units.AlmostEqual(ws.Downtime.Seconds(), 610, 0.08) {
		t.Errorf("web-search MinCost downtime = %v, want ~600s", ws.Downtime)
	}
}

func TestNoUPSCrashThenDGRestores(t *testing.T) {
	peak := env().PeakPower()
	// Long outage: DG converts it into a ~2.5 min one.
	r := mustSim(t, scn(cost.NoUPS(peak), technique.Baseline{}, workload.Specjbb(), 2*time.Hour))
	if r.Survived {
		t.Fatal("NoUPS should crash at outage start")
	}
	wantDown := 150 + 370.0 // DG ramp + specjbb recovery
	if !units.AlmostEqual(r.Downtime.Seconds(), wantDown, 0.1) {
		t.Errorf("NoUPS downtime = %v, want ~%vs", r.Downtime, wantDown)
	}
	// Performance returns once the DG carries the load and recovery ends:
	// for a 2 h outage most of the window is at full service.
	if r.Perf < 0.9 {
		t.Errorf("NoUPS 2h perf = %v, want > 0.9", r.Perf)
	}
	// Short outage: same downtime as MinCost (utility back before DG).
	short := mustSim(t, scn(cost.NoUPS(peak), technique.Baseline{}, workload.Specjbb(), 30*time.Second))
	minc := mustSim(t, scn(cost.MinCost(peak), technique.Baseline{}, workload.Specjbb(), 30*time.Second))
	if short.Downtime != minc.Downtime {
		t.Errorf("NoUPS short-outage downtime %v should equal MinCost %v", short.Downtime, minc.Downtime)
	}
}

func TestNoDGRidesShortOutagesOnly(t *testing.T) {
	peak := env().PeakPower()
	w := workload.Specjbb()
	// 2-minute UPS at full power rides a 1-minute outage seamlessly.
	short := mustSim(t, scn(cost.NoDG(peak), technique.Baseline{}, w, time.Minute))
	if !short.Survived || short.Downtime != 0 || short.Perf < 0.999 {
		t.Errorf("NoDG 1min: %+v", short)
	}
	// A 5-minute outage kills it partway (paper: NoDG degrades at 5 min).
	long := mustSim(t, scn(cost.NoDG(peak), technique.Baseline{}, w, 5*time.Minute))
	if long.Survived {
		t.Fatal("NoDG baseline should not survive 5 min")
	}
	if long.CrashedAt < time.Minute || long.CrashedAt > 3*time.Minute {
		t.Errorf("NoDG crash at %v, want ~2min", long.CrashedAt)
	}
}

func TestLargeEUPSMatchesMaxPerfUpTo30Min(t *testing.T) {
	// Paper §6.1: LargeEUPS (30 min battery, no DG) achieves MaxPerf
	// performance up to 30 min outages at 55% of the cost.
	peak := env().PeakPower()
	w := workload.Specjbb()
	r := mustSim(t, scn(cost.LargeEUPS(peak), technique.Baseline{}, w, 30*time.Minute))
	if !r.Survived || r.Downtime != 0 {
		t.Fatalf("LargeEUPS 30min: survived=%v down=%v", r.Survived, r.Downtime)
	}
	if !units.AlmostEqual(r.Perf, 1, 1e-9) {
		t.Errorf("LargeEUPS perf = %v", r.Perf)
	}
	if !units.AlmostEqual(r.Cost, 0.55, 0.02) {
		t.Errorf("LargeEUPS cost = %v", r.Cost)
	}
}

func TestLargeEUPSThrottledSurvivesAnHour(t *testing.T) {
	// Paper: with ~40% perf degradation, UPS-only sustains 1 h outages.
	peak := env().PeakPower()
	w := workload.Specjbb()
	deepest := len(env().Server.PStates) - 1
	r := mustSim(t, scn(cost.LargeEUPS(peak), technique.Throttling{PState: deepest}, w, time.Hour))
	if !r.Survived {
		t.Fatalf("throttled LargeEUPS crashed at %v", r.CrashedAt)
	}
	if r.Downtime != 0 {
		t.Errorf("downtime = %v", r.Downtime)
	}
	if r.Perf < 0.35 || r.Perf > 0.7 {
		t.Errorf("throttled perf = %v, want mid-range", r.Perf)
	}
}

func TestSleepDowntimeCalibration(t *testing.T) {
	// Paper: Sleep-L yields 38 s downtime for a 30 s outage.
	peak := env().PeakPower()
	w := workload.Specjbb()
	r := mustSim(t, scn(cost.NoDG(peak), technique.Sleep{LowPower: true}, w, 30*time.Second))
	if !r.Survived {
		t.Fatal("sleep should survive easily on a full 2-min UPS")
	}
	if !units.AlmostEqual(r.Downtime.Seconds(), 38, 0.03) {
		t.Errorf("Sleep-L downtime = %v, want 38s", r.Downtime)
	}
	if r.Perf != 0 {
		t.Errorf("sleep perf = %v", r.Perf)
	}
}

func TestHibernateDowntimeCalibration(t *testing.T) {
	// Save 230 s + resume 157 s ≈ 387 s for a 30 s outage.
	peak := env().PeakPower()
	w := workload.Specjbb()
	r := mustSim(t, scn(cost.NoDG(peak), technique.Hibernate{}, w, 30*time.Second))
	if !r.Survived {
		t.Fatal("hibernate should survive")
	}
	if !units.AlmostEqual(r.Downtime.Seconds(), 387, 0.05) {
		t.Errorf("hibernate downtime = %v, want ~387s", r.Downtime)
	}
}

func TestMemcachedHibernateWorseThanCrash(t *testing.T) {
	// §6.2's surprise: for Memcached, Hibernation (~1100+ s) loses to
	// simply crashing and reloading (~480 s).
	peak := env().PeakPower()
	w := workload.Memcached()
	hib := mustSim(t, scn(cost.NoDG(peak), technique.Hibernate{}, w, 30*time.Second))
	crash := mustSim(t, scn(cost.MinCost(peak), technique.Baseline{}, w, 30*time.Second))
	if hib.Downtime <= crash.Downtime {
		t.Errorf("memcached hibernate %v should exceed crash %v", hib.Downtime, crash.Downtime)
	}
	if hib.Downtime < 15*time.Minute {
		t.Errorf("memcached hibernate downtime = %v, want ~1000s+", hib.Downtime)
	}
}

func TestWebSearchHibernateBeatsCrash(t *testing.T) {
	peak := env().PeakPower()
	w := workload.WebSearch()
	hib := mustSim(t, scn(cost.NoDG(peak), technique.Hibernate{}, w, 30*time.Second))
	crash := mustSim(t, scn(cost.MinCost(peak), technique.Baseline{}, w, 30*time.Second))
	if hib.Downtime >= crash.Downtime {
		t.Errorf("web-search hibernate %v should beat crash %v", hib.Downtime, crash.Downtime)
	}
}

func TestSleepBatteryDeathLosesState(t *testing.T) {
	// Sleep on a small battery across a long outage: S3 DRAM dies with
	// the battery -> crash recovery, not a clean resume.
	peak := env().PeakPower()
	w := workload.Specjbb()
	r := mustSim(t, scn(cost.NoDG(peak), technique.Sleep{}, w, 24*time.Hour))
	if r.Survived {
		t.Fatal("2-min-rated battery cannot hold S3 for 24h")
	}
	if r.CrashedAt <= 0 || r.CrashedAt >= 24*time.Hour {
		t.Errorf("crash at %v", r.CrashedAt)
	}
	// Downtime covers the whole outage plus crash recovery.
	if r.Downtime < 24*time.Hour {
		t.Errorf("downtime = %v", r.Downtime)
	}
}

func TestHibernateBatteryDeathAfterSaveIsSafe(t *testing.T) {
	// Hibernation's whole point: once saved, battery exhaustion is
	// harmless; resume cleanly when power returns. Needs a battery that
	// outlasts the 230 s save at full power — LargeEUPS qualifies.
	peak := env().PeakPower()
	w := workload.Specjbb()
	r := mustSim(t, scn(cost.LargeEUPS(peak), technique.Hibernate{}, w, 24*time.Hour))
	if !r.Survived {
		t.Fatalf("hibernate crashed at %v", r.CrashedAt)
	}
	want := 24*time.Hour + 157*time.Second
	if !units.AlmostEqual(r.Downtime.Seconds(), want.Seconds(), 0.01) {
		t.Errorf("downtime = %v, want ~%v", r.Downtime, want)
	}
}

func TestHibernateSaveNeedsEnoughBattery(t *testing.T) {
	// On the plain 2-minute NoDG battery, the 230 s full-power save
	// cannot finish over a long outage: the battery dies mid-save and
	// the state is lost — underprovisioned energy bites save-state too.
	peak := env().PeakPower()
	w := workload.Specjbb()
	r := mustSim(t, scn(cost.NoDG(peak), technique.Hibernate{}, w, 24*time.Hour))
	if r.Survived {
		t.Fatal("2-min battery should die during the 230 s save")
	}
	if r.CrashedAt < 100*time.Second || r.CrashedAt > 230*time.Second {
		t.Errorf("crash at %v, want mid-save", r.CrashedAt)
	}
}

func TestSmallPUPSNeedsPowerReduction(t *testing.T) {
	// Half-power UPS cannot source the unthrottled load: baseline
	// crashes instantly; deep throttling with a T-state fits.
	peak := env().PeakPower()
	w := workload.Specjbb()
	base := mustSim(t, scn(cost.SmallPUPS(peak), technique.Baseline{}, w, time.Minute))
	if base.Survived {
		t.Fatal("baseline should exceed the half-power cap")
	}
	deepest := len(env().Server.PStates) - 1
	thr := mustSim(t, scn(cost.SmallPUPS(peak), technique.Throttling{PState: deepest, TState: 2}, w, time.Minute))
	if !thr.Survived {
		t.Fatalf("deep throttle + T-state should fit under the cap (peak %v, cap %v)",
			thr.PeakUPSDraw, peak/2)
	}
}

func TestDGSmallPUPSZeroDowntimeViaSleepL(t *testing.T) {
	// Paper: DG-SmallPUPS rides the DG ramp with Sleep-L (brief
	// unavailability) then the DG carries full service. Downtime is the
	// ramp + resume only.
	peak := env().PeakPower()
	w := workload.Specjbb()
	r := mustSim(t, scn(cost.DGSmallPUPS(peak), technique.Sleep{LowPower: true}, w, 30*time.Minute))
	if !r.Survived {
		t.Fatalf("Sleep-L behind half-power UPS crashed (peak UPS draw %v, cap %v)",
			r.PeakUPSDraw, peak/2)
	}
	if r.Downtime > 4*time.Minute {
		t.Errorf("downtime = %v, want < DG ramp + resume", r.Downtime)
	}
	// Most of the 30-minute window runs at full service on the DG.
	if r.Perf < 0.85 {
		t.Errorf("perf = %v", r.Perf)
	}
}

func TestMigrationOnLargeEUPS(t *testing.T) {
	peak := env().PeakPower()
	w := workload.Specjbb()
	r := mustSim(t, scn(cost.LargeEUPS(peak), technique.Migration{}, w, 45*time.Minute))
	if !r.Survived {
		t.Fatalf("migration crashed at %v", r.CrashedAt)
	}
	// Serving throughout: downtime only the stop-and-copy pauses.
	if r.Downtime > 15*time.Second {
		t.Errorf("downtime = %v", r.Downtime)
	}
	// Perf blends migration (0.9) and consolidated (~0.45) phases.
	if r.Perf < 0.4 || r.Perf > 0.75 {
		t.Errorf("perf = %v", r.Perf)
	}
}

func TestThrottleThenSleepStretchesSmallBattery(t *testing.T) {
	// Throttle+Sleep-L on the plain NoDG (2-min) battery: serving even a
	// sliver of a 30-min outage and sleeping the rest must survive,
	// because sleeping load is ~2% of rated power and Peukert stretches
	// the runtime enormously.
	peak := env().PeakPower()
	w := workload.Specjbb()
	deepest := len(env().Server.PStates) - 1
	tech := technique.ThrottleThenSave{PState: deepest, Save: SaveSleepKind(), ActiveFraction: 0.02}
	r := mustSim(t, scn(cost.NoDG(peak), tech, w, 30*time.Minute))
	if !r.Survived {
		t.Fatalf("crashed at %v (remaining %v)", r.CrashedAt, r.UPSRemaining)
	}
	if r.Perf <= 0 {
		t.Errorf("perf = %v, want > 0 from the active sliver", r.Perf)
	}
}

// SaveSleepKind avoids importing the constant directly in the test body
// (keeps the test readable).
func SaveSleepKind() technique.SaveKind { return technique.SaveSleep }

func TestScenarioValidate(t *testing.T) {
	peak := env().PeakPower()
	good := scn(cost.MaxPerf(peak), technique.Baseline{}, workload.Specjbb(), time.Minute)
	if err := good.Validate(); err != nil {
		t.Fatalf("good scenario invalid: %v", err)
	}
	bad := good
	bad.Technique = nil
	if bad.Validate() == nil {
		t.Error("nil technique should fail")
	}
	bad = good
	bad.Outage = 0
	if bad.Validate() == nil {
		t.Error("zero outage should fail")
	}
	bad = good
	bad.Env.Servers = 0
	if bad.Validate() == nil {
		t.Error("bad env should fail")
	}
	if _, err := Simulate(bad); err == nil {
		t.Error("Simulate should surface validation errors")
	}
}

func TestTracesRecorded(t *testing.T) {
	peak := env().PeakPower()
	r := mustSim(t, scn(cost.LargeEUPS(peak), technique.Migration{}, workload.Specjbb(), time.Hour))
	if r.PerfTrace == nil || r.PowerTrace == nil {
		t.Fatal("traces missing")
	}
	if r.PowerTrace.Peak(0, time.Hour) <= 0 {
		t.Error("power trace empty")
	}
	if got := float64(r.PeakBackupDraw); got <= 0 {
		t.Error("peak backup draw missing")
	}
	if r.UPSEnergy <= 0 {
		t.Error("UPS energy missing")
	}
}

func TestSpecCPUDowntimeSpread(t *testing.T) {
	peak := env().PeakPower()
	r := mustSim(t, scn(cost.MinCost(peak), technique.Baseline{}, workload.SpecCPU(), 30*time.Second))
	if r.DowntimeMax-r.DowntimeMin != 2*time.Hour {
		t.Errorf("spread = %v, want 2h recompute range", r.DowntimeMax-r.DowntimeMin)
	}
	if r.Downtime != (r.DowntimeMin+r.DowntimeMax)/2 {
		t.Error("downtime should be the midpoint")
	}
}
