package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/sweep"
)

// processSweepSpec builds a spec whose outage axis is n seeded random
// processes — the metamorphic byte-identity population (one spec row per
// case, so 250 cases ride one sweep).
func processSweepSpec(n int) Spec {
	kinds := []string{"fixed", "exponential", "weibull", "empirical"}
	procs := make([]ProcessDTO, n)
	for i := range procs {
		rng := rand.New(rand.NewSource(int64(i)))
		d := ProcessDTO{
			Seed:        rng.Int63(),
			Draws:       1 + rng.Intn(6),
			Correlation: []float64{0, 0, 0.25, 0.5}[rng.Intn(4)],
		}
		mk := func(arrival bool) DistDTO {
			dd := DistDTO{Kind: kinds[rng.Intn(len(kinds))]}
			if dd.Kind == "empirical" {
				return dd
			}
			if dd.Kind == "weibull" {
				dd.Shape = []float64{0.5, 0.8, 1.5, 2, 3}[rng.Intn(5)]
			}
			if arrival {
				dd.Mean = (time.Duration(300+rng.Intn(5701)) * time.Hour).String()
			} else {
				dd.Mean = (time.Duration(1+rng.Intn(480)) * time.Minute).String()
			}
			return dd
		}
		d.Arrival, d.Duration = mk(true), mk(false)
		procs[i] = d
	}
	return Spec{
		Servers:         []int{8},
		Workloads:       []string{"specjbb"},
		Configs:         []ConfigDTO{{Name: "NoDG"}},
		Techniques:      []TechniqueDTO{{Name: "baseline"}},
		OutageProcesses: procs,
	}
}

func processSweepNDJSON(t *testing.T, spec Spec, width, shardSize int) []byte {
	t.Helper()
	plan, err := Compile(spec, CompileOptions{DefaultServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sweep.WithWidth(context.Background(), width)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	err = NewRunner(core.New(8)).RunStream(ctx, plan, RunOptions{ShardSize: shardSize},
		func(row RowResult) error { return enc.Encode(NewRowDTO(plan.Op, row)) })
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestProcessSweepByteIdentity is the same-seed determinism property:
// a 250-row process-axis sweep must produce byte-identical NDJSON at
// every pool width × shard size (run under -race by `make race`).
func TestProcessSweepByteIdentity(t *testing.T) {
	spec := processSweepSpec(250)
	want := processSweepNDJSON(t, spec, 1, 1)
	if len(bytes.TrimSpace(want)) == 0 {
		t.Fatal("baseline sweep emitted nothing")
	}
	for _, width := range []int{2, 8} {
		for _, shard := range []int{1, 7, 64} {
			t.Run(fmt.Sprintf("width=%d/shard=%d", width, shard), func(t *testing.T) {
				if got := processSweepNDJSON(t, spec, width, shard); !bytes.Equal(got, want) {
					t.Fatalf("width %d shard %d diverged from width 1 shard 1", width, shard)
				}
			})
		}
	}
}

// TestProcessSweepWirePayload: every process row carries the process
// echo + process_result payload and no scalar outage/result; the axes
// are mutually exclusive, so mixing them is a typed compile error.
func TestProcessSweepWirePayload(t *testing.T) {
	spec := processSweepSpec(3)
	plan, err := Compile(spec, CompileOptions{DefaultServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := NewRunner(core.New(8)).Run(context.Background(), plan, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if row.Err != nil {
			t.Fatalf("row %d: %v", i, row.Err)
		}
		dto := NewRowDTO(plan.Op, row)
		if dto.ProcessResult == nil || dto.Result != nil || dto.Process == nil || dto.Outage != "" {
			t.Fatalf("row %d: process point wire payload wrong: %+v", i, dto)
		}
	}

	mixed := processSweepSpec(2)
	mixed.Outages = []string{"30s"}
	if _, err := Compile(mixed, CompileOptions{DefaultServers: 8}); err == nil {
		t.Fatal("mixed outages + outage_processes axes compiled; they are mutually exclusive")
	}
}

// TestProcessRowsNeverBatch pins the shard-safety invariant at its
// root: no batch unit may contain a process point, so a shard cut can
// never split one process's draws.
func TestProcessRowsNeverBatch(t *testing.T) {
	spec := processSweepSpec(4)
	spec.Configs = []ConfigDTO{{Name: "NoDG"}, {Name: "MaxPerf"}}
	plan, err := Compile(spec, CompileOptions{DefaultServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Points) != 8 {
		t.Fatalf("want 8 rows, got %d", len(plan.Points))
	}
	for i := 1; i < len(plan.Points); i++ {
		a, b := &plan.Points[i-1], &plan.Points[i]
		if batchable(a, b) {
			t.Fatalf("points %d,%d: a process row joined a batch unit", i-1, i)
		}
	}
}
