package fabric

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// chaosMid wraps a real backupd handler so the next `kills` sweep
// requests die mid-stream: the full shard response is rendered into a
// recorder, the first half of its lines are written and flushed, and then
// the connection is torn down — exactly what a worker crash looks like to
// the coordinator. Later requests (the re-dispatches) pass through clean.
func chaosMid(kills *atomic.Int32) func(int, http.Handler) http.Handler {
	return func(_ int, inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/v1/sweep" || kills.Add(-1) < 0 {
				inner.ServeHTTP(w, r)
				return
			}
			body, err := io.ReadAll(r.Body)
			if err != nil {
				panic(http.ErrAbortHandler)
			}
			r2 := r.Clone(r.Context())
			r2.Body = io.NopCloser(bytes.NewReader(body))
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r2)
			if rec.Code != http.StatusOK {
				// Not a stream (a 4xx/429): forward it untouched and let
				// the kill budget apply to a later streaming request.
				kills.Add(1)
				for k, vs := range rec.Header() {
					w.Header()[k] = vs
				}
				w.WriteHeader(rec.Code)
				w.Write(rec.Body.Bytes())
				return
			}
			lines := bytes.SplitAfter(rec.Body.Bytes(), []byte("\n"))
			for k, vs := range rec.Header() {
				w.Header()[k] = vs
			}
			w.WriteHeader(http.StatusOK)
			for i := 0; i < len(lines)/2; i++ {
				w.Write(lines[i])
			}
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler) // kill the connection mid-shard
		})
	}
}

// TestFabricSurvivesWorkerDeathMidShard is the chaos satellite: a worker
// dies partway through streaming a shard — after its rows have started
// arriving — and the merged output must still be byte-identical to the
// single-node run. Repeated across worker counts and seeds (which vary
// how many kills land and on which shards), including back-to-back kills
// that push a worker into quarantine.
func TestFabricSurvivesWorkerDeathMidShard(t *testing.T) {
	spec := testSpec()
	want := singleNodeNDJSON(t, spec)
	for _, workers := range []int{1, 2, 3} {
		for seed := 0; seed < 4; seed++ {
			t.Run(fmt.Sprintf("workers=%d/seed=%d", workers, seed), func(t *testing.T) {
				var kills atomic.Int32
				kills.Store(int32(1 + seed)) // 1..4 mid-stream deaths per run
				urls := newWorkers(t, workers, chaosMid(&kills))
				f, err := New(Options{
					Workers:    urls,
					ShardRows:  1 + seed, // vary shard geometry with the seed
					HedgeAfter: -1,       // isolate re-dispatch from hedging
					MaxRetries: 8,        // enough budget for every kill to land on one chain
				})
				if err != nil {
					t.Fatal(err)
				}
				// Swallow backoff waits; the kills make retries mandatory
				// and the schedule is covered elsewhere.
				f.opt.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
				var got bytes.Buffer
				if err := f.Run(t.Context(), spec, &got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Fatalf("merged stream diverged from single node after %d mid-shard deaths", 1+seed)
				}
				if f.Metrics().shardsRetried.Value() == 0 && kills.Load() < int32(1+seed) {
					t.Fatal("a kill landed but no retry was recorded")
				}
			})
		}
	}
}

// TestFabricHedgedChaos runs the same mid-shard deaths with hedging armed
// and retries disabled: recovery must come from hedge chains alone, and
// the bytes must still match.
func TestFabricHedgedChaos(t *testing.T) {
	spec := testSpec()
	want := singleNodeNDJSON(t, spec)
	var kills atomic.Int32
	kills.Store(2)
	urls := newWorkers(t, 3, chaosMid(&kills))
	f, err := New(Options{
		Workers:    urls,
		ShardRows:  6,
		HedgeAfter: time.Millisecond,
		MaxRetries: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.opt.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	var got bytes.Buffer
	if err := f.Run(t.Context(), spec, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("merged stream diverged from single node under hedged chaos")
	}
}
