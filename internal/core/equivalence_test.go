package core

import (
	"testing"
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/cost"
	"backuppower/internal/workload"
)

// TestAggregateMatchesSimulate is the contract between the two simulation
// entry points: across every shipped technique variant, every Table 3
// configuration, every workload and the registry's outage grid, the
// aggregate fast path must reproduce the trace-producing path's metrics
// bit for bit — same floats, same durations, same booleans. The fast path
// earns its keep by skipping bookkeeping, never by approximating.
func TestAggregateMatchesSimulate(t *testing.T) {
	f := New(16)
	outages := []time.Duration{30 * time.Second, 5 * time.Minute, 30 * time.Minute, 2 * time.Hour}
	workloads := workload.All()
	configs := cost.Table3(f.Env.PeakPower())

	var checked int
	for _, v := range f.variants() {
		for _, w := range workloads {
			for _, b := range configs {
				for _, outage := range outages {
					s := cluster.Scenario{
						Env: f.Env, Workload: w, Backup: b,
						Technique: v.tech, Outage: outage,
					}
					want, err1 := cluster.Simulate(s)
					got, err2 := cluster.SimulateAggregate(s)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("%s/%s/%s/%v: error mismatch: %v vs %v",
							v.family, w.Name, b.Name, outage, err1, err2)
					}
					if err1 != nil {
						continue
					}
					// The trace pointers are the only intended difference.
					want.PerfTrace, want.PowerTrace = nil, nil
					if got != want {
						t.Fatalf("%s/%s/%s/%v: aggregate diverged\n got: %+v\nwant: %+v",
							v.family, w.Name, b.Name, outage, got, want)
					}
					checked++
				}
			}
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d scenario pairs compared — grid construction broke", checked)
	}
}

// TestBracketSizingMatchesDenseGrid pins the bracketed coarse-then-refine
// rating search against the dense 65-point sweep it replaced: for every
// technique variant, workload and outage in the sizing-heavy grid, both
// must agree on feasibility, and the bracket's selected backup must be the
// dense sweep's argmin exactly — the cost curve over the geometric lattice
// is unimodal (linear electronics + Peukert battery term), so halving the
// stride around the coarse argmin cannot strand the search in a side
// valley. Exact equality (not just within-one-step) keeps every downstream
// figure byte-identical whichever search runs.
func TestBracketSizingMatchesDenseGrid(t *testing.T) {
	if DenseSizingGrid {
		t.Fatal("DenseSizingGrid must default to false")
	}
	defer func() { DenseSizingGrid = false }()

	f := New(16)
	outages := []time.Duration{30 * time.Second, 30 * time.Minute, 2 * time.Hour}
	for _, v := range f.variants() {
		for _, w := range workload.All() {
			for _, outage := range outages {
				DenseSizingGrid = false
				gotOp, gotOK := f.MinCostUPS(v.tech, w, outage)
				DenseSizingGrid = true
				wantOp, wantOK := f.MinCostUPS(v.tech, w, outage)
				if gotOK != wantOK {
					t.Fatalf("%s/%s/%v: feasibility mismatch: bracket %v, dense %v",
						v.family, w.Name, outage, gotOK, wantOK)
				}
				if !gotOK {
					continue
				}
				if gotOp.Backup != wantOp.Backup {
					t.Errorf("%s/%s/%v: bracket chose %v ($%.4f), dense chose %v ($%.4f)",
						v.family, w.Name, outage,
						gotOp.Backup.UPS.PowerCapacity, gotOp.NormCost,
						wantOp.Backup.UPS.PowerCapacity, wantOp.NormCost)
				}
			}
		}
	}
}
