package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"backuppower/internal/cost"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// apiError is a request rejection on its way to becoming a typed 4xx
// body. status is the HTTP status to respond with.
type apiError struct {
	status  int
	code    string
	field   string
	message string
}

func (e *apiError) Error() string {
	if e.field != "" {
		return fmt.Sprintf("%s: %s: %s", e.code, e.field, e.message)
	}
	return fmt.Sprintf("%s: %s", e.code, e.message)
}

func badRequest(code, field, format string, args ...any) *apiError {
	return &apiError{status: 400, code: code, field: field, message: fmt.Sprintf(format, args...)}
}

// decodeStrict decodes one JSON document into v, rejecting unknown
// fields, malformed JSON, and trailing garbage. It never panics on any
// input (FuzzDecodeEvaluateRequest pins this).
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid_json", "", "%s", decodeErrMessage(err))
	}
	// A second token means trailing data after the document.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return badRequest("invalid_json", "", "trailing data after JSON body")
	}
	return nil
}

// decodeErrMessage strips the "json: " prefix noise while keeping the
// decoder's useful position/field detail.
func decodeErrMessage(err error) string {
	return strings.TrimPrefix(err.Error(), "json: ")
}

// DecodeEvaluateRequest strictly decodes an EvaluateRequest body. It is
// exported (within the package's internal tree) so the fuzz target can
// drive the exact decoder the handler uses.
func DecodeEvaluateRequest(r io.Reader) (EvaluateRequest, error) {
	var req EvaluateRequest
	if err := decodeStrict(r, &req); err != nil {
		return EvaluateRequest{}, err
	}
	return req, nil
}

// parseOutage validates the shared outage field: parseable, positive,
// and inside the framework's accepted band.
func parseOutage(s string) (time.Duration, error) {
	if s == "" {
		return 0, badRequest("missing_field", "outage", "outage duration is required")
	}
	d, err := units.ParseDuration(s)
	if err != nil {
		return 0, badRequest("invalid_duration", "outage", "%v", err)
	}
	if d <= 0 {
		return 0, badRequest("out_of_range", "outage", "outage %v must be positive", d)
	}
	if d > maxOutage {
		return 0, badRequest("out_of_range", "outage", "outage %v exceeds the %v maximum", d, maxOutage)
	}
	return d, nil
}

// parseTimeout validates the optional per-request timeout override.
func parseTimeout(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := units.ParseDuration(s)
	if err != nil {
		return 0, badRequest("invalid_duration", "timeout", "%v", err)
	}
	if d <= 0 {
		return 0, badRequest("out_of_range", "timeout", "timeout %v must be positive", d)
	}
	return d, nil
}

// parseWidth validates the optional sweep-width override.
func parseWidth(w int) error {
	if w < 0 || w > 1024 {
		return badRequest("out_of_range", "width", "width %d out of [0, 1024]", w)
	}
	return nil
}

// resolveWorkload maps a workload name to its calibrated spec.
func resolveWorkload(name string) (workload.Spec, error) {
	if name == "" {
		return workload.Spec{}, badRequest("missing_field", "workload", "workload name is required")
	}
	if w, ok := workload.ByName(name); ok {
		return w, nil
	}
	var known []string
	for _, w := range workload.All() {
		known = append(known, w.Name)
	}
	return workload.Spec{}, badRequest("unknown_workload", "workload",
		"unknown workload %q (known: %s)", name, strings.Join(known, ", "))
}

// resolveConfig maps a ConfigDTO to a concrete backup configuration.
// peak is the serving datacenter's peak power, which scales the named
// Table 3 configurations.
func resolveConfig(d ConfigDTO, peak units.Watts) (cost.Backup, error) {
	custom := d.DGPower != "" || d.UPSPower != "" || d.UPSRuntime != ""
	if d.Name != "" && !custom {
		for _, b := range cost.Table3(peak) {
			if strings.EqualFold(b.Name, d.Name) {
				return b, nil
			}
		}
		var known []string
		for _, b := range cost.Table3(peak) {
			known = append(known, b.Name)
		}
		return cost.Backup{}, badRequest("unknown_config", "config.name",
			"unknown configuration %q (known: %s; or give dg_power/ups_power/ups_runtime)",
			d.Name, strings.Join(known, ", "))
	}
	if d.Name != "" && custom {
		return cost.Backup{}, badRequest("invalid_config", "config",
			"give either a named configuration or custom capacities, not both")
	}
	if !custom {
		return cost.Backup{}, badRequest("missing_field", "config",
			"configuration is required: a Table 3 name or dg_power/ups_power/ups_runtime")
	}
	var dg, upsP units.Watts
	var upsRT time.Duration
	var err error
	if d.DGPower != "" {
		if dg, err = units.ParsePower(d.DGPower); err != nil {
			return cost.Backup{}, badRequest("invalid_power", "config.dg_power", "%v", err)
		}
	}
	if d.UPSPower != "" {
		if upsP, err = units.ParsePower(d.UPSPower); err != nil {
			return cost.Backup{}, badRequest("invalid_power", "config.ups_power", "%v", err)
		}
	}
	if d.UPSRuntime != "" {
		if upsRT, err = units.ParseDuration(d.UPSRuntime); err != nil {
			return cost.Backup{}, badRequest("invalid_duration", "config.ups_runtime", "%v", err)
		}
		if upsRT < 0 {
			return cost.Backup{}, badRequest("out_of_range", "config.ups_runtime", "runtime %v must be non-negative", upsRT)
		}
		if upsP == 0 {
			return cost.Backup{}, badRequest("invalid_config", "config.ups_runtime", "ups_runtime without ups_power")
		}
	}
	// Sanity bound: a configuration larger than 100x the datacenter peak
	// is a unit mistake, not a design point.
	if limit := peak * 100; dg > limit || upsP > limit {
		return cost.Backup{}, badRequest("out_of_range", "config",
			"capacity exceeds 100x the datacenter peak (%v)", peak)
	}
	b := cost.Custom("custom", dg, upsP, upsRT)
	return b, nil
}

// techniqueParam records one settable TechniqueDTO parameter for the
// applicability check.
type techniqueParam struct {
	name string
	set  bool
}

func (d TechniqueDTO) params() []techniqueParam {
	return []techniqueParam{
		{"pstate", d.PState != nil},
		{"low_power", d.LowPower != nil},
		{"proactive", d.Proactive != nil},
		{"throttle_deep", d.ThrottleDeep != nil},
		{"save", d.Save != ""},
		{"active_fraction", d.ActiveFraction != nil},
		{"budget", d.Budget != ""},
	}
}

// techniqueSpec describes one supported technique family: which params
// apply and how to build the concrete instance.
type techniqueSpec struct {
	params []string
	doc    string
	build  func(s *serverDeps, d TechniqueDTO) (technique.Technique, error)
}

// serverDeps carries the environment facts technique validation needs.
type serverDeps struct {
	deepestPState int
	peak          units.Watts
}

func has(params []string, name string) bool {
	for _, p := range params {
		if p == name {
			return true
		}
	}
	return false
}

// techniqueSpecs is the registry of wire-exposed techniques, keyed by
// normalized name.
var techniqueSpecs = map[string]techniqueSpec{
	"baseline": {
		doc: "full service until the backup dies (MaxPerf/MinCost behavior)",
		build: func(_ *serverDeps, _ TechniqueDTO) (technique.Technique, error) {
			return technique.Baseline{}, nil
		},
	},
	"throttling": {
		params: []string{"pstate"},
		doc:    "run in a reduced DVFS P-state (pstate 1 = lightest, deepest = slowest)",
		build: func(s *serverDeps, d TechniqueDTO) (technique.Technique, error) {
			p, err := requirePState(s, d)
			if err != nil {
				return nil, err
			}
			return technique.Throttling{PState: p}, nil
		},
	},
	"capped-throttling": {
		params: []string{"budget"},
		doc:    "budget-driven capping: the fastest P/T state fitting under a power budget",
		build: func(s *serverDeps, d TechniqueDTO) (technique.Technique, error) {
			if d.Budget == "" {
				return nil, badRequest("missing_field", "technique.budget", "capped-throttling needs a power budget")
			}
			w, err := units.ParsePower(d.Budget)
			if err != nil {
				return nil, badRequest("invalid_power", "technique.budget", "%v", err)
			}
			if w <= 0 {
				return nil, badRequest("out_of_range", "technique.budget", "budget must be positive")
			}
			return technique.CappedThrottling{Budget: w}, nil
		},
	},
	"migration": {
		params: []string{"proactive", "throttle_deep"},
		doc:    "consolidate onto fewer servers via live migration",
		build: func(_ *serverDeps, d TechniqueDTO) (technique.Technique, error) {
			return technique.Migration{
				Proactive:    d.Proactive != nil && *d.Proactive,
				ThrottleDeep: d.ThrottleDeep != nil && *d.ThrottleDeep,
			}, nil
		},
	},
	"sleep": {
		params: []string{"low_power"},
		doc:    "suspend to RAM (S3); low_power throttles during the transition",
		build: func(_ *serverDeps, d TechniqueDTO) (technique.Technique, error) {
			return technique.Sleep{LowPower: d.LowPower != nil && *d.LowPower}, nil
		},
	},
	"hibernate": {
		params: []string{"low_power", "proactive"},
		doc:    "suspend to disk (S4); proactive pre-flushes dirty state",
		build: func(_ *serverDeps, d TechniqueDTO) (technique.Technique, error) {
			return technique.Hibernate{
				LowPower:  d.LowPower != nil && *d.LowPower,
				Proactive: d.Proactive != nil && *d.Proactive,
			}, nil
		},
	},
	"throttle-then-save": {
		params: []string{"pstate", "save", "active_fraction"},
		doc:    "serve throttled for a fraction of the outage, then save state",
		build: func(s *serverDeps, d TechniqueDTO) (technique.Technique, error) {
			p, err := requirePState(s, d)
			if err != nil {
				return nil, err
			}
			save, err := parseSaveKind(d.Save)
			if err != nil {
				return nil, err
			}
			frac, err := activeFraction(d)
			if err != nil {
				return nil, err
			}
			return technique.ThrottleThenSave{PState: p, Save: save, ActiveFraction: frac}, nil
		},
	},
	"migration-then-sleep": {
		params: []string{"active_fraction"},
		doc:    "consolidate, serve for a fraction of the outage, then sleep the survivors",
		build: func(_ *serverDeps, d TechniqueDTO) (technique.Technique, error) {
			frac, err := activeFraction(d)
			if err != nil {
				return nil, err
			}
			return technique.MigrationThenSleep{ActiveFraction: frac}, nil
		},
	},
	"nvdimm": {
		doc: "persist state with no backup power at all (Section 7)",
		build: func(_ *serverDeps, _ TechniqueDTO) (technique.Technique, error) {
			return technique.NVDIMM{}, nil
		},
	},
	"nvdimm-throttle": {
		params: []string{"pstate"},
		doc:    "serve throttled with crash-safe NVDIMM state (Section 7)",
		build: func(s *serverDeps, d TechniqueDTO) (technique.Technique, error) {
			p, err := requirePState(s, d)
			if err != nil {
				return nil, err
			}
			return technique.NVDIMMThrottle{PState: p}, nil
		},
	},
	"barely-alive": {
		doc: "sleep while serving reads over RDMA (Section 7)",
		build: func(_ *serverDeps, _ TechniqueDTO) (technique.Technique, error) {
			return technique.BarelyAlive{}, nil
		},
	},
	"geo-failover": {
		params: []string{"save"},
		doc:    "redirect load to a geo-replicated site, then save locally (Section 7)",
		build: func(_ *serverDeps, d TechniqueDTO) (technique.Technique, error) {
			g := technique.GeoFailover{}
			if d.Save != "" {
				save, err := parseSaveKind(d.Save)
				if err != nil {
					return nil, err
				}
				g.Save = save
			}
			return g, nil
		},
	},
}

func requirePState(s *serverDeps, d TechniqueDTO) (int, error) {
	if d.PState == nil {
		return 0, badRequest("missing_field", "technique.pstate",
			"pstate is required (1..%d)", s.deepestPState)
	}
	p := *d.PState
	if p < 1 || p > s.deepestPState {
		return 0, badRequest("out_of_range", "technique.pstate",
			"pstate %d out of [1, %d]", p, s.deepestPState)
	}
	return p, nil
}

func parseSaveKind(s string) (technique.SaveKind, error) {
	switch strings.ToLower(s) {
	case "":
		return 0, badRequest("missing_field", "technique.save", `save is required ("sleep" or "hibernate")`)
	case "sleep":
		return technique.SaveSleep, nil
	case "hibernate":
		return technique.SaveHibernate, nil
	default:
		return 0, badRequest("invalid_field", "technique.save", `save %q must be "sleep" or "hibernate"`, s)
	}
}

func activeFraction(d TechniqueDTO) (float64, error) {
	if d.ActiveFraction == nil {
		return 1.0, nil
	}
	f := *d.ActiveFraction
	if !(f > 0 && f <= 1) {
		return 0, badRequest("out_of_range", "technique.active_fraction",
			"active_fraction %v out of (0, 1]", f)
	}
	return f, nil
}

// resolveTechnique maps a TechniqueDTO to a concrete technique,
// validating that every supplied parameter applies to the named family.
func resolveTechnique(d TechniqueDTO, deps *serverDeps) (technique.Technique, error) {
	if d.Name == "" {
		return nil, badRequest("missing_field", "technique.name", "technique name is required")
	}
	name := strings.ToLower(strings.ReplaceAll(d.Name, "_", "-"))
	spec, ok := techniqueSpecs[name]
	if !ok {
		return nil, badRequest("unknown_technique", "technique.name",
			"unknown technique %q (known: %s)", d.Name, strings.Join(techniqueNames(), ", "))
	}
	for _, p := range d.params() {
		if p.set && !has(spec.params, p.name) {
			return nil, badRequest("invalid_field", "technique."+p.name,
				"%s does not apply to technique %q", p.name, name)
		}
	}
	return spec.build(deps, d)
}

// techniqueNames returns the supported names sorted for stable listings
// and error messages.
func techniqueNames() []string {
	names := make([]string, 0, len(techniqueSpecs))
	for n := range techniqueSpecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
