// Package httpapi exposes the evaluation framework over JSON/HTTP — the
// serving surface behind cmd/backupd. Five endpoints cover the
// framework's hot paths:
//
//	POST /v1/evaluate   one scenario: config x technique x workload x outage
//	POST /v1/size       min-cost UPS sizing for a technique (MinCostUPSCtx)
//	POST /v1/best       best technique behind a fixed config (BestForConfigCtx)
//	POST /v1/sweep      declarative grid spec -> streamed NDJSON rows (internal/grid)
//	GET  /v1/results    query stored sweep rows (internal/resultstore; -store-dir only)
//	GET  /v1/techniques registry of wire-exposed techniques and families
//	GET  /v1/workloads  registry of calibrated workloads
//	GET  /healthz       liveness
//	GET  /metrics       request/latency/cache counters (expvar-backed JSON)
//
// All requests against one Server share a single *core.Framework, so the
// process-wide scenario memo cache warms across requests: a repeated
// evaluation is a cache hit, not a re-simulation. Evaluation endpoints
// are bounded by a semaphore (429 + Retry-After past the bound), carry a
// per-request deadline wired into the framework's Ctx variants (504 on
// expiry), and honor a per-request sweep width via sweep.WithWidth —
// responses are byte-identical at any width and any interleaving.
package httpapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/grid"
	"backuppower/internal/resultstore"
	"backuppower/internal/sweep"
)

// Config parameterizes a Server.
type Config struct {
	// Framework is the shared evaluation framework (required).
	Framework *core.Framework

	// MaxInflight bounds concurrently evaluating requests; further
	// evaluation requests get 429 + Retry-After. Default 4x GOMAXPROCS.
	MaxInflight int

	// Timeout is the per-request evaluation deadline, and the cap on any
	// request-supplied timeout. Default 30s.
	Timeout time.Duration

	// Width is the default sweep worker-pool width per request (0 means
	// GOMAXPROCS); a request's width field overrides it downward or
	// upward without changing the response bytes.
	Width int

	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool

	// MaxBodyBytes caps request body size. Default 1 MiB.
	MaxBodyBytes int64

	// MaxSweepRows caps how many rows one /v1/sweep grid may expand to
	// (before filtering). Default grid.DefaultMaxRows; a request's own
	// max_rows can tighten but never exceed it.
	MaxSweepRows int

	// WorkerID, when set, is echoed on sweep responses as the
	// X-Backupd-Worker header so a fabric coordinator (cmd/sweepfront)
	// can attribute shard streams to pool members in its metrics.
	WorkerID string

	// Store, when set, is the persistent result store behind -store-dir:
	// GET /v1/results is mounted over it and its counters are appended to
	// /metrics. Attaching the store to the evaluation pathway itself
	// (core.SetResultStore / grid.SetRowStore) is the caller's job — the
	// tiers are process-global while Servers are per-instance.
	Store resultstore.Store
}

// Server is the HTTP serving surface over one shared framework.
type Server struct {
	fw      *core.Framework
	cfg     Config
	sem     chan struct{}
	metrics *metrics
	handler http.Handler
	deps    serverDeps
	runner  *grid.Runner

	// testHookEvalStarted, when set, runs after an evaluation slot is
	// acquired and before the evaluation itself — the seam the
	// saturation and deadline tests use to hold a request in flight.
	testHookEvalStarted func(ctx context.Context)
}

// New builds a Server over cfg.Framework.
func New(cfg Config) (*Server, error) {
	if cfg.Framework == nil {
		return nil, errors.New("httpapi: Config.Framework is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	s := &Server{
		fw:      cfg.Framework,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInflight),
		metrics: newMetrics(),
		deps: serverDeps{
			deepestPState: len(cfg.Framework.Env.Server.PStates) - 1,
			peak:          cfg.Framework.Env.PeakPower(),
		},
		runner: grid.NewRunner(cfg.Framework),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/evaluate", s.route("/v1/evaluate", s.handleEvaluate))
	mux.HandleFunc("POST /v1/size", s.route("/v1/size", s.handleSize))
	mux.HandleFunc("POST /v1/best", s.route("/v1/best", s.handleBest))
	mux.HandleFunc("POST /v1/sweep", s.route("/v1/sweep", s.handleSweep))
	mux.HandleFunc("GET /v1/techniques", s.route("/v1/techniques", s.handleTechniques))
	mux.HandleFunc("GET /v1/workloads", s.route("/v1/workloads", s.handleWorkloads))
	mux.HandleFunc("GET /healthz", s.route("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.route("/metrics", s.handleMetrics))
	if cfg.Store != nil {
		s.metrics.store = cfg.Store
		mux.HandleFunc("GET /v1/results", s.route("/v1/results", NewResultsHandler(cfg.Store)))
	}
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.handler = mux
	return s, nil
}

// Handler returns the fully assembled HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// statusRecorder captures the status a handler wrote so the metrics
// middleware can count it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// route wraps a handler with the shared middleware: panic containment,
// body limiting, and per-route request/status/latency metrics.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				// The decoder and models are panic-free by contract (the
				// fuzz layer pins the decoder); this is the last-resort
				// fence so one bad request cannot take the daemon down.
				if rec.status == 0 {
					writeError(rec, &apiError{status: 500, code: "internal", message: "internal error"})
				}
			}
			s.metrics.observe(name, rec.status, time.Since(start).Nanoseconds())
		}()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(rec, r)
	}
}

// acquire takes an evaluation slot, or reports saturation.
func (s *Server) acquire() bool {
	select {
	case s.sem <- struct{}{}:
		s.metrics.inflight.Add(1)
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	s.metrics.inflight.Add(-1)
	<-s.sem
}

// evalContext derives the request's evaluation context: the server
// deadline (tightened by a request timeout, never extended) plus the
// sweep width.
func (s *Server) evalContext(r *http.Request, width int, timeout time.Duration) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if timeout > 0 && timeout < d {
		d = timeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	if width <= 0 {
		width = s.cfg.Width
	}
	if width > 0 {
		ctx = sweep.WithWidth(ctx, width)
	}
	return ctx, cancel
}

// evalError maps an evaluation failure to a response: deadline expiry is
// 504, client disconnect is 499 (nginx's convention — the client is gone
// but the status still lands in metrics), typed input rejections are
// 400, anything else input-shaped from the scenario validator is 400
// with a distinct code.
func evalError(err error) *apiError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{status: http.StatusGatewayTimeout, code: "deadline_exceeded",
			message: "evaluation deadline expired; retry with a longer timeout or narrower request"}
	case errors.Is(err, context.Canceled):
		return &apiError{status: 499, code: "client_closed_request", message: "client closed request"}
	case errors.Is(err, core.ErrInvalidInput):
		var ie *core.InputError
		d := &apiError{status: http.StatusBadRequest, code: "invalid_input", message: err.Error()}
		if errors.As(err, &ie) {
			d.field = ie.Field
		}
		return d
	default:
		return &apiError{status: http.StatusBadRequest, code: "invalid_scenario", message: err.Error()}
	}
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeEvaluateRequest(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	outage, err := parseOutage(req.Outage)
	if err != nil {
		writeError(w, err)
		return
	}
	timeout, err := parseTimeout(req.Timeout)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := parseWidth(req.Width); err != nil {
		writeError(w, err)
		return
	}
	wl, err := resolveWorkload(req.Workload)
	if err != nil {
		writeError(w, err)
		return
	}
	backup, err := resolveConfig(req.Config, s.deps.peak)
	if err != nil {
		writeError(w, err)
		return
	}
	tech, err := resolveTechnique(req.Technique, &s.deps)
	if err != nil {
		writeError(w, err)
		return
	}

	if !s.acquire() {
		writeSaturated(w)
		return
	}
	defer s.release()
	ctx, cancel := s.evalContext(r, req.Width, timeout)
	defer cancel()
	if s.testHookEvalStarted != nil {
		s.testHookEvalStarted(ctx)
	}

	res, err := s.fw.EvaluateCtx(ctx, backup, tech, wl, outage)
	if err != nil {
		writeError(w, evalError(err))
		return
	}
	writeJSON(w, http.StatusOK, EvaluateResponse{Result: resultDTO(res)})
}

func (s *Server) handleSize(w http.ResponseWriter, r *http.Request) {
	var req SizeRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, err)
		return
	}
	outage, err := parseOutage(req.Outage)
	if err != nil {
		writeError(w, err)
		return
	}
	timeout, err := parseTimeout(req.Timeout)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := parseWidth(req.Width); err != nil {
		writeError(w, err)
		return
	}
	wl, err := resolveWorkload(req.Workload)
	if err != nil {
		writeError(w, err)
		return
	}
	tech, err := resolveTechnique(req.Technique, &s.deps)
	if err != nil {
		writeError(w, err)
		return
	}

	if !s.acquire() {
		writeSaturated(w)
		return
	}
	defer s.release()
	ctx, cancel := s.evalContext(r, req.Width, timeout)
	defer cancel()
	if s.testHookEvalStarted != nil {
		s.testHookEvalStarted(ctx)
	}

	op, ok, err := s.fw.MinCostUPSCtx(ctx, tech, wl, outage)
	if err != nil {
		writeError(w, evalError(err))
		return
	}
	writeJSON(w, http.StatusOK, sizeResponse(op, ok))
}

func (s *Server) handleBest(w http.ResponseWriter, r *http.Request) {
	var req BestRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, err)
		return
	}
	outage, err := parseOutage(req.Outage)
	if err != nil {
		writeError(w, err)
		return
	}
	timeout, err := parseTimeout(req.Timeout)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := parseWidth(req.Width); err != nil {
		writeError(w, err)
		return
	}
	wl, err := resolveWorkload(req.Workload)
	if err != nil {
		writeError(w, err)
		return
	}
	backup, err := resolveConfig(req.Config, s.deps.peak)
	if err != nil {
		writeError(w, err)
		return
	}

	if !s.acquire() {
		writeSaturated(w)
		return
	}
	defer s.release()
	ctx, cancel := s.evalContext(r, req.Width, timeout)
	defer cancel()
	if s.testHookEvalStarted != nil {
		s.testHookEvalStarted(ctx)
	}

	res, tech, err := s.fw.BestForConfigCtx(ctx, backup, wl, outage)
	if err != nil {
		writeError(w, evalError(err))
		return
	}
	resp := BestResponse{Result: resultDTO(res)}
	if tech != nil {
		resp.Technique = tech.Name()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTechniques(w http.ResponseWriter, _ *http.Request) {
	resp := TechniquesResponse{Families: core.Families()}
	for _, doc := range grid.TechniqueDocs() {
		resp.Techniques = append(resp.Techniques, TechniqueInfo{
			Name:   doc.Name,
			Params: doc.Params,
			Doc:    doc.Doc,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	var resp WorkloadsResponse
	for _, wl := range workloadAll() {
		resp.Workloads = append(resp.Workloads, WorkloadInfo{
			Name:             wl.Name,
			PerfMetric:       wl.PerfMetric,
			FootprintGiB:     wl.Memory.Footprint.GiB(),
			Utilization:      wl.Utilization,
			CPUBoundFraction: wl.CPUBoundFraction,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(`{"status":"ok"}` + "\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	s.metrics.writeTo(w)
}
