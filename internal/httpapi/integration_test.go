package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/cost"
	"backuppower/internal/technique"
	"backuppower/internal/workload"
)

// newTestServer builds a Server + httptest listener over a fresh
// 64-server framework (the scale the package examples use).
func newTestServer(t *testing.T, mutate func(*Config) *Server) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Framework: core.New(64)}
	var s *Server
	var err error
	if mutate != nil {
		s = mutate(&cfg)
	}
	if s == nil {
		s, err = New(cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestEvaluateMatchesInProcess pins the serving layer to the framework:
// a Table 3 config evaluated over HTTP must byte-match the same scenario
// run through core.Evaluate in-process and encoded the same way.
func TestEvaluateMatchesInProcess(t *testing.T) {
	srv, ts := newTestServer(t, nil)

	body := `{
		"config":    {"name": "LargeEUPS"},
		"technique": {"name": "throttling", "pstate": 6},
		"workload":  "specjbb",
		"outage":    "30m"
	}`
	resp, got := post(t, ts.URL+"/v1/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}

	peak := srv.fw.Env.PeakPower()
	res, err := srv.fw.Evaluate(cost.LargeEUPS(peak), technique.Throttling{PState: 6},
		workload.Specjbb(), 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	json.NewEncoder(&want).Encode(EvaluateResponse{Result: resultDTO(res)})
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("HTTP response differs from in-process evaluation:\nhttp: %s\nwant: %s", got, want.Bytes())
	}
}

// TestSizeMatchesInProcess does the same for the sizing endpoint.
func TestSizeMatchesInProcess(t *testing.T) {
	srv, ts := newTestServer(t, nil)

	body := `{"technique": {"name": "sleep", "low_power": true}, "workload": "web-search", "outage": "1h"}`
	resp, got := post(t, ts.URL+"/v1/size", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}

	op, ok, err := srv.fw.MinCostUPSCtx(context.Background(),
		technique.Sleep{LowPower: true}, workload.WebSearch(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	json.NewEncoder(&want).Encode(sizeResponse(op, ok))
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("HTTP sizing differs from in-process:\nhttp: %s\nwant: %s", got, want.Bytes())
	}
}

// TestSaturationReturns429 holds the only evaluation slot with the test
// hook and checks the second request is shed with 429 + Retry-After
// while the first completes normally once released.
func TestSaturationReturns429(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	var srv *Server
	_, ts := newTestServer(t, func(cfg *Config) *Server {
		cfg.MaxInflight = 1
		var err error
		srv, err = New(*cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.testHookEvalStarted = func(context.Context) {
			entered <- struct{}{}
			<-release
		}
		return srv
	})

	body := `{"config":{"name":"NoDG"},"technique":{"name":"baseline"},"workload":"memcached","outage":"5m"}`
	type result struct {
		status int
		body   []byte
		err    error
	}
	first := make(chan result, 1)
	go func() {
		// http.Post directly: t.Fatal must not run off the test goroutine.
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err != nil {
			first <- result{err: err}
			return
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		first <- result{resp.StatusCode, b, err}
	}()
	<-entered // the first request now owns the only slot

	resp, b := post(t, ts.URL+"/v1/evaluate", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429 (%s)", resp.StatusCode, b)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var eb ErrorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Error.Code != "saturated" {
		t.Errorf("429 body = %s (unmarshal err %v), want code \"saturated\"", b, err)
	}

	close(release)
	r := <-first
	if r.err != nil {
		t.Fatalf("first request: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("first request after release: status %d: %s", r.status, r.body)
	}
}

// TestDeadlineReturns504 parks a sizing request past its deadline via
// the test hook: the sweep then observes the expired context mid-flight
// and the request maps to 504 — and the shared cache stays usable for
// the next request.
func TestDeadlineReturns504(t *testing.T) {
	var srv *Server
	_, ts := newTestServer(t, func(cfg *Config) *Server {
		cfg.Timeout = 50 * time.Millisecond
		var err error
		srv, err = New(*cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.testHookEvalStarted = func(ctx context.Context) { <-ctx.Done() }
		return srv
	})

	body := `{"technique":{"name":"hibernate"},"workload":"specjbb","outage":"30m"}`
	resp, b := post(t, ts.URL+"/v1/size", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, b)
	}
	var eb ErrorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Error.Code != "deadline_exceeded" {
		t.Errorf("504 body = %s (unmarshal err %v), want code \"deadline_exceeded\"", b, err)
	}

	// The shared framework and its cache must still serve: drop the hook
	// and repeat the identical request successfully.
	srv.testHookEvalStarted = nil
	resp, b = post(t, ts.URL+"/v1/size", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-timeout request: status %d: %s", resp.StatusCode, b)
	}
	op, ok, err := srv.fw.MinCostUPSCtx(context.Background(),
		technique.Hibernate{}, workload.Specjbb(), 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	json.NewEncoder(&want).Encode(sizeResponse(op, ok))
	if !bytes.Equal(b, want.Bytes()) {
		t.Errorf("post-timeout sizing differs from in-process:\nhttp: %s\nwant: %s", b, want.Bytes())
	}
}

// metricsSnapshot fetches /metrics and decodes the counters the tests
// assert on.
type metricsSnapshot struct {
	Cache struct {
		Entries int    `json:"entries"`
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
	} `json:"cache"`
	Inflight  int64             `json:"inflight"`
	Requests  map[string]uint64 `json:"requests"`
	Saturated uint64            `json:"saturated"`
	Statuses  map[string]uint64 `json:"statuses"`
	Timeouts  uint64            `json:"timeouts"`
}

func getMetrics(t *testing.T, base string) metricsSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	return m
}

// TestWarmCacheRepeatIsCacheHit asserts the serving-layer cache story
// via the /metrics counters: evaluating a scenario routes through the
// shared scenario cache (one counted event — a miss that simulates, or a
// hit if the cache is already warm), and an identical repeat hits it
// without adding a miss — the warm request never re-simulates, which is
// what makes it measurably faster than the cold one. All assertions are
// deltas against a baseline snapshot: the scenario cache is
// process-global and its counters are cumulative, so under `go test
// -count>1` (or after any test that touches the same scenario) the first
// request may legitimately be a hit rather than a miss.
func TestWarmCacheRepeatIsCacheHit(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// A custom configuration with capacities no other test uses, so the
	// first request within one process run is cold (later -count runs
	// find it warm, which the delta assertions tolerate).
	body := `{
		"config":    {"dg_power": "0W", "ups_power": "13.37kW", "ups_runtime": "41m"},
		"technique": {"name": "throttling", "pstate": 3},
		"workload":  "memcached",
		"outage":    "17m"
	}`

	before := getMetrics(t, ts.URL)
	resp, cold := post(t, ts.URL+"/v1/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold request: status %d: %s", resp.StatusCode, cold)
	}
	mid := getMetrics(t, ts.URL)
	coldActivity := (mid.Cache.Hits + mid.Cache.Misses) - (before.Cache.Hits + before.Cache.Misses)
	if coldActivity == 0 {
		t.Fatalf("first request never consulted the scenario cache (hits %d->%d, misses %d->%d)",
			before.Cache.Hits, mid.Cache.Hits, before.Cache.Misses, mid.Cache.Misses)
	}

	resp, warm := post(t, ts.URL+"/v1/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", resp.StatusCode, warm)
	}
	after := getMetrics(t, ts.URL)
	if after.Cache.Hits <= mid.Cache.Hits {
		t.Errorf("warm repeat was not a cache hit (hits before %d, after %d)",
			mid.Cache.Hits, after.Cache.Hits)
	}
	if after.Cache.Misses != mid.Cache.Misses {
		t.Errorf("warm repeat re-simulated: misses went %d -> %d",
			mid.Cache.Misses, after.Cache.Misses)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("cold and warm responses differ:\ncold: %s\nwarm: %s", cold, warm)
	}
}

// TestRequestMetrics sanity-checks the request/status counters and the
// health endpoint.
func TestRequestMetrics(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	post(t, ts.URL+"/v1/evaluate", `{"bad json`)
	m := getMetrics(t, ts.URL)
	if m.Requests["/healthz"] < 1 {
		t.Errorf("healthz not counted: %v", m.Requests)
	}
	if m.Requests["/v1/evaluate"] < 1 {
		t.Errorf("evaluate not counted: %v", m.Requests)
	}
	if m.Statuses["400"] < 1 {
		t.Errorf("malformed request not counted as 400: %v", m.Statuses)
	}
	if m.Inflight != 0 {
		t.Errorf("inflight gauge stuck at %d", m.Inflight)
	}
}

// TestValidationErrorBodies spot-checks the typed 4xx contract across
// the rejection classes.
func TestValidationErrorBodies(t *testing.T) {
	_, ts := newTestServer(t, nil)

	cases := []struct {
		name      string
		path      string
		body      string
		wantCode  string
		wantField string
	}{
		{"unknown field", "/v1/evaluate", `{"configg": {}}`, "invalid_json", ""},
		{"trailing garbage", "/v1/evaluate", `{} {}`, "invalid_json", ""},
		{"missing outage", "/v1/evaluate",
			`{"config":{"name":"NoDG"},"technique":{"name":"baseline"},"workload":"specjbb"}`,
			"missing_field", "outage"},
		{"bad outage unit", "/v1/evaluate",
			`{"config":{"name":"NoDG"},"technique":{"name":"baseline"},"workload":"specjbb","outage":"30 fortnights"}`,
			"invalid_duration", "outage"},
		{"negative outage", "/v1/evaluate",
			`{"config":{"name":"NoDG"},"technique":{"name":"baseline"},"workload":"specjbb","outage":"-5m"}`,
			"out_of_range", "outage"},
		{"absurd outage", "/v1/evaluate",
			`{"config":{"name":"NoDG"},"technique":{"name":"baseline"},"workload":"specjbb","outage":"9000h"}`,
			"out_of_range", "outage"},
		{"unknown workload", "/v1/evaluate",
			`{"config":{"name":"NoDG"},"technique":{"name":"baseline"},"workload":"fortnite","outage":"5m"}`,
			"unknown_workload", "workload"},
		{"unknown config", "/v1/evaluate",
			`{"config":{"name":"MediumPerf"},"technique":{"name":"baseline"},"workload":"specjbb","outage":"5m"}`,
			"unknown_config", "config.name"},
		{"named plus custom config", "/v1/evaluate",
			`{"config":{"name":"NoDG","ups_power":"1kW"},"technique":{"name":"baseline"},"workload":"specjbb","outage":"5m"}`,
			"invalid_config", "config"},
		{"bad power unit", "/v1/evaluate",
			`{"config":{"ups_power":"1 kWh","ups_runtime":"5m"},"technique":{"name":"baseline"},"workload":"specjbb","outage":"5m"}`,
			"invalid_power", "config.ups_power"},
		{"unknown technique", "/v1/size",
			`{"technique":{"name":"overclocking"},"workload":"specjbb","outage":"5m"}`,
			"unknown_technique", "technique.name"},
		{"inapplicable param", "/v1/size",
			`{"technique":{"name":"sleep","pstate":3},"workload":"specjbb","outage":"5m"}`,
			"invalid_field", "technique.pstate"},
		{"pstate out of range", "/v1/size",
			`{"technique":{"name":"throttling","pstate":99},"workload":"specjbb","outage":"5m"}`,
			"out_of_range", "technique.pstate"},
		{"bad active fraction", "/v1/size",
			`{"technique":{"name":"migration-then-sleep","active_fraction":1.5},"workload":"specjbb","outage":"5m"}`,
			"out_of_range", "technique.active_fraction"},
		{"bad width", "/v1/best",
			`{"config":{"name":"NoDG"},"workload":"specjbb","outage":"5m","width":-2}`,
			"out_of_range", "width"},
	}
	for _, c := range cases {
		resp, b := post(t, ts.URL+c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, b)
			continue
		}
		var eb ErrorBody
		if err := json.Unmarshal(b, &eb); err != nil {
			t.Errorf("%s: non-JSON error body %s", c.name, b)
			continue
		}
		if eb.Error.Code != c.wantCode || eb.Error.Field != c.wantField {
			t.Errorf("%s: got (%s, %s), want (%s, %s) — %s",
				c.name, eb.Error.Code, eb.Error.Field, c.wantCode, c.wantField, eb.Error.Message)
		}
	}
}

// TestMethodNotAllowed pins the mux's method discipline.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/evaluate: status %d, want 405", resp.StatusCode)
	}
}
