package loadgen

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Nearest-rank quantiles on a known distribution: 1ms..100ms in 1ms
// steps makes every percentile exactly predictable.
func TestPercentileNearestRank(t *testing.T) {
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond
	}
	r := Summarize(lat, 0, time.Second)
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{99.9, 100 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{1, 1 * time.Millisecond},
	}
	for _, c := range cases {
		if got := r.Percentile(c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if r.P50 != 50*time.Millisecond || r.P99 != 99*time.Millisecond || r.P999 != 100*time.Millisecond {
		t.Errorf("summary quantiles %v/%v/%v", r.P50, r.P99, r.P999)
	}
	if r.Max != 100*time.Millisecond {
		t.Errorf("max %v", r.Max)
	}
	if r.Throughput != 100 {
		t.Errorf("throughput %v, want 100/s", r.Throughput)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	r := Summarize(nil, 0, 0)
	if r.P50 != 0 || r.P999 != 0 || r.Requests != 0 || r.ErrorRate() != 0 || r.Throughput != 0 {
		t.Errorf("zero report not zero: %+v", r)
	}
}

// Summarize must not mutate or alias the caller's slice.
func TestSummarizeCopies(t *testing.T) {
	lat := []time.Duration{3, 1, 2}
	Summarize(lat, 0, time.Second)
	if lat[0] != 3 || lat[1] != 1 || lat[2] != 2 {
		t.Errorf("caller slice mutated: %v", lat)
	}
}

func TestSLOCheck(t *testing.T) {
	r := Summarize([]time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond,
	}, 1, time.Second)

	if v := (SLO{}).Check(r); len(v) != 1 {
		// Zero-value SLO gates only the error rate (0 = no errors allowed).
		t.Errorf("zero SLO violations = %v, want the error-rate breach only", v)
	}
	if v := (SLO{MaxErrorRate: -1}).Check(r); len(v) != 0 {
		t.Errorf("fully ungated SLO violations = %v", v)
	}
	if v := (SLO{P99: time.Millisecond, MaxErrorRate: -1}).Check(r); len(v) != 1 {
		t.Errorf("p99 breach: got %v", v)
	}
	ok := SLO{P50: time.Second, P99: time.Second, P999: time.Second, MaxErrorRate: 0.25}
	if v := ok.Check(r); len(v) != 0 {
		t.Errorf("within-budget SLO violations = %v", v)
	}
}

// A count-bounded run issues exactly Requests calls, with dense unique
// sequence numbers, at the configured concurrency.
func TestRunCountBounded(t *testing.T) {
	const want = 200
	var mu sync.Mutex
	seen := map[int]int{}
	var inflight, maxInflight atomic.Int64

	r, err := Run(context.Background(), Config{Requests: want, Concurrency: 8},
		func(_ context.Context, seq int) error {
			cur := inflight.Add(1)
			for {
				m := maxInflight.Load()
				if cur <= m || maxInflight.CompareAndSwap(m, cur) {
					break
				}
			}
			defer inflight.Add(-1)
			mu.Lock()
			seen[seq]++
			mu.Unlock()
			if seq%10 == 3 {
				return errors.New("boom")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != want {
		t.Fatalf("completed %d requests, want %d", r.Requests, want)
	}
	if r.Errors != want/10 {
		t.Fatalf("errors %d, want %d", r.Errors, want/10)
	}
	for i := 0; i < want; i++ {
		if seen[i] != 1 {
			t.Fatalf("seq %d executed %d times", i, seen[i])
		}
	}
	if m := maxInflight.Load(); m > 8 {
		t.Fatalf("observed %d in flight, configured 8", m)
	}
}

func TestRunNeedsABound(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, func(context.Context, int) error { return nil }); err == nil {
		t.Fatal("unbounded config accepted")
	}
}

// A duration-bounded run stops admitting new requests after the budget
// but never cancels in-flight work: with do slower than the budget,
// every started request still completes and is counted.
func TestRunDurationBoundedFinishesInflight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		for i := 0; i < 3; i++ {
			<-started
		}
		// All workers are mid-request; let the 20ms admission budget
		// lapse before releasing them.
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	r, err := Run(context.Background(), Config{Duration: 20 * time.Millisecond, Concurrency: 3},
		func(ctx context.Context, _ int) error {
			started <- struct{}{}
			<-release
			return ctx.Err() // nil unless the run context was cancelled
		})
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 3 {
		t.Fatalf("completed %d, want exactly the 3 first-wave requests", r.Requests)
	}
	if r.Errors != 0 {
		t.Fatalf("%d self-inflicted errors from the duration bound", r.Errors)
	}
}

// Limiter bucket arithmetic under a fake clock: a drained bucket makes
// the next waiter sleep exactly the refill shortfall, and tokens cap at
// the burst depth.
func TestLimiterTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	var slept []time.Duration
	l := NewLimiter(10, 2) // 10/s, burst 2
	l.now = func() time.Time { return now }
	l.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		now = now.Add(d)
		return nil
	}
	ctx := context.Background()

	// Burst drains without sleeping.
	for i := 0; i < 2; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if len(slept) != 0 {
		t.Fatalf("burst waits slept %v", slept)
	}
	// Third waiter owes one full token at 10/s = 100ms.
	if err := l.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 100*time.Millisecond {
		t.Fatalf("drained wait slept %v, want [100ms]", slept)
	}
	// A long idle period refills only to the burst depth.
	now = now.Add(time.Hour)
	slept = nil
	for i := 0; i < 2; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if len(slept) != 0 {
		t.Fatalf("post-idle burst slept %v", slept)
	}
	if err := l.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 100*time.Millisecond {
		t.Fatalf("bucket did not cap at burst: slept %v", slept)
	}
}

// A cancelled waiter returns its reservation so survivors are not slowed.
func TestLimiterCancelReturnsReservation(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewLimiter(10, 1)
	l.now = func() time.Time { return now }
	cancelled := errors.New("cancelled")
	l.sleep = func(context.Context, time.Duration) error { return cancelled }
	ctx := context.Background()

	if err := l.Wait(ctx); err != nil { // drain the burst
		t.Fatal(err)
	}
	if err := l.Wait(ctx); !errors.Is(err, cancelled) {
		t.Fatalf("cancelled wait returned %v", err)
	}
	// The returned token plus 100ms of refill admits the next waiter
	// with only its own 100ms shortfall — not 200ms of inherited debt.
	var slept []time.Duration
	l.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		now = now.Add(d)
		return nil
	}
	if err := l.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 100*time.Millisecond {
		t.Fatalf("post-cancel wait slept %v, want [100ms]", slept)
	}
}

// Unlimited and nil limiters admit immediately.
func TestLimiterUnlimited(t *testing.T) {
	ctx := context.Background()
	if err := NewLimiter(0, 1).Wait(ctx); err != nil {
		t.Fatal(err)
	}
	var l *Limiter
	if err := l.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// The real-clock rate limit holds end to end: 40 requests at 2000/s
// from a burst of 1 must take at least ~19ms of admission spacing.
func TestRunRateLimited(t *testing.T) {
	t0 := time.Now()
	r, err := Run(context.Background(), Config{Requests: 40, Concurrency: 4, Rate: 2000},
		func(context.Context, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 40 {
		t.Fatalf("completed %d", r.Requests)
	}
	if elapsed := time.Since(t0); elapsed < 15*time.Millisecond {
		t.Fatalf("40 requests at 2000/s finished in %v — limiter not applied", elapsed)
	}
}
