package grid

import (
	"crypto/sha256"
	"fmt"
	"reflect"
	"sync/atomic"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/outage"
	"backuppower/internal/resultstore"
	"backuppower/internal/units"
)

// rowStoreBox wraps the Store interface so it can sit behind an atomic
// pointer (interfaces are not directly atomically swappable).
type rowStoreBox struct{ s resultstore.Store }

// rowStorePtr holds the process-global row store. Like core's scenario
// tier it defaults to absent: the zero configuration dispatches every row
// exactly as before the store existed.
var rowStorePtr atomic.Pointer[rowStoreBox]

// SetRowStore attaches (or, with nil, detaches) a persistent row store
// consulted by every Runner before dispatch. Serving binaries call it
// once at startup from -store-dir; the caller owns Close. The same
// physical store typically also backs core.SetResultStore — the row
// namespace ('R') and scenario namespace ('S') share one WAL and block
// sequence without colliding.
func SetRowStore(s resultstore.Store) {
	if s == nil {
		rowStorePtr.Store(nil)
		return
	}
	rowStorePtr.Store(&rowStoreBox{s: s})
}

// rowStore returns the attached row store, or nil.
func rowStore() resultstore.Store {
	if b := rowStorePtr.Load(); b != nil {
		return b.s
	}
	return nil
}

// storableRow reports whether a point can be fingerprinted for the
// persistent store: its technique must be a flat comparable value (the
// same rule core's memo cache applies) so the %#v rendering in
// rowInvariant is deterministic. Non-storable rows simply dispatch as if
// no store were attached.
func storableRow(p *Point) bool {
	return p.Technique == nil || reflect.TypeOf(p.Technique).Comparable()
}

// rowInvariant digests the outage-invariant row coordinates — everything
// identifying the row except its outage and its plan-local index. The
// index is deliberately excluded: the same point reached from two
// different grid specs shares one stored row, and the index is re-stamped
// at emission. The "row/v1" prefix versions the digest.
func rowInvariant(op string, p *Point) [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "row/v1|op=%s|servers=%d|load=%#v|hascfg=%t|cfg=%#v|family=%s|tech=%T%#v",
		op, p.Servers, p.Workload, p.HasConfig, p.Config, p.Family, p.Technique, p.Technique)
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// processInvariant digests a process row's coordinates: the point-row
// invariant content plus the full process spec (sans seed, which is the
// key stamp the way the outage is for point rows). The distinct
// "prow/v1" prefix and the 'P' namespace byte together guarantee a
// process row's fingerprint can never alias a point row's.
func processInvariant(op string, p *Point) [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "prow/v1|op=%s|servers=%d|load=%#v|hascfg=%t|cfg=%#v|family=%s|tech=%T%#v|draws=%d|arr=%#v|dur=%#v|corr=%v",
		op, p.Servers, p.Workload, p.HasConfig, p.Config, p.Family, p.Technique, p.Technique,
		p.Process.Draws, p.Process.Arrival, p.Process.Duration, p.Process.Correlation)
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// rowKey is the persistent store key for one plan row: the 'R' namespace
// stamped with the outage for point rows, the 'P' namespace stamped with
// the process seed for process rows.
func rowKey(op string, p *Point) resultstore.Key {
	if p.Process != nil {
		return resultstore.NewKey(resultstore.NSProcessRow, processInvariant(op, p), p.Process.Seed)
	}
	return resultstore.NewKey(resultstore.NSRow, rowInvariant(op, p), int64(p.Outage))
}

// storedFromRow converts a successfully evaluated row to its persistent
// form. ok is false for rows that are not stored: row-level errors
// (reruns retry them) and traced results (never produced by the runner).
func storedFromRow(op string, row *RowResult) (resultstore.StoredRow, bool) {
	if row.Err != nil {
		return resultstore.StoredRow{}, false
	}
	p := &row.Point
	sr := resultstore.StoredRow{
		Op:        op,
		Servers:   p.Servers,
		Workload:  p.Workload.Name,
		HasConfig: p.HasConfig,
		Family:    p.Family,
		OutageNS:  int64(p.Outage),
	}
	if p.HasConfig {
		sr.Config = p.Config.Name
	}
	if p.Technique != nil {
		sr.Technique = p.Technique.Name()
	}
	switch op {
	case OpSize:
		sr.Feasible = row.Feasible
		if row.Feasible {
			sr.Sizing = &resultstore.StoredSizing{
				Technique: row.Sizing.Technique,
				Backup:    row.Sizing.Backup,
				Result:    row.Sizing.Result,
				NormCost:  row.Sizing.NormCost,
			}
		}
	case OpBest:
		sr.Best = row.Best
		r := row.Result
		sr.Result = &r
	default: // OpEvaluate
		if p.Process != nil {
			if row.Process == nil {
				return resultstore.StoredRow{}, false
			}
			sr.Process = storedProcess(p.Process, row.Process)
		} else {
			r := row.Result
			sr.Result = &r
		}
	}
	return sr, true
}

// storedProcess flattens a resolved process spec plus its evaluation
// into the store's model-free payload form.
func storedProcess(p *outage.Process, r *core.ProcessResult) *resultstore.StoredProcess {
	return &resultstore.StoredProcess{
		Seed:           p.Seed,
		Draws:          p.Draws,
		ArrivalKind:    p.Arrival.Kind,
		ArrivalMeanNS:  int64(p.Arrival.Mean),
		ArrivalShape:   p.Arrival.Shape,
		DurationKind:   p.Duration.Kind,
		DurationMeanNS: int64(p.Duration.Mean),
		DurationShape:  p.Duration.Shape,
		Correlation:    p.Correlation,

		Events:             r.Events,
		Availability:       r.Availability,
		ExpectedDowntimeNS: int64(r.ExpectedDowntime),
		DowntimeP50NS:      int64(r.DowntimeP50),
		DowntimeP95NS:      int64(r.DowntimeP95),
		DowntimeP99NS:      int64(r.DowntimeP99),
		DowntimeMaxNS:      int64(r.DowntimeMax),
		SurvivalRate:       r.SurvivalRate,
		Perf:               r.Perf,
		EnergyShortfallWh:  float64(r.EnergyShortfallWh),
		NormCost:           r.Cost,
	}
}

// processFromStored reconstructs the process spec a stored row was
// evaluated against (the coordinate side of StoredProcess).
func processFromStored(sp *resultstore.StoredProcess) *outage.Process {
	return &outage.Process{
		Seed:  sp.Seed,
		Draws: sp.Draws,
		Arrival: outage.Dist{
			Kind:  sp.ArrivalKind,
			Mean:  time.Duration(sp.ArrivalMeanNS),
			Shape: sp.ArrivalShape,
		},
		Duration: outage.Dist{
			Kind:  sp.DurationKind,
			Mean:  time.Duration(sp.DurationMeanNS),
			Shape: sp.DurationShape,
		},
		Correlation: sp.Correlation,
	}
}

// processResultFromStored reconstructs the core.ProcessResult payload of
// a stored process row.
func processResultFromStored(sr *resultstore.StoredRow) core.ProcessResult {
	sp := sr.Process
	return core.ProcessResult{
		Technique:         sr.Technique,
		Config:            sr.Config,
		Workload:          sr.Workload,
		Draws:             sp.Draws,
		Events:            sp.Events,
		Availability:      sp.Availability,
		ExpectedDowntime:  time.Duration(sp.ExpectedDowntimeNS),
		DowntimeP50:       time.Duration(sp.DowntimeP50NS),
		DowntimeP95:       time.Duration(sp.DowntimeP95NS),
		DowntimeP99:       time.Duration(sp.DowntimeP99NS),
		DowntimeMax:       time.Duration(sp.DowntimeMaxNS),
		SurvivalRate:      sp.SurvivalRate,
		Perf:              sp.Perf,
		EnergyShortfallWh: units.WattHours(sp.EnergyShortfallWh),
		Cost:              sp.NormCost,
	}
}

// rowFromStored reconstructs a RowResult from a stored payload, cross-
// checking the stored coordinates against the requesting point (the
// 120-bit fingerprint makes a mismatch astronomically unlikely, but a
// mismatch must degrade to a recompute, never to a wrong row). The
// point — with its plan-local index — comes from the live plan, so the
// emitted row is byte-identical to a cold evaluation.
func rowFromStored(op string, p Point, sr *resultstore.StoredRow) (RowResult, bool) {
	if sr.Op != op || sr.Servers != p.Servers || sr.Workload != p.Workload.Name ||
		sr.HasConfig != p.HasConfig || sr.Family != p.Family || sr.OutageNS != int64(p.Outage) {
		return RowResult{}, false
	}
	if p.HasConfig && sr.Config != p.Config.Name {
		return RowResult{}, false
	}
	wantTech := ""
	if p.Technique != nil {
		wantTech = p.Technique.Name()
	}
	if sr.Technique != wantTech {
		return RowResult{}, false
	}
	if (p.Process == nil) != (sr.Process == nil) {
		return RowResult{}, false
	}
	if p.Process != nil && *processFromStored(sr.Process) != *p.Process {
		return RowResult{}, false
	}
	row := RowResult{Point: p}
	switch op {
	case OpSize:
		row.Feasible = sr.Feasible
		if sr.Feasible {
			if sr.Sizing == nil {
				return RowResult{}, false
			}
			row.Sizing = core.OperatingPoint{
				Technique: sr.Sizing.Technique,
				Backup:    sr.Sizing.Backup,
				Result:    sr.Sizing.Result,
				NormCost:  sr.Sizing.NormCost,
			}
		}
	case OpBest:
		if sr.Result == nil {
			return RowResult{}, false
		}
		row.Best = sr.Best
		row.Result = *sr.Result
	default: // OpEvaluate
		if p.Process != nil {
			pr := processResultFromStored(sr)
			row.Process = &pr
			break
		}
		if sr.Result == nil {
			return RowResult{}, false
		}
		row.Result = *sr.Result
	}
	return row, true
}

// DTOFromStored converts a stored row to the wire RowDTO shape — the
// exact bytes the sweep surfaces stream for the same row, with Index 0
// (stored rows are plan-independent; /v1/results readers identify rows by
// coordinates, not position). Shared with httpapi so the read surface
// cannot drift from the sweep encoding.
func DTOFromStored(sr *resultstore.StoredRow) RowDTO {
	d := RowDTO{
		Op:        sr.Op,
		Servers:   sr.Servers,
		Workload:  sr.Workload,
		Family:    sr.Family,
		Technique: sr.Technique,
	}
	if sr.Process != nil {
		pd := ProcessDTOFromProcess(processFromStored(sr.Process))
		d.Process = &pd
	} else {
		d.Outage = time.Duration(sr.OutageNS).String()
	}
	if sr.HasConfig {
		d.Config = sr.Config
	}
	switch sr.Op {
	case OpSize:
		feasible := sr.Feasible
		d.Feasible = &feasible
		if sr.Sizing != nil {
			d.Technique = sr.Sizing.Technique
			d.NormCost = sr.Sizing.NormCost
			b := NewBackupDTO(sr.Sizing.Backup)
			d.Backup = &b
			r := NewResultDTO(sr.Sizing.Result)
			d.Result = &r
		}
	case OpBest:
		d.Best = sr.Best
		if sr.Result != nil {
			r := NewResultDTO(*sr.Result)
			d.Result = &r
		}
	default: // OpEvaluate
		if sr.Process != nil {
			r := NewProcessResultDTO(processResultFromStored(sr))
			d.ProcessResult = &r
		} else if sr.Result != nil {
			r := NewResultDTO(*sr.Result)
			d.Result = &r
		}
	}
	return d
}

// shardStoreState carries one shard's store bookkeeping from the consult
// pass to the write-back pass: the per-point keys (valid where keyed is
// set) so cold rows write through without re-hashing.
type shardStoreState struct {
	keys  []resultstore.Key
	keyed []bool
}

// consultStore splits a shard into warm rows (served from the store) and
// cold points (still to dispatch). merged holds warm rows at their shard
// positions; coldPts/coldPos list the rest in shard order. The invariant
// digest is amortized across runs of batchable points, mirroring the
// batch dispatch itself: a dense outage axis hashes its coordinates once.
func consultStore(store resultstore.Store, op string, pts []Point, merged []RowResult) (coldPts []Point, coldPos []int, st shardStoreState) {
	st = shardStoreState{
		keys:  make([]resultstore.Key, len(pts)),
		keyed: make([]bool, len(pts)),
	}
	var inv [32]byte
	haveInv := false
	for i := range pts {
		p := &pts[i]
		if !storableRow(p) {
			haveInv = false
			coldPts = append(coldPts, *p)
			coldPos = append(coldPos, i)
			continue
		}
		if p.Process != nil {
			// Process rows never batch, so there is nothing to amortize:
			// each gets its own 'P'-namespace key.
			haveInv = false
			st.keys[i] = rowKey(op, p)
		} else {
			if !haveInv || (i > 0 && !batchable(&pts[i-1], p)) {
				inv = rowInvariant(op, p)
				haveInv = true
			}
			st.keys[i] = resultstore.NewKey(resultstore.NSRow, inv, int64(p.Outage))
		}
		st.keyed[i] = true
		if payload, ok := store.Get(st.keys[i]); ok {
			if sr, err := resultstore.DecodeRow(payload); err == nil {
				if row, ok := rowFromStored(op, *p, &sr); ok {
					merged[i] = row
					continue
				}
			}
		}
		coldPts = append(coldPts, *p)
		coldPos = append(coldPos, i)
	}
	return coldPts, coldPos, st
}

// writeBack persists one freshly computed row (best-effort; encode
// refusals and write failures degrade to a future recompute).
func (st *shardStoreState) writeBack(store resultstore.Store, op string, pos int, row *RowResult) {
	if !st.keyed[pos] {
		return
	}
	sr, ok := storedFromRow(op, row)
	if !ok {
		return
	}
	payload, err := resultstore.EncodeRow(sr)
	if err != nil {
		return
	}
	store.Put(st.keys[pos], payload)
}
