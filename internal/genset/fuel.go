package genset

import (
	"fmt"
	"time"

	"backuppower/internal/units"
)

// FuelModel prices diesel generator operation. Section 3 asserts that
// op-ex (fuel, losses) "is likely to be negligible since these are rarely
// called upon, compared to the cap-ex" — this model makes that claim
// checkable instead of assumed.
type FuelModel struct {
	// FullLoadLPerKWh is the specific consumption at rated load (a Willans
	// line's slope); typical industrial diesels burn ~0.22 L/kWh.
	FullLoadLPerKWh float64
	// NoLoadFraction is the idle burn as a fraction of the full-load rate
	// (engines spin and pump regardless of electrical load).
	NoLoadFraction float64
	// DieselPricePerL is the fuel price.
	DieselPricePerL float64
	// MaintenanceFracPerYear is the annual upkeep (monthly test runs,
	// filters, service contracts) as a fraction of the DG cap-ex.
	MaintenanceFracPerYear float64
}

// DefaultFuel returns representative 2014 numbers.
func DefaultFuel() FuelModel {
	return FuelModel{
		FullLoadLPerKWh:        0.22,
		NoLoadFraction:         0.20,
		DieselPricePerL:        1.0,
		MaintenanceFracPerYear: 0.05,
	}
}

// Validate checks the model.
func (f FuelModel) Validate() error {
	switch {
	case f.FullLoadLPerKWh <= 0:
		return fmt.Errorf("genset: non-positive consumption")
	case f.NoLoadFraction < 0 || f.NoLoadFraction >= 1:
		return fmt.Errorf("genset: no-load fraction %v out of [0,1)", f.NoLoadFraction)
	case f.DieselPricePerL < 0:
		return fmt.Errorf("genset: negative fuel price")
	case f.MaintenanceFracPerYear < 0:
		return fmt.Errorf("genset: negative maintenance fraction")
	}
	return nil
}

// Consumption returns liters burned running the generator at `load` for
// `dur`: the no-load burn of the installed capacity plus the load-
// proportional term (Willans line).
func (f FuelModel) Consumption(c Config, load units.Watts, dur time.Duration) float64 {
	if !c.Provisioned() || dur <= 0 {
		return 0
	}
	if load > c.PowerCapacity {
		load = c.PowerCapacity
	}
	base := f.NoLoadFraction * f.FullLoadLPerKWh * c.PowerCapacity.KW()
	slope := (1 - f.NoLoadFraction) * f.FullLoadLPerKWh * load.KW()
	return (base + slope) * dur.Hours()
}

// TankLiters sizes the fuel tank for the config's FuelRuntime at full load.
func (f FuelModel) TankLiters(c Config) float64 {
	return f.Consumption(c, c.PowerCapacity, c.FuelRuntime)
}

// OutageCost prices one outage ride: fuel burned carrying `load` for the
// portion of the outage after the DG transfer completes.
func (f FuelModel) OutageCost(c Config, load units.Watts, outage time.Duration) float64 {
	run := outage - c.TransferCompleteAt()
	if run < 0 {
		run = 0
	}
	return f.Consumption(c, load, run) * f.DieselPricePerL
}

// AnnualOpEx prices a year of ownership: fuel for the expected yearly
// outage hours plus monthly test runs plus maintenance.
func (f FuelModel) AnnualOpEx(c Config, load units.Watts, outagePerYear time.Duration) units.DollarsPerYear {
	if !c.Provisioned() {
		return 0
	}
	fuel := f.OutageCost(c, load, outagePerYear+c.TransferCompleteAt())
	// Monthly 30-minute test runs at 30% load (standard NFPA practice).
	test := 12 * f.Consumption(c, c.PowerCapacity*3/10, 30*time.Minute) * f.DieselPricePerL
	maint := f.MaintenanceFracPerYear * float64(c.AnnualCost())
	return units.DollarsPerYear(fuel + test + maint)
}

// OpExNegligible reports whether annual op-ex stays under the given
// fraction of cap-ex — the paper's Section 3 claim at threshold 0.15.
func (f FuelModel) OpExNegligible(c Config, load units.Watts, outagePerYear time.Duration, threshold float64) bool {
	if !c.Provisioned() {
		return true
	}
	return float64(f.AnnualOpEx(c, load, outagePerYear)) < threshold*float64(c.AnnualCost())
}
