package grid

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/sweep"
)

func intp(v int) *int           { return &v }
func boolp(v bool) *bool        { return &v }
func floatp(v float64) *float64 { return &v }

func compileOK(t *testing.T, spec Spec) *Plan {
	t.Helper()
	plan, err := Compile(spec, CompileOptions{DefaultServers: 8})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return plan
}

func TestCompileCrossOrder(t *testing.T) {
	plan := compileOK(t, Spec{
		Workloads: []string{"specjbb", "memcached"},
		Configs:   []ConfigDTO{{Name: "MaxPerf"}, {Name: "NoDG"}},
		Techniques: []TechniqueDTO{
			{Name: "baseline"},
			{Name: "throttling", PState: intp(2)},
		},
		Outages: []string{"30s", "5m"},
	})
	if plan.Op != OpEvaluate {
		t.Fatalf("default op = %q", plan.Op)
	}
	if len(plan.Points) != 2*2*2*2 {
		t.Fatalf("got %d points, want 16", len(plan.Points))
	}
	// Innermost axis is outages, then techniques, then configs, then
	// workloads; the servers axis defaulted to one value.
	p0, p1, p2 := plan.Points[0], plan.Points[1], plan.Points[2]
	if p0.Outage != 30*time.Second || p1.Outage != 5*time.Minute {
		t.Fatalf("outage order wrong: %v then %v", p0.Outage, p1.Outage)
	}
	if p0.Technique.Name() != p1.Technique.Name() || p2.Technique.Name() == p0.Technique.Name() {
		t.Fatalf("technique should advance after outages: %s, %s, %s",
			p0.Technique.Name(), p1.Technique.Name(), p2.Technique.Name())
	}
	if p0.Servers != 8 {
		t.Fatalf("default servers = %d, want 8", p0.Servers)
	}
	last := plan.Points[15]
	if last.Workload.Name != "memcached" || last.Config.Name != "NoDG" || last.Outage != 5*time.Minute {
		t.Fatalf("last point wrong: %+v", last)
	}
	for i, p := range plan.Points {
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
		if !p.HasConfig {
			t.Fatalf("evaluate point %d missing config", i)
		}
	}
}

func TestCompileZipAndBroadcast(t *testing.T) {
	plan := compileOK(t, Spec{
		Op:         OpEvaluate,
		Workloads:  []string{"specjbb", "memcached", "web-search"},
		Configs:    []ConfigDTO{{Name: "MaxPerf"}}, // length-1 axes broadcast
		Techniques: []TechniqueDTO{{Name: "baseline"}},
		Outages:    []string{"30s", "5m", "2h"},
		Zip:        true,
	})
	if len(plan.Points) != 3 {
		t.Fatalf("zip of 3-row axes gave %d rows", len(plan.Points))
	}
	for i, wantW := range []string{"specjbb", "memcached", "web-search"} {
		if plan.Points[i].Workload.Name != wantW {
			t.Fatalf("row %d workload %q, want %q", i, plan.Points[i].Workload.Name, wantW)
		}
		if plan.Points[i].Config.Name != "MaxPerf" {
			t.Fatalf("row %d config not broadcast", i)
		}
	}
	if plan.Points[2].Outage != 2*time.Hour {
		t.Fatalf("row 2 outage %v", plan.Points[2].Outage)
	}
}

func TestCompileServersAxis(t *testing.T) {
	plan := compileOK(t, Spec{
		Servers:    []int{4, 16},
		Workloads:  []string{"specjbb"},
		Configs:    []ConfigDTO{{Name: "MaxPerf"}},
		Techniques: []TechniqueDTO{{Name: "baseline"}},
		Outages:    []string{"30s"},
	})
	if len(plan.Points) != 2 {
		t.Fatalf("got %d points", len(plan.Points))
	}
	// Named configurations must scale with each row's cluster size.
	small, big := plan.Points[0], plan.Points[1]
	if small.Servers != 4 || big.Servers != 16 {
		t.Fatalf("server order: %d, %d", small.Servers, big.Servers)
	}
	if small.Config.UPS.PowerCapacity >= big.Config.UPS.PowerCapacity {
		t.Fatalf("MaxPerf did not scale with cluster size: %v vs %v",
			small.Config.UPS.PowerCapacity, big.Config.UPS.PowerCapacity)
	}
}

func TestCompileTechniqueVariants(t *testing.T) {
	plan := compileOK(t, Spec{
		Op:                OpSize,
		Workloads:         []string{"specjbb"},
		TechniqueVariants: true,
		Outages:           []string{"30s", "30m"},
	})
	nvariants := len(core.New(1).TechVariants())
	if len(plan.Points) != nvariants*2 {
		t.Fatalf("got %d points, want %d", len(plan.Points), nvariants*2)
	}
	for _, p := range plan.Points {
		if p.Family == "" {
			t.Fatalf("variant point without family: %+v", p)
		}
		if p.HasConfig {
			t.Fatal("size point carries a config")
		}
	}
}

func TestCompileBestOp(t *testing.T) {
	plan := compileOK(t, Spec{
		Op:        OpBest,
		Workloads: []string{"specjbb"},
		Configs:   []ConfigDTO{{Name: "MaxPerf"}},
		Outages:   []string{"30s"},
	})
	if len(plan.Points) != 1 || plan.Points[0].Technique != nil {
		t.Fatalf("best plan wrong: %+v", plan.Points)
	}
}

func TestCompileCustomConfig(t *testing.T) {
	plan := compileOK(t, Spec{
		Workloads:  []string{"specjbb"},
		Configs:    []ConfigDTO{{UPSPower: "10kW", UPSRuntime: "20m"}},
		Techniques: []TechniqueDTO{{Name: "sleep", LowPower: boolp(true)}},
		Outages:    []string{"10m"},
	})
	b := plan.Points[0].Config
	if b.UPS.PowerCapacity != 10000 || b.UPS.Runtime != 20*time.Minute || b.DG.Provisioned() {
		t.Fatalf("custom config wrong: %+v", b)
	}
}

func TestCompileFilter(t *testing.T) {
	base := Spec{
		Workloads:  []string{"specjbb"},
		Configs:    []ConfigDTO{{Name: "MaxPerf"}},
		Techniques: []TechniqueDTO{{Name: "baseline"}},
		Outages:    []string{"30s", "5m", "30m", "2h"},
	}

	spec := base
	spec.Filter = &Filter{MinOutage: "1m", MaxOutage: "1h"}
	plan := compileOK(t, spec)
	if len(plan.Points) != 2 {
		t.Fatalf("band filter kept %d rows", len(plan.Points))
	}
	if plan.Points[0].Outage != 5*time.Minute || plan.Points[0].Index != 0 {
		t.Fatalf("filtered rows misnumbered: %+v", plan.Points[0])
	}

	spec = base
	spec.Filter = &Filter{SampleEvery: 2}
	plan = compileOK(t, spec)
	if len(plan.Points) != 2 || plan.Points[0].Outage != 30*time.Second || plan.Points[1].Outage != 30*time.Minute {
		t.Fatalf("sampling filter wrong: %+v", plan.Points)
	}
}

func TestCompileMaxRows(t *testing.T) {
	spec := Spec{
		Workloads:  []string{"specjbb"},
		Configs:    []ConfigDTO{{Name: "MaxPerf"}},
		Techniques: []TechniqueDTO{{Name: "baseline"}},
		Outages:    []string{"30s", "5m", "30m"},
		MaxRows:    2,
	}
	_, err := Compile(spec, CompileOptions{DefaultServers: 8})
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Code != "too_many_rows" {
		t.Fatalf("want too_many_rows, got %v", err)
	}
	// The request bound can tighten the compiler's but never loosen it.
	spec.MaxRows = 1 << 40
	if _, err := Compile(spec, CompileOptions{DefaultServers: 8, MaxRows: 2}); err == nil {
		t.Fatal("request max_rows loosened the compiler bound")
	}
}

func TestCompileOversizeCrossProduct(t *testing.T) {
	// Huge declared axes must be rejected from the lengths alone — before
	// any row is materialized — without overflow.
	many := make([]string, 10000)
	for i := range many {
		many[i] = "30s"
	}
	servers := make([]int, 10000)
	for i := range servers {
		servers[i] = 1 + i
	}
	spec := Spec{
		Servers:    servers,
		Workloads:  []string{"specjbb", "memcached", "web-search", "speccpu-mcf8"},
		Configs:    []ConfigDTO{{Name: "MaxPerf"}, {Name: "NoDG"}},
		Techniques: []TechniqueDTO{{Name: "baseline"}},
		Outages:    many,
	}
	_, err := Compile(spec, CompileOptions{DefaultServers: 8})
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Code != "too_many_rows" {
		t.Fatalf("want too_many_rows, got %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	valid := Spec{
		Workloads:  []string{"specjbb"},
		Configs:    []ConfigDTO{{Name: "MaxPerf"}},
		Techniques: []TechniqueDTO{{Name: "baseline"}},
		Outages:    []string{"30s"},
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		code   string
		field  string
	}{
		{"unknown op", func(s *Spec) { s.Op = "minimize" }, "invalid_field", "op"},
		{"size with configs", func(s *Spec) { s.Op = OpSize }, "invalid_field", "configs"},
		{"best with techniques", func(s *Spec) { s.Op = OpBest }, "invalid_field", "techniques"},
		{"variants plus explicit", func(s *Spec) { s.TechniqueVariants = true }, "invalid_field", "techniques"},
		{"variants zipped", func(s *Spec) { s.Techniques = nil; s.TechniqueVariants = true; s.Zip = true },
			"invalid_field", "technique_variants"},
		{"bad server count", func(s *Spec) { s.Servers = []int{8, 0} }, "out_of_range", "servers[1]"},
		{"no workloads", func(s *Spec) { s.Workloads = nil }, "missing_field", "workloads"},
		{"unknown workload", func(s *Spec) { s.Workloads = []string{"specjbb", "doom"} },
			"unknown_workload", "workloads[1]"},
		{"no outages", func(s *Spec) { s.Outages = nil }, "missing_field", "outages"},
		{"bad outage", func(s *Spec) { s.Outages = []string{"30s", "soon"} }, "invalid_duration", "outages[1]"},
		{"negative outage", func(s *Spec) { s.Outages = []string{"-5m"} }, "out_of_range", "outages[0]"},
		{"absurd outage", func(s *Spec) { s.Outages = []string{"900h"} }, "out_of_range", "outages[0]"},
		{"no techniques", func(s *Spec) { s.Techniques = nil }, "missing_field", "techniques"},
		{"unknown technique", func(s *Spec) { s.Techniques = []TechniqueDTO{{Name: "prayer"}} },
			"unknown_technique", "techniques[0].name"},
		{"inapplicable param", func(s *Spec) { s.Techniques = []TechniqueDTO{{Name: "baseline", PState: intp(2)}} },
			"invalid_field", "techniques[0].pstate"},
		{"pstate out of range", func(s *Spec) { s.Techniques = []TechniqueDTO{{Name: "throttling", PState: intp(99)}} },
			"out_of_range", "techniques[0].pstate"},
		{"bad save kind", func(s *Spec) {
			s.Techniques = []TechniqueDTO{{Name: "throttle-then-save", PState: intp(2), Save: "pause"}}
		}, "invalid_field", "techniques[0].save"},
		{"bad active fraction", func(s *Spec) {
			s.Techniques = []TechniqueDTO{{Name: "migration-then-sleep", ActiveFraction: floatp(1.5)}}
		}, "out_of_range", "techniques[0].active_fraction"},
		{"no configs", func(s *Spec) { s.Configs = nil }, "missing_field", "configs"},
		{"unknown config", func(s *Spec) { s.Configs = []ConfigDTO{{Name: "Cheapest"}} },
			"unknown_config", "configs[0].name"},
		{"config both forms", func(s *Spec) { s.Configs = []ConfigDTO{{Name: "MaxPerf", DGPower: "1MW"}} },
			"invalid_config", "configs[0]"},
		{"bad config power", func(s *Spec) { s.Configs = []ConfigDTO{{UPSPower: "ten"}} },
			"invalid_power", "configs[0].ups_power"},
		{"runtime without power", func(s *Spec) { s.Configs = []ConfigDTO{{UPSRuntime: "30m"}} },
			"invalid_config", "configs[0].ups_runtime"},
		{"absurd capacity", func(s *Spec) { s.Configs = []ConfigDTO{{UPSPower: "900GW"}} },
			"out_of_range", "configs[0]"},
		{"zip length mismatch", func(s *Spec) {
			s.Zip = true
			s.Workloads = []string{"specjbb", "memcached"}
			s.Outages = []string{"30s", "5m", "2h"}
		}, "invalid_field", "outages"},
		{"negative max rows", func(s *Spec) { s.MaxRows = -1 }, "out_of_range", "max_rows"},
		{"bad filter duration", func(s *Spec) { s.Filter = &Filter{MinOutage: "soon"} },
			"invalid_duration", "filter.min_outage"},
		{"bad filter max", func(s *Spec) { s.Filter = &Filter{MaxOutage: "later"} },
			"invalid_duration", "filter.max_outage"},
		{"negative sampling", func(s *Spec) { s.Filter = &Filter{SampleEvery: -2} },
			"out_of_range", "filter.sample_every"},
		{"bad budget", func(s *Spec) {
			s.Techniques = []TechniqueDTO{{Name: "capped-throttling", Budget: "lots"}}
		}, "invalid_power", "techniques[0].budget"},
		{"missing technique name", func(s *Spec) { s.Techniques = []TechniqueDTO{{}} },
			"missing_field", "techniques[0].name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := valid
			tc.mutate(&spec)
			_, err := Compile(spec, CompileOptions{DefaultServers: 8})
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("want *FieldError, got %v", err)
			}
			if fe.Code != tc.code || fe.Field != tc.field {
				t.Fatalf("got (%s, %s): %s; want (%s, %s)", fe.Code, fe.Field, fe.Message, tc.code, tc.field)
			}
			if fe.Error() == "" {
				t.Fatal("empty error text")
			}
		})
	}
}

// runNDJSON compiles, runs, and encodes a spec at the given width and
// shard size.
func runNDJSON(t *testing.T, spec Spec, width, shardSize int) string {
	t.Helper()
	plan, err := Compile(spec, CompileOptions{DefaultServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sweep.WithWidth(context.Background(), width)
	rows, err := NewRunner(core.New(8)).Run(ctx, plan, RunOptions{ShardSize: shardSize})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, plan.Op, rows); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRunDeterministicAcrossWidthsAndShards is the tentpole's contract:
// identical bytes at any worker-pool width and any shard size, for every
// op.
func TestRunDeterministicAcrossWidthsAndShards(t *testing.T) {
	specs := map[string]Spec{
		"evaluate": {
			Workloads: []string{"specjbb", "memcached"},
			Configs:   []ConfigDTO{{Name: "MaxPerf"}, {Name: "NoDG"}, {Name: "LargeEUPS"}},
			Techniques: []TechniqueDTO{
				{Name: "baseline"},
				{Name: "throttling", PState: intp(3)},
				{Name: "sleep", LowPower: boolp(true)},
			},
			Outages: []string{"30s", "5m", "30m"},
		},
		"size": {
			Op:        OpSize,
			Workloads: []string{"specjbb"},
			Techniques: []TechniqueDTO{
				{Name: "throttling", PState: intp(6)},
				{Name: "hibernate"},
			},
			Outages: []string{"30s", "30m"},
		},
		"best": {
			Op:        OpBest,
			Workloads: []string{"memcached"},
			Configs:   []ConfigDTO{{Name: "MaxPerf"}, {Name: "MinCost"}},
			Outages:   []string{"5m"},
		},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			baseline := runNDJSON(t, spec, 1, 1)
			if baseline == "" {
				t.Fatal("empty output")
			}
			for _, cfg := range []struct{ width, shard int }{
				{1, 0}, {4, 1}, {8, 3}, {8, 0}, {2, 1000},
			} {
				if got := runNDJSON(t, spec, cfg.width, cfg.shard); got != baseline {
					t.Fatalf("width %d shard %d diverged from serial baseline", cfg.width, cfg.shard)
				}
			}
		})
	}
}

func TestRunnerDerivedFrameworks(t *testing.T) {
	spec := Spec{
		Servers:    []int{4, 8, 16},
		Workloads:  []string{"specjbb"},
		Configs:    []ConfigDTO{{Name: "MaxPerf"}},
		Techniques: []TechniqueDTO{{Name: "baseline"}},
		Outages:    []string{"30s"},
	}
	plan, err := Compile(spec, CompileOptions{DefaultServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(core.New(8))
	rows, err := r.Run(context.Background(), plan, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Err != nil {
			t.Fatalf("row %d: %v", row.Point.Index, row.Err)
		}
		if !row.Result.Survived {
			t.Fatalf("MaxPerf should survive 30s at %d servers", row.Point.Servers)
		}
	}
	if f := r.framework(8); f != r.base {
		t.Fatal("base scale did not reuse the base framework")
	}
	if f4, again := r.framework(4), r.framework(4); f4 != again {
		t.Fatal("derived framework not memoized")
	}
}

func TestRunProgress(t *testing.T) {
	spec := Spec{
		Workloads:  []string{"specjbb"},
		Configs:    []ConfigDTO{{Name: "MaxPerf"}},
		Techniques: []TechniqueDTO{{Name: "baseline"}},
		Outages:    []string{"30s", "1m", "5m", "10m", "30m"},
	}
	plan, err := Compile(spec, CompileOptions{DefaultServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var got []Progress
	_, err = NewRunner(core.New(8)).Run(context.Background(), plan, RunOptions{
		ShardSize: 2,
		Progress:  func(p Progress) { got = append(got, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Progress{
		{Shard: 1, Shards: 3, RowsDone: 2, Rows: 5},
		{Shard: 2, Shards: 3, RowsDone: 4, Rows: 5},
		{Shard: 3, Shards: 3, RowsDone: 5, Rows: 5},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d progress reports: %+v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("progress %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRunCancellation(t *testing.T) {
	spec := Spec{
		Op:                OpSize,
		Workloads:         []string{"specjbb"},
		TechniqueVariants: true,
		Outages:           []string{"30s", "5m", "30m", "1h", "2h"},
	}
	plan, err := Compile(spec, CompileOptions{DefaultServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	emitted := 0
	runErr := NewRunner(core.New(8)).RunStream(ctx, plan, RunOptions{ShardSize: 5},
		func(RowResult) error {
			emitted++
			if emitted == 5 {
				cancel() // mid-stream: remaining shards must not run
			}
			return nil
		})
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", runErr)
	}
	if emitted >= len(plan.Points) {
		t.Fatalf("cancellation did not stop the stream: %d of %d rows emitted", emitted, len(plan.Points))
	}
}

func TestRowDTOShapes(t *testing.T) {
	sizeSpec := Spec{
		Op:        OpSize,
		Workloads: []string{"specjbb"},
		Techniques: []TechniqueDTO{
			{Name: "throttling", PState: intp(6)},
			{Name: "baseline"},
		},
		Outages: []string{"2h"},
	}
	plan, err := Compile(sizeSpec, CompileOptions{DefaultServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := NewRunner(core.New(8)).Run(context.Background(), plan, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		d := NewRowDTO(OpSize, row)
		if d.Feasible == nil {
			t.Fatalf("size row %d without feasible flag", d.Index)
		}
		if *d.Feasible && (d.Backup == nil || d.Result == nil || d.NormCost == 0) {
			t.Fatalf("feasible size row %d missing payload: %+v", d.Index, d)
		}
		if !*d.Feasible && d.Backup != nil {
			t.Fatalf("infeasible size row %d carries a backup", d.Index)
		}
	}

	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, OpSize, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rows) {
		t.Fatalf("%d NDJSON lines for %d rows", len(lines), len(rows))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"index":`) {
			t.Fatalf("row line does not lead with index: %s", line)
		}
	}
}

func TestTechniqueCatalog(t *testing.T) {
	docs := TechniqueDocs()
	if len(docs) != len(TechniqueNames()) {
		t.Fatalf("catalog size %d != names %d", len(docs), len(TechniqueNames()))
	}
	for i := 1; i < len(docs); i++ {
		if docs[i-1].Name >= docs[i].Name {
			t.Fatalf("catalog unsorted at %q", docs[i].Name)
		}
	}
	for _, d := range docs {
		if d.Doc == "" {
			t.Fatalf("technique %q without doc", d.Name)
		}
	}
}

func TestResolveTechniqueNameNormalization(t *testing.T) {
	tech, err := ResolveTechnique(TechniqueDTO{Name: "Migration_Then_Sleep", ActiveFraction: floatp(0.5)}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if tech == nil || !strings.Contains(tech.Name(), "Migration") {
		t.Fatalf("normalized resolve gave %v", tech)
	}
}
