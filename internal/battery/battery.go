// Package battery models the UPS energy storage used by the paper: battery
// packs whose runtime is a nonlinear (Peukert-law) function of the imposed
// load. Section 3 / Figure 3 of the paper shows the key property this
// package captures — an APC 4 KW pack lasts 10 minutes at 100% load but 60
// minutes at 25% load (delivering 0.66 KWh vs 1 KWh) — and the paper's
// Sleep-L / Throttle+Sleep-L results rely on exactly that low-load stretch.
//
// The pack also models the Ragone-plot "base" energy capacity: composing
// cells to reach a power rating yields some energy for free (the paper's
// FreeRunTime of ~2 minutes at rated power for lead-acid), and extra battery
// modules can be added on top.
package battery

import (
	"errors"
	"fmt"
	"math"
	"time"

	"backuppower/internal/units"
)

// Technology captures a battery chemistry's discharge nonlinearity and
// its cost structure (Section 7 "newer battery technologies": Li-ion trades
// cheaper power for more expensive energy relative to lead-acid).
type Technology struct {
	Name string

	// PeukertExponent k models runtime(load) = ratedRuntime *
	// (ratedPower/load)^k. k = 1 is an ideal linear battery; lead-acid is
	// ~1.1-1.3. The default lead-acid value is calibrated to Figure 3.
	PeukertExponent float64

	// FreeRunTime is the base runtime at rated power that comes "for free"
	// when cells are composed to meet the power rating (Ragone plot).
	FreeRunTime time.Duration

	// PowerCostPerKWYear and EnergyCostPerKWhYear are amortized cap-ex
	// rates. Only the energy beyond the free base capacity is charged.
	PowerCostPerKWYear   float64
	EnergyCostPerKWhYear float64

	// MinLoadFraction is the smallest load (as a fraction of rated power)
	// at which the Peukert stretch still applies; below it the runtime is
	// capped at runtime(MinLoadFraction) to avoid predicting unphysical
	// multi-day runtimes from self-discharge-dominated regimes.
	MinLoadFraction float64
}

// LeadAcid is the paper's default technology, calibrated so a pack rated
// for 10 minutes at full load lasts 60 minutes at 25% load (Figure 3) and
// carries the Table 1 cost rates ($50/KW/yr power electronics amortized over
// 12 years, $50/KWh/yr batteries amortized over 4 years, 2 min free).
func LeadAcid() Technology {
	return Technology{
		Name:                 "lead-acid",
		PeukertExponent:      peukertFromTwoPoints(1.0, 10*time.Minute, 0.25, 60*time.Minute),
		FreeRunTime:          2 * time.Minute,
		PowerCostPerKWYear:   50,
		EnergyCostPerKWhYear: 50,
		MinLoadFraction:      0.02,
	}
}

// LiIon models the Section 7 discussion: flatter discharge curve (k closer
// to 1), cheaper power electronics per KW, pricier energy per KWh, and a
// smaller free base runtime (higher power density point on the Ragone plot).
func LiIon() Technology {
	return Technology{
		Name:                 "li-ion",
		PeukertExponent:      1.05,
		FreeRunTime:          1 * time.Minute,
		PowerCostPerKWYear:   40,
		EnergyCostPerKWhYear: 80,
		MinLoadFraction:      0.02,
	}
}

// peukertFromTwoPoints solves runtime(r1)/runtime(r2) = (r2/r1)^k for k
// given two (load-fraction, runtime) calibration points.
func peukertFromTwoPoints(r1 float64, t1 time.Duration, r2 float64, t2 time.Duration) float64 {
	return math.Log(float64(t2)/float64(t1)) / math.Log(r1/r2)
}

// Validate checks technology parameters.
func (t Technology) Validate() error {
	switch {
	case t.PeukertExponent < 1:
		return fmt.Errorf("battery: %s Peukert exponent %.3f < 1", t.Name, t.PeukertExponent)
	case t.FreeRunTime < 0:
		return fmt.Errorf("battery: %s negative free runtime", t.Name)
	case t.MinLoadFraction <= 0 || t.MinLoadFraction > 1:
		return fmt.Errorf("battery: %s min load fraction %.3f out of (0,1]", t.Name, t.MinLoadFraction)
	}
	return nil
}

// Pack is a provisioned battery: a power rating plus a rated runtime (the
// time the pack sustains its rated power). Everything else — runtime at
// partial load, effective deliverable energy, cost — derives from these.
type Pack struct {
	Tech         Technology
	RatedPower   units.Watts
	RatedRuntime time.Duration // runtime at RatedPower
}

// ErrNoCapacity is returned when draining a pack with no energy provisioned.
var ErrNoCapacity = errors.New("battery: pack has no capacity")

// NewPack builds a pack. A rated runtime below the technology's free base
// runtime is bumped up to it: the Ragone plot gives you that much anyway.
func NewPack(tech Technology, power units.Watts, runtime time.Duration) Pack {
	if runtime < tech.FreeRunTime && power > 0 {
		runtime = tech.FreeRunTime
	}
	return Pack{Tech: tech, RatedPower: power, RatedRuntime: runtime}
}

// RuntimeAt returns how long the pack lasts under a constant load using the
// Peukert relation. Loads above rated power return 0 (the UPS cannot source
// them); non-positive loads return the capped maximum stretch.
func (p Pack) RuntimeAt(load units.Watts) time.Duration {
	if p.RatedPower <= 0 || p.RatedRuntime <= 0 {
		return 0
	}
	if load > p.RatedPower*(1+1e-9) {
		return 0
	}
	frac := float64(load) / float64(p.RatedPower)
	if frac < p.Tech.MinLoadFraction {
		frac = p.Tech.MinLoadFraction
	}
	stretch := math.Pow(1/frac, p.Tech.PeukertExponent)
	return time.Duration(float64(p.RatedRuntime) * stretch)
}

// EffectiveEnergyAt returns the deliverable energy at a constant load. Note
// it grows as load drops — the Figure 3 effect (0.66 KWh at 100%, 1 KWh at
// 25% for the 4 KW / 10 min pack).
func (p Pack) EffectiveEnergyAt(load units.Watts) units.WattHours {
	return load.ForDuration(p.RuntimeAt(load))
}

// RatedEnergy is the nominal provisioned energy: rated power times rated
// runtime. This is the quantity the cost model charges for.
func (p Pack) RatedEnergy() units.WattHours {
	return p.RatedPower.ForDuration(p.RatedRuntime)
}

// FreeEnergy is the base energy that comes free with the power rating.
func (p Pack) FreeEnergy() units.WattHours {
	return p.RatedPower.ForDuration(p.Tech.FreeRunTime)
}

// AnnualCost returns the amortized $/year of the pack: power electronics by
// rating, plus battery modules for energy beyond the free base capacity
// (Equation 2 of the paper).
func (p Pack) AnnualCost() units.DollarsPerYear {
	power := p.Tech.PowerCostPerKWYear * p.RatedPower.KW()
	extra := float64(p.RatedEnergy()-p.FreeEnergy()) / 1e3 // KWh
	if extra < 0 {
		extra = 0
	}
	return units.DollarsPerYear(power + p.Tech.EnergyCostPerKWhYear*extra)
}

// State tracks depletion of a pack under a time-varying load. Depletion is
// accounted fractionally: draining for dt at load L consumes dt/RuntimeAt(L)
// of the pack, the standard piecewise-Peukert approximation. The zero value
// is a full pack (of whatever Pack it is used with).
type State struct {
	used float64 // fraction of capacity consumed, in [0,1]
}

// Remaining returns the unconsumed fraction of the pack.
func (s *State) Remaining() float64 { return 1 - s.used }

// Depleted reports whether the pack is exhausted.
func (s *State) Depleted() bool { return s.used >= 1-1e-12 }

// Recharge resets the pack to full (utility restored).
func (s *State) Recharge() { s.used = 0 }

// TimeToEmpty returns how long the pack can sustain load from its current
// state.
func (s *State) TimeToEmpty(p Pack, load units.Watts) time.Duration {
	if s.Depleted() {
		return 0
	}
	full := p.RuntimeAt(load)
	return time.Duration(float64(full) * s.Remaining())
}

// Drain consumes capacity for sustaining load over dt. It returns the time
// actually sustained (== dt unless the pack empties first, in which case
// the pack is left exactly depleted).
func (s *State) Drain(p Pack, load units.Watts, dt time.Duration) time.Duration {
	if dt <= 0 || load <= 0 {
		return dt
	}
	full := p.RuntimeAt(load)
	if full <= 0 {
		s.used = 1
		return 0
	}
	frac := float64(dt) / float64(full)
	if s.used+frac >= 1 {
		sustained := time.Duration(s.Remaining() * float64(full))
		s.used = 1
		return sustained
	}
	s.used += frac
	return dt
}
