package experiments

import (
	"context"
	"fmt"
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/core"
	"backuppower/internal/cost"
	"backuppower/internal/report"
	"backuppower/internal/sweep"
	"backuppower/internal/tco"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// fig5Durations are the outage durations of Figure 5.
var fig5Durations = []time.Duration{
	30 * time.Second, 5 * time.Minute, 30 * time.Minute, time.Hour, 2 * time.Hour,
}

// fig5Configs are the six configurations Figure 5 plots.
func fig5Configs(peak units.Watts) []cost.Backup {
	return []cost.Backup{
		cost.MaxPerf(peak), cost.DGSmallPUPS(peak), cost.LargeEUPS(peak),
		cost.NoDG(peak), cost.SmallPLargeEUPS(peak), cost.MinCost(peak),
	}
}

// Fig5 reproduces the configuration trade-off study for SPECjbb: for every
// configuration and outage duration, the best technique's performance and
// down time (Figure 5's selection rule), plus the configuration cost. The
// 6×5 (configuration, duration) grid fans out through the sweep engine;
// rows are emitted in grid order so the table matches a serial run.
func Fig5(ctx context.Context) report.Table {
	t := report.Table{
		Title:   "Figure 5: cost/performance/downtime of configurations (SPECjbb)",
		Columns: []string{"configuration", "cost", "outage", "best technique", "perf", "downtime"},
	}
	f := framework()
	w := workload.Specjbb()
	type cell struct {
		b cost.Backup
		d time.Duration
	}
	var grid []cell
	for _, b := range fig5Configs(f.Env.PeakPower()) {
		for _, d := range fig5Durations {
			grid = append(grid, cell{b, d})
		}
	}
	type cellOut struct {
		res  cluster.Result
		tech technique.Technique
	}
	outs, err := sweep.Map(ctx, grid, func(ctx context.Context, c cell) (cellOut, error) {
		res, tech, err := f.BestForConfigCtx(ctx, c.b, w, c.d)
		return cellOut{res, tech}, err
	})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	for i, o := range outs {
		name := "-"
		if o.tech != nil {
			name = o.tech.Name()
		}
		t.AddRow(grid[i].b.Name, grid[i].b.NormalizedCost(f.Env.PeakPower()), grid[i].d, name,
			o.res.Perf, report.DurationBand(o.res.DowntimeMin, o.res.DowntimeMax))
	}
	t.Notes = append(t.Notes,
		"paper: LargeEUPS matches MaxPerf perf to 30m at 0.55 cost; NoDG dies past ~2m; MinCost ~400s down even for 30s")
	return t
}

// figTechniques renders the Figures 6-9 layout for one workload: for each
// outage duration and technique family, the min-cost operating band. The
// durations fan out in parallel (each duration's variant race is itself
// parallel); rows stay in duration order.
func figTechniques(ctx context.Context, title string, w workload.Spec, durations []time.Duration) report.Table {
	t := report.Table{
		Title:   title,
		Columns: []string{"outage", "technique", "cost", "perf", "downtime"},
	}
	f := framework()
	sums, err := sweep.Map(ctx, durations, func(ctx context.Context, d time.Duration) ([]core.TechniqueSummary, error) {
		return f.EvaluateTechniquesCtx(ctx, w, d)
	})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	for i, perDuration := range sums {
		d := durations[i]
		for _, s := range perDuration {
			if !s.Feasible {
				t.AddRow(d, s.Technique, "infeasible", "-", "-")
				continue
			}
			t.AddRow(d, s.Technique,
				report.Band(s.Cost.Min, s.Cost.Max),
				report.Band(s.Perf.Min, s.Perf.Max),
				report.DurationBand(s.Downtime.Min, s.Downtime.Max))
		}
	}
	return t
}

// Fig6 reproduces the SPECjbb technique study across five durations.
func Fig6(ctx context.Context) report.Table {
	t := figTechniques(ctx, "Figure 6: outage duration impact on techniques (SPECjbb)",
		workload.Specjbb(), fig5Durations)
	t.Notes = append(t.Notes,
		"paper: throttling best for short outages; Throttle+Sleep-L for medium; sustain-execution infeasible below ~0.56 cost at 2h")
	return t
}

// Fig7 reproduces the Memcached study (short/medium/long).
func Fig7(ctx context.Context) report.Table {
	t := figTechniques(ctx, "Figure 7: trade-offs for Memcached",
		workload.Memcached(), []time.Duration{30 * time.Second, 30 * time.Minute, 2 * time.Hour})
	t.Notes = append(t.Notes,
		"paper: hibernation (1140s) worse than crash+reload (480s); throttling perf better than SPECjbb; proactive migration ~20% extra savings")
	return t
}

// Fig8 reproduces the Web-search study.
func Fig8(ctx context.Context) report.Table {
	t := figTechniques(ctx, "Figure 8: trade-offs for Web-search",
		workload.WebSearch(), []time.Duration{30 * time.Second, 30 * time.Minute, 2 * time.Hour})
	t.Notes = append(t.Notes,
		"paper: losing memory hurts (600s down for MinCost vs 400s for hibernation)")
	return t
}

// Fig9 reproduces the SpecCPU study.
func Fig9(ctx context.Context) report.Table {
	t := figTechniques(ctx, "Figure 9: trade-offs for SpecCPU (mcf x 8)",
		workload.SpecCPU(), []time.Duration{30 * time.Second, 30 * time.Minute, 2 * time.Hour})
	t.Notes = append(t.Notes,
		"paper: crash downtime spans a large range depending on where in the run the outage hits")
	return t
}

// Fig10 reproduces the TCO cross-over analysis.
func Fig10(context.Context) report.Table {
	t := report.Table{
		Title:   "Figure 10: revenue loss vs DG savings (Google 2011)",
		Columns: []string{"yearly outage", "loss $/KW/yr", "DG savings $/KW/yr", "profitable"},
	}
	a, err := tco.NewAnalysis(tco.DefaultGoogle2011(), 83.3)
	if err != nil {
		t.Notes = append(t.Notes, "analysis failed: "+err.Error())
		return t
	}
	for _, p := range a.Series(8*time.Hour, time.Hour) {
		t.AddRow(p.PerYear, fmt.Sprintf("%.1f", p.Loss), fmt.Sprintf("%.1f", p.Savings),
			fmt.Sprintf("%v", p.Profitab))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cross-over at %s/year (paper: ~5 hours)", report.FormatDuration(a.Crossover())))
	return t
}
