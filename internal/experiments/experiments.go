// Package experiments regenerates every table and figure of the paper's
// evaluation from the models: each experiment returns a report.Table whose
// rows mirror what the paper prints, so cmd/experiments and the root
// benchmarks can reproduce the full evaluation section. EXPERIMENTS.md
// records the paper-vs-measured comparison for each.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"backuppower/internal/core"
	"backuppower/internal/report"
	"backuppower/internal/sweep"
)

// DefaultServers is the simulated fleet size. The metrics reported are
// all normalized (cost to MaxPerf, perf to full service), so the fleet
// size only sets absolute watt numbers.
const DefaultServers = 16

// Experiment is one regenerable table or figure. Run receives the context
// that carries cancellation and the sweep pool width: every scenario
// fan-out beneath it (variant races, rating sweeps, Monte-Carlo years)
// routes through internal/sweep and honors both.
type Experiment struct {
	ID    string // e.g. "fig5", "table3", "ablation-peukert"
	Title string
	Run   func(context.Context) report.Table
}

// Registry lists every experiment in paper order, followed by the
// ablations DESIGN.md calls out.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: power outage distributions (US businesses)", Fig1},
		{"fig3", "Figure 3: battery runtime vs load (4 KW pack)", Fig3},
		{"table1", "Table 1: DG and UPS cost parameters", Table1},
		{"table2", "Table 2: backup infrastructure cost vs capacity", Table2},
		{"table3", "Table 3: underprovisioning configurations", Table3},
		{"table4", "Table 4: technique operational phases", Table4},
		{"table5", "Table 5: technique impact on backup capacity", Table5},
		{"table6", "Table 6: hybrid techniques", Table6},
		{"fig5", "Figure 5: configuration trade-offs (SPECjbb)", Fig5},
		{"fig6", "Figure 6: technique trade-offs vs outage duration (SPECjbb)", Fig6},
		{"table8", "Table 8: save/resume times (SPECjbb)", Table8},
		{"memsize", "Section 6.2: SPECjbb memory-usage sensitivity", MemSize},
		{"fig7", "Figure 7: technique trade-offs (Memcached)", Fig7},
		{"fig8", "Figure 8: technique trade-offs (Web-search)", Fig8},
		{"fig9", "Figure 9: technique trade-offs (SpecCPU mcf×8)", Fig9},
		{"fig10", "Figure 10: TCO cross-over (Google 2011)", Fig10},
		{"ablation-peukert", "Ablation: Peukert vs linear battery model", AblationPeukert},
		{"ablation-proactive", "Ablation: proactive flush interval", AblationProactiveInterval},
		{"ablation-consolidation", "Ablation: consolidation factor", AblationConsolidation},
		{"ablation-dgstartup", "Ablation: DG start-up delay sensitivity", AblationDGStartup},
		{"ablation-liion", "Ablation: Li-ion vs lead-acid economics", AblationLiIon},
		{"ext-availability", "Extension: yearly availability Monte-Carlo", ExtAvailability},
		{"ext-nvdimm", "Extension: NVDIMM persistence (§7)", ExtNVDIMM},
		{"ext-geo", "Extension: geo-failover for very long outages (§7)", ExtGeoFailover},
		{"ext-barelyalive", "Extension: RDMA over sleep (§7)", ExtBarelyAlive},
		{"ext-liion-sizing", "Extension: technique sizing under Li-ion (§7)", ExtLiIonSizing},
		{"ext-placement", "Extension: UPS placement / free-runtime sensitivity", ExtPlacement},
		{"ext-checkpoint", "Extension: HPC checkpoint interval vs crash downtime", ExtCheckpoint},
		{"ext-diurnal", "Extension: diurnal load vs steady peak availability", ExtDiurnal},
		{"ext-portfolio", "Extension: heterogeneous portfolio design (§7)", ExtPortfolio},
		{"ext-opex", "Extension: DG op-ex vs cap-ex check", ExtOpEx},
		{"ext-policy", "Extension: adaptive policy vs duration oracle (§7)", ExtPolicy},
		{"ext-wear", "Extension: battery wear — backup vs peak-shaving duty", ExtWear},
		{"ext-upstopology", "Extension: online vs offline UPS economics", ExtUPSTopology},
		{"ablation-proportionality", "Ablation: energy proportionality vs migration advantage", Proportionality},
		{"ext-geofleet", "Extension: geo-replicated fleet failover (§7)", ExtGeoFleet},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// RunAll regenerates the given experiments through the sweep engine and
// returns their tables in input order — the parallel equivalent of calling
// each Run in sequence, with byte-identical output. The error is non-nil
// only on context cancellation.
func RunAll(ctx context.Context, reg []Experiment) ([]report.Table, error) {
	return sweep.Map(ctx, reg, func(ctx context.Context, e Experiment) (report.Table, error) {
		if err := ctx.Err(); err != nil {
			return report.Table{}, err
		}
		return e.Run(ctx), nil
	})
}

// framework returns the shared evaluation framework.
func framework() *core.Framework { return core.New(DefaultServers) }

func pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }
