package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/grid"
	"backuppower/internal/httpapi"
)

// testSpec is the shared probe grid: 2 workloads × 2 configs ×
// 2 techniques × 3 outages = 24 rows with real outage-batch units, on an
// explicit 8-server axis so worker scale cannot drift from the test's.
func testSpec() grid.Spec {
	return grid.Spec{
		Servers:   []int{8},
		Workloads: []string{"specjbb", "memcached"},
		Configs:   []grid.ConfigDTO{{Name: "MaxPerf"}, {Name: "NoDG"}},
		Techniques: []grid.TechniqueDTO{
			{Name: "baseline"}, {Name: "throttling", PState: intp(3)},
		},
		Outages: []string{"30s", "5m", "30m"},
	}
}

func intp(v int) *int { return &v }

// singleNodeNDJSON runs the spec through the grid runner directly — the
// bytes cmd/gridrun and a single backupd both produce.
func singleNodeNDJSON(t *testing.T, spec grid.Spec) []byte {
	t.Helper()
	plan, err := grid.Compile(spec, grid.CompileOptions{DefaultServers: 64})
	if err != nil {
		t.Fatalf("compile baseline: %v", err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	err = grid.NewRunner(core.New(64)).RunStream(t.Context(), plan, grid.RunOptions{},
		func(row grid.RowResult) error { return enc.Encode(grid.NewRowDTO(plan.Op, row)) })
	if err != nil {
		t.Fatalf("run baseline: %v", err)
	}
	return buf.Bytes()
}

// newWorkers starts n real backupd handlers on httptest servers, each
// optionally wrapped by mid (worker index, inner handler).
func newWorkers(t *testing.T, n int, mid func(int, http.Handler) http.Handler) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		api, err := httpapi.New(httpapi.Config{
			Framework: core.New(8),
			WorkerID:  fmt.Sprintf("w%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		h := http.Handler(api.Handler())
		if mid != nil {
			h = mid(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// TestFabricMatchesSingleNode is the tentpole contract: the merged
// stream is byte-identical to a single-node run at any worker count,
// shard size, and per-worker inflight bound.
func TestFabricMatchesSingleNode(t *testing.T) {
	spec := testSpec()
	want := singleNodeNDJSON(t, spec)
	for _, workers := range []int{1, 2, 3} {
		urls := newWorkers(t, workers, nil)
		for _, cfg := range []struct{ shardRows, inflight int }{
			{0, 0}, {1, 1}, {3, 2}, {5, 1}, {100, 2},
		} {
			f, err := New(Options{
				Workers:              urls,
				ShardRows:            cfg.shardRows,
				MaxInflightPerWorker: cfg.inflight,
				HedgeAfter:           -1, // plain dispatch; hedging has its own tests
			})
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := f.Run(t.Context(), spec, &got); err != nil {
				t.Fatalf("workers=%d %+v: %v", workers, cfg, err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("workers=%d %+v: merged stream diverged from single node\ngot:\n%s\nwant:\n%s",
					workers, cfg, got.Bytes(), want)
			}
			if got := f.Metrics().rowsMerged.Value(); got != 24 {
				t.Fatalf("workers=%d %+v: rows_merged = %d, want 24", workers, cfg, got)
			}
		}
	}
}

// TestFabricEmptyPlan: a spec whose filter drops every row merges to an
// empty stream without touching the pool.
func TestFabricEmptyPlan(t *testing.T) {
	spec := testSpec()
	spec.Filter = &grid.Filter{MinOutage: "100h"}
	f, err := New(Options{Workers: []string{"http://127.0.0.1:1"}}) // nothing listens; nothing may be dialed
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := f.Run(t.Context(), spec, &got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty plan produced output: %s", got.Bytes())
	}
}

// TestFabricCompileErrorIsLocal: a spec the compiler rejects fails before
// any worker is contacted, with the grid's typed field error.
func TestFabricCompileErrorIsLocal(t *testing.T) {
	spec := testSpec()
	spec.Outages = nil
	f, err := New(Options{Workers: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	err = f.Run(t.Context(), spec, &bytes.Buffer{})
	var fe *grid.FieldError
	if err == nil || !errors.As(err, &fe) || fe.Field != "outages" {
		t.Fatalf("want outages FieldError, got %v", err)
	}
}

// TestFabricRetryAfter429 is the backpressure satellite: a worker
// answering 429 + Retry-After must be retried after exactly the pause it
// asked for — not the exponential schedule — and the run must still
// produce the single-node bytes.
func TestFabricRetryAfter429(t *testing.T) {
	spec := testSpec()
	want := singleNodeNDJSON(t, spec)

	var mu sync.Mutex
	rejections := 0
	urls := newWorkers(t, 1, func(_ int, inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			reject := rejections < 2
			if reject {
				rejections++
			}
			mu.Unlock()
			if reject && r.URL.Path == "/v1/sweep" {
				w.Header().Set("Retry-After", "7")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprintln(w, `{"error":{"code":"saturated","message":"full"}}`)
				return
			}
			inner.ServeHTTP(w, r)
		})
	})

	f, err := New(Options{
		Workers:    urls,
		ShardRows:  100, // one shard: both rejections hit the same chain
		HedgeAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	f.opt.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}

	var got bytes.Buffer
	if err := f.Run(t.Context(), spec, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("merged stream diverged from single node after 429 retries")
	}
	if len(slept) != 2 {
		t.Fatalf("expected 2 backoff sleeps, recorded %v", slept)
	}
	for i, d := range slept {
		if d != 7*time.Second {
			t.Fatalf("sleep %d was %v, want the worker's Retry-After of 7s (not the backoff schedule)", i, d)
		}
	}
	if got := f.Metrics().shardsRetried.Value(); got != 2 {
		t.Fatalf("shards_retried = %d, want 2", got)
	}
}

// TestFabricPermanentRejectionFailsFast: a 4xx other than 429 cannot be
// cured by a retry, so the run fails without burning the retry budget.
func TestFabricPermanentRejectionFailsFast(t *testing.T) {
	urls := newWorkers(t, 1, func(_ int, inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprintln(w, `{"error":{"code":"invalid_field","message":"nope"}}`)
		})
	})
	f, err := New(Options{Workers: urls, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	err = f.Run(t.Context(), testSpec(), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("want an HTTP 400 failure, got %v", err)
	}
	if got := f.Metrics().shardsRetried.Value(); got != 0 {
		t.Fatalf("permanent rejection was retried %d times", got)
	}
}

// TestFabricHedging forces a straggler: the first sweep request against
// worker 0 stalls far past the hedge trigger, the hedge chain completes
// the shard on worker 1, and the merged bytes are unchanged.
func TestFabricHedging(t *testing.T) {
	spec := testSpec()
	want := singleNodeNDJSON(t, spec)

	var once sync.Once
	stall := make(chan struct{})
	urls := newWorkers(t, 2, func(i int, inner http.Handler) http.Handler {
		if i != 0 {
			return inner
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			stalled := false
			once.Do(func() {
				stalled = true
				// Drain the body so the server's background read can
				// notice the client abandoning the request.
				io.Copy(io.Discard, r.Body)
				select {
				case <-stall:
				case <-r.Context().Done():
				}
			})
			if stalled {
				// The stalled request dies with the connection; never stream.
				panic(http.ErrAbortHandler)
			}
			inner.ServeHTTP(w, r)
		})
	})
	// Registered after newWorkers so it runs before the servers' Close
	// (cleanups are LIFO): a still-stalled handler must be released first.
	t.Cleanup(func() { close(stall) })

	f, err := New(Options{
		Workers:    urls,
		ShardRows:  100, // one shard, so the stall is the whole run without hedging
		HedgeAfter: 20 * time.Millisecond,
		MaxRetries: -1, // no retries: only the hedge can save the shard
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := f.Run(t.Context(), spec, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("merged stream diverged from single node under hedging")
	}
	if got := f.Metrics().shardsHedged.Value(); got != 1 {
		t.Fatalf("shards_hedged = %d, want 1", got)
	}
}

// TestFabricWorkerIdentity: the coordinator records each worker's
// reported X-Backupd-Worker identity, and the metrics document carries
// the per-worker counters.
func TestFabricWorkerIdentity(t *testing.T) {
	urls := newWorkers(t, 2, nil)
	f, err := New(Options{Workers: urls, ShardRows: 3, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(t.Context(), testSpec(), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		RowsMerged int `json:"rows_merged"`
		Workers    struct {
			Dispatched map[string]int    `json:"dispatched"`
			IDs        map[string]string `json:"ids"`
		} `json:"workers"`
	}
	var buf bytes.Buffer
	f.Metrics().Write(&buf)
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics document is not JSON: %v: %s", err, buf.Bytes())
	}
	if doc.RowsMerged != 24 {
		t.Fatalf("rows_merged = %d, want 24", doc.RowsMerged)
	}
	total := 0
	for _, n := range doc.Workers.Dispatched {
		total += n
	}
	if total < 1 {
		t.Fatalf("no dispatches recorded: %s", buf.Bytes())
	}
	ids := map[string]bool{}
	for _, id := range doc.Workers.IDs {
		ids[id] = true
	}
	if !ids["w0"] && !ids["w1"] {
		t.Fatalf("no worker identity recorded: %s", buf.Bytes())
	}
}

// TestLoopbackPool: the in-process pool serves the same bytes as the
// httptest workers — the mode make fabric-equivalence and the benchmarks
// use.
func TestLoopbackPool(t *testing.T) {
	spec := testSpec()
	want := singleNodeNDJSON(t, spec)
	urls, stop, err := Loopback(3, LoopbackConfig{Servers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	f, err := New(Options{Workers: urls, ShardRows: 4, DefaultServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := f.Run(t.Context(), spec, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("loopback fabric diverged from single node")
	}
}

// TestParseRetryAfter covers the header grammar.
func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Fatalf("delta-seconds: %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("absent: %v", d)
	}
	if d := parseRetryAfter("soon"); d != 0 {
		t.Fatalf("garbage: %v", d)
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d <= 0 || d > 10*time.Second {
		t.Fatalf("http-date: %v", d)
	}
	if d := retryDelay(1, &attemptError{retryAfter: time.Hour}); d != maxRetryAfter {
		t.Fatalf("hostile Retry-After not clamped: %v", d)
	}
	if d := retryDelay(3, &attemptError{}); d != baseBackoff<<2 {
		t.Fatalf("backoff schedule: %v", d)
	}
	if d := retryDelay(30, &attemptError{}); d != maxBackoff {
		t.Fatalf("backoff cap: %v", d)
	}
}
