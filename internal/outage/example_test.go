package outage_test

import (
	"fmt"
	"time"

	"backuppower/internal/outage"
)

// The Figure 1 duration distribution: most outages are short, but the tail
// is heavy — which is exactly why provisioning for "every eventuality" is
// so expensive.
func ExampleDistribution_CDF() {
	d := outage.DurationDistribution()
	fmt.Printf("under 5 min:  %.0f%%\n", d.CDF(5*time.Minute)*100)
	fmt.Printf("under 40 min: %.0f%%\n", d.CDF(40*time.Minute)*100)
	fmt.Printf("over 4 hours: %.0f%%\n", d.Survival(4*time.Hour)*100)
	// Output:
	// under 5 min:  58%
	// under 40 min: 74%
	// over 4 hours: 5%
}

// The predictor's key property: a fresh outage will probably end in
// minutes, but one that has already lasted half an hour probably will not —
// the signal an adaptive policy escalates on.
func ExampleDistribution_ExpectedRemaining() {
	d := outage.DurationDistribution()
	fresh := d.ExpectedRemaining(0)
	old := d.ExpectedRemaining(30 * time.Minute)
	fmt.Println("longer after 30min:", old > 2*fresh/1)
	fmt.Println("median fresh remaining:", d.RemainingQuantile(0, 0.5).Round(time.Second))
	// Output:
	// longer after 30min: true
	// median fresh remaining: 3m49s
}
