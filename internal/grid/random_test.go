package grid

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"backuppower/internal/core"
)

// Validity is RandomSpec's contract: every draw compiles. The sweep
// below also proves the generator actually reaches every shape the
// compiler accepts — all three ops, zip, variants, each filter kind,
// named and custom configs, every technique family, and the defaulted
// servers axis — so the vulture's coverage claim is a tested property,
// not an intention.
func TestRandomSpecCompilesAndCoversShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := DefaultBounds()

	ops := map[string]int{}
	families := map[string]int{}
	var zips, variants, minFilters, maxFilters, sampleFilters int
	var named, custom, noServers, emptyPlans int

	const draws = 2000
	for i := 0; i < draws; i++ {
		spec := RandomSpec(rng, b)
		plan, err := Compile(spec, CompileOptions{DefaultServers: 8})
		if err != nil {
			t.Fatalf("draw %d: generated spec does not compile: %v\nspec: %+v", i, err, spec)
		}
		if len(plan.Points) == 0 {
			emptyPlans++
		}

		op := spec.Op
		if op == "" {
			op = OpEvaluate
		}
		ops[op]++
		if spec.Zip {
			zips++
		}
		if spec.TechniqueVariants {
			variants++
		}
		if f := spec.Filter; f != nil {
			switch {
			case f.MinOutage != "":
				minFilters++
			case f.MaxOutage != "":
				maxFilters++
			case f.SampleEvery > 1:
				sampleFilters++
			}
		}
		for _, c := range spec.Configs {
			if c.Name != "" {
				named++
			} else {
				custom++
			}
		}
		for _, d := range spec.Techniques {
			families[d.Name]++
		}
		if len(spec.Servers) == 0 {
			noServers++
		}
	}

	for _, op := range []string{OpEvaluate, OpSize, OpBest} {
		if ops[op] == 0 {
			t.Errorf("op %q never generated in %d draws", op, draws)
		}
	}
	for _, name := range TechniqueNames() {
		if families[name] == 0 {
			t.Errorf("technique family %q never generated in %d draws", name, draws)
		}
	}
	counts := map[string]int{
		"zip": zips, "technique_variants": variants,
		"filter.min_outage": minFilters, "filter.max_outage": maxFilters,
		"filter.sample_every": sampleFilters,
		"named configs":       named, "custom configs": custom,
		"defaulted servers axis": noServers,
	}
	for shape, n := range counts {
		if n == 0 {
			t.Errorf("shape %q never generated in %d draws", shape, draws)
		}
	}
	// The generator's filters are constructed to be satisfiable, so an
	// empty plan is a generator bug.
	if emptyPlans > 0 {
		t.Errorf("%d of %d draws compiled to empty plans", emptyPlans, draws)
	}
}

// The same seed must reproduce the exact spec sequence — the vulture's
// replay contract.
func TestRandomSpecDeterministic(t *testing.T) {
	draw := func() []Spec {
		rng := rand.New(rand.NewSource(99))
		specs := make([]Spec, 50)
		for i := range specs {
			specs[i] = RandomSpec(rng, DefaultBounds())
		}
		return specs
	}
	a, b := draw(), draw()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two draws from the same seed differ")
	}
}

// Zero-value bounds fall back to the defaults wholesale.
func TestRandomSpecZeroBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		spec := RandomSpec(rng, Bounds{})
		if _, err := Compile(spec, CompileOptions{DefaultServers: 4}); err != nil {
			t.Fatalf("draw %d under zero bounds does not compile: %v", i, err)
		}
	}
}

// Generated specs are not just compilable but runnable: a handful of
// draws stream through the Runner without a run-level error, producing
// exactly the plan's rows.
func TestRandomSpecRunnable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	runner := NewRunner(core.New(8))
	for i := 0; i < 5; i++ {
		spec := RandomSpec(rng, DefaultBounds())
		plan, err := Compile(spec, CompileOptions{DefaultServers: 8})
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		rows, err := runner.Run(context.Background(), plan, RunOptions{})
		if err != nil {
			t.Fatalf("draw %d: run failed: %v\nspec: %+v", i, err, spec)
		}
		if len(rows) != len(plan.Points) {
			t.Fatalf("draw %d: %d rows for a %d-point plan", i, len(rows), len(plan.Points))
		}
	}
}
