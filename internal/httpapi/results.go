package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"backuppower/internal/grid"
	"backuppower/internal/resultstore"
)

// ResultsDefaultLimit caps how many rows one GET /v1/results response
// returns when the request does not say otherwise. The canonical row
// order makes the truncation deterministic; tighter reads pass ?limit=.
const ResultsDefaultLimit = 10000

// GroupsResponse is the body of a group-by results query.
type GroupsResponse struct {
	Groups []resultstore.Group `json:"groups"`
}

// NewResultsHandler serves GET /v1/results?query=... over a persistent
// row store: the stored sweep rows are filtered and aggregated by the
// resultstore query language and streamed back as the same NDJSON row
// encoding /v1/sweep produces (Index 0 — stored rows are plan-
// independent), or as a single JSON document for group-by queries. It is
// a standalone handler so cmd/sweepfront's fabric surface can mount the
// identical read path without embedding a Server.
func NewResultsHandler(store resultstore.Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		plan, err := resultstore.ParseQuery(q.Get("query"))
		if err != nil {
			var fe *resultstore.FieldError
			if errors.As(err, &fe) {
				writeError(w, &apiError{status: http.StatusBadRequest,
					code: fe.Code, field: fe.Field, message: fe.Message})
			} else {
				writeError(w, &apiError{status: http.StatusBadRequest,
					code: "bad_query", message: err.Error()})
			}
			return
		}
		limit := ResultsDefaultLimit
		if raw := q.Get("limit"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n <= 0 {
				writeError(w, &apiError{status: http.StatusBadRequest,
					code: "bad_value", field: "limit", message: "limit must be a positive integer"})
				return
			}
			limit = n
		}

		// Point rows ('R') and process rows ('P') are both servable; the
		// query language's canonical sort interleaves them
		// deterministically whatever the scan order.
		var rows []resultstore.StoredRow
		for _, ns := range []byte{resultstore.NSRow, resultstore.NSProcessRow} {
			scanErr := store.Scan(ns, func(_ resultstore.Key, payload []byte) error {
				sr, err := resultstore.DecodeRow(payload)
				if err != nil {
					// An undecodable payload (foreign schema version) is not
					// servable; it degrades to absent, exactly as on the write
					// path.
					return nil
				}
				rows = append(rows, sr)
				return nil
			})
			if scanErr != nil {
				writeError(w, &apiError{status: http.StatusInternalServerError,
					code: "store_scan", message: "result store scan failed"})
				return
			}
		}

		out := plan.Execute(rows)
		if plan.Grouped() {
			if out.Groups == nil {
				out.Groups = []resultstore.Group{}
			}
			writeJSON(w, http.StatusOK, GroupsResponse{Groups: out.Groups})
			return
		}
		if len(out.Rows) > limit {
			out.Rows = out.Rows[:limit]
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		for i := range out.Rows {
			if err := enc.Encode(grid.DTOFromStored(&out.Rows[i])); err != nil {
				return
			}
		}
	}
}
