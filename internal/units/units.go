// Package units provides the physical and monetary quantities used
// throughout the backup-power models: electrical power (watts), energy
// (watt-hours), data sizes and transfer rates, and amortized dollar costs.
//
// All quantities are simple float64-based named types so that arithmetic
// stays cheap and explicit, while the type names keep watt/watt-hour and
// $/KW vs $/KWh confusions out of the cost model (the distinction the paper
// leans on: DG cost scales with power, UPS cost with power AND energy).
package units

import (
	"fmt"
	"math"
	"time"
)

// Watts is electrical power.
type Watts float64

// Common power scales.
const (
	Watt     Watts = 1
	Kilowatt Watts = 1e3
	Megawatt Watts = 1e6
)

// KW returns the power in kilowatts.
func (w Watts) KW() float64 { return float64(w) / 1e3 }

// MW returns the power in megawatts.
func (w Watts) MW() float64 { return float64(w) / 1e6 }

// String formats the power with an adaptive unit.
func (w Watts) String() string {
	a := math.Abs(float64(w))
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.2f MW", w.MW())
	case a >= 1e3:
		return fmt.Sprintf("%.2f KW", w.KW())
	default:
		return fmt.Sprintf("%.1f W", float64(w))
	}
}

// ForDuration returns the energy delivered by drawing power w for d.
func (w Watts) ForDuration(d time.Duration) WattHours {
	return WattHours(float64(w) * d.Hours())
}

// WattHours is electrical energy.
type WattHours float64

// Common energy scales.
const (
	WattHour     WattHours = 1
	KilowattHour WattHours = 1e3
	MegawattHour WattHours = 1e6
)

// KWh returns the energy in kilowatt-hours.
func (e WattHours) KWh() float64 { return float64(e) / 1e3 }

// String formats the energy with an adaptive unit.
func (e WattHours) String() string {
	a := math.Abs(float64(e))
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.2f MWh", float64(e)/1e6)
	case a >= 1e3:
		return fmt.Sprintf("%.2f KWh", e.KWh())
	default:
		return fmt.Sprintf("%.1f Wh", float64(e))
	}
}

// AtPower returns how long the energy e lasts when drained at power w.
// Returns a very large duration for non-positive loads.
func (e WattHours) AtPower(w Watts) time.Duration {
	if w <= 0 {
		return time.Duration(math.MaxInt64)
	}
	hours := float64(e) / float64(w)
	return time.Duration(hours * float64(time.Hour))
}

// Bytes is a data size.
type Bytes int64

// Common data-size scales.
const (
	Byte     Bytes = 1
	Kibibyte Bytes = 1 << 10
	Mebibyte Bytes = 1 << 20
	Gibibyte Bytes = 1 << 30
)

// GiB returns the size in gibibytes.
func (b Bytes) GiB() float64 { return float64(b) / float64(Gibibyte) }

// MiB returns the size in mebibytes.
func (b Bytes) MiB() float64 { return float64(b) / float64(Mebibyte) }

// String formats the size with an adaptive unit.
func (b Bytes) String() string {
	a := math.Abs(float64(b))
	switch {
	case a >= float64(Gibibyte):
		return fmt.Sprintf("%.1f GiB", b.GiB())
	case a >= float64(Mebibyte):
		return fmt.Sprintf("%.1f MiB", b.MiB())
	case a >= float64(Kibibyte):
		return fmt.Sprintf("%.1f KiB", float64(b)/float64(Kibibyte))
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

// BytesPerSecond is a data transfer rate.
type BytesPerSecond float64

// Common rate scales. GigabitEthernet is the effective payload rate of a
// 1 Gbps NIC as used in the paper's migration experiments.
const (
	MiBps           BytesPerSecond = BytesPerSecond(Mebibyte)
	GigabitEthernet BytesPerSecond = 1e9 / 8 // 125 MB/s line rate
)

// TimeFor returns the time to move size bytes at this rate.
func (r BytesPerSecond) TimeFor(size Bytes) time.Duration {
	if r <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(float64(size) / float64(r) * float64(time.Second))
}

// String formats the rate in MB/s.
func (r BytesPerSecond) String() string {
	return fmt.Sprintf("%.1f MB/s", float64(r)/1e6)
}

// DollarsPerYear is an amortized annual cost.
type DollarsPerYear float64

// String formats the cost adaptively ($, K$, M$).
func (d DollarsPerYear) String() string {
	a := math.Abs(float64(d))
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.2f M$/yr", float64(d)/1e6)
	case a >= 1e3:
		return fmt.Sprintf("%.1f K$/yr", float64(d)/1e3)
	default:
		return fmt.Sprintf("%.2f $/yr", float64(d))
	}
}

// Minutes converts a duration to fractional minutes; used pervasively when
// reporting runtimes the way the paper's tables do.
func Minutes(d time.Duration) float64 { return d.Minutes() }

// FromMinutes builds a duration from fractional minutes.
func FromMinutes(m float64) time.Duration {
	return time.Duration(m * float64(time.Minute))
}

// Clamp01 clamps x into [0, 1]. Shared by the performance models.
func Clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// AlmostEqual reports whether a and b agree within relative tolerance tol
// (absolute for values near zero). Used by model self-checks and tests.
func AlmostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
