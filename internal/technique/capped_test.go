package technique

import (
	"testing"
	"time"

	"backuppower/internal/capping"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

func TestCappedThrottlingFitsBudget(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	for _, frac := range []float64{0.5, 0.6, 0.8, 1.0} {
		budget := units.Watts(frac * float64(e.PeakPower()))
		p := CappedThrottling{Budget: budget}.Plan(e, w, time.Hour)
		if err := p.Validate(); err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		if p.PeakPower() > budget {
			t.Errorf("budget %v: plan draws %v", budget, p.PeakPower())
		}
		if ph := p.Phases[0]; !ph.Available || ph.Perf <= 0 {
			t.Errorf("budget %v: should keep serving, got %+v", budget, ph)
		}
	}
}

func TestCappedThrottlingMatchesCappingController(t *testing.T) {
	e := env()
	w := workload.Memcached()
	budget := e.PeakPower() / 2
	p := CappedThrottling{Budget: budget}.Plan(e, w, time.Hour)
	wantPerf, _, ok := capping.PerfUnderBudget(e.Server, w, budget/units.Watts(e.Servers))
	if !ok {
		t.Fatal("controller says infeasible")
	}
	if p.Phases[0].Perf != wantPerf {
		t.Errorf("plan perf %v != controller %v", p.Phases[0].Perf, wantPerf)
	}
}

func TestCappedThrottlingBelowFloor(t *testing.T) {
	// A budget below the throttling floor cannot be honored: the plan
	// reports the deepest setting's real draw, which exceeds the budget —
	// and the simulator will correctly refuse to source it.
	e := env()
	w := workload.Specjbb()
	budget := units.Watts(float64(e.Servers) * 60) // below idle power
	p := CappedThrottling{Budget: budget}.Plan(e, w, time.Hour)
	if err := p.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if p.PeakPower() <= budget {
		t.Errorf("sub-floor budget %v should be unsatisfiable, plan draws %v", budget, p.PeakPower())
	}
}

func TestCappedThrottlingPerfMonotoneInBudget(t *testing.T) {
	e := env()
	w := workload.WebSearch()
	prev := -1.0
	for frac := 0.45; frac <= 1.0; frac += 0.05 {
		budget := units.Watts(frac * float64(e.PeakPower()))
		p := CappedThrottling{Budget: budget}.Plan(e, w, time.Hour)
		if p.PeakPower() > budget {
			continue // below floor
		}
		perf := p.Phases[0].Perf
		if perf < prev {
			t.Fatalf("perf fell with a bigger budget at %v: %v < %v", budget, perf, prev)
		}
		prev = perf
	}
	if prev < 0.99 {
		t.Errorf("full budget perf = %v, want ~1", prev)
	}
}
