package memsim

import (
	"testing"
	"time"

	"backuppower/internal/units"
)

func jbbLike() Profile {
	return Profile{
		Footprint:        18 * units.Gibibyte,
		ReadOnlyFraction: 0.3,
		DirtyRate:        40 * units.MiBps,
		WorkingSet:       10 * units.Gibibyte,
	}
}

func TestValidate(t *testing.T) {
	if err := jbbLike().Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := jbbLike()
	bad.Footprint = 0
	if bad.Validate() == nil {
		t.Error("zero footprint should fail")
	}
	bad = jbbLike()
	bad.ReadOnlyFraction = 1.5
	if bad.Validate() == nil {
		t.Error("fraction>1 should fail")
	}
	bad = jbbLike()
	bad.DirtyRate = -1
	if bad.Validate() == nil {
		t.Error("negative dirty rate should fail")
	}
	bad = jbbLike()
	bad.WorkingSet = bad.Footprint * 2
	if bad.Validate() == nil {
		t.Error("working set > footprint should fail")
	}
}

func TestMutableState(t *testing.T) {
	p := jbbLike()
	want := units.Bytes(float64(p.Footprint) * 0.7)
	if got := p.MutableState(); got != want {
		t.Errorf("mutable = %v, want %v", got, want)
	}
	ro := p
	ro.ReadOnlyFraction = 1
	if got := ro.MutableState(); got != 0 {
		t.Errorf("fully read-only mutable = %v", got)
	}
}

func TestDirtyAfterSaturates(t *testing.T) {
	p := jbbLike()
	short := p.DirtyAfter(time.Second)
	long := p.DirtyAfter(time.Hour)
	if short <= 0 {
		t.Error("dirtying after 1s should be positive")
	}
	if long > p.WorkingSet {
		t.Errorf("dirty %v exceeds working set %v", long, p.WorkingSet)
	}
	if float64(long) < 0.99*float64(p.WorkingSet) {
		t.Errorf("after an hour dirty %v should saturate near WS %v", long, p.WorkingSet)
	}
	// Early on, dirtying tracks the linear rate.
	approx := float64(p.DirtyRate) * 1.0
	if !units.AlmostEqual(float64(short), approx, 0.01) {
		t.Errorf("1s dirty = %v, want ~%v (linear regime)", short, units.Bytes(approx))
	}
	if got := p.DirtyAfter(0); got != 0 {
		t.Errorf("DirtyAfter(0) = %v", got)
	}
	z := p
	z.WorkingSet = 0
	if got := z.DirtyAfter(time.Minute); got != 0 {
		t.Errorf("zero WS dirty = %v", got)
	}
}

func TestDirtyAfterMonotone(t *testing.T) {
	p := jbbLike()
	prev := units.Bytes(-1)
	for d := time.Second; d < 20*time.Minute; d *= 2 {
		cur := p.DirtyAfter(d)
		if cur < prev {
			t.Fatalf("dirty not monotone at %v", d)
		}
		prev = cur
	}
}

func TestFlushResidueAndBandwidth(t *testing.T) {
	p := jbbLike()
	res := p.FlushResidue(30 * time.Second)
	if res <= 0 || res > p.WorkingSet {
		t.Errorf("residue = %v", res)
	}
	// Shorter interval, smaller residue.
	if p.FlushResidue(5*time.Second) >= res {
		t.Error("residue should shrink with interval")
	}
	bw := p.FlushBandwidth(30 * time.Second)
	if bw <= 0 || bw > p.DirtyRate {
		t.Errorf("flush bandwidth = %v, want in (0, dirty rate]", bw)
	}
	if got := p.FlushBandwidth(0); got != 0 {
		t.Errorf("zero interval bandwidth = %v", got)
	}
}

func TestPrecopyConverges(t *testing.T) {
	p := jbbLike()
	bw := 100 * units.MiBps
	res := Precopy(p, p.Footprint, bw, 64*units.Mebibyte, 30)
	if !res.Converged {
		t.Fatalf("precopy did not converge: %+v", res)
	}
	if res.Rounds < 1 {
		t.Errorf("rounds = %d", res.Rounds)
	}
	if res.Transferred < p.Footprint {
		t.Errorf("transferred %v < footprint %v", res.Transferred, p.Footprint)
	}
	if res.FinalDirty > 64*units.Mebibyte {
		t.Errorf("final dirty %v above threshold", res.FinalDirty)
	}
	if res.TotalDuration != res.Duration+res.StopCopyTime {
		t.Error("total duration mismatch")
	}
	// First round alone takes footprint/bw; total must exceed it.
	if res.Duration < bw.TimeFor(p.Footprint) {
		t.Errorf("duration %v below first-round time", res.Duration)
	}
}

func TestPrecopyHotWorkloadStalls(t *testing.T) {
	// Dirty rate equal to link bandwidth: pre-copy cannot converge to a
	// small threshold; final dirty stays near the working set.
	p := Profile{
		Footprint:        8 * units.Gibibyte,
		ReadOnlyFraction: 0,
		DirtyRate:        100 * units.MiBps,
		WorkingSet:       4 * units.Gibibyte,
	}
	res := Precopy(p, p.Footprint, 100*units.MiBps, 16*units.Mebibyte, 30)
	if res.Converged {
		t.Fatalf("hot workload should not converge: %+v", res)
	}
	if res.Rounds != 30 {
		t.Errorf("rounds = %d, want all 30 exhausted", res.Rounds)
	}
	if res.FinalDirty <= 16*units.Mebibyte {
		t.Errorf("final dirty %v should remain above threshold", res.FinalDirty)
	}
}

func TestPrecopyEdgeCases(t *testing.T) {
	p := jbbLike()
	// Zero state converges trivially.
	res := Precopy(p, 0, 100*units.MiBps, units.Mebibyte, 30)
	if !res.Converged || res.Transferred != 0 || res.TotalDuration != 0 {
		t.Errorf("zero state: %+v", res)
	}
	// Zero bandwidth cannot converge.
	res = Precopy(p, p.Footprint, 0, units.Mebibyte, 30)
	if res.Converged {
		t.Errorf("zero bandwidth converged: %+v", res)
	}
	// State already under threshold: no pre-copy rounds needed.
	res = Precopy(p, 10*units.Mebibyte, 100*units.MiBps, 64*units.Mebibyte, 30)
	if !res.Converged || res.Rounds != 0 {
		t.Errorf("tiny state: %+v", res)
	}
}

func TestPrecopyFasterLinkFasterTotal(t *testing.T) {
	p := jbbLike()
	slow := Precopy(p, p.Footprint, 50*units.MiBps, 64*units.Mebibyte, 30)
	fast := Precopy(p, p.Footprint, 200*units.MiBps, 64*units.Mebibyte, 30)
	if fast.TotalDuration >= slow.TotalDuration {
		t.Errorf("faster link should migrate faster: %v vs %v",
			fast.TotalDuration, slow.TotalDuration)
	}
}
