package availability

import (
	"context"
	"testing"

	"backuppower/internal/core"
	"backuppower/internal/cost"
	"backuppower/internal/sweep"
	"backuppower/internal/workload"
)

// TestSimulateYearsParallelMatchesSerial pins the Monte-Carlo seeding
// discipline: every simulated year derives its own generator from
// (seed, year), so the per-year stats and the aggregate summary are
// identical at any pool width.
func TestSimulateYearsParallelMatchesSerial(t *testing.T) {
	fw := core.New(16)
	p := &Planner{Framework: fw, Workload: workload.Specjbb(), Backup: cost.NoDG(fw.Env.PeakPower())}

	core.ResetScenarioCache()
	sumS, statsS, errS := p.SimulateYearsCtx(sweep.WithWidth(context.Background(), 1), 10, 2014)
	core.ResetScenarioCache()
	sumP, statsP, errP := p.SimulateYearsCtx(sweep.WithWidth(context.Background(), 8), 10, 2014)
	if errS != nil || errP != nil {
		t.Fatalf("errs: %v %v", errS, errP)
	}
	if sumS != sumP {
		t.Errorf("summaries differ:\nserial   %+v\nparallel %+v", sumS, sumP)
	}
	if len(statsS) != len(statsP) {
		t.Fatalf("stats lengths differ: %d vs %d", len(statsS), len(statsP))
	}
	for y := range statsS {
		if statsS[y] != statsP[y] {
			t.Errorf("year %d differs: serial %+v, parallel %+v", y, statsS[y], statsP[y])
		}
	}
}

// TestCompareConfigsParallelMatchesSerial does the same for the
// per-configuration fan-out, and checks input-order preservation.
func TestCompareConfigsParallelMatchesSerial(t *testing.T) {
	fw := core.New(16)
	peak := fw.Env.PeakPower()
	configs := []cost.Backup{cost.MaxPerf(peak), cost.NoDG(peak), cost.MinCost(peak)}
	w := workload.Specjbb()

	serial, errS := CompareConfigsCtx(sweep.WithWidth(context.Background(), 1), fw, w, configs, 5, 7)
	parallel, errP := CompareConfigsCtx(sweep.WithWidth(context.Background(), 8), fw, w, configs, 5, 7)
	if errS != nil || errP != nil {
		t.Fatalf("errs: %v %v", errS, errP)
	}
	for i := range configs {
		if serial[i].Config != configs[i].Name {
			t.Errorf("serial order broken at %d: %s", i, serial[i].Config)
		}
		if serial[i] != parallel[i] {
			t.Errorf("config %s differs:\nserial   %+v\nparallel %+v",
				configs[i].Name, serial[i], parallel[i])
		}
	}
}
