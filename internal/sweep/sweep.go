// Package sweep is the shared parallel evaluation engine every scenario
// fan-out in this repository routes through: the UPS-rating sweep and
// technique-variant races in internal/core, the Monte-Carlo year and
// configuration fan-outs in internal/availability, figure regeneration in
// internal/experiments, and section design in internal/portfolio.
//
// The engine is deliberately small: a bounded-width ordered parallel map
// (Map) plus a content-keyed memoizing cache (Cache). Determinism is the
// contract — Map returns results in input order regardless of completion
// order, and callers fold those results serially, so a parallel run
// produces byte-identical output to a serial one. The pool width travels
// on the context (WithWidth), so a single -parallel flag at the top of
// cmd/experiments reaches every nested fan-out without threading an extra
// parameter through the stack.
package sweep

import (
	"context"
	"runtime"
	"sync"
)

type widthKey struct{}

// WithWidth returns a context that asks every sweep.Map beneath it to use
// a worker pool of n goroutines. n < 1 is ignored (the default applies).
func WithWidth(ctx context.Context, n int) context.Context {
	if n < 1 {
		return ctx
	}
	return context.WithValue(ctx, widthKey{}, n)
}

// Width reports the pool width the context carries, defaulting to
// GOMAXPROCS. It is always at least 1.
func Width(ctx context.Context) int {
	if n, ok := ctx.Value(widthKey{}).(int); ok && n >= 1 {
		return n
	}
	if n := runtime.GOMAXPROCS(0); n >= 1 {
		return n
	}
	return 1
}

// Map applies fn to every item over a bounded worker pool and returns the
// results in input order. The first error to occur cancels the remaining
// work (fn observes the cancellation through its context) and is returned;
// cancellation of the parent context is likewise propagated. With width 1
// (or a single item) Map degenerates to a plain serial loop — no
// goroutines — which is the reference behavior parallel runs must match.
func Map[T, R any](ctx context.Context, items []T, fn func(context.Context, T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	width := Width(ctx)
	if width > len(items) {
		width = len(items)
	}
	if width <= 1 {
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, it)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	inner, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		firstOnce sync.Once
		firstErr  error
		wg        sync.WaitGroup
	)
	fail := func(err error) {
		firstOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	idx := make(chan int)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r, err := fn(inner, items[i])
				if err != nil {
					fail(err)
					continue
				}
				out[i] = r
			}
		}()
	}
feed:
	for i := range items {
		select {
		case idx <- i:
		case <-inner.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Parent cancellation outranks any error a worker saw as a
		// consequence of it.
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// MapChunked is the streaming counterpart to Map for long grids whose
// consumers want results before the whole sweep finishes: items are
// processed in contiguous chunks of the given size, each chunk evaluated in
// parallel through Map, and emit receives every chunk's results (with the
// chunk's starting index) as soon as the chunk completes, always in input
// order. Because chunk boundaries only batch the emission — never the
// fold — the emitted sequence is identical for any chunk size and any pool
// width. An emit error, an fn error, or context cancellation stops the
// remaining chunks; size < 1 means a single chunk covering all items.
func MapChunked[T, R any](ctx context.Context, items []T, size int, fn func(context.Context, T) (R, error), emit func(start int, results []R) error) error {
	if size < 1 || size > len(items) {
		size = len(items)
	}
	for start := 0; start < len(items); start += size {
		end := start + size
		if end > len(items) {
			end = len(items)
		}
		out, err := Map(ctx, items[start:end], fn)
		if err != nil {
			return err
		}
		if err := emit(start, out); err != nil {
			return err
		}
	}
	return ctx.Err()
}
