package core

import (
	"hash/maphash"
	"math"
	"reflect"
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/cost"
	"backuppower/internal/migration"
	"backuppower/internal/server"
	"backuppower/internal/storage"
	"backuppower/internal/sweep"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// scenarioCacheSize caps the shared memo cache. A full cmd/experiments
// regeneration touches a few tens of thousands of distinct scenarios; the
// cap keeps pathological callers (open-ended Monte-Carlo grids) from
// growing the process without bound.
const scenarioCacheSize = 1 << 15

// scenarioCache memoizes cluster.Simulate results process-wide, keyed by
// the full (Env, Workload, Backup, Technique, Outage) content. Simulation
// is pure — the same scenario always produces the same Result — so every
// figure, Monte-Carlo year and portfolio section that lands on an already
// evaluated point reuses it instead of re-simulating. Results (including
// their trace pointers) are shared between callers and must be treated as
// immutable.
//
// The map is keyed by a 128-bit fingerprint of scenarioKey rather than the
// struct itself: the full key is several hundred bytes of pointer-bearing
// structs, and storing tens of thousands of copies showed up directly in
// GC scan and map-hash time. Two independently seeded maphash.Comparable
// passes give a per-process 128-bit content hash; a colliding pair of
// distinct scenarios (probability ~n²/2¹²⁸) would silently alias, which we
// accept the same way content-addressed stores do.
var scenarioCache = sweep.NewCache[fingerprint, cluster.Result](scenarioCacheSize)

var fpSeedA, fpSeedB = maphash.MakeSeed(), maphash.MakeSeed()

type fingerprint struct{ a, b uint64 }

func fingerprintKey(k scenarioKey) fingerprint {
	return fingerprint{maphash.Comparable(fpSeedA, k), maphash.Comparable(fpSeedB, k)}
}

// scenarioKey is a comparable mirror of cluster.Scenario. Everything
// reachable from a Scenario is a value (structs, scalars, strings — no
// pointers), so field-wise equality is content equality; the one slice in
// the graph, server.Config.PStates, is folded into a 64-bit digest via
// serverKey so the key stays usable in a map. The Technique interface
// field carries the concrete type in the comparison, which keeps distinct
// techniques with identical field sets apart. Building the key is a plain
// struct copy — no reflection, no formatting — so the cache stays cheap
// relative to the ~2µs simulation it fronts.
type scenarioKey struct {
	servers int
	server  serverKey
	disk    storage.Disk
	mig     migration.Config
	load    workload.Spec
	backup  cost.Backup
	tech    technique.Technique
	outage  time.Duration
}

// serverKey mirrors server.Config field-for-field with PStates replaced by
// its digest. TestScenarioKeyMirrorsServerConfig pins the field count so a
// new Config field cannot silently fall out of the cache key.
type serverKey struct {
	name            string
	idleW, peakW    units.Watts
	memoryGB, dimms int
	sleepWPer       units.Watts
	states          uint64 // digest of the elided PStates
	tstates         int
	throttleLatency time.Duration
	toSleep, toWake time.Duration
	restart         time.Duration
}

func keyScenario(s cluster.Scenario) scenarioKey {
	return scenarioKey{
		servers: s.Env.Servers,
		server:  keyServer(s.Env.Server),
		disk:    s.Env.Disk,
		mig:     s.Env.Mig,
		load:    s.Workload,
		backup:  s.Backup,
		tech:    s.Technique,
		outage:  s.Outage,
	}
}

func keyServer(c server.Config) serverKey {
	return serverKey{
		name:            c.Name,
		idleW:           c.IdleW,
		peakW:           c.PeakW,
		memoryGB:        c.MemoryGB,
		dimms:           c.DIMMs,
		sleepWPer:       c.SleepWPer,
		states:          pstatesDigest(c.PStates),
		tstates:         c.TStates,
		throttleLatency: c.ThrottleLatency,
		toSleep:         c.TransitionToSleep,
		toWake:          c.ResumeFromSleep,
		restart:         c.RestartTime,
	}
}

// keyable reports whether the technique's dynamic type is comparable. All
// shipped techniques are flat value structs (pinned by
// TestShippedTechniquesAreCacheKeyable); a hypothetical technique holding
// a slice or map would make map insertion panic, so Evaluate routes such
// values around the cache instead.
func keyable(s cluster.Scenario) bool {
	return s.Technique == nil || reflect.TypeOf(s.Technique).Comparable()
}

// pstatesDigest folds a DVFS table into word-wise FNV-1a. Collisions would
// silently alias two scenarios, but in practice a process sees a handful
// of distinct tables (MakePStates with a few shapes), and the digest is
// re-mixed through maphash with the rest of the key anyway.
func pstatesDigest(ps []server.PState) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(len(ps)))
	for _, p := range ps {
		mix(uint64(p.Index))
		mix(math.Float64bits(p.FreqRatio))
		mix(math.Float64bits(p.DynPowerMul))
	}
	return h
}

// ResetScenarioCache empties the shared scenario cache. Benchmarks use it
// to measure cold-path costs; regular callers never need it.
func ResetScenarioCache() { scenarioCache.Purge() }

// ScenarioCacheLen reports how many scenario results are currently
// memoized (visibility for tests and tuning).
func ScenarioCacheLen() int { return scenarioCache.Len() }
