package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestExtAvailabilityTable(t *testing.T) {
	tb := ExtAvailability(context.Background())
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	out := tb.String()
	for _, want := range []string{"MaxPerf", "MinCost", "nines"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// MaxPerf must show zero downtime; MinCost must not.
	for _, row := range tb.Rows {
		if row[0] == "MaxPerf" && row[2] != "0" {
			t.Errorf("MaxPerf downtime/yr = %q", row[2])
		}
		if row[0] == "MinCost" && row[2] == "0" {
			t.Error("MinCost downtime/yr should be nonzero")
		}
	}
}

func TestExtNVDIMMTable(t *testing.T) {
	tb := ExtNVDIMM(context.Background())
	out := tb.String()
	if !strings.Contains(out, "NVDIMM") || !strings.Contains(out, "Hibernate") {
		t.Fatalf("incomplete:\n%s", out)
	}
	// NVDIMM rows cost 0.00 at every duration.
	for _, row := range tb.Rows {
		if row[0] == "NVDIMM" && row[2] != "0.00" {
			t.Errorf("NVDIMM cost = %q, want 0.00", row[2])
		}
	}
}

func TestExtGeoFailoverTable(t *testing.T) {
	tb := ExtGeoFailover(context.Background())
	out := tb.String()
	if !strings.Contains(out, "GeoFailover") {
		t.Fatalf("incomplete:\n%s", out)
	}
	// Geo-failover sustains ~0.7 perf even at 6h.
	found := false
	for _, row := range tb.Rows {
		if row[0] == "GeoFailover" && strings.HasPrefix(row[3], "0.6") {
			found = true
		}
		if row[0] == "GeoFailover" && strings.HasPrefix(row[3], "0.7") {
			found = true
		}
	}
	if !found {
		t.Errorf("no high-perf geo rows:\n%s", out)
	}
}

func TestExtBarelyAliveTable(t *testing.T) {
	tb := ExtBarelyAlive(context.Background())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Sleep-L row perf 0; BarelyAlive rows > 0.
	if tb.Rows[0][2] != "0.00" {
		t.Errorf("sleep perf = %q", tb.Rows[0][2])
	}
	if tb.Rows[1][2] == "0.00" {
		t.Error("barely-alive perf should be positive")
	}
}

func TestExtLiIonSizingTable(t *testing.T) {
	tb := ExtLiIonSizing(context.Background())
	out := tb.String()
	if !strings.Contains(out, "Throttling") || !strings.Contains(out, "%") {
		t.Fatalf("incomplete:\n%s", out)
	}
}

func TestExtPlacementTable(t *testing.T) {
	tb := ExtPlacement(context.Background())
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Smaller free runtime -> higher NoDG cost (strictly decreasing down
	// the table, which is ordered by growing free runtime).
	prev := ""
	for _, row := range tb.Rows {
		if prev != "" && row[1] > prev {
			t.Errorf("NoDG cost should shrink with free runtime: %q then %q", prev, row[1])
		}
		prev = row[1]
	}
}
