package backuppower_test

import (
	"fmt"
	"testing"
	"time"

	backuppower "backuppower"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	fw := backuppower.NewFramework(16)
	res, err := fw.Evaluate(
		backuppower.LargeEUPS(fw.Env.PeakPower()),
		backuppower.Throttling{PState: 6},
		backuppower.Specjbb(),
		30*time.Minute)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !res.Survived || res.Downtime != 0 {
		t.Errorf("throttled LargeEUPS: %+v", res)
	}
}

func TestPublicConfigurations(t *testing.T) {
	peak := 4 * backuppower.Megawatt
	if got := len(backuppower.Table3(peak)); got != 9 {
		t.Errorf("Table3 = %d configs", got)
	}
	if got := len(backuppower.Workloads()); got != 4 {
		t.Errorf("Workloads = %d", got)
	}
	b := backuppower.CustomBackup("mine", 0, peak/2, 45*time.Minute)
	if b.AnnualCost() <= 0 {
		t.Error("custom backup cost")
	}
}

func TestPublicSizing(t *testing.T) {
	fw := backuppower.NewFramework(16)
	op, ok := fw.MinCostUPS(backuppower.Sleep{LowPower: true}, backuppower.Memcached(), 20*time.Minute)
	if !ok {
		t.Fatal("sizing failed")
	}
	if op.NormCost <= 0 || op.NormCost > 0.5 {
		t.Errorf("sleep sizing cost = %v", op.NormCost)
	}
}

func TestPublicTCO(t *testing.T) {
	a, err := backuppower.NewTCO()
	if err != nil {
		t.Fatalf("NewTCO: %v", err)
	}
	if c := a.Crossover(); c < 4*time.Hour || c > 6*time.Hour {
		t.Errorf("crossover = %v", c)
	}
}

func TestPublicOutageTools(t *testing.T) {
	gen := backuppower.NewOutageGen(1)
	_ = gen.Year()
	pred, err := backuppower.NewPredictor(backuppower.OutageDurations(), 50)
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	if pred.ExpectedRemaining(0) <= 0 {
		t.Error("predictor remaining")
	}
}

func ExampleFramework_Evaluate() {
	fw := backuppower.NewFramework(16)
	res, err := fw.Evaluate(
		backuppower.NoDG(fw.Env.PeakPower()),
		backuppower.Sleep{LowPower: true},
		backuppower.Specjbb(),
		30*time.Second)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("survived=%v downtime=%v\n", res.Survived, res.Downtime)
	// Output: survived=true downtime=38s
}
