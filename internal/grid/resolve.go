package grid

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/cost"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// The wire axis-element types and their resolvers. These are the single
// source of truth for turning request JSON into model values: the HTTP
// layer (POST /v1/evaluate, /v1/sweep, ...) and cmd/gridrun both decode
// into these DTOs and resolve through these functions, so field names,
// validation rules, and error codes cannot drift between surfaces.

// ConfigDTO selects a backup configuration: either a Table 3 name
// ("MaxPerf", "NoDG", "LargeEUPS", ... — scaled to the serving
// environment's peak power), or a custom configuration from explicit
// capacities. Exactly one of the two forms must be used.
type ConfigDTO struct {
	Name       string `json:"name,omitempty"`
	DGPower    string `json:"dg_power,omitempty"`
	UPSPower   string `json:"ups_power,omitempty"`
	UPSRuntime string `json:"ups_runtime,omitempty"`
}

// TechniqueDTO selects an outage-handling technique by family name plus
// the family's parameters. Parameters that do not apply to the named
// family are rejected, not ignored.
type TechniqueDTO struct {
	Name           string   `json:"name"`
	PState         *int     `json:"pstate,omitempty"`
	LowPower       *bool    `json:"low_power,omitempty"`
	Proactive      *bool    `json:"proactive,omitempty"`
	ThrottleDeep   *bool    `json:"throttle_deep,omitempty"`
	Save           string   `json:"save,omitempty"`
	ActiveFraction *float64 `json:"active_fraction,omitempty"`
	Budget         string   `json:"budget,omitempty"`
}

// FieldError is a typed request rejection: a stable machine-readable
// code, the offending field (dotted path, axis elements as "axis[i]"),
// and a human message. The HTTP layer maps it to a 4xx body; the CLI
// prints it.
type FieldError struct {
	Code    string
	Field   string
	Message string
}

func (e *FieldError) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("%s: %s: %s", e.Code, e.Field, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

func fieldErrf(code, field, format string, args ...any) *FieldError {
	return &FieldError{Code: code, Field: field, Message: fmt.Sprintf(format, args...)}
}

// refield re-roots a FieldError at an axis position: the resolver's
// generic first path segment ("config", "technique.pstate", "outage") is
// replaced by the element's position ("configs[1]", "techniques[0].pstate",
// "outages[2]") so a multi-element spec error names the exact element.
func refield(err error, base string) error {
	fe, ok := err.(*FieldError)
	if !ok {
		return err
	}
	field := base
	if i := strings.IndexByte(fe.Field, '.'); i >= 0 {
		field += fe.Field[i:]
	}
	return &FieldError{Code: fe.Code, Field: field, Message: fe.Message}
}

// MaxOutage bounds the outage axis, mirroring the framework's own input
// validation.
const MaxOutage = time.Duration(core.MaxOutage)

// ParseOutage validates an outage duration: parseable, positive, and
// inside the framework's accepted band.
func ParseOutage(s string) (time.Duration, error) {
	if s == "" {
		return 0, fieldErrf("missing_field", "outage", "outage duration is required")
	}
	d, err := units.ParseDuration(s)
	if err != nil {
		return 0, fieldErrf("invalid_duration", "outage", "%v", err)
	}
	if d <= 0 {
		return 0, fieldErrf("out_of_range", "outage", "outage %v must be positive", d)
	}
	if d > MaxOutage {
		return 0, fieldErrf("out_of_range", "outage", "outage %v exceeds the %v maximum", d, MaxOutage)
	}
	return d, nil
}

// parseFilterDuration parses a filter bound, which (unlike an outage
// axis value) only needs to be a valid non-negative duration.
func parseFilterDuration(s, field string) (time.Duration, error) {
	d, err := units.ParseDuration(s)
	if err != nil {
		return 0, fieldErrf("invalid_duration", field, "%v", err)
	}
	if d < 0 {
		return 0, fieldErrf("out_of_range", field, "%v must be non-negative", d)
	}
	return d, nil
}

// ResolveWorkload maps a workload name to its calibrated spec.
func ResolveWorkload(name string) (workload.Spec, error) {
	if name == "" {
		return workload.Spec{}, fieldErrf("missing_field", "workload", "workload name is required")
	}
	if w, ok := workload.ByName(name); ok {
		return w, nil
	}
	var known []string
	for _, w := range workload.All() {
		known = append(known, w.Name)
	}
	return workload.Spec{}, fieldErrf("unknown_workload", "workload",
		"unknown workload %q (known: %s)", name, strings.Join(known, ", "))
}

// ResolveConfig maps a ConfigDTO to a concrete backup configuration.
// peak is the serving datacenter's peak power, which scales the named
// Table 3 configurations.
func ResolveConfig(d ConfigDTO, peak units.Watts) (cost.Backup, error) {
	custom := d.DGPower != "" || d.UPSPower != "" || d.UPSRuntime != ""
	if d.Name != "" && !custom {
		for _, b := range cost.Table3(peak) {
			if strings.EqualFold(b.Name, d.Name) {
				return b, nil
			}
		}
		var known []string
		for _, b := range cost.Table3(peak) {
			known = append(known, b.Name)
		}
		return cost.Backup{}, fieldErrf("unknown_config", "config.name",
			"unknown configuration %q (known: %s; or give dg_power/ups_power/ups_runtime)",
			d.Name, strings.Join(known, ", "))
	}
	if d.Name != "" && custom {
		return cost.Backup{}, fieldErrf("invalid_config", "config",
			"give either a named configuration or custom capacities, not both")
	}
	if !custom {
		return cost.Backup{}, fieldErrf("missing_field", "config",
			"configuration is required: a Table 3 name or dg_power/ups_power/ups_runtime")
	}
	var dg, upsP units.Watts
	var upsRT time.Duration
	var err error
	if d.DGPower != "" {
		if dg, err = units.ParsePower(d.DGPower); err != nil {
			return cost.Backup{}, fieldErrf("invalid_power", "config.dg_power", "%v", err)
		}
	}
	if d.UPSPower != "" {
		if upsP, err = units.ParsePower(d.UPSPower); err != nil {
			return cost.Backup{}, fieldErrf("invalid_power", "config.ups_power", "%v", err)
		}
	}
	if d.UPSRuntime != "" {
		if upsRT, err = units.ParseDuration(d.UPSRuntime); err != nil {
			return cost.Backup{}, fieldErrf("invalid_duration", "config.ups_runtime", "%v", err)
		}
		if upsRT < 0 {
			return cost.Backup{}, fieldErrf("out_of_range", "config.ups_runtime", "runtime %v must be non-negative", upsRT)
		}
		if upsP == 0 {
			return cost.Backup{}, fieldErrf("invalid_config", "config.ups_runtime", "ups_runtime without ups_power")
		}
	}
	// Sanity bound: a configuration larger than 100x the datacenter peak
	// is a unit mistake, not a design point.
	if limit := peak * 100; dg > limit || upsP > limit {
		return cost.Backup{}, fieldErrf("out_of_range", "config",
			"capacity exceeds 100x the datacenter peak (%v)", peak)
	}
	b := cost.Custom("custom", dg, upsP, upsRT)
	return b, nil
}

// techniqueParam records one settable TechniqueDTO parameter for the
// applicability check.
type techniqueParam struct {
	name string
	set  bool
}

func (d TechniqueDTO) params() []techniqueParam {
	return []techniqueParam{
		{"pstate", d.PState != nil},
		{"low_power", d.LowPower != nil},
		{"proactive", d.Proactive != nil},
		{"throttle_deep", d.ThrottleDeep != nil},
		{"save", d.Save != ""},
		{"active_fraction", d.ActiveFraction != nil},
		{"budget", d.Budget != ""},
	}
}

// techniqueSpec describes one supported technique family: which params
// apply and how to build the concrete instance.
type techniqueSpec struct {
	params []string
	doc    string
	build  func(deepestPState int, d TechniqueDTO) (technique.Technique, error)
}

func has(params []string, name string) bool {
	for _, p := range params {
		if p == name {
			return true
		}
	}
	return false
}

// techniqueSpecs is the registry of wire-exposed techniques, keyed by
// normalized name.
var techniqueSpecs = map[string]techniqueSpec{
	"baseline": {
		doc: "full service until the backup dies (MaxPerf/MinCost behavior)",
		build: func(_ int, _ TechniqueDTO) (technique.Technique, error) {
			return technique.Baseline{}, nil
		},
	},
	"throttling": {
		params: []string{"pstate"},
		doc:    "run in a reduced DVFS P-state (pstate 1 = lightest, deepest = slowest)",
		build: func(deepest int, d TechniqueDTO) (technique.Technique, error) {
			p, err := requirePState(deepest, d)
			if err != nil {
				return nil, err
			}
			return technique.Throttling{PState: p}, nil
		},
	},
	"capped-throttling": {
		params: []string{"budget"},
		doc:    "budget-driven capping: the fastest P/T state fitting under a power budget",
		build: func(_ int, d TechniqueDTO) (technique.Technique, error) {
			if d.Budget == "" {
				return nil, fieldErrf("missing_field", "technique.budget", "capped-throttling needs a power budget")
			}
			w, err := units.ParsePower(d.Budget)
			if err != nil {
				return nil, fieldErrf("invalid_power", "technique.budget", "%v", err)
			}
			if w <= 0 {
				return nil, fieldErrf("out_of_range", "technique.budget", "budget must be positive")
			}
			return technique.CappedThrottling{Budget: w}, nil
		},
	},
	"migration": {
		params: []string{"proactive", "throttle_deep"},
		doc:    "consolidate onto fewer servers via live migration",
		build: func(_ int, d TechniqueDTO) (technique.Technique, error) {
			return technique.Migration{
				Proactive:    d.Proactive != nil && *d.Proactive,
				ThrottleDeep: d.ThrottleDeep != nil && *d.ThrottleDeep,
			}, nil
		},
	},
	"sleep": {
		params: []string{"low_power"},
		doc:    "suspend to RAM (S3); low_power throttles during the transition",
		build: func(_ int, d TechniqueDTO) (technique.Technique, error) {
			return technique.Sleep{LowPower: d.LowPower != nil && *d.LowPower}, nil
		},
	},
	"hibernate": {
		params: []string{"low_power", "proactive"},
		doc:    "suspend to disk (S4); proactive pre-flushes dirty state",
		build: func(_ int, d TechniqueDTO) (technique.Technique, error) {
			return technique.Hibernate{
				LowPower:  d.LowPower != nil && *d.LowPower,
				Proactive: d.Proactive != nil && *d.Proactive,
			}, nil
		},
	},
	"throttle-then-save": {
		params: []string{"pstate", "save", "active_fraction"},
		doc:    "serve throttled for a fraction of the outage, then save state",
		build: func(deepest int, d TechniqueDTO) (technique.Technique, error) {
			p, err := requirePState(deepest, d)
			if err != nil {
				return nil, err
			}
			save, err := parseSaveKind(d.Save)
			if err != nil {
				return nil, err
			}
			frac, err := activeFraction(d)
			if err != nil {
				return nil, err
			}
			return technique.ThrottleThenSave{PState: p, Save: save, ActiveFraction: frac}, nil
		},
	},
	"migration-then-sleep": {
		params: []string{"active_fraction"},
		doc:    "consolidate, serve for a fraction of the outage, then sleep the survivors",
		build: func(_ int, d TechniqueDTO) (technique.Technique, error) {
			frac, err := activeFraction(d)
			if err != nil {
				return nil, err
			}
			return technique.MigrationThenSleep{ActiveFraction: frac}, nil
		},
	},
	"nvdimm": {
		doc: "persist state with no backup power at all (Section 7)",
		build: func(_ int, _ TechniqueDTO) (technique.Technique, error) {
			return technique.NVDIMM{}, nil
		},
	},
	"nvdimm-throttle": {
		params: []string{"pstate"},
		doc:    "serve throttled with crash-safe NVDIMM state (Section 7)",
		build: func(deepest int, d TechniqueDTO) (technique.Technique, error) {
			p, err := requirePState(deepest, d)
			if err != nil {
				return nil, err
			}
			return technique.NVDIMMThrottle{PState: p}, nil
		},
	},
	"barely-alive": {
		doc: "sleep while serving reads over RDMA (Section 7)",
		build: func(_ int, _ TechniqueDTO) (technique.Technique, error) {
			return technique.BarelyAlive{}, nil
		},
	},
	"geo-failover": {
		params: []string{"save"},
		doc:    "redirect load to a geo-replicated site, then save locally (Section 7)",
		build: func(_ int, d TechniqueDTO) (technique.Technique, error) {
			g := technique.GeoFailover{}
			if d.Save != "" {
				save, err := parseSaveKind(d.Save)
				if err != nil {
					return nil, err
				}
				g.Save = save
			}
			return g, nil
		},
	},
}

func requirePState(deepest int, d TechniqueDTO) (int, error) {
	if d.PState == nil {
		return 0, fieldErrf("missing_field", "technique.pstate",
			"pstate is required (1..%d)", deepest)
	}
	p := *d.PState
	if p < 1 || p > deepest {
		return 0, fieldErrf("out_of_range", "technique.pstate",
			"pstate %d out of [1, %d]", p, deepest)
	}
	return p, nil
}

func parseSaveKind(s string) (technique.SaveKind, error) {
	switch strings.ToLower(s) {
	case "":
		return 0, fieldErrf("missing_field", "technique.save", `save is required ("sleep" or "hibernate")`)
	case "sleep":
		return technique.SaveSleep, nil
	case "hibernate":
		return technique.SaveHibernate, nil
	default:
		return 0, fieldErrf("invalid_field", "technique.save", `save %q must be "sleep" or "hibernate"`, s)
	}
}

func activeFraction(d TechniqueDTO) (float64, error) {
	if d.ActiveFraction == nil {
		return 1.0, nil
	}
	f := *d.ActiveFraction
	if !(f > 0 && f <= 1) {
		return 0, fieldErrf("out_of_range", "technique.active_fraction",
			"active_fraction %v out of (0, 1]", f)
	}
	return f, nil
}

// ResolveTechnique maps a TechniqueDTO to a concrete technique,
// validating that every supplied parameter applies to the named family.
// deepestPState is the environment's deepest DVFS P-state index.
func ResolveTechnique(d TechniqueDTO, deepestPState int) (technique.Technique, error) {
	if d.Name == "" {
		return nil, fieldErrf("missing_field", "technique.name", "technique name is required")
	}
	name := strings.ToLower(strings.ReplaceAll(d.Name, "_", "-"))
	spec, ok := techniqueSpecs[name]
	if !ok {
		return nil, fieldErrf("unknown_technique", "technique.name",
			"unknown technique %q (known: %s)", d.Name, strings.Join(TechniqueNames(), ", "))
	}
	for _, p := range d.params() {
		if p.set && !has(spec.params, p.name) {
			return nil, fieldErrf("invalid_field", "technique."+p.name,
				"%s does not apply to technique %q", p.name, name)
		}
	}
	return spec.build(deepestPState, d)
}

// TechniqueNames returns the supported wire names sorted for stable
// listings and error messages.
func TechniqueNames() []string {
	names := make([]string, 0, len(techniqueSpecs))
	for n := range techniqueSpecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TechniqueDoc describes one wire-exposed technique for catalog
// endpoints (GET /v1/techniques, gridrun -list-techniques).
type TechniqueDoc struct {
	Name   string
	Params []string
	Doc    string
}

// TechniqueDocs returns the technique catalog sorted by name.
func TechniqueDocs() []TechniqueDoc {
	docs := make([]TechniqueDoc, 0, len(techniqueSpecs))
	for _, name := range TechniqueNames() {
		s := techniqueSpecs[name]
		docs = append(docs, TechniqueDoc{Name: name, Params: s.params, Doc: s.doc})
	}
	return docs
}
