package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"backuppower/internal/cost"
	"backuppower/internal/grid"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// apiError is a request rejection on its way to becoming a typed 4xx
// body. status is the HTTP status to respond with.
type apiError struct {
	status  int
	code    string
	field   string
	message string
}

func (e *apiError) Error() string {
	if e.field != "" {
		return fmt.Sprintf("%s: %s: %s", e.code, e.field, e.message)
	}
	return fmt.Sprintf("%s: %s", e.code, e.message)
}

func badRequest(code, field, format string, args ...any) *apiError {
	return &apiError{status: 400, code: code, field: field, message: fmt.Sprintf(format, args...)}
}

// asAPIError maps a grid resolver rejection (a typed *grid.FieldError) to
// its 400 response, passing every other error through unchanged. The
// resolvers themselves live in internal/grid so the HTTP surface, the
// sweep subsystem, and cmd/gridrun share one set of codes and rules.
func asAPIError(err error) error {
	var fe *grid.FieldError
	if errors.As(err, &fe) {
		return badRequest(fe.Code, fe.Field, "%s", fe.Message)
	}
	return err
}

// decodeStrict decodes one JSON document into v, rejecting unknown
// fields, malformed JSON, and trailing garbage. It never panics on any
// input (FuzzDecodeEvaluateRequest pins this).
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid_json", "", "%s", decodeErrMessage(err))
	}
	// A second token means trailing data after the document.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return badRequest("invalid_json", "", "trailing data after JSON body")
	}
	return nil
}

// decodeErrMessage strips the "json: " prefix noise while keeping the
// decoder's useful position/field detail.
func decodeErrMessage(err error) string {
	return strings.TrimPrefix(err.Error(), "json: ")
}

// DecodeEvaluateRequest strictly decodes an EvaluateRequest body. It is
// exported (within the package's internal tree) so the fuzz target can
// drive the exact decoder the handler uses.
func DecodeEvaluateRequest(r io.Reader) (EvaluateRequest, error) {
	var req EvaluateRequest
	if err := decodeStrict(r, &req); err != nil {
		return EvaluateRequest{}, err
	}
	return req, nil
}

// parseOutage validates the shared outage field: parseable, positive,
// and inside the framework's accepted band.
func parseOutage(s string) (time.Duration, error) {
	d, err := grid.ParseOutage(s)
	if err != nil {
		return 0, asAPIError(err)
	}
	return d, nil
}

// parseTimeout validates the optional per-request timeout override.
func parseTimeout(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := units.ParseDuration(s)
	if err != nil {
		return 0, badRequest("invalid_duration", "timeout", "%v", err)
	}
	if d <= 0 {
		return 0, badRequest("out_of_range", "timeout", "timeout %v must be positive", d)
	}
	return d, nil
}

// parseWidth validates the optional sweep-width override.
func parseWidth(w int) error {
	if w < 0 || w > 1024 {
		return badRequest("out_of_range", "width", "width %d out of [0, 1024]", w)
	}
	return nil
}

// resolveWorkload maps a workload name to its calibrated spec.
func resolveWorkload(name string) (workload.Spec, error) {
	w, err := grid.ResolveWorkload(name)
	if err != nil {
		return workload.Spec{}, asAPIError(err)
	}
	return w, nil
}

// resolveConfig maps a ConfigDTO to a concrete backup configuration.
// peak is the serving datacenter's peak power, which scales the named
// Table 3 configurations.
func resolveConfig(d ConfigDTO, peak units.Watts) (cost.Backup, error) {
	b, err := grid.ResolveConfig(d, peak)
	if err != nil {
		return cost.Backup{}, asAPIError(err)
	}
	return b, nil
}

// serverDeps carries the environment facts request validation needs.
type serverDeps struct {
	deepestPState int
	peak          units.Watts
}

// resolveTechnique maps a TechniqueDTO to a concrete technique,
// validating that every supplied parameter applies to the named family.
func resolveTechnique(d TechniqueDTO, deps *serverDeps) (technique.Technique, error) {
	t, err := grid.ResolveTechnique(d, deps.deepestPState)
	if err != nil {
		return nil, asAPIError(err)
	}
	return t, nil
}
