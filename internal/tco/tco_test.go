package tco

import (
	"testing"
	"time"

	"backuppower/internal/units"
)

func analysis(t *testing.T) Analysis {
	t.Helper()
	a, err := NewAnalysis(DefaultGoogle2011(), 83.3)
	if err != nil {
		t.Fatalf("NewAnalysis: %v", err)
	}
	return a
}

func TestGoogleRatesMatchPaper(t *testing.T) {
	a := analysis(t)
	// Paper: ~$0.28/KW/min revenue, ~$0.003/KW/min depreciation.
	if !units.AlmostEqual(a.RevenuePerKWMin, 0.278, 0.02) {
		t.Errorf("revenue rate = %v, want ~0.28", a.RevenuePerKWMin)
	}
	if !units.AlmostEqual(a.DepreciationPerKWMin, 0.0038, 0.05) {
		t.Errorf("depreciation rate = %v, want ~0.003", a.DepreciationPerKWMin)
	}
}

func TestCrossoverNearFiveHours(t *testing.T) {
	a := analysis(t)
	// Paper: cross-over "around 5 hours per year".
	c := a.Crossover()
	if c < 4*time.Hour || c > 6*time.Hour {
		t.Errorf("crossover = %v, want ~5h", c)
	}
	if !a.ProfitableAt(c - time.Minute) {
		t.Error("just left of crossover should be profitable")
	}
	if a.ProfitableAt(c + time.Minute) {
		t.Error("just right of crossover should be unprofitable")
	}
}

func TestOutageCostLinear(t *testing.T) {
	a := analysis(t)
	one := a.OutageCostPerKWYear(time.Hour)
	two := a.OutageCostPerKWYear(2 * time.Hour)
	if !units.AlmostEqual(two, 2*one, 1e-9) {
		t.Errorf("loss not linear: %v vs %v", two, one)
	}
	if a.OutageCostPerKWYear(0) != 0 {
		t.Error("zero outage should cost nothing")
	}
}

func TestSeries(t *testing.T) {
	a := analysis(t)
	pts := a.Series(8*time.Hour, 30*time.Minute)
	if len(pts) != 17 {
		t.Fatalf("points = %d", len(pts))
	}
	crossed := false
	prev := -1.0
	for _, p := range pts {
		if p.Loss < prev {
			t.Fatal("loss not monotone")
		}
		prev = p.Loss
		if p.Savings != 83.3 {
			t.Errorf("savings line = %v", p.Savings)
		}
		if !p.Profitab && !crossed {
			crossed = true
		}
		if p.Profitab && crossed {
			t.Error("profitability should flip once")
		}
	}
	if !crossed {
		t.Error("series should cross the savings line within 8h")
	}
	if got := a.Series(0, time.Minute); got != nil {
		t.Error("zero max should be nil")
	}
	if got := a.Series(time.Hour, 0); got != nil {
		t.Error("zero step should be nil")
	}
}

func TestNewAnalysisErrors(t *testing.T) {
	bad := DefaultGoogle2011()
	bad.DatacenterPower = 0
	if _, err := NewAnalysis(bad, 83.3); err == nil {
		t.Error("zero power should fail")
	}
	bad = DefaultGoogle2011()
	bad.ServerLifetime = 0
	if _, err := NewAnalysis(bad, 83.3); err == nil {
		t.Error("zero lifetime should fail")
	}
}

func TestZeroLossCrossover(t *testing.T) {
	a := Analysis{DGSavingsPerKWYear: 83.3}
	if a.Crossover() != 0 {
		t.Error("zero loss rate should yield zero crossover")
	}
}
