package main

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"backuppower/internal/core"
	"backuppower/internal/httpapi"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// runCLI invokes the testable entry point and returns (stdout, stderr, exit).
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/gridrun -update` to create)", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from golden file %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestGoldenNDJSON pins the CLI's NDJSON stream for one spec per op.
func TestGoldenNDJSON(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"evaluate", []string{"-workloads", "specjbb", "-configs", "MaxPerf,NoDG",
			"-techniques", "baseline;throttling:pstate=3", "-outages", "30s,30m"}},
		{"size", []string{"-op", "size", "-workloads", "web-search",
			"-techniques", "hibernate:proactive=true;baseline", "-outages", "1h"}},
		{"best", []string{"-op", "best", "-workloads", "memcached", "-configs", "SmallPUPS,MinCost",
			"-outages", "30m"}},
		{"process", []string{"-workloads", "specjbb", "-configs", "NoDG",
			"-techniques", "baseline;sleep:low_power=true",
			"-processes", `[{"seed":42,"draws":8,"arrival":{"kind":"exponential","mean":"2000h"},` +
				`"duration":{"kind":"weibull","mean":"30m","shape":0.8},"correlation":0.3},` +
				`{"seed":7,"draws":4,"arrival":{"kind":"empirical"},"duration":{"kind":"empirical"}}]`}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			stdout, stderr, code := runCLI(t, c.args...)
			if code != 0 {
				t.Fatalf("exit %d: %s", code, stderr)
			}
			checkGolden(t, c.name+".ndjson", stdout)
		})
	}
}

// TestGoldenTable pins the -format table rendering.
func TestGoldenTable(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-op", "size", "-workloads", "memcached",
		"-techniques", "hibernate;throttling:pstate=6", "-outages", "5m,1h", "-format", "table")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	checkGolden(t, "size.table", stdout)
}

// TestGoldenProcessTable pins the -format table rendering of process
// rows (survival/perf/expected-downtime cells plus the seed+draws
// outage cell).
func TestGoldenProcessTable(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-workloads", "specjbb", "-configs", "NoDG",
		"-techniques", "baseline",
		"-processes", `[{"seed":42,"draws":8,"arrival":{"kind":"exponential","mean":"2000h"},`+
			`"duration":{"kind":"weibull","mean":"30m","shape":0.8},"correlation":0.3}]`,
		"-format", "table")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	checkGolden(t, "process.table", stdout)
}

// TestDeterministicAcrossWidthAndShard: the CLI's own half of the
// tentpole contract — identical bytes at -parallel 1 vs 8 and any -shard.
func TestDeterministicAcrossWidthAndShard(t *testing.T) {
	base := []string{"-workloads", "specjbb,memcached", "-configs", "MaxPerf,LargeEUPS",
		"-techniques", "baseline;sleep:low_power=true", "-outages", "30s,5m,30m"}
	baseline, stderr, code := runCLI(t, append([]string{"-parallel", "1", "-shard", "1"}, base...)...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if strings.Count(baseline, "\n") != 24 {
		t.Fatalf("baseline has %d rows, want 24", strings.Count(baseline, "\n"))
	}
	for _, extra := range [][]string{
		{"-parallel", "8"},
		{"-parallel", "8", "-shard", "3"},
		{"-parallel", "2", "-shard", "1000"},
		{"-shard", "5", "-progress"},
	} {
		got, _, code := runCLI(t, append(extra, base...)...)
		if code != 0 {
			t.Fatalf("%v: exit %d", extra, code)
		}
		if got != baseline {
			t.Fatalf("output with %v diverged from the serial baseline", extra)
		}
	}
}

// TestMatchesSweepEndpoint pins the two surfaces together: a spec file
// run through the CLI must produce byte-for-byte the rows POST /v1/sweep
// streams for the same spec (both default to 64 servers).
func TestMatchesSweepEndpoint(t *testing.T) {
	spec := `{
		"op": "best",
		"workloads": ["specjbb", "web-search"],
		"configs": [{"name": "MaxPerf"}, {"name": "MinCost"}],
		"outages": ["30s", "1h"]
	}`
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runCLI(t, "-spec", specPath, "-parallel", "4", "-shard", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}

	srv, err := httpapi.New(httpapi.Config{Framework: core.New(64)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(`{"spec":`+spec+`}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	if stdout != string(body) {
		t.Fatalf("CLI and /v1/sweep rows diverged for the same spec:\ncli:\n%s\nhttp:\n%s", stdout, body)
	}
}

// TestProgressReporting checks the -progress shard counters on stderr.
func TestProgressReporting(t *testing.T) {
	_, stderr, code := runCLI(t, "-workloads", "specjbb", "-configs", "MaxPerf",
		"-techniques", "baseline", "-outages", "30s,5m,30m,1h", "-shard", "2", "-progress")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	want := "gridrun: shard 1/2 (2/4 rows)\ngridrun: shard 2/2 (4/4 rows)\n"
	if stderr != want {
		t.Fatalf("progress output:\n%s\nwant:\n%s", stderr, want)
	}
}

// TestUsageErrors pins the exit-code contract: anything wrong with the
// invocation or the spec is exit 2 with a diagnostic on stderr.
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad format", []string{"-format", "xml"}, "must be ndjson or table"},
		{"unknown flag", []string{"-frobnicate"}, "flag provided but not defined"},
		{"compile error", []string{"-workloads", "doom", "-configs", "MaxPerf",
			"-techniques", "baseline", "-outages", "30s"}, "workloads[0]"},
		{"bad technique flag", []string{"-techniques", "throttling:pstate=deep"}, "not an integer"},
		{"bad servers flag", []string{"-servers", "4,many"}, "not an integer"},
		{"missing spec file", []string{"-spec", "/nonexistent/spec.json"}, "no such file"},
		{"oversize grid", []string{"-op", "size", "-variants", "-workloads", "specjbb",
			"-outages", "30s", "-max-rows", "3"}, "too_many_rows"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			stdout, stderr, code := runCLI(t, c.args...)
			if code != 2 {
				t.Fatalf("exit %d (stdout %q, stderr %q), want 2", code, stdout, stderr)
			}
			if !strings.Contains(stderr, c.want) {
				t.Fatalf("stderr %q does not mention %q", stderr, c.want)
			}
		})
	}
}

// TestSpecFileTrailingData: the file decoder is as strict as the HTTP one.
func TestSpecFileTrailingData(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(p, []byte(`{"workloads":["specjbb"]} extra`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runCLI(t, "-spec", p)
	if code != 2 || !strings.Contains(stderr, "trailing data") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

// TestOutputFile: -o writes the same bytes a stdout run produces.
func TestOutputFile(t *testing.T) {
	args := []string{"-workloads", "specjbb", "-configs", "MaxPerf",
		"-techniques", "baseline", "-outages", "30s"}
	stdout, _, code := runCLI(t, args...)
	if code != 0 {
		t.Fatal("stdout run failed")
	}
	path := filepath.Join(t.TempDir(), "rows.ndjson")
	_, stderr, code := runCLI(t, append([]string{"-o", path}, args...)...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != stdout {
		t.Fatal("-o file differs from stdout output")
	}
}
