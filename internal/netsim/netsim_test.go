package netsim

import (
	"testing"

	"backuppower/internal/units"
)

func TestDefaultGigabit(t *testing.T) {
	l := DefaultGigabit()
	if err := l.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	// Goodput ~112.5 MB/s.
	if got := float64(l.Goodput()); !units.AlmostEqual(got, 112.5e6, 1e-6) {
		t.Errorf("goodput = %v", got)
	}
}

func TestTransferTime(t *testing.T) {
	l := DefaultGigabit()
	// 1.125 GB at 112.5 MB/s = 10 s + setup.
	d := l.TransferTime(units.Bytes(1.125e9), 1)
	want := 10.0 + l.SetupLatency.Seconds()
	if !units.AlmostEqual(d.Seconds(), want, 1e-6) {
		t.Errorf("transfer = %v, want %vs", d, want)
	}
	// Two sharers double the time (minus fixed setup).
	d2 := l.TransferTime(units.Bytes(1.125e9), 2)
	if !units.AlmostEqual(d2.Seconds()-l.SetupLatency.Seconds(), 20, 1e-6) {
		t.Errorf("contended transfer = %v", d2)
	}
	// sharers < 1 behaves like 1.
	if l.TransferTime(units.Gibibyte, 0) != l.TransferTime(units.Gibibyte, 1) {
		t.Error("sharers=0 should clamp to 1")
	}
}

func TestSustainedRate(t *testing.T) {
	l := DefaultGigabit()
	if got := l.SustainedRate(3); !units.AlmostEqual(float64(got), 112.5e6/3, 1e-9) {
		t.Errorf("sustained(3) = %v", got)
	}
	if l.SustainedRate(-1) != l.Goodput() {
		t.Error("negative sharers should clamp")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := DefaultGigabit()
	bad.LineRate = 0
	if bad.Validate() == nil {
		t.Error("zero rate should fail")
	}
	bad = DefaultGigabit()
	bad.Efficiency = 1.2
	if bad.Validate() == nil {
		t.Error("efficiency > 1 should fail")
	}
	bad = DefaultGigabit()
	bad.SetupLatency = -1
	if bad.Validate() == nil {
		t.Error("negative setup should fail")
	}
}
