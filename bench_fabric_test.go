// Benchmarks for the distributed sweep fabric (PR 7): the same Fig-5
// style grid through a pool of in-process loopback backupd workers (real
// HTTP, real NDJSON streams, real merge) at 1/2/4 workers, against the
// single-node runner as the baseline. Workers run at width 1 so measured
// scaling comes from the worker axis alone; on a single core the fabric
// can only show its coordination overhead, on a multi-core host the
// worker counts spread across cores.
package backuppower_test

import (
	"context"
	"testing"

	"backuppower/internal/core"
	"backuppower/internal/fabric"
	"backuppower/internal/grid"
	"backuppower/internal/sweep"
)

// benchFabricSpec is the fabric benchmark's workload: 64 rows in 8
// outage-batch units, enough shards to keep 4 workers busy.
func benchFabricSpec() grid.Spec {
	return grid.Spec{
		Workloads: []string{"specjbb"},
		Configs: []grid.ConfigDTO{
			{Name: "MaxPerf"}, {Name: "MinCost"}, {Name: "NoDG"}, {Name: "LargeEUPS"},
		},
		Techniques: []grid.TechniqueDTO{{Name: "baseline"}, {Name: "sleep"}},
		Outages:    []string{"30s", "90s", "5m", "12m", "30m", "45m", "1h", "2h"},
	}
}

// rowCounter counts NDJSON lines without retaining them, so the merge
// path is exercised but the benchmark does not measure buffer growth.
type rowCounter struct{ rows int }

func (c *rowCounter) Write(p []byte) (int, error) {
	for _, b := range p {
		if b == '\n' {
			c.rows++
		}
	}
	return len(p), nil
}

func benchFabricSweep(b *testing.B, workers int) {
	b.Helper()
	urls, stop, err := fabric.Loopback(workers, fabric.LoopbackConfig{Servers: 16, Width: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	f, err := fabric.New(fabric.Options{
		Workers:        urls,
		ShardRows:      8, // one batch unit per shard: 8 shards over the pool
		DefaultServers: 16,
		WorkerWidth:    1,
		HedgeAfter:     -1, // measure plain dispatch, not hedge timing noise
	})
	if err != nil {
		b.Fatal(err)
	}
	spec := benchFabricSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ResetScenarioCache()
		var out rowCounter
		if err := f.Run(context.Background(), spec, &out); err != nil {
			b.Fatal(err)
		}
		if out.rows != 64 {
			b.Fatalf("rows = %d, want 64", out.rows)
		}
	}
}

func BenchmarkFabricSweep1Worker(b *testing.B)  { benchFabricSweep(b, 1) }
func BenchmarkFabricSweep2Workers(b *testing.B) { benchFabricSweep(b, 2) }
func BenchmarkFabricSweep4Workers(b *testing.B) { benchFabricSweep(b, 4) }

// BenchmarkFabricSweepSingleNode is the same spec through the in-process
// runner at width 1 — what one backupd does for the whole plan, and the
// denominator for the fabric's scaling numbers.
func BenchmarkFabricSweepSingleNode(b *testing.B) {
	spec := benchFabricSpec()
	plan, err := grid.Compile(spec, grid.CompileOptions{DefaultServers: 16})
	if err != nil {
		b.Fatal(err)
	}
	r := grid.NewRunner(core.New(16))
	ctx := sweep.WithWidth(context.Background(), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ResetScenarioCache()
		rows := 0
		err := r.RunStream(ctx, plan, grid.RunOptions{}, func(row grid.RowResult) error {
			if row.Err != nil {
				return row.Err
			}
			rows++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if rows != 64 {
			b.Fatalf("rows = %d, want 64", rows)
		}
	}
}
