// Package resultstore is the tiered persistent result store behind the
// evaluation pathway (ROADMAP item 2): the explicit contract that was
// implicit in core's process-global sweep.Cache. The in-memory
// singleflight tier (sweep.Cache, unchanged) keeps today's semantics bit
// for bit; an optional on-disk tier underneath survives restarts, so a
// sweep run once serves every later rerun, deployment, and read query
// without re-simulating anything it has already seen.
//
// The disk tier is an LSM-lite: puts append to a CRC-framed write-ahead
// log and land in a memtable; Seal (called when a sweep completes)
// rewrites the memtable as an immutable sorted block and truncates the
// WAL; background compaction folds accumulated blocks together. Open
// replays the WAL, discarding a torn tail, and reads blocks newest-wins,
// so a crash at any byte offset loses at most the unsynced WAL suffix —
// never yields a torn or duplicated row.
//
// Keys are 128-bit stable content fingerprints (sha256-derived — unlike
// the memory tier's maphash keys they do not change across processes)
// with a leading namespace byte: 'S' for scenario-level payloads
// (core.Evaluate results), 'R' for row-level payloads (grid sweep rows,
// the unit /v1/results queries serve).
package resultstore

import (
	"crypto/sha256"
	"encoding/binary"

	"backuppower/internal/sweep"
)

// Namespace bytes, the first byte of every Key. Scenario and row payloads
// share one WAL and block sequence; the namespace keeps their key spaces
// (and hit/recompute accounting) apart.
const (
	NSScenario byte = 'S'
	NSRow      byte = 'R'
	// NSProcessRow keys stochastic-process sweep rows. Process rows get
	// their own namespace byte so their fingerprints can never alias a
	// point row's, even if the two invariant digests collided: the
	// namespace is both the key prefix and part of the digested content.
	NSProcessRow byte = 'P'
)

// Key is a stable 128-bit content fingerprint: the namespace byte
// followed by 15 bytes of a sha256-derived digest. Unlike the memory
// tier's maphash keys (seeded per process), a Key is a pure function of
// the scenario content, so it means the same thing across restarts and
// across machines. A colliding pair of distinct contents (probability
// ~n²/2¹²⁰) would silently alias, which we accept the same way
// content-addressed stores do; decoded payloads carry their coordinates
// and are cross-checked against the requesting row before use.
type Key [16]byte

// NewKey derives a key from an outage-invariant content digest plus the
// outage duration. Splitting the outage out mirrors the memory tier's
// cacheKey: batch evaluators digest the invariant content once per axis
// and stamp each point's outage with one short hash instead of re-hashing
// the whole scenario per point.
func NewKey(ns byte, invariant [32]byte, outageNS int64) Key {
	var buf [41]byte
	buf[0] = ns
	copy(buf[1:33], invariant[:])
	binary.LittleEndian.PutUint64(buf[33:41], uint64(outageNS))
	sum := sha256.Sum256(buf[:])
	var k Key
	k[0] = ns
	copy(k[1:], sum[:15])
	return k
}

// Store is the persistent tier's contract. Implementations must be safe
// for concurrent use; Get/Put are best-effort (a corrupt or unwritable
// record degrades to a miss or a dropped put, counted in Stats, never an
// error surfaced to evaluation).
type Store interface {
	// Get returns the payload stored under k. A miss (or a corrupt
	// record, counted) returns ok == false. The returned slice must be
	// treated as immutable.
	Get(k Key) (payload []byte, ok bool)

	// Put stores payload under k, overwriting any previous value. The
	// write is buffered in the WAL + memtable until the next Seal.
	Put(k Key, payload []byte)

	// Seal persists the memtable as an immutable sorted block and
	// truncates the WAL — called when a sweep completes, so a finished
	// run's rows survive even an unclean shutdown. A no-op when nothing
	// is pending.
	Seal() error

	// Scan calls fn for every live key in the namespace, deduplicated
	// newest-wins, in ascending key order. fn's error aborts the scan.
	Scan(ns byte, fn func(k Key, payload []byte) error) error

	// Stats reports the store's cumulative counters and current gauges.
	Stats() Stats

	// Close seals pending writes, waits for background compaction, and
	// releases file handles.
	Close() error
}

// Stats is a snapshot of a store's counters. Hits count Gets served;
// Recomputes count Gets that missed at an evaluation site — each one is
// (at most) one simulation the store could not save. The Rows/Scenarios
// split follows the key namespace. Field order is the JSON key order
// (alphabetical), pinned because /metrics documents are layout-stable.
type Stats struct {
	Blocks              int    `json:"blocks"`
	Compactions         uint64 `json:"compactions"`
	CorruptBlocks       uint64 `json:"corrupt_blocks"`
	CorruptRecords      uint64 `json:"corrupt_records"`
	Hits                uint64 `json:"hits"`
	HitsRows            uint64 `json:"hits_rows"`
	HitsScenarios       uint64 `json:"hits_scenarios"`
	Keys                int    `json:"keys"`
	PutErrors           uint64 `json:"put_errors"`
	Puts                uint64 `json:"puts"`
	Recomputes          uint64 `json:"recomputes"`
	RecomputesRows      uint64 `json:"recomputes_rows"`
	RecomputesScenarios uint64 `json:"recomputes_scenarios"`
	Seals               uint64 `json:"seals"`
	WALBytes            int64  `json:"wal_bytes"`
	WALReplayed         uint64 `json:"wal_replayed"`
	WALTornBytes        int64  `json:"wal_torn_bytes"`
}

// Tiered composes the in-memory singleflight tier over an optional
// persistent Store. With no disk tier it delegates to the memory cache
// directly, so attaching the type costs nothing when no -store-dir is
// configured. With a disk tier, the warm/cold split reuses the Peek/Do
// discipline: the memory tier is consulted first (a completed entry is a
// hit, exactly as today), the disk tier fills memory misses (seeding the
// memory entry through Do, which counts the same miss a computation
// would), and only a miss in both tiers computes — then writes through to
// disk. Memory-tier hit/miss accounting is therefore indistinguishable
// from the store-less configuration.
//
// stable is called only when the disk tier is actually consulted, so the
// (comparatively expensive) content digest is never paid on the memory
// fast path. Errors are memoized in the memory tier only — the disk
// stores results, never failures.
type Tiered[K comparable, V any] struct {
	mem    *sweep.Cache[K, V]
	disk   Store
	encode func(V) ([]byte, bool)
	decode func([]byte) (V, bool)
}

// NewTiered builds a tiered view over mem and disk (disk may be nil).
// encode/decode are the payload codec; encode returning false skips the
// disk write (e.g. a value that cannot round-trip), decode returning
// false degrades the disk hit to a miss.
func NewTiered[K comparable, V any](mem *sweep.Cache[K, V], disk Store,
	encode func(V) ([]byte, bool), decode func([]byte) (V, bool)) *Tiered[K, V] {
	return &Tiered[K, V]{mem: mem, disk: disk, encode: encode, decode: decode}
}

// Persistent reports whether a disk tier is attached.
func (t *Tiered[K, V]) Persistent() bool { return t.disk != nil }

// Do returns the memoized result for memKey, consulting memory, then
// disk, then computing. Concurrent callers for the same memKey share a
// single computation (singleflight, inherited from the memory tier).
func (t *Tiered[K, V]) Do(memKey K, stable func() Key, compute func() (V, error)) (V, error) {
	if t.disk == nil {
		return t.mem.Do(memKey, compute)
	}
	if v, err, ok := t.mem.Peek(memKey); ok {
		return v, err
	}
	sk := stable()
	if payload, ok := t.disk.Get(sk); ok {
		if v, ok := t.decode(payload); ok {
			// Seed memory through Do: the first seeder counts the miss a
			// computation would have, a racing caller joins it as a hit.
			return t.mem.Do(memKey, func() (V, error) { return v, nil })
		}
	}
	v, err := t.mem.Do(memKey, compute)
	if err == nil {
		if payload, ok := t.encode(v); ok {
			t.disk.Put(sk, payload)
		}
	}
	return v, err
}

// Peek returns the memoized result without computing: memory first (a
// completed entry is a hit), then disk (a disk hit seeds the memory tier,
// counting the miss the skipped computation would have). ok is false only
// when both tiers miss; as with the memory tier's Peek, that miss is not
// counted here — the caller's seeding Do reports it.
func (t *Tiered[K, V]) Peek(memKey K, stable func() Key) (V, error, bool) {
	if v, err, ok := t.mem.Peek(memKey); ok {
		return v, err, true
	}
	if t.disk == nil {
		var zero V
		return zero, nil, false
	}
	sk := stable()
	if payload, ok := t.disk.Get(sk); ok {
		if v, ok := t.decode(payload); ok {
			v2, err := t.mem.Do(memKey, func() (V, error) { return v, nil })
			return v2, err, true
		}
	}
	var zero V
	return zero, nil, false
}

// Seed memoizes an already-computed value: the memory entry goes through
// Do (first seeder counts the miss, racers join as hits — the batch
// evaluator's existing contract) and the value is written through to the
// disk tier. The memoized value is returned: if a racing computation got
// there first, its entry wins, exactly as in the memory-only path.
func (t *Tiered[K, V]) Seed(memKey K, stable func() Key, v V) (V, error) {
	got, err := t.mem.Do(memKey, func() (V, error) { return v, nil })
	if t.disk != nil && err == nil {
		if payload, ok := t.encode(got); ok {
			t.disk.Put(stable(), payload)
		}
	}
	return got, err
}
