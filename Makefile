GO ?= go

.PHONY: ci vet build test race bench-smoke bench

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Single-iteration smoke of the deepest experiment (Fig 6: variant race ×
# rating sweep × duration fan-out) so CI exercises the sweep engine
# end-to-end without paying for a full benchmark run.
bench-smoke:
	$(GO) test -run=NONE -bench=BenchmarkFig6 -benchtime=1x .

bench:
	$(GO) test -bench=. -benchmem .
