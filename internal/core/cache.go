package core

import (
	"hash/maphash"
	"math"
	"reflect"
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/cost"
	"backuppower/internal/migration"
	"backuppower/internal/server"
	"backuppower/internal/storage"
	"backuppower/internal/sweep"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// scenarioCacheSize caps the shared memo cache. A full cmd/experiments
// regeneration touches a few tens of thousands of distinct scenarios; the
// cap keeps pathological callers (open-ended Monte-Carlo grids) from
// growing the process without bound.
const scenarioCacheSize = 1 << 15

// scenarioCache memoizes cluster.SimulateAggregate results process-wide,
// keyed by the full (Env, Workload, Backup, Technique, Outage) content.
// Simulation is pure — the same scenario always produces the same Result —
// so every figure, Monte-Carlo year and portfolio section that lands on an
// already evaluated point reuses it instead of re-simulating. Results are
// shared between callers and must be treated as immutable.
//
// The map key is a pre-digested cacheKey rather than a comparable mirror
// of the whole scenario: hashing the several-hundred-byte scenario content
// on every lookup was ~2µs against ~2µs simulations. The scenario content
// splits into a slow-moving environment half — digested once per Framework
// and revalidated by a cheap struct compare — and a per-call rest half
// (workload, backup, technique, outage) collapsed by a single
// maphash.Comparable pass. A colliding pair of distinct scenarios
// (probability ~n²/2⁶⁴ within one environment) would silently alias, which
// we accept the same way content-addressed stores do.
var scenarioCache = sweep.NewCache[cacheKey, cluster.Result](scenarioCacheSize)

var fpSeedA, fpSeedB = maphash.MakeSeed(), maphash.MakeSeed()
var restSeed = maphash.MakeSeed()

type fingerprint struct{ a, b uint64 }

// cacheKey is the scenario cache's map key: the environment's 128-bit
// content fingerprint, a 64-bit digest of the outage-invariant per-call
// rest, and the outage verbatim. Keeping the outage out of the rest
// digest is what makes the batch entry points cheap: EvaluateBatch
// digests (env, rest) once and stamps each axis point's outage into the
// key directly, so per-point key cost is a struct copy instead of a
// content hash.
type cacheKey struct {
	env    fingerprint
	rest   uint64
	outage time.Duration
}

// envKey is a comparable mirror of technique.Env: Scenario's environment
// half, with the one slice in the graph (server.Config.PStates) folded
// into a 64-bit digest via serverKey. Building it is a plain struct copy —
// no reflection, no formatting.
type envKey struct {
	servers int
	server  serverKey
	disk    storage.Disk
	mig     migration.Config
}

// restKey is the outage-invariant per-call half of the scenario content:
// everything that varies between Evaluate calls on one Framework except
// the outage itself, which rides in cacheKey uncompressed. The Technique
// interface field alone does NOT keep distinct techniques apart in the
// hash — the runtime's interface hash folds only the value
// representation, and every zero-size technique shares the same (empty)
// representation, so Baseline{} and any other fieldless technique would
// silently alias. The techType field (a reflect.Type, hashed by its
// unique runtime pointer) carries the dynamic type explicitly;
// TestScenarioKeySeparatesFields pins the separation.
type restKey struct {
	load     workload.Spec
	backup   cost.Backup
	tech     technique.Technique
	techType reflect.Type
}

// envFPEntry caches the environment fingerprint for one Env content.
type envFPEntry struct {
	key envKey
	fp  fingerprint
}

// serverKey mirrors server.Config field-for-field with PStates replaced by
// its digest. TestScenarioKeyMirrorsServerConfig pins the field count so a
// new Config field cannot silently fall out of the cache key.
type serverKey struct {
	name            string
	idleW, peakW    units.Watts
	memoryGB, dimms int
	sleepWPer       units.Watts
	states          uint64 // digest of the elided PStates
	tstates         int
	throttleLatency time.Duration
	toSleep, toWake time.Duration
	restart         time.Duration
}

func keyEnv(e technique.Env) envKey {
	return envKey{
		servers: e.Servers,
		server:  keyServer(e.Server),
		disk:    e.Disk,
		mig:     e.Mig,
	}
}

func keyServer(c server.Config) serverKey {
	return serverKey{
		name:            c.Name,
		idleW:           c.IdleW,
		peakW:           c.PeakW,
		memoryGB:        c.MemoryGB,
		dimms:           c.DIMMs,
		sleepWPer:       c.SleepWPer,
		states:          pstatesDigest(c.PStates),
		tstates:         c.TStates,
		throttleLatency: c.ThrottleLatency,
		toSleep:         c.TransitionToSleep,
		toWake:          c.ResumeFromSleep,
		restart:         c.RestartTime,
	}
}

// scenarioCacheKey digests a scenario into the cache's map key. The
// environment sub-fingerprint is memoized on the Framework behind an
// atomic pointer: the cached entry carries the envKey content it was
// computed from and is revalidated by struct equality, so mutating f.Env
// between Evaluate calls transparently re-digests (and racing writers all
// store the same content-derived value).
func (f *Framework) scenarioCacheKey(s cluster.Scenario) cacheKey {
	ek := keyEnv(s.Env)
	var fp fingerprint
	if hit := f.envfp.Load(); hit != nil && hit.key == ek {
		fp = hit.fp
	} else {
		fp = fingerprint{maphash.Comparable(fpSeedA, ek), maphash.Comparable(fpSeedB, ek)}
		f.envfp.Store(&envFPEntry{key: ek, fp: fp})
	}
	return cacheKey{
		env: fp,
		rest: maphash.Comparable(restSeed, restKey{
			load:     s.Workload,
			backup:   s.Backup,
			tech:     s.Technique,
			techType: reflect.TypeOf(s.Technique),
		}),
		outage: s.Outage,
	}
}

// keyable reports whether the technique's dynamic type is comparable. All
// shipped techniques are flat value structs (pinned by
// TestShippedTechniquesAreCacheKeyable); a hypothetical technique holding
// a slice or map would make the key hash panic, so Evaluate routes such
// values around the cache instead.
func keyable(s cluster.Scenario) bool {
	return s.Technique == nil || reflect.TypeOf(s.Technique).Comparable()
}

// pstatesDigest folds a DVFS table into word-wise FNV-1a. Collisions would
// silently alias two scenarios, but in practice a process sees a handful
// of distinct tables (MakePStates with a few shapes), and the digest is
// re-mixed through maphash with the rest of the key anyway.
func pstatesDigest(ps []server.PState) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(len(ps)))
	for _, p := range ps {
		mix(uint64(p.Index))
		mix(math.Float64bits(p.FreqRatio))
		mix(math.Float64bits(p.DynPowerMul))
	}
	return h
}

// ResetScenarioCache empties the shared scenario cache. Benchmarks use it
// to measure cold-path costs; regular callers never need it.
func ResetScenarioCache() { scenarioCache.Purge() }

// ScenarioCacheLen reports how many scenario results are currently
// memoized (visibility for tests and tuning).
func ScenarioCacheLen() int { return scenarioCache.Len() }

// ScenarioCacheStats reports the shared scenario cache's cumulative
// hit/miss counters since process start. The serving layer exports them
// on /metrics; the warm-cache integration test asserts on their deltas.
func ScenarioCacheStats() (hits, misses uint64) { return scenarioCache.Stats() }
