// Package core is the paper's evaluation framework: it composes the
// component models (battery, genset, UPS, server, workload, technique,
// cluster) to answer the questions Sections 4-6 pose —
//
//   - What does a given backup configuration cost, and what performance and
//     down time does it deliver for a workload and outage duration?
//   - What is the minimum-cost backup that lets a given technique survive a
//     given outage (the per-technique cost bars of Figures 6-9)?
//   - Which technique is best for a fixed configuration (Figure 5)?
//   - How should an online policy escalate through techniques when the
//     outage duration is unknown (Section 7)?
package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"backuppower/internal/battery"
	"backuppower/internal/cluster"
	"backuppower/internal/cost"
	"backuppower/internal/genset"
	"backuppower/internal/resultstore"
	"backuppower/internal/sweep"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// Framework evaluates scenarios for one datacenter environment.
type Framework struct {
	Env technique.Env

	// Battery selects the chemistry used when sizing UPS capacity
	// (lead-acid by default; Section 7 discusses Li-ion's different
	// power/energy cost asymmetry).
	Battery battery.Technology

	// envfp memoizes the scenario cache's environment sub-fingerprint
	// (see scenarioCacheKey). The zero value is ready to use, so plain
	// Framework literals keep working.
	envfp atomic.Pointer[envFPEntry]
}

// DenseSizingGrid forces MinCostUPS back onto the dense 65-point rating
// sweep instead of the bracketed coarse-then-refine search. Both are
// deterministic; the flag exists as an escape hatch (and as the reference
// the bracket equivalence tests compare against). Set it before starting
// evaluations — it is read per sizing call without synchronization.
var DenseSizingGrid bool

// New returns a framework over the paper's default testbed scaled to n
// servers.
func New(n int) *Framework {
	return &Framework{Env: technique.DefaultEnv(n), Battery: battery.LeadAcid()}
}

// Evaluate runs a single scenario, memoized through the shared scenario
// cache: the same (Env, Workload, Backup, Technique, Outage) point is
// simulated once per process no matter how many figures ask for it. The
// returned Result carries no timeline traces — evaluation runs on the
// allocation-free aggregate path, and no aggregate caller reads traces;
// use cluster.Simulate directly for timelines (as cmd/backupsim does).
//
// Non-positive or absurd outage durations and invalid server counts are
// rejected up front with a typed *InputError wrapping ErrInvalidInput.
func (f *Framework) Evaluate(b cost.Backup, tech technique.Technique, w workload.Spec, outage time.Duration) (cluster.Result, error) {
	if err := f.validateCall(outage); err != nil {
		return cluster.Result{}, err
	}
	scn := cluster.Scenario{
		Env: f.Env, Workload: w, Backup: b, Technique: tech, Outage: outage,
	}
	if !keyable(scn) {
		return cluster.SimulateAggregate(scn)
	}
	return scenarioStore().Do(f.scenarioCacheKey(scn),
		func() resultstore.Key { return stableScenarioKey(scn) },
		func() (cluster.Result, error) { return cluster.SimulateAggregate(scn) })
}

// EvaluateCtx is Evaluate with cancellation: the simulation itself is
// microseconds and not interruptible, but a request whose context has
// already expired (queueing, an upstream deadline) is rejected before
// simulating, and the context error is returned as-is so callers can
// map deadline expiry distinctly from invalid input.
func (f *Framework) EvaluateCtx(ctx context.Context, b cost.Backup, tech technique.Technique, w workload.Spec, outage time.Duration) (cluster.Result, error) {
	if err := ctx.Err(); err != nil {
		return cluster.Result{}, err
	}
	return f.Evaluate(b, tech, w, outage)
}

// OperatingPoint is a technique paired with the cheapest backup that lets
// it survive an outage, and the resulting metrics.
type OperatingPoint struct {
	Technique string
	Backup    cost.Backup
	Result    cluster.Result
	NormCost  float64
}

// MinCostUPS finds the cheapest UPS-only backup (no DG — Section 6.2
// restricts the technique study to DG-less configs) under which the
// technique survives the entire outage without state loss. The search
// exploits the Peukert trade: a larger power rating costs more electronics
// but stretches runtime superlinearly, so the cost curve over the rating is
// swept numerically.
func (f *Framework) MinCostUPS(tech technique.Technique, w workload.Spec, outage time.Duration) (OperatingPoint, bool) {
	op, ok, _ := f.MinCostUPSCtx(context.Background(), tech, w, outage)
	return op, ok
}

// ratingCandidate is one point of the UPS-rating sweep.
type ratingCandidate struct {
	backup cost.Backup
	cost   float64
	ok     bool
}

// MinCostUPSCtx is MinCostUPS with cancellation: the rating sweep fans out
// through the shared sweep engine and a context cancellation aborts it.
// The returned error is non-nil only on cancellation or invalid input
// (a typed *InputError wrapping ErrInvalidInput).
func (f *Framework) MinCostUPSCtx(ctx context.Context, tech technique.Technique, w workload.Spec, outage time.Duration) (OperatingPoint, bool, error) {
	op, ok, _, err := f.minCostUPSLattice(ctx, tech, w, outage, -1)
	return op, ok, err
}

// minCostUPSLattice is the sizing search over the fixed 65-point rating
// lattice, parameterized by a warm-start hint: warm is the lattice index an
// adjacent outage's search settled on (-1 for a cold call). The returned
// index is the chosen lattice point (-1 on the zero-draw path or when
// sizing fails), which axis callers chain into the next point's hint.
func (f *Framework) minCostUPSLattice(ctx context.Context, tech technique.Technique, w workload.Spec, outage time.Duration, warm int) (OperatingPoint, bool, int, error) {
	if err := f.validateCall(outage); err != nil {
		return OperatingPoint{}, false, -1, err
	}
	plan := tech.Plan(f.Env, w, outage)
	peakNeed := plan.PeakPower()
	dcPeak := f.Env.PeakPower()
	if peakNeed > dcPeak {
		peakNeed = dcPeak
	}
	btech := f.Battery
	if btech.Name == "" {
		btech = battery.LeadAcid()
	}

	consider := func(rated units.Watts) ratingCandidate {
		if rated < peakNeed {
			return ratingCandidate{}
		}
		runtime, ok := cluster.RequiredRuntime(f.Env, w, plan, genset.None(), outage,
			rated, btech.PeukertExponent, btech.MinLoadFraction)
		if !ok {
			return ratingCandidate{}
		}
		// Tiny provisioning margin so the simulation's fractional
		// depletion does not land exactly on empty at the outage end,
		// then rounded up once to whole seconds (battery modules are not
		// sold in nanoseconds).
		runtime = time.Duration(float64(runtime) * 1.001)
		if whole := runtime.Truncate(time.Second); whole < runtime {
			runtime = whole + time.Second
		}
		b := cost.CustomTech(fmt.Sprintf("ups-%s", tech.Name()), 0, rated, runtime, btech)
		return ratingCandidate{backup: b, cost: float64(b.AnnualCost()), ok: true}
	}

	if peakNeed <= 0 {
		// Zero-draw plan (fully state-safe immediately) — no backup needed.
		b := cost.MinCost(dcPeak)
		res, err := f.Evaluate(b, tech, w, outage)
		if err != nil || !res.Survived {
			return OperatingPoint{}, false, -1, nil
		}
		return OperatingPoint{Technique: tech.Name(), Backup: b, Result: res}, true, -1, nil
	}
	// Candidate ratings live on a fixed 65-point geometric lattice from
	// the plan's peak need to the datacenter peak. The dense sweep
	// evaluates every lattice point; the default bracketed search
	// evaluates a 9-point coarse pass (stride 8) and then halves the
	// stride around the running argmin (4, 2, 1) down to the same lattice
	// resolution — ~15 RequiredRuntime calls instead of 65. The cost
	// curve over the rating is convex up to the one-second runtime
	// quantization (electronics cost rises linearly, the Peukert battery
	// term falls like rating^(1-k)), so the bracket lands on the dense
	// argmin; TestBracketSizingMatchesDenseGrid pins the equivalence
	// across the registry's whole sizing grid.
	const steps = 64
	lo, hi := float64(peakNeed), float64(dcPeak)
	if hi < lo {
		hi = lo
	}
	ratingAt := func(i int) units.Watts {
		return units.Watts(lo * math.Pow(hi/lo, float64(i)/steps))
	}

	var cands [steps + 1]ratingCandidate
	var seen [steps + 1]bool
	evalRound := func(idxs []int) error {
		got, err := sweep.Map(ctx, idxs, func(_ context.Context, i int) (ratingCandidate, error) {
			return consider(ratingAt(i)), nil
		})
		if err != nil {
			return err
		}
		for j, c := range got {
			cands[idxs[j]], seen[idxs[j]] = c, true
		}
		return nil
	}
	// argmin scans the evaluated lattice points in index order with a
	// strict <, so ties resolve to the lowest rating — the same fold the
	// dense serial sweep used. Selection happens only after each round's
	// parallel results are folded, so the outcome is width-independent.
	argmin := func() (int, bool) {
		best, bestCost, found := 0, math.Inf(1), false
		for i := 0; i <= steps; i++ {
			if seen[i] && cands[i].ok && cands[i].cost < bestCost {
				best, bestCost, found = i, cands[i].cost, true
			}
		}
		return best, found
	}

	// Warm start from an adjacent outage's argmin (axis sizing): probe the
	// hinted index and its lattice neighbors; if the hint is feasible and a
	// strict local minimum, the convexity the bracketed search already
	// relies on makes it the dense-grid argmin, so the coarse-and-refine
	// rounds are skipped (~3 rating evaluations instead of ~15). Any tie,
	// infeasibility, or boundary ambiguity discards the probe and reruns
	// the standard search on reset state — the cold trajectory exactly.
	if warm >= 0 && warm <= steps && !DenseSizingGrid {
		probe := make([]int, 0, 3)
		for _, j := range [3]int{warm - 1, warm, warm + 1} {
			if j >= 0 && j <= steps {
				probe = append(probe, j)
			}
		}
		if err := evalRound(probe); err != nil {
			return OperatingPoint{}, false, -1, err
		}
		localMin := cands[warm].ok
		for _, j := range probe {
			if j != warm && (!cands[j].ok || cands[j].cost <= cands[warm].cost) {
				localMin = false
			}
		}
		if localMin {
			best := cands[warm].backup
			res, err := f.Evaluate(best, tech, w, outage)
			if err != nil || !res.Survived {
				return OperatingPoint{}, false, -1, nil
			}
			return OperatingPoint{
				Technique: tech.Name(),
				Backup:    best,
				Result:    res,
				NormCost:  best.NormalizedCost(dcPeak),
			}, true, warm, nil
		}
		cands = [steps + 1]ratingCandidate{}
		seen = [steps + 1]bool{}
	}

	if DenseSizingGrid {
		idxs := make([]int, steps+1)
		for i := range idxs {
			idxs[i] = i
		}
		if err := evalRound(idxs); err != nil {
			return OperatingPoint{}, false, -1, err
		}
	} else {
		coarse := [...]int{0, 8, 16, 24, 32, 40, 48, 56, 64}
		if err := evalRound(coarse[:]); err != nil {
			return OperatingPoint{}, false, -1, err
		}
		// Feasibility is uniform across the lattice (every point sources
		// the plan's peak need), so an all-infeasible coarse pass means
		// the dense grid would find nothing either — skip refinement.
		if c, ok := argmin(); ok {
			for stride := 4; stride >= 1; stride /= 2 {
				var round [2]int
				n := 0
				for _, j := range [2]int{c - stride, c + stride} {
					if j >= 0 && j <= steps && !seen[j] {
						round[n] = j
						n++
					}
				}
				if n > 0 {
					if err := evalRound(round[:n]); err != nil {
						return OperatingPoint{}, false, -1, err
					}
				}
				c, _ = argmin()
			}
		}
	}

	bestIdx, found := argmin()
	if !found {
		return OperatingPoint{}, false, -1, nil
	}
	best := cands[bestIdx].backup
	res, err := f.Evaluate(best, tech, w, outage)
	if err != nil || !res.Survived {
		return OperatingPoint{}, false, -1, nil
	}
	return OperatingPoint{
		Technique: tech.Name(),
		Backup:    best,
		Result:    res,
		NormCost:  best.NormalizedCost(dcPeak),
	}, true, bestIdx, nil
}

// Band is a (min, max) pair over a technique's variants — the paper's
// (Min,Max) bars for DVFS-based techniques.
type Band struct {
	Min, Max float64
}

// Widen grows the band to include v.
func (b *Band) Widen(v float64) {
	if v < b.Min {
		b.Min = v
	}
	if v > b.Max {
		b.Max = v
	}
}

// DurationBand is a (min, max) pair of durations.
type DurationBand struct {
	Min, Max time.Duration
}

// Widen grows the band to include d.
func (b *DurationBand) Widen(d time.Duration) {
	if d < b.Min {
		b.Min = d
	}
	if d > b.Max {
		b.Max = d
	}
}

// TechniqueSummary aggregates a technique family's operating points for one
// workload and outage duration — one column group of Figures 6-9.
type TechniqueSummary struct {
	Technique string
	Feasible  bool
	Cost      Band
	Perf      Band
	Downtime  DurationBand
	Points    []OperatingPoint
}

// variant is one concrete instance within a technique family.
type variant struct {
	family string
	tech   technique.Technique
}

// TechVariant is an exported (family, technique) pair: one concrete
// instance of a Section 6 technique family. The grid subsystem sweeps the
// same variant set the figures do, so its enumeration lives here.
type TechVariant struct {
	Family string
	Tech   technique.Technique
}

// TechVariants expands the Section 6 technique families into concrete
// instances in the canonical evaluation order — the exact set and order
// EvaluateTechniquesCtx races, exported for declarative grid specs.
func (f *Framework) TechVariants() []TechVariant {
	vs := f.variants()
	out := make([]TechVariant, len(vs))
	for i, v := range vs {
		out[i] = TechVariant{Family: v.family, Tech: v.tech}
	}
	return out
}

// variants expands the Section 6 technique families into concrete
// instances: throttling across the DVFS range, hybrids across
// active-fraction splits.
func (f *Framework) variants() []variant {
	deepest := len(f.Env.Server.PStates) - 1
	var out []variant
	add := func(family string, t technique.Technique) {
		out = append(out, variant{family, t})
	}
	for p := 1; p <= deepest; p++ {
		add("Throttling", technique.Throttling{PState: p})
	}
	add("Migration", technique.Migration{})
	add("Migration", technique.Migration{ThrottleDeep: true})
	add("ProactiveMigration", technique.Migration{Proactive: true})
	add("ProactiveMigration", technique.Migration{Proactive: true, ThrottleDeep: true})
	add("Sleep", technique.Sleep{})
	add("Sleep-L", technique.Sleep{LowPower: true})
	add("Hibernate", technique.Hibernate{})
	add("Hibernate-L", technique.Hibernate{LowPower: true})
	add("ProactiveHibernate", technique.Hibernate{Proactive: true})
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		add("Throttle+Sleep-L", technique.ThrottleThenSave{
			PState: deepest, Save: technique.SaveSleep, ActiveFraction: frac,
		})
		add("Throttle+Hibernate", technique.ThrottleThenSave{
			PState: deepest, Save: technique.SaveHibernate, ActiveFraction: frac,
		})
		add("Migration+Sleep-L", technique.MigrationThenSleep{ActiveFraction: frac})
	}
	return out
}

// Families returns the family names in presentation order.
func Families() []string {
	return []string{
		"Throttling", "Migration", "ProactiveMigration",
		"Sleep", "Sleep-L", "Hibernate", "Hibernate-L", "ProactiveHibernate",
		"Throttle+Sleep-L", "Throttle+Hibernate", "Migration+Sleep-L",
	}
}

// EvaluateTechniques computes, for each technique family, the band of
// min-cost operating points across its variants — the data behind
// Figures 6-9.
func (f *Framework) EvaluateTechniques(w workload.Spec, outage time.Duration) []TechniqueSummary {
	sums, _ := f.EvaluateTechniquesCtx(context.Background(), w, outage)
	return sums
}

// EvaluateTechniquesCtx fans the ~30 technique variants out through the
// sweep engine (each variant's min-cost sizing is itself a parallel rating
// sweep) and folds the operating points into per-family bands in variant
// order, so the result is identical to the serial evaluation. The error is
// non-nil only on context cancellation or invalid input.
func (f *Framework) EvaluateTechniquesCtx(ctx context.Context, w workload.Spec, outage time.Duration) ([]TechniqueSummary, error) {
	if err := f.validateCall(outage); err != nil {
		return nil, err
	}
	points, err := sweep.Map(ctx, f.variants(), func(ctx context.Context, v variant) (VariantPoint, error) {
		op, ok, err := f.MinCostUPSCtx(ctx, v.tech, w, outage)
		if err != nil {
			return VariantPoint{}, err
		}
		return VariantPoint{Family: v.family, Op: op, OK: ok}, nil
	})
	if err != nil {
		return nil, err
	}
	return FoldSummaries(points), nil
}

// VariantPoint is one variant's sizing outcome on its way into a family
// fold: the family label plus the min-cost operating point (OK false when
// no UPS-only configuration lets the variant survive the outage).
type VariantPoint struct {
	Family string
	Op     OperatingPoint
	OK     bool
}

// FoldSummaries reduces per-variant operating points (in variant order)
// into per-family band summaries, families in presentation order — the
// serial fold behind Figures 6-9, shared by EvaluateTechniquesCtx and the
// grid-spec figure generators so both produce identical tables.
func FoldSummaries(points []VariantPoint) []TechniqueSummary {
	byFamily := map[string]*TechniqueSummary{}
	order := Families()
	for _, name := range order {
		byFamily[name] = &TechniqueSummary{Technique: name}
	}
	for _, p := range points {
		if !p.OK {
			continue
		}
		s := byFamily[p.Family]
		if s == nil {
			continue
		}
		op := p.Op
		s.Points = append(s.Points, op)
		if !s.Feasible {
			s.Feasible = true
			s.Cost = Band{op.NormCost, op.NormCost}
			s.Perf = Band{op.Result.Perf, op.Result.Perf}
			s.Downtime = DurationBand{op.Result.Downtime, op.Result.Downtime}
			continue
		}
		s.Cost.Widen(op.NormCost)
		s.Perf.Widen(op.Result.Perf)
		s.Downtime.Widen(op.Result.Downtime)
	}
	out := make([]TechniqueSummary, 0, len(order))
	for _, name := range order {
		out = append(out, *byFamily[name])
	}
	return out
}

// BestForConfig picks the technique (across all variants, plus the plain
// baseline) that performs best behind a FIXED backup configuration — the
// Figure 5 selection rule: "for each backup configuration, we choose the
// system technique that offers the highest performance and lowest down
// time". Survival dominates, then higher performance, then lower downtime.
func (f *Framework) BestForConfig(b cost.Backup, w workload.Spec, outage time.Duration) (cluster.Result, technique.Technique) {
	res, tech, _ := f.BestForConfigCtx(context.Background(), b, w, outage)
	return res, tech
}

// BestForConfigCtx is BestForConfig with the candidate race fanned out
// through the sweep engine. Candidates are compared in enumeration order
// after the parallel evaluation, so ties resolve exactly as in a serial
// run. The error is non-nil only on context cancellation or invalid input.
func (f *Framework) BestForConfigCtx(ctx context.Context, b cost.Backup, w workload.Spec, outage time.Duration) (cluster.Result, technique.Technique, error) {
	if err := f.validateCall(outage); err != nil {
		return cluster.Result{}, nil, err
	}
	candidates := append([]variant{
		{"Baseline", technique.Baseline{}},
	}, f.variants()...)
	// Budget-driven capping: the power move an underprovisioned UPS
	// (DG-SmallPUPS, SmallP-LargeEUPS) needs to keep serving under its
	// cap — the capping controller picks the fastest fitting P/T state.
	if b.UPS.Provisioned() {
		candidates = append(candidates,
			variant{"CappedThrottling", technique.CappedThrottling{Budget: b.UPS.PowerCapacity}})
	}
	type candResult struct {
		res cluster.Result
		ok  bool
	}
	results, err := sweep.Map(ctx, candidates, func(_ context.Context, v variant) (candResult, error) {
		res, err := f.Evaluate(b, v.tech, w, outage)
		if err != nil {
			// An unevaluable candidate is skipped, exactly as the serial
			// loop did; it must not abort the race.
			return candResult{}, nil
		}
		return candResult{res: res, ok: true}, nil
	})
	if err != nil {
		return cluster.Result{}, nil, err
	}
	var bestRes cluster.Result
	var bestTech technique.Technique
	have := false
	better := func(a, b cluster.Result) bool {
		if a.Survived != b.Survived {
			return a.Survived
		}
		if !units.AlmostEqual(a.Perf, b.Perf, 1e-6) {
			return a.Perf > b.Perf
		}
		return a.Downtime < b.Downtime
	}
	for i, r := range results {
		if !r.ok {
			continue
		}
		if !have || better(r.res, bestRes) {
			bestRes, bestTech, have = r.res, candidates[i].tech, true
		}
	}
	return bestRes, bestTech, nil
}
