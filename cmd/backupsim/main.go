// Command backupsim runs one outage scenario — a Table 3 configuration, a
// Section 5 technique, a Table 7 workload, and an outage duration — and
// prints the resulting metrics plus the power/performance timeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/cost"
	"backuppower/internal/report"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

func techniques(env technique.Env) map[string]technique.Technique {
	out := map[string]technique.Technique{"baseline": technique.Baseline{}}
	deepest := len(env.Server.PStates) - 1
	out["throttle"] = technique.Throttling{PState: deepest}
	out["throttle-light"] = technique.Throttling{PState: 1}
	out["migration"] = technique.Migration{}
	out["proactive-migration"] = technique.Migration{Proactive: true}
	out["sleep"] = technique.Sleep{}
	out["sleep-l"] = technique.Sleep{LowPower: true}
	out["hibernate"] = technique.Hibernate{}
	out["hibernate-l"] = technique.Hibernate{LowPower: true}
	out["proactive-hibernate"] = technique.Hibernate{Proactive: true}
	out["throttle+sleep-l"] = technique.ThrottleThenSave{PState: deepest, Save: technique.SaveSleep}
	out["throttle+hibernate"] = technique.ThrottleThenSave{PState: deepest, Save: technique.SaveHibernate}
	out["migration+sleep-l"] = technique.MigrationThenSleep{}
	// Section 7 extensions.
	out["nvdimm"] = technique.NVDIMM{}
	out["nvdimm+throttle"] = technique.NVDIMMThrottle{PState: deepest}
	out["barely-alive"] = technique.BarelyAlive{}
	out["geo-failover"] = technique.GeoFailover{Save: technique.SaveSleep}
	out["capped"] = technique.CappedThrottling{Budget: env.PeakPower() / 2}
	return out
}

func main() {
	servers := flag.Int("servers", 64, "number of servers")
	cfgName := flag.String("config", "LargeEUPS", "Table 3 configuration name")
	techName := flag.String("technique", "throttle", "outage-handling technique")
	wlName := flag.String("workload", "specjbb", "workload (specjbb, web-search, memcached, speccpu-mcf8)")
	outageMin := flag.Float64("outage", 30, "outage duration (minutes)")
	timeline := flag.Bool("timeline", false, "print the power/perf timeline")
	flag.Parse()

	env := technique.DefaultEnv(*servers)
	techs := techniques(env)

	tech, ok := techs[strings.ToLower(*techName)]
	if !ok {
		var names []string
		for n := range techs {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "unknown technique %q; options: %s\n", *techName, strings.Join(names, ", "))
		os.Exit(2)
	}
	w, ok := workload.ByName(*wlName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wlName)
		os.Exit(2)
	}
	b, ok := cost.ByName(*cfgName, env.PeakPower())
	if !ok {
		var names []string
		for _, c := range cost.Table3(env.PeakPower()) {
			names = append(names, c.Name)
		}
		fmt.Fprintf(os.Stderr, "unknown config %q; options: %s\n", *cfgName, strings.Join(names, ", "))
		os.Exit(2)
	}

	res, err := cluster.Simulate(cluster.Scenario{
		Env: env, Workload: w, Backup: b, Technique: tech,
		Outage: time.Duration(*outageMin * float64(time.Minute)),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("scenario: %s / %s / %s / %s outage (%d servers, peak %v)\n",
		b.Name, res.Technique, w.Name, report.FormatDuration(res.Outage), *servers, env.PeakPower())
	fmt.Printf("  cost (vs MaxPerf):  %.2f (%v)\n", res.Cost, b.AnnualCost())
	fmt.Printf("  survived:           %v", res.Survived)
	if !res.Survived {
		fmt.Printf("  (state lost at %s)", report.FormatDuration(res.CrashedAt))
	}
	fmt.Println()
	fmt.Printf("  perf during outage: %.2f\n", res.Perf)
	fmt.Printf("  down time:          %s\n", report.DurationBand(res.DowntimeMin, res.DowntimeMax))
	fmt.Printf("  peak UPS draw:      %v (capacity %v)\n", res.PeakUPSDraw, b.UPS.PowerCapacity)
	fmt.Printf("  UPS energy used:    %v (%.0f%% charge left)\n", res.UPSEnergy, res.UPSRemaining*100)

	if *timeline {
		fmt.Println("\n  t        backup load   perf")
		for _, s := range res.PowerTrace.Samples() {
			perf := res.PerfTrace.At(s.At)
			fmt.Printf("  %-8s %-12v %.2f\n",
				report.FormatDuration(s.At), units.Watts(s.Value), perf)
		}
	}
}
