package workload

import (
	"testing"

	"backuppower/internal/units"
)

func TestAllValid(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("got %d workloads, want 4", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if err := w.Validate(); err != nil {
			t.Errorf("%s invalid: %v", w.Name, err)
		}
		if seen[w.Name] {
			t.Errorf("duplicate name %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("memcached")
	if !ok || w.Name != "memcached" {
		t.Errorf("ByName memcached = %+v, %v", w.Name, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown workload should miss")
	}
}

func TestTable7Footprints(t *testing.T) {
	want := map[string]float64{
		"web-search":   40,
		"specjbb":      18,
		"memcached":    20,
		"speccpu-mcf8": 16,
	}
	for _, w := range All() {
		if got := w.Memory.Footprint.GiB(); got != want[w.Name] {
			t.Errorf("%s footprint = %v GiB, want %v", w.Name, got, want[w.Name])
		}
	}
}

func TestPerfAtSpeedShape(t *testing.T) {
	for _, w := range All() {
		if got := w.PerfAtSpeed(1.0); !units.AlmostEqual(got, 1.0, 1e-9) {
			t.Errorf("%s perf@1.0 = %v", w.Name, got)
		}
		if got := w.PerfAtSpeed(0); got != 0 {
			t.Errorf("%s perf@0 = %v", w.Name, got)
		}
		// Monotone in speed.
		prev := 0.0
		for s := 0.1; s <= 1.0; s += 0.1 {
			cur := w.PerfAtSpeed(s)
			if cur < prev {
				t.Fatalf("%s perf not monotone at %v", w.Name, s)
			}
			// Throttling never hurts more than proportionally.
			if cur < s-1e-9 {
				t.Fatalf("%s perf %v below speed %v — Amdahl model violated", w.Name, cur, s)
			}
			prev = cur
		}
	}
}

func TestMemcachedThrottlesBetterThanSpecjbb(t *testing.T) {
	// §6.2: Memcached's memory stalls make throttling cheap relative to
	// SPECjbb.
	mc, jbb := Memcached(), Specjbb()
	for _, s := range []float64{0.4, 0.6, 0.8} {
		if mc.PerfAtSpeed(s) <= jbb.PerfAtSpeed(s) {
			t.Errorf("at speed %v memcached %v should beat specjbb %v",
				s, mc.PerfAtSpeed(s), jbb.PerfAtSpeed(s))
		}
	}
}

func TestConsolidatedPerf(t *testing.T) {
	w := Specjbb()
	if got := w.ConsolidatedPerf(1); got != 1 {
		t.Errorf("factor 1 = %v", got)
	}
	two := w.ConsolidatedPerf(2)
	if two <= 0.3 || two > 0.5 {
		t.Errorf("factor 2 = %v, want ~0.45", two)
	}
	if four := w.ConsolidatedPerf(4); four >= two {
		t.Errorf("factor 4 (%v) should be below factor 2 (%v)", four, two)
	}
	if got := w.ConsolidatedPerf(0); got != 1 {
		t.Errorf("factor 0 clamps to 1, got %v", got)
	}
}

func TestProactiveResidue(t *testing.T) {
	// SPECjbb's GC churn keeps its residue large (the paper reports the
	// state to move after failure drops only from 18 GB to 10 GB).
	jbb := Specjbb()
	res := jbb.ProactiveResidue()
	if res.GiB() < 6 || res.GiB() > 10 {
		t.Errorf("specjbb residue = %v, want ~8 GiB", res)
	}
	// Memcached barely dirties: residue tiny (why §6.2 says low-churn
	// apps benefit most from proactive migration).
	mc := Memcached()
	if mc.ProactiveResidue() > 512*units.Mebibyte {
		t.Errorf("memcached residue = %v, want < 512 MiB", mc.ProactiveResidue())
	}
	if float64(mc.ProactiveResidue()) >= 0.05*float64(jbb.ProactiveResidue()) {
		t.Errorf("memcached residue should be tiny relative to specjbb")
	}
}

func TestHibernateProfiles(t *testing.T) {
	// Web-search hibernates only its small anonymous image (page cache
	// dropped); Memcached must write everything, badly.
	ws, mc := WebSearch(), Memcached()
	if ws.Hibernate.Image >= 4*units.Gibibyte {
		t.Errorf("web-search hibernate image = %v, want small", ws.Hibernate.Image)
	}
	if mc.Hibernate.Image != mc.Memory.Footprint {
		t.Errorf("memcached hibernate image = %v, want full footprint", mc.Hibernate.Image)
	}
	if mc.Hibernate.SavePenalty <= 1.5 {
		t.Errorf("memcached save penalty = %v, want > 1.5", mc.Hibernate.SavePenalty)
	}
	if ws.Hibernate.PostResume <= 0 {
		t.Error("web-search needs post-resume cache repopulation")
	}
}

func TestValidateErrors(t *testing.T) {
	mutate := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Utilization = 0 },
		func(s *Spec) { s.CPUBoundFraction = 1.5 },
		func(s *Spec) { s.VMImage = 0 },
		func(s *Spec) { s.ProactiveFlushInterval = 0 },
		func(s *Spec) { s.ConsolidationPenalty = 1 },
		func(s *Spec) { s.Hibernate.SavePenalty = 0.5 },
		func(s *Spec) { s.Recovery.WarmupPerf = 2 },
		func(s *Spec) { s.Recovery.RecomputeMin = 2 * s.Recovery.RecomputeMax; s.Recovery.RecomputeMax = 1 },
		func(s *Spec) { s.Memory.Footprint = 0 },
	}
	for i, m := range mutate {
		s := Specjbb()
		s.Recovery.RecomputeMax = 1 // make the recompute mutation meaningful
		m(&s)
		if s.Validate() == nil {
			t.Errorf("mutation %d should invalidate", i)
		}
	}
}

func TestPerfMetricsNamed(t *testing.T) {
	for _, w := range All() {
		if w.PerfMetric == "" {
			t.Errorf("%s missing perf metric", w.Name)
		}
	}
}
