package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"reflect"
	"sort"
	"strings"
	"time"

	"backuppower/internal/core"
	"backuppower/internal/grid"
	"backuppower/internal/technique"
)

// targetKind classifies what /v1/sweep endpoint the vulture is pointed
// at, which decides how the metrics-delta check reads GET /metrics.
type targetKind int

const (
	// kindUnknown: the target has no readable /metrics document; the
	// metrics-delta check is skipped, the other two still run.
	kindUnknown targetKind = iota
	// kindBackupd: a single worker whose /metrics carries the scenario
	// cache counters.
	kindBackupd
	// kindFabric: a sweepfront coordinator whose /metrics carries
	// rows_merged.
	kindFabric
)

func (k targetKind) String() string {
	switch k {
	case kindBackupd:
		return "backupd"
	case kindFabric:
		return "sweepfront"
	default:
		return "unknown"
	}
}

// checker holds one target's verification state: the base URL, the local
// in-process runner that computes expected bytes, and the metrics mode.
type checker struct {
	base         string
	client       *http.Client
	kind         targetKind
	runner       *grid.Runner
	servers      int
	timeout      time.Duration
	metricsCheck bool
	resultsProbe int // lazily probed: 0 unknown, +1 GET /v1/results served, -1 not served
	logf         func(format string, args ...any)
}

func newChecker(base string, servers int, timeout time.Duration, metricsCheck bool, logf func(string, ...any)) *checker {
	c := &checker{
		base:         base,
		client:       &http.Client{},
		runner:       grid.NewRunner(core.New(servers)),
		servers:      servers,
		timeout:      timeout,
		metricsCheck: metricsCheck,
		logf:         logf,
	}
	c.kind = c.detectKind()
	if c.kind == kindUnknown {
		c.metricsCheck = false
	}
	return c
}

// detectKind probes GET /metrics once: backupd documents carry "cache",
// fabric documents carry "rows_merged".
func (c *checker) detectKind() targetKind {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return kindUnknown
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return kindUnknown
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&doc) != nil {
		return kindUnknown
	}
	if _, ok := doc["cache"]; ok {
		return kindBackupd
	}
	if _, ok := doc["rows_merged"]; ok {
		return kindFabric
	}
	return kindUnknown
}

// metricsSnap is the slice of a target's /metrics document the delta
// check needs.
type metricsSnap struct {
	hits, misses int64 // backupd scenario cache counters
	rowsMerged   int64 // fabric merged-row counter

	// Persistent result-store counters, present only when the target runs
	// with -store-dir (the "store" section of the metrics document).
	storePresent               bool
	storeHits, storeRecomputes int64
}

func (c *checker) snapshot(ctx context.Context) (metricsSnap, error) {
	var snap metricsSnap
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return snap, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	var doc struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		RowsMerged int64 `json:"rows_merged"`
		Store      *struct {
			Hits       int64 `json:"hits"`
			Recomputes int64 `json:"recomputes"`
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return snap, fmt.Errorf("GET /metrics: %w", err)
	}
	snap.hits, snap.misses = doc.Cache.Hits, doc.Cache.Misses
	snap.rowsMerged = doc.RowsMerged
	if doc.Store != nil {
		snap.storePresent = true
		snap.storeHits, snap.storeRecomputes = doc.Store.Hits, doc.Store.Recomputes
	}
	return snap, nil
}

// verifiedSpec is one spec that passed every check, retained for the
// load phase: the request body to replay and the bytes every replay must
// reproduce.
type verifiedSpec struct {
	reqBody  []byte
	expected []byte
	rows     int
}

// checkSpec runs the full verification cycle for one spec: a local
// in-process evaluation fixes the expected bytes, a cold HTTP run must
// match them byte for byte, a warm repeat must match the cold run, the
// decoded response must satisfy the metamorphic invariants, and (when
// the target's metrics are readable and no other traffic shares it) the
// /metrics deltas must be consistent with the warm/cold split.
func (c *checker) checkSpec(ctx context.Context, spec grid.Spec) (verifiedSpec, error) {
	var vs verifiedSpec
	plan, err := grid.Compile(spec, grid.CompileOptions{DefaultServers: c.servers})
	if err != nil {
		return vs, fmt.Errorf("generated spec does not compile (generator bug): %w", err)
	}
	vs.rows = len(plan.Points)

	// Expected bytes from the local runner — the same engine, the same
	// DTO encoding, no HTTP. This runs first on purpose: with an
	// in-process loopback target the scenario cache is shared, and
	// warming it here keeps the cold/warm metrics arithmetic below
	// target-independent.
	var local bytes.Buffer
	enc := json.NewEncoder(&local)
	err = c.runner.RunStream(ctx, plan, grid.RunOptions{}, func(row grid.RowResult) error {
		return enc.Encode(grid.NewRowDTO(plan.Op, row))
	})
	if err != nil {
		return vs, fmt.Errorf("local evaluation: %w", err)
	}
	vs.expected = local.Bytes()

	if vs.reqBody, err = json.Marshal(map[string]any{"spec": spec}); err != nil {
		return vs, err
	}

	var m0, m1, m2 metricsSnap
	if c.metricsCheck {
		if m0, err = c.snapshot(ctx); err != nil {
			return vs, err
		}
	}
	cold, err := c.postSweep(ctx, vs.reqBody)
	if err != nil {
		return vs, fmt.Errorf("cold run: %w", err)
	}
	if err := firstDiff(cold, vs.expected, "response", "local evaluation"); err != nil {
		return vs, fmt.Errorf("byte-equality check failed (cold): %w", err)
	}
	if c.metricsCheck {
		if m1, err = c.snapshot(ctx); err != nil {
			return vs, err
		}
	}
	warm, err := c.postSweep(ctx, vs.reqBody)
	if err != nil {
		return vs, fmt.Errorf("warm run: %w", err)
	}
	if err := firstDiff(warm, cold, "warm run", "cold run"); err != nil {
		return vs, fmt.Errorf("byte-equality check failed (warm repeat): %w", err)
	}

	// Decode before the metrics arithmetic: the store-delta check needs to
	// know whether any row erred (error rows are never persisted, so a
	// warm repeat legitimately recomputes them).
	rows, err := decodeRows(cold)
	if err != nil {
		return vs, fmt.Errorf("response stream: %w", err)
	}
	errRows := 0
	for _, row := range rows {
		if row.Error != "" {
			errRows++
		}
	}

	if c.metricsCheck {
		if m2, err = c.snapshot(ctx); err != nil {
			return vs, err
		}
		if err := c.checkMetricsDeltas(m0, m1, m2, len(plan.Points), errRows); err != nil {
			return vs, fmt.Errorf("metrics-delta check failed: %w", err)
		}
	}

	if err := checkInvariants(plan, rows); err != nil {
		return vs, fmt.Errorf("metamorphic check failed: %w", err)
	}
	if err := c.checkReadYourWrites(ctx, m2.storePresent, rows); err != nil {
		return vs, fmt.Errorf("read-your-writes check failed: %w", err)
	}
	return vs, nil
}

// postSweep streams one POST /v1/sweep and returns the full response
// body. Any non-200 status is an error (the body is quoted for the
// report).
func (c *checker) postSweep(ctx context.Context, body []byte) ([]byte, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, truncate(data, 200))
	}
	return data, nil
}

// checkMetricsDeltas verifies the warm/cold split arithmetic.
//
// For a backupd target every row evaluation routes through the scenario
// cache with exactly one counted event per consult (a warm point is one
// hit, a cold point is one miss — the batch kernel keeps the same
// accounting). A warm repeat of a just-run spec therefore re-simulates
// nothing (no new misses), and serves at least as many hits as the cold
// run counted events in total — "at least" because a row-level error
// makes the runner retry the batch unit point by point, adding consults
// on the warm side only.
//
// For a fabric target the coordinator must merge exactly the plan's rows
// on both the cold and the warm run, however its shards were retried or
// hedged.
//
// When the target carries a persistent result store (its /metrics
// document has a "store" section) and the plan produced no row-level
// errors, the warm repeat must be served from the store: zero store
// recomputes, and at least one store hit per plan row. Error rows are
// never persisted, so a plan with any disables the store arithmetic.
func (c *checker) checkMetricsDeltas(m0, m1, m2 metricsSnap, rows, errRows int) error {
	switch c.kind {
	case kindBackupd:
		if d := m2.misses - m1.misses; d != 0 {
			return fmt.Errorf("warm repeat added %d cache misses (re-simulated cached scenarios)", d)
		}
		coldActivity := (m1.hits + m1.misses) - (m0.hits + m0.misses)
		warmHits := m2.hits - m1.hits
		if warmHits < coldActivity {
			return fmt.Errorf("warm repeat served %d cache hits for %d cold-run cache events", warmHits, coldActivity)
		}
	case kindFabric:
		if d := m1.rowsMerged - m0.rowsMerged; d != int64(rows) {
			return fmt.Errorf("cold run merged %d rows for a %d-row plan", d, rows)
		}
		if d := m2.rowsMerged - m1.rowsMerged; d != int64(rows) {
			return fmt.Errorf("warm run merged %d rows for a %d-row plan", d, rows)
		}
	}
	if m2.storePresent && errRows == 0 {
		if d := m2.storeRecomputes - m1.storeRecomputes; d != 0 {
			return fmt.Errorf("warm repeat recomputed %d store entries for a fully stored plan", d)
		}
		if d := m2.storeHits - m1.storeHits; d < int64(rows) {
			return fmt.Errorf("warm repeat served %d store hits for a %d-row plan", d, rows)
		}
	}
	return nil
}

// checkReadYourWrites verifies the stored-results read path against the
// rows the sweep just streamed: after a verified run, GET /v1/results
// coordinate queries for a sample of the response's rows must each
// return the row byte-for-byte (index zeroed — stored rows are
// plan-independent and re-stamped at emission, so the read surface
// reports index 0).
//
// The check runs whenever the target serves GET /v1/results (probed once
// per checker). storeExpected forces the stronger stance: when /metrics
// advertises a store, a missing or failing read surface is an error, not
// a skip.
func (c *checker) checkReadYourWrites(ctx context.Context, storeExpected bool, rows []grid.RowDTO) error {
	if c.resultsProbe == 0 {
		status, _, err := c.getResults(ctx, "servers=-1")
		switch {
		case err == nil && status == http.StatusOK:
			c.resultsProbe = 1
		case err != nil && storeExpected:
			return fmt.Errorf("probing GET /v1/results: %w", err)
		default:
			c.resultsProbe = -1
		}
	}
	if c.resultsProbe < 0 {
		if storeExpected {
			return fmt.Errorf("/metrics reports a result store but GET /v1/results is not served")
		}
		return nil
	}

	// Sample up to four non-error rows spread across the response. Error
	// rows are never persisted, so they have nothing to read back.
	var stored []grid.RowDTO
	for _, row := range rows {
		if row.Error == "" {
			stored = append(stored, row)
		}
	}
	if len(stored) == 0 {
		return nil
	}
	picks := []int{0, len(stored) / 3, 2 * len(stored) / 3, len(stored) - 1}
	last := -1
	for _, i := range picks {
		if i == last {
			continue
		}
		last = i
		row := stored[i]
		query := resultsQuery(row)
		status, body, err := c.getResults(ctx, query)
		if err != nil {
			return fmt.Errorf("query %q: %w", query, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("query %q: status %d: %s", query, status, truncate(body, 200))
		}
		// The stored row is plan-independent; its DTO carries index 0. A
		// coordinate query may legitimately match several stored rows
		// (distinct custom configs can share a name), so at least one
		// returned line must be the byte-exact re-encoding of this row.
		row.Index = 0
		want, err := json.Marshal(row)
		if err != nil {
			return err
		}
		found := false
		for _, line := range bytes.Split(body, []byte("\n")) {
			if bytes.Equal(line, want) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("query %q did not return the just-streamed row\n  want: %s\n  got:  %s",
				query, truncate(want, 200), truncate(body, 200))
		}
	}
	return nil
}

// resultsQuery builds the /v1/results coordinate query matching one
// streamed row: every identifying field the query language can filter
// on, string values Go-quoted.
func resultsQuery(row grid.RowDTO) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "op=%q && servers=%d && workload=%q", row.Op, row.Servers, row.Workload)
	if row.Process != nil {
		// Process rows carry no outage coordinate; the seed + draws pair
		// (with the shared coordinates) pins the row instead.
		fmt.Fprintf(&sb, " && seed=%d && draws=%d", row.Process.Seed, row.Process.Draws)
	} else {
		fmt.Fprintf(&sb, " && outage=%s", row.Outage)
	}
	if row.Config != "" {
		fmt.Fprintf(&sb, " && config=%q", row.Config)
	}
	if row.Family != "" {
		fmt.Fprintf(&sb, " && family=%q", row.Family)
	}
	if row.Technique != "" {
		fmt.Fprintf(&sb, " && technique=%q", row.Technique)
	}
	return sb.String()
}

// getResults issues one GET /v1/results query and returns the status and
// body (the body is returned even on non-200 so callers can quote it).
func (c *checker) getResults(ctx context.Context, query string) (int, []byte, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/results?query="+url.QueryEscape(query), nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

// decodeRows parses an NDJSON response into row DTOs. A line that fails
// to decode as a row (such as the in-band final error line) fails the
// stream.
func decodeRows(data []byte) ([]grid.RowDTO, error) {
	var rows []grid.RowDTO
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var row grid.RowDTO
		if err := dec.Decode(&row); err != nil {
			return nil, fmt.Errorf("line %d: %w", len(rows)+1, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Invariant tolerances, matching the PR-4 metamorphic suite: perf
// comparisons at 1e-9 absolute, sizing costs at 1e-6 relative (the
// bracketed runtime search quantizes to whole seconds).
const (
	perfTol = 1e-9
	costTol = 1e-6
)

// checkInvariants applies the metamorphic invariants to a decoded
// response, using the compiled plan's typed points to decide
// applicability: perf is a fraction everywhere; for evaluate rows with a
// UPS-only backup and a monotone-trajectory technique, perf cannot rise
// with a longer outage; for size rows, feasibility is antitone and the
// min cost non-decreasing in the outage.
func checkInvariants(plan *grid.Plan, rows []grid.RowDTO) error {
	if len(rows) != len(plan.Points) {
		return fmt.Errorf("%d response rows for a %d-row plan", len(rows), len(plan.Points))
	}
	for i, row := range rows {
		if row.Index != i {
			return fmt.Errorf("row %d carries index %d", i, row.Index)
		}
		if row.Error != "" {
			continue
		}
		if row.Result != nil {
			if p := row.Result.Perf; p < -perfTol || p > 1+perfTol {
				return fmt.Errorf("row %d: perf %v outside [0, 1]", i, p)
			}
		}
		if row.ProcessResult != nil {
			if err := checkProcessRow(i, row.ProcessResult); err != nil {
				return err
			}
		}
	}

	// Group consecutive rows that differ only in their outage — the same
	// adjacency the batch kernel uses — and check each group's
	// outage-ordered trend.
	pts := plan.Points
	for start := 0; start < len(pts); {
		end := start + 1
		for end < len(pts) && sameGroup(&pts[end-1], &pts[end]) {
			end++
		}
		if err := checkGroup(plan.Op, pts[start:end], rows[start:end]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// checkGroup checks one differs-only-in-outage run of rows.
func checkGroup(op string, pts []grid.Point, rows []grid.RowDTO) error {
	if len(pts) < 2 {
		return nil
	}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	// Stable outage order: the axis itself may be unsorted or carry
	// duplicates.
	sort.SliceStable(order, func(a, b int) bool { return pts[order[a]].Outage < pts[order[b]].Outage })

	switch op {
	case grid.OpEvaluate:
		if !upsOnly(pts[0]) || !monotonePerfTechnique(pts[0].Technique) {
			return nil
		}
		last := math.Inf(1)
		for _, i := range order {
			if rows[i].Error != "" || rows[i].Result == nil {
				continue
			}
			p := rows[i].Result.Perf
			if p > last+perfTol {
				return fmt.Errorf("row %d: perf rose with a longer outage (%v -> %v at %v)",
					rows[i].Index, last, p, pts[i].Outage)
			}
			last = p
		}
	case grid.OpSize:
		feasibleSeen := false
		infeasibleAt := time.Duration(-1)
		lastCost := 0.0
		for _, i := range order {
			if rows[i].Error != "" || rows[i].Feasible == nil {
				continue
			}
			if !*rows[i].Feasible {
				infeasibleAt = pts[i].Outage
				continue
			}
			// Feasibility is antitone: once any shorter outage was
			// infeasible, a longer one cannot be feasible.
			if infeasibleAt >= 0 && pts[i].Outage > infeasibleAt {
				return fmt.Errorf("row %d: feasible at %v after infeasible at %v",
					rows[i].Index, pts[i].Outage, infeasibleAt)
			}
			if feasibleSeen && rows[i].NormCost < lastCost*(1-costTol) {
				return fmt.Errorf("row %d: longer outage sized cheaper (%v -> %v at %v)",
					rows[i].Index, lastCost, rows[i].NormCost, pts[i].Outage)
			}
			feasibleSeen = true
			lastCost = rows[i].NormCost
		}
	}
	return nil
}

// checkProcessRow applies the process-row invariants: every rate is a
// fraction, and the per-draw downtime percentiles are ordered
// p50 <= p95 <= p99 <= max. The durations arrive as canonical Go
// strings, which always parse back.
func checkProcessRow(i int, pr *grid.ProcessResultDTO) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"availability", pr.Availability},
		{"survival_rate", pr.SurvivalRate},
		{"perf", pr.Perf},
	} {
		if f.v < -perfTol || f.v > 1+perfTol {
			return fmt.Errorf("row %d: %s %v outside [0, 1]", i, f.name, f.v)
		}
	}
	names := []string{"downtime_p50", "downtime_p95", "downtime_p99", "downtime_max"}
	raw := []string{pr.DowntimeP50, pr.DowntimeP95, pr.DowntimeP99, pr.DowntimeMax}
	last := time.Duration(-1)
	for j, s := range raw {
		d, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("row %d: %s %q does not parse: %v", i, names[j], s, err)
		}
		if d < last {
			return fmt.Errorf("row %d: %s %v below %s %v (percentiles unordered)",
				i, names[j], d, names[j-1], last)
		}
		last = d
	}
	return nil
}

// sameGroup mirrors the batch kernel's adjacency: two points that differ
// only in their outage. Process rows never group — each process is its
// own unit, exactly as in the runner.
func sameGroup(a, b *grid.Point) bool {
	return a.Process == nil && b.Process == nil &&
		a.Servers == b.Servers &&
		a.Workload == b.Workload &&
		a.HasConfig == b.HasConfig &&
		a.Config == b.Config &&
		a.Family == b.Family &&
		sameTechnique(a.Technique, b.Technique)
}

func sameTechnique(a, b technique.Technique) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ta := reflect.TypeOf(a)
	return ta == reflect.TypeOf(b) && ta.Comparable() && a == b
}

// upsOnly reports whether the row's backup has no diesel generator — the
// restriction under which mean perf is provably monotone in the outage
// (a DG that outlasts the transfer ends the pressure, letting a longer
// window RAISE mean perf).
func upsOnly(p grid.Point) bool {
	return p.HasConfig && p.Config.DG.PowerCapacity == 0
}

// monotonePerfTechnique matches the PR-4 monotone-trajectory subset:
// techniques that serve then degrade (or die), with no fixed low-perf
// ramp whose amortization could raise mean perf over a longer window.
func monotonePerfTechnique(t technique.Technique) bool {
	switch t.(type) {
	case technique.Baseline, technique.Throttling, technique.Sleep, technique.Hibernate, technique.NVDIMM:
		return true
	}
	return false
}

// firstDiff reports where two NDJSON streams diverge, by line, so a
// byte-equality failure names the first offending row instead of dumping
// both streams.
func firstDiff(got, want []byte, gotName, wantName string) error {
	if bytes.Equal(got, want) {
		return nil
	}
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Errorf("%s diverges from %s at line %d:\n  got:  %s\n  want: %s",
				gotName, wantName, i+1, truncate(gl[i], 200), truncate(wl[i], 200))
		}
	}
	return fmt.Errorf("%s is %d bytes, %s is %d bytes (common prefix identical)",
		gotName, len(got), wantName, len(want))
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
