package outage

import (
	"testing"
	"time"
)

// fuzzKinds maps a fuzzed byte onto a distribution kind, including an
// unknown one so the rejection path stays under fuzz.
var fuzzKinds = []string{KindFixed, KindExponential, KindWeibull, KindEmpirical, "bogus", ""}

// FuzzProcessDraw is the hostile-parameter contract for the process
// model: any parameter combination either fails Validate with a plain
// error, or draws traces that tile validly — sorted, non-overlapping,
// banded whole-second durations, bounded event counts. No input may
// panic or request unbounded work.
func FuzzProcessDraw(f *testing.F) {
	f.Add(int64(42), 8, uint8(1), int64(2000*time.Hour), 0.0, uint8(2), int64(30*time.Minute), 0.8, 0.3)
	f.Add(int64(0), 1, uint8(0), int64(5000*time.Hour), 0.0, uint8(0), int64(10*time.Minute), 0.0, 0.0)
	f.Add(int64(-1), 1024, uint8(3), int64(0), 0.0, uint8(3), int64(0), 0.0, 0.99)
	f.Add(int64(7), 0, uint8(4), int64(-time.Hour), -1.0, uint8(5), int64(1<<62), 1e308, -0.5)
	f.Add(int64(9), 2, uint8(1), int64(time.Hour), 0.0, uint8(2), int64(720*time.Hour), 0.05, 0.0)
	f.Fuzz(func(t *testing.T, seed int64, draws int, aKind uint8, aMean int64, aShape float64,
		dKind uint8, dMean int64, dShape float64, corr float64) {
		p := Process{
			Seed:        seed,
			Draws:       draws,
			Arrival:     Dist{Kind: fuzzKinds[int(aKind)%len(fuzzKinds)], Mean: time.Duration(aMean), Shape: aShape},
			Duration:    Dist{Kind: fuzzKinds[int(dKind)%len(fuzzKinds)], Mean: time.Duration(dMean), Shape: dShape},
			Correlation: corr,
		}
		if err := p.Validate(); err != nil {
			return // rejected cleanly — the contract for hostile params
		}
		n := p.Draws
		if n > 4 {
			n = 4 // a valid process may ask for 1024 draws; bound fuzz work
		}
		for i := 0; i < n; i++ {
			events := p.Draw(i)
			if len(events) > MaxEventsPerDraw {
				t.Fatalf("draw %d: %d events exceeds cap", i, len(events))
			}
			var prevEnd time.Duration
			for k, e := range events {
				if e.Start < prevEnd {
					t.Fatalf("draw %d event %d: start %v overlaps previous end %v", i, k, e.Start, prevEnd)
				}
				if e.Start > Year && e.Start != prevEnd {
					// Only a pile-up serialized behind an ongoing outage may
					// start past year-end (spillover); its start then equals
					// the previous event's end exactly.
					t.Fatalf("draw %d event %d: start %v past year horizon without a pile-up", i, k, e.Start)
				}
				if e.Duration < MinEventDuration || e.Duration > MaxEventDuration {
					t.Fatalf("draw %d event %d: duration %v out of band", i, k, e.Duration)
				}
				if e.Duration != e.Duration.Truncate(time.Second) {
					t.Fatalf("draw %d event %d: duration %v not whole seconds", i, k, e.Duration)
				}
				prevEnd = e.Start + e.Duration
			}
		}
	})
}
