package units

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// FuzzParsePower pins the two properties request validation relies on:
// the parser never panics, and every accepted value is a finite
// non-negative power whose canonical re-rendering parses back to the same
// value ("%g" prints the shortest digits that round-trip a float64).
func FuzzParsePower(f *testing.F) {
	for _, seed := range []string{
		"250", "250W", "250 w", "120kW", "120 KW", "1.5MW", "2GW", "0",
		"1e3W", "0.000001MW", "-5W", "", " ", "W", "NaN", "+Inf", "1e400",
		"5kWh", "5 horsepower", "٣W", "1eW", "9999999999999999999999W",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		w, err := ParsePower(s)
		if err != nil {
			return
		}
		v := float64(w)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("ParsePower(%q) accepted non-finite/negative %v", s, w)
		}
		canon := fmt.Sprintf("%gW", v)
		again, err := ParsePower(canon)
		if err != nil {
			t.Fatalf("ParsePower(%q) ok but canonical %q rejected: %v", s, canon, err)
		}
		if again != w {
			t.Fatalf("ParsePower(%q) = %v but canonical %q reparses to %v", s, w, canon, again)
		}
	})
}

// FuzzParseDuration pins the same contract for durations: no panics, and
// accepted values survive the Duration.String round trip exactly (the
// canonical form fed back into the parser).
func FuzzParseDuration(f *testing.F) {
	for _, seed := range []string{
		"30m", "30 min", "1h30m", "1 hr 30 min", "2 hours", "90s",
		"500ms", "1.5H", "0s", "-1h", "", "30", "1d", "m", "9999999999h",
		"1h30", "30minutes", "0.0000001s", "100000h200000m",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDuration(s)
		if err != nil {
			return
		}
		canon := d.String()
		again, err := ParseDuration(canon)
		if err != nil {
			t.Fatalf("ParseDuration(%q) = %v but canonical %q rejected: %v", s, d, canon, err)
		}
		if again != d {
			t.Fatalf("ParseDuration(%q) = %v but canonical %q reparses to %v", s, d, canon, again)
		}
	})
}

// TestParseDurationNeverExceedsBounds spot-checks overflow handling: the
// underlying parser reports out-of-range durations as errors rather than
// wrapping, so a successful parse is always a representable Duration.
func TestParseDurationNeverExceedsBounds(t *testing.T) {
	if _, err := ParseDuration("9999999999999h"); err == nil {
		t.Fatal("expected overflow error")
	}
	if d, err := ParseDuration(time.Duration(math.MaxInt64).String()); err != nil || d != math.MaxInt64 {
		t.Fatalf("max duration round-trip: %v, %v", d, err)
	}
}
