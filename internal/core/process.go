package core

import (
	"context"
	"math"
	"sort"
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/cost"
	"backuppower/internal/outage"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// ProcessResult is the process-level counterpart of cluster.Result: the
// fold of a stochastic outage process's Monte-Carlo draws over the
// scenario simulator. Durations aggregate per yearly draw; percentiles
// are nearest-rank over the per-draw yearly downtimes.
type ProcessResult struct {
	// Technique, Config, and Workload identify the evaluated scenario
	// (mirroring cluster.Result's echo fields).
	Technique string
	Config    string
	Workload  string

	// Draws is the number of Monte-Carlo yearly traces evaluated;
	// Events is the total outage-event count across all of them.
	Draws  int
	Events int

	// Availability is the annualized availability: 1 minus the expected
	// yearly downtime over the year, clamped into [0, 1].
	Availability float64

	// ExpectedDowntime is the mean total downtime per yearly draw.
	ExpectedDowntime time.Duration

	// DowntimeP50/P95/P99/Max are nearest-rank percentiles of the
	// per-draw yearly downtime (p50 ≤ p95 ≤ p99 ≤ max by construction).
	DowntimeP50 time.Duration
	DowntimeP95 time.Duration
	DowntimeP99 time.Duration
	DowntimeMax time.Duration

	// SurvivalRate is the fraction of draws in which no event lost
	// volatile state (every event's Result.Survived).
	SurvivalRate float64

	// Perf is the event-duration-weighted mean normalized performance
	// across every drawn outage window (1 when no events were drawn).
	Perf float64

	// EnergyShortfallWh is the expected yearly unserved energy: the mean
	// over draws of sum((1-Perf_e) * duration_e * peak power) — the
	// energy the datacenter would have delivered at full performance but
	// could not, in watt-hours.
	EnergyShortfallWh units.WattHours

	// Cost is the configuration's normalized annual cap-ex (identical to
	// cluster.Result.Cost for the same config).
	Cost float64
}

// EvaluateProcess evaluates a backup configuration and technique against
// a stochastic outage process: it expands every Monte-Carlo draw into
// its yearly event trace, folds the PR-6 outage-axis batch kernel
// (EvaluateBatch) over all drawn durations in one call, and aggregates
// per draw. Determinism matches the scalar path: the result is a pure
// function of the inputs, independent of cache state or call order.
func (f *Framework) EvaluateProcess(b cost.Backup, tech technique.Technique, w workload.Spec, p outage.Process) (ProcessResult, error) {
	return f.EvaluateProcessCtx(context.Background(), b, tech, w, p)
}

// EvaluateProcessCtx is EvaluateProcess honoring ctx cancellation.
func (f *Framework) EvaluateProcessCtx(ctx context.Context, b cost.Backup, tech technique.Technique, w workload.Spec, p outage.Process) (ProcessResult, error) {
	if err := p.Validate(); err != nil {
		return ProcessResult{}, &InputError{Field: "process", Reason: err.Error()}
	}
	if err := ctx.Err(); err != nil {
		return ProcessResult{}, err
	}

	// Expand every draw up front so the whole process evaluates through
	// one batch call: the kernel digests the invariant scenario content
	// once and the memo cache collapses repeated durations across draws.
	draws := make([][]outage.Event, p.Draws)
	var durations []time.Duration
	for i := range draws {
		draws[i] = p.Draw(i)
		for _, e := range draws[i] {
			durations = append(durations, e.Duration)
		}
	}

	var results []cluster.Result
	if len(durations) > 0 {
		var err error
		results, err = f.EvaluateBatchCtx(ctx, b, tech, w, durations)
		if err != nil {
			return ProcessResult{}, err
		}
	}

	pr := ProcessResult{
		Technique: tech.Name(),
		Config:    b.Name,
		Workload:  w.Name,
		Draws:     p.Draws,
		Events:    len(durations),
	}

	peak := f.Env.PeakPower()
	perDraw := make([]time.Duration, p.Draws)
	var sumDowntime time.Duration
	var weightedPerf, sumPerfWeight, sumShortfall float64
	survived := 0
	k := 0
	for i, events := range draws {
		ok := true
		var total time.Duration
		for range events {
			res := &results[k]
			total = addSat(total, res.Downtime)
			weightedPerf += res.Perf * float64(durations[k])
			sumPerfWeight += float64(durations[k])
			sumShortfall += (1 - res.Perf) * durations[k].Hours() * float64(peak)
			if !res.Survived {
				ok = false
			}
			k++
		}
		perDraw[i] = total
		sumDowntime = addSat(sumDowntime, total)
		if ok {
			survived++
		}
	}

	n := int64(p.Draws)
	pr.ExpectedDowntime = time.Duration(int64(sumDowntime) / n)
	pr.Availability = units.Clamp01(1 - float64(pr.ExpectedDowntime)/float64(outage.Year))
	pr.SurvivalRate = float64(survived) / float64(n)
	pr.EnergyShortfallWh = units.WattHours(sumShortfall / float64(n))
	switch {
	case pr.Events == 0:
		pr.Perf = 1
	case pr.Events == 1:
		// A single event's weighted mean is exactly its Perf; skip the
		// (p*w)/w round trip so the degenerate single-draw process
		// reproduces the scalar result bit for bit.
		pr.Perf = results[0].Perf
	default:
		pr.Perf = weightedPerf / sumPerfWeight
	}
	if len(results) > 0 {
		pr.Cost = results[0].Cost
	} else {
		pr.Cost = b.NormalizedCost(peak)
	}

	sort.Slice(perDraw, func(i, j int) bool { return perDraw[i] < perDraw[j] })
	pr.DowntimeP50 = nearestRank(perDraw, 50)
	pr.DowntimeP95 = nearestRank(perDraw, 95)
	pr.DowntimeP99 = nearestRank(perDraw, 99)
	pr.DowntimeMax = perDraw[len(perDraw)-1]
	return pr, nil
}

// nearestRank returns the nearest-rank p-th percentile of sorted (the
// loadgen convention): the ceil(p/100*n)-th smallest value.
func nearestRank(sorted []time.Duration, p float64) time.Duration {
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// addSat adds two non-negative durations, saturating at the maximum
// representable duration instead of wrapping (a 1024-draw process of
// 1024 maximal events sums past int64 nanoseconds).
func addSat(a, b time.Duration) time.Duration {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}
