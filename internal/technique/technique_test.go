package technique

import (
	"testing"
	"time"

	"backuppower/internal/units"
	"backuppower/internal/workload"
)

func env() Env { return DefaultEnv(16) }

func TestDefaultEnvValid(t *testing.T) {
	if err := env().Validate(); err != nil {
		t.Fatalf("default env invalid: %v", err)
	}
	bad := env()
	bad.Servers = 0
	if bad.Validate() == nil {
		t.Error("zero servers should fail")
	}
}

func TestEnvPowers(t *testing.T) {
	e := env()
	if got := e.PeakPower(); got != 16*250 {
		t.Errorf("peak = %v", got)
	}
	np := e.NormalPower(workload.Specjbb())
	if np <= 16*80 || np > 16*250 {
		t.Errorf("normal power = %v", np)
	}
}

func TestAllCatalogPlansValid(t *testing.T) {
	e := env()
	for _, w := range workload.All() {
		for _, tech := range Catalog(e) {
			for _, outage := range []time.Duration{30 * time.Second, 5 * time.Minute, 2 * time.Hour} {
				p := tech.Plan(e, w, outage)
				if err := p.Validate(); err != nil {
					t.Errorf("%s/%s/%v: %v", tech.Name(), w.Name, outage, err)
				}
				if p.PeakPower() > e.PeakPower() {
					t.Errorf("%s/%s: plan peak %v exceeds datacenter peak %v",
						tech.Name(), w.Name, p.PeakPower(), e.PeakPower())
				}
			}
		}
	}
}

func TestBaselinePlan(t *testing.T) {
	p := Baseline{}.Plan(env(), workload.Specjbb(), time.Hour)
	if len(p.Phases) != 1 || !p.Phases[0].OpenEnded {
		t.Fatalf("baseline = %+v", p)
	}
	if p.Phases[0].Perf != 1 || !p.Phases[0].Available {
		t.Error("baseline should be full service")
	}
	if p.RestoreDowntime != 0 {
		t.Error("baseline has no restore downtime")
	}
}

func TestThrottlingReducesPowerAndPerf(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	base := Baseline{}.Plan(e, w, time.Hour)
	deep := Throttling{PState: 6}.Plan(e, w, time.Hour)
	if deep.PeakPower() >= base.PeakPower() {
		t.Errorf("deep throttle %v should cut power vs %v", deep.PeakPower(), base.PeakPower())
	}
	perf := deep.Phases[0].Perf
	if perf <= 0.3 || perf >= 0.7 {
		t.Errorf("deep throttle perf = %v, want mid-range", perf)
	}
	// T-state stacking cuts further.
	tt := Throttling{PState: 6, TState: 4}.Plan(e, w, time.Hour)
	if tt.PeakPower() >= deep.PeakPower() {
		t.Errorf("T-state should cut power further")
	}
	if tt.Phases[0].Perf >= perf {
		t.Errorf("T-state should cut perf further")
	}
	// Out-of-range P-state clamps rather than panics.
	_ = Throttling{PState: 99}.Plan(e, w, time.Hour)
	_ = Throttling{PState: -1}.Plan(e, w, time.Hour)
}

func TestThrottlingEngagesInstantly(t *testing.T) {
	e := env()
	if e.Server.ThrottleLatency > e.Server.RestartTime {
		t.Error("nonsense")
	}
	// Table 5: tens of microseconds, inside the 30 ms ride-through.
	if e.Server.ThrottleLatency > 30*time.Millisecond {
		t.Errorf("throttle latency %v exceeds ride-through", e.Server.ThrottleLatency)
	}
}

func TestMigrationPlanShape(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	p := Migration{}.Plan(e, w, time.Hour)
	if len(p.Phases) != 2 {
		t.Fatalf("phases = %d", len(p.Phases))
	}
	mig, cons := p.Phases[0], p.Phases[1]
	if mig.Dur < 8*time.Minute || mig.Dur > 12*time.Minute {
		t.Errorf("specjbb migration phase = %v, want ~10m", mig.Dur)
	}
	// Consolidation halves the active fleet: aggregate power well below
	// the migration phase.
	if cons.Power >= mig.Power {
		t.Errorf("consolidated %v should undercut migrating %v", cons.Power, mig.Power)
	}
	if cons.Perf <= 0.3 || cons.Perf > 0.6 {
		t.Errorf("consolidated perf = %v", cons.Perf)
	}
	// Migrate-back leaves a degraded window, not downtime.
	if p.RestoreDegradedDur <= 0 || p.RestoreDegradedPerf != cons.Perf {
		t.Errorf("restore degraded = %v@%v", p.RestoreDegradedDur, p.RestoreDegradedPerf)
	}
	// Stop-and-copy pauses are brief.
	if p.RestoreDowntime > 15*time.Second {
		t.Errorf("restore downtime = %v", p.RestoreDowntime)
	}
}

func TestProactiveMigrationFaster(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	live := Migration{}.Plan(e, w, time.Hour)
	pro := Migration{Proactive: true}.Plan(e, w, time.Hour)
	if pro.Phases[0].Dur >= live.Phases[0].Dur {
		t.Errorf("proactive %v should beat live %v", pro.Phases[0].Dur, live.Phases[0].Dur)
	}
}

func TestMigrationThrottleDeepCutsPeak(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	plain := Migration{}.Plan(e, w, time.Hour)
	capped := Migration{ThrottleDeep: true}.Plan(e, w, time.Hour)
	if capped.PeakPower() >= plain.PeakPower() {
		t.Errorf("throttled migration peak %v should undercut %v",
			capped.PeakPower(), plain.PeakPower())
	}
}

func TestSleepPlan(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	p := Sleep{}.Plan(e, w, 30*time.Second)
	if p.Phases[0].Dur != 6*time.Second {
		t.Errorf("sleep transition = %v, want 6s (Table 8)", p.Phases[0].Dur)
	}
	if p.RestoreDowntime != 8*time.Second {
		t.Errorf("sleep resume = %v, want 8s", p.RestoreDowntime)
	}
	// Sleeping power ~5 W/server.
	slp := p.Phases[1].Power
	if slp < 50 || slp > 130 { // 16 servers
		t.Errorf("fleet sleep power = %v", slp)
	}
	// NOT state-safe: battery death in S3 loses DRAM.
	if p.Phases[1].StateSafe {
		t.Error("sleep must not be state-safe")
	}
}

func TestSleepLCalibration(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	p := Sleep{LowPower: true}.Plan(e, w, 30*time.Second)
	// Table 8: Sleep-L save 8 s at half power.
	if p.Phases[0].Dur < 7*time.Second || p.Phases[0].Dur > 9*time.Second {
		t.Errorf("sleep-L transition = %v, want ~8s", p.Phases[0].Dur)
	}
	full := Sleep{}.Plan(e, w, 30*time.Second)
	ratio := float64(p.Phases[0].Power) / float64(full.Phases[0].Power)
	if ratio < 0.4 || ratio > 0.65 {
		t.Errorf("sleep-L save power ratio = %v, want ~0.5", ratio)
	}
}

func TestHibernateTable8Calibration(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	rows := Table8(e, w)
	want := map[string]struct{ save, resume float64 }{
		"Sleep":               {6, 8},
		"Hibernate":           {230, 157},
		"Proactive Hibernate": {179, 157},
		"Sleep-L":             {8, 8},
		"Hibernate-L":         {385, 175},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		w, ok := want[r.Technique]
		if !ok {
			t.Errorf("unexpected row %q", r.Technique)
			continue
		}
		if !units.AlmostEqual(r.SaveTime.Seconds(), w.save, 0.12) {
			t.Errorf("%s save = %v, want ~%vs", r.Technique, r.SaveTime, w.save)
		}
		if !units.AlmostEqual(r.Resume.Seconds(), w.resume, 0.12) {
			t.Errorf("%s resume = %v, want ~%vs", r.Technique, r.Resume, w.resume)
		}
		if r.PeakNorm <= 0 || r.PeakNorm > 1 {
			t.Errorf("%s norm power = %v", r.Technique, r.PeakNorm)
		}
	}
	// The -L variants draw roughly half the save power.
	byName := map[string]SaveResume{}
	for _, r := range rows {
		byName[r.Technique] = r
	}
	if r := byName["Hibernate-L"].PeakNorm / byName["Hibernate"].PeakNorm; r < 0.4 || r > 0.65 {
		t.Errorf("hibernate-L power ratio = %v", r)
	}
}

func TestHibernateStateSafeAfterSave(t *testing.T) {
	p := Hibernate{}.Plan(env(), workload.Specjbb(), time.Hour)
	if p.Phases[0].StateSafe {
		t.Error("saving phase is not yet safe")
	}
	if !p.Phases[1].StateSafe {
		t.Error("hibernated phase must be safe")
	}
	if p.Phases[1].Power != 0 {
		t.Errorf("hibernated power = %v", p.Phases[1].Power)
	}
}

func TestMemcachedHibernateSlow(t *testing.T) {
	// §6.2: memcached hibernation total (save+resume) far exceeds its
	// crash recovery — losing state is cheaper than preserving it.
	e := env()
	w := workload.Memcached()
	h := Hibernate{}
	total := h.SaveTime(e, w) + h.ResumeTime(e, w)
	crashLo, _ := CrashRecovery(e, w)
	if total <= crashLo {
		t.Errorf("memcached hibernate %v should exceed crash recovery %v", total, crashLo)
	}
	if total < 15*time.Minute {
		t.Errorf("memcached hibernate = %v, want ~1000s+", total)
	}
}

func TestWebSearchCrashWorseThanHibernate(t *testing.T) {
	// §6.2: for web-search, losing memory (600 s) is WORSE than
	// hibernating (~400 s) — opposite of memcached.
	e := env()
	w := workload.WebSearch()
	h := Hibernate{}
	hibTotal := h.SaveTime(e, w) + h.ResumeTime(e, w)
	crashLo, _ := CrashRecovery(e, w)
	if hibTotal >= crashLo {
		t.Errorf("web-search hibernate %v should undercut crash %v", hibTotal, crashLo)
	}
	if !units.AlmostEqual(hibTotal.Seconds(), 400, 0.15) {
		t.Errorf("web-search hibernate total = %v, want ~400s", hibTotal)
	}
	if !units.AlmostEqual(crashLo.Seconds(), 600, 0.15) {
		t.Errorf("web-search crash recovery = %v, want ~570-600s", crashLo)
	}
}

func TestCrashRecoveryCalibration(t *testing.T) {
	e := env()
	// SPECjbb: ~370 s recovery => 400 s downtime with a 30 s outage.
	lo, hi := CrashRecovery(e, workload.Specjbb())
	if lo != hi {
		t.Errorf("specjbb recovery should have no spread: %v vs %v", lo, hi)
	}
	if !units.AlmostEqual(lo.Seconds(), 370, 0.1) {
		t.Errorf("specjbb recovery = %v, want ~370s", lo)
	}
	// Memcached: ~450 s recovery => 480 s with 30 s outage.
	mlo, _ := CrashRecovery(e, workload.Memcached())
	if !units.AlmostEqual(mlo.Seconds(), 450, 0.1) {
		t.Errorf("memcached recovery = %v, want ~450s", mlo)
	}
	// SpecCPU: recompute spread dominates.
	slo, shi := CrashRecovery(e, workload.SpecCPU())
	if shi-slo != 2*time.Hour {
		t.Errorf("speccpu spread = %v", shi-slo)
	}
	mid := CrashRecoveryMid(e, workload.SpecCPU())
	if mid <= slo || mid >= shi {
		t.Errorf("mid %v out of (%v,%v)", mid, slo, shi)
	}
}

func TestThrottleThenSavePhases(t *testing.T) {
	e := env()
	w := workload.Specjbb()
	outage := 30 * time.Minute
	p := ThrottleThenSave{PState: 6, Save: SaveSleep, ActiveFraction: 0.5}.Plan(e, w, outage)
	if len(p.Phases) != 3 {
		t.Fatalf("phases = %d", len(p.Phases))
	}
	if p.Phases[0].Dur != 15*time.Minute {
		t.Errorf("active = %v, want 15m", p.Phases[0].Dur)
	}
	if !p.Phases[0].Available || p.Phases[0].Perf <= 0 {
		t.Error("throttled phase should serve")
	}
	if p.Phases[2].Power >= p.Phases[0].Power/10 {
		t.Errorf("sleeping power %v should be tiny vs %v", p.Phases[2].Power, p.Phases[0].Power)
	}
	// Invalid fraction defaults to 0.5.
	d := ThrottleThenSave{PState: 6, Save: SaveSleep}.Plan(e, w, outage)
	if d.Phases[0].Dur != 15*time.Minute {
		t.Errorf("default fraction phase = %v", d.Phases[0].Dur)
	}
	// Hibernate tail is state-safe at the end.
	hp := ThrottleThenSave{PState: 6, Save: SaveHibernate, ActiveFraction: 0.3}.Plan(e, w, outage)
	last := hp.Phases[len(hp.Phases)-1]
	if !last.StateSafe {
		t.Error("hibernate tail should be safe")
	}
}

func TestMigrationThenSleepPhases(t *testing.T) {
	e := env()
	w := workload.Memcached()
	p := MigrationThenSleep{ActiveFraction: 0.5}.Plan(e, w, 2*time.Hour)
	if len(p.Phases) != 4 {
		t.Fatalf("phases = %d", len(p.Phases))
	}
	// Final sleeping power covers only the surviving half.
	full := Sleep{}.Plan(e, w, time.Hour).Phases[1].Power
	if p.Phases[3].Power >= full {
		t.Errorf("survivor sleep power %v should undercut fleet %v", p.Phases[3].Power, full)
	}
	if p.RestoreDegradedDur <= 0 {
		t.Error("migrate-back degraded window expected")
	}
}

func TestTable4Table6Static(t *testing.T) {
	if rows := Table4(); len(rows) != 8 {
		t.Errorf("Table4 rows = %d, want 8", len(rows))
	}
	if rows := Table6(); len(rows) != 5 {
		t.Errorf("Table6 rows = %d, want 5", len(rows))
	}
}

func TestTable5Impact(t *testing.T) {
	rows := Table5(env(), workload.Specjbb())
	if len(rows) != 6 {
		t.Fatalf("Table5 rows = %d", len(rows))
	}
	byName := map[string]Impact{}
	for _, r := range rows {
		byName[r.Technique] = r
	}
	// Throttling: tens of microseconds.
	if byName["Throttling"].TimeToEffect > time.Millisecond {
		t.Errorf("throttle effect = %v", byName["Throttling"].TimeToEffect)
	}
	// Migration: few minutes; proactive faster.
	if byName["Migration"].TimeToEffect < 2*time.Minute {
		t.Errorf("migration effect = %v", byName["Migration"].TimeToEffect)
	}
	if byName["Proactive Migration"].TimeToEffect >= byName["Migration"].TimeToEffect {
		t.Error("proactive migration should be faster")
	}
	// Sleep ~10s; hibernation minutes; power ordering.
	if byName["Sleep"].TimeToEffect > 15*time.Second {
		t.Errorf("sleep effect = %v", byName["Sleep"].TimeToEffect)
	}
	if byName["Hibernation"].PowerAfter != 0 || byName["Proactive Hibernation"].PowerAfter != 0 {
		t.Error("hibernation post-power should be 0")
	}
	if byName["Sleep"].PowerAfter <= 0 || byName["Sleep"].PowerAfter > 10 {
		t.Errorf("sleep post-power = %v", byName["Sleep"].PowerAfter)
	}
}

func TestPlanValidateCatchesBadPlans(t *testing.T) {
	bad := Plan{Technique: "x"}
	if bad.Validate() == nil {
		t.Error("empty plan should fail")
	}
	bad = Plan{Technique: "x", Phases: []Phase{{OpenEnded: true}, {OpenEnded: true}}}
	if bad.Validate() == nil {
		t.Error("open-ended mid-plan should fail")
	}
	bad = Plan{Technique: "x", Phases: []Phase{{Dur: time.Second}}}
	if bad.Validate() == nil {
		t.Error("non-open-ended tail should fail")
	}
	bad = Plan{Technique: "x", Phases: []Phase{{OpenEnded: true, Perf: 0.5}}}
	if bad.Validate() == nil {
		t.Error("perf without availability should fail")
	}
	bad = Plan{Technique: "x", Phases: []Phase{{OpenEnded: true, Perf: 1.5, Available: true}}}
	if bad.Validate() == nil {
		t.Error("perf > 1 should fail")
	}
}
