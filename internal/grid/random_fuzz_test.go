package grid

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

// FuzzRandomSpecCompiles drives RandomSpec across the whole bounds
// space, not just DefaultBounds: arbitrary seeds, axis-length caps,
// outage bands, and row bounds. The property is the generator's
// contract plus the compiler's error discipline — a generated spec
// either compiles or (under a tightened row bound) fails with a typed
// *FieldError; nothing panics, and whatever compiles stays within the
// bound it compiled under.
func FuzzRandomSpecCompiles(f *testing.F) {
	f.Add(int64(1), 6, 4, int64(0), int64(0), 0)
	f.Add(int64(42), 1, 1, int64(time.Second), int64(time.Second), 1)
	f.Add(int64(-7), 8, 2, int64(30*time.Second), int64(4*time.Hour), 100000)
	f.Add(int64(1234567), 3, 1000, int64(time.Hour), int64(time.Minute), 3)
	f.Add(int64(0), 0, 0, int64(-5), int64(1<<62), 50)

	f.Fuzz(func(t *testing.T, seed int64, axisLen, servers int, minOutage, maxOutage int64, maxRows int) {
		b := Bounds{
			MaxAxisLen:       axisLen,
			MaxOutageAxisLen: axisLen,
			MinOutage:        time.Duration(minOutage),
			MaxOutage:        time.Duration(maxOutage),
			Variants:         seed%2 == 0,
		}
		if servers != 0 {
			b.Servers = []int{servers}
		}
		// The generator must tolerate any bounds value without panicking
		// (normalization clamps the nonsense), but only sane inputs keep
		// the validity contract: wildly long axes can legitimately trip
		// the row bound.
		rng := rand.New(rand.NewSource(seed))
		spec := RandomSpec(rng, b)

		if maxRows < 0 {
			maxRows = -maxRows
		}
		plan, err := Compile(spec, CompileOptions{DefaultServers: 8, MaxRows: maxRows})
		if err != nil {
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("compile error is not a *FieldError: %T %v\nspec: %+v", err, err, spec)
			}
			return
		}
		bound := maxRows
		if bound <= 0 {
			bound = DefaultMaxRows
		}
		if len(plan.Points) > bound {
			t.Fatalf("plan has %d rows, past the %d bound", len(plan.Points), bound)
		}
	})
}
