package technique

// OutageInvariantPlanner is an optional capability a Technique declares
// when its Plan output does not depend on the outage duration argument:
// the same environment and workload always yield the same phases and
// restore costs whatever outage is passed. The batch simulation kernel
// (cluster.SimulateOutageBatch) relies on this declaration to construct
// one plan and walk it once for a whole outage axis; techniques that do
// not declare it are simulated per point.
//
// Declare it only when the invariance genuinely holds — the hybrid
// families (ThrottleThenSave, MigrationThenSleep) scale their active
// phase with the outage and therefore must NOT implement it.
// TestOutageInvariantPlansAreInvariant cross-checks every declaring
// technique by comparing plans across a spread of outages.
type OutageInvariantPlanner interface {
	// PlanOutageInvariant reports that Plan ignores its outage argument.
	PlanOutageInvariant() bool
}

// PlanOutageInvariant reports whether t declares outage-invariant plans.
func PlanOutageInvariant(t Technique) bool {
	p, ok := t.(OutageInvariantPlanner)
	return ok && p.PlanOutageInvariant()
}

// The shipped techniques whose plans provably ignore the outage duration:
// their Plan bodies never read the outage argument. The two hybrids that
// scale phases with the outage are deliberately absent.

// PlanOutageInvariant implements OutageInvariantPlanner.
func (Baseline) PlanOutageInvariant() bool { return true }

// PlanOutageInvariant implements OutageInvariantPlanner.
func (Throttling) PlanOutageInvariant() bool { return true }

// PlanOutageInvariant implements OutageInvariantPlanner.
func (Migration) PlanOutageInvariant() bool { return true }

// PlanOutageInvariant implements OutageInvariantPlanner.
func (Sleep) PlanOutageInvariant() bool { return true }

// PlanOutageInvariant implements OutageInvariantPlanner.
func (Hibernate) PlanOutageInvariant() bool { return true }

// PlanOutageInvariant implements OutageInvariantPlanner.
func (CappedThrottling) PlanOutageInvariant() bool { return true }

// PlanOutageInvariant implements OutageInvariantPlanner.
func (NVDIMM) PlanOutageInvariant() bool { return true }

// PlanOutageInvariant implements OutageInvariantPlanner.
func (NVDIMMThrottle) PlanOutageInvariant() bool { return true }

// PlanOutageInvariant implements OutageInvariantPlanner.
func (BarelyAlive) PlanOutageInvariant() bool { return true }

// PlanOutageInvariant implements OutageInvariantPlanner.
func (GeoFailover) PlanOutageInvariant() bool { return true }
