package httpapi

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

const processSweepBody = `{"spec":{"workloads":["specjbb"],"configs":[{"name":"NoDG"}],` +
	`"techniques":[{"name":"baseline"}],` +
	`"outage_processes":[` +
	`{"seed":42,"draws":8,"arrival":{"kind":"exponential","mean":"2000h"},` +
	`"duration":{"kind":"weibull","mean":"30m","shape":0.8},"correlation":0.3},` +
	`{"seed":7,"draws":4,"arrival":{"kind":"empirical"},"duration":{"kind":"empirical"}}]}}`

// TestResultsServeProcessRows: a process-axis sweep persists under the
// 'P' namespace and GET /v1/results serves the rows back — filterable
// by seed/draws/availability, carrying the process echo and payload —
// alongside point rows without aliasing.
func TestResultsServeProcessRows(t *testing.T) {
	ts := newStoreServer(t)

	// A point sweep AND a process sweep populate the store: both
	// namespaces must serve from one /v1/results scan.
	resp, raw := post(t, ts.URL+"/v1/sweep",
		`{"spec":{"workloads":["specjbb"],"configs":[{"name":"NoDG"}],"techniques":[{"name":"baseline"}],"outages":["5m"]}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("point sweep: status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = post(t, ts.URL+"/v1/sweep", processSweepBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("process sweep: status %d: %s", resp.StatusCode, raw)
	}
	sweepRows := decodeResultRows(t, raw)
	if len(sweepRows) != 2 {
		t.Fatalf("process sweep returned %d rows, want 2", len(sweepRows))
	}

	resp, body := getResults(t, ts.URL, `op="evaluate"`, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	rows := decodeResultRows(t, body)
	var procs, points int
	for _, r := range rows {
		if r.Process != nil {
			procs++
			if r.ProcessResult == nil || r.Outage != "" {
				t.Fatalf("process row payload wrong: %+v", r)
			}
		} else {
			points++
			if r.Outage == "" || r.Result == nil {
				t.Fatalf("point row payload wrong: %+v", r)
			}
		}
	}
	if procs != 2 || points != 1 {
		t.Fatalf("served %d process + %d point rows, want 2 + 1", procs, points)
	}

	// Seed filtering reaches the stored process rows.
	resp, body = getResults(t, ts.URL, `seed=42`, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	rows = decodeResultRows(t, body)
	if len(rows) != 1 || rows[0].Process == nil || rows[0].Process.Seed != 42 {
		t.Fatalf("seed=42 query wrong rows: %+v", rows)
	}

	// The served process row is byte-for-byte the sweep's row payload
	// (Index pinned to 0 on stored rows, as for point rows).
	var want bytes.Buffer
	for _, line := range strings.SplitAfter(string(raw), "\n") {
		if strings.Contains(line, `"seed":42`) {
			want.WriteString(line)
		}
	}
	if want.Len() == 0 {
		t.Fatal("sweep output does not contain the seed-42 row")
	}
	if got := string(body); got != want.String() {
		t.Fatalf("served process row drifted from sweep bytes:\ngot:  %swant: %s", got, want.String())
	}

	// Availability is a process-only query field.
	resp, body = getResults(t, ts.URL, `availability>=0`, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if rows = decodeResultRows(t, body); len(rows) != 2 {
		t.Fatalf("availability>=0 matched %d rows, want the 2 process rows", len(rows))
	}
}
