package httpapi

import (
	"backuppower/internal/cluster"
	"backuppower/internal/core"
	"backuppower/internal/cost"
	"backuppower/internal/grid"
)

// The wire types. Requests carry quantities as human strings ("120kW",
// "30m") parsed through internal/units; responses render durations in
// Go's canonical duration syntax and powers/energies as plain numbers
// with the unit in the field name, so every field is self-describing and
// the encoding is deterministic (the golden tests pin it byte-for-byte).

// ConfigDTO and TechniqueDTO are the shared axis-element types from
// internal/grid — the single place their JSON shapes and validation rules
// live. The aliases keep this package's wire surface self-contained.
type (
	ConfigDTO    = grid.ConfigDTO
	TechniqueDTO = grid.TechniqueDTO
)

// EvaluateRequest is the body of POST /v1/evaluate: one scenario point.
type EvaluateRequest struct {
	Config    ConfigDTO    `json:"config"`
	Technique TechniqueDTO `json:"technique"`
	Workload  string       `json:"workload"`
	Outage    string       `json:"outage"`
	// Width overrides the sweep worker-pool width for this request
	// (0 = server default). Results are identical at any width.
	Width int `json:"width,omitempty"`
	// Timeout tightens the per-request deadline below the server's
	// -timeout; it can never extend it.
	Timeout string `json:"timeout,omitempty"`
}

// SizeRequest is the body of POST /v1/size: find the cheapest UPS-only
// backup under which the technique survives the outage.
type SizeRequest struct {
	Technique TechniqueDTO `json:"technique"`
	Workload  string       `json:"workload"`
	Outage    string       `json:"outage"`
	Width     int          `json:"width,omitempty"`
	Timeout   string       `json:"timeout,omitempty"`
}

// BestRequest is the body of POST /v1/best: race all techniques behind a
// fixed configuration and return the winner (the Figure 5 selection).
type BestRequest struct {
	Config   ConfigDTO `json:"config"`
	Workload string    `json:"workload"`
	Outage   string    `json:"outage"`
	Width    int       `json:"width,omitempty"`
	Timeout  string    `json:"timeout,omitempty"`
}

// ResultDTO and BackupDTO are likewise shared with internal/grid, which
// streams the same shapes as NDJSON sweep rows.
type (
	ResultDTO = grid.ResultDTO
	BackupDTO = grid.BackupDTO
)

func resultDTO(r cluster.Result) ResultDTO { return grid.NewResultDTO(r) }

func backupDTO(b cost.Backup) BackupDTO { return grid.NewBackupDTO(b) }

// EvaluateResponse is the body of a successful POST /v1/evaluate.
type EvaluateResponse struct {
	Result ResultDTO `json:"result"`
}

// SizeResponse is the body of a successful POST /v1/size. Feasible false
// means no UPS-only configuration lets the technique survive the outage
// (still a 200 — infeasibility is an answer, not an error).
type SizeResponse struct {
	Feasible  bool       `json:"feasible"`
	Technique string     `json:"technique,omitempty"`
	Backup    *BackupDTO `json:"backup,omitempty"`
	NormCost  float64    `json:"norm_cost,omitempty"`
	Result    *ResultDTO `json:"result,omitempty"`
}

func sizeResponse(op core.OperatingPoint, ok bool) SizeResponse {
	if !ok {
		return SizeResponse{}
	}
	b := backupDTO(op.Backup)
	r := resultDTO(op.Result)
	return SizeResponse{
		Feasible:  true,
		Technique: op.Technique,
		Backup:    &b,
		NormCost:  op.NormCost,
		Result:    &r,
	}
}

// BestResponse is the body of a successful POST /v1/best.
type BestResponse struct {
	Technique string    `json:"technique"`
	Result    ResultDTO `json:"result"`
}

// TechniqueInfo is one entry of GET /v1/techniques.
type TechniqueInfo struct {
	Name   string   `json:"name"`
	Params []string `json:"params,omitempty"`
	Doc    string   `json:"doc"`
}

// TechniquesResponse is the body of GET /v1/techniques.
type TechniquesResponse struct {
	Techniques []TechniqueInfo `json:"techniques"`
	// Families are the Figure 6-9 family names the sizing sweeps group by.
	Families []string `json:"families"`
}

// WorkloadInfo is one entry of GET /v1/workloads.
type WorkloadInfo struct {
	Name             string  `json:"name"`
	PerfMetric       string  `json:"perf_metric"`
	FootprintGiB     float64 `json:"footprint_gib"`
	Utilization      float64 `json:"utilization"`
	CPUBoundFraction float64 `json:"cpu_bound_fraction"`
}

// WorkloadsResponse is the body of GET /v1/workloads.
type WorkloadsResponse struct {
	Workloads []WorkloadInfo `json:"workloads"`
}

// ErrorBody is the JSON shape of every non-2xx response.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail names what went wrong. Code is a stable machine-readable
// string; Field (when set) is the request field that was rejected.
type ErrorDetail struct {
	Code    string `json:"code"`
	Field   string `json:"field,omitempty"`
	Message string `json:"message"`
}
