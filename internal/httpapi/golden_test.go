package httpapi

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current responses")

// canonicalJSON reformats a JSON document with sorted keys and stable
// indentation, so golden comparisons are about content, not encoder
// whitespace.
func canonicalJSON(t *testing.T, b []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, b)
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestGoldenResponses pins one representative response per endpoint to a
// committed golden file. Any change to the wire format — field names,
// number formatting, model output — shows up as a reviewable diff;
// regenerate deliberately with `go test ./internal/httpapi -update`.
func TestGoldenResponses(t *testing.T) {
	_, ts := newTestServer(t, nil)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
	}{
		{"evaluate", "POST", "/v1/evaluate",
			`{"config":{"name":"LargeEUPS"},"technique":{"name":"throttle-then-save","pstate":6,"save":"hibernate"},"workload":"specjbb","outage":"2h"}`},
		{"size", "POST", "/v1/size",
			`{"technique":{"name":"hibernate","proactive":true},"workload":"web-search","outage":"1h"}`},
		{"best", "POST", "/v1/best",
			`{"config":{"name":"SmallPUPS"},"workload":"memcached","outage":"30m"}`},
		{"techniques", "GET", "/v1/techniques", ""},
		{"workloads", "GET", "/v1/workloads", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			switch c.method {
			case "POST":
				resp, err = http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
			default:
				resp, err = http.Get(ts.URL + c.path)
			}
			if err != nil {
				t.Fatal(err)
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, raw)
			}
			got := canonicalJSON(t, raw)

			path := filepath.Join("testdata", c.name+".golden.json")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/httpapi -update` to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s response drifted from golden file %s:\ngot:\n%s\nwant:\n%s",
					c.path, path, got, want)
			}
		})
	}
}
