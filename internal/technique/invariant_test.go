package technique

import (
	"reflect"
	"testing"
	"time"

	"backuppower/internal/workload"
)

// invariantProbeTechniques enumerates one instance per declaring technique
// plus the two hybrids that must NOT declare (their plans scale with the
// outage).
func invariantProbeTechniques() []Technique {
	return []Technique{
		Baseline{},
		Throttling{PState: 3, TState: 1},
		Migration{},
		Migration{Proactive: true, ThrottleDeep: true},
		Sleep{},
		Sleep{LowPower: true},
		Hibernate{},
		Hibernate{Proactive: true, LowPower: true},
		CappedThrottling{Budget: 5000},
		NVDIMM{},
		NVDIMMThrottle{PState: 4},
		BarelyAlive{},
		GeoFailover{},
		GeoFailover{Save: SaveHibernate},
		ThrottleThenSave{PState: 6, Save: SaveSleep, ActiveFraction: 0.5},
		MigrationThenSleep{ActiveFraction: 0.5},
	}
}

// TestOutageInvariantPlansAreInvariant cross-checks every technique's
// declaration against its behavior: a declaring technique must produce
// deeply equal plans at every probed outage, and a non-declaring shipped
// technique must actually vary (otherwise it should declare and let the
// batch kernel skip per-point planning).
func TestOutageInvariantPlansAreInvariant(t *testing.T) {
	env := DefaultEnv(16)
	outages := []time.Duration{
		30 * time.Second, 5 * time.Minute, 30 * time.Minute, time.Hour, 8 * time.Hour,
	}
	for _, w := range workload.All() {
		for _, tech := range invariantProbeTechniques() {
			base := tech.Plan(env, w, outages[0])
			varies := false
			for _, d := range outages[1:] {
				if !reflect.DeepEqual(base, tech.Plan(env, w, d)) {
					varies = true
					break
				}
			}
			if PlanOutageInvariant(tech) && varies {
				t.Errorf("%s (%s): declares outage-invariant plans but the plan varies with the outage", tech.Name(), w.Name)
			}
			if !PlanOutageInvariant(tech) && !varies {
				t.Errorf("%s (%s): plan is outage-invariant but the technique does not declare it", tech.Name(), w.Name)
			}
		}
	}
}
