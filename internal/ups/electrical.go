package ups

import (
	"fmt"
	"time"

	"backuppower/internal/units"
)

// Design selects the UPS electrical topology. Section 3: "UPS units can
// either be configured as online (in series) or offline (in parallel),
// where the latter is preferred in today's datacenters to avoid
// double-conversion inefficiencies associated with online UPSes."
type Design int

// Designs.
const (
	// Offline (standby / line-interactive): the load runs on raw utility;
	// the inverter engages only on failure, after a ~10 ms switchover.
	Offline Design = iota
	// Online (double-conversion): the load always runs through
	// AC→DC→AC conversion — zero-transfer-time but a constant efficiency
	// tax every hour of the year.
	Online
)

// String names the design.
func (d Design) String() string {
	switch d {
	case Offline:
		return "offline"
	case Online:
		return "online"
	default:
		return fmt.Sprintf("design(%d)", int(d))
	}
}

// Electrical models the conversion losses of each topology.
type Electrical struct {
	Design Design
	// InverterEfficiency is the DC→AC efficiency at rated load.
	InverterEfficiency float64
	// RectifierEfficiency is the AC→DC stage (online design only).
	RectifierEfficiency float64
	// LowLoadPenalty is the extra fractional loss at light load (power
	// electronics are least efficient near idle); the efficiency curve is
	// eff(load) = rated_eff * (1 - LowLoadPenalty*(1-loadFraction)^2).
	LowLoadPenalty float64
	// StandbyW is the electronics' own idle draw per unit.
	StandbyW units.Watts
}

// DefaultElectrical returns representative electronics for the design.
func DefaultElectrical(d Design) Electrical {
	e := Electrical{
		Design:              d,
		InverterEfficiency:  0.95,
		RectifierEfficiency: 0.96,
		LowLoadPenalty:      0.08,
		StandbyW:            25,
	}
	return e
}

// Validate checks the parameters.
func (e Electrical) Validate() error {
	switch {
	case e.InverterEfficiency <= 0 || e.InverterEfficiency > 1:
		return fmt.Errorf("ups: inverter efficiency %v out of (0,1]", e.InverterEfficiency)
	case e.RectifierEfficiency <= 0 || e.RectifierEfficiency > 1:
		return fmt.Errorf("ups: rectifier efficiency %v out of (0,1]", e.RectifierEfficiency)
	case e.LowLoadPenalty < 0 || e.LowLoadPenalty >= 1:
		return fmt.Errorf("ups: low-load penalty %v out of [0,1)", e.LowLoadPenalty)
	case e.StandbyW < 0:
		return fmt.Errorf("ups: negative standby draw")
	}
	return nil
}

// effAt derates an efficiency for partial load.
func (e Electrical) effAt(rated float64, loadFrac float64) float64 {
	loadFrac = units.Clamp01(loadFrac)
	return rated * (1 - e.LowLoadPenalty*(1-loadFrac)*(1-loadFrac))
}

// NormalLoss is the power wasted during NORMAL operation (utility active)
// to deliver `load` through a UPS rated at `capacity`. This is the number
// that makes datacenters pick offline designs: the offline path wastes only
// the standby electronics; the online path pays double conversion on every
// watt, every hour.
func (e Electrical) NormalLoss(load, capacity units.Watts) units.Watts {
	if capacity <= 0 {
		return 0
	}
	switch e.Design {
	case Online:
		frac := float64(load) / float64(capacity)
		eff := e.effAt(e.RectifierEfficiency, frac) * e.effAt(e.InverterEfficiency, frac)
		if eff <= 0 {
			return e.StandbyW
		}
		return units.Watts(float64(load)*(1/eff-1)) + e.StandbyW
	default:
		return e.StandbyW
	}
}

// OutageLoss is the conversion loss while SOURCING `load` from the battery
// (both designs pay the inverter here); callers add it to the battery draw.
func (e Electrical) OutageLoss(load, capacity units.Watts) units.Watts {
	if capacity <= 0 || load <= 0 {
		return 0
	}
	frac := float64(load) / float64(capacity)
	eff := e.effAt(e.InverterEfficiency, frac)
	if eff <= 0 {
		return 0
	}
	return units.Watts(float64(load) * (1/eff - 1))
}

// AnnualNormalLossKWh integrates the normal-operation loss over a year at
// a constant load.
func (e Electrical) AnnualNormalLossKWh(load, capacity units.Watts) float64 {
	loss := e.NormalLoss(load, capacity)
	return float64(loss.ForDuration(365*24*time.Hour)) / 1e3
}

// AnnualNormalLossCost prices the loss at the given electricity tariff
// ($/KWh).
func (e Electrical) AnnualNormalLossCost(load, capacity units.Watts, tariff float64) units.DollarsPerYear {
	return units.DollarsPerYear(e.AnnualNormalLossKWh(load, capacity) * tariff)
}
