package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"

	"backuppower/internal/fabric"
)

func runVulture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	t.Logf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	return code, stdout.String(), stderr.String()
}

// The deterministic smoke against a single in-process backupd worker:
// all three checks plus the load phase and SLO gate, exit 0.
func TestVultureLoopbackBackupd(t *testing.T) {
	code, stdout, stderr := runVulture(t,
		"-loopback", "1", "-seed", "7", "-specs", "4",
		"-load-requests", "16", "-concurrency", "4",
		"-slo-p999", "30s", "-max-error-rate", "0")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"(backupd)", "verified 4/4 specs", "SLO ok"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q", want)
		}
	}
}

// The same harness against a sweepfront coordinator over three loopback
// workers: target kind auto-detected, rows_merged deltas checked.
func TestVultureLoopbackFabric(t *testing.T) {
	code, stdout, stderr := runVulture(t,
		"-loopback", "3", "-seed", "11", "-specs", "3",
		"-load-requests", "9", "-concurrency", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"(sweepfront)", "verified 3/3 specs", "SLO ok"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q", want)
		}
	}
}

// An impossible latency budget must trip the SLO gate and exit 1.
func TestVultureSLOViolation(t *testing.T) {
	code, _, stderr := runVulture(t,
		"-loopback", "1", "-seed", "7", "-specs", "1",
		"-load-requests", "4", "-slo-p50", "1ns")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "SLO violation") {
		t.Errorf("stderr missing SLO violation: %s", stderr)
	}
}

// A target that streams wrong bytes must fail the byte-equality check.
func TestVultureDetectsCorruptTarget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweep" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"index":0,"op":"evaluate","servers":8,"workload":"bogus","outage":"1s"}`)
	}))
	defer ts.Close()

	code, _, stderr := runVulture(t, "-target", ts.URL, "-specs", "1", "-seed", "7")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "byte-equality check failed") {
		t.Errorf("stderr missing byte-equality failure: %s", stderr)
	}
}

// A target whose sweeps are correct but whose cache counters misbehave
// (misses growing on a warm repeat) must fail the metrics-delta check:
// the proxy below forwards /v1/sweep to a real worker but serves
// fabricated /metrics.
func TestVultureDetectsMetricsDrift(t *testing.T) {
	urls, stop, err := fabric.Loopback(1, fabric.LoopbackConfig{Servers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	worker, err := url.Parse(urls[0])
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(worker)
	var polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			fmt.Fprintf(w, `{"cache":{"entries":0,"hits":0,"misses":%d}}`, polls.Add(1))
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	defer ts.Close()

	code, _, stderr := runVulture(t, "-target", ts.URL, "-specs", "1", "-seed", "7")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "metrics-delta check failed") {
		t.Errorf("stderr missing metrics-delta failure: %s", stderr)
	}
}

// Usage errors exit 2 before touching any target.
func TestVultureUsage(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{}, // neither -target nor -loopback
		{"-target", "http://x", "-loopback", "1"}, // both
		{"-loopback", "1", "-specs", "0"},
	}
	for _, args := range cases {
		if code, _, _ := runVulture(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}
