package geo

import (
	"testing"

	"backuppower/internal/units"
)

func fleet(t *testing.T, n int, util float64) Fleet {
	t.Helper()
	f, err := Uniform(n, util, 0.3, 42)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	return f
}

func TestUniformValid(t *testing.T) {
	f := fleet(t, 4, 0.7)
	if len(f.Sites) != 4 {
		t.Fatalf("sites = %d", len(f.Sites))
	}
	for _, s := range f.Sites {
		if !units.AlmostEqual(s.Headroom(), 0.3, 1e-9) {
			t.Errorf("%s headroom = %v", s.Name, s.Headroom())
		}
	}
	if _, err := Uniform(1, 0.5, 0.3, 1); err == nil {
		t.Error("single site should fail")
	}
}

func TestValidateErrors(t *testing.T) {
	f := fleet(t, 3, 0.7)
	f.Sites[0].Capacity = 0
	if f.Validate() == nil {
		t.Error("zero capacity should fail")
	}
	f = fleet(t, 3, 0.7)
	f.Sites[1].Name = f.Sites[0].Name
	if f.Validate() == nil {
		t.Error("duplicate names should fail")
	}
	f = fleet(t, 3, 0.7)
	f.WANPenalty = 1
	if f.Validate() == nil {
		t.Error("WAN penalty 1 should fail")
	}
	f = fleet(t, 3, 0.7)
	f.Sites[0].Load = 2
	if f.Validate() == nil {
		t.Error("load above capacity should fail")
	}
}

func TestFailoverLevelBounds(t *testing.T) {
	f := fleet(t, 4, 0.7)
	if got := f.FailoverLevel(0); got != 1 {
		t.Errorf("no failures level = %v", got)
	}
	if got := f.FailoverLevel(4); got != 0 {
		t.Errorf("all failed level = %v", got)
	}
	prev := 1.0
	for down := 1; down < 4; down++ {
		l := f.FailoverLevel(down)
		if l <= 0 || l >= 1 {
			t.Errorf("level(%d) = %v out of (0,1)", down, l)
		}
		if l > prev {
			t.Errorf("level should fall with more failures")
		}
		prev = l
	}
}

func TestHeadroomDeterminesAbsorption(t *testing.T) {
	// 4 sites at 75% load: one failure displaces 0.75, survivors' spare
	// is 3*0.25 = 0.75 — exactly absorbed, only the WAN penalty bites.
	tight, _ := Uniform(4, 0.75, 0.3, 1)
	lvl := tight.FailoverLevel(1)
	want := (3*0.75 + 0.75*0.7) / 3.0 // survivors + penalized absorbed, over total
	if !units.AlmostEqual(lvl, want, 1e-9) {
		t.Errorf("level = %v, want %v", lvl, want)
	}
	// At 95% load there is almost no headroom: most displaced traffic is
	// shed.
	packed, _ := Uniform(4, 0.95, 0.3, 1)
	if packed.FailoverLevel(1) >= lvl {
		t.Error("packed fleet should serve less after a failure")
	}
	// Zero WAN penalty and plenty of headroom: a single failure is
	// invisible.
	roomy, _ := Uniform(4, 0.5, 0, 1)
	if got := roomy.FailoverLevel(1); !units.AlmostEqual(got, 1, 1e-9) {
		t.Errorf("roomy level = %v, want 1", got)
	}
}

func TestRequiredHeadroom(t *testing.T) {
	// The paper's "adequate spare capacity" quantified: N sites surviving
	// K failures need K/N headroom.
	if got := RequiredHeadroom(4, 1); !units.AlmostEqual(got, 0.25, 1e-9) {
		t.Errorf("4/1 headroom = %v", got)
	}
	if got := RequiredHeadroom(10, 2); !units.AlmostEqual(got, 0.2, 1e-9) {
		t.Errorf("10/2 headroom = %v", got)
	}
	if RequiredHeadroom(3, 0) != 0 || RequiredHeadroom(2, 2) != 0 {
		t.Error("degenerate cases should be 0")
	}
	// Sanity: a fleet provisioned at exactly that headroom absorbs the
	// failure fully (WAN penalty aside).
	f, _ := Uniform(4, 0.75, 0, 1)
	if got := f.FailoverLevel(1); !units.AlmostEqual(got, 1, 1e-9) {
		t.Errorf("exact-headroom level = %v", got)
	}
}

func TestSimulateYearShape(t *testing.T) {
	f := fleet(t, 4, 0.8)
	rep, err := f.SimulateYear(1)
	if err != nil {
		t.Fatalf("SimulateYear: %v", err)
	}
	if rep.WorstLevel < 0 || rep.WorstLevel > 1 {
		t.Errorf("worst level = %v", rep.WorstLevel)
	}
	if rep.ServiceLossTime > rep.DegradedTime {
		t.Errorf("loss %v exceeds degraded %v", rep.ServiceLossTime, rep.DegradedTime)
	}
	if rep.SiteOutages > 0 && rep.DegradedTime == 0 {
		t.Error("outages should degrade service")
	}
	// Decorrelated sites: simultaneous failures are rare across years.
	overlapYears := 0
	for y := int64(0); y < 50; y++ {
		r, err := f.SimulateYear(y)
		if err != nil {
			t.Fatal(err)
		}
		if r.OverlapEvents > 0 {
			overlapYears++
		}
	}
	if overlapYears > 25 {
		t.Errorf("overlaps in %d/50 years — outages look correlated", overlapYears)
	}
}

func TestSimulateYearDeterministic(t *testing.T) {
	f := fleet(t, 3, 0.8)
	a, _ := f.SimulateYear(7)
	b, _ := f.SimulateYear(7)
	if a != b {
		t.Error("same year should reproduce")
	}
}

func TestSimulateYearInvalidFleet(t *testing.T) {
	var f Fleet
	if _, err := f.SimulateYear(1); err == nil {
		t.Error("invalid fleet should fail")
	}
}
