package fabric

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"backuppower/internal/resultstore"
)

// Metrics is the coordinator's observability state, mirroring the
// backupd metrics style: expvar types without process-global
// registration (a process may hold many Fabrics — tests do), rendered as
// one JSON document with a fixed key order at GET /metrics.
type Metrics struct {
	// Shard lifecycle counters: attempts dispatched to workers, retry
	// attempts after a failure, hedge chains launched against
	// stragglers, and losing chains cancelled after a first writer won.
	shardsDispatched expvar.Int
	shardsRetried    expvar.Int
	shardsHedged     expvar.Int
	shardsCancelled  expvar.Int

	// rowsMerged counts rows written to the merged output stream.
	rowsMerged expvar.Int

	// Per-worker maps, keyed by worker URL: attempts dispatched,
	// attempts failed, validated rows received, and the identity the
	// worker reported in X-Backupd-Worker.
	workerDispatched expvar.Map
	workerFailed     expvar.Map
	workerRows       expvar.Map
	workerIDs        expvar.Map

	// latencies is a bounded ring of completed-shard wall times; it
	// feeds the p50/p99 gauges and the adaptive hedge trigger.
	mu       sync.Mutex
	latTotal int
	latRing  [latencyRingSize]time.Duration

	// store, when non-nil, contributes the coordinator's persistent
	// result store counters to the document (set only under -store-dir,
	// so the store-less layout is unchanged).
	store resultstore.Store
}

// latencyRingSize bounds how many shard latencies the quantile window
// keeps; old samples age out, so the hedge trigger tracks current pool
// behavior rather than the whole run's history.
const latencyRingSize = 1024

func newMetrics(workers []string) *Metrics {
	m := &Metrics{}
	m.workerDispatched.Init()
	m.workerFailed.Init()
	m.workerRows.Init()
	m.workerIDs.Init()
	for _, u := range workers {
		// Pre-register every pool member so /metrics shows zeros for a
		// worker that never got work (itself a signal).
		m.workerDispatched.Add(u, 0)
		m.workerFailed.Add(u, 0)
		m.workerRows.Add(u, 0)
	}
	return m
}

func (m *Metrics) setWorkerID(url, id string) {
	v := new(expvar.String)
	v.Set(id)
	m.workerIDs.Set(url, v)
}

func (m *Metrics) observeShardLatency(d time.Duration) {
	m.mu.Lock()
	m.latRing[m.latTotal%latencyRingSize] = d
	m.latTotal++
	m.mu.Unlock()
}

// shardLatencyQuantiles reports p50 and p99 over the retained window,
// plus the number of completed shards ever observed.
func (m *Metrics) shardLatencyQuantiles() (p50, p99 time.Duration, n int) {
	m.mu.Lock()
	n = m.latTotal
	kept := n
	if kept > latencyRingSize {
		kept = latencyRingSize
	}
	window := make([]time.Duration, kept)
	copy(window, m.latRing[:kept])
	m.mu.Unlock()
	if kept == 0 {
		return 0, 0, n
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	q := func(f float64) time.Duration {
		i := int(f * float64(kept-1))
		return window[i]
	}
	return q(0.50), q(0.99), n
}

// Write renders the metrics document. Key order is fixed (expvar Maps
// iterate sorted), so the layout is stable; the values are live counters.
func (m *Metrics) Write(w io.Writer) {
	p50, p99, n := m.shardLatencyQuantiles()
	fmt.Fprintf(w, `{"rows_merged":%s,`, m.rowsMerged.String())
	fmt.Fprintf(w, `"shard_latency":{"completed":%d,"p50_ns":%d,"p99_ns":%d},`, n, p50, p99)
	fmt.Fprintf(w, `"shards":{"cancelled":%s,"dispatched":%s,"hedged":%s,"retried":%s},`,
		m.shardsCancelled.String(), m.shardsDispatched.String(),
		m.shardsHedged.String(), m.shardsRetried.String())
	if m.store != nil {
		if b, err := json.Marshal(m.store.Stats()); err == nil {
			fmt.Fprintf(w, `"store":%s,`, b)
		}
	}
	fmt.Fprintf(w, `"workers":{"dispatched":%s,"failed":%s,"ids":%s,"rows":%s}}`,
		m.workerDispatched.String(), m.workerFailed.String(),
		m.workerIDs.String(), m.workerRows.String())
	io.WriteString(w, "\n")
}

// ServeHTTP makes Metrics the GET /metrics handler on cmd/sweepfront.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	m.Write(w)
}
