package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// This file is the text boundary of the quantity types: parsing for the
// strings that arrive over HTTP request bodies (internal/httpapi) and CLI
// flags. Parsing is strict where it matters (no NaN/Inf, no negative
// power, no unknown units) and lenient where humans are (optional space
// before the unit, case-insensitive units, "min"/"sec"/"hr" aliases).

// powerScale maps a normalized unit suffix to its multiplier in watts.
// The empty suffix means bare watts.
var powerScale = map[string]Watts{
	"":   Watt,
	"w":  Watt,
	"kw": Kilowatt,
	"mw": Megawatt,
	"gw": 1e9,
}

// ParsePower parses a power string: a decimal number followed by an
// optional unit — "250", "250W", "120 kW", "1.5MW" (units W, kW, MW, GW,
// case-insensitive, optional space). Negative and non-finite values are
// rejected: a power capacity below zero is never meaningful in this
// model.
func ParsePower(s string) (Watts, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty power")
	}
	// Split the trailing unit letters off the numeric prefix.
	cut := len(t)
	for cut > 0 {
		c := t[cut-1]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			cut--
			continue
		}
		break
	}
	num := strings.TrimSpace(t[:cut])
	unit := strings.ToLower(t[cut:])
	scale, ok := powerScale[unit]
	if !ok {
		return 0, fmt.Errorf("units: unknown power unit %q (want W, kW, MW or GW)", t[cut:])
	}
	// A numeric prefix ending in 'e'/'E' ("1e3") would have lost its
	// exponent marker to the unit scan; ParseFloat rejects the remainder,
	// which is the behavior we want — exponents need an explicit digit
	// before the unit ("1e3W" parses, "1eW" does not).
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad power %q: %w", s, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("units: non-finite power %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative power %q", s)
	}
	w := Watts(v) * scale
	if math.IsInf(float64(w), 0) {
		return 0, fmt.Errorf("units: power %q overflows", s)
	}
	return w, nil
}

// durationAliases rewrites the spelled-out unit names people type into the
// single-letter forms time.ParseDuration understands. Longer aliases are
// listed before their prefixes so "mins" does not half-match as "min"+"s".
var durationAliases = strings.NewReplacer(
	"mins", "m", "min", "m",
	"secs", "s", "sec", "s",
	"hrs", "h", "hr", "h", "hours", "h", "hour", "h",
)

// ParseDuration parses a duration string: everything time.ParseDuration
// accepts ("30m", "1h30m", "90s", "500ms"), case-insensitively, with
// optional spaces between components and the aliases "min", "sec", "hr",
// "hour" for the single-letter units.
func ParseDuration(s string) (time.Duration, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, fmt.Errorf("units: empty duration")
	}
	t = strings.ReplaceAll(t, " ", "")
	t = durationAliases.Replace(t)
	d, err := time.ParseDuration(t)
	if err != nil {
		return 0, fmt.Errorf("units: bad duration %q: %w", s, err)
	}
	return d, nil
}
