// Package multinode is a real multi-node emulation of the paper's outage
// handling: per-server agents listening on TCP sockets, a coordinator that
// announces a utility outage, drives Xen-style iterative pre-copy
// migrations between node pairs (actual bytes over actual connections,
// scaled down from the logical state size), powers sources down, and
// migrates back after restore.
//
// The simulated cluster (internal/cluster) answers the cost/performability
// questions analytically; this package exists because faithful outage
// handling is a distributed protocol — cut-over ordering, connection
// failure on power-down, restore coordination — and those code paths only
// mean something against real sockets.
package multinode

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"backuppower/internal/units"
)

// command is the control-plane message the coordinator sends.
type command struct {
	Op   string `json:"op"`             // "migrate", "sleep", "wake", "status", "shutdown"
	Dest string `json:"dest,omitempty"` // migrate: destination data address
	// Rounds carries the pre-copy plan (logical bytes per round) computed
	// by the coordinator from the memory model; the agent ships
	// wire-scaled payloads for each round.
	Rounds []int64 `json:"rounds,omitempty"`
	Scale  int64   `json:"scale,omitempty"` // logical bytes per wire byte
}

// reply is the agent's response.
type reply struct {
	OK        bool   `json:"ok"`
	Err       string `json:"err,omitempty"`
	State     string `json:"state,omitempty"` // "active", "sleeping", "off"
	WireBytes int64  `json:"wireBytes,omitempty"`
	HeldBytes int64  `json:"heldBytes,omitempty"` // logical state held
}

// Node is one server agent. It listens on two ports: a control port for
// coordinator commands and a data port for incoming migration streams.
type Node struct {
	name string

	ctlLn  net.Listener
	dataLn net.Listener

	mu        sync.Mutex
	state     string // "active", "sleeping", "off"
	held      int64  // logical bytes of application state held
	wireBytes int64  // total wire bytes sent or received
	closed    bool

	wg sync.WaitGroup
}

// StartNode launches an agent holding `held` logical bytes of state.
func StartNode(name string, held units.Bytes) (*Node, error) {
	ctl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	data, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ctl.Close()
		return nil, err
	}
	n := &Node{name: name, ctlLn: ctl, dataLn: data, state: "active", held: int64(held)}
	n.wg.Add(2)
	go n.acceptLoop(ctl, n.handleControl)
	go n.acceptLoop(data, n.handleData)
	return n, nil
}

// Name returns the agent's name.
func (n *Node) Name() string { return n.name }

// ControlAddr is the address the coordinator dials.
func (n *Node) ControlAddr() string { return n.ctlLn.Addr().String() }

// DataAddr is the address migration streams target.
func (n *Node) DataAddr() string { return n.dataLn.Addr().String() }

// State returns the agent's power state.
func (n *Node) State() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// Held returns the logical state bytes currently held.
func (n *Node) Held() units.Bytes {
	n.mu.Lock()
	defer n.mu.Unlock()
	return units.Bytes(n.held)
}

// WireBytes returns total bytes moved over real sockets.
func (n *Node) WireBytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.wireBytes
}

// Close shuts the agent down.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	n.ctlLn.Close()
	n.dataLn.Close()
	n.wg.Wait()
}

func (n *Node) acceptLoop(ln net.Listener, handle func(net.Conn)) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go handle(conn)
	}
}

// handleControl processes newline-delimited JSON commands.
func (n *Node) handleControl(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var cmd command
		if err := dec.Decode(&cmd); err != nil {
			return
		}
		resp := n.execute(cmd)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if cmd.Op == "shutdown" {
			return
		}
	}
}

func (n *Node) execute(cmd command) reply {
	switch cmd.Op {
	case "status":
		n.mu.Lock()
		defer n.mu.Unlock()
		return reply{OK: true, State: n.state, WireBytes: n.wireBytes, HeldBytes: n.held}
	case "sleep":
		return n.setState("active", "sleeping")
	case "wake":
		return n.setState("sleeping", "active")
	case "poweroff":
		n.mu.Lock()
		n.state = "off"
		n.held = 0 // volatile state gone
		n.mu.Unlock()
		return reply{OK: true, State: "off"}
	case "poweron":
		n.mu.Lock()
		n.state = "active"
		n.mu.Unlock()
		return reply{OK: true, State: "active"}
	case "migrate":
		return n.migrateTo(cmd)
	case "shutdown":
		return reply{OK: true}
	default:
		return reply{OK: false, Err: fmt.Sprintf("unknown op %q", cmd.Op)}
	}
}

func (n *Node) setState(from, to string) reply {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state != from {
		return reply{OK: false, Err: fmt.Sprintf("state %s, want %s", n.state, from), State: n.state}
	}
	n.state = to
	return reply{OK: true, State: to}
}

// migrateTo streams the pre-copy rounds to the destination's data port:
// each round is a length-prefixed payload of round/scale wire bytes. After
// the final (stop-and-copy) round the source relinquishes its state.
func (n *Node) migrateTo(cmd command) reply {
	if n.State() != "active" {
		return reply{OK: false, Err: "source not active"}
	}
	if cmd.Scale <= 0 {
		return reply{OK: false, Err: "bad scale"}
	}
	conn, err := net.Dial("tcp", cmd.Dest)
	if err != nil {
		return reply{OK: false, Err: err.Error()}
	}
	defer conn.Close()

	var wire int64
	w := bufio.NewWriter(conn)
	for _, logical := range cmd.Rounds {
		payload := logical / cmd.Scale
		if payload < 1 {
			payload = 1
		}
		if err := writeFrame(w, logical, payload); err != nil {
			return reply{OK: false, Err: err.Error()}
		}
		wire += payload
	}
	// Terminator frame: logical size 0.
	if err := writeFrame(w, 0, 0); err != nil {
		return reply{OK: false, Err: err.Error()}
	}
	if err := w.Flush(); err != nil {
		return reply{OK: false, Err: err.Error()}
	}
	// Wait for the destination's ack before releasing state (cut-over).
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack[0] != 1 {
		return reply{OK: false, Err: "no cut-over ack"}
	}

	n.mu.Lock()
	moved := n.held
	n.held = 0
	n.wireBytes += wire
	n.mu.Unlock()
	return reply{OK: true, WireBytes: wire, HeldBytes: moved}
}

// handleData receives a migration stream and acks the cut-over.
func (n *Node) handleData(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	var logicalTotal, wireTotal int64
	for {
		logical, payload, err := readFrame(r)
		if err != nil {
			return // stream broken: migration failed, no state transfer
		}
		if payload == 0 {
			break // terminator
		}
		logicalTotal = logical // final round's logical size is the residual; total tracked below
		wireTotal += payload
		_ = logicalTotal
	}
	// Ack cut-over, then adopt the state. The logical amount adopted is
	// communicated out-of-band by the coordinator (it knows the plan); the
	// agent just tracks wire traffic.
	if _, err := conn.Write([]byte{1}); err != nil {
		return
	}
	n.mu.Lock()
	n.wireBytes += wireTotal
	n.mu.Unlock()
}

// AdoptState credits logical state to the node (coordinator-driven after a
// successful cut-over).
func (n *Node) AdoptState(b units.Bytes) {
	n.mu.Lock()
	n.held += int64(b)
	n.mu.Unlock()
}

func writeFrame(w io.Writer, logical, payload int64) error {
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(logical))
	binary.BigEndian.PutUint64(hdr[8:16], uint64(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if payload > 0 {
		if _, err := w.Write(make([]byte, payload)); err != nil {
			return err
		}
	}
	return nil
}

func readFrame(r io.Reader) (logical, payload int64, err error) {
	var hdr [16]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, err
	}
	logical = int64(binary.BigEndian.Uint64(hdr[0:8]))
	payload = int64(binary.BigEndian.Uint64(hdr[8:16]))
	if payload < 0 || payload > 1<<30 {
		return 0, 0, errors.New("multinode: implausible frame")
	}
	if payload > 0 {
		if _, err = io.CopyN(io.Discard, r, payload); err != nil {
			return 0, 0, err
		}
	}
	return logical, payload, nil
}
