package core

import (
	"context"
	"time"

	"backuppower/internal/cluster"
	"backuppower/internal/cost"
	"backuppower/internal/sweep"
	"backuppower/internal/technique"
	"backuppower/internal/units"
	"backuppower/internal/workload"
)

// EvaluateBatch evaluates one (backup, technique, workload) triple across a
// whole outage axis, returning results[i] identical to Evaluate at
// outages[i]. It shares the scenario memo cache with the scalar path in
// both directions: points already memoized are served from cache (a warm
// hit splits the batch — only the cold points are walked, through one
// cluster.SimulateOutageBatch call), and the cold points' results seed the
// cache for later scalar callers. Hit/miss accounting matches the scalar
// path exactly: a warm point is one hit, a cold point is one miss.
func (f *Framework) EvaluateBatch(b cost.Backup, tech technique.Technique, w workload.Spec, outages []time.Duration) ([]cluster.Result, error) {
	if len(outages) == 0 {
		return nil, nil
	}
	for _, d := range outages {
		if err := f.validateCall(d); err != nil {
			return nil, err
		}
	}
	scn := cluster.Scenario{Env: f.Env, Workload: w, Backup: b, Technique: tech}
	if !keyable(scn) {
		return cluster.SimulateOutageBatch(scn, outages)
	}

	results := make([]cluster.Result, len(outages))
	keys := make([]cacheKey, len(outages))
	var coldIdx []int
	// One digest of the outage-invariant scenario content covers the whole
	// axis: cacheKey carries the outage verbatim, so per-point keys are a
	// struct copy plus an outage stamp — no per-point content hashing. The
	// persistent tier's keys follow the same split (stableAxisKeys digests
	// the invariant content once and stamps outages per point).
	scn.Outage = outages[0]
	base := f.scenarioCacheKey(scn)
	st := scenarioStore()
	stableAt := f.stableAxisKeys(scn, st.Persistent())
	for i, d := range outages {
		keys[i] = base
		keys[i].outage = d
		if v, err, ok := st.Peek(keys[i], stableAt(d)); ok {
			if err != nil {
				return nil, err
			}
			results[i] = v
			continue
		}
		coldIdx = append(coldIdx, i)
	}
	if len(coldIdx) == 0 {
		return results, nil
	}

	cold := make([]time.Duration, len(coldIdx))
	for j, i := range coldIdx {
		cold[j] = outages[i]
	}
	batch, err := cluster.SimulateOutageBatch(scn, cold)
	if err != nil {
		return nil, err
	}
	for j, i := range coldIdx {
		res := batch[j]
		// Seeding through Do keeps the singleflight and counter semantics:
		// the first seed for a key counts the miss, a duplicate outage (or
		// a racing scalar Evaluate) joins the existing entry as a hit, and
		// whatever the entry holds is what every caller sees. Seed also
		// writes the winning value through to the persistent tier.
		got, err := st.Seed(keys[i], stableAt(outages[i]), res)
		if err != nil {
			return nil, err
		}
		results[i] = got
	}
	return results, nil
}

// EvaluateBatchCtx is EvaluateBatch with the same up-front cancellation
// check as EvaluateCtx.
func (f *Framework) EvaluateBatchCtx(ctx context.Context, b cost.Backup, tech technique.Technique, w workload.Spec, outages []time.Duration) ([]cluster.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f.EvaluateBatch(b, tech, w, outages)
}

// SizingPoint is one outage's min-cost sizing outcome on an axis:
// Feasible mirrors MinCostUPS's ok return.
type SizingPoint struct {
	Op       OperatingPoint
	Feasible bool
}

// MinCostUPSAxisCtx runs the min-cost UPS sizing across an outage axis,
// producing exactly what per-point MinCostUPSCtx would while sharing
// bracket state between adjacent outages: each search warm-starts from the
// previous point's argmin lattice index, and the warm probe only short-
// circuits when local convexity proves the hint is still the argmin — any
// ambiguity falls back to the full cold bracket, so the outputs are
// identical whatever order the axis is traversed in.
func (f *Framework) MinCostUPSAxisCtx(ctx context.Context, tech technique.Technique, w workload.Spec, outages []time.Duration) ([]SizingPoint, error) {
	out := make([]SizingPoint, len(outages))
	warm := -1
	for i, d := range outages {
		op, ok, idx, err := f.minCostUPSLattice(ctx, tech, w, d, warm)
		if err != nil {
			return nil, err
		}
		out[i] = SizingPoint{Op: op, Feasible: ok}
		if ok && idx >= 0 {
			warm = idx
		}
	}
	return out, nil
}

// BestPoint is one outage's Figure 5 selection: the winning technique's
// result and the technique itself (nil when no candidate evaluated).
type BestPoint struct {
	Result cluster.Result
	Tech   technique.Technique
}

// BestForConfigAxisCtx runs the fixed-config technique race across an
// outage axis, returning per point exactly what BestForConfigCtx would.
// The candidate set is identical; each candidate is evaluated over the
// whole axis in one batch (amortizing plan construction and the segment
// walk), and the per-outage fold compares candidates in enumeration order
// with the same dominance rule, so ties resolve as in the scalar race.
func (f *Framework) BestForConfigAxisCtx(ctx context.Context, b cost.Backup, w workload.Spec, outages []time.Duration) ([]BestPoint, error) {
	for _, d := range outages {
		if err := f.validateCall(d); err != nil {
			return nil, err
		}
	}
	candidates := append([]variant{
		{"Baseline", technique.Baseline{}},
	}, f.variants()...)
	if b.UPS.Provisioned() {
		candidates = append(candidates,
			variant{"CappedThrottling", technique.CappedThrottling{Budget: b.UPS.PowerCapacity}})
	}
	type candAxis struct {
		res []cluster.Result
		ok  []bool
	}
	results, err := sweep.Map(ctx, candidates, func(ctx context.Context, v variant) (candAxis, error) {
		if err := ctx.Err(); err != nil {
			return candAxis{}, err
		}
		res, err := f.EvaluateBatch(b, v.tech, w, outages)
		if err == nil {
			ok := make([]bool, len(outages))
			for i := range ok {
				ok[i] = true
			}
			return candAxis{res: res, ok: ok}, nil
		}
		// A batch failure degrades to the scalar race's semantics: each
		// point is tried alone and an unevaluable candidate is skipped at
		// that point only, never aborting the race.
		ca := candAxis{res: make([]cluster.Result, len(outages)), ok: make([]bool, len(outages))}
		for i, d := range outages {
			r, err := f.Evaluate(b, v.tech, w, d)
			if err != nil {
				continue
			}
			ca.res[i], ca.ok[i] = r, true
		}
		return ca, nil
	})
	if err != nil {
		return nil, err
	}

	better := func(a, b cluster.Result) bool {
		if a.Survived != b.Survived {
			return a.Survived
		}
		if !units.AlmostEqual(a.Perf, b.Perf, 1e-6) {
			return a.Perf > b.Perf
		}
		return a.Downtime < b.Downtime
	}
	out := make([]BestPoint, len(outages))
	for i := range outages {
		have := false
		for c, r := range results {
			if !r.ok[i] {
				continue
			}
			if !have || better(r.res[i], out[i].Result) {
				out[i] = BestPoint{Result: r.res[i], Tech: candidates[c].tech}
				have = true
			}
		}
	}
	return out, nil
}
